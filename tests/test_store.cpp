// Persistent store tests: journal round-trips, crash/corruption recovery
// (truncated tails, bit flips, poisoned load/flush fault sites), cache
// snapshot restore (sequences + stats), and the incremental re-run path —
// an unchanged campaign re-run against a warm store performs zero
// installs and zero experiment executions, while a changed input re-runs
// exactly the affected subset. Carries the "threads" label so the TSAN
// job races the store mutex for real.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/core/driver.hpp"
#include "src/obs/trace.hpp"
#include "src/ramble/expansion.hpp"
#include "src/ramble/workspace.hpp"
#include "src/store/persist.hpp"
#include "src/store/store.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace buildcache = benchpark::buildcache;
namespace core = benchpark::core;
namespace fs = std::filesystem;
namespace obs = benchpark::obs;
namespace ramble = benchpark::ramble;
namespace store = benchpark::store;
namespace support = benchpark::support;
namespace sys = benchpark::system;

namespace {

/// Overwrite the journal bytes directly (the tests' corruption hammer;
/// deliberately not the crash-safe write_file path).
void write_raw(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string read_raw(const fs::path& path) {
  return support::read_file(path);
}

const char* kSaxpyRambleYaml =
    "ramble:\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          env_vars:\n"
    "            set:\n"
    "              OMP_NUM_THREADS: '{n_threads}'\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "            batch_time: '120'\n"
    "          experiments:\n"
    "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
    "              variables:\n"
    "                processes_per_node: ['8', '4']\n"
    "                n_nodes: ['1', '2']\n"
    "                n_threads: ['2', '4']\n"
    "                n: ['512', '1024']\n"
    "              matrices:\n"
    "              - size_threads:\n"
    "                - n\n"
    "                - n_threads\n"
    "  spack:\n"
    "    packages:\n"
    "      gcc1211:\n"
    "        spack_spec: gcc@12.1.1\n"
    "      default-mpi:\n"
    "        spack_spec: mvapich2@2.3.7\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "        compiler: gcc1211\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - default-mpi\n"
    "        - saxpy\n";

ramble::Workspace make_saxpy_workspace(const fs::path& root,
                                       const char* yaml_text =
                                           kSaxpyRambleYaml) {
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(root, system);
  ws.configure(benchpark::yaml::parse(yaml_text));
  return ws;
}

}  // namespace

// ------------------------------------------------------------ store core

TEST(Store, PutGetFlushReload) {
  support::TempDir tmp;
  {
    auto s = store::Store::open(tmp.path());
    EXPECT_EQ(s->size(), 0u);
    EXPECT_FALSE(s->stats().cold_start);
    s->put("experiment", "k1", "value one");
    s->put("experiment", "k2", "value two");
    s->put("binary", "k1", "other kind, same key");
    EXPECT_EQ(s->pending(), 3u);
    ASSERT_TRUE(s->get("experiment", "k1").has_value());
    EXPECT_EQ(*s->get("experiment", "k1"), "value one");
    s->flush();
    EXPECT_EQ(s->pending(), 0u);
  }
  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->stats().loaded_records, 3u);
  EXPECT_EQ(s->stats().dropped_records, 0u);
  EXPECT_EQ(*s->get("experiment", "k2"), "value two");
  EXPECT_EQ(*s->get("binary", "k1"), "other kind, same key");
  EXPECT_FALSE(s->get("experiment", "missing").has_value());
  EXPECT_TRUE(s->contains("binary", "k1"));
  EXPECT_FALSE(s->contains("template", "k1"));
}

TEST(Store, DedupAndOverwrite) {
  support::TempDir tmp;
  auto s = store::Store::open(tmp.path());
  s->put("meta", "k", "v1");
  EXPECT_EQ(s->pending(), 1u);
  // Identical re-put appends nothing: warm re-runs leave no journal churn.
  s->put("meta", "k", "v1");
  EXPECT_EQ(s->pending(), 1u);
  // A changed value appends one more frame; last record wins.
  s->put("meta", "k", "v2");
  EXPECT_EQ(s->pending(), 2u);
  s->flush();
  auto reopened = store::Store::open(tmp.path());
  EXPECT_EQ(reopened->size(), 1u);
  EXPECT_EQ(*reopened->get("meta", "k"), "v2");
}

TEST(Store, EraseTombstoneSurvivesReload) {
  support::TempDir tmp;
  {
    auto s = store::Store::open(tmp.path());
    s->put("install", "dead", "x");
    s->put("install", "alive", "y");
    s->flush();
    EXPECT_TRUE(s->erase("install", "dead"));
    EXPECT_FALSE(s->erase("install", "dead"));  // already gone
    s->flush();
  }
  auto s = store::Store::open(tmp.path());
  EXPECT_FALSE(s->contains("install", "dead"));
  EXPECT_EQ(*s->get("install", "alive"), "y");
}

TEST(Store, ForEachVisitsOneKindInKeyOrder) {
  support::TempDir tmp;
  auto s = store::Store::open(tmp.path());
  s->put("concretize", "b", "2");
  s->put("concretize", "a", "1");
  s->put("template", "zzz", "not this kind");
  std::vector<std::string> keys;
  s->for_each("concretize", [&](const std::string& key,
                                const std::string& value) {
    keys.push_back(key + "=" + value);
    // The callback runs outside the store lock: re-entering is legal.
    EXPECT_TRUE(s->contains("concretize", key));
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a=1");
  EXPECT_EQ(keys[1], "b=2");
}

TEST(Store, BinaryValuesSurviveRoundTrip) {
  support::TempDir tmp;
  // Keys/values with newlines, NULs, the record separator, and spaces:
  // length-prefixed framing must not care.
  const std::string key("spa ce\n\x1f\x00key", 12);
  const std::string value("v\n\x00\x1f rec del 1 2 3\n", 19);
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", key, value);
    s->flush();
  }
  auto s = store::Store::open(tmp.path());
  ASSERT_TRUE(s->get("experiment", key).has_value());
  EXPECT_EQ(*s->get("experiment", key), value);
  EXPECT_EQ(s->stats().dropped_records, 0u);
}

TEST(Store, CompactionDropsDeadFrames) {
  support::TempDir tmp;
  auto s = store::Store::open(tmp.path());
  for (int i = 0; i < 50; ++i) {
    s->put("meta", "hot", "version " + std::to_string(i));
  }
  s->flush();
  const auto before = fs::file_size(s->journal_path());
  s->compact();
  EXPECT_GE(s->stats().compactions, 1u);
  const auto after = fs::file_size(s->journal_path());
  EXPECT_LT(after, before);
  // The rewrite is atomic (temp + rename) and preserves the live set.
  auto reopened = store::Store::open(tmp.path());
  EXPECT_EQ(reopened->size(), 1u);
  EXPECT_EQ(*reopened->get("meta", "hot"), "version 49");
}

// ------------------------------------------------- corruption resilience

TEST(Store, TruncatedTailKeepsValidPrefix) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir tmp;
  fs::path journal;
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", "first", "kept value");
    s->put("experiment", "second", "this frame will be torn");
    s->flush();
    journal = s->journal_path();
  }
  // Simulate a crash mid-append: drop the last 5 bytes.
  auto bytes = read_raw(journal);
  write_raw(journal, bytes.substr(0, bytes.size() - 5));

  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ(*s->get("experiment", "first"), "kept value");
  EXPECT_FALSE(s->contains("experiment", "second"));
  EXPECT_EQ(s->stats().dropped_records, 1u);
  EXPECT_FALSE(s->stats().cold_start);
  // Recovery compacted the torn tail away: the next open is clean.
  auto again = store::Store::open(tmp.path());
  EXPECT_EQ(again->size(), 1u);
  EXPECT_EQ(again->stats().dropped_records, 0u);
}

TEST(Store, BitFlipIsCaughtByChecksum) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir tmp;
  fs::path journal;
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", "first", "aaaaaaaaaaaaaaaaaaaa");
    s->put("experiment", "second", "bbbbbbbbbbbbbbbbbbbb");
    s->flush();
    journal = s->journal_path();
  }
  auto bytes = read_raw(journal);
  // Flip one payload byte inside the second record's value.
  bytes[bytes.size() - 3] ^= 0x01;
  write_raw(journal, bytes);

  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ(*s->get("experiment", "first"), "aaaaaaaaaaaaaaaaaaaa");
  EXPECT_EQ(s->stats().dropped_records, 1u);
}

TEST(Store, GarbageTailIsDropped) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir tmp;
  fs::path journal;
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", "k", "v");
    s->flush();
    journal = s->journal_path();
  }
  write_raw(journal, read_raw(journal) + "not a frame at all");
  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ(s->stats().dropped_records, 1u);
}

TEST(Store, UnrecognizedHeaderStartsCold) {
  support::TempDir tmp;
  fs::path journal;
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", "k", "v");
    s->flush();
    journal = s->journal_path();
  }
  auto bytes = read_raw(journal);
  bytes[0] = 'x';
  write_raw(journal, bytes);
  // A store that cannot be read at all degrades to cold start — open()
  // must not throw.
  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 0u);
  EXPECT_TRUE(s->stats().cold_start);
}

TEST(Store, LoadFaultSiteDegradesToColdStart) {
  support::ScopedFaultPlan fault_scope;
  support::TempDir tmp;
  {
    auto s = store::Store::open(tmp.path());
    s->put("experiment", "k", "v");
    s->flush();
  }
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "store.load";
  rule.nth = 1;
  plan.add_rule(rule);

  auto s = store::Store::open(tmp.path());
  EXPECT_EQ(s->size(), 0u);
  EXPECT_TRUE(s->stats().cold_start);
  // The cold handle still works for new writes once the fault clears.
  plan.clear();
  s->put("experiment", "fresh", "w");
  s->flush();
  EXPECT_TRUE(s->contains("experiment", "fresh"));
}

TEST(Store, FlushFaultKeepsBatchPending) {
  support::ScopedFaultPlan fault_scope;
  support::TempDir tmp;
  auto s = store::Store::open(tmp.path());
  s->put("experiment", "k", "v");

  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "store.flush";
  rule.nth = 1;
  plan.add_rule(rule);
  s->flush();  // warns and defers, never throws
  EXPECT_EQ(s->pending(), 1u);
  EXPECT_EQ(s->stats().appended_records, 0u);
  // The record is still visible in memory while deferred.
  EXPECT_EQ(*s->get("experiment", "k"), "v");

  plan.clear();
  s->flush();
  EXPECT_EQ(s->pending(), 0u);
  EXPECT_EQ(s->stats().appended_records, 1u);
  auto reopened = store::Store::open(tmp.path());
  EXPECT_EQ(*reopened->get("experiment", "k"), "v");
}

TEST(Store, ConcurrentPutGetFlush) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir tmp;
  auto s = store::Store::open(tmp.path());
  constexpr int kThreads = 8;
  constexpr int kKeys = 40;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kKeys; ++i) {
        const std::string key =
            "k" + std::to_string(t) + "-" + std::to_string(i);
        s->put("experiment", key, "value " + key);
        auto got = s->get("experiment", key);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, "value " + key);
        if (i % 10 == 0) s->flush();
        s->for_each("meta", [](const std::string&, const std::string&) {});
      }
    });
  }
  for (auto& w : workers) w.join();
  s->flush();
  EXPECT_EQ(s->size(), static_cast<std::size_t>(kThreads) * kKeys);
  auto reopened = store::Store::open(tmp.path());
  EXPECT_EQ(reopened->size(), static_cast<std::size_t>(kThreads) * kKeys);
  EXPECT_EQ(reopened->stats().dropped_records, 0u);
}

// ------------------------------------------------- cache snapshot restore

TEST(StorePersist, BinaryCacheEntriesStatsAndEvictionOrderSurvive) {
  support::TempDir tmp;
  buildcache::BinaryCache cache;
  std::vector<buildcache::CacheEntry> entries{
      {"hashaaa", "pkga@1.0", 100, 5},
      {"hashbbb", "pkgb@2.0", 200, 9},
      {"hashccc", "pkgc@3.0", 300, 7}};
  buildcache::CacheStats stats;
  stats.hits = 11;
  stats.misses = 4;
  stats.pushes = 3;
  stats.retries = 2;
  stats.evictions = 1;
  cache.restore(entries, stats);

  {
    auto s = store::Store::open(tmp.path());
    store::persist_binary_cache(s, cache);
    s->flush();
  }

  auto s = store::Store::open(tmp.path());
  buildcache::BinaryCache warm;
  EXPECT_EQ(store::warm_binary_cache(s, warm), 3u);
  auto warm_stats = warm.stats();
  EXPECT_EQ(warm_stats.hits, 11u);
  EXPECT_EQ(warm_stats.misses, 4u);
  EXPECT_EQ(warm_stats.pushes, 3u);
  EXPECT_EQ(warm_stats.retries, 2u);
  EXPECT_EQ(warm_stats.evictions, 1u);
  EXPECT_EQ(warm.total_bytes(), 600u);

  // Entries kept their original push sequences across persist/reload...
  auto exported = warm.export_entries();
  ASSERT_EQ(exported.size(), 3u);
  EXPECT_EQ(exported[0].dag_hash, "hashaaa");  // seq 5
  EXPECT_EQ(exported[1].dag_hash, "hashccc");  // seq 7
  EXPECT_EQ(exported[2].dag_hash, "hashbbb");  // seq 9
  EXPECT_EQ(exported[0].sequence, 5u);
  EXPECT_EQ(exported[1].short_spec, "pkgc@3.0");

  // ...so the rolling cache still evicts oldest-sequence-first.
  warm.set_capacity_bytes(350);
  auto rolled = warm.export_entries();
  ASSERT_EQ(rolled.size(), 1u);
  EXPECT_EQ(rolled[0].dag_hash, "hashbbb");
  EXPECT_EQ(warm.stats().evictions, 1u + 2u);
}

TEST(StorePersist, TemplateCacheWarmStartRestoresEntriesAndStats) {
  support::TempDir tmp;
  auto& cache = ramble::TemplateCache::global();
  cache.set_capacity(0);
  cache.clear();
  const ramble::VariableMap vars{{"n", "4"}};
  (void)ramble::expand("persisted-a {n}", vars);
  (void)ramble::expand("persisted-b {n}*2", vars);
  const auto persisted_stats = cache.stats();
  {
    auto s = store::Store::open(tmp.path());
    store::persist_global_caches(s);
    s->flush();
  }
  cache.clear();

  auto s = store::Store::open(tmp.path());
  auto report = store::warm_start_global_caches(s);
  EXPECT_TRUE(report.attempted);
  EXPECT_GE(report.template_entries, 2u);
  EXPECT_EQ(report.skipped_records, 0u);
  // Second warm start of the same handle is a no-op.
  EXPECT_FALSE(store::warm_start_global_caches(s).attempted);

  // Restored counters resume from the snapshot, and a warm lookup is a
  // hit, not a recompile.
  auto warm_stats = cache.stats();
  EXPECT_EQ(warm_stats.hits, persisted_stats.hits);
  EXPECT_EQ(warm_stats.misses, persisted_stats.misses);
  EXPECT_EQ(warm_stats.inserts, persisted_stats.inserts);
  (void)ramble::expand("persisted-a {n}", vars);
  EXPECT_EQ(cache.stats().hits, warm_stats.hits + 2);  // template + value
  EXPECT_EQ(cache.stats().misses, warm_stats.misses);
  cache.clear();
}

TEST(StorePersist, CorruptPersistedRecordIsSkippedNotFatal) {
  support::TempDir tmp;
  {
    auto s = store::Store::open(tmp.path());
    // A template record whose payload is not valid YAML: warm start must
    // skip it with a warning, not throw.
    s->put("template", "badkey", ":[not yaml");
    s->put("experiment", "badexp", "also not : [yaml");
    s->flush();
  }
  auto s = store::Store::open(tmp.path());
  auto report = store::warm_start_global_caches(s);
  EXPECT_TRUE(report.attempted);
  EXPECT_GE(report.skipped_records, 1u);
  EXPECT_FALSE(store::load_experiment(s, "badexp").has_value());
}

TEST(StorePersist, ExperimentRecordRoundTrip) {
  support::TempDir tmp;
  store::ExperimentRecord record;
  record.success = true;
  record.timed_out = false;
  record.attempts = 3;
  record.retry_wait_seconds = 0.7501220703125;
  record.runtime_seconds = 42.125;
  record.output = "line one\nelapsed 1.5s\nKernel done\n";
  {
    auto s = store::Store::open(tmp.path());
    store::save_experiment(s, "key1", record);
    s->flush();
  }
  auto s = store::Store::open(tmp.path());
  auto loaded = store::load_experiment(s, "key1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->success, record.success);
  EXPECT_EQ(loaded->timed_out, record.timed_out);
  EXPECT_EQ(loaded->attempts, record.attempts);
  EXPECT_DOUBLE_EQ(loaded->retry_wait_seconds, record.retry_wait_seconds);
  EXPECT_DOUBLE_EQ(loaded->runtime_seconds, record.runtime_seconds);
  EXPECT_EQ(loaded->output, record.output);
  EXPECT_FALSE(store::load_experiment(s, "other").has_value());
}

// ---------------------------------------------------- incremental re-runs

TEST(StoreWarmRun, UnchangedRerunSkipsAllInstallsAndExecutions) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir store_dir;
  support::TempDir tmp1;
  support::TempDir tmp2;

  auto& collector = obs::TraceCollector::global();
  const bool was_enabled = collector.enabled();
  collector.set_enabled(true);
  collector.reset();

  ramble::RunReport cold;
  {
    auto s = store::Store::open(store_dir.path());
    auto ws = make_saxpy_workspace(tmp1.path() / "workspace");
    ws.set_store(s);
    ws.setup();
    EXPECT_GT(ws.install_report().from_source, 0u);
    cold = ws.run_all(ramble::RunRequest{.threads = 4});
    EXPECT_EQ(cold.experiments, 8u);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_EQ(cold.store_misses, 8u);
  }

  collector.reset();
  auto s = store::Store::open(store_dir.path());
  auto ws = make_saxpy_workspace(tmp2.path() / "workspace");
  ws.set_store(s);
  ws.setup();
  // The warm install tree reports every package as already installed:
  // zero installs on an unchanged re-run.
  EXPECT_EQ(ws.install_report().from_source, 0u);
  EXPECT_EQ(ws.install_report().from_cache, 0u);
  EXPECT_EQ(ws.install_report().externals, 0u);
  EXPECT_GT(ws.install_report().already_installed, 0u);

  auto warm = ws.run_all(ramble::RunRequest{.threads = 4});
  EXPECT_EQ(warm.experiments, 8u);
  EXPECT_EQ(warm.store_hits, 8u);
  EXPECT_EQ(warm.store_misses, 0u);
  EXPECT_EQ(warm.succeeded, cold.succeeded);
  EXPECT_EQ(warm.total_attempts, cold.total_attempts);
  EXPECT_DOUBLE_EQ(warm.total_simulated_seconds,
                   cold.total_simulated_seconds);

  // Zero executions, by the obs counters: nothing ran, everything hit.
  auto trace = collector.snapshot();
  EXPECT_EQ(trace.counters.count("workspace.experiments.run"), 0u);
  ASSERT_EQ(trace.counters.count("store.hits"), 1u);
  EXPECT_EQ(trace.counters.at("store.hits"), 8);

  // Restored .out files are byte-identical to the cold run's, even though
  // the two runs used different workspace directories.
  for (const auto& exp : ws.prepared()) {
    const auto warm_out =
        support::read_file(exp.run_dir / (exp.name + ".out"));
    const auto cold_out = support::read_file(
        tmp1.path() / "workspace" / "experiments" / exp.app / exp.workload /
        exp.name / (exp.name + ".out"));
    EXPECT_EQ(warm_out, cold_out) << exp.name;
  }

  collector.reset();
  collector.set_enabled(was_enabled);
}

TEST(StoreWarmRun, ChangedInputRerunsExactlyTheAffectedSubset) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir store_dir;
  support::TempDir tmp1;
  support::TempDir tmp2;
  {
    auto s = store::Store::open(store_dir.path());
    auto ws = make_saxpy_workspace(tmp1.path() / "workspace");
    ws.set_store(s);
    ws.setup();
    auto cold = ws.run_all(ramble::RunRequest{.threads = 4});
    EXPECT_EQ(cold.store_misses, 8u);
  }
  // Change half the matrix: n 1024 -> 2048 produces 4 new experiment
  // keys; the 4 n=512 cells are untouched and must not re-run.
  std::string changed = kSaxpyRambleYaml;
  const auto at = changed.find("'1024'");
  ASSERT_NE(at, std::string::npos);
  changed.replace(at, 6, "'2048'");

  auto s = store::Store::open(store_dir.path());
  auto ws = make_saxpy_workspace(tmp2.path() / "workspace", changed.c_str());
  ws.set_store(s);
  ws.setup();
  // Software is unchanged, so installs still all skip.
  EXPECT_EQ(ws.install_report().from_source, 0u);
  auto warm = ws.run_all(ramble::RunRequest{.threads = 4});
  EXPECT_EQ(warm.experiments, 8u);
  EXPECT_EQ(warm.store_hits, 4u);
  EXPECT_EQ(warm.store_misses, 4u);
}

TEST(StoreWarmRun, DriverWorkflowReportsStoreTraffic) {
  support::ScopedFaultPlan fault_scope;
  support::FaultPlan::global().clear();
  support::TempDir store_dir;
  support::TempDir tmp1;
  support::TempDir tmp2;
  core::Driver driver;
  const core::ExperimentId id{"saxpy", "openmp"};

  ramble::RunRequest request;
  request.threads = 2;
  request.store = store::Store::open(store_dir.path());

  std::vector<std::string> first_steps;
  auto first = driver.run_workflow(
      id, "cts1", tmp1.path() / "ws",
      [&](int, const std::string& text) { first_steps.push_back(text); },
      nullptr, request);
  ASSERT_EQ(first_steps.size(), 10u);
  EXPECT_NE(first_steps[7].find("store 0 hits / 8 misses"),
            std::string::npos)
      << first_steps[7];

  std::vector<std::string> second_steps;
  // run_workflow's workspace_out assigns into an existing workspace;
  // make one via setup() (Workspace has no default constructor).
  ramble::Workspace ws_holder = driver.setup(id, "cts1", tmp2.path() / "ws2");
  auto second = driver.run_workflow(
      id, "cts1", tmp2.path() / "ws",
      [&](int, const std::string& text) { second_steps.push_back(text); },
      &ws_holder, request);
  ASSERT_EQ(second_steps.size(), 10u);
  EXPECT_NE(second_steps[7].find("store 8 hits / 0 misses"),
            std::string::npos)
      << second_steps[7];
  EXPECT_NE(second_steps[5].find("0 built from source"), std::string::npos)
      << second_steps[5];
  EXPECT_EQ(ws_holder.install_report().from_source, 0u);
  EXPECT_EQ(second.num_success(), first.num_success());
  ASSERT_EQ(second.results.size(), first.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(second.results[i].output, first.results[i].output)
        << first.results[i].name;
  }
}
