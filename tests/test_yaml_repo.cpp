// Tests for data-driven package recipes (repo.yaml overlays) and their
// use through the concretizer and workspaces.
#include <gtest/gtest.h>

#include "src/concretizer/concretizer.hpp"
#include "src/pkg/yaml_repo.hpp"
#include "src/support/error.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace pkg = benchpark::pkg;
using benchpark::yaml::parse;

namespace {

/// One root through the unified API, legacy semantics (fresh context,
/// serial, no memo cache).
benchpark::spec::Spec concretize1(
    const benchpark::concretizer::Concretizer& c, const std::string& text) {
  benchpark::concretizer::ConcretizeRequest request;
  request.roots = {benchpark::spec::Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

const char* kRepoYaml =
    "packages:\n"
    "  pingpong:\n"
    "    build_system: cmake\n"
    "    description: MPI ping-pong latency benchmark\n"
    "    versions:\n"
    "    - '2.1'\n"
    "    - version: '2.0'\n"
    "      deprecated: true\n"
    "    variants:\n"
    "      openmp:\n"
    "        default: false\n"
    "        description: threaded variant\n"
    "        flag: -DPINGPONG_OPENMP=ON\n"
    "      backend:\n"
    "        default: verbs\n"
    "        values: [verbs, ucx]\n"
    "    depends_on:\n"
    "    - mpi\n"
    "    - spec: cmake@3.20:\n"
    "    - spec: cuda\n"
    "      when: +cuda\n"
    "    build_cost: 3.5\n"
    "  fastblas:\n"
    "    build_system: makefile\n"
    "    versions: ['1.0']\n"
    "    provides: [blas]\n";

}  // namespace

TEST(YamlRepo, ParsesFullRecipe) {
  auto repo = pkg::repo_from_yaml("community", parse(kRepoYaml));
  const auto* pingpong = repo->find("pingpong");
  ASSERT_NE(pingpong, nullptr);
  EXPECT_EQ(pingpong->build_system(), pkg::BuildSystem::cmake);
  EXPECT_EQ(pingpong->description(), "MPI ping-pong latency benchmark");
  EXPECT_EQ(pingpong->best_version({})->str(), "2.1");
  EXPECT_DOUBLE_EQ(pingpong->build_cost_seconds(), 3.5);

  const auto* openmp = pingpong->find_variant("openmp");
  ASSERT_NE(openmp, nullptr);
  EXPECT_FALSE(openmp->default_value.as_bool());
  const auto* backend = pingpong->find_variant("backend");
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->default_value.as_single(), "verbs");
  EXPECT_EQ(backend->allowed_values.size(), 2u);
}

TEST(YamlRepo, DeprecatedVersionHandling) {
  auto repo = pkg::repo_from_yaml("community", parse(kRepoYaml));
  const auto* pingpong = repo->find("pingpong");
  // Deprecated 2.0 is skipped by default but reachable explicitly.
  EXPECT_EQ(pingpong->best_version({})->str(), "2.1");
  auto explicit_old = pingpong->best_version(
      benchpark::spec::VersionConstraint::parse("=2.0"));
  ASSERT_TRUE(explicit_old.has_value());
}

TEST(YamlRepo, ConditionalDependencies) {
  auto repo = pkg::repo_from_yaml("community", parse(kRepoYaml));
  const auto* pingpong = repo->find("pingpong");
  // Note: +cuda is not a declared variant here, so the `when` can never
  // fire on a concretized spec — but the declaration itself must load.
  auto plain = benchpark::spec::Spec::parse("pingpong");
  EXPECT_EQ(pingpong->active_dependencies(plain).size(), 3u);
}

TEST(YamlRepo, VariantFlagMapping) {
  auto repo = pkg::repo_from_yaml("community", parse(kRepoYaml));
  auto with_openmp = benchpark::spec::Spec::parse("pingpong+openmp");
  EXPECT_EQ(repo->find("pingpong")->build_args(with_openmp),
            (std::vector<std::string>{"-DPINGPONG_OPENMP=ON"}));
}

TEST(YamlRepo, ProvidesVirtuals) {
  auto repo = pkg::repo_from_yaml("community", parse(kRepoYaml));
  auto providers = repo->providers_of("blas");
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(providers[0]->name(), "fastblas");
}

TEST(YamlRepo, UnknownKeyRejected) {
  EXPECT_THROW(pkg::recipe_from_yaml("x", parse("versions: ['1']\n"
                                                "homepage: http://x\n")),
               benchpark::PackageError);
}

TEST(YamlRepo, MissingVersionsRejected) {
  EXPECT_THROW(pkg::recipe_from_yaml("x", parse("build_system: cmake\n")),
               benchpark::PackageError);
}

TEST(YamlRepo, BadBuildSystemRejected) {
  EXPECT_THROW(
      pkg::recipe_from_yaml(
          "x", parse("build_system: bazel\nversions: ['1']\n")),
      benchpark::PackageError);
}

TEST(YamlRepo, BadVariantDefaultRejected) {
  EXPECT_THROW(pkg::recipe_from_yaml(
                   "x", parse("versions: ['1']\n"
                              "variants:\n"
                              "  mode:\n"
                              "    default: sideways\n")),
               benchpark::PackageError);
}

TEST(YamlRepo, OverlayConcretizesThroughStack) {
  auto overlay = pkg::repo_from_yaml("community", parse(kRepoYaml));
  pkg::RepoStack stack;
  stack.push_back(pkg::builtin_repo());
  stack.push_front(std::shared_ptr<const pkg::Repo>(overlay));

  const auto& cts1 = benchpark::system::SystemRegistry::instance().get("cts1");
  benchpark::concretizer::Concretizer cz(stack, cts1.config);
  auto concrete = concretize1(cz, "pingpong+openmp backend=ucx");
  EXPECT_TRUE(concrete.concrete());
  EXPECT_EQ(concrete.concrete_version().str(), "2.1");
  EXPECT_EQ(concrete.variant("backend")->as_single(), "ucx");
  // mpi resolved through the system scope as usual.
  EXPECT_NE(concrete.dependency("mvapich2"), nullptr);
}

TEST(YamlRepo, DisallowedVariantValueCaughtAtConcretize) {
  auto overlay = pkg::repo_from_yaml("community", parse(kRepoYaml));
  pkg::RepoStack stack;
  stack.push_back(pkg::builtin_repo());
  stack.push_front(std::shared_ptr<const pkg::Repo>(overlay));
  const auto& cts1 = benchpark::system::SystemRegistry::instance().get("cts1");
  benchpark::concretizer::Concretizer cz(stack, cts1.config);
  EXPECT_THROW(concretize1(cz, "pingpong backend=tcp"),
               benchpark::ConcretizationError);
}
