// Ramble-layer tests: variable expansion, application definitions
// (Figure 8), experiment matrix semantics (Figure 10), and the five-verb
// workspace lifecycle (Figure 5) end to end on a simulated system.
#include <gtest/gtest.h>

#include "src/ramble/application.hpp"
#include "src/ramble/expansion.hpp"
#include "src/ramble/experiment.hpp"
#include "src/ramble/workspace.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace ramble = benchpark::ramble;
namespace sys = benchpark::system;
using ramble::expand;
using ramble::VariableMap;

// ------------------------------------------------------------- expansion

TEST(Expansion, SimpleSubstitution) {
  VariableMap vars{{"n", "1024"}};
  EXPECT_EQ(expand("saxpy -n {n}", vars), "saxpy -n 1024");
}

TEST(Expansion, RecursiveVariables) {
  VariableMap vars{{"mpi_command", "srun -N {n_nodes} -n {n_ranks}"},
                   {"n_nodes", "2"},
                   {"n_ranks", "16"}};
  EXPECT_EQ(expand("{mpi_command} ./app", vars), "srun -N 2 -n 16 ./app");
}

TEST(Expansion, DerivedArithmeticVariable) {
  // Ramble's computed n_ranks = processes_per_node * n_nodes.
  VariableMap vars{{"n_ranks", "{processes_per_node}*{n_nodes}"},
                   {"processes_per_node", "8"},
                   {"n_nodes", "4"}};
  EXPECT_EQ(expand("-n {n_ranks}", vars), "-n 32");
  EXPECT_EQ(ramble::expand_int("{n_ranks}", vars), 32);
}

TEST(Expansion, InlineArithmetic) {
  EXPECT_EQ(expand("{4*9} cores", {}), "36 cores");
  EXPECT_EQ(ramble::evaluate_arithmetic("2 + 3 * 4"), 14);
  EXPECT_EQ(ramble::evaluate_arithmetic("(2 + 3) * 4"), 20);
  EXPECT_EQ(ramble::evaluate_arithmetic("100 / 8"), 12);
  EXPECT_EQ(ramble::evaluate_arithmetic("-3 + 5"), 2);
}

TEST(Expansion, UndefinedVariableThrows) {
  EXPECT_THROW(expand("{missing}", {}), benchpark::ExperimentError);
}

TEST(Expansion, CycleDetected) {
  VariableMap vars{{"a", "{b}"}, {"b", "{a}"}};
  EXPECT_THROW(expand("{a}", vars), benchpark::ExperimentError);
}

TEST(Expansion, ArithmeticErrors) {
  EXPECT_THROW(ramble::evaluate_arithmetic("2 +"), benchpark::ExperimentError);
  EXPECT_THROW(ramble::evaluate_arithmetic("4 / 0"), benchpark::ExperimentError);
  EXPECT_THROW(ramble::evaluate_arithmetic("(1"), benchpark::ExperimentError);
}

TEST(Expansion, UnbalancedBraceThrows) {
  EXPECT_THROW(expand("{oops", {{"oops", "x"}}), benchpark::ExperimentError);
}

TEST(Expansion, DateLikeValuesStayLiteral) {
  // "2023-01-01" looks arithmetic to the screening heuristic (digits plus
  // '-') but must not expand to 2021: zero-padded components mean it is a
  // date, and the value is kept verbatim.
  VariableMap vars{{"date", "2023-01-01"}, {"when", "{date}"}};
  EXPECT_EQ(expand("run-{date}", vars), "run-2023-01-01");
  EXPECT_EQ(expand("{when}", vars), "2023-01-01");
}

TEST(Expansion, GenuineArithmeticValuesStillEvaluate) {
  VariableMap vars{{"n", "10-1"}, {"padded", "007"}};
  EXPECT_EQ(expand("{n}", vars), "9");
  // A plain zero-padded number has no operators: not arithmetic, kept.
  EXPECT_EQ(expand("{padded}", vars), "007");
}

TEST(Expansion, NonEvaluableValueKeptNotCrashed) {
  // A value that merely *looks* arithmetic ("1 + ") stays literal; an
  // explicit inline expression with the same defect still throws.
  VariableMap vars{{"weird", "1 + "}};
  EXPECT_EQ(expand("{weird}", vars), "1 + ");
  EXPECT_THROW(expand("{1 + }", {}), benchpark::ExperimentError);
  EXPECT_THROW(expand("{8/0}", {}), benchpark::ExperimentError);
}

TEST(Expansion, DoubledBracesEscapeLiterals) {
  EXPECT_EQ(expand("{{n}}", {{"n", "1024"}}), "{n}");
  EXPECT_EQ(expand("json: {{\"n\": {n}}}", {{"n", "4"}}),
            "json: {\"n\": 4}");
  EXPECT_EQ(expand("a}}b{{c", {}), "a}b{c");
}

TEST(Expansion, NestedBracesInsideArithmetic) {
  // A brace body may itself contain placeholders: the inner expansion
  // happens first, then the arithmetic screen sees the resolved text.
  VariableMap vars{{"n", "8"}};
  EXPECT_EQ(expand("{ {n} * 2 }", vars), "16");
  EXPECT_EQ(expand("{({n}+1)*{n}}", vars), "72");
  // Non-arithmetic nested bodies work too: variable-name indirection.
  VariableMap indirect{{"suffix", "a"}, {"pa", "left"}, {"pb", "right"}};
  EXPECT_EQ(expand("{p{suffix}}", indirect), "left");
  indirect["suffix"] = "b";
  EXPECT_EQ(expand("{p{suffix}}", indirect), "right");
}

TEST(Expansion, UndefinedVariableErrorNamesVariableAndTemplate) {
  try {
    (void)expand("run -n {ghost}", {{"n", "4"}});
    FAIL() << "expected ExperimentError";
  } catch (const benchpark::ExperimentError& e) {
    EXPECT_STREQ(e.what(),
                 "undefined variable '{ghost}' while expanding "
                 "'run -n {ghost}'");
  }
}

TEST(Expansion, CompiledTemplateIntrospection) {
  ramble::CompiledTemplate tmpl("srun -n {n_ranks} ./{app} --size {n}");
  EXPECT_EQ(tmpl.source(), "srun -n {n_ranks} ./{app} --size {n}");
  EXPECT_EQ(tmpl.placeholder_count(), 3u);
  // literal, var, literal, var, literal, var.
  EXPECT_EQ(tmpl.segment_count(), 6u);
  std::string out;
  tmpl.expand_into(out, {{"n_ranks", "4"}, {"app", "saxpy"}, {"n", "9"}},
                   /*use_cache=*/false);
  EXPECT_EQ(out, "srun -n 4 ./saxpy --size 9");
}

// ----------------------------------------------------------- applications

TEST(Applications, Figure8SaxpyDefinition) {
  const auto& saxpy = ramble::ApplicationRegistry::instance().get("saxpy");
  const auto* exe = saxpy.find_executable("p");
  ASSERT_NE(exe, nullptr);
  EXPECT_EQ(exe->command_template, "saxpy -n {n}");
  EXPECT_TRUE(exe->use_mpi);
  const auto* wl = saxpy.find_workload("problem");
  ASSERT_NE(wl, nullptr);
  ASSERT_EQ(wl->variables.size(), 1u);
  EXPECT_EQ(wl->variables[0].name, "n");
  EXPECT_EQ(wl->variables[0].default_value, "1");
  EXPECT_EQ(wl->variables[0].description, "problem size");
  ASSERT_FALSE(saxpy.success_criteria_list().empty());
  EXPECT_EQ(saxpy.success_criteria_list()[0].match, "Kernel done");
}

TEST(Applications, RegistryHasPaperBenchmarks) {
  auto names = ramble::ApplicationRegistry::instance().names();
  for (const char* name : {"saxpy", "amg2023", "stream", "osu-bcast"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  EXPECT_THROW(ramble::ApplicationRegistry::instance().get("hpl"),
               benchpark::ExperimentError);
}

TEST(Applications, WorkloadValidation) {
  ramble::ApplicationDefinition app("demo");
  app.executable("x", "x", false);
  EXPECT_THROW(app.workload("w", {"nonexistent"}),
               benchpark::ExperimentError);
  app.workload("w", {"x"});
  EXPECT_THROW(app.workload_variable("v", "1", "", {"other"}),
               benchpark::ExperimentError);
}

// -------------------------------------------------------------- experiments

namespace {

ramble::ExperimentTemplate figure10_template() {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  processes_per_node: ['8', '4']\n"
      "  n_nodes: ['1', '2']\n"
      "  n_threads: ['2', '4']\n"
      "  n: ['512', '1024']\n"
      "matrices:\n"
      "- size_threads:\n"
      "  - n\n"
      "  - n_threads\n");
  return ramble::ExperimentTemplate::from_yaml(
      "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}", node);
}

}  // namespace

TEST(Experiments, Figure10ExpandsToEightExperiments) {
  // Matrix n x n_threads = 4 combos; unconsumed vectors
  // processes_per_node/n_nodes zip into 2 pairs; 4 x 2 = 8.
  VariableMap base{{"n_ranks", "{processes_per_node}*{n_nodes}"}};
  auto experiments = expand_experiments(figure10_template(), base);
  ASSERT_EQ(experiments.size(), 8u);

  // Every experiment name is unique and fully expanded.
  std::set<std::string> names;
  for (const auto& e : experiments) {
    EXPECT_EQ(e.name.find('{'), std::string::npos) << e.name;
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), 8u);
  // Check one specific point: n=512, zip pair (ppn=8, nodes=1) -> ranks 8.
  EXPECT_TRUE(names.count("saxpy_512_1_8_2")) << *names.begin();
  // Zip pair (ppn=4, nodes=2) also yields 8 ranks.
  EXPECT_TRUE(names.count("saxpy_1024_2_8_4"));
}

TEST(Experiments, MatrixCrossesAllListedVariables) {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  a: ['1', '2', '3']\n"
      "  b: ['x', 'y']\n"
      "matrices:\n"
      "- m:\n"
      "  - a\n"
      "  - b\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e_{a}_{b}", node);
  EXPECT_EQ(expand_experiments(tmpl).size(), 6u);
}

TEST(Experiments, UnconsumedVectorsZipStrictly) {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  a: ['1', '2']\n"
      "  b: ['x', 'y', 'z']\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e_{a}_{b}", node);
  EXPECT_THROW(expand_experiments(tmpl), benchpark::ExperimentError);
}

TEST(Experiments, ScalarsBroadcast) {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  n: ['1', '2']\n"
      "  batch_time: '120'\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e_{n}", node);
  auto experiments = expand_experiments(tmpl);
  ASSERT_EQ(experiments.size(), 2u);
  for (const auto& e : experiments) {
    EXPECT_EQ(e.variables.at("batch_time"), "120");
  }
}

TEST(Experiments, NoVectorsYieldsSingleExperiment) {
  auto node = benchpark::yaml::parse("variables:\n  n: '512'\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("only_{n}", node);
  auto experiments = expand_experiments(tmpl);
  ASSERT_EQ(experiments.size(), 1u);
  EXPECT_EQ(experiments[0].name, "only_512");
}

TEST(Experiments, VariableInTwoMatricesThrows) {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  a: ['1']\n"
      "matrices:\n"
      "- m1:\n"
      "  - a\n"
      "- m2:\n"
      "  - a\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e", node);
  EXPECT_THROW(expand_experiments(tmpl), benchpark::ExperimentError);
}

TEST(Experiments, MatrixOfUnknownVariableThrows) {
  auto node = benchpark::yaml::parse(
      "matrices:\n"
      "- m:\n"
      "  - ghost\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e", node);
  EXPECT_THROW(expand_experiments(tmpl), benchpark::ExperimentError);
}

TEST(Experiments, EscapedBracesSurviveInNameTemplates) {
  auto node = benchpark::yaml::parse("variables:\n  n: '512'\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e_{{n}}_{n}", node);
  auto experiments = expand_experiments(tmpl);
  ASSERT_EQ(experiments.size(), 1u);
  EXPECT_EQ(experiments[0].name, "e_{n}_512");
}

TEST(Experiments, DimensionOrderingIsDocumentedAndStable) {
  // Dimensions: matrices in declaration order, then the zipped
  // unconsumed vectors. Dimension 0 varies fastest (the odometer
  // increments its first wheel first).
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  a: ['1', '2']\n"
      "  b: ['x', 'y']\n"
      "  c: ['p', 'q']\n"
      "  d: ['s', 't']\n"
      "matrices:\n"
      "- m1:\n"
      "  - a\n"
      "- m2:\n"
      "  - b\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml("e_{a}{b}{c}{d}", node);
  auto experiments = expand_experiments(tmpl);
  std::vector<std::string> names;
  names.reserve(experiments.size());
  for (const auto& e : experiments) names.push_back(e.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "e_1xps", "e_2xps", "e_1yps", "e_2yps",
                       "e_1xqt", "e_2xqt", "e_1yqt", "e_2yqt"}));
}

TEST(Experiments, ParallelExpansionMatchesSerial) {
  // 4 x 4 x 4 = 64 rows: exactly kParallelExpandThreshold, so the
  // threads=8 call takes the parallel path; ordering must not change.
  std::string yaml = "variables:\n";
  for (const char* v : {"a", "b", "c"}) {
    yaml += std::string("  ") + v + ": ['0', '1', '2', '3']\n";
  }
  yaml += "matrices:\n- m:\n  - a\n  - b\n  - c\n";
  auto tmpl = ramble::ExperimentTemplate::from_yaml(
      "e_{a}_{b}_{c}", benchpark::yaml::parse(yaml));
  auto serial = expand_experiments(tmpl, {}, /*threads=*/1);
  auto parallel = expand_experiments(tmpl, {}, /*threads=*/8);
  ASSERT_EQ(serial.size(), ramble::kParallelExpandThreshold);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, parallel[i].name) << i;
    EXPECT_EQ(serial[i].variables, parallel[i].variables) << i;
  }
}

// ---------------------------------------------------------------- workspace

namespace {

const char* kSaxpyRambleYaml =
    "ramble:\n"
    "  include:\n"
    "  - ./configs/packages.yaml\n"
    "  - ./configs/variables.yaml\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          env_vars:\n"
    "            set:\n"
    "              OMP_NUM_THREADS: '{n_threads}'\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "            batch_time: '120'\n"
    "          experiments:\n"
    "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
    "              variables:\n"
    "                processes_per_node: ['8', '4']\n"
    "                n_nodes: ['1', '2']\n"
    "                n_threads: ['2', '4']\n"
    "                n: ['512', '1024']\n"
    "              matrices:\n"
    "              - size_threads:\n"
    "                - n\n"
    "                - n_threads\n"
    "  spack:\n"
    "    packages:\n"
    "      gcc1211:\n"
    "        spack_spec: gcc@12.1.1\n"
    "      default-mpi:\n"
    "        spack_spec: mvapich2@2.3.7\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "        compiler: gcc1211\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - default-mpi\n"
    "        - saxpy\n";

ramble::Workspace make_saxpy_workspace(
    const benchpark::support::TempDir& tmp) {
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "workspace", system);
  ws.configure(benchpark::yaml::parse(kSaxpyRambleYaml));
  return ws;
}

}  // namespace

TEST(Workspace, CreateLaysOutDirectories) {
  benchpark::support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  for (const char* sub : {"configs", "experiments", "software"}) {
    EXPECT_TRUE(std::filesystem::is_directory(ws.root() / sub)) << sub;
  }
  // Figure 1a: per-system config files in configs/.
  for (const char* f : {"variables.yaml", "packages.yaml", "compilers.yaml",
                        "execute_experiment.tpl", "ramble.yaml"}) {
    EXPECT_TRUE(std::filesystem::exists(ws.root() / "configs" / f)) << f;
  }
}

TEST(Workspace, SetupBuildsSoftwareAndExperiments) {
  benchpark::support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  ws.setup();
  EXPECT_TRUE(ws.is_set_up());

  // Software: the saxpy environment was concretized and installed.
  const auto* environment = ws.environment_for("saxpy");
  ASSERT_NE(environment, nullptr);
  EXPECT_TRUE(environment->concretized());
  const auto* saxpy_spec = environment->concrete_for("saxpy");
  ASSERT_NE(saxpy_spec, nullptr);
  EXPECT_TRUE(saxpy_spec->variant_enabled("openmp"));
  EXPECT_EQ(saxpy_spec->compiler()->name, "gcc");
  // mvapich2 resolved via the cts1 external (Figure 4).
  ASSERT_NE(environment->concrete_for("mvapich2"), nullptr);
  EXPECT_TRUE(environment->concrete_for("mvapich2")->is_external());

  // The lockfile reproducibility artifact exists.
  EXPECT_TRUE(std::filesystem::exists(ws.root() / "software" /
                                      "saxpy.lock.yaml"));

  // Experiments: Figure 10 expansion -> 8 run dirs with rendered scripts.
  EXPECT_EQ(ws.prepared().size(), 8u);
  for (const auto& exp : ws.prepared()) {
    EXPECT_TRUE(std::filesystem::exists(exp.run_dir / "execute_experiment"))
        << exp.name;
  }
}

TEST(Workspace, RenderedScriptMatchesFigure13Shape) {
  benchpark::support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  ws.setup();
  const auto& exp = ws.prepared().front();
  EXPECT_NE(exp.script.find("#!/bin/bash"), std::string::npos);
  EXPECT_NE(exp.script.find("#SBATCH -N "), std::string::npos);
  EXPECT_NE(exp.script.find("#SBATCH -n 8"), std::string::npos);
  EXPECT_NE(exp.script.find("#SBATCH -t 120:00"), std::string::npos);
  EXPECT_NE(exp.script.find("cd " + exp.run_dir.string()), std::string::npos);
  EXPECT_NE(exp.script.find("export OMP_NUM_THREADS="), std::string::npos);
  // The command line: srun launcher + the Figure 8 executable template.
  EXPECT_NE(exp.script.find("srun -N "), std::string::npos);
  EXPECT_NE(exp.script.find("saxpy -n "), std::string::npos);
  // Everything expanded.
  EXPECT_EQ(exp.script.find('{'), std::string::npos) << exp.script;
}

TEST(Workspace, RunExecutesAllExperiments) {
  benchpark::support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  ws.setup();
  ws.run();
  EXPECT_TRUE(ws.has_run());
  for (const auto& exp : ws.prepared()) {
    auto out = ws.root() / "experiments" / exp.app / exp.workload /
               exp.name / (exp.name + ".out");
    ASSERT_TRUE(std::filesystem::exists(out)) << exp.name;
    auto text = benchpark::support::read_file(out);
    EXPECT_NE(text.find("Kernel done"), std::string::npos) << exp.name;
  }
}

TEST(Workspace, AnalyzeExtractsFoms) {
  benchpark::support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  ws.setup();
  ws.run();
  auto report = ws.analyze();
  ASSERT_EQ(report.results.size(), 8u);
  EXPECT_EQ(report.num_success(), 8u);
  for (const auto& r : report.results) {
    EXPECT_TRUE(r.ran);
    ASSERT_NE(r.fom("elapsed"), nullptr) << r.name;
    EXPECT_TRUE(r.fom("elapsed")->numeric);
    EXPECT_GT(r.fom("elapsed")->value, 0);
    ASSERT_NE(r.fom("success"), nullptr);
    EXPECT_EQ(r.fom("success")->raw, "Kernel done");
  }
  auto table = report.to_table().render();
  EXPECT_NE(table.find("SUCCESS"), std::string::npos);
}

TEST(Workspace, LifecycleEnforced) {
  benchpark::support::TempDir tmp;
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  EXPECT_THROW(ws.setup(), benchpark::ExperimentError);  // not configured
  ws.configure(benchpark::yaml::parse(kSaxpyRambleYaml));
  EXPECT_THROW(ws.run(), benchpark::ExperimentError);    // not set up
}

TEST(Workspace, UnknownAliasInEnvironmentThrows) {
  benchpark::support::TempDir tmp;
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  ws.configure(benchpark::yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          experiments:\n"
      "            e:\n"
      "              variables:\n"
      "                n: '512'\n"
      "  spack:\n"
      "    packages:\n"
      "      saxpy:\n"
      "        spack_spec: saxpy@1.0.0\n"
      "    environments:\n"
      "      saxpy:\n"
      "        packages:\n"
      "        - ghost-alias\n"));
  EXPECT_THROW(ws.setup(), benchpark::ExperimentError);
}

TEST(Workspace, ReusedWorkspaceIsReproducible) {
  benchpark::support::TempDir tmp;
  auto ws1 = make_saxpy_workspace(tmp);
  ws1.setup();
  ws1.run();
  auto report1 = ws1.analyze();

  benchpark::support::TempDir tmp2;
  auto ws2 = make_saxpy_workspace(tmp2);
  ws2.setup();
  ws2.run();
  auto report2 = ws2.analyze();

  // Simulated systems are deterministic: same FOMs bit-for-bit.
  ASSERT_EQ(report1.results.size(), report2.results.size());
  for (std::size_t i = 0; i < report1.results.size(); ++i) {
    ASSERT_NE(report1.results[i].fom("elapsed"), nullptr);
    ASSERT_NE(report2.results[i].fom("elapsed"), nullptr);
    EXPECT_DOUBLE_EQ(report1.results[i].fom("elapsed")->value,
                     report2.results[i].fom("elapsed")->value);
  }
}

TEST(Workspace, GpuExperimentOnAts2) {
  benchpark::support::TempDir tmp;
  auto system = sys::SystemRegistry::instance().get("ats2");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  ws.configure(benchpark::yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          variables:\n"
      "            n_ranks: '4'\n"
      "            processes_per_node: '4'\n"
      "          experiments:\n"
      "            saxpy_gpu_{n}:\n"
      "              variables:\n"
      "                n: '1048576'\n"
      "  spack:\n"
      "    packages:\n"
      "      saxpy:\n"
      "        spack_spec: saxpy@1.0.0 +cuda~openmp\n"
      "    environments:\n"
      "      saxpy:\n"
      "        packages:\n"
      "        - saxpy\n"));
  ws.setup();
  ASSERT_EQ(ws.prepared().size(), 1u);
  EXPECT_TRUE(ws.prepared()[0].use_gpu);
  // LSF system: jsrun launcher and #BSUB directives in the script.
  EXPECT_NE(ws.prepared()[0].script.find("jsrun"), std::string::npos);
  EXPECT_NE(ws.prepared()[0].script.find("#BSUB"), std::string::npos);
  ws.run();
  auto report = ws.analyze();
  EXPECT_EQ(report.num_success(), 1u);
}
