// Fault-injection unit tests: plan grammar, nth/count windows, seeded
// probability determinism, severity kinds, latency rules, per-site
// counters, and the global-plan programmability that chaos CI relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/fault.hpp"

using benchpark::Error;
using benchpark::PermanentError;
using benchpark::TransientError;
using benchpark::support::FaultKind;
using benchpark::support::FaultPlan;
using benchpark::support::FaultRule;
using benchpark::support::ScopedFaultPlan;
using benchpark::support::fault_hit;

TEST(FaultPlan, EmptyPlanIsFreeAndNeverFires) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.on_hit("buildcache.fetch", "abc", 1), 0.0);
  EXPECT_EQ(plan.total_hits(), 0u);  // unarmed plans do not even count
}

TEST(FaultPlan, ParsesSeedAndClauses) {
  auto plan = FaultPlan::parse(
      "seed=42; buildcache.fetch:nth=1 ; install.build_step:p=0.5,key=abc;"
      "ci.mirror:latency=1.5");
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_FALSE(plan.empty());
  // nth=1 → first attempt fails, second succeeds.
  EXPECT_THROW(plan.on_hit("buildcache.fetch", "h", 1), TransientError);
  EXPECT_DOUBLE_EQ(plan.on_hit("buildcache.fetch", "h", 2), 0.0);
  // Latency-only clause delays without failing.
  EXPECT_DOUBLE_EQ(plan.on_hit("ci.mirror", "repo#1", 1), 1.5);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("seed=banana"), Error);
  EXPECT_THROW(FaultPlan::parse("noparams"), Error);
  EXPECT_THROW(FaultPlan::parse("site:nth=0"), Error);
  EXPECT_THROW(FaultPlan::parse("site:p=1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("site:latency=-1"), Error);
  EXPECT_THROW(FaultPlan::parse("site:kind=sideways"), Error);
  EXPECT_THROW(FaultPlan::parse("site:bogus=1"), Error);
  // kind=none with no latency has no effect — reject rather than ignore.
  EXPECT_THROW(FaultPlan::parse("site:kind=none"), Error);
}

TEST(FaultPlan, NthWindowFailsExactlyCountAttempts) {
  auto plan = FaultPlan::parse("install.build_step:nth=2,count=2");
  EXPECT_DOUBLE_EQ(plan.on_hit("install.build_step", "h", 1), 0.0);
  EXPECT_THROW(plan.on_hit("install.build_step", "h", 2), TransientError);
  EXPECT_THROW(plan.on_hit("install.build_step", "h", 3), TransientError);
  EXPECT_DOUBLE_EQ(plan.on_hit("install.build_step", "h", 4), 0.0);
  // The window applies per operation, not globally: a different key sees
  // the same schedule.
  EXPECT_DOUBLE_EQ(plan.on_hit("install.build_step", "other", 1), 0.0);
  EXPECT_THROW(plan.on_hit("install.build_step", "other", 2), TransientError);
}

TEST(FaultPlan, KeyedRuleOnlyMatchesItsOperation) {
  auto plan = FaultPlan::parse("sched.job:nth=1,key=amg-run");
  EXPECT_THROW(plan.on_hit("sched.job", "amg-run", 1), TransientError);
  EXPECT_DOUBLE_EQ(plan.on_hit("sched.job", "saxpy-run", 1), 0.0);
  EXPECT_DOUBLE_EQ(plan.on_hit("other.site", "amg-run", 1), 0.0);
}

TEST(FaultPlan, PermanentKindThrowsPermanentError) {
  auto plan = FaultPlan::parse("install.build_step:nth=1,kind=permanent");
  EXPECT_THROW(plan.on_hit("install.build_step", "h", 1), PermanentError);
}

TEST(FaultPlan, ProbabilityScheduleIsAPureFunctionOfSeedAndInputs) {
  auto decide = [](std::uint64_t seed, std::string_view key,
                   std::uint64_t attempt) {
    FaultPlan plan;
    plan.set_seed(seed);
    FaultRule rule;
    rule.site = "buildcache.fetch";
    rule.probability = 0.5;
    plan.add_rule(rule);
    try {
      plan.on_hit("buildcache.fetch", key, attempt);
      return false;
    } catch (const TransientError&) {
      return true;
    }
  };

  // Same (seed, key, attempt) → same decision, independent of call order
  // or plan instance.
  std::vector<bool> first, second;
  for (std::uint64_t a = 1; a <= 32; ++a) first.push_back(decide(7, "h1", a));
  for (std::uint64_t a = 32; a >= 1; --a) {
    second.insert(second.begin(), decide(7, "h1", a));
  }
  EXPECT_EQ(first, second);

  // At p=0.5 over 32 attempts both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  // A different seed produces a different schedule somewhere.
  std::vector<bool> other_seed;
  for (std::uint64_t a = 1; a <= 32; ++a) {
    other_seed.push_back(decide(8, "h1", a));
  }
  EXPECT_NE(first, other_seed);
}

TEST(FaultPlan, CountersTrackHitsFailuresAndLatency) {
  auto plan = FaultPlan::parse("ci.job:nth=1,latency=0.5");
  EXPECT_THROW(plan.on_hit("ci.job", "build", 1), TransientError);
  EXPECT_DOUBLE_EQ(plan.on_hit("ci.job", "build", 2), 0.0);
  auto c = plan.counters("ci.job");
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.failures, 1u);
  EXPECT_DOUBLE_EQ(c.latency_seconds, 0.5);
  EXPECT_EQ(plan.total_hits(), 2u);
  EXPECT_EQ(plan.total_failures(), 1u);
  plan.clear();
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_hits(), 0u);
}

TEST(FaultPlan, GlobalPlanIsProgrammableAndScopedRestoreWorks) {
  {
    ScopedFaultPlan scope;
    FaultPlan::global().clear();
    FaultPlan::global() = FaultPlan::parse("runtime.exec:nth=1,key=saxpy");
    EXPECT_THROW(fault_hit("runtime.exec", "saxpy", 1), TransientError);
    EXPECT_DOUBLE_EQ(fault_hit("runtime.exec", "stream", 1), 0.0);
  }
  // Whatever the ambient plan is (usually empty; a chaos plan under
  // BENCHPARK_FAULT_PLAN), the scoped rule must be gone.
  {
    ScopedFaultPlan scope;
    FaultPlan::global().clear();
    EXPECT_DOUBLE_EQ(fault_hit("runtime.exec", "saxpy", 1), 0.0);
  }
}
