// Tests for the spec language: versions, variants, parsing, satisfies,
// constrain, hashing. The grammar under test is the paper's "common
// language" (Section 3.1), e.g. "amg2023+caliper" from Figure 2.
#include <gtest/gtest.h>

#include "src/spec/spec.hpp"
#include "src/support/error.hpp"

namespace spec = benchpark::spec;
using spec::Spec;
using spec::VariantValue;
using spec::Version;
using spec::VersionConstraint;

// ---------------------------------------------------------------- versions

TEST(Version, OrderingNumeric) {
  EXPECT_LT(Version("1.2"), Version("1.10"));
  EXPECT_LT(Version("2.3.6"), Version("2.3.7"));
  EXPECT_GT(Version("11.8.0"), Version("11.2.0"));
  EXPECT_EQ(Version("1.2.0"), Version("1.2.0"));
}

TEST(Version, ShorterIsLessWithEqualPrefix) {
  EXPECT_LT(Version("1.2"), Version("1.2.1"));
}

TEST(Version, MixedAlphanumericComponents) {
  Version v("2.3.7-gcc12.1.1-magic");
  EXPECT_EQ(v.str(), "2.3.7-gcc12.1.1-magic");
  EXPECT_GT(v.num_components(), 4u);
}

TEST(Version, HasPrefix) {
  EXPECT_TRUE(Version("1.2.9").has_prefix(Version("1.2")));
  EXPECT_TRUE(Version("1.2").has_prefix(Version("1.2")));
  EXPECT_FALSE(Version("1.20").has_prefix(Version("1.2")));
  EXPECT_FALSE(Version("1.2").has_prefix(Version("1.2.0")));
}

TEST(Version, EmptyThrows) {
  EXPECT_THROW(Version(""), benchpark::SpecError);
}

TEST(VersionConstraint, BareVersionIsPrefixMatch) {
  auto vc = VersionConstraint::parse("1.2");
  EXPECT_TRUE(vc.satisfied_by(Version("1.2")));
  EXPECT_TRUE(vc.satisfied_by(Version("1.2.9")));
  EXPECT_FALSE(vc.satisfied_by(Version("1.3")));
  EXPECT_FALSE(vc.satisfied_by(Version("1.20")));
}

TEST(VersionConstraint, ExactMatch) {
  auto vc = VersionConstraint::parse("=1.2");
  EXPECT_TRUE(vc.satisfied_by(Version("1.2")));
  EXPECT_FALSE(vc.satisfied_by(Version("1.2.0")));
}

TEST(VersionConstraint, ClosedRange) {
  auto vc = VersionConstraint::parse("1.2:1.8");
  EXPECT_TRUE(vc.satisfied_by(Version("1.2")));
  EXPECT_TRUE(vc.satisfied_by(Version("1.5.3")));
  EXPECT_TRUE(vc.satisfied_by(Version("1.8")));
  EXPECT_TRUE(vc.satisfied_by(Version("1.8.2")));  // prefix-inclusive bound
  EXPECT_FALSE(vc.satisfied_by(Version("1.9")));
  EXPECT_FALSE(vc.satisfied_by(Version("1.1.9")));
}

TEST(VersionConstraint, OpenRanges) {
  EXPECT_TRUE(VersionConstraint::parse("1.2:").satisfied_by(Version("9.0")));
  EXPECT_FALSE(VersionConstraint::parse("1.2:").satisfied_by(Version("1.1")));
  EXPECT_TRUE(VersionConstraint::parse(":1.8").satisfied_by(Version("0.1")));
  EXPECT_FALSE(VersionConstraint::parse(":1.8").satisfied_by(Version("2.0")));
}

TEST(VersionConstraint, UnionOfRanges) {
  auto vc = VersionConstraint::parse("1.2,2.0:2.4");
  EXPECT_TRUE(vc.satisfied_by(Version("1.2.1")));
  EXPECT_TRUE(vc.satisfied_by(Version("2.3")));
  EXPECT_FALSE(vc.satisfied_by(Version("1.5")));
}

TEST(VersionConstraint, Intersects) {
  EXPECT_TRUE(VersionConstraint::parse("1.2:1.8")
                  .intersects(VersionConstraint::parse("1.5:2.0")));
  EXPECT_FALSE(VersionConstraint::parse("1.2:1.4")
                   .intersects(VersionConstraint::parse("2.0:")));
  EXPECT_TRUE(VersionConstraint::parse("1.2")
                  .intersects(VersionConstraint::parse("1.2.5:")));
}

TEST(VersionConstraint, ConstrainNarrows) {
  auto vc = VersionConstraint::parse("1.2:");
  vc.constrain(VersionConstraint::parse(":1.8"));
  EXPECT_TRUE(vc.satisfied_by(Version("1.5")));
}

TEST(VersionConstraint, ConstrainConflictThrows) {
  auto vc = VersionConstraint::parse(":1.4");
  EXPECT_THROW(vc.constrain(VersionConstraint::parse("2.0:")),
               benchpark::SpecError);
}

TEST(VersionConstraint, SubsetOf) {
  EXPECT_TRUE(VersionConstraint::parse("1.4:1.6")
                  .subset_of(VersionConstraint::parse("1.2:1.8")));
  EXPECT_FALSE(VersionConstraint::parse("1.2:1.8")
                   .subset_of(VersionConstraint::parse("1.4:1.6")));
  EXPECT_TRUE(VersionConstraint::parse("=1.5")
                  .subset_of(VersionConstraint::parse("1.2:1.8")));
}

// ---------------------------------------------------------------- variants

TEST(VariantValue, ParseBooleanKeywords) {
  EXPECT_TRUE(VariantValue::parse("true").as_bool());
  EXPECT_FALSE(VariantValue::parse("False").as_bool());
}

TEST(VariantValue, ParseSingleAndMulti) {
  EXPECT_EQ(VariantValue::parse("Release").as_single(), "Release");
  auto multi = VariantValue::parse("a,b,a");
  EXPECT_EQ(multi.as_multi(), (std::vector<std::string>{"a", "b"}));
}

TEST(VariantValue, MultiSatisfiesSubset) {
  auto mine = VariantValue::multi({"a", "b", "c"});
  EXPECT_TRUE(mine.satisfies(VariantValue::multi({"a", "c"})));
  EXPECT_FALSE(mine.satisfies(VariantValue::multi({"d"})));
}

TEST(VariantValue, BoolMismatchFailsSatisfies) {
  EXPECT_FALSE(VariantValue::boolean(true).satisfies(
      VariantValue::boolean(false)));
  EXPECT_FALSE(VariantValue::boolean(true).satisfies(
      VariantValue::single("x")));
}

// ------------------------------------------------------------------- parse

TEST(SpecParse, NameOnly) {
  auto s = Spec::parse("amg2023");
  EXPECT_EQ(s.name(), "amg2023");
  EXPECT_TRUE(s.versions().is_any());
}

TEST(SpecParse, Figure2Spec) {
  auto s = Spec::parse("amg2023+caliper");
  EXPECT_EQ(s.name(), "amg2023");
  EXPECT_TRUE(s.variant_enabled("caliper"));
}

TEST(SpecParse, VersionAttached) {
  auto s = Spec::parse("saxpy@1.0.0");
  EXPECT_TRUE(s.versions().satisfied_by(Version("1.0.0")));
  EXPECT_FALSE(s.versions().satisfied_by(Version("2.0")));
}

TEST(SpecParse, DisabledVariant) {
  auto s = Spec::parse("hypre~cuda");
  const auto* v = s.variant("cuda");
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->as_bool());
}

TEST(SpecParse, KeyValueVariant) {
  auto s = Spec::parse("openblas threads=openmp");
  EXPECT_EQ(s.variant("threads")->as_single(), "openmp");
}

TEST(SpecParse, Target) {
  auto s = Spec::parse("saxpy target=zen3");
  EXPECT_EQ(s.target(), "zen3");
}

TEST(SpecParse, Compiler) {
  auto s = Spec::parse("amg2023%gcc@12.1.1");
  ASSERT_TRUE(s.compiler().has_value());
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_TRUE(s.compiler()->versions.satisfied_by(Version("12.1.1")));
}

TEST(SpecParse, FullSpecFromFigure10) {
  // "saxpy@1.0.0 +openmp ^cmake@3.23.1" (caret dep from ramble.yaml).
  auto s = Spec::parse("saxpy@1.0.0 +openmp ^cmake@3.23.1");
  EXPECT_EQ(s.name(), "saxpy");
  EXPECT_TRUE(s.variant_enabled("openmp"));
  ASSERT_NE(s.dependency("cmake"), nullptr);
  EXPECT_TRUE(
      s.dependency("cmake")->versions().satisfied_by(Version("3.23.1")));
}

TEST(SpecParse, MultipleDependencies) {
  auto s = Spec::parse("amg2023 ^hypre+cuda ^mvapich2@2.3.7");
  EXPECT_EQ(s.dependencies().size(), 2u);
  EXPECT_TRUE(s.dependency("hypre")->variant_enabled("cuda"));
}

TEST(SpecParse, GluedSigils) {
  auto s = Spec::parse("amg2023@1.1+caliper%gcc@12.1.1");
  EXPECT_EQ(s.name(), "amg2023");
  EXPECT_TRUE(s.variant_enabled("caliper"));
  EXPECT_EQ(s.compiler()->name, "gcc");
}

TEST(SpecParse, AnonymousConstraint) {
  auto s = Spec::parse("+cuda");
  EXPECT_TRUE(s.name().empty());
  EXPECT_TRUE(s.variant_enabled("cuda"));
}

TEST(SpecParse, VersionRangeSpec) {
  auto s = Spec::parse("cmake@3.23.1:");
  EXPECT_TRUE(s.versions().satisfied_by(Version("3.26.3")));
  EXPECT_FALSE(s.versions().satisfied_by(Version("3.20")));
}

TEST(SpecParse, ComplexVersionString) {
  auto s = Spec::parse("mvapich2@2.3.7-gcc12.1.1-magic");
  EXPECT_TRUE(
      s.versions().satisfied_by(Version("2.3.7-gcc12.1.1-magic")));
}

TEST(SpecParse, Errors) {
  EXPECT_THROW(Spec::parse(""), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("pkg@"), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("pkg+"), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("pkg%"), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("pkg^"), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("pkg key="), benchpark::SpecError);
}

TEST(SpecParse, RoundTrip) {
  for (const char* text : {
           "amg2023",
           "amg2023+caliper",
           "saxpy@1.0.0+openmp~cuda",
           "openblas threads=openmp",
           "amg2023+caliper%gcc@12.1.1",
           "saxpy@1.0.0+openmp%gcc@12.1.1 target=broadwell ^cmake@3.23.1:",
       }) {
    auto s = Spec::parse(text);
    auto reparsed = Spec::parse(s.str());
    EXPECT_TRUE(s == reparsed) << text << " -> " << s.str();
  }
}

// --------------------------------------------------------------- satisfies

TEST(SpecSatisfies, NameAndVersion) {
  auto s = Spec::parse("hypre@2.28.0");
  EXPECT_TRUE(s.satisfies(Spec::parse("hypre")));
  EXPECT_TRUE(s.satisfies(Spec::parse("hypre@2.24:")));
  EXPECT_FALSE(s.satisfies(Spec::parse("hypre@:2.26")));
  EXPECT_FALSE(s.satisfies(Spec::parse("amg2023")));
}

TEST(SpecSatisfies, AnonymousConstraints) {
  auto s = Spec::parse("hypre+cuda");
  EXPECT_TRUE(s.satisfies(Spec::parse("+cuda")));
  EXPECT_FALSE(s.satisfies(Spec::parse("~cuda")));
}

TEST(SpecSatisfies, AbstractMissingVariantPasses) {
  // An abstract spec without the variant *could* still satisfy it.
  auto s = Spec::parse("hypre");
  EXPECT_TRUE(s.satisfies(Spec::parse("+cuda")));
}

TEST(SpecSatisfies, ConcreteMissingVariantFails) {
  auto s = Spec::parse("zlib@=1.3 %gcc@=12.1.1 target=broadwell");
  s.mark_concrete();
  EXPECT_FALSE(s.satisfies(Spec::parse("+cuda")));
}

TEST(SpecSatisfies, CompilerConstraint) {
  auto s = Spec::parse("saxpy%gcc@12.1.1");
  EXPECT_TRUE(s.satisfies(Spec::parse("%gcc")));
  EXPECT_TRUE(s.satisfies(Spec::parse("%gcc@12:")));
  EXPECT_FALSE(s.satisfies(Spec::parse("%clang")));
}

TEST(SpecSatisfies, DependencyConstraint) {
  auto s = Spec::parse("amg2023 ^hypre@2.28.0+cuda");
  EXPECT_TRUE(s.satisfies(Spec::parse("amg2023 ^hypre+cuda")));
  EXPECT_FALSE(s.satisfies(Spec::parse("amg2023 ^hypre~cuda")));
}

// --------------------------------------------------------------- constrain

TEST(SpecConstrain, MergesVersionAndVariants) {
  auto s = Spec::parse("hypre@2.24:");
  s.constrain(Spec::parse("hypre+cuda@:2.28"));
  EXPECT_TRUE(s.variant_enabled("cuda"));
  EXPECT_TRUE(s.versions().satisfied_by(Version("2.26.0")));
}

TEST(SpecConstrain, NameConflictThrows) {
  auto s = Spec::parse("hypre");
  EXPECT_THROW(s.constrain(Spec::parse("zlib")), benchpark::SpecError);
}

TEST(SpecConstrain, VariantConflictThrows) {
  auto s = Spec::parse("hypre+cuda");
  EXPECT_THROW(s.constrain(Spec::parse("hypre~cuda")), benchpark::SpecError);
}

TEST(SpecConstrain, CompilerConflictThrows) {
  auto s = Spec::parse("saxpy%gcc");
  EXPECT_THROW(s.constrain(Spec::parse("saxpy%clang")), benchpark::SpecError);
}

TEST(SpecConstrain, AnonymousAppliesToNamed) {
  auto s = Spec::parse("saxpy");
  s.constrain(Spec::parse("+openmp target=zen3"));
  EXPECT_TRUE(s.variant_enabled("openmp"));
  EXPECT_EQ(s.target(), "zen3");
}

TEST(SpecConstrain, MergesDependencies) {
  auto s = Spec::parse("amg2023 ^hypre@2.24:");
  s.constrain(Spec::parse("amg2023 ^hypre+cuda ^caliper"));
  EXPECT_TRUE(s.dependency("hypre")->variant_enabled("cuda"));
  ASSERT_NE(s.dependency("caliper"), nullptr);
}

// ------------------------------------------------------------- concreteness

namespace {
Spec make_concrete(const std::string& text) {
  auto s = Spec::parse(text);
  for (auto& d : s.dependencies_mut()) d.mark_concrete();
  s.mark_concrete();
  return s;
}
}  // namespace

TEST(SpecConcrete, RequiresPinnedVersionCompilerTarget) {
  EXPECT_THROW(Spec::parse("zlib").mark_concrete(), benchpark::SpecError);
  EXPECT_THROW(Spec::parse("zlib@=1.3").mark_concrete(),
               benchpark::SpecError);
  EXPECT_THROW(Spec::parse("zlib@=1.3%gcc@=12.1.1").mark_concrete(),
               benchpark::SpecError);
  EXPECT_NO_THROW(make_concrete("zlib@=1.3%gcc@=12.1.1 target=broadwell"));
}

TEST(SpecConcrete, DagHashStable) {
  auto a = make_concrete("zlib@=1.3%gcc@=12.1.1 target=broadwell");
  auto b = make_concrete("zlib@=1.3%gcc@=12.1.1 target=broadwell");
  EXPECT_EQ(a.dag_hash(), b.dag_hash());
  EXPECT_EQ(a.dag_hash().size(), 13u);
}

TEST(SpecConcrete, DagHashSensitiveToInputs) {
  auto base = make_concrete("zlib@=1.3%gcc@=12.1.1 target=broadwell");
  auto other_version =
      make_concrete("zlib@=1.2.13%gcc@=12.1.1 target=broadwell");
  auto other_target = make_concrete("zlib@=1.3%gcc@=12.1.1 target=zen3");
  EXPECT_NE(base.dag_hash(), other_version.dag_hash());
  EXPECT_NE(base.dag_hash(), other_target.dag_hash());
}

TEST(SpecConcrete, DagHashIncludesDependencies) {
  auto with_dep = make_concrete(
      "hdf5@=1.14.1%gcc@=12.1.1 target=broadwell ^zlib@=1.3%gcc@=12.1.1 "
      "target=broadwell");
  auto without = make_concrete("hdf5@=1.14.1%gcc@=12.1.1 target=broadwell");
  EXPECT_NE(with_dep.dag_hash(), without.dag_hash());
}

TEST(SpecConcrete, HashRequiresConcrete) {
  EXPECT_THROW(Spec::parse("zlib").dag_hash(), benchpark::SpecError);
}
