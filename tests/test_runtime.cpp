// Simulated-runtime tests: reproducibility, cross-system shape, the
// Section 7.1 math-library crash, and native execution.
#include <gtest/gtest.h>

#include "src/runtime/simexec.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/system/system.hpp"

namespace rt = benchpark::runtime;
namespace sys = benchpark::system;
using rt::RunParams;

namespace {

RunParams saxpy_params(std::uint64_t n, int nodes, int ranks, int threads) {
  RunParams p;
  p.app = "saxpy";
  p.n = n;
  p.n_nodes = nodes;
  p.n_ranks = ranks;
  p.n_threads = threads;
  return p;
}

const sys::SystemDescription& cts1() {
  return sys::SystemRegistry::instance().get("cts1");
}

}  // namespace

TEST(SimExec, SaxpyProducesFigure8Output) {
  auto outcome = rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 2));
  EXPECT_TRUE(outcome.success);
  EXPECT_NE(outcome.output.find("Kernel done"), std::string::npos);
  EXPECT_NE(outcome.output.find("n=1024"), std::string::npos);
  EXPECT_GT(outcome.elapsed_seconds, 0);
}

TEST(SimExec, IdenticalRunsAreBitReproducible) {
  auto a = rt::run_simulated(cts1(), saxpy_params(4096, 2, 16, 2));
  auto b = rt::run_simulated(cts1(), saxpy_params(4096, 2, 16, 2));
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

TEST(SimExec, RepetitionSaltChangesNoise) {
  auto params = saxpy_params(4096, 2, 16, 2);
  auto a = rt::run_simulated(cts1(), params);
  params.repetition = 1;
  auto b = rt::run_simulated(cts1(), params);
  EXPECT_NE(a.elapsed_seconds, b.elapsed_seconds);
}

TEST(SimExec, DifferentSystemsDiffer) {
  const auto& ats2 = sys::SystemRegistry::instance().get("ats2");
  auto on_cts = rt::run_simulated(cts1(), saxpy_params(1 << 22, 2, 16, 2));
  auto on_ats = rt::run_simulated(ats2, saxpy_params(1 << 22, 2, 16, 2));
  EXPECT_NE(on_cts.elapsed_seconds, on_ats.elapsed_seconds);
}

TEST(SimExec, OversubscriptionRejected) {
  // 36 cores/node on cts1: 8 ranks x 8 threads = 64 > 36.
  EXPECT_THROW(rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 8)),
               benchpark::SystemError);
}

TEST(SimExec, TooManyNodesRejected) {
  EXPECT_THROW(rt::run_simulated(cts1(), saxpy_params(1024, 100000, 8, 1)),
               benchpark::SystemError);
}

TEST(SimExec, GpuRunRequiresGpuSystem) {
  auto params = saxpy_params(1 << 20, 1, 4, 1);
  params.use_gpu = true;
  EXPECT_THROW(rt::run_simulated(cts1(), params), benchpark::SystemError);
  const auto& ats2 = sys::SystemRegistry::instance().get("ats2");
  auto outcome = rt::run_simulated(ats2, params);
  EXPECT_TRUE(outcome.success);
}

TEST(SimExec, GpuWinsOnLargeSaxpyLosesOnSmall) {
  const auto& ats2 = sys::SystemRegistry::instance().get("ats2");
  auto small_cpu = saxpy_params(512, 1, 4, 1);
  auto small_gpu = small_cpu;
  small_gpu.use_gpu = true;
  auto big_cpu = saxpy_params(1 << 26, 1, 4, 10);
  auto big_gpu = big_cpu;
  big_gpu.use_gpu = true;
  big_gpu.n_threads = 1;

  EXPECT_LT(rt::run_simulated(ats2, small_cpu).elapsed_seconds,
            rt::run_simulated(ats2, small_gpu).elapsed_seconds);
  EXPECT_GT(rt::run_simulated(ats2, big_cpu).elapsed_seconds,
            rt::run_simulated(ats2, big_gpu).elapsed_seconds);
}

TEST(SimExec, AmgReportsFoms) {
  RunParams p;
  p.app = "amg2023";
  p.n = 1 << 10;
  p.n_nodes = 2;
  p.n_ranks = 32;
  p.n_threads = 2;
  auto outcome = rt::run_simulated(cts1(), p);
  EXPECT_TRUE(outcome.success);
  EXPECT_NE(outcome.output.find("Figure of Merit (FOM_Setup):"),
            std::string::npos);
  EXPECT_NE(outcome.output.find("Figure of Merit (FOM_Solve):"),
            std::string::npos);
  EXPECT_NE(outcome.output.find("AMG converged"), std::string::npos);
}

TEST(SimExec, AmgStrongScalingSpeedsUpSolve) {
  RunParams p;
  p.app = "amg2023";
  p.n = 1 << 12;
  p.n_threads = 1;
  p.n_nodes = 1;
  p.n_ranks = 4;
  auto few = rt::run_simulated(cts1(), p);
  p.n_nodes = 8;
  p.n_ranks = 64;
  auto many = rt::run_simulated(cts1(), p);
  EXPECT_LT(many.elapsed_seconds, few.elapsed_seconds);
}

TEST(SimExec, Section71MathLibraryCrashOnCloud) {
  const auto& cloud = sys::SystemRegistry::instance().get("cloud-cts");
  RunParams p;
  p.app = "amg2023";
  p.n = 1 << 10;
  p.n_nodes = 1;
  p.n_ranks = 8;
  auto outcome = rt::run_simulated(cloud, p);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.exit_code, 132);
  EXPECT_NE(outcome.output.find("Illegal instruction"), std::string::npos);
  EXPECT_NE(outcome.output.find("rdseed"), std::string::npos);

  // The same binary runs fine on the on-prem twin (the paper's puzzle).
  auto on_prem = rt::run_simulated(cts1(), p);
  EXPECT_TRUE(on_prem.success);
}

TEST(SimExec, SaxpyUnaffectedByCloudQuirk) {
  // The microbenchmark without the math library works on both systems.
  const auto& cloud = sys::SystemRegistry::instance().get("cloud-cts");
  auto outcome = rt::run_simulated(cloud, saxpy_params(1024, 1, 8, 2));
  EXPECT_TRUE(outcome.success);
}

TEST(SimExec, OsuBcastTable) {
  RunParams p;
  p.app = "osu-bcast";
  p.n = 1 << 16;
  p.n_nodes = 4;
  p.n_ranks = 128;
  auto outcome = rt::run_simulated(cts1(), p);
  EXPECT_TRUE(outcome.success);
  EXPECT_NE(outcome.output.find("OSU MPI Broadcast Latency Test"),
            std::string::npos);
}

TEST(SimExec, UnknownAppThrows) {
  RunParams p;
  p.app = "hpl";
  EXPECT_THROW(rt::run_simulated(cts1(), p), benchpark::SystemError);
}

TEST(NativeExec, SaxpyRunsForReal) {
  auto outcome = rt::run_native(saxpy_params(4096, 1, 1, 2));
  EXPECT_TRUE(outcome.success);
  EXPECT_NE(outcome.output.find("Kernel done"), std::string::npos);
}

TEST(NativeExec, AmgRunsForReal) {
  RunParams p;
  p.app = "amg2023";
  p.n = 31;
  p.n_threads = 1;
  auto outcome = rt::run_native(p);
  EXPECT_TRUE(outcome.success);
  EXPECT_NE(outcome.output.find("AMG converged"), std::string::npos);
}

TEST(NativeExec, UnknownAppThrows) {
  RunParams p;
  p.app = "osu-bcast";  // no native path
  EXPECT_THROW(rt::run_native(p), benchpark::SystemError);
}

TEST(SimExec, InjectedExecFaultFailsRunWithSysexitsCode) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  // Repetition 0 (attempt 1) crashes; repetition 1 runs clean — a flaky
  // first launch, the shape schedulers actually see.
  plan = benchpark::support::FaultPlan::parse("runtime.exec:nth=1,key=saxpy");

  auto crashed = rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 2));
  EXPECT_FALSE(crashed.success);
  EXPECT_EQ(crashed.exit_code, 75);  // EX_TEMPFAIL
  EXPECT_NE(crashed.output.find("injected transient fault"),
            std::string::npos);

  auto retried = saxpy_params(1024, 1, 8, 2);
  retried.repetition = 1;
  auto clean = rt::run_simulated(cts1(), retried);
  EXPECT_TRUE(clean.success);
  EXPECT_EQ(clean.exit_code, 0);
}

TEST(SimExec, PermanentExecFaultUsesSoftwareErrorCode) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse(
      "runtime.exec:nth=1,key=saxpy,kind=permanent");
  auto outcome = rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 2));
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.exit_code, 70);  // EX_SOFTWARE
}

TEST(SimExec, InjectedLatencySlowsTheRunWithoutFailingIt) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto baseline = rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 2));
  plan = benchpark::support::FaultPlan::parse(
      "runtime.exec:latency=2.5,key=saxpy");
  auto delayed = rt::run_simulated(cts1(), saxpy_params(1024, 1, 8, 2));
  EXPECT_TRUE(delayed.success);
  EXPECT_DOUBLE_EQ(delayed.elapsed_seconds, baseline.elapsed_seconds + 2.5);
}
