// Concretizer tests: version selection, virtual resolution, externals
// (Figure 4), compiler/target assignment, unification (Figure 3's
// "concretizer: unify: true"), conflicts, packages.yaml round-trips, the
// unified concretize_all(ConcretizeRequest) entry point, the
// ConcretizationError taxonomy, and the deprecated legacy overloads.
#include <gtest/gtest.h>

#include "src/concretizer/concretizer.hpp"
#include "src/pkg/repo.hpp"
#include "src/pkg/yaml_repo.hpp"
#include "src/support/error.hpp"
#include "src/yaml/parser.hpp"

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
namespace spec = benchpark::spec;
using spec::Spec;
using spec::Version;

namespace {

/// A cts1-like scope: gcc+intel compilers, MKL and mvapich2 externals
/// (exactly the Figure 4 configuration), broadwell target.
cz::Config cts1_like_config() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "/usr/tce/bin/gcc",
                       "/usr/tce/bin/g++"});
  config.add_compiler({"gcc", Version("10.3.1"), "", ""});
  config.add_compiler({"intel", Version("2021.6.0"), "", ""});
  config.set_default_target("broadwell");
  config.set_default_compiler("gcc@12.1.1");

  auto packages = benchpark::yaml::parse(
      "packages:\n"
      "  blas:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n"
      "  lapack:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n"
      "  mpi:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  mvapich2:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  intel-oneapi-mkl:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n");
  config.load_packages_yaml(packages);
  return config;
}

cz::Concretizer make_concretizer() {
  return cz::Concretizer(pkg::default_repo_stack(), cts1_like_config());
}

/// One root through the unified API, legacy semantics (fresh context, no
/// memo cache) so every test stays independent of suite order.
Spec concretize1(const cz::Concretizer& c, const std::string& text) {
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  return std::move(c.concretize_all(request).specs.front());
}

/// One root resolved inside a shared context (unify semantics).
Spec concretize_in(const cz::Concretizer& c, const std::string& text,
                   cz::Context& ctx) {
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse(text)};
  request.unify = true;
  request.context = &ctx;
  request.use_cache = false;
  return std::move(c.concretize_all(request).specs.front());
}

}  // namespace

TEST(Concretizer, PinsHighestVersion) {
  auto c = make_concretizer();
  auto s = concretize1(c, "zlib");
  EXPECT_TRUE(s.concrete());
  EXPECT_EQ(s.concrete_version().str(), "1.3");
}

TEST(Concretizer, RespectsVersionConstraint) {
  auto c = make_concretizer();
  auto s = concretize1(c, "zlib@:1.2");
  EXPECT_EQ(s.concrete_version().str(), "1.2.13");
}

TEST(Concretizer, UnsatisfiableVersionThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "zlib@99:"), benchpark::ConcretizationError);
}

TEST(Concretizer, AppliesVariantDefaults) {
  auto c = make_concretizer();
  auto s = concretize1(c, "saxpy");
  EXPECT_TRUE(s.variant_enabled("openmp"));   // default true
  EXPECT_FALSE(s.variant_enabled("cuda"));    // default false
}

TEST(Concretizer, UserVariantOverridesDefault) {
  auto c = make_concretizer();
  auto s = concretize1(c, "saxpy~openmp");
  EXPECT_FALSE(s.variant_enabled("openmp"));
}

TEST(Concretizer, UnknownVariantThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "zlib+nonexistent"),
               benchpark::ConcretizationError);
}

TEST(Concretizer, DisallowedVariantValueThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "openblas threads=fibers"),
               benchpark::ConcretizationError);
}

TEST(Concretizer, AssignsDefaultCompilerAndTarget) {
  auto c = make_concretizer();
  auto s = concretize1(c, "zlib");
  ASSERT_TRUE(s.compiler().has_value());
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_TRUE(s.compiler()->versions.satisfied_by(Version("12.1.1")));
  EXPECT_EQ(s.target(), "broadwell");
}

TEST(Concretizer, UserCompilerSelection) {
  auto c = make_concretizer();
  auto s = concretize1(c, "zlib%intel");
  EXPECT_EQ(s.compiler()->name, "intel");
}

TEST(Concretizer, CompilerVersionRangePicksHighest) {
  auto c = make_concretizer();
  auto s = concretize1(c, "zlib%gcc@10:");
  EXPECT_TRUE(s.compiler()->versions.satisfied_by(Version("12.1.1")));
}

TEST(Concretizer, UnknownCompilerThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "zlib%xl"), benchpark::ConcretizationError);
}

TEST(Concretizer, ExternalShortCircuitsBuild) {
  auto c = make_concretizer();
  auto s = concretize1(c, "intel-oneapi-mkl");
  EXPECT_TRUE(s.is_external());
  EXPECT_EQ(s.external_prefix(), "/path/to/intel-oneapi-mkl");
  EXPECT_TRUE(s.dependencies().empty());
}

TEST(Concretizer, VirtualResolvesToExternalProvider) {
  // Figure 4: the "mpi" virtual must resolve to the system mvapich2.
  auto c = make_concretizer();
  auto s = concretize1(c, "saxpy");
  const auto* mpi_dep = s.dependency("mvapich2");
  ASSERT_NE(mpi_dep, nullptr) << s.str();
  EXPECT_TRUE(mpi_dep->is_external());
  EXPECT_EQ(mpi_dep->concrete_version().str(), "2.3.7");
}

TEST(Concretizer, BlasVirtualResolvesToMkl) {
  auto c = make_concretizer();
  auto s = concretize1(c, "hypre");
  const auto* blas = s.dependency("intel-oneapi-mkl");
  ASSERT_NE(blas, nullptr);
  EXPECT_TRUE(blas->is_external());
}

TEST(Concretizer, UserProviderChoiceWins) {
  // No externals scope: pick providers freely.
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  cz::Concretizer c(pkg::default_repo_stack(), config);

  auto s = concretize1(c, "saxpy ^openmpi");
  EXPECT_NE(s.dependency("openmpi"), nullptr);
  EXPECT_EQ(s.dependency("mvapich2"), nullptr);
}

TEST(Concretizer, ProviderPreferenceFromConfig) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  config.package("mpi").preferred_providers = {"openmpi"};
  cz::Concretizer c(pkg::default_repo_stack(), config);

  auto s = concretize1(c, "saxpy");
  EXPECT_NE(s.dependency("openmpi"), nullptr);
}

TEST(Concretizer, NotBuildableWithoutExternalThrows) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("zlib").buildable = false;
  cz::Concretizer c(pkg::default_repo_stack(), config);
  EXPECT_THROW(concretize1(c, "zlib"), benchpark::ConcretizationError);
}

TEST(Concretizer, VersionPreferenceFromConfig) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("hypre").preferred_versions = {"2.26.0"};
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = concretize1(c, "hypre");
  EXPECT_EQ(s.concrete_version().str(), "2.26.0");
}

TEST(Concretizer, RequireConstraintApplied) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("hypre").require = Spec::parse("@:2.26");
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = concretize1(c, "hypre");
  EXPECT_EQ(s.concrete_version().str(), "2.26.0");
}

TEST(Concretizer, ConditionalDependencyActivation) {
  auto c = make_concretizer();
  auto with_caliper = concretize1(c, "amg2023+caliper");
  EXPECT_NE(with_caliper.dependency("caliper"), nullptr);
  EXPECT_NE(with_caliper.dependency("adiak"), nullptr);

  auto plain = concretize1(c, "amg2023~caliper");
  EXPECT_EQ(plain.dependency("caliper"), nullptr);
}

TEST(Concretizer, VariantPropagationViaConditionalDeps) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = concretize1(c, "amg2023+cuda");
  const auto* hypre = s.dependency("hypre");
  ASSERT_NE(hypre, nullptr);
  EXPECT_TRUE(hypre->variant_enabled("cuda"));
  // ... and hypre+cuda pulls the CUDA runtime into the DAG.
  EXPECT_NE(hypre->dependency("cuda"), nullptr);
}

TEST(Concretizer, ConflictSurfaces) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "saxpy+cuda+rocm"), benchpark::PackageError);
}

TEST(Concretizer, DepsInheritCompilerAndTarget) {
  auto c = make_concretizer();
  auto s = concretize1(c, "amg2023%gcc@12.1.1 target=broadwell");
  const auto* hypre = s.dependency("hypre");
  ASSERT_NE(hypre, nullptr);
  EXPECT_EQ(hypre->compiler()->name, "gcc");
  EXPECT_EQ(hypre->target(), "broadwell");
}

TEST(Concretizer, UnifyReusesResolvedSpecs) {
  auto c = make_concretizer();
  cz::Context ctx;
  auto amg = concretize_in(c, "amg2023+caliper", ctx);
  auto saxpy = concretize_in(c, "saxpy", ctx);
  // Both share one mvapich2 resolution in the context.
  EXPECT_EQ(amg.dependency("mvapich2")->dag_hash(),
            saxpy.dependency("mvapich2")->dag_hash());
}

TEST(Concretizer, UnifyConflictThrows) {
  auto c = make_concretizer();
  cz::Context ctx;
  (void)concretize_in(c, "hypre~openmp", ctx);
  EXPECT_THROW(concretize_in(c, "hypre+openmp", ctx),
               benchpark::ConcretizationError);
}

TEST(Concretizer, NoUnifyAllowsDivergence) {
  auto c = make_concretizer();
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse("hypre~openmp"), Spec::parse("hypre+openmp")};
  request.unify = false;
  request.use_cache = false;
  auto specs = c.concretize_all(request).specs;
  EXPECT_FALSE(specs[0].variant_enabled("openmp"));
  EXPECT_TRUE(specs[1].variant_enabled("openmp"));
}

TEST(Concretizer, UnknownUserDependencyThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "zlib ^hypre"),
               benchpark::ConcretizationError);
}

TEST(Concretizer, DeterministicDagHashes) {
  auto c1 = make_concretizer();
  auto c2 = make_concretizer();
  EXPECT_EQ(concretize1(c1, "amg2023+caliper").dag_hash(),
            concretize1(c2, "amg2023+caliper").dag_hash());
}

TEST(Concretizer, Figure2WorkflowSpec) {
  // "spack add amg2023+caliper; spack concretize" end to end.
  auto c = make_concretizer();
  auto s = concretize1(c, "amg2023+caliper");
  EXPECT_TRUE(s.concrete());
  EXPECT_TRUE(s.variant_enabled("caliper"));
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_EQ(s.target(), "broadwell");
  // Full closure: hypre, blas external, mpi external, caliper, adiak.
  EXPECT_NE(s.dependency("hypre"), nullptr);
  EXPECT_NE(s.dependency("caliper"), nullptr);
}

// ---------------------------------------------------------------------------
// concretize_all: the unified request/result API.

TEST(ConcretizeAll, ResultsAlignWithRoots) {
  auto c = make_concretizer();
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse("zlib"), Spec::parse("hypre"),
                   Spec::parse("saxpy")};
  request.unify = true;
  request.use_cache = false;
  auto result = c.concretize_all(request);
  ASSERT_EQ(result.specs.size(), 3u);
  EXPECT_EQ(result.specs[0].name(), "zlib");
  EXPECT_EQ(result.specs[1].name(), "hypre");
  EXPECT_EQ(result.specs[2].name(), "saxpy");
  for (const auto& s : result.specs) EXPECT_TRUE(s.concrete());
}

TEST(ConcretizeAll, EmptyRequestIsEmptyResult) {
  auto c = make_concretizer();
  auto result = c.concretize_all({});
  EXPECT_TRUE(result.specs.empty());
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_EQ(result.cache_misses, 0u);
}

TEST(ConcretizeAll, UnifySharesResolutionsAcrossRoots) {
  auto c = make_concretizer();
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse("amg2023+caliper"), Spec::parse("saxpy")};
  request.unify = true;
  request.use_cache = false;
  auto result = c.concretize_all(request);
  EXPECT_EQ(result.specs[0].dependency("mvapich2")->dag_hash(),
            result.specs[1].dependency("mvapich2")->dag_hash());
}

TEST(ConcretizeAll, ParallelMatchesSerial) {
  auto c = make_concretizer();
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse("amg2023+caliper"), Spec::parse("saxpy"),
                   Spec::parse("hypre"), Spec::parse("zlib"),
                   Spec::parse("osu-micro-benchmarks"), Spec::parse("openblas")};
  request.unify = true;
  request.use_cache = false;

  auto serial = request;
  serial.threads = 1;
  auto parallel = request;
  parallel.threads = 8;

  auto serial_result = c.concretize_all(serial);
  auto parallel_result = c.concretize_all(parallel);
  ASSERT_EQ(serial_result.specs.size(), parallel_result.specs.size());
  for (std::size_t i = 0; i < serial_result.specs.size(); ++i) {
    EXPECT_EQ(serial_result.specs[i].dag_hash(),
              parallel_result.specs[i].dag_hash())
        << serial_result.specs[i].name();
  }
}

TEST(ConcretizeAll, SharedContextAccumulates) {
  auto c = make_concretizer();
  cz::Context ctx;
  cz::ConcretizeRequest request;
  request.roots = {Spec::parse("amg2023+caliper")};
  request.unify = true;
  request.context = &ctx;
  request.use_cache = false;
  (void)c.concretize_all(request);
  EXPECT_GT(ctx.size(), 0u);
  ASSERT_NE(ctx.find("mvapich2"), nullptr);

  // A second request against the same context unifies with the first.
  cz::ConcretizeRequest second;
  second.roots = {Spec::parse("saxpy")};
  second.unify = true;
  second.context = &ctx;
  second.use_cache = false;
  auto saxpy = c.concretize_all(second).specs.front();
  EXPECT_EQ(saxpy.dependency("mvapich2")->dag_hash(),
            ctx.find("mvapich2")->dag_hash());
}

TEST(ConcretizeAll, StatsSnapshotIsByValue) {
  auto c = make_concretizer();
  auto before = c.stats();
  (void)concretize1(c, "zlib");
  auto after = c.stats();
  // `before` is a snapshot: it must not have moved.
  EXPECT_EQ(before.specs_resolved, 0u);
  EXPECT_GT(after.specs_resolved, before.specs_resolved);
}

TEST(ConcretizeAll, ScopeFingerprintReflectsConfig) {
  auto c1 = make_concretizer();
  auto c2 = make_concretizer();
  EXPECT_EQ(c1.scope_fingerprint(), c2.scope_fingerprint());

  cz::Config other = cts1_like_config();
  other.set_default_target("zen3");
  cz::Concretizer c3(pkg::default_repo_stack(), other);
  EXPECT_NE(c1.scope_fingerprint(), c3.scope_fingerprint());
}

// ---------------------------------------------------------------------------
// Error taxonomy: each failure mode has a dedicated ConcretizationError
// subclass naming the conflicting constraints.

TEST(ConcretizerErrors, UnsatisfiableVersion) {
  auto c = make_concretizer();
  try {
    (void)concretize1(c, "zlib@99:");
    FAIL() << "expected UnsatisfiableVersionError";
  } catch (const benchpark::UnsatisfiableVersionError& e) {
    EXPECT_NE(std::string(e.what()).find("zlib"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("99:"), std::string::npos);
    // The message names the versions that *are* known.
    EXPECT_NE(std::string(e.what()).find("1.3"), std::string::npos);
  }
}

TEST(ConcretizerErrors, NoProvider) {
  // Every mpi provider unbuildable, no external: the virtual is stuck.
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  for (const char* p : {"mvapich2", "openmpi", "spectrum-mpi", "cray-mpich"}) {
    config.package(p).buildable = false;
  }
  cz::Concretizer c(pkg::default_repo_stack(), config);
  try {
    (void)concretize1(c, "saxpy");
    FAIL() << "expected NoProviderError";
  } catch (const benchpark::NoProviderError& e) {
    EXPECT_NE(std::string(e.what()).find("mpi"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mvapich2"), std::string::npos);
  }
}

TEST(ConcretizerErrors, UnifyConflict) {
  auto c = make_concretizer();
  cz::Context ctx;
  (void)concretize_in(c, "hypre~openmp", ctx);
  try {
    (void)concretize_in(c, "hypre+openmp", ctx);
    FAIL() << "expected UnifyConflictError";
  } catch (const benchpark::UnifyConflictError& e) {
    // Both sides of the conflict are named.
    EXPECT_NE(std::string(e.what()).find("~openmp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("+openmp"), std::string::npos);
  }
}

TEST(ConcretizerErrors, DependencyCycle) {
  auto repo = pkg::repo_from_yaml(
      "cyclic", benchpark::yaml::parse("packages:\n"
                                       "  alpha:\n"
                                       "    versions: ['1.0']\n"
                                       "    depends_on: [beta]\n"
                                       "  beta:\n"
                                       "    versions: ['1.0']\n"
                                       "    depends_on: [alpha]\n"));
  pkg::RepoStack stack;
  stack.push_back(std::move(repo));
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  cz::Concretizer c(std::move(stack), config);
  try {
    (void)concretize1(c, "alpha");
    FAIL() << "expected DependencyCycleError";
  } catch (const benchpark::DependencyCycleError& e) {
    // The whole chain is spelled out.
    EXPECT_NE(std::string(e.what()).find("alpha -> beta -> alpha"),
              std::string::npos);
  }
}

TEST(ConcretizerErrors, TaxonomyIsConcretizationError) {
  // Every subclass must stay catchable as ConcretizationError (and Error).
  auto c = make_concretizer();
  EXPECT_THROW(concretize1(c, "zlib@99:"), benchpark::ConcretizationError);
  EXPECT_THROW(concretize1(c, "zlib@99:"), benchpark::Error);
}

// ---------------------------------------------------------------------------
// Config round-trips.

TEST(ConcretizerConfig, PackagesYamlRoundTrip) {
  auto config = cts1_like_config();
  auto emitted = config.packages_yaml();
  cz::Config reloaded;
  reloaded.add_compiler({"gcc", Version("12.1.1"), "", ""});
  reloaded.load_packages_yaml(emitted);
  const auto* mpi = reloaded.settings_for("mpi");
  ASSERT_NE(mpi, nullptr);
  ASSERT_EQ(mpi->externals.size(), 1u);
  EXPECT_EQ(mpi->externals[0].prefix, "/path/to/mvapich2");
  EXPECT_FALSE(mpi->buildable);
}

TEST(ConcretizerConfig, CompilersYamlRoundTrip) {
  auto config = cts1_like_config();
  auto emitted = config.compilers_yaml();
  cz::Config reloaded;
  reloaded.load_compilers_yaml(emitted);
  EXPECT_EQ(reloaded.compilers().size(), config.compilers().size());
  EXPECT_NE(reloaded.find_compiler({"intel", {}}), nullptr);
}

TEST(ConcretizerConfig, MergeOverlays) {
  cz::Config base;
  base.add_compiler({"gcc", Version("10.3.1"), "", ""});
  base.set_default_target("x86_64");
  base.package("zlib").preferred_versions = {"1.2.13"};

  cz::Config site;
  site.set_default_target("zen3");

  base.merge_from(site);
  EXPECT_EQ(base.default_target(), "zen3");
  ASSERT_NE(base.settings_for("zlib"), nullptr);  // untouched by overlay
}

// ---------------------------------------------------------------------------
// The request API covers everything the removed legacy overloads did:
// single roots, text parsing, shared contexts, unify on/off, and stats
// accumulation — pinned here so the consolidation never regresses them.

TEST(ConcretizerRequestApi, SingleRoot) {
  auto c = make_concretizer();
  auto s = std::move(
      c.concretize_all({.roots = {Spec::parse("zlib")},
                        .unify = false,
                        .use_cache = false,
                        .threads = 1})
          .specs.front());
  EXPECT_TRUE(s.concrete());
  EXPECT_EQ(s.concrete_version().str(), "1.3");
}

TEST(ConcretizerRequestApi, ParsedTextRoot) {
  auto c = make_concretizer();
  auto s = std::move(
      c.concretize_all({.roots = {Spec::parse("zlib@:1.2")},
                        .unify = false,
                        .use_cache = false,
                        .threads = 1})
          .specs.front());
  EXPECT_EQ(s.concrete_version().str(), "1.2.13");
}

TEST(ConcretizerRequestApi, SharedContextUnifies) {
  auto c = make_concretizer();
  cz::Concretizer::Context ctx;  // legacy nested name still works
  auto amg = std::move(
      c.concretize_all({.roots = {Spec::parse("amg2023+caliper")},
                        .context = &ctx,
                        .use_cache = false,
                        .threads = 1})
          .specs.front());
  auto saxpy = std::move(
      c.concretize_all({.roots = {Spec::parse("saxpy")},
                        .context = &ctx,
                        .use_cache = false,
                        .threads = 1})
          .specs.front());
  EXPECT_EQ(amg.dependency("mvapich2")->dag_hash(),
            saxpy.dependency("mvapich2")->dag_hash());
}

TEST(ConcretizerRequestApi, UnifyFalseRootsIndependent) {
  auto c = make_concretizer();
  auto specs = c.concretize_all({.roots = {Spec::parse("hypre~openmp"),
                                           Spec::parse("hypre+openmp")},
                                 .unify = false,
                                 .use_cache = false,
                                 .threads = 1})
                   .specs;
  EXPECT_FALSE(specs[0].variant_enabled("openmp"));
  EXPECT_TRUE(specs[1].variant_enabled("openmp"));
}

TEST(ConcretizerRequestApi, StatsAccumulate) {
  auto c = make_concretizer();
  (void)c.concretize_all({.roots = {Spec::parse("amg2023+caliper")},
                          .unify = false,
                          .use_cache = false,
                          .threads = 1});
  EXPECT_GT(c.stats().specs_resolved, 3u);
  EXPECT_GE(c.stats().externals_used, 2u);
  EXPECT_GE(c.stats().virtuals_resolved, 2u);
}
