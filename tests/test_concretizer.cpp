// Concretizer tests: version selection, virtual resolution, externals
// (Figure 4), compiler/target assignment, unification (Figure 3's
// "concretizer: unify: true"), conflicts, and packages.yaml round-trips.
#include <gtest/gtest.h>

#include "src/concretizer/concretizer.hpp"
#include "src/pkg/repo.hpp"
#include "src/support/error.hpp"
#include "src/yaml/parser.hpp"

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
namespace spec = benchpark::spec;
using spec::Spec;
using spec::Version;

namespace {

/// A cts1-like scope: gcc+intel compilers, MKL and mvapich2 externals
/// (exactly the Figure 4 configuration), broadwell target.
cz::Config cts1_like_config() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "/usr/tce/bin/gcc",
                       "/usr/tce/bin/g++"});
  config.add_compiler({"gcc", Version("10.3.1"), "", ""});
  config.add_compiler({"intel", Version("2021.6.0"), "", ""});
  config.set_default_target("broadwell");
  config.set_default_compiler("gcc@12.1.1");

  auto packages = benchpark::yaml::parse(
      "packages:\n"
      "  blas:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n"
      "  lapack:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n"
      "  mpi:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  mvapich2:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  intel-oneapi-mkl:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/intel-oneapi-mkl\n"
      "    buildable: false\n");
  config.load_packages_yaml(packages);
  return config;
}

cz::Concretizer make_concretizer() {
  return cz::Concretizer(pkg::default_repo_stack(), cts1_like_config());
}

}  // namespace

TEST(Concretizer, PinsHighestVersion) {
  auto c = make_concretizer();
  auto s = c.concretize("zlib");
  EXPECT_TRUE(s.concrete());
  EXPECT_EQ(s.concrete_version().str(), "1.3");
}

TEST(Concretizer, RespectsVersionConstraint) {
  auto c = make_concretizer();
  auto s = c.concretize("zlib@:1.2");
  EXPECT_EQ(s.concrete_version().str(), "1.2.13");
}

TEST(Concretizer, UnsatisfiableVersionThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("zlib@99:"), benchpark::ConcretizationError);
}

TEST(Concretizer, AppliesVariantDefaults) {
  auto c = make_concretizer();
  auto s = c.concretize("saxpy");
  EXPECT_TRUE(s.variant_enabled("openmp"));   // default true
  EXPECT_FALSE(s.variant_enabled("cuda"));    // default false
}

TEST(Concretizer, UserVariantOverridesDefault) {
  auto c = make_concretizer();
  auto s = c.concretize("saxpy~openmp");
  EXPECT_FALSE(s.variant_enabled("openmp"));
}

TEST(Concretizer, UnknownVariantThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("zlib+nonexistent"),
               benchpark::ConcretizationError);
}

TEST(Concretizer, DisallowedVariantValueThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("openblas threads=fibers"),
               benchpark::ConcretizationError);
}

TEST(Concretizer, AssignsDefaultCompilerAndTarget) {
  auto c = make_concretizer();
  auto s = c.concretize("zlib");
  ASSERT_TRUE(s.compiler().has_value());
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_TRUE(s.compiler()->versions.satisfied_by(Version("12.1.1")));
  EXPECT_EQ(s.target(), "broadwell");
}

TEST(Concretizer, UserCompilerSelection) {
  auto c = make_concretizer();
  auto s = c.concretize("zlib%intel");
  EXPECT_EQ(s.compiler()->name, "intel");
}

TEST(Concretizer, CompilerVersionRangePicksHighest) {
  auto c = make_concretizer();
  auto s = c.concretize("zlib%gcc@10:");
  EXPECT_TRUE(s.compiler()->versions.satisfied_by(Version("12.1.1")));
}

TEST(Concretizer, UnknownCompilerThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("zlib%xl"), benchpark::ConcretizationError);
}

TEST(Concretizer, ExternalShortCircuitsBuild) {
  auto c = make_concretizer();
  auto s = c.concretize("intel-oneapi-mkl");
  EXPECT_TRUE(s.is_external());
  EXPECT_EQ(s.external_prefix(), "/path/to/intel-oneapi-mkl");
  EXPECT_TRUE(s.dependencies().empty());
}

TEST(Concretizer, VirtualResolvesToExternalProvider) {
  // Figure 4: the "mpi" virtual must resolve to the system mvapich2.
  auto c = make_concretizer();
  auto s = c.concretize("saxpy");
  const auto* mpi_dep = s.dependency("mvapich2");
  ASSERT_NE(mpi_dep, nullptr) << s.str();
  EXPECT_TRUE(mpi_dep->is_external());
  EXPECT_EQ(mpi_dep->concrete_version().str(), "2.3.7");
}

TEST(Concretizer, BlasVirtualResolvesToMkl) {
  auto c = make_concretizer();
  auto s = c.concretize("hypre");
  const auto* blas = s.dependency("intel-oneapi-mkl");
  ASSERT_NE(blas, nullptr);
  EXPECT_TRUE(blas->is_external());
}

TEST(Concretizer, UserProviderChoiceWins) {
  // No externals scope: pick providers freely.
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  cz::Concretizer c(pkg::default_repo_stack(), config);

  auto s = c.concretize("saxpy ^openmpi");
  EXPECT_NE(s.dependency("openmpi"), nullptr);
  EXPECT_EQ(s.dependency("mvapich2"), nullptr);
}

TEST(Concretizer, ProviderPreferenceFromConfig) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  config.package("mpi").preferred_providers = {"openmpi"};
  cz::Concretizer c(pkg::default_repo_stack(), config);

  auto s = c.concretize("saxpy");
  EXPECT_NE(s.dependency("openmpi"), nullptr);
}

TEST(Concretizer, NotBuildableWithoutExternalThrows) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("zlib").buildable = false;
  cz::Concretizer c(pkg::default_repo_stack(), config);
  EXPECT_THROW(c.concretize("zlib"), benchpark::ConcretizationError);
}

TEST(Concretizer, VersionPreferenceFromConfig) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("hypre").preferred_versions = {"2.26.0"};
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = c.concretize("hypre");
  EXPECT_EQ(s.concrete_version().str(), "2.26.0");
}

TEST(Concretizer, RequireConstraintApplied) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.package("hypre").require = Spec::parse("@:2.26");
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = c.concretize("hypre");
  EXPECT_EQ(s.concrete_version().str(), "2.26.0");
}

TEST(Concretizer, ConditionalDependencyActivation) {
  auto c = make_concretizer();
  auto with_caliper = c.concretize("amg2023+caliper");
  EXPECT_NE(with_caliper.dependency("caliper"), nullptr);
  EXPECT_NE(with_caliper.dependency("adiak"), nullptr);

  auto plain = c.concretize("amg2023~caliper");
  EXPECT_EQ(plain.dependency("caliper"), nullptr);
}

TEST(Concretizer, VariantPropagationViaConditionalDeps) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("zen3");
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = c.concretize("amg2023+cuda");
  const auto* hypre = s.dependency("hypre");
  ASSERT_NE(hypre, nullptr);
  EXPECT_TRUE(hypre->variant_enabled("cuda"));
  // ... and hypre+cuda pulls the CUDA runtime into the DAG.
  EXPECT_NE(hypre->dependency("cuda"), nullptr);
}

TEST(Concretizer, ConflictSurfaces) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("saxpy+cuda+rocm"), benchpark::PackageError);
}

TEST(Concretizer, DepsInheritCompilerAndTarget) {
  auto c = make_concretizer();
  auto s = c.concretize("amg2023%gcc@12.1.1 target=broadwell");
  const auto* hypre = s.dependency("hypre");
  ASSERT_NE(hypre, nullptr);
  EXPECT_EQ(hypre->compiler()->name, "gcc");
  EXPECT_EQ(hypre->target(), "broadwell");
}

TEST(Concretizer, UnifyReusesResolvedSpecs) {
  auto c = make_concretizer();
  cz::Concretizer::Context ctx;
  auto amg = c.concretize(Spec::parse("amg2023+caliper"), ctx);
  auto saxpy = c.concretize(Spec::parse("saxpy"), ctx);
  // Both share one mvapich2 resolution in the context.
  EXPECT_EQ(amg.dependency("mvapich2")->dag_hash(),
            saxpy.dependency("mvapich2")->dag_hash());
}

TEST(Concretizer, UnifyConflictThrows) {
  auto c = make_concretizer();
  cz::Concretizer::Context ctx;
  (void)c.concretize(Spec::parse("hypre~openmp"), ctx);
  EXPECT_THROW(c.concretize(Spec::parse("hypre+openmp"), ctx),
               benchpark::ConcretizationError);
}

TEST(Concretizer, NoUnifyAllowsDivergence) {
  auto c = make_concretizer();
  auto specs = c.concretize_together(
      {Spec::parse("hypre~openmp"), Spec::parse("hypre+openmp")},
      /*unify=*/false);
  EXPECT_FALSE(specs[0].variant_enabled("openmp"));
  EXPECT_TRUE(specs[1].variant_enabled("openmp"));
}

TEST(Concretizer, UnknownUserDependencyThrows) {
  auto c = make_concretizer();
  EXPECT_THROW(c.concretize("zlib ^hypre"), benchpark::ConcretizationError);
}

TEST(Concretizer, DeterministicDagHashes) {
  auto c1 = make_concretizer();
  auto c2 = make_concretizer();
  EXPECT_EQ(c1.concretize("amg2023+caliper").dag_hash(),
            c2.concretize("amg2023+caliper").dag_hash());
}

TEST(Concretizer, Figure2WorkflowSpec) {
  // "spack add amg2023+caliper; spack concretize" end to end.
  auto c = make_concretizer();
  auto s = c.concretize("amg2023+caliper");
  EXPECT_TRUE(s.concrete());
  EXPECT_TRUE(s.variant_enabled("caliper"));
  EXPECT_EQ(s.compiler()->name, "gcc");
  EXPECT_EQ(s.target(), "broadwell");
  // Full closure: hypre, blas external, mpi external, caliper, adiak.
  EXPECT_NE(s.dependency("hypre"), nullptr);
  EXPECT_NE(s.dependency("caliper"), nullptr);
}

TEST(ConcretizerConfig, PackagesYamlRoundTrip) {
  auto config = cts1_like_config();
  auto emitted = config.packages_yaml();
  cz::Config reloaded;
  reloaded.add_compiler({"gcc", Version("12.1.1"), "", ""});
  reloaded.load_packages_yaml(emitted);
  const auto* mpi = reloaded.settings_for("mpi");
  ASSERT_NE(mpi, nullptr);
  ASSERT_EQ(mpi->externals.size(), 1u);
  EXPECT_EQ(mpi->externals[0].prefix, "/path/to/mvapich2");
  EXPECT_FALSE(mpi->buildable);
}

TEST(ConcretizerConfig, CompilersYamlRoundTrip) {
  auto config = cts1_like_config();
  auto emitted = config.compilers_yaml();
  cz::Config reloaded;
  reloaded.load_compilers_yaml(emitted);
  EXPECT_EQ(reloaded.compilers().size(), config.compilers().size());
  EXPECT_NE(reloaded.find_compiler({"intel", {}}), nullptr);
}

TEST(ConcretizerConfig, MergeOverlays) {
  cz::Config base;
  base.add_compiler({"gcc", Version("10.3.1"), "", ""});
  base.set_default_target("x86_64");
  base.package("zlib").preferred_versions = {"1.2.13"};

  cz::Config site;
  site.set_default_target("zen3");

  base.merge_from(site);
  EXPECT_EQ(base.default_target(), "zen3");
  ASSERT_NE(base.settings_for("zlib"), nullptr);  // untouched by overlay
}

TEST(Concretizer, StatsAccumulate) {
  auto c = make_concretizer();
  (void)c.concretize("amg2023+caliper");
  EXPECT_GT(c.stats().specs_resolved, 3u);
  EXPECT_GE(c.stats().externals_used, 2u);
  EXPECT_GE(c.stats().virtuals_resolved, 2u);
}
