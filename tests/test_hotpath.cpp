// Lock-free hot-path tests: zero steady-state heap allocations in warm
// template expansion (counting global allocator), and torn-read-free
// stats() snapshots hammered against concurrent writers on all three
// RCU caches. This suite carries the "threads" label so the TSAN CI job
// runs it under the race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretize_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/expansion.hpp"
#include "src/spec/spec.hpp"
#include "src/support/arena.hpp"

// ----------------------------------------------------- counting allocator
// Global operator new/delete overrides for this binary only: when armed,
// every heap allocation bumps the counter. The zero-allocation test warms
// its caches/arena/buffers, arms the counter, runs the steady-state loop
// single-threaded, and asserts the count stayed zero.

namespace {
std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_count_allocations{false};

void* counted_alloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
namespace ramble = benchpark::ramble;
namespace support = benchpark::support;
using benchpark::buildcache::BinaryCache;
using benchpark::spec::Spec;
using benchpark::spec::Version;

struct AllocationGuard {
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() {
    g_count_allocations.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

cz::Concretizer simple_concretizer() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  config.package("mpi").preferred_providers = {"mvapich2"};
  return cz::Concretizer(pkg::default_repo_stack(), config);
}

std::vector<Spec> distinct_concrete_specs() {
  auto concretizer = simple_concretizer();
  std::vector<Spec> specs;
  for (const char* name :
       {"zlib", "cmake", "gmake", "adiak", "caliper", "hypre", "openblas",
        "python"}) {
    cz::ConcretizeRequest request;
    request.roots = {Spec::parse(name)};
    request.unify = false;
    request.use_cache = false;
    request.threads = 1;
    specs.push_back(
        std::move(concretizer.concretize_all(request).specs.front()));
  }
  return specs;
}

}  // namespace

// ------------------------------------------------ zero-allocation warm path

TEST(HotPathAlloc, WarmTemplateExpansionAllocatesNothing) {
  ramble::VariableMap vars{
      {"n_nodes", "4"},
      {"processes_per_node", "8"},
      {"n_ranks", "{processes_per_node} * {n_nodes}"},
      {"mpi_command", "srun -N {n_nodes} -n {n_ranks}"},
      {"exe", "saxpy"},
  };
  auto tmpl = ramble::TemplateCache::global().get(
      "{mpi_command} ./{exe} --ranks {n_ranks} --again {n_ranks}");

  support::Arena arena;
  std::string out;
  // Warm everything: compile cache entries for the value templates, the
  // arena's high-water blocks, and `out`'s capacity.
  for (int i = 0; i < 3; ++i) {
    arena.reset();
    out.clear();
    tmpl->expand_into(out, vars, true, arena);
  }
  EXPECT_EQ(out, "srun -N 4 -n 32 ./saxpy --ranks 32 --again 32");

  AllocationGuard guard;
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    out.clear();
    tmpl->expand_into(out, vars, true, arena);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "warm expansion must be heap-allocation-free";
  EXPECT_EQ(out, "srun -N 4 -n 32 ./saxpy --ranks 32 --again 32");
}

TEST(HotPathAlloc, ArenaExpansionMatchesPlainExpansion) {
  ramble::VariableMap vars{
      {"a", "1"}, {"b", "{a} + 2"}, {"idx", "2"}, {"p2", "deep"}};
  const std::string text = "x={b} nested={p{idx}} esc={{lit}}";
  auto tmpl = ramble::TemplateCache::global().get(text);
  support::Arena arena;
  EXPECT_EQ(tmpl->expand(vars, true, arena), tmpl->expand(vars, true));
  arena.reset();
  EXPECT_EQ(tmpl->expand(vars, false, arena), "x=3 nested=deep esc={lit}");
}

TEST(HotPathAlloc, ArenaReuseAcrossManyExpansionsStaysBounded) {
  ramble::VariableMap vars{{"v", "value"}};
  auto tmpl = ramble::TemplateCache::global().get("{v}/{v}/{v}");
  support::Arena arena;
  std::string out;
  tmpl->expand_into(out, vars, true, arena);
  const auto blocks = arena.block_count();
  for (int i = 0; i < 1000; ++i) {
    arena.reset();
    out.clear();
    tmpl->expand_into(out, vars, true, arena);
  }
  EXPECT_EQ(arena.block_count(), blocks)
      << "steady-state expansion must not grow the arena";
  EXPECT_EQ(out, "value/value/value");
}

// -------------------------------------------- stats() vs concurrent writers
// Each test hammers stats() from the main thread while writer threads
// insert concurrently, asserting every snapshot is internally consistent
// (effect counters never exceed their cause counters) and monotone across
// successive snapshots. TSAN covers the memory-order claims.

TEST(HotPathStats, BinaryCacheSnapshotsConsistentUnderPushes) {
  BinaryCache cache;
  cache.set_capacity_bytes(6 * 100);  // forces a rolling eviction stream
  auto specs = distinct_concrete_specs();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 300; ++i) {
        const auto& s = specs[static_cast<std::size_t>((w + i) %
                                                       specs.size())];
        cache.push(s, 100);
        (void)cache.fetch(s);
      }
    });
  }

  benchpark::buildcache::CacheStats prev;
  while (!stop.load(std::memory_order_relaxed)) {
    auto st = cache.stats();
    // Cause-before-effect: an eviction implies a completed push.
    EXPECT_LE(st.evictions, st.pushes);
    // Monotone: no counter ever runs backwards.
    EXPECT_GE(st.hits, prev.hits);
    EXPECT_GE(st.misses, prev.misses);
    EXPECT_GE(st.pushes, prev.pushes);
    EXPECT_GE(st.retries, prev.retries);
    EXPECT_GE(st.evictions, prev.evictions);
    prev = st;
    if (prev.pushes >= 4 * 300) break;
  }
  for (auto& t : writers) t.join();

  auto final_stats = cache.stats();
  EXPECT_EQ(final_stats.pushes, 4u * 300u);
  EXPECT_LE(final_stats.evictions, final_stats.pushes);
  EXPECT_EQ(final_stats.lookups(), 4u * 300u);
}

TEST(HotPathStats, ConcretizeCacheSnapshotsConsistentUnderInserts) {
  cz::ConcretizationCache cache;
  cache.set_capacity(4);  // eviction + insert races
  auto specs = distinct_concrete_specs();

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 250; ++i) {
        const auto idx = static_cast<std::size_t>((w * 3 + i) % specs.size());
        const std::string key =
            "key-" + std::to_string(w) + "-" + std::to_string(i % 8);
        cache.insert(key, specs[idx]);
        (void)cache.lookup(key);
        if (i % 16 == 0) (void)cache.invalidate(key);
      }
    });
  }

  cz::ConcretizeCacheStats prev;
  while (true) {
    auto st = cache.stats();
    EXPECT_LE(st.evictions, st.inserts);
    EXPECT_LE(st.invalidations, st.inserts);
    EXPECT_GE(st.hits, prev.hits);
    EXPECT_GE(st.misses, prev.misses);
    EXPECT_GE(st.inserts, prev.inserts);
    EXPECT_GE(st.evictions, prev.evictions);
    EXPECT_GE(st.invalidations, prev.invalidations);
    prev = st;
    if (st.inserts >= 4 * 250) break;
  }
  for (auto& t : writers) t.join();

  auto final_stats = cache.stats();
  EXPECT_EQ(final_stats.inserts, 4u * 250u);
  EXPECT_LE(final_stats.evictions, final_stats.inserts);
  EXPECT_LE(cache.size(), 4u);
}

TEST(HotPathStats, TemplateCacheSnapshotsConsistentUnderGets) {
  ramble::TemplateCache cache;
  cache.set_capacity(8);

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 250; ++i) {
        auto tmpl = cache.get("tpl-" + std::to_string(w) + "-{x}-" +
                              std::to_string(i % 12));
        ASSERT_NE(tmpl, nullptr);
      }
    });
  }

  ramble::TemplateCacheStats prev;
  while (true) {
    auto st = cache.stats();
    EXPECT_LE(st.evictions, st.inserts);
    EXPECT_LE(st.inserts, st.misses);  // every insert began as a miss
    EXPECT_GE(st.hits, prev.hits);
    EXPECT_GE(st.misses, prev.misses);
    EXPECT_GE(st.inserts, prev.inserts);
    EXPECT_GE(st.evictions, prev.evictions);
    prev = st;
    if (st.lookups() >= 4 * 250) break;
  }
  for (auto& t : writers) t.join();

  auto final_stats = cache.stats();
  EXPECT_EQ(final_stats.lookups(), 4u * 250u);
  EXPECT_LE(final_stats.evictions, final_stats.inserts);
  EXPECT_LE(cache.size(), 8u);
}

// --------------------------------------------------- RCU reader guarantees

TEST(HotPathRcu, ReadersSeeFullyFormedEntriesDuringWrites) {
  // Readers race get()/fetch() against writers; every observed entry must
  // be complete (a snapshot is published only after the entry is built).
  BinaryCache cache;
  auto specs = distinct_concrete_specs();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      cache.push(specs[static_cast<std::size_t>(i) % specs.size()],
                 1000 + static_cast<std::uint64_t>(i));
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const auto& s : specs) {
          auto entry = cache.fetch(s);
          if (entry) {
            // A published entry always carries its key and a sequence.
            EXPECT_EQ(entry->dag_hash, s.dag_hash());
            EXPECT_GT(entry->sequence, 0u);
            EXPECT_GE(entry->size_bytes, 1000u);
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(cache.size(), specs.size());
}

TEST(HotPathRcu, TemplateCacheHitReturnsSameCompilation) {
  // Warm hits must alias one compiled object (shared snapshot), not
  // recompile per call.
  ramble::TemplateCache cache;
  auto first = cache.get("{a}-{b}");
  auto again = cache.get("{a}-{b}");
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}
