// Binary-cache unit tests: cold/warm hit-miss accounting, the transfer
// cost model, and thread-safety of the sharded mirror under concurrent
// push/fetch traffic (the paper's rolling cache is shared by every CI
// site at once).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/obs/trace.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
using benchpark::buildcache::BinaryCache;
using benchpark::spec::Version;

namespace {

cz::Concretizer simple_concretizer() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  config.package("mpi").preferred_providers = {"mvapich2"};
  return cz::Concretizer(pkg::default_repo_stack(), config);
}

/// One root through the unified API, legacy semantics (fresh context,
/// serial, no memo cache).
benchpark::spec::Spec concretize1(const cz::Concretizer& c,
                                  const std::string& text) {
  cz::ConcretizeRequest request;
  request.roots = {benchpark::spec::Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

std::vector<benchpark::spec::Spec> distinct_concrete_specs() {
  auto concretizer = simple_concretizer();
  std::vector<benchpark::spec::Spec> specs;
  for (const char* name :
       {"zlib", "cmake", "gmake", "adiak", "caliper", "hypre", "openblas",
        "python"}) {
    specs.push_back(concretize1(concretizer, name));
  }
  return specs;
}

}  // namespace

TEST(BuildCache, ColdThenWarmAccounting) {
  BinaryCache cache;
  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");

  EXPECT_FALSE(cache.fetch(spec).has_value());  // cold miss
  cache.push(spec, 1 << 20);
  auto entry = cache.fetch(spec);  // warm hit
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->size_bytes, 1u << 20);
  EXPECT_EQ(entry->dag_hash, spec.dag_hash());

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.pushes, 1u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(BuildCache, FetchCostModelIsLatencyPlusBandwidth) {
  BinaryCache cache(0.5, 2.0e6);
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(4'000'000), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(0), 0.5);

  BinaryCache defaults;
  EXPECT_LT(defaults.fetch_cost_seconds(1 << 20),
            defaults.fetch_cost_seconds(256u << 20));
}

TEST(BuildCache, PushOverwritesSameHash) {
  BinaryCache cache;
  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  cache.push(spec, 100);
  cache.push(spec, 200);
  EXPECT_EQ(cache.size(), 1u);
  auto entry = cache.fetch(spec);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->size_bytes, 200u);
  EXPECT_EQ(cache.stats().pushes, 2u);
}

TEST(BuildCache, ConcurrentPushFetchStress) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;

  std::atomic<std::size_t> fetch_calls{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto& mine = specs[(t + round) % specs.size()];
        cache.push(mine, 1000u + static_cast<std::uint64_t>(round));
        const auto& theirs = specs[(t * 3 + round * 7) % specs.size()];
        (void)cache.fetch(theirs);
        fetch_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), specs.size());
  for (const auto& spec : specs) EXPECT_TRUE(cache.contains(spec));
  auto stats = cache.stats();
  EXPECT_EQ(stats.pushes, static_cast<std::size_t>(kThreads) * kRounds);
  EXPECT_EQ(stats.lookups(), fetch_calls.load());
}

TEST(BuildCache, ConcurrentWarmFetchesAllHit) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  for (const auto& spec : specs) cache.push(spec, 1 << 20);

  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& spec : specs) {
          EXPECT_TRUE(cache.fetch(spec).has_value());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits,
            static_cast<std::size_t>(kThreads) * kRounds * specs.size());
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0);
}

TEST(BuildCache, TransientFetchFaultsAreRetriedInternally) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  BinaryCache cache;
  cache.push(spec, 1 << 20);

  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.nth = 1;  // first attempt of every fetch fails; retry recovers
  plan.add_rule(rule);

  auto entry = cache.fetch(spec);
  ASSERT_TRUE(entry.has_value());
  EXPECT_GT(entry->injected_latency_seconds, 0.0);  // re-request round trip
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);  // the retried request counts once
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.retries, 1u);
}

TEST(BuildCache, ExhaustedFetchRetriesThrowTransient) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  BinaryCache cache;
  cache.push(spec, 1 << 20);

  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.nth = 1;
  rule.count = 99;
  plan.add_rule(rule);

  EXPECT_THROW((void)cache.fetch(spec), benchpark::TransientError);
  // The failed request never reached the mirror: no hit, no miss.
  EXPECT_EQ(cache.stats().lookups(), 0u);
  EXPECT_EQ(cache.stats().retries,
            static_cast<std::size_t>(cache.fetch_retries()));
}

// ------------------------------------------------ rolling eviction

TEST(BuildCache, EvictsOldestWhenOverCapacity) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  cache.set_capacity_bytes(3 << 20);  // room for three 1 MiB artifacts
  for (std::size_t i = 0; i < 5; ++i) {
    cache.push(specs[i], 1 << 20);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.total_bytes(), cache.capacity_bytes());
  // The two oldest pushes rolled off; the three newest remain.
  EXPECT_FALSE(cache.contains(specs[0]));
  EXPECT_FALSE(cache.contains(specs[1]));
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(cache.contains(specs[i])) << specs[i].name();
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(BuildCache, OverwriteRefreshesEvictionOrder) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  cache.set_capacity_bytes(2 << 20);
  cache.push(specs[0], 1 << 20);
  cache.push(specs[1], 1 << 20);
  // Re-pushing the oldest makes it the newest; the next eviction takes
  // specs[1] instead.
  cache.push(specs[0], 1 << 20);
  cache.push(specs[2], 1 << 20);
  EXPECT_TRUE(cache.contains(specs[0]));
  EXPECT_FALSE(cache.contains(specs[1]));
  EXPECT_TRUE(cache.contains(specs[2]));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BuildCache, ArtifactLargerThanCapacityIsEvictedImmediately) {
  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  BinaryCache cache;
  cache.set_capacity_bytes(100);
  cache.push(spec, 1000);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_bytes(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.fetch(spec).has_value());
}

TEST(BuildCache, OverwriteAccountsByteDelta) {
  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  BinaryCache cache;
  cache.push(spec, 500);
  EXPECT_EQ(cache.total_bytes(), 500u);
  cache.push(spec, 200);  // shrink
  EXPECT_EQ(cache.total_bytes(), 200u);
  cache.push(spec, 900);  // grow
  EXPECT_EQ(cache.total_bytes(), 900u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(BuildCache, ConcurrentPushesRespectCapacityInvariant) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  const std::uint64_t capacity = 4 << 20;
  cache.set_capacity_bytes(capacity);
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        cache.push(specs[(t + round) % specs.size()], 1 << 20);
        // No capacity assertion here: a concurrent observer may see the
        // cache transiently over capacity between a push's insert and
        // its eviction sweep; the bound holds at quiescence.
        (void)cache.fetch(specs[(t * 5 + round) % specs.size()]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.total_bytes(), capacity);
  EXPECT_LE(cache.size(), 4u);
  auto stats = cache.stats();
  EXPECT_EQ(stats.pushes, static_cast<std::size_t>(kThreads) * kRounds);
  // Byte ledger still consistent with the surviving entries.
  std::uint64_t resident = 0;
  for (const auto& spec : specs) {
    if (cache.contains(spec)) resident += 1 << 20;
  }
  EXPECT_EQ(cache.total_bytes(), resident);
}

// --------------------------------- stats exactness under fault plans

TEST(BuildCache, ConcurrentStatsExactUnderFaultPlan) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.nth = 1;  // every fetch's first attempt fails, retry recovers
  rule.latency_seconds = 0.05;
  plan.add_rule(rule);

  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  for (const auto& spec : specs) cache.push(spec, 1 << 20);

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<std::size_t> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        auto entry = cache.fetch(specs[(t + round) % specs.size()]);
        ASSERT_TRUE(entry.has_value());
        EXPECT_GT(entry->injected_latency_seconds, 0.0);
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto total = static_cast<std::size_t>(kThreads) * kRounds;
  EXPECT_EQ(successes.load(), total);
  auto stats = cache.stats();
  // Exactly one hit and one retry per successful fetch — no lost or
  // double-counted updates even with every request faulting once.
  EXPECT_EQ(stats.hits, total);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.retries, total);
}

TEST(BuildCache, FetchCostEdgeCases) {
  BinaryCache cache(0.25, 1.0e6);
  // Zero bytes costs exactly the round-trip latency.
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(0), 0.25);
  // Cost is monotone and linear in size.
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(2'000'000) -
                       cache.fetch_cost_seconds(1'000'000),
                   1.0);
  // A missing artifact still pays no transfer: the miss is latency-only
  // in the installer's model, and the entry is absent.
  auto concretizer = simple_concretizer();
  auto spec = concretize1(concretizer, "zlib");
  EXPECT_FALSE(cache.fetch(spec).has_value());
}

// ----------------------------------------- counters agree with spans

TEST(BuildCache, TraceCountersAndSpansAgreeWithStats) {
  auto& collector = benchpark::obs::TraceCollector::global();
  collector.reset();
  collector.set_enabled(true);

  const auto specs = distinct_concrete_specs();
  {
    BinaryCache cache;
    cache.set_capacity_bytes(2 << 20);
    for (std::size_t i = 0; i < 4; ++i) cache.push(specs[i], 1 << 20);
    (void)cache.fetch(specs[3]);  // hit
    (void)cache.fetch(specs[0]);  // miss (evicted)
    auto stats = cache.stats();

    auto trace = collector.snapshot();
    EXPECT_EQ(trace.counters.at("buildcache.pushes"),
              static_cast<long long>(stats.pushes));
    EXPECT_EQ(trace.counters.at("buildcache.hits"),
              static_cast<long long>(stats.hits));
    EXPECT_EQ(trace.counters.at("buildcache.misses"),
              static_cast<long long>(stats.misses));
    // One span per mirror operation, one instant per eviction.
    EXPECT_EQ(trace.count_named("push"), stats.pushes);
    EXPECT_EQ(trace.count_named("fetch"), stats.lookups());
    EXPECT_EQ(trace.count_named("evict"), stats.evictions);
    // Fetch spans carry the outcome annotation.
    std::size_t hit_spans = 0, miss_spans = 0;
    for (const auto* span : trace.named("fetch")) {
      const auto* outcome = span->arg("outcome");
      ASSERT_NE(outcome, nullptr);
      hit_spans += *outcome == "hit";
      miss_spans += *outcome == "miss";
    }
    EXPECT_EQ(hit_spans, stats.hits);
    EXPECT_EQ(miss_spans, stats.misses);
  }

  collector.set_enabled(false);
  collector.reset();
}
