// Binary-cache unit tests: cold/warm hit-miss accounting, the transfer
// cost model, and thread-safety of the sharded mirror under concurrent
// push/fetch traffic (the paper's rolling cache is shared by every CI
// site at once).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
using benchpark::buildcache::BinaryCache;
using benchpark::spec::Version;

namespace {

cz::Concretizer simple_concretizer() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  config.package("mpi").preferred_providers = {"mvapich2"};
  return cz::Concretizer(pkg::default_repo_stack(), config);
}

std::vector<benchpark::spec::Spec> distinct_concrete_specs() {
  auto concretizer = simple_concretizer();
  std::vector<benchpark::spec::Spec> specs;
  for (const char* name :
       {"zlib", "cmake", "gmake", "adiak", "caliper", "hypre", "openblas",
        "python"}) {
    specs.push_back(concretizer.concretize(name));
  }
  return specs;
}

}  // namespace

TEST(BuildCache, ColdThenWarmAccounting) {
  BinaryCache cache;
  auto concretizer = simple_concretizer();
  auto spec = concretizer.concretize("zlib");

  EXPECT_FALSE(cache.fetch(spec).has_value());  // cold miss
  cache.push(spec, 1 << 20);
  auto entry = cache.fetch(spec);  // warm hit
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->size_bytes, 1u << 20);
  EXPECT_EQ(entry->dag_hash, spec.dag_hash());

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.pushes, 1u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(BuildCache, FetchCostModelIsLatencyPlusBandwidth) {
  BinaryCache cache(0.5, 2.0e6);
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(4'000'000), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(0), 0.5);

  BinaryCache defaults;
  EXPECT_LT(defaults.fetch_cost_seconds(1 << 20),
            defaults.fetch_cost_seconds(256u << 20));
}

TEST(BuildCache, PushOverwritesSameHash) {
  BinaryCache cache;
  auto concretizer = simple_concretizer();
  auto spec = concretizer.concretize("zlib");
  cache.push(spec, 100);
  cache.push(spec, 200);
  EXPECT_EQ(cache.size(), 1u);
  auto entry = cache.fetch(spec);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->size_bytes, 200u);
  EXPECT_EQ(cache.stats().pushes, 2u);
}

TEST(BuildCache, ConcurrentPushFetchStress) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;

  std::atomic<std::size_t> fetch_calls{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto& mine = specs[(t + round) % specs.size()];
        cache.push(mine, 1000u + static_cast<std::uint64_t>(round));
        const auto& theirs = specs[(t * 3 + round * 7) % specs.size()];
        (void)cache.fetch(theirs);
        fetch_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), specs.size());
  for (const auto& spec : specs) EXPECT_TRUE(cache.contains(spec));
  auto stats = cache.stats();
  EXPECT_EQ(stats.pushes, static_cast<std::size_t>(kThreads) * kRounds);
  EXPECT_EQ(stats.lookups(), fetch_calls.load());
}

TEST(BuildCache, ConcurrentWarmFetchesAllHit) {
  const auto specs = distinct_concrete_specs();
  BinaryCache cache;
  for (const auto& spec : specs) cache.push(spec, 1 << 20);

  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& spec : specs) {
          EXPECT_TRUE(cache.fetch(spec).has_value());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits,
            static_cast<std::size_t>(kThreads) * kRounds * specs.size());
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0);
}

TEST(BuildCache, TransientFetchFaultsAreRetriedInternally) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto concretizer = simple_concretizer();
  auto spec = concretizer.concretize("zlib");
  BinaryCache cache;
  cache.push(spec, 1 << 20);

  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.nth = 1;  // first attempt of every fetch fails; retry recovers
  plan.add_rule(rule);

  auto entry = cache.fetch(spec);
  ASSERT_TRUE(entry.has_value());
  EXPECT_GT(entry->injected_latency_seconds, 0.0);  // re-request round trip
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);  // the retried request counts once
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.retries, 1u);
}

TEST(BuildCache, ExhaustedFetchRetriesThrowTransient) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto concretizer = simple_concretizer();
  auto spec = concretizer.concretize("zlib");
  BinaryCache cache;
  cache.push(spec, 1 << 20);

  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.nth = 1;
  rule.count = 99;
  plan.add_rule(rule);

  EXPECT_THROW((void)cache.fetch(spec), benchpark::TransientError);
  // The failed request never reached the mirror: no hit, no miss.
  EXPECT_EQ(cache.stats().lookups(), 0u);
  EXPECT_EQ(cache.stats().retries,
            static_cast<std::size_t>(cache.fetch_retries()));
}
