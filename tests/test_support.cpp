// Unit tests for the support module: strings, hashing, tables, fs, rng,
// and the persistent thread pool behind parallel_for / parallel_reduce.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/support/arena.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/intern.hpp"
#include "src/support/hash.hpp"
#include "src/support/log.hpp"
#include "src/support/parallel.hpp"
#include "src/support/rng.hpp"
#include "src/support/string_util.hpp"
#include "src/support/table.hpp"
#include "src/support/thread_pool.hpp"

namespace bs = benchpark::support;

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = bs::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleToken) {
  auto parts = bs::split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringUtil, SplitWsDropsEmpty) {
  auto parts = bs::split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitFirst) {
  auto [k, v] = bs::split_first("key=value=more", '=');
  EXPECT_EQ(k, "key");
  EXPECT_EQ(v, "value=more");
  auto [k2, v2] = bs::split_first("nokey", '=');
  EXPECT_EQ(k2, "nokey");
  EXPECT_EQ(v2, "");
}

TEST(StringUtil, JoinRoundTrip) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(bs::join(parts, ", "), "a, b, c");
  EXPECT_EQ(bs::join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(bs::trim("  x y  "), "x y");
  EXPECT_EQ(bs::trim("\t\n"), "");
  EXPECT_EQ(bs::trim(""), "");
}

TEST(StringUtil, StartsEndsContains) {
  EXPECT_TRUE(bs::starts_with("amg2023+caliper", "amg"));
  EXPECT_FALSE(bs::starts_with("a", "ab"));
  EXPECT_TRUE(bs::ends_with("ramble.yaml", ".yaml"));
  EXPECT_FALSE(bs::ends_with("x", "yaml"));
  EXPECT_TRUE(bs::contains("spack install", "inst"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(bs::replace_all("a{x}b{x}", "{x}", "1"), "a1b1");
  EXPECT_EQ(bs::replace_all("aaa", "a", "aa"), "aaaaaa");
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(bs::pad_right("ab", 4), "ab  ");
  EXPECT_EQ(bs::pad_left("ab", 4), "  ab");
  EXPECT_EQ(bs::pad_right("abcd", 2), "abcd");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(bs::format_double(2.0), "2");
  EXPECT_EQ(bs::format_double(0.0466, 3), "0.0466");
  EXPECT_EQ(bs::format_double(1.5), "1.5");
}

TEST(StringUtil, ParseIntValid) {
  EXPECT_EQ(bs::parse_int("42"), 42);
  EXPECT_EQ(bs::parse_int(" -7 "), -7);
}

TEST(StringUtil, ParseIntInvalidThrows) {
  EXPECT_THROW(bs::parse_int("4x"), benchpark::Error);
  EXPECT_THROW(bs::parse_int(""), benchpark::Error);
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(bs::parse_double("0.5"), 0.5);
  EXPECT_THROW(bs::parse_double("half"), benchpark::Error);
}

TEST(StringUtil, LooksLike) {
  EXPECT_TRUE(bs::looks_like_int("512"));
  EXPECT_FALSE(bs::looks_like_int("512b"));
  EXPECT_TRUE(bs::looks_like_double("1e-3"));
  EXPECT_FALSE(bs::looks_like_double(""));
}

TEST(StringUtil, IsIdentifier) {
  EXPECT_TRUE(bs::is_identifier("amg2023"));
  EXPECT_TRUE(bs::is_identifier("intel-oneapi-mkl"));
  EXPECT_FALSE(bs::is_identifier("a b"));
  EXPECT_FALSE(bs::is_identifier(""));
}

TEST(Hash, Deterministic) {
  EXPECT_EQ(bs::fnv1a("spack"), bs::fnv1a("spack"));
  EXPECT_NE(bs::fnv1a("spack"), bs::fnv1a("spac"));
}

TEST(Hash, SeparatorPreventsConcatCollisions) {
  bs::Hasher a;
  a.update("ab").update("c");
  bs::Hasher b;
  b.update("a").update("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, Base32IsLowercase13Chars) {
  auto h = bs::hash_base32("amg2023+caliper");
  EXPECT_EQ(h.size(), 13u);
  for (char c : h) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
  }
}

TEST(Hash, HexIs16Chars) {
  bs::Hasher h;
  h.update("x");
  EXPECT_EQ(h.hex().size(), 16u);
}

TEST(Table, RendersAlignedColumns) {
  bs::Table t({"name", "time"});
  t.add_row({"saxpy", "1.25"});
  t.add_row({"amg2023", "320.5"});
  auto text = t.render();
  EXPECT_NE(text.find("| name    | time  |"), std::string::npos);
  EXPECT_NE(text.find("| amg2023 | 320.5 |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  bs::Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, RejectsOverlongRows) {
  bs::Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), benchpark::Error);
}

TEST(Table, MarkdownHasSeparatorRow) {
  bs::Table t({"x"});
  t.add_row({"1"});
  auto md = t.render_markdown();
  EXPECT_NE(md.find("|---|"), std::string::npos);
}

TEST(FsUtil, WriteReadRoundTrip) {
  bs::TempDir tmp;
  auto file = tmp.path() / "sub" / "file.txt";
  bs::write_file(file, "hello\n");
  EXPECT_EQ(bs::read_file(file), "hello\n");
}

TEST(FsUtil, ReadMissingThrows) {
  EXPECT_THROW(bs::read_file("/nonexistent/x/y"), benchpark::Error);
}

TEST(FsUtil, TempDirRemovedOnScopeExit) {
  std::filesystem::path kept;
  {
    bs::TempDir tmp;
    kept = tmp.path();
    EXPECT_TRUE(std::filesystem::exists(kept));
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(FsUtil, RenderTreeListsDirsFirst) {
  bs::TempDir tmp;
  bs::write_file(tmp.path() / "zz.txt", "");
  bs::write_file(tmp.path() / "configs" / "a.yaml", "");
  auto tree = bs::render_tree(tmp.path());
  auto dir_pos = tree.find("configs/");
  auto file_pos = tree.find("zz.txt");
  ASSERT_NE(dir_pos, std::string::npos);
  ASSERT_NE(file_pos, std::string::npos);
  EXPECT_LT(dir_pos, file_pos);
  EXPECT_NE(tree.find("a.yaml"), std::string::npos);
}

TEST(Rng, DeterministicForSameSeed) {
  bs::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  bs::Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  bs::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianRoughlyCentered) {
  bs::Rng rng(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.next_gaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(Rng, NoiseFactorAlwaysPositive) {
  bs::Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.noise_factor(0.5), 0.0);
}

TEST(Log, SinkCapturesAtLevel) {
  namespace bs = benchpark::support;
  std::vector<std::string> captured;
  bs::Log::set_sink([&](bs::LogLevel, std::string_view msg) {
    captured.emplace_back(msg);
  });
  bs::ScopedLogLevel scope(bs::LogLevel::info);
  bs::Log::debug("hidden");
  bs::Log::info("shown");
  bs::Log::error("also shown");
  EXPECT_EQ(captured, (std::vector<std::string>{"shown", "also shown"}));
  bs::Log::set_sink(nullptr);
}

TEST(Log, ScopedLevelRestores) {
  namespace bs = benchpark::support;
  auto before = bs::Log::level();
  {
    bs::ScopedLogLevel scope(bs::LogLevel::off);
    EXPECT_EQ(bs::Log::level(), bs::LogLevel::off);
  }
  EXPECT_EQ(bs::Log::level(), before);
}

TEST(Log, OffSilencesEverything) {
  namespace bs = benchpark::support;
  int count = 0;
  bs::Log::set_sink([&](bs::LogLevel, std::string_view) { ++count; });
  bs::ScopedLogLevel scope(bs::LogLevel::off);
  bs::Log::error("nope");
  EXPECT_EQ(count, 0);
  bs::Log::set_sink(nullptr);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<int> hits(10000, 0);
  bs::parallel_for(hits.size(), 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000);
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, WorkersAreReusedAcrossCalls) {
  // Warm the pool to this test's width, then hammer it: the hot path
  // must not construct a single new std::thread.
  std::atomic<std::uint64_t> total{0};
  bs::parallel_for(1024, 8, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  const auto spawned = bs::ThreadPool::global().workers_spawned();
  EXPECT_GT(spawned, 0u);
  for (int rep = 0; rep < 300; ++rep) {
    bs::parallel_for(1024, 8, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(bs::ThreadPool::global().workers_spawned(), spawned);
  EXPECT_EQ(total.load(), 1024u * 301u);
}

TEST(ThreadPool, SerialFallbackSpawnsNothing) {
  const auto spawned = bs::ThreadPool::global().workers_spawned();
  int calls = 0;
  bs::parallel_for(100, 1, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bs::ThreadPool::global().workers_spawned(), spawned);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      bs::parallel_for(1000, 8,
                       [](std::size_t lo, std::size_t) {
                         if (lo == 0) throw std::runtime_error("chunk 0");
                       }),
      std::runtime_error);
  // The pool keeps working after a failed batch.
  std::atomic<int> sum{0};
  bs::parallel_for(1000, 8, [&](std::size_t lo, std::size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000);
}

TEST(ThreadPool, NestedParallelForIsCorrect) {
  constexpr std::size_t kOuter = 48, kInner = 48;
  std::vector<int> hits(kOuter * kInner, 0);
  bs::parallel_for(kOuter, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Inner forks collapse inline on pool workers (and may re-fork on
      // the caller's chunk); either way each cell runs exactly once.
      bs::parallel_for(kInner, 4, [&](std::size_t jlo, std::size_t jhi) {
        for (std::size_t j = jlo; j < jhi; ++j) ++hits[i * kInner + j];
      });
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kOuter * kInner));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, ParallelReduceSum) {
  constexpr std::uint64_t kN = 100000;
  auto total = bs::parallel_reduce(
      kN, 8, std::uint64_t{0},
      [](std::size_t lo, std::size_t hi) {
        std::uint64_t sum = 0;
        for (std::size_t i = lo; i < hi; ++i) sum += i;
        return sum;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST(ThreadPool, ParallelReduceSerialFallbackMatches) {
  auto reduce_with = [](int threads) {
    return bs::parallel_reduce(
        5000, threads, std::uint64_t{0},
        [](std::size_t lo, std::size_t hi) {
          std::uint64_t sum = 0;
          for (std::size_t i = lo; i < hi; ++i) sum += i * i;
          return sum;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };
  EXPECT_EQ(reduce_with(1), reduce_with(7));
}

TEST(ThreadPool, StressManySmallMixedBatches) {
  // Warm the pool to the widest batch below, then record the spawn count.
  bs::parallel_for(64, 8, [](std::size_t, std::size_t) {});
  const auto spawned_before = bs::ThreadPool::global().workers_spawned();
  for (int rep = 0; rep < 400; ++rep) {
    const std::size_t n = static_cast<std::size_t>(rep % 97) + 3;
    const int threads = rep % 7 + 2;
    std::atomic<std::size_t> covered{0};
    bs::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      covered.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    ASSERT_EQ(covered.load(), n) << "rep " << rep;
  }
  // Every width used here is <= the pool's warmed size; still zero new
  // thread construction across 400 batches.
  EXPECT_EQ(bs::ThreadPool::global().workers_spawned(), spawned_before);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(bs::ThreadPool::default_threads(), 1);
}

// ---------------------------------------------------------------- intern

TEST(Intern, EmptyStringIsSentinelZero) {
  EXPECT_EQ(bs::intern(""), 0u);
  EXPECT_EQ(bs::intern_view(0), "");
}

TEST(Intern, SameStringSameId) {
  auto a = bs::intern("intern-same-string");
  auto b = bs::intern("intern-same-string");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(bs::intern_view(a), "intern-same-string");
}

TEST(Intern, DistinctStringsDistinctIds) {
  auto a = bs::intern("intern-distinct-a");
  auto b = bs::intern("intern-distinct-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(bs::intern_view(a), "intern-distinct-a");
  EXPECT_EQ(bs::intern_view(b), "intern-distinct-b");
}

TEST(Intern, LookupNeverInserts) {
  auto& interner = bs::Interner::global();
  EXPECT_EQ(interner.lookup("intern-never-seen-before-xyzzy"), 0u);
  auto before = interner.size();
  EXPECT_EQ(interner.lookup("intern-never-seen-before-xyzzy"), 0u);
  EXPECT_EQ(interner.size(), before);
  auto id = interner.intern("intern-never-seen-before-xyzzy");
  EXPECT_NE(id, 0u);
  EXPECT_EQ(interner.lookup("intern-never-seen-before-xyzzy"), id);
}

TEST(Intern, OutOfRangeViewIsEmpty) {
  EXPECT_EQ(bs::intern_view(0xffffffffu), "");
}

TEST(Intern, EightThreadContentionIsIdempotent) {
  // All 8 workers intern the same 64 fresh names concurrently; every
  // worker must observe the same id per name (first-insert races resolve
  // to a single winner) and views must match the bytes.
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  std::vector<std::string> names;
  names.reserve(kNames);
  for (int i = 0; i < kNames; ++i) {
    names.push_back("intern-contend-" + std::to_string(i));
  }
  std::vector<std::vector<std::uint32_t>> ids(
      kThreads, std::vector<std::uint32_t>(kNames, 0));
  bs::parallel_for(kThreads, kThreads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      for (int i = 0; i < kNames; ++i) {
        ids[t][static_cast<std::size_t>(i)] = bs::intern(names[static_cast<std::size_t>(i)]);
      }
    }
  });
  for (int i = 0; i < kNames; ++i) {
    const auto expected = ids[0][static_cast<std::size_t>(i)];
    EXPECT_NE(expected, 0u);
    EXPECT_EQ(bs::intern_view(expected), names[static_cast<std::size_t>(i)]);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                expected)
          << "thread " << t << " name " << i;
    }
  }
}

TEST(Intern, IdsAreStableAcrossLaterInserts) {
  auto id = bs::intern("intern-stable-anchor");
  auto view = bs::intern_view(id);
  for (int i = 0; i < 200; ++i) {
    bs::intern("intern-stable-filler-" + std::to_string(i));
  }
  EXPECT_EQ(bs::intern("intern-stable-anchor"), id);
  // The view must still point at valid storage (append-only guarantee).
  EXPECT_EQ(bs::intern_view(id), "intern-stable-anchor");
  EXPECT_EQ(view, "intern-stable-anchor");
}

// ----------------------------------------------------------------- arena

TEST(Arena, RespectsAlignment) {
  bs::Arena arena;
  // Interleave odd sizes with strict alignments; every pointer must honor
  // the requested alignment.
  for (std::size_t align : {1UL, 2UL, 4UL, 8UL, 16UL, 64UL}) {
    void* odd = arena.allocate(3, 1);
    ASSERT_NE(odd, nullptr);
    void* p = arena.allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
  double* d = arena.allocate_array<double>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(Arena, ZeroByteRequestsYieldDistinctPointers) {
  bs::Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, b);
}

TEST(Arena, ResetReusesBlocksWithoutGrowing) {
  bs::Arena arena(256);
  // Warm up: force a few blocks into existence.
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  const auto blocks = arena.block_count();
  const auto capacity = arena.capacity_bytes();
  EXPECT_GE(blocks, 2u);
  // Steady state: the same allocation pattern after reset() must fit in
  // the warmed blocks — no new blocks, no capacity growth.
  for (int rep = 0; rep < 10; ++rep) {
    arena.reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
    EXPECT_EQ(arena.block_count(), blocks) << "rep " << rep;
    EXPECT_EQ(arena.capacity_bytes(), capacity) << "rep " << rep;
  }
}

TEST(Arena, ResetReturnsSameAddresses) {
  bs::Arena arena(128);
  void* first = arena.allocate(32, 8);
  arena.reset();
  void* again = arena.allocate(32, 8);
  EXPECT_EQ(first, again);
}

TEST(Arena, LargeAllocationFallback) {
  bs::Arena arena(64);
  // Far larger than the first block or any geometric successor step:
  // must succeed via a dedicated exactly-sized block and be writable.
  const std::size_t big = 1 << 20;
  auto* p = static_cast<char*>(arena.allocate(big, 16));
  ASSERT_NE(p, nullptr);
  p[0] = 'a';
  p[big - 1] = 'z';
  EXPECT_GE(arena.capacity_bytes(), big);
  // Small allocations still work afterwards, and reset() keeps the big
  // block for reuse.
  void* small = arena.allocate(16, 8);
  EXPECT_NE(small, nullptr);
  const auto capacity = arena.capacity_bytes();
  arena.reset();
  auto* p2 = static_cast<char*>(arena.allocate(big, 16));
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(ArenaVector, PushGrowClearReuse) {
  bs::Arena arena;
  bs::ArenaVector<int> v(arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(v.contains(42));
  EXPECT_FALSE(v.contains(100));
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.contains(42));
  v.push_back(7);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
}

TEST(ArenaString, AppendAndClear) {
  bs::Arena arena;
  bs::ArenaString s(arena);
  EXPECT_TRUE(s.empty());
  s.append("hello");
  s.push_back(' ');
  s += std::string_view("world");
  EXPECT_EQ(s.view(), "hello world");
  // Force growth past the initial 32-byte slice.
  for (int i = 0; i < 10; ++i) s += std::string("0123456789");
  EXPECT_EQ(s.size(), 11u + 100u);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.append("reuse");
  EXPECT_EQ(s.view(), "reuse");
}

// --------------------------------------------------- crash-safe fs_util

TEST(FsUtil, WriteFileReplacesAtomicallyAndLeavesNoTemp) {
  bs::TempDir tmp;
  auto file = tmp.path() / "atomic.txt";
  bs::write_file(file, "first version\n");
  bs::write_file(file, "second version\n");
  EXPECT_EQ(bs::read_file(file), "second version\n");
  // The temp-then-rename protocol cleans up after itself: only the
  // target remains in the directory.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(tmp.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(FsUtil, WriteFileCreatesParentDirectories) {
  bs::TempDir tmp;
  auto file = tmp.path() / "a" / "b" / "c.txt";
  bs::write_file(file, "nested\n");
  EXPECT_EQ(bs::read_file(file), "nested\n");
}

TEST(FsUtil, WriteFileToUnwritableDirectoryThrowsAndLeavesNoDebris) {
  bs::TempDir tmp;
  // A directory where the target name should be is not writable-over:
  // the rename fails, the error propagates, and the temp is cleaned up.
  auto blocked = tmp.path() / "blocked";
  bs::ensure_dir(blocked);
  EXPECT_THROW(bs::write_file(blocked, "x"), benchpark::Error);
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(tmp.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just "blocked" itself, no stray temps
}

TEST(FsUtil, EnsureDirIsRaceAndRepeatSafe) {
  bs::TempDir tmp;
  auto dir = tmp.path() / "made" / "deeply";
  bs::ensure_dir(dir);
  bs::ensure_dir(dir);  // second call on an existing dir is a no-op
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  // Concurrent creators of one directory must all succeed.
  auto racy = tmp.path() / "racy";
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] { bs::ensure_dir(racy / "x" / "y"); });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(std::filesystem::is_directory(racy / "x" / "y"));
  // A file squatting on the path is a real error, not a silent success.
  auto squatter = tmp.path() / "file.txt";
  bs::write_file(squatter, "not a dir");
  EXPECT_THROW(bs::ensure_dir(squatter), benchpark::Error);
}

TEST(FsUtil, AppendFileSyncCreatesAndAppends) {
  bs::TempDir tmp;
  auto file = tmp.path() / "journal.log";
  bs::append_file_sync(file, "one\n");
  bs::append_file_sync(file, "two\n");
  EXPECT_EQ(bs::read_file(file), "one\ntwo\n");
  // Appends interleave with atomic rewrites without losing bytes.
  bs::write_file(file, "reset\n");
  bs::append_file_sync(file, "three\n");
  EXPECT_EQ(bs::read_file(file), "reset\nthree\n");
}

TEST(FsUtil, AppendFileSyncCreatesMissingParents) {
  // Like write_file, append creates intermediate directories on demand so
  // journal appends never race directory setup.
  bs::TempDir tmp;
  const auto target = tmp.path() / "no" / "such" / "dir" / "f";
  bs::append_file_sync(target, "x");
  EXPECT_EQ(bs::read_file(target), "x");
}

TEST(FsUtil, AppendFileSyncToBlockedParentThrows) {
  // A regular file squatting where a parent directory must go is a real
  // error, not something ensure_dir may silently paper over.
  bs::TempDir tmp;
  bs::write_file(tmp.path() / "blocker", "file");
  EXPECT_THROW(
      bs::append_file_sync(tmp.path() / "blocker" / "f", "x"),
      benchpark::Error);
}
