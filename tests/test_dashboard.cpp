// Dashboard + usage-metrics tests (Section 5 future work implemented):
// sparklines, grid view, regression detection, usage ranking.
//
// Dashboard is deprecated in favor of analysis::run_analysis; these
// tests deliberately keep the wrapper covered until it is removed.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
#include <gtest/gtest.h>

#include "src/analysis/dashboard.hpp"
#include "src/core/usage.hpp"
#include "src/support/error.hpp"

namespace an = benchpark::analysis;
using benchpark::core::UsageMetrics;

namespace {

an::ResultRow row(const std::string& bench, const std::string& system,
                  double value, bool ok = true) {
  an::ResultRow r;
  r.benchmark = bench;
  r.system = system;
  r.experiment = bench + "_e";
  r.fom_name = "elapsed";
  r.value = value;
  r.units = "s";
  r.success = ok;
  return r;
}

}  // namespace

TEST(Sparkline, MapsRangeToBlocks) {
  auto line = an::sparkline({0, 1, 2, 3});
  EXPECT_FALSE(line.empty());
  // First char is the lowest block, last the highest.
  EXPECT_EQ(line.substr(0, 3), "▁");
  EXPECT_EQ(line.substr(line.size() - 3), "█");
}

TEST(Sparkline, FlatSeriesAllLow) {
  auto line = an::sparkline({5, 5, 5});
  EXPECT_EQ(line, "▁▁▁");
  EXPECT_EQ(an::sparkline({}), "");
}

TEST(Dashboard, GridShowsLatestValues) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", 1.0));
  db.insert(row("saxpy", "cts1", 1.2));
  db.insert(row("saxpy", "ats2", 0.4));
  db.insert(row("amg2023", "cts1", 9.0));
  an::Dashboard dashboard(&db);
  auto text = dashboard.grid("elapsed").render();
  EXPECT_NE(text.find("1.2"), std::string::npos);   // latest, not first
  EXPECT_NE(text.find("0.4"), std::string::npos);
  EXPECT_NE(text.find("amg2023"), std::string::npos);
  // Missing cell rendered as dash (amg2023 on ats2).
  EXPECT_NE(text.find("-"), std::string::npos);
}

TEST(Dashboard, GridIgnoresFailedRuns) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", 1.0));
  db.insert(row("saxpy", "cts1", 99.0, /*ok=*/false));
  an::Dashboard dashboard(&db);
  auto text = dashboard.grid("elapsed").render();
  EXPECT_EQ(text.find("99"), std::string::npos);
}

TEST(Dashboard, DetectsTimeRegression) {
  an::MetricsDb db;
  for (double v : {1.00, 1.02, 0.99, 1.01}) db.insert(row("saxpy", "cts1", v));
  db.insert(row("saxpy", "cts1", 1.5));  // the regression
  an::Dashboard dashboard(&db);
  auto regressions = dashboard.detect_regressions("elapsed", 2.0, true);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].benchmark, "saxpy");
  EXPECT_DOUBLE_EQ(regressions[0].latest, 1.5);
  EXPECT_GT(regressions[0].sigmas, 2.0);
  EXPECT_NE(regressions[0].describe().find("saxpy on cts1"),
            std::string::npos);
}

TEST(Dashboard, NoFalsePositiveOnStableSeries) {
  an::MetricsDb db;
  for (double v : {1.00, 1.02, 0.99, 1.01, 1.00}) {
    db.insert(row("saxpy", "cts1", v));
  }
  an::Dashboard dashboard(&db);
  EXPECT_TRUE(dashboard.detect_regressions("elapsed").empty());
}

TEST(Dashboard, RateRegressionUsesDirection) {
  an::MetricsDb db;
  an::ResultRow r = row("amg2023", "cts1", 0);
  r.fom_name = "FOM_Solve";
  for (double v : {3e7, 3.1e7, 2.9e7, 3.05e7}) {
    r.value = v;
    db.insert(r);
  }
  r.value = 1e7;  // throughput collapse = regression for rates
  db.insert(r);
  an::Dashboard dashboard(&db);
  // higher_is_worse=true would miss it; false catches it.
  EXPECT_TRUE(dashboard.detect_regressions("FOM_Solve", 2.0, true).empty());
  EXPECT_EQ(dashboard.detect_regressions("FOM_Solve", 2.0, false).size(),
            1u);
}

TEST(Dashboard, ShortSeriesSkipped) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", 1.0));
  db.insert(row("saxpy", "cts1", 100.0));
  an::Dashboard dashboard(&db);
  EXPECT_TRUE(dashboard.detect_regressions("elapsed").empty());
}

TEST(Dashboard, RenderIncludesRegressionSection) {
  an::MetricsDb db;
  for (double v : {1.0, 1.0, 1.0, 1.0}) db.insert(row("saxpy", "cts1", v));
  db.insert(row("saxpy", "cts1", 2.0));
  an::Dashboard dashboard(&db);
  auto text = dashboard.render("elapsed");
  EXPECT_NE(text.find("REGRESSIONS:"), std::string::npos);
}

TEST(Dashboard, NullDbThrows) {
  EXPECT_THROW(an::Dashboard(nullptr), benchpark::Error);
}

TEST(Usage, TracksSetupsRunsContributions) {
  auto& usage = UsageMetrics::instance();
  usage.reset();
  usage.record_setup("saxpy");
  usage.record_setup("saxpy");
  usage.record_runs("saxpy", 8);
  usage.record_setup("amg2023");
  usage.record_contribution("stream");

  EXPECT_EQ(usage.get("saxpy").setups, 2u);
  EXPECT_EQ(usage.get("saxpy").runs, 8u);
  EXPECT_EQ(usage.get("stream").contributions, 1u);
  EXPECT_EQ(usage.get("never-used").setups, 0u);

  auto ranking = usage.ranking();
  ASSERT_GE(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].benchmark, "saxpy");  // most heavily accessed

  auto text = usage.to_table().render();
  EXPECT_NE(text.find("saxpy"), std::string::npos);
  usage.reset();
}

TEST(Usage, RecencyIncreasesMonotonically) {
  auto& usage = UsageMetrics::instance();
  usage.reset();
  usage.record_setup("a");
  usage.record_setup("b");
  EXPECT_LT(usage.get("a").last_event, usage.get("b").last_event);
  usage.record_runs("a", 1);
  EXPECT_GT(usage.get("a").last_event, usage.get("b").last_event);
  usage.reset();
}
