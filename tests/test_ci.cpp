// CI-layer tests: the git hosting model, Hubcast's security criteria
// (Section 3.3.1), Jacamar's identity rules (Section 3.3.2), and the
// GitLab-CI pipeline engine — together, the Figure 6 automation loop.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/ci/git.hpp"
#include "src/ci/hubcast.hpp"
#include "src/ci/jacamar.hpp"
#include "src/ci/pipeline.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/yaml/parser.hpp"

namespace ci = benchpark::ci;
using ci::CheckState;
using ci::GitHost;
using ci::PrState;

// --------------------------------------------------------------------- git

TEST(Git, CommitAndRead) {
  GitHost host("github");
  auto& repo = host.create_repo("llnl", "benchpark");
  repo.commit("main", "olga", "initial",
              {{"README.md", "# Benchpark"}, {"saxpy.c", "kernel"}});
  EXPECT_EQ(repo.file_at("main", "README.md"), "# Benchpark");
  EXPECT_FALSE(repo.file_at("main", "nope").has_value());
  EXPECT_EQ(repo.log("main").size(), 1u);
}

TEST(Git, BranchesForkFromMain) {
  GitHost host("github");
  auto& repo = host.create_repo("llnl", "benchpark");
  repo.commit("main", "olga", "initial", {{"a", "1"}});
  repo.commit("feature", "alec", "tweak", {{"b", "2"}});
  EXPECT_EQ(repo.file_at("feature", "a"), "1");  // inherited
  EXPECT_EQ(repo.file_at("feature", "b"), "2");
  EXPECT_FALSE(repo.file_at("main", "b").has_value());
}

TEST(Git, FileDeletionViaEmptyContent) {
  GitHost host("github");
  auto& repo = host.create_repo("o", "r");
  repo.commit("main", "u", "add", {{"x", "1"}});
  repo.commit("main", "u", "del", {{"x", ""}});
  EXPECT_FALSE(repo.file_at("main", "x").has_value());
}

TEST(Git, ShaDependsOnContentAndHistory) {
  GitHost host("github");
  auto& a = host.create_repo("o", "a");
  auto& b = host.create_repo("o", "b");
  auto sha1 = a.commit("main", "u", "m", {{"f", "1"}});
  auto sha2 = b.commit("main", "u", "m", {{"f", "2"}});
  EXPECT_NE(sha1, sha2);
}

TEST(Git, ForkCopiesBranches) {
  GitHost host("github");
  auto& upstream = host.create_repo("llnl", "benchpark");
  upstream.commit("main", "olga", "initial", {{"a", "1"}});
  auto& fork = host.fork("llnl/benchpark", "student");
  EXPECT_EQ(fork.full_name(), "student/benchpark");
  EXPECT_EQ(fork.file_at("main", "a"), "1");
}

TEST(Git, PrLifecycle) {
  GitHost host("github");
  auto& upstream = host.create_repo("llnl", "benchpark");
  upstream.commit("main", "olga", "initial", {{"a", "1"}});
  auto& fork = host.fork("llnl/benchpark", "student");
  fork.commit("fix", "student", "improve", {{"a", "2"}});

  auto id = host.open_pr("improve a", "student", "student/benchpark", "fix",
                         "llnl/benchpark");
  EXPECT_EQ(host.pr(id).state, PrState::open);
  host.approve_pr(id, "admin");
  EXPECT_TRUE(host.pr(id).approved_by("admin"));
  host.merge_pr(id);
  EXPECT_EQ(host.pr(id).state, PrState::merged);
  EXPECT_EQ(host.repo("llnl/benchpark").file_at("main", "a"), "2");
  EXPECT_THROW(host.merge_pr(id), benchpark::CiError);
}

TEST(Git, PrValidation) {
  GitHost host("github");
  host.create_repo("llnl", "benchpark").commit("main", "o", "i", {{"a", "1"}});
  EXPECT_THROW(host.open_pr("t", "u", "ghost/repo", "b", "llnl/benchpark"),
               benchpark::CiError);
  EXPECT_THROW(host.open_pr("t", "u", "llnl/benchpark", "ghost-branch",
                            "llnl/benchpark"),
               benchpark::CiError);
  EXPECT_THROW(host.pr(42), benchpark::CiError);
}

// ------------------------------------------------------------------ hubcast

namespace {

struct HubcastFixture {
  GitHost github{"github"};
  GitHost gitlab{"gitlab"};
  std::uint64_t pr_id = 0;

  HubcastFixture() {
    auto& upstream = github.create_repo("llnl", "benchpark");
    upstream.commit("main", "olga", "initial",
                    {{"experiments/saxpy/ramble.yaml", "v1"},
                     {".gitlab-ci.yml", "stages: [build]\n"}});
    gitlab.create_repo("llnl", "benchpark")
        .commit("main", "hubcast", "mirror", {{"mirror", "1"}});
  }

  ci::Hubcast make_hubcast() {
    ci::SecurityPolicy policy;
    policy.admins = {"site-admin"};
    policy.trusted_users = {"olga"};
    return ci::Hubcast(&github, &gitlab, "llnl/benchpark", policy);
  }

  std::uint64_t fork_pr(const std::string& author,
                        std::map<std::string, std::string> changes = {
                            {"experiments/saxpy/ramble.yaml", "v2"}}) {
    if (!github.find_repo(author + "/benchpark")) {
      github.fork("llnl/benchpark", author);
    }
    github.repo(author + "/benchpark")
        .commit("change", author, "update", changes);
    return github.open_pr("update", author, author + "/benchpark", "change",
                          "llnl/benchpark");
  }
};

}  // namespace

TEST(Hubcast, UntrustedForkPrBlockedUntilApproved) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("student");

  // Section 3.3.1: untrusted fork PRs do not reach GitLab.
  EXPECT_FALSE(hubcast.try_mirror_pr(pr).has_value());
  const auto* check = fx.github.pr(pr).check("hubcast/mirror");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->state, CheckState::failure);
  EXPECT_FALSE(fx.gitlab.repo("llnl/benchpark").has_branch("pr-1"));

  // After a site-admin approval the mirror goes through.
  fx.github.approve_pr(pr, "site-admin");
  auto branch = hubcast.try_mirror_pr(pr);
  ASSERT_TRUE(branch.has_value());
  EXPECT_TRUE(fx.gitlab.repo("llnl/benchpark").has_branch(*branch));
  EXPECT_EQ(fx.github.pr(pr).check("hubcast/mirror")->state,
            CheckState::success);
}

TEST(Hubcast, NonAdminApprovalInsufficient) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("student");
  fx.github.approve_pr(pr, "random-reviewer");
  EXPECT_FALSE(hubcast.try_mirror_pr(pr).has_value());
}

TEST(Hubcast, TrustedUserMirrorsWithoutApproval) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("olga");
  EXPECT_TRUE(hubcast.try_mirror_pr(pr).has_value());
}

TEST(Hubcast, ProtectedCiConfigNeedsAdminEvenFromTrusted) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  // olga is trusted, but the PR rewrites .gitlab-ci.yml.
  auto pr = fx.fork_pr("olga", {{".gitlab-ci.yml", "stages: [pwn]\n"}});
  auto decision = hubcast.evaluate(pr);
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.denial, ci::MirrorDenial::protected_path_touched);
  fx.github.approve_pr(pr, "site-admin");
  EXPECT_TRUE(hubcast.try_mirror_pr(pr).has_value());
}

TEST(Hubcast, ClosedPrNotMirrored) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("olga");
  fx.github.pr(pr).state = PrState::closed;
  auto decision = hubcast.evaluate(pr);
  EXPECT_EQ(decision.denial, ci::MirrorDenial::pr_not_open);
}

TEST(Hubcast, StatusStreamsBackToGitHub) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("olga");
  (void)hubcast.try_mirror_pr(pr);
  hubcast.report_status(
      pr, {"gitlab-ci/llnl/bench", CheckState::success, "8/8 experiments"});
  const auto* check = fx.github.pr(pr).check("gitlab-ci/llnl/bench");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->state, CheckState::success);
}

TEST(Hubcast, SyncDefaultBranch) {
  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  fx.github.repo("llnl/benchpark")
      .commit("main", "olga", "post-merge", {{"new", "x"}});
  hubcast.sync_default_branch();
  EXPECT_EQ(fx.gitlab.repo("llnl/benchpark").file_at("main", "new"), "x");
}

// ------------------------------------------------------------------ jacamar

TEST(Jacamar, RunsAsTriggeringUser) {
  ci::SiteAccounts accounts;
  accounts.add("olga", 5001);
  accounts.add("site-admin", 1000);
  ci::Jacamar jacamar("llnl", accounts);
  auto identity = jacamar.resolve("olga", "site-admin");
  EXPECT_EQ(identity.login, "olga");
  EXPECT_EQ(identity.uid, 5001);
  EXPECT_FALSE(identity.downscoped);
}

TEST(Jacamar, FallsBackToApprover) {
  // Section 3.3.2: a job from a user without a site account runs as the
  // approving user.
  ci::SiteAccounts accounts;
  accounts.add("site-admin", 1000);
  ci::Jacamar jacamar("llnl", accounts);
  auto identity = jacamar.resolve("external-student", "site-admin");
  EXPECT_EQ(identity.login, "site-admin");
  EXPECT_TRUE(identity.downscoped);
}

TEST(Jacamar, NoAccountAnywhereThrows) {
  ci::Jacamar jacamar("llnl", {});
  EXPECT_THROW(jacamar.resolve("nobody", "also-nobody"), benchpark::CiError);
}

TEST(Jacamar, AuditLogTiesJobsToUsers) {
  ci::SiteAccounts accounts;
  accounts.add("site-admin", 1000);
  ci::Jacamar jacamar("llnl", accounts);
  auto identity = jacamar.resolve("student", "site-admin");
  jacamar.record("bench-saxpy", identity, "student");
  ASSERT_EQ(jacamar.audit_log().size(), 1u);
  const auto& entry = jacamar.audit_log()[0];
  EXPECT_EQ(entry.triggered_by, "student");
  EXPECT_EQ(entry.ran_as, "site-admin");
  EXPECT_TRUE(entry.downscoped);
  EXPECT_EQ(entry.site, "llnl");
}

// ----------------------------------------------------------------- pipeline

namespace {

ci::PipelineDef demo_pipeline() {
  return ci::PipelineDef::from_yaml(benchpark::yaml::parse(
      "stages: [build, bench, analyze]\n"
      "build-saxpy:\n"
      "  stage: build\n"
      "  tags: [cts1]\n"
      "  script: [spack install saxpy]\n"
      "bench-saxpy:\n"
      "  stage: bench\n"
      "  tags: [cts1]\n"
      "  script: [ramble on]\n"
      "analyze:\n"
      "  stage: analyze\n"
      "  tags: [cts1]\n"
      "  script: [ramble workspace analyze]\n"));
}

std::shared_ptr<ci::Jacamar> llnl_executor() {
  ci::SiteAccounts accounts;
  accounts.add("olga", 5001);
  accounts.add("site-admin", 1000);
  return std::make_shared<ci::Jacamar>("llnl", accounts);
}

}  // namespace

TEST(Pipeline, ParseGitlabCiYaml) {
  auto def = demo_pipeline();
  EXPECT_EQ(def.stages,
            (std::vector<std::string>{"build", "bench", "analyze"}));
  EXPECT_EQ(def.jobs.size(), 3u);
  EXPECT_EQ(def.jobs_in_stage("build").size(), 1u);
  EXPECT_EQ(def.jobs_in_stage("build")[0]->name, "build-saxpy");
}

TEST(Pipeline, UndeclaredStageThrows) {
  EXPECT_THROW(ci::PipelineDef::from_yaml(benchpark::yaml::parse(
                   "stages: [build]\njob:\n  stage: deploy\n")),
               benchpark::CiError);
}

TEST(Pipeline, RunsStagesInOrder) {
  ci::PipelineEngine engine;
  engine.register_runner({"llnl-cts1-01", {"cts1", "llnl"}, llnl_executor()});
  std::vector<std::string> order;
  engine.set_default_action([&](const ci::JobContext& ctx) {
    order.push_back(ctx.job_name);
    return ci::JobOutcome{true, "ok"};
  });
  auto result = engine.run(demo_pipeline(), "abc123", "olga");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(order, (std::vector<std::string>{"build-saxpy", "bench-saxpy",
                                             "analyze"}));
  EXPECT_EQ(result.job("build-saxpy")->ran_as, "olga");
}

TEST(Pipeline, FailureSkipsLaterStages) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  engine.set_default_action([](const ci::JobContext& ctx) {
    return ci::JobOutcome{ctx.job_name != "build-saxpy", ""};
  });
  auto result = engine.run(demo_pipeline(), "abc", "olga");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.job("build-saxpy")->status, ci::JobStatus::failed);
  EXPECT_EQ(result.job("bench-saxpy")->status, ci::JobStatus::skipped);
  EXPECT_EQ(result.job("analyze")->status, ci::JobStatus::skipped);
}

TEST(Pipeline, AllowFailureDoesNotStopPipeline) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"x"}, llnl_executor()});
  auto def = ci::PipelineDef::from_yaml(benchpark::yaml::parse(
      "stages: [a, b]\n"
      "flaky:\n"
      "  stage: a\n"
      "  tags: [x]\n"
      "  allow_failure: true\n"
      "solid:\n"
      "  stage: b\n"
      "  tags: [x]\n"));
  engine.set_action("flaky", [](const ci::JobContext&) {
    return ci::JobOutcome{false, "boom"};
  });
  auto result = engine.run(def, "abc", "olga");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.job("solid")->status, ci::JobStatus::success);
}

TEST(Pipeline, NoMatchingRunnerFailsJob) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  auto def = ci::PipelineDef::from_yaml(benchpark::yaml::parse(
      "stages: [bench]\n"
      "needs-gpu:\n"
      "  stage: bench\n"
      "  tags: [ats2, cuda]\n"));
  auto result = engine.run(def, "abc", "olga");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.job("needs-gpu")->status, ci::JobStatus::no_runner);
}

TEST(Pipeline, RunnerTagMatchingRequiresAllTags) {
  ci::RunnerDef runner{"r", {"cts1", "llnl"}, llnl_executor()};
  EXPECT_TRUE(runner.matches({"cts1"}));
  EXPECT_TRUE(runner.matches({"cts1", "llnl"}));
  EXPECT_FALSE(runner.matches({"cts1", "cuda"}));
  EXPECT_TRUE(runner.matches({}));
}

TEST(Pipeline, ExternalUserRunsDownscopedAsApprover) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, ""}; });
  auto result =
      engine.run(demo_pipeline(), "abc", "external-student", "site-admin");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.job("bench-saxpy")->ran_as, "site-admin");
}

TEST(Pipeline, UserWithNoIdentityFailsJob) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  auto result = engine.run(demo_pipeline(), "abc", "nobody", "also-nobody");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.job("build-saxpy")->status, ci::JobStatus::failed);
}

TEST(Pipeline, JobExceptionBecomesFailure) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  engine.set_action("build-saxpy", [](const ci::JobContext&) -> ci::JobOutcome {
    throw std::runtime_error("container exploded");
  });
  auto result = engine.run(demo_pipeline(), "abc", "olga");
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.job("build-saxpy")->log.find("container exploded"),
            std::string::npos);
}

TEST(Pipeline, TransientJobFailureIsRetriedAndDegradesPipeline) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse("ci.job:nth=1,key=build-saxpy");

  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, "ok"}; });
  auto result = engine.run(demo_pipeline(), "abc", "olga");

  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.status, ci::PipelineStatus::degraded);
  EXPECT_EQ(result.job("build-saxpy")->status, ci::JobStatus::success);
  EXPECT_EQ(result.job("build-saxpy")->attempts, 2);
  EXPECT_NE(result.job("build-saxpy")->log.find("[retry] attempt 1"),
            std::string::npos);
  // The untouched jobs ran clean.
  EXPECT_EQ(result.job("bench-saxpy")->attempts, 1);
}

TEST(Pipeline, ExhaustedTransientRetriesFailThePipeline) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse(
      "ci.job:nth=1,count=99,key=build-saxpy");

  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, "ok"}; });
  auto result = engine.run(demo_pipeline(), "abc", "olga");

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.status, ci::PipelineStatus::failed);
  EXPECT_EQ(result.job("build-saxpy")->status, ci::JobStatus::failed);
  EXPECT_EQ(result.job("build-saxpy")->attempts,
            1 + engine.max_job_retries());
  EXPECT_NE(result.job("build-saxpy")->log.find("job failed after"),
            std::string::npos);
  EXPECT_EQ(result.job("bench-saxpy")->status, ci::JobStatus::skipped);
}

TEST(Pipeline, TransientActionExceptionIsRetriedToo) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"cts1"}, llnl_executor()});
  int calls = 0;
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, "ok"}; });
  engine.set_action("build-saxpy",
                    [&calls](const ci::JobContext&) -> ci::JobOutcome {
                      if (++calls == 1) {
                        throw benchpark::TransientError("runner preempted");
                      }
                      return ci::JobOutcome{true, "ok"};
                    });
  auto result = engine.run(demo_pipeline(), "abc", "olga");
  EXPECT_EQ(result.status, ci::PipelineStatus::degraded);
  EXPECT_EQ(result.job("build-saxpy")->attempts, 2);
  EXPECT_EQ(calls, 2);
}

TEST(Pipeline, AllowFailureFailureDegradesPipeline) {
  ci::PipelineEngine engine;
  engine.register_runner({"r1", {"x"}, llnl_executor()});
  auto def = ci::PipelineDef::from_yaml(benchpark::yaml::parse(
      "stages: [a]\n"
      "flaky:\n"
      "  stage: a\n"
      "  tags: [x]\n"
      "  allow_failure: true\n"));
  engine.set_action("flaky", [](const ci::JobContext&) {
    return ci::JobOutcome{false, "boom"};
  });
  auto result = engine.run(def, "abc", "olga");
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.status, ci::PipelineStatus::degraded);
}

TEST(Hubcast, TransientMirrorFaultIsRetried) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse("ci.mirror:nth=1,count=2");

  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("olga");
  auto branch = hubcast.try_mirror_pr(pr);  // attempts 1-2 fail, 3 lands
  ASSERT_TRUE(branch.has_value());
  EXPECT_TRUE(fx.gitlab.repo("llnl/benchpark").has_branch(*branch));
  EXPECT_EQ(fx.github.pr(pr).check("hubcast/mirror")->state,
            CheckState::success);
}

TEST(Hubcast, ExhaustedMirrorRetriesFailTheCheck) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse("ci.mirror:nth=1,count=99");

  HubcastFixture fx;
  auto hubcast = fx.make_hubcast();
  auto pr = fx.fork_pr("olga");
  EXPECT_FALSE(hubcast.try_mirror_pr(pr).has_value());
  const auto* check = fx.github.pr(pr).check("hubcast/mirror");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->state, CheckState::failure);
  EXPECT_NE(check->description.find("mirror push failed after 3 attempts"),
            std::string::npos);
  EXPECT_FALSE(fx.gitlab.repo("llnl/benchpark").has_branch("pr-1"));
}

TEST(Pipeline, ConcurrentPipelinesShareEngineAndExecutor) {
  // The service daemon's dispatch workers run pipelines on one shared
  // engine; runs snapshot the runner/action tables and the Jacamar
  // executor serializes its audit log.
  ci::PipelineEngine engine;
  auto executor = llnl_executor();
  engine.register_runner({"llnl-cts1-01", {"cts1", "llnl"}, executor});
  std::atomic<int> actions{0};
  engine.set_default_action([&actions](const ci::JobContext&) {
    actions.fetch_add(1, std::memory_order_relaxed);
    return ci::JobOutcome{true, "ok"};
  });

  constexpr int kPipelines = 8;
  std::vector<ci::PipelineResult> results(kPipelines);
  {
    std::vector<std::thread> threads;
    threads.reserve(kPipelines);
    for (int i = 0; i < kPipelines; ++i) {
      threads.emplace_back([&engine, &results, i] {
        results[static_cast<std::size_t>(i)] =
            engine.run(demo_pipeline(), "sha" + std::to_string(i), "olga");
      });
    }
    for (auto& t : threads) t.join();
  }

  for (const auto& result : results) {
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.jobs.size(), 3u);
    for (const auto& job : result.jobs) {
      EXPECT_EQ(job.status, ci::JobStatus::success) << job.name;
      EXPECT_EQ(job.ran_as, "olga");
    }
  }
  EXPECT_EQ(actions.load(), kPipelines * 3);
  // Every job execution landed exactly one audit entry.
  EXPECT_EQ(executor->audit_log().size(),
            static_cast<std::size_t>(kPipelines * 3));
}
