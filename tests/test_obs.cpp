// Tracing & metrics layer tests: zero-cost disabled path, nested spans
// (including cross-thread parent adoption through the ThreadPool),
// counters/gauges/metadata, Chrome trace_event JSON round-trips through
// the YAML/JSON parser, Caliper forwarding, and the clean-vs-chaos
// TraceDiff that isolates injected fault latency (the acceptance
// scenario: retry spans equal installer report attempt counts).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/analysis/trace_bridge.hpp"
#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/install/installer.hpp"
#include "src/obs/trace.hpp"
#include "src/obs/trace_diff.hpp"
#include "src/perf/caliper.hpp"
#include "src/pkg/repo.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/parallel.hpp"
#include "src/yaml/parser.hpp"

namespace cz = benchpark::concretizer;
namespace install = benchpark::install;
namespace obs = benchpark::obs;
namespace pkg = benchpark::pkg;
namespace perf = benchpark::perf;
namespace support = benchpark::support;
using benchpark::buildcache::BinaryCache;
using benchpark::spec::Version;

namespace {

/// Enable the global collector for one test and restore the disabled,
/// empty state afterwards (mirrors ScopedFaultPlan).
class ScopedTrace {
public:
  ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.reset();
    c.set_enabled(true);
  }
  ~ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.set_enabled(false);
    c.reset();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

cz::Concretizer simple_concretizer() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  config.package("mpi").preferred_providers = {"mvapich2"};
  return cz::Concretizer(pkg::default_repo_stack(), config);
}

/// One root through the unified API, legacy semantics (fresh context,
/// serial, no memo cache).
benchpark::spec::Spec concretize1(const cz::Concretizer& c,
                                  const std::string& text) {
  cz::ConcretizeRequest request;
  request.roots = {benchpark::spec::Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

}  // namespace

// ----------------------------------------------------- disabled path

TEST(TraceCollector, DisabledByDefaultAndRecordsNothing) {
  obs::TraceCollector collector;
  EXPECT_FALSE(collector.enabled());
  EXPECT_EQ(collector.begin_span("x"), 0u);
  collector.end_span(0);  // no-op, must not throw
  collector.counter_add("n");
  collector.gauge_set("g", 1.0);
  collector.attach_metadata("k", "v");
  collector.emit_span("m", "", 1.0);
  collector.instant("i");
  {
    obs::ScopedSpan span(collector, "scoped");
    EXPECT_FALSE(span.active());
    span.annotate("ignored", "yes");
  }
  EXPECT_EQ(collector.event_count(), 0u);
  auto trace = collector.snapshot();
  EXPECT_TRUE(trace.events.empty());
  EXPECT_TRUE(trace.counters.empty());
  EXPECT_TRUE(trace.gauges.empty());
  EXPECT_TRUE(trace.metadata.empty());
}

TEST(TraceCollector, DisabledRunOfInstrumentedCodeEmitsZeroEvents) {
  // The built-in instrumentation all goes through the global collector;
  // with tracing off a full install must leave it empty. Disable
  // explicitly — CI may export BENCHPARK_TRACE=1 for other suites.
  auto& global = obs::TraceCollector::global();
  global.set_enabled(false);
  global.reset();
  ASSERT_FALSE(global.enabled());

  auto concretizer = simple_concretizer();
  auto concrete = concretize1(concretizer, "amg2023");
  install::InstallTree tree;
  BinaryCache cache;
  install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
  auto report = installer.install(concrete);
  EXPECT_GT(report.total_attempts, 0u);

  EXPECT_EQ(global.event_count(), 0u);
  auto trace = global.snapshot();
  EXPECT_TRUE(trace.events.empty());
  EXPECT_TRUE(trace.counters.empty());
}

// ------------------------------------------------------ span nesting

TEST(TraceCollector, SpansNestAndCarryParents) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto outer = collector.begin_span("outer", "test");
  ASSERT_NE(outer, 0u);
  EXPECT_EQ(collector.current_span(), outer);
  auto inner = collector.begin_span("inner", "test");
  ASSERT_NE(inner, 0u);
  EXPECT_EQ(collector.current_span(), inner);
  collector.annotate("depth", "2");
  collector.end_span(inner);
  collector.end_span(outer);

  auto trace = collector.snapshot();
  ASSERT_EQ(trace.events.size(), 2u);
  const auto* in = trace.find_span("inner");
  const auto* out = trace.find_span("outer");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(in->parent, out->id);
  EXPECT_EQ(out->parent, 0u);
  ASSERT_NE(in->arg("depth"), nullptr);
  EXPECT_EQ(*in->arg("depth"), "2");
  // Inner closed first, so it is recorded first; containment holds.
  EXPECT_LE(out->ts_us, in->ts_us);
  EXPECT_GE(out->end_us(), in->end_us());
}

TEST(TraceCollector, MismatchedEndThrows) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto outer = collector.begin_span("outer");
  auto inner = collector.begin_span("inner");
  EXPECT_THROW(collector.end_span(outer), benchpark::Error);
  collector.end_span(inner);
  collector.end_span(outer);
}

TEST(TraceCollector, CategoryFilterDropsOtherCategories) {
  obs::TraceCollector collector;
  collector.configure("install,buildcache");
  EXPECT_TRUE(collector.enabled());
  EXPECT_TRUE(collector.category_enabled("install"));
  EXPECT_FALSE(collector.category_enabled("ci"));
  EXPECT_EQ(collector.begin_span("job", "ci"), 0u);
  auto id = collector.begin_span("pkg:zlib", "install");
  ASSERT_NE(id, 0u);
  collector.end_span(id);
  auto trace = collector.snapshot();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].name, "pkg:zlib");
}

TEST(TraceCollector, ConfigureGrammar) {
  obs::TraceCollector collector;
  for (const char* off : {"", "0", "off", "false", "OFF"}) {
    collector.configure("1");
    collector.configure(off);
    EXPECT_FALSE(collector.enabled()) << "spec: '" << off << "'";
  }
  for (const char* on : {"1", "on", "true", "all", "ALL"}) {
    collector.configure("0");
    collector.configure(on);
    EXPECT_TRUE(collector.enabled()) << "spec: '" << on << "'";
    EXPECT_TRUE(collector.category_enabled("anything"));
  }
}

TEST(TraceCollector, EmitSpanIsModeledAndConvertsSeconds) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  collector.emit_span("attempt", "install", 1.5, {{"package", "zlib"}});
  auto trace = collector.snapshot();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_TRUE(trace.events[0].modeled);
  EXPECT_DOUBLE_EQ(trace.events[0].dur_us, 1.5e6);
  ASSERT_NE(trace.events[0].arg("package"), nullptr);
  EXPECT_EQ(*trace.events[0].arg("package"), "zlib");
}

TEST(TraceCollector, CountersGaugesAndMetadata) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  collector.counter_add("hits");
  collector.counter_add("hits", 4);
  collector.counter_add("misses", -1);
  collector.gauge_set("depth", 3.0);
  collector.gauge_set("depth", 7.5);  // gauges overwrite
  collector.attach_metadata("system", "cts1");
  auto trace = collector.snapshot();
  EXPECT_EQ(trace.counters.at("hits"), 5);
  EXPECT_EQ(trace.counters.at("misses"), -1);
  EXPECT_DOUBLE_EQ(trace.gauges.at("depth"), 7.5);
  EXPECT_EQ(trace.metadata.at("system"), "cts1");
}

TEST(TraceCollector, ResetPreservesEnablementAndRestartsEpoch) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto id = collector.begin_span("s");
  collector.end_span(id);
  collector.counter_add("n");
  collector.reset();
  EXPECT_TRUE(collector.enabled());
  EXPECT_EQ(collector.event_count(), 0u);
  EXPECT_TRUE(collector.snapshot().counters.empty());
  auto id2 = collector.begin_span("t");
  collector.end_span(id2);
  auto trace = collector.snapshot();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_GE(trace.events[0].ts_us, 0.0);  // epoch restarted
}

// ----------------------------------------------- cross-thread parents

TEST(TraceCollector, ScopedParentAdoptsAmbientSpan) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto root = collector.begin_span("root");
  std::thread worker([&] {
    obs::ScopedParent ambient(collector, root);
    auto child = collector.begin_span("child");
    collector.end_span(child);
  });
  worker.join();
  collector.end_span(root);
  auto trace = collector.snapshot();
  const auto* child = trace.find_span("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent, root);
}

TEST(TraceCollector, ThreadPoolBatchNestsUnderSubmitterSpan) {
  ScopedTrace guard;
  auto& collector = obs::TraceCollector::global();
  auto root = collector.begin_span("batch_root");
  std::atomic<int> ran{0};
  support::parallel_for(64, 4, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedSpan span("chunk", "test");
    ran.fetch_add(static_cast<int>(hi - lo));
  });
  collector.end_span(root);
  EXPECT_EQ(ran.load(), 64);

  auto trace = collector.snapshot();
  const auto* batch = trace.find_span("pool.batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->parent, root);
  auto chunks = trace.named("chunk");
  ASSERT_FALSE(chunks.empty());
  for (const auto* chunk : chunks) {
    EXPECT_EQ(chunk->parent, batch->id)
        << "chunk on tid " << chunk->tid << " lost its ambient parent";
  }
}

// --------------------------------------------------- JSON round trip

TEST(TraceJson, ChromeJsonRoundTripsThroughYamlParser) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto outer = collector.begin_span("outer", "cat-a");
  collector.annotate("quote", "say \"hi\"\tok");
  auto inner = collector.begin_span("in/ner", "cat-b");
  collector.end_span(inner);
  collector.end_span(outer);
  collector.emit_span("modeled", "cat-a", 0.25, {{"k", "v"}});
  collector.instant("tick", "cat-a");
  collector.counter_add("hits", 42);
  collector.gauge_set("depth", 2.5);
  collector.attach_metadata("benchmark", "amg2023");

  auto trace = collector.snapshot();
  std::string json = trace.to_chrome_json();
  // Single line (the YAML parser is line-based).
  EXPECT_EQ(json.find('\n'), std::string::npos);

  auto parsed = obs::Trace::from_chrome_json(std::string_view{json});
  ASSERT_EQ(parsed.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const auto& a = trace.events[i];
    const auto& b = parsed.events[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(static_cast<int>(a.phase), static_cast<int>(b.phase));
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_EQ(a.modeled, b.modeled);
    EXPECT_NEAR(a.ts_us, b.ts_us, 1e-3);
    EXPECT_NEAR(a.dur_us, b.dur_us, 1e-3);
    EXPECT_EQ(a.args, b.args);
  }
  EXPECT_EQ(parsed.counters, trace.counters);
  EXPECT_EQ(parsed.gauges, trace.gauges);
  EXPECT_EQ(parsed.metadata, trace.metadata);
}

TEST(TraceJson, ParsesHandWrittenChromeTrace) {
  auto trace = obs::Trace::from_chrome_json(std::string_view{
      R"({"traceEvents":[{"name":"root","ph":"X","ts":0,"dur":10,"id":1,)"
      R"("pid":1,"tid":1,"args":{}},{"name":"leaf","cat":"c","ph":"X",)"
      R"("ts":2,"dur":3,"id":2,"parent":1,"modeled":1,"pid":1,"tid":1,)"
      R"("args":{"k":"v"}}],"otherData":{"run":"chaos"}})"});
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[1].parent, 1u);
  EXPECT_TRUE(trace.events[1].modeled);
  EXPECT_EQ(trace.metadata.at("run"), "chaos");
}

// --------------------------------------------------------- TraceDiff

TEST(TraceDiff, AggregatesPathsWithSelfAndModeledTime) {
  obs::Trace trace;
  obs::TraceEvent root;
  root.name = "install";
  root.id = 1;
  root.ts_us = 0;
  root.dur_us = 100;
  obs::TraceEvent child;
  child.name = "pkg:zlib";
  child.id = 2;
  child.parent = 1;
  child.ts_us = 10;
  child.dur_us = 40;
  obs::TraceEvent modeled;
  modeled.name = "attempt";
  modeled.id = 3;
  modeled.parent = 2;
  modeled.modeled = true;
  modeled.dur_us = 7;
  trace.events = {root, child, modeled};

  auto stats = obs::aggregate_spans(trace);
  ASSERT_EQ(stats.count("install"), 1u);
  ASSERT_EQ(stats.count("install/pkg:zlib"), 1u);
  ASSERT_EQ(stats.count("install/pkg:zlib/attempt"), 1u);
  EXPECT_DOUBLE_EQ(stats["install"].total_us, 100.0);
  EXPECT_DOUBLE_EQ(stats["install"].self_us, 60.0);  // minus real child
  EXPECT_DOUBLE_EQ(stats["install/pkg:zlib"].total_us, 40.0);
  // The modeled attempt does not eat into its parent's self time.
  EXPECT_DOUBLE_EQ(stats["install/pkg:zlib"].self_us, 40.0);
  EXPECT_DOUBLE_EQ(stats["install/pkg:zlib/attempt"].modeled_us, 7.0);
  EXPECT_DOUBLE_EQ(stats["install/pkg:zlib/attempt"].total_us, 0.0);
}

TEST(TraceDiff, RegressionsIsolateAddedModeledLatency) {
  auto make = [](double modeled_us, std::uint64_t attempts) {
    obs::Trace t;
    obs::TraceEvent root;
    root.name = "install";
    root.id = 1;
    root.dur_us = 50;
    t.events.push_back(root);
    for (std::uint64_t a = 0; a < attempts; ++a) {
      obs::TraceEvent e;
      e.name = "attempt";
      e.id = 10 + a;
      e.parent = 1;
      e.modeled = true;
      e.dur_us = modeled_us;
      t.events.push_back(e);
    }
    return t;
  };
  obs::Trace clean = make(5.0, 1);
  obs::Trace chaos = make(5.0, 3);  // two retries, each +5us modeled
  clean.counters["buildcache.hits"] = 4;
  chaos.counters["buildcache.hits"] = 2;

  obs::TraceDiff diff(clean, chaos);
  const auto* delta = diff.find("install/attempt");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->count_delta(), 2);
  EXPECT_DOUBLE_EQ(delta->modeled_delta_us(), 10.0);
  EXPECT_DOUBLE_EQ(delta->delta_us(), 0.0);  // wall clock unchanged

  auto regressions = diff.regressions(1.0);
  ASSERT_FALSE(regressions.empty());
  EXPECT_EQ(regressions.front().path, "install/attempt");
  EXPECT_EQ(diff.counter_deltas().at("buildcache.hits"), -2);
  EXPECT_GT(diff.to_table().num_rows(), 0u);
}

// ------------------------------------------------ Caliper forwarding

TEST(TraceCaliper, RegionsForwardAsSpans) {
  ScopedTrace guard;
  perf::Caliper::reset();
  perf::Caliper::begin("main");
  perf::Caliper::begin("solve");
  perf::Caliper::end("solve");
  perf::Caliper::end("main");
  perf::Caliper::record("main/io", 0.5, 2);
  perf::Adiak::collect("cluster", "tioga");

  auto trace = obs::TraceCollector::global().snapshot();
  const auto* main_span = trace.find_span("main");
  const auto* solve = trace.find_span("solve");
  ASSERT_NE(main_span, nullptr);
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->parent, main_span->id);
  EXPECT_EQ(solve->category, "caliper");
  const auto* recorded = trace.find_span("main/io");
  ASSERT_NE(recorded, nullptr);
  EXPECT_TRUE(recorded->modeled);
  EXPECT_DOUBLE_EQ(recorded->dur_us, 0.5e6);
  EXPECT_EQ(trace.metadata.at("cluster"), "tioga");
  perf::Caliper::reset();
  perf::Adiak::reset();
}

// ------------------------------------- chaos acceptance (Trace+fault)

TEST(TraceInstall, AttemptSpansEqualReportAttempts) {
  ScopedTrace guard;
  auto& collector = obs::TraceCollector::global();

  auto concretizer = simple_concretizer();
  auto concrete = concretize1(concretizer, "amg2023");
  install::InstallTree tree;
  BinaryCache cache;
  install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
  auto report = installer.install(concrete);

  auto trace = collector.snapshot();
  EXPECT_EQ(trace.count_named("attempt"), report.total_attempts);
  // Every non-external, non-already record has a pkg span.
  for (const auto& record : report.installed) {
    auto pkgs = trace.named("pkg:" + record.spec.name());
    EXPECT_FALSE(pkgs.empty()) << record.spec.name();
  }
  const auto* root = trace.find_span("install");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
}

TEST(TraceInstall, ChaosVsCleanDiffIsolatesInjectedLatency) {
  auto run_install = [](bool chaos) {
    ScopedTrace trace_guard;
    support::ScopedFaultPlan fault_guard;
    auto& plan = support::FaultPlan::global();
    plan.clear();
    if (chaos) {
      support::FaultRule rule;
      rule.site = "install.build_step";
      rule.nth = 1;  // first attempt of every build fails transiently
      rule.kind = support::FaultKind::transient;
      plan.add_rule(rule);
    }
    auto concretizer = simple_concretizer();
    auto concrete = concretize1(concretizer, "amg2023");
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
    auto report = installer.install(concrete);
    return std::make_pair(obs::TraceCollector::global().snapshot(), report);
  };

  auto [clean_trace, clean_report] = run_install(false);
  auto [chaos_trace, chaos_report] = run_install(true);

  // Retry spans equal the report's attempt counts in both runs.
  EXPECT_EQ(clean_trace.count_named("attempt"), clean_report.total_attempts);
  EXPECT_EQ(chaos_trace.count_named("attempt"), chaos_report.total_attempts);
  ASSERT_GT(chaos_report.total_attempts, clean_report.total_attempts);

  // The diff pins the extra time onto the attempt spans as *modeled*
  // latency: injected waits never show up as wall-clock time.
  obs::TraceDiff diff(clean_trace, chaos_trace);
  double attempt_modeled_delta = 0.0;
  long long attempt_count_delta = 0;
  for (const auto& row : diff.rows()) {
    if (row.path.size() >= 7 &&
        row.path.compare(row.path.size() - 7, 7, "attempt") == 0) {
      attempt_modeled_delta += row.modeled_delta_us();
      attempt_count_delta += row.count_delta();
    }
  }
  EXPECT_EQ(attempt_count_delta,
            static_cast<long long>(chaos_report.total_attempts) -
                static_cast<long long>(clean_report.total_attempts));
  EXPECT_GT(attempt_modeled_delta, 0.0);
  EXPECT_GT(chaos_report.retry_wait_seconds, 0.0);
}

// ------------------------------------------------- analysis bridge

TEST(TraceBridge, TraceBecomesProfileAndMetrics) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  auto root = collector.begin_span("workflow");
  auto child = collector.begin_span("install");
  collector.end_span(child);
  collector.end_span(root);
  collector.emit_span("attempt", "install", 2.0);
  collector.counter_add("buildcache.hits", 3);
  collector.gauge_set("pool.queue_depth", 5.0);
  collector.attach_metadata("system", "cts1");
  auto trace = collector.snapshot();

  auto profile = benchpark::analysis::detail::trace_to_profile(trace);
  const auto* region = profile.find("workflow/install");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->count, 1u);
  const auto* attempt = profile.find("attempt");
  ASSERT_NE(attempt, nullptr);
  EXPECT_NEAR(attempt->inclusive_seconds, 2.0, 1e-9);
  EXPECT_EQ(profile.metadata.at("system"), "cts1");

  benchpark::analysis::MetricsDb db;
  auto inserted = benchpark::analysis::detail::trace_to_metrics(
      trace, db, "amg2023", "cts1", "exp1");
  EXPECT_EQ(inserted, 2u);
  benchpark::analysis::Query q;
  q.fom_name = "buildcache.hits";
  auto rows = db.query(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0]->value, 3.0);
  EXPECT_EQ(rows[0]->system, "cts1");
}
