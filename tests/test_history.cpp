// Historical analytics tests: FOM history persistence through the
// content-addressed store, deterministic change-point detection over
// synthetic step/drift/noise series (exact detection points, no false
// positives on pure noise), bisection attribution of a planted bad
// config hash within the log2 replay budget, and the
// run_analysis(AnalysisRequest) façade end to end. Carries the
// "threads" label so the TSAN job races concurrent appends for real.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/analysis/bisect.hpp"
#include "src/analysis/detect.hpp"
#include "src/analysis/history.hpp"
#include "src/store/store.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"

namespace analysis = benchpark::analysis;
namespace store = benchpark::store;
namespace support = benchpark::support;

using analysis::DetectorConfig;
using analysis::FomHistory;
using analysis::HistorySample;
using analysis::SeriesKey;
using analysis::Verdict;

namespace {

const SeriesKey kKey{"saxpy", "cts1", "saxpy_1", "runtime_seconds"};

/// A plain in-memory series: one sample per value, sequences 1..n.
std::vector<HistorySample> make_series(const std::vector<double>& values,
                                       const std::string& config = "cfg") {
  std::vector<HistorySample> samples;
  for (std::size_t i = 0; i < values.size(); ++i) {
    HistorySample s;
    s.sequence = i + 1;
    s.value = values[i];
    s.units = "s";
    s.config_hash = config;
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

// ---------------------------------------------------------------- SeriesKey

TEST(SeriesKey, EncodeDecodeRoundTrip) {
  const std::string encoded = kKey.encode();
  auto decoded = SeriesKey::decode(encoded);
  EXPECT_EQ(decoded, kKey);
  EXPECT_EQ(kKey.str(), "saxpy/cts1/saxpy_1:runtime_seconds");
}

// ---------------------------------------------------------------- detection

TEST(Detect, StepRegressionFlaggedAtExactIndex) {
  // Ten samples near 100, then a +30% step: the step sample itself is
  // the change point, nothing before or after alarms.
  std::vector<double> values{100.0, 100.4, 99.7, 100.1, 99.9,
                             100.2, 99.8,  100.3, 99.6, 100.0};
  for (int i = 0; i < 6; ++i) values.push_back(130.0 + 0.1 * i);
  auto samples = make_series(values);

  auto points = analysis::scan(samples, DetectorConfig{});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].index, 10u);
  EXPECT_EQ(points[0].sequence, 11u);
  EXPECT_EQ(points[0].classification.verdict, Verdict::regression);
  EXPECT_GT(points[0].classification.score, 4.0);
  EXPECT_GT(points[0].classification.confidence, 0.5);
}

TEST(Detect, StepDownIsImprovementForTimes) {
  std::vector<double> values{100.0, 100.4, 99.7, 100.1, 99.9, 100.2};
  for (int i = 0; i < 4; ++i) values.push_back(70.0);
  auto points = analysis::scan(make_series(values), DetectorConfig{});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].index, 6u);
  EXPECT_EQ(points[0].classification.verdict, Verdict::improvement);
}

TEST(Detect, DirectionFlipsForRates) {
  // Same shape, but higher_is_worse=false (a gflops-style rate): the
  // upward step is an improvement, the downward one a regression.
  std::vector<double> up{100.0, 100.4, 99.7, 100.1, 99.9, 130.0, 130.0};
  DetectorConfig rates;
  rates.higher_is_worse = false;
  auto points = analysis::scan(make_series(up), rates);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].classification.verdict, Verdict::improvement);

  std::vector<double> down{100.0, 100.4, 99.7, 100.1, 99.9, 70.0, 70.0};
  points = analysis::scan(make_series(down), rates);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].classification.verdict, Verdict::regression);
}

TEST(Detect, RegimeResetsAfterConfirmedStep) {
  // After the step is confirmed, the new level is the new normal: the
  // samples that follow it classify ok against the post-step baseline,
  // and a later return to the old level is flagged again (improvement).
  std::vector<double> values{100, 100.2, 99.8, 100.1, 99.9, 100.0};
  for (int i = 0; i < 8; ++i) values.push_back(130.0 + 0.1 * (i % 3));
  for (int i = 0; i < 3; ++i) values.push_back(100.0);
  auto points = analysis::scan(make_series(values), DetectorConfig{});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].classification.verdict, Verdict::regression);
  EXPECT_EQ(points[0].index, 6u);
  EXPECT_EQ(points[1].classification.verdict, Verdict::improvement);
  EXPECT_EQ(points[1].index, 14u);
}

TEST(Detect, PureNoiseNeverAlarms) {
  // 200 samples of bounded noise around 100: zero change points, and
  // the latest sample classifies ok.
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> noise(99.0, 101.0);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(noise(rng));
  auto samples = make_series(values);

  EXPECT_TRUE(analysis::scan(samples, DetectorConfig{}).empty());
  auto latest = analysis::classify_latest(samples, DetectorConfig{});
  EXPECT_EQ(latest.verdict, Verdict::ok);
}

TEST(Detect, FlatSeriesRepeatsAreOk) {
  // A store-warm re-run repeats values bit-for-bit; the flat-series
  // sigma floor must not turn "identical" into "regression".
  std::vector<double> values(12, 42.0);
  auto samples = make_series(values);
  EXPECT_TRUE(analysis::scan(samples, DetectorConfig{}).empty());
  auto latest = analysis::classify_latest(samples, DetectorConfig{});
  EXPECT_EQ(latest.verdict, Verdict::ok);
  EXPECT_DOUBLE_EQ(latest.score, 0.0);
}

TEST(Detect, GentleDriftBelowThresholdStaysQuiet) {
  // 0.05%/step drift never moves 4 robust sigmas within the window.
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(100.0 + 0.05 * i);
  EXPECT_TRUE(analysis::scan(make_series(values), DetectorConfig{}).empty());
}

TEST(Detect, SteepDriftIsCaught) {
  // A 5%/step ramp against a tight window crosses the threshold.
  std::vector<double> values{100, 100, 100, 100, 100};
  for (int i = 1; i <= 12; ++i) values.push_back(100.0 + 5.0 * i);
  DetectorConfig config;
  config.window = 5;
  config.threshold = 2.0;
  auto points = analysis::scan(make_series(values), config);
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points[0].classification.verdict, Verdict::regression);
}

TEST(Detect, UnstableSeriesClassifiedNoisy) {
  // Noise sigma comparable to the center: the detector refuses to call
  // either direction instead of alarming.
  std::vector<double> values{10, 90, 15, 80, 20, 95, 12, 85, 18, 50};
  auto latest = analysis::classify_latest(make_series(values),
                                          DetectorConfig{});
  EXPECT_EQ(latest.verdict, Verdict::noisy);
  EXPECT_EQ(latest.confidence, 0.0);
}

TEST(Detect, FailedSamplesAreSkipped) {
  std::vector<double> values{100, 100.2, 99.8, 100.1, 99.9, 100.0, 130.0};
  auto samples = make_series(values);
  // A crashed sample carries no judgeable value; mark one mid-baseline.
  samples[2].success = false;
  auto points = analysis::scan(samples, DetectorConfig{});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].index, 6u);
}

TEST(Detect, InsufficientHistoryThrowsTypedError) {
  auto samples = make_series({100.0, 100.1, 99.9});
  try {
    (void)analysis::classify_latest(samples, DetectorConfig{});
    FAIL() << "expected InsufficientHistoryError";
  } catch (const benchpark::InsufficientHistoryError& e) {
    EXPECT_EQ(e.have, 2u);  // two baseline samples before the latest
    EXPECT_EQ(e.need, 5u);
    EXPECT_NE(std::string(e.what()).find("detector needs 5"),
              std::string::npos);
  }
  // The taxonomy chains like the concretizer's errors do.
  EXPECT_THROW((void)analysis::classify_latest(samples, DetectorConfig{}),
               benchpark::AnalysisError);
}

// ---------------------------------------------------------------- bisection

namespace {

/// N distinct configs, `samples_per` samples each; configs at or after
/// `first_bad` produce `bad_value`, earlier ones `good_value`.
std::vector<HistorySample> planted_history(std::size_t configs,
                                           std::size_t samples_per,
                                           std::size_t first_bad,
                                           double good_value,
                                           double bad_value) {
  std::vector<HistorySample> samples;
  std::uint64_t seq = 0;
  for (std::size_t c = 0; c < configs; ++c) {
    for (std::size_t r = 0; r < samples_per; ++r) {
      HistorySample s;
      s.sequence = ++seq;
      s.value = c >= first_bad ? bad_value : good_value;
      s.units = "s";
      s.config_hash = "cfg" + std::to_string(c);
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

}  // namespace

TEST(Bisect, ConfigSpansPreserveFirstAppearanceOrder) {
  auto samples = planted_history(4, 3, 2, 100, 130);
  auto spans = analysis::config_spans(samples);
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].config_hash, "cfg" + std::to_string(i));
    EXPECT_EQ(spans[i].samples, 3u);
  }
  EXPECT_DOUBLE_EQ(spans[1].recorded_value, 100.0);
  EXPECT_DOUBLE_EQ(spans[2].recorded_value, 130.0);
  EXPECT_EQ(spans[0].first_sequence, 1u);
  EXPECT_EQ(spans[0].last_sequence, 3u);
}

TEST(Bisect, AttributesPlantedBadHashWithinLogBudget) {
  // 32 candidate configs, the regression planted at cfg20: a counting
  // measure proves the search replays at most ceil(log2(32)) + 1
  // midpoints between the endpoints.
  const std::size_t kConfigs = 32, kFirstBad = 20;
  auto samples = planted_history(kConfigs, 2, kFirstBad, 100, 130);
  auto spans = analysis::config_spans(samples);

  std::size_t measured = 0;
  analysis::BisectOptions options;
  options.measure = [&](const std::string& hash) {
    ++measured;
    for (const auto& span : spans) {
      if (span.config_hash == hash) return std::optional(span.recorded_value);
    }
    return std::optional<double>();
  };
  auto result =
      analysis::bisect_first_bad(spans, 0, kConfigs - 1, options);
  EXPECT_EQ(result.first_bad_hash, "cfg20");
  EXPECT_EQ(result.last_good_hash, "cfg19");
  const auto budget = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(kConfigs)))) + 1;
  EXPECT_LE(result.replays, budget);
  EXPECT_EQ(measured, result.replays + 2);  // midpoints + both endpoints
  EXPECT_DOUBLE_EQ(result.good_value, 100.0);
  EXPECT_DOUBLE_EQ(result.bad_value, 130.0);
}

TEST(Bisect, DefaultMeasureUsesRecordedValues) {
  // No measure callback: the recorded per-config medians (what a
  // store-warm replay would return) drive the search.
  auto samples = planted_history(16, 1, 5, 50, 80);
  auto spans = analysis::config_spans(samples);
  auto result = analysis::bisect_first_bad(spans, 0, 15, {});
  EXPECT_EQ(result.first_bad_hash, "cfg5");
  EXPECT_EQ(result.last_good_hash, "cfg4");
  EXPECT_LE(result.replays, 4u);
}

TEST(Bisect, ChangePointDrivesEndToEndAttribution) {
  auto samples = planted_history(8, 3, 6, 100, 140);
  DetectorConfig config;
  config.warmup = 5;
  auto points = analysis::scan(samples, config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].config_hash, "cfg6");
  auto result = analysis::bisect_change_point(samples, points[0], {});
  EXPECT_EQ(result.first_bad_hash, "cfg6");
  EXPECT_EQ(result.last_good_hash, "cfg5");
}

TEST(Bisect, InconclusiveCasesThrowTypedError) {
  auto samples = planted_history(8, 2, 4, 100, 130);
  auto spans = analysis::config_spans(samples);
  // Agreeing endpoints: nothing to search between.
  EXPECT_THROW((void)analysis::bisect_first_bad(spans, 0, 2, {}),
               benchpark::BisectionInconclusiveError);
  // Same-config change point (an environmental step, not a spec).
  analysis::ChangePoint point;
  point.config_hash = "cfg3";
  point.baseline_config_hash = "cfg3";
  EXPECT_THROW((void)analysis::bisect_change_point(samples, point, {}),
               benchpark::BisectionInconclusiveError);
  // Unreplayable midpoint.
  analysis::BisectOptions broken;
  broken.measure = [&](const std::string& hash) {
    if (hash == "cfg0" || hash == "cfg7") {
      return std::optional(hash == "cfg7" ? 130.0 : 100.0);
    }
    return std::optional<double>();
  };
  EXPECT_THROW((void)analysis::bisect_first_bad(spans, 0, 7, broken),
               benchpark::BisectionInconclusiveError);
}

// -------------------------------------------------------------- FomHistory

TEST(FomHistory, AppendAssignsPerSeriesSequences) {
  FomHistory history;
  EXPECT_EQ(history.append(kKey, 1.0, "s", "c1"), 1u);
  EXPECT_EQ(history.append(kKey, 2.0, "s", "c1"), 2u);
  SeriesKey other = kKey;
  other.fom = "gflops";
  EXPECT_EQ(history.append(other, 10.0, "gflop/s", "c1"), 1u);
  EXPECT_EQ(history.size(), 3u);
  EXPECT_EQ(history.series_size(kKey), 2u);
  auto keys = history.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(history.series(kKey)[1].value, 2.0);
}

TEST(FomHistory, PersistsThroughStoreReload) {
  support::TempDir dir("history-store");
  {
    auto s = store::Store::open(dir.path());
    FomHistory history(s);
    for (int i = 1; i <= 6; ++i) {
      history.append(kKey, 100.0 + i, "s", "cfg" + std::to_string(i),
                     i != 3);  // one failed sample survives the round trip
    }
    SeriesKey other{"stream", "ats2", "stream_1", "bw"};
    history.append(other, 3.5, "GB/s", "cfgX");
    s->flush();
  }
  auto reopened = store::Store::open(dir.path());
  FomHistory history(reopened);
  EXPECT_EQ(history.skipped_records(), 0u);
  EXPECT_EQ(history.size(), 7u);
  auto samples = history.series(kKey);
  ASSERT_EQ(samples.size(), 6u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].sequence, i + 1);
    EXPECT_DOUBLE_EQ(samples[i].value, 101.0 + static_cast<double>(i));
    EXPECT_EQ(samples[i].config_hash, "cfg" + std::to_string(i + 1));
  }
  EXPECT_FALSE(samples[2].success);
  EXPECT_EQ(samples[2].units, "s");
  // A reloaded history continues the sequence, not restarts it.
  EXPECT_EQ(history.append(kKey, 200.0, "s", "cfg7"), 7u);
}

TEST(FomHistory, ConcurrentAppendsAreSerialized) {
  FomHistory history;
  constexpr int kThreads = 8, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&history, t] {
      SeriesKey own{"bench", "sys", "exp" + std::to_string(t), "fom"};
      SeriesKey shared{"bench", "sys", "shared", "fom"};
      for (int i = 0; i < kPerThread; ++i) {
        history.append(own, i, "s", "c");
        history.append(shared, i, "s", "c");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(history.size(),
            static_cast<std::size_t>(2 * kThreads * kPerThread));
  SeriesKey shared{"bench", "sys", "shared", "fom"};
  auto samples = history.series(shared);
  ASSERT_EQ(samples.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].sequence, i + 1);  // dense, no drops or dupes
  }
}

// ------------------------------------------------------- FaultPlan keying

TEST(FaultFingerprint, StableAndPlanSensitive) {
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  EXPECT_EQ(plan.fingerprint(), "");
  plan = support::FaultPlan::parse(
      "seed=7;experiment.exec:key=x,latency=30");
  const auto fp = plan.fingerprint();
  EXPECT_EQ(fp.size(), 13u);
  EXPECT_EQ(plan.fingerprint(), fp);  // deterministic
  plan = support::FaultPlan::parse(
      "seed=7;experiment.exec:key=x,latency=31");
  EXPECT_NE(plan.fingerprint(), fp);  // content-sensitive
}

TEST(FaultFingerprint, SiteFilterIgnoresNonExecutionRules) {
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  // A plan that only perturbs service dispatch must not change the
  // execution fingerprint — warm-start keys survive such chaos plans.
  plan = support::FaultPlan::parse("seed=3;serve.dispatch:nth=1");
  EXPECT_EQ(plan.fingerprint({"experiment.", "runtime."}), "");
  EXPECT_NE(plan.fingerprint(), "");

  plan = support::FaultPlan::parse(
      "seed=3;serve.dispatch:nth=1;experiment.exec:latency=30");
  const auto exec_only = plan.fingerprint({"experiment.", "runtime."});
  EXPECT_NE(exec_only, "");
  EXPECT_NE(exec_only, plan.fingerprint());  // dispatch rule excluded
  // Dropping the irrelevant rule leaves the filtered fingerprint alone.
  plan = support::FaultPlan::parse("seed=3;experiment.exec:latency=30");
  EXPECT_EQ(plan.fingerprint({"experiment.", "runtime."}), exec_only);
}

// ------------------------------------------------------------ run_analysis

TEST(RunAnalysis, RejectsSourcelessRequests) {
  analysis::AnalysisRequest empty;
  EXPECT_THROW((void)analysis::run_analysis(empty),
               benchpark::AnalysisError);
}

TEST(RunAnalysis, HistorySourceDetectsAndBisects) {
  FomHistory history;
  auto samples = planted_history(8, 3, 6, 100, 140);
  for (const auto& s : samples) {
    history.append(kKey, s.value, s.units, s.config_hash, s.success);
  }
  analysis::AnalysisRequest request;
  request.history = &history;
  request.render_json = true;
  auto result = analysis::run_analysis(request);

  ASSERT_EQ(result.series.size(), 1u);
  const auto& series = result.series[0];
  EXPECT_EQ(series.key, kKey);
  ASSERT_EQ(series.change_points.size(), 1u);
  EXPECT_TRUE(series.bisected);
  EXPECT_EQ(series.bisection.first_bad_hash, "cfg6");
  EXPECT_EQ(result.stats.regressions, 1u);
  EXPECT_EQ(result.regressed_series(), 1u);
  EXPECT_NE(result.json.find("\"benchpark-analysis-v1\""),
            std::string::npos);
  EXPECT_NE(result.json.find("\"first_bad\":\"cfg6\""), std::string::npos);
}

TEST(RunAnalysis, FiltersSelectSeries) {
  FomHistory history;
  history.append(kKey, 1.0, "s", "c");
  SeriesKey other{"stream", "ats2", "stream_1", "bw"};
  history.append(other, 2.0, "GB/s", "c");
  analysis::AnalysisRequest request;
  request.history = &history;
  request.benchmark = "stream";
  auto result = analysis::run_analysis(request);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].key.benchmark, "stream");
  // Below warmup: reported as a typed shortfall, never thrown.
  EXPECT_FALSE(result.series[0].has_latest);
  EXPECT_FALSE(result.series[0].latest_error.empty());
}

TEST(RunAnalysis, RecordsSourceIngestsRowsAndThicket) {
  std::vector<analysis::ExperimentRecord> records(2);
  records[0].benchmark = "saxpy";
  records[0].system = "cts1";
  records[0].experiment = "saxpy_1";
  records[0].success = true;
  records[0].foms.push_back({"gflops", "1.5", 1.5, true, "gflop/s"});
  records[0].output =
      "caliper: region profile\nmain 0.5 s\nmain/kernel 0.3 s\n";
  records[1] = records[0];
  records[1].experiment = "saxpy_2";

  analysis::AnalysisRequest request;
  request.records = &records;
  request.detect = false;
  request.threads = 1;
  auto result = analysis::run_analysis(request);
  ASSERT_EQ(result.ingested_rows.size(), 2u);
  EXPECT_EQ(result.ingested_rows[0].experiment, "saxpy_1");
  EXPECT_EQ(result.db.size(), 2u);
  EXPECT_EQ(result.thicket.num_profiles(), 2u);
  EXPECT_EQ(result.stats.rows_ingested, 2u);

  // The Campaign pattern: the MetricsDb sink accumulates across façade
  // calls; the Thicket sink is reset per run (columns must stay unique).
  analysis::MetricsDb db;
  analysis::Thicket thicket;
  request.metrics_out = &db;
  request.thicket_out = &thicket;
  (void)analysis::run_analysis(request);
  thicket = analysis::Thicket{};
  (void)analysis::run_analysis(request);
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(thicket.num_profiles(), 2u);
}

TEST(RunAnalysis, JsonReportIsByteStable) {
  FomHistory history;
  auto samples = planted_history(6, 2, 4, 100, 130);
  for (const auto& s : samples) {
    history.append(kKey, s.value, s.units, s.config_hash, s.success);
  }
  analysis::AnalysisRequest request;
  request.history = &history;
  request.render_json = true;
  request.render_html = true;
  request.render_text = true;
  auto first = analysis::run_analysis(request);
  auto second = analysis::run_analysis(request);
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(first.html, second.html);
  EXPECT_EQ(first.text, second.text);
}
