// Environment + installer + binary cache tests: the Figure 2 workflow
// (env create / add / concretize / install), manifest round-trips
// (Figure 3), lockfile reproducibility, and the Sec. 7.2 warm-cache claim.
#include <gtest/gtest.h>

#include <map>

#include "src/buildcache/binary_cache.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/yaml/emitter.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace cz = benchpark::concretizer;
namespace env = benchpark::env;
namespace install = benchpark::install;
namespace pkg = benchpark::pkg;
namespace spec = benchpark::spec;
using benchpark::buildcache::BinaryCache;
using spec::Version;

namespace {

cz::Concretizer simple_concretizer() {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  config.package("mpi").preferred_providers = {"mvapich2"};
  return cz::Concretizer(pkg::default_repo_stack(), config);
}

/// One root through the unified API, legacy semantics (fresh context,
/// serial, no memo cache).
spec::Spec concretize1(const cz::Concretizer& c, const std::string& text) {
  cz::ConcretizeRequest request;
  request.roots = {spec::Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

}  // namespace

TEST(Environment, Figure3ManifestRoundTrip) {
  auto manifest = benchpark::yaml::parse(
      "spack:\n"
      "  specs: [amg2023+caliper]\n"
      "  concretizer:\n"
      "    unify: true\n"
      "  view: true\n");
  auto e = env::Environment::from_manifest(manifest);
  ASSERT_EQ(e.user_specs().size(), 1u);
  EXPECT_EQ(e.user_specs()[0].name(), "amg2023");
  EXPECT_TRUE(e.unify());
  EXPECT_TRUE(e.view());

  auto emitted = e.manifest_yaml();
  auto reloaded = env::Environment::from_manifest(emitted);
  EXPECT_EQ(reloaded.user_specs()[0].str(), e.user_specs()[0].str());
}

TEST(Environment, AddMergesConstraintsForSamePackage) {
  env::Environment e;
  e.add("hypre@2.24:");
  e.add("hypre+openmp");
  ASSERT_EQ(e.user_specs().size(), 1u);
  EXPECT_TRUE(e.user_specs()[0].variant_enabled("openmp"));
}

TEST(Environment, AddAnonymousThrows) {
  env::Environment e;
  EXPECT_THROW(e.add("+cuda"), benchpark::Error);
}

TEST(Environment, RemoveInvalidatesConcretization) {
  env::Environment e;
  e.add("zlib");
  e.add("cmake");
  auto c = simple_concretizer();
  e.concretize(c);
  EXPECT_TRUE(e.concretized());
  EXPECT_TRUE(e.remove("zlib"));
  EXPECT_FALSE(e.concretized());
  EXPECT_FALSE(e.remove("zlib"));
}

TEST(Environment, Figure2Workflow) {
  // spack env create; spack add amg2023+caliper; spack concretize;
  // spack install.
  env::Environment e;
  e.add("amg2023+caliper");
  auto c = simple_concretizer();
  e.concretize(c);
  ASSERT_TRUE(e.concretized());
  const auto* amg = e.concrete_for("amg2023");
  ASSERT_NE(amg, nullptr);
  EXPECT_TRUE(amg->concrete());

  install::InstallTree tree;
  BinaryCache cache;
  install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
  auto report = e.install_all(installer);
  EXPECT_GT(report.from_source, 3u);
  EXPECT_GT(report.total_simulated_seconds, 0.0);
  EXPECT_TRUE(tree.installed(*amg));
}

TEST(Environment, ConcreteForSearchesClosure) {
  env::Environment e;
  e.add("amg2023");
  auto c = simple_concretizer();
  e.concretize(c);
  EXPECT_NE(e.concrete_for("hypre"), nullptr);      // transitive dep
  EXPECT_EQ(e.concrete_for("not-there"), nullptr);
}

TEST(Environment, UnifySharesDependencies) {
  env::Environment e;
  e.add("amg2023");
  e.add("saxpy");
  auto c = simple_concretizer();
  e.concretize(c);
  const auto* amg = e.concrete_for("amg2023");
  const auto* saxpy = e.concrete_for("saxpy");
  ASSERT_NE(amg->dependency("mvapich2"), nullptr);
  ASSERT_NE(saxpy->dependency("mvapich2"), nullptr);
  EXPECT_EQ(amg->dependency("mvapich2")->dag_hash(),
            saxpy->dependency("mvapich2")->dag_hash());
}

TEST(Environment, LockfileRoundTripReproducesDag) {
  env::Environment e;
  e.add("amg2023+caliper");
  auto c = simple_concretizer();
  e.concretize(c);
  auto lock = e.lockfile();

  // The lockfile consumer needs no concretizer: full reproducibility.
  auto restored = env::Environment::from_lockfile(lock);
  ASSERT_EQ(restored.concrete_specs().size(), 1u);
  EXPECT_EQ(restored.concrete_specs()[0].dag_hash(),
            e.concrete_specs()[0].dag_hash());
}

TEST(Environment, LockfileSurvivesTextSerialization) {
  env::Environment e;
  e.add("saxpy");
  auto c = simple_concretizer();
  e.concretize(c);
  auto text = benchpark::yaml::emit(e.lockfile());
  auto reparsed = benchpark::yaml::parse(text);
  auto restored = env::Environment::from_lockfile(reparsed);
  EXPECT_EQ(restored.concrete_specs()[0].dag_hash(),
            e.concrete_specs()[0].dag_hash());
}

TEST(Environment, LockfileRequiresConcretization) {
  env::Environment e;
  e.add("zlib");
  EXPECT_THROW(e.lockfile(), benchpark::Error);
}

TEST(Installer, BuildOrderIsDependenciesFirst) {
  env::Environment e;
  e.add("amg2023+caliper");
  auto c = simple_concretizer();
  e.concretize(c);
  const auto& root = e.concrete_specs()[0];
  auto order = install::Installer::build_order(root);
  ASSERT_GE(order.size(), 4u);
  EXPECT_EQ(order.back()->name(), "amg2023");
  // hypre must appear before amg2023, adiak before caliper.
  auto idx = [&](std::string_view name) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i]->name() == name) return static_cast<long>(i);
    }
    return -1L;
  };
  EXPECT_LT(idx("hypre"), idx("amg2023"));
  EXPECT_LT(idx("adiak"), idx("caliper"));
}

TEST(Installer, SecondInstallIsNoOp) {
  env::Environment e;
  e.add("saxpy");
  auto c = simple_concretizer();
  e.concretize(c);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  auto first = e.install_all(installer);
  EXPECT_GT(first.from_source, 0u);
  auto second = e.install_all(installer);
  EXPECT_EQ(second.from_source, 0u);
  EXPECT_GT(second.already_installed, 0u);
  EXPECT_DOUBLE_EQ(second.total_simulated_seconds, 0.0);
}

TEST(Installer, AbstractSpecRejected) {
  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  EXPECT_THROW(installer.install(spec::Spec::parse("zlib")),
               benchpark::Error);
}

TEST(Installer, ExternalsCostNothing) {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target("broadwell");
  auto packages = benchpark::yaml::parse(
      "packages:\n"
      "  mpi:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /opt/mvapich2\n"
      "  mvapich2:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /opt/mvapich2\n");
  config.load_packages_yaml(packages);
  cz::Concretizer c(pkg::default_repo_stack(), config);
  auto s = concretize1(c, "saxpy");

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  auto report = installer.install(s);
  EXPECT_GE(report.externals, 1u);
  for (const auto& r : report.installed) {
    if (r.source == install::InstallSource::external) {
      EXPECT_DOUBLE_EQ(r.simulated_seconds, 0.0);
      EXPECT_EQ(r.prefix, "/opt/mvapich2");
    }
  }
}

TEST(Installer, PrefixLayoutIncludesHashAndTarget) {
  auto c = simple_concretizer();
  auto s = concretize1(c, "zlib");
  install::InstallTree tree("/tmp/tree");
  auto prefix = tree.prefix_for(s);
  EXPECT_NE(prefix.find("/tmp/tree/broadwell/zlib-1.3-"), std::string::npos);
  EXPECT_NE(prefix.find(s.dag_hash()), std::string::npos);
}

TEST(Installer, BuildArgsRecorded) {
  auto c = simple_concretizer();
  auto s = concretize1(c, "saxpy+openmp");
  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  auto report = installer.install(s);
  const auto& saxpy_record = report.installed.back();
  EXPECT_EQ(saxpy_record.spec.name(), "saxpy");
  EXPECT_EQ(saxpy_record.build_args,
            (std::vector<std::string>{"-DUSE_OPENMP=ON"}));
}

TEST(Installer, MoreJobsBuildFaster) {
  auto c = simple_concretizer();
  auto s = concretize1(c, "hypre");
  install::InstallOptions serial;
  serial.build_jobs = 1;
  install::InstallOptions parallel;
  parallel.build_jobs = 16;

  install::InstallTree tree1, tree2;
  install::Installer i1(pkg::default_repo_stack(), &tree1, nullptr);
  install::Installer i2(pkg::default_repo_stack(), &tree2, nullptr);
  auto slow = i1.install(s, serial);
  auto fast = i2.install(s, parallel);
  EXPECT_GT(slow.total_simulated_seconds, fast.total_simulated_seconds);
}

TEST(BinaryCache, WarmCacheIsTenTimesFaster) {
  // Section 7.2: the rolling binary cache "focuses the time to build
  // applications on only the dependencies with special requirements".
  env::Environment e;
  e.add("amg2023+caliper");
  auto c = simple_concretizer();
  e.concretize(c);

  BinaryCache cache;
  install::InstallTree cold_tree;
  install::Installer cold_installer(pkg::default_repo_stack(), &cold_tree,
                                    &cache);
  auto cold = e.install_all(cold_installer);
  EXPECT_GT(cold.from_source, 0u);

  // A second site with an empty install tree but a warm mirror.
  install::InstallTree warm_tree;
  install::Installer warm_installer(pkg::default_repo_stack(), &warm_tree,
                                    &cache);
  auto warm = e.install_all(warm_installer);
  EXPECT_EQ(warm.from_source, 0u);
  EXPECT_GT(warm.from_cache, 0u);
  EXPECT_GT(cold.total_simulated_seconds,
            10.0 * warm.total_simulated_seconds);
}

TEST(BinaryCache, StatsAndFetchCost) {
  BinaryCache cache(0.1, 1.0e6);
  auto c = simple_concretizer();
  auto s = concretize1(c, "zlib");
  EXPECT_FALSE(cache.fetch(s).has_value());
  cache.push(s, 500000);
  auto entry = cache.fetch(s);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.fetch_cost_seconds(entry->size_bytes), 0.1 + 0.5);
}

TEST(BinaryCache, ContentAddressing) {
  BinaryCache cache;
  auto c = simple_concretizer();
  auto a = concretize1(c, "zlib");
  auto b = concretize1(c, "zlib@:1.2");  // different version, different hash
  cache.push(a, 1000);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_FALSE(cache.contains(b));
}

TEST(Installer, WavefrontInstallMatchesSerialWalk) {
  // The pooled engine must be a pure scheduling change: same records,
  // same counters, same modeled times as the one-at-a-time walk.
  auto c = simple_concretizer();
  auto spec = concretize1(c, "amg2023+caliper");

  install::InstallOptions serial;
  serial.engine_threads = 1;
  install::InstallOptions pooled;
  pooled.engine_threads = 4;

  install::InstallTree serial_tree, pooled_tree;
  BinaryCache serial_cache, pooled_cache;
  install::Installer serial_installer(pkg::default_repo_stack(), &serial_tree,
                                      &serial_cache);
  install::Installer pooled_installer(pkg::default_repo_stack(), &pooled_tree,
                                      &pooled_cache);
  auto serial_report = serial_installer.install(spec, serial);
  auto pooled_report = pooled_installer.install(spec, pooled);

  ASSERT_EQ(pooled_report.installed.size(), serial_report.installed.size());
  for (std::size_t i = 0; i < serial_report.installed.size(); ++i) {
    EXPECT_EQ(pooled_report.installed[i].spec.dag_hash(),
              serial_report.installed[i].spec.dag_hash());
    EXPECT_EQ(pooled_report.installed[i].source,
              serial_report.installed[i].source);
  }
  EXPECT_EQ(pooled_report.from_source, serial_report.from_source);
  EXPECT_DOUBLE_EQ(pooled_report.total_simulated_seconds,
                   serial_report.total_simulated_seconds);
  EXPECT_DOUBLE_EQ(pooled_report.critical_path_seconds,
                   serial_report.critical_path_seconds);
  EXPECT_EQ(pooled_report.build_log, serial_report.build_log);
  EXPECT_EQ(pooled_tree.size(), serial_tree.size());
}

TEST(Installer, CriticalPathBeatsSerialTotal) {
  // The amg2023 closure has real DAG width (hypre's math stack and the
  // caliper tool chain are independent), so wavefront scheduling models
  // >= 1.5x over the serial walk -- the paper's parallel-install story.
  // Use the cts1 site config (as the buildcache bench does): its MKL and
  // MVAPICH2 externals match how a real site focuses build time "on only
  // the dependencies with special requirements".
  const auto& cts1 = benchpark::system::SystemRegistry::instance().get("cts1");
  cz::Concretizer c(pkg::default_repo_stack(), cts1.config);
  auto spec = concretize1(c, "amg2023+caliper");
  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  auto report = installer.install(spec);
  ASSERT_GT(report.critical_path_seconds, 0.0);
  EXPECT_LT(report.critical_path_seconds, report.total_simulated_seconds);
  EXPECT_GE(report.total_simulated_seconds / report.critical_path_seconds,
            1.5);
}

TEST(Environment, ConcurrentRootsBuildSharedDepsOnce) {
  env::Environment e;
  e.add("amg2023+caliper");
  e.add("saxpy+openmp");
  auto c = simple_concretizer();
  e.concretize(c);

  BinaryCache cache;
  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
  install::InstallOptions options;
  options.engine_threads = 4;
  auto report = e.install_all(installer, options);

  // Every closure node accounted for, and no DAG hash built twice: the
  // in-flight claim turns the second root's shared deps into
  // already-installed records (never duplicate source builds).
  EXPECT_EQ(report.from_source + report.from_cache + report.externals +
                report.already_installed,
            report.installed.size());
  std::map<std::string, int> source_builds;
  for (const auto& record : report.installed) {
    if (record.source == install::InstallSource::source_build) {
      ++source_builds[record.spec.dag_hash()];
    }
  }
  for (const auto& [hash, count] : source_builds) {
    EXPECT_EQ(count, 1) << hash;
  }
  EXPECT_EQ(report.from_source, source_builds.size());
  EXPECT_EQ(tree.size(), cache.stats().pushes + report.externals);
}

TEST(Installer, ArchspecFlagsRecordedPerTarget) {
  // Section 3.1.3: builds are tuned to the target microarchitecture.
  const auto& registry = benchpark::system::SystemRegistry::instance();
  struct Case {
    const char* system;
    const char* expected_flag;
  };
  for (const Case& c : {Case{"cts1", "-march=broadwell"},
                        Case{"ats4", "-march=znver3"}}) {
    cz::Config config = registry.get(c.system).config;
    cz::Concretizer concretizer(pkg::default_repo_stack(), config);
    auto spec = concretize1(concretizer, "zlib");
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
    auto report = installer.install(spec);
    ASSERT_FALSE(report.installed.empty());
    EXPECT_EQ(report.installed.back().arch_flags, c.expected_flag)
        << c.system;
    EXPECT_NE(report.build_log.find(c.expected_flag), std::string::npos);
  }
}

TEST(Installer, Power9FlagsOnAts2) {
  const auto& ats2 = benchpark::system::SystemRegistry::instance().get("ats2");
  cz::Concretizer concretizer(pkg::default_repo_stack(), ats2.config);
  auto spec = concretize1(concretizer, "zlib%gcc");
  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  auto report = installer.install(spec);
  EXPECT_EQ(report.installed.back().arch_flags, "-mcpu=power9");
}

TEST(Installer, TransientBuildFailuresAreRetriedWithBackoff) {
  // A dependency whose build step fails twice, then succeeds: the DAG
  // must still complete, with the retries visible in the record.
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto c = simple_concretizer();
  auto spec = concretize1(c, "saxpy");
  const auto* mpi = spec.dependency("mvapich2");
  ASSERT_NE(mpi, nullptr);

  benchpark::support::FaultRule rule;
  rule.site = "install.build_step";
  rule.key = mpi->dag_hash();
  rule.nth = 1;
  rule.count = 2;
  plan.add_rule(rule);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  install::InstallOptions options;
  options.max_retries = 2;
  auto report = installer.install(spec, options);

  const install::InstallRecord* mpi_record = nullptr;
  for (const auto& r : report.installed) {
    if (r.spec.name() == "mvapich2") mpi_record = &r;
  }
  ASSERT_NE(mpi_record, nullptr);
  EXPECT_EQ(mpi_record->attempts, 3);
  EXPECT_GT(mpi_record->retry_wait_seconds, 0.0);
  EXPECT_TRUE(tree.installed(*mpi));
  EXPECT_TRUE(tree.installed(spec));
  EXPECT_NE(report.build_log.find("[r] "), std::string::npos);
  EXPECT_EQ(report.total_attempts, report.installed.size() + 2);
  EXPECT_DOUBLE_EQ(report.retry_wait_seconds, mpi_record->retry_wait_seconds);
}

TEST(Installer, ExhaustedRetriesFailLoudlyAndReleaseClaims) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto c = simple_concretizer();
  auto spec = concretize1(c, "saxpy");
  const auto* mpi = spec.dependency("mvapich2");
  ASSERT_NE(mpi, nullptr);

  benchpark::support::FaultRule rule;
  rule.site = "install.build_step";
  rule.key = mpi->dag_hash();
  rule.nth = 1;
  rule.count = 99;  // more than any retry budget
  plan.add_rule(rule);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  install::InstallOptions options;
  options.max_retries = 2;
  EXPECT_THROW(installer.install(spec, options), benchpark::PermanentError);
  EXPECT_FALSE(tree.installed(*mpi));
  EXPECT_FALSE(tree.installed(spec));

  // The failed build's in-flight claim must have been released: with the
  // plan cleared, the same installer converges on a second try.
  plan.clear();
  auto report = installer.install(spec, options);
  EXPECT_TRUE(tree.installed(spec));
  EXPECT_GT(report.from_source, 0u);
}

TEST(Installer, FailedDependencySkipsDependentsButBuildsTheRest) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto c = simple_concretizer();
  auto spec = concretize1(c, "amg2023+caliper");
  const auto* hypre = spec.dependency("hypre");
  ASSERT_NE(hypre, nullptr);

  benchpark::support::FaultRule rule;
  rule.site = "install.build_step";
  rule.key = hypre->dag_hash();
  rule.kind = benchpark::support::FaultKind::permanent;
  plan.add_rule(rule);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  try {
    installer.install(spec);
    FAIL() << "install should have failed";
  } catch (const benchpark::PermanentError& e) {
    EXPECT_NE(std::string(e.what()).find("failed or were skipped"),
              std::string::npos);
  }
  // hypre and its dependents are absent; independent chains (the caliper
  // tool stack) still installed.
  EXPECT_FALSE(tree.installed(*hypre));
  EXPECT_FALSE(tree.installed(spec));
  const auto* caliper = spec.dependency("caliper");
  ASSERT_NE(caliper, nullptr);
  EXPECT_TRUE(tree.installed(*caliper));
}

TEST(Installer, FetchFailureFallsBackToSourceBuild) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  auto c = simple_concretizer();
  auto spec = concretize1(c, "zlib");
  BinaryCache cache;
  {
    install::InstallTree warmup;
    install::Installer installer(pkg::default_repo_stack(), &warmup, &cache);
    installer.install(spec);
  }
  ASSERT_TRUE(cache.contains(spec));

  // Fail every fetch attempt — beyond the cache's internal retries — so
  // the installer must fall back to a source build.
  benchpark::support::FaultRule rule;
  rule.site = "buildcache.fetch";
  rule.key = spec.dag_hash();
  rule.nth = 1;
  rule.count = 99;
  plan.add_rule(rule);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
  auto report = installer.install(spec);
  EXPECT_TRUE(tree.installed(spec));
  EXPECT_EQ(report.from_cache, 0u);
  EXPECT_GT(report.from_source, 0u);
  EXPECT_NE(report.build_log.find("cache fetch failed"), std::string::npos);
}

TEST(Environment, SameSeedChaosInstallsAreByteIdentical) {
  // The acceptance bar: under a nonzero fault plan, a concurrent
  // multi-root install converges with every package installed exactly
  // once, and two runs with the same seed produce identical reports.
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse(
      "seed=1234;install.build_step:p=0.2;buildcache.fetch:nth=1");

  env::Environment e;
  e.add("amg2023+caliper");
  e.add("saxpy+openmp");
  auto c = simple_concretizer();
  e.concretize(c);

  auto run = [&] {
    BinaryCache cache;
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
    install::InstallOptions options;
    options.engine_threads = 4;
    options.max_retries = 3;
    auto report = e.install_all(installer, options);
    EXPECT_EQ(tree.size(), cache.stats().pushes + report.externals);
    return report;
  };
  auto first = run();
  auto second = run();

  EXPECT_EQ(first.build_log, second.build_log);
  EXPECT_EQ(first.total_attempts, second.total_attempts);
  EXPECT_DOUBLE_EQ(first.total_simulated_seconds,
                   second.total_simulated_seconds);
  EXPECT_DOUBLE_EQ(first.retry_wait_seconds, second.retry_wait_seconds);

  // Exactly-once semantics under chaos: no hash built from source twice.
  std::map<std::string, int> source_builds;
  for (const auto& record : first.installed) {
    if (record.source == install::InstallSource::source_build) {
      ++source_builds[record.spec.dag_hash()];
    }
  }
  for (const auto& [hash, count] : source_builds) {
    EXPECT_EQ(count, 1) << hash;
  }
  EXPECT_EQ(first.from_source + first.from_cache + first.externals +
                first.already_installed,
            first.installed.size());
}

TEST(Environment, SharedDepPermanentFailureFailsFastWithoutDeadlock) {
  // A shared dependency that fails for good must wake the roots waiting
  // on it (via the coordination failure board), not wedge the DAG.
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();

  env::Environment e;
  e.add("amg2023");
  e.add("saxpy");
  auto c = simple_concretizer();
  e.concretize(c);
  const auto* mpi = e.concrete_for("mvapich2");
  ASSERT_NE(mpi, nullptr);

  benchpark::support::FaultRule rule;
  rule.site = "install.build_step";
  rule.key = mpi->dag_hash();
  rule.kind = benchpark::support::FaultKind::permanent;
  plan.add_rule(rule);

  install::InstallTree tree;
  install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
  install::InstallOptions options;
  options.engine_threads = 4;
  EXPECT_THROW(e.install_all(installer, options), benchpark::PermanentError);
  EXPECT_FALSE(tree.installed(*mpi));
}
