// Tests for the HPCC-class kernel suite: GEMM, PTRANS, FFT, RandomAccess,
// and the b_eff collectives sweep — optimized-vs-scalar parity (bit-exact
// where the algorithm permits, 1e-12 otherwise), the runtime SIMD
// dispatcher, FOM-regex extraction for every new ApplicationDefinition,
// warm-store re-runs, and an Extra-P fit smoke over a scaling matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/archspec/microarch.hpp"
#include "src/benchmarks/fft.hpp"
#include "src/benchmarks/gemm.hpp"
#include "src/benchmarks/ptrans.hpp"
#include "src/benchmarks/randomaccess.hpp"
#include "src/core/driver.hpp"
#include "src/ramble/application.hpp"
#include "src/store/store.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/system/beff.hpp"
#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace bm = benchpark::benchmarks;
namespace sys = benchpark::system;
namespace support = benchpark::support;

namespace {

std::vector<double> random_matrix(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> m(n * n);
  for (auto& v : m) v = dist(rng);
  return m;
}

}  // namespace

// --------------------------------------------------------- SIMD dispatch

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(support::simd_level_name(support::SimdLevel::scalar),
               "scalar");
  EXPECT_STREQ(support::simd_level_name(support::SimdLevel::avx2), "avx2");
}

TEST(SimdDispatch, CompiledLevelIsVectorOnX86) {
#if defined(__x86_64__)
  // x86-64 baseline guarantees SSE2, so the binary always has a vector
  // flavor to dispatch to.
  EXPECT_GE(static_cast<int>(support::compiled_simd_level()),
            static_cast<int>(support::SimdLevel::sse2));
#else
  SUCCEED();
#endif
}

TEST(SimdDispatch, ForceScalarDemotesDetection) {
  ::unsetenv("BENCHPARK_FORCE_SCALAR");
  EXPECT_EQ(support::detect_simd_level(), support::compiled_simd_level());
  ::setenv("BENCHPARK_FORCE_SCALAR", "1", /*overwrite=*/1);
  EXPECT_EQ(support::detect_simd_level(), support::SimdLevel::scalar);
  ::unsetenv("BENCHPARK_FORCE_SCALAR");
  EXPECT_EQ(support::detect_simd_level(), support::compiled_simd_level());
}

TEST(SimdDispatch, SelectKernelBindsByActiveLevel) {
  using Fn = int (*)();
  Fn vec = [] { return 1; };
  Fn scalar = [] { return 2; };
  Fn chosen = support::select_kernel(vec, scalar);
  EXPECT_EQ(chosen(), support::simd_active() ? 1 : 2);
}

TEST(SimdDispatch, ActiveLevelIsCachedAcrossCalls) {
  EXPECT_EQ(support::active_simd_level(), support::active_simd_level());
}

// ------------------------------------------------------------------ GEMM

TEST(Gemm, BlockedMatchesNaiveBitwise) {
  // Sizes straddling every blocking boundary: MR=4, NR=8, NC=128, KC=256.
  for (std::size_t n : {1u, 3u, 8u, 33u, 100u, 129u, 260u}) {
    auto a = random_matrix(n, 11);
    auto b = random_matrix(n, 22);
    std::vector<double> c_blocked(n * n), c_naive(n * n);
    bm::gemm_blocked(c_blocked.data(), a.data(), b.data(), n, 1);
    bm::gemm_naive(c_naive.data(), a.data(), b.data(), n);
    EXPECT_EQ(std::memcmp(c_blocked.data(), c_naive.data(),
                          n * n * sizeof(double)),
              0)
        << "n=" << n;
  }
}

TEST(Gemm, ThreadedMatchesSerialBitwise) {
  const std::size_t n = 130;
  auto a = random_matrix(n, 33);
  auto b = random_matrix(n, 44);
  std::vector<double> serial(n * n), threaded(n * n);
  bm::gemm_blocked(serial.data(), a.data(), b.data(), n, 1);
  bm::gemm_blocked(threaded.data(), a.data(), b.data(), n, 4);
  EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                        n * n * sizeof(double)),
            0);
}

TEST(Gemm, RunVerifiesViaFreivalds) {
  auto result = bm::run_gemm(96, 2);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.gflops, 0);
  EXPECT_GT(result.elapsed_seconds, 0);
}

TEST(Gemm, CostModel) {
  EXPECT_DOUBLE_EQ(bm::gemm_flops(100), 2e6);
  EXPECT_DOUBLE_EQ(bm::gemm_bytes(100), 3 * 100 * 100 * 8.0);
}

TEST(Gemm, OutputCarriesFomAndSuccessStrings) {
  auto out = bm::gemm_output(bm::run_gemm(64, 1));
  EXPECT_NE(out.find("GEMM GFLOP/s:"), std::string::npos);
  EXPECT_NE(out.find("Kernel elapsed:"), std::string::npos);
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
}

// ---------------------------------------------------------------- PTRANS

TEST(Ptrans, TiledMatchesNaiveBitwise) {
  // Straddle the 32-wide leaf tile and the recursion splits.
  for (std::size_t n : {1u, 5u, 32u, 33u, 64u, 100u, 130u}) {
    auto a = random_matrix(n, 55);
    std::vector<double> tiled(n * n), naive(n * n);
    bm::ptrans_tiled(tiled.data(), a.data(), n, 1);
    bm::ptrans_naive(naive.data(), a.data(), n);
    EXPECT_EQ(
        std::memcmp(tiled.data(), naive.data(), n * n * sizeof(double)), 0)
        << "n=" << n;
  }
}

TEST(Ptrans, ThreadedMatchesSerialBitwise) {
  const std::size_t n = 97;
  auto a = random_matrix(n, 66);
  std::vector<double> serial(n * n), threaded(n * n);
  bm::ptrans_tiled(serial.data(), a.data(), n, 1);
  bm::ptrans_tiled(threaded.data(), a.data(), n, 4);
  EXPECT_EQ(
      std::memcmp(serial.data(), threaded.data(), n * n * sizeof(double)),
      0);
}

TEST(Ptrans, EvenRepeatsRestoreInput) {
  auto result = bm::run_ptrans(128, 2, /*repeats=*/4);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.bandwidth_gbs, 0);
}

TEST(Ptrans, OutputCarriesFomAndSuccessStrings) {
  auto out = bm::ptrans_output(bm::run_ptrans(64, 1));
  EXPECT_NE(out.find("PTRANS GB/s:"), std::string::npos);
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
}

// ------------------------------------------------------------------- FFT

TEST(Fft, PlanRejectsNonPowersOfTwo) {
  EXPECT_THROW(bm::FftPlan(0), benchpark::Error);
  EXPECT_THROW(bm::FftPlan(1), benchpark::Error);
  EXPECT_THROW(bm::FftPlan(3), benchpark::Error);
  EXPECT_THROW(bm::FftPlan(96), benchpark::Error);
  EXPECT_NO_THROW(bm::FftPlan(1024));
}

TEST(Fft, VectorizedMatchesScalarWithin1e12) {
  const std::size_t n = 1024;
  bm::FftPlan plan(n);
  auto re0 = random_matrix(32, 77);  // 1024 doubles
  auto im0 = random_matrix(32, 88);
  std::vector<double> re_v(re0), im_v(im0), re_s(re0), im_s(im0);
  std::vector<double> sc_re(n), sc_im(n);
  bm::fft_transform(plan, re_v.data(), im_v.data(), sc_re.data(),
                    sc_im.data());
  bm::fft_transform_scalar(plan, re_s.data(), im_s.data(), sc_re.data(),
                           sc_im.data());
  double norm = 0;
  for (std::size_t i = 0; i < n; ++i) norm += re_s[i] * re_s[i] + im_s[i] * im_s[i];
  norm = std::sqrt(norm);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::fabs(re_v[i] - re_s[i]) / norm, 1e-12) << i;
    EXPECT_LE(std::fabs(im_v[i] - im_s[i]) / norm, 1e-12) << i;
  }
}

TEST(Fft, MatchesNaiveDftOnSmallTransform) {
  const std::size_t n = 16;
  bm::FftPlan plan(n);
  std::vector<double> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = std::cos(0.7 * static_cast<double>(i));
    im[i] = std::sin(0.3 * static_cast<double>(i));
  }
  // Naive O(n^2) DFT as the independent oracle.
  std::vector<double> dft_re(n), dft_im(n);
  for (std::size_t k = 0; k < n; ++k) {
    double sr = 0, si = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * j) /
                           static_cast<double>(n);
      sr += re[j] * std::cos(angle) - im[j] * std::sin(angle);
      si += re[j] * std::sin(angle) + im[j] * std::cos(angle);
    }
    dft_re[k] = sr;
    dft_im[k] = si;
  }
  std::vector<double> sc_re(n), sc_im(n);
  bm::fft_transform(plan, re.data(), im.data(), sc_re.data(), sc_im.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re[k], dft_re[k], 1e-10) << k;
    EXPECT_NEAR(im[k], dft_im[k], 1e-10) << k;
  }
}

TEST(Fft, RoundTripWithin1e12) {
  auto result = bm::run_fft(2048, 4, 2);
  EXPECT_TRUE(result.verified);
  EXPECT_LE(result.max_roundtrip_error, 1e-12);
  EXPECT_GT(result.gflops, 0);
}

TEST(Fft, OutputCarriesFomAndSuccessStrings) {
  auto out = bm::fft_output(bm::run_fft(512, 2, 1));
  EXPECT_NE(out.find("FFT GFLOP/s:"), std::string::npos);
  EXPECT_NE(out.find("Roundtrip max rel err:"), std::string::npos);
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
}

// ---------------------------------------------------------- RandomAccess

TEST(RandomAccess, ValueStreamIsCounterBased) {
  // splitmix64 of distinct counters must differ (bijection sanity).
  EXPECT_NE(bm::ra_value(0), bm::ra_value(1));
  EXPECT_NE(bm::ra_value(1), bm::ra_value(2));
  EXPECT_EQ(bm::ra_value(42), bm::ra_value(42));
}

TEST(RandomAccess, BatchedMatchesScalarExactly) {
  const std::size_t size = 1u << 12;
  const std::uint64_t updates = 4 * size;
  std::vector<std::uint64_t> opt(size), ref(size);
  std::iota(opt.begin(), opt.end(), 0);
  std::iota(ref.begin(), ref.end(), 0);
  bm::randomaccess_update(opt.data(), size, 0, updates, 1);
  bm::randomaccess_update_scalar(ref.data(), size, 0, updates);
  EXPECT_EQ(opt, ref);
}

TEST(RandomAccess, ThreadedMatchesScalarExactly) {
  // XOR commutativity: any partition yields the identical final table.
  const std::size_t size = 1u << 12;
  const std::uint64_t updates = 4 * size;
  std::vector<std::uint64_t> opt(size), ref(size);
  std::iota(opt.begin(), opt.end(), 0);
  std::iota(ref.begin(), ref.end(), 0);
  bm::randomaccess_update(opt.data(), size, 0, updates, 4);
  bm::randomaccess_update_scalar(ref.data(), size, 0, updates);
  EXPECT_EQ(opt, ref);
}

TEST(RandomAccess, InvolutionVerifies) {
  auto result = bm::run_randomaccess(12, 2);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.gups, 0);
  EXPECT_EQ(result.updates, 4u << 12);
}

TEST(RandomAccess, OutputCarriesFomAndSuccessStrings) {
  auto out = bm::randomaccess_output(bm::run_randomaccess(10, 1));
  EXPECT_NE(out.find("RandomAccess GUP/s:"), std::string::npos);
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
}

// ----------------------------------------------------------------- b_eff

TEST(Beff, AlphaBetaFitRecoversSyntheticLine) {
  // t(m) = 2us + m / (10 GB/s), exactly linear.
  std::vector<std::uint64_t> sizes{1, 1024, 1u << 20};
  std::vector<double> seconds;
  for (auto m : sizes) {
    seconds.push_back(2e-6 + static_cast<double>(m) / 10e9);
  }
  auto fit = sys::fit_alpha_beta(sizes, seconds);
  EXPECT_NEAR(fit.alpha_us, 2.0, 1e-6);
  EXPECT_NEAR(fit.bandwidth_gbs, 10.0, 1e-6);
  EXPECT_LE(fit.max_rel_residual, 1e-9);
}

TEST(Beff, FitRejectsDegenerateInput) {
  EXPECT_THROW((void)sys::fit_alpha_beta({1}, {1e-6}),
               benchpark::SystemError);
  EXPECT_THROW((void)sys::fit_alpha_beta({8, 8}, {1e-6, 2e-6}),
               benchpark::SystemError);
}

TEST(Beff, SweepCoversThirteenSizesAndFits) {
  const auto& cts2 = sys::SystemRegistry::instance().get("cts2");
  auto result = sys::run_beff(cts2, 32);
  EXPECT_EQ(result.samples.size(), 13u);
  EXPECT_GT(result.beff_mbs, 0);
  EXPECT_GT(result.latency_us, 0);
  EXPECT_GT(result.ring_fit.bandwidth_gbs, 0);
  EXPECT_GT(result.tree_fit.bandwidth_gbs, 0);
  // The fitted ring latency reflects the alpha term, not noise.
  EXPECT_GT(result.ring_fit.alpha_us, 0);
}

TEST(Beff, RingTimeGrowsWithRanksAndBytes) {
  const auto& cts2 = sys::SystemRegistry::instance().get("cts2");
  sys::PerfModel model(cts2);
  EXPECT_LT(model.ring_seconds(2, 1024), model.ring_seconds(16, 1024));
  EXPECT_LT(model.ring_seconds(8, 1024), model.ring_seconds(8, 1 << 20));
}

TEST(Beff, NumaSurchargeRaisesRingLatency) {
  // Same fabric, one socket vs two: the multi-socket topology pays the
  // cross-socket alpha surcharge.
  auto flat = sys::SystemRegistry::instance().get("cts2");
  flat.topology.sockets = 1;
  sys::PerfModel numa(sys::SystemRegistry::instance().get("cts2"));
  sys::PerfModel uma(flat);
  EXPECT_GT(numa.ring_seconds(8, 1), uma.ring_seconds(8, 1));
}

TEST(Beff, OutputCarriesFomAndSuccessStrings) {
  const auto& cts2 = sys::SystemRegistry::instance().get("cts2");
  auto out = sys::beff_output(sys::run_beff(cts2, 8));
  EXPECT_NE(out.find("b_eff MB/s:"), std::string::npos);
  EXPECT_NE(out.find("Effective latency us:"), std::string::npos);
  EXPECT_NE(out.find("Ring fit alpha_us:"), std::string::npos);
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
}

// ------------------------------------------- archspec base parameters

TEST(KernelBaseParams, TracksIsaVectorWidth) {
  auto srf = benchpark::archspec::kernel_base_parameters("sapphirerapids");
  EXPECT_EQ(srf.at("vector_doubles"), "8");
  EXPECT_EQ(srf.at("fma"), "1");
  EXPECT_EQ(srf.at("gemm_nr"), "16");

  auto bdw = benchpark::archspec::kernel_base_parameters("broadwell");
  EXPECT_EQ(bdw.at("vector_doubles"), "4");

  auto unknown = benchpark::archspec::kernel_base_parameters("riscv-far");
  EXPECT_EQ(unknown.at("vector_doubles"), "1");
  EXPECT_EQ(unknown.at("fma"), "0");
  EXPECT_EQ(unknown.at("gemm_nr"), "4");
}

// ------------------------------------------------ new system models

TEST(SystemRegistry, Cts2IsDualSocketSapphireRapids) {
  const auto& cts2 = sys::SystemRegistry::instance().get("cts2");
  EXPECT_EQ(cts2.cpu.microarch, "sapphirerapids");
  EXPECT_EQ(cts2.topology.sockets, 2);
  EXPECT_GT(cts2.topology.numa_penalty, 0);
  EXPECT_EQ(cts2.base_params.at("vector_doubles"), "8");
  EXPECT_FALSE(cts2.has_gpu());
}

TEST(SystemRegistry, Fpga1IsAcceleratorAttached) {
  const auto& fpga1 = sys::SystemRegistry::instance().get("fpga1");
  ASSERT_TRUE(fpga1.has_gpu());
  EXPECT_EQ(fpga1.gpu->runtime, "opencl");
  // HPCC_FPGA-style base-parameter config rides along.
  EXPECT_EQ(fpga1.base_params.at("accel_kernel_replications"), "4");
  EXPECT_FALSE(fpga1.base_params.at("vector_doubles").empty());
}

// ------------------------------------------------- FOM regex extraction

TEST(FomExtraction, AllKernelDefinitionsParseTheirOwnOutput) {
  const auto& registry = benchpark::ramble::ApplicationRegistry::instance();
  const auto& cts2 = sys::SystemRegistry::instance().get("cts2");

  struct Case {
    std::string app;
    std::string output;
    std::string fom;
  };
  const std::vector<Case> cases = {
      {"gemm", bm::gemm_output(bm::run_gemm(64, 1)), "gflops"},
      {"ptrans", bm::ptrans_output(bm::run_ptrans(64, 1)), "bw"},
      {"fft", bm::fft_output(bm::run_fft(256, 2, 1)), "gflops"},
      {"randomaccess", bm::randomaccess_output(bm::run_randomaccess(10, 1)),
       "gups"},
      {"beff", sys::beff_output(sys::run_beff(cts2, 8)), "beff"},
  };
  for (const auto& c : cases) {
    const auto& app = registry.get(c.app);
    auto foms = benchpark::analysis::extract_foms(app.foms(), c.output);
    bool found = false;
    for (const auto& fom : foms) {
      if (fom.name != c.fom) continue;
      found = true;
      EXPECT_TRUE(fom.numeric) << c.app;
      EXPECT_GT(fom.value, 0) << c.app;
    }
    EXPECT_TRUE(found) << c.app << ": FOM '" << c.fom << "' not extracted";
    EXPECT_TRUE(benchpark::analysis::evaluate_success(
        app.success_criteria_list(), c.output))
        << c.app;
  }
}

// ------------------------------------------- workflow + store + Extra-P

TEST(KernelWorkflows, WarmStoreRerunsNothing) {
  benchpark::core::Driver driver;
  support::TempDir tmp("kernels-store");
  benchpark::ramble::RunRequest request;
  request.store = benchpark::store::Store::open(tmp.path() / "store");

  const std::vector<std::pair<std::string, std::string>> suite = {
      {"gemm", "openmp"},     {"ptrans", "openmp"},
      {"fft", "openmp"},      {"randomaccess", "openmp"},
      {"beff", "mpi"},
  };
  for (const auto& [benchmark, variant] : suite) {
    benchpark::ramble::RunReport cold, warm;
    auto cold_report = driver.run_workflow(
        {benchmark, variant}, "cts2", tmp.path() / (benchmark + "-cold"),
        {}, nullptr, request, &cold);
    EXPECT_EQ(cold.store_hits, 0u) << benchmark;
    EXPECT_EQ(cold.store_misses, cold.experiments) << benchmark;
    EXPECT_EQ(cold_report.num_success(), cold_report.results.size())
        << benchmark;

    auto warm_report = driver.run_workflow(
        {benchmark, variant}, "cts2", tmp.path() / (benchmark + "-warm"),
        {}, nullptr, request, &warm);
    // Every experiment restores from the store: zero re-executions.
    EXPECT_EQ(warm.store_hits, warm.experiments) << benchmark;
    EXPECT_EQ(warm.store_misses, 0u) << benchmark;
    EXPECT_EQ(warm_report.num_success(), warm_report.results.size())
        << benchmark;
  }
}

TEST(KernelWorkflows, ExtraPFitSmokeOverScalingMatrix) {
  // A 4-point thread-scaling matrix for gemm, fed through run_analysis
  // with fit_scaling: the Extra-P model must fit the gflops series.
  benchpark::core::Driver driver;
  driver.add_experiment(
      {"gemm", "scaling"},
      benchpark::yaml::parse(
          "ramble:\n"
          "  applications:\n"
          "    gemm:\n"
          "      workloads:\n"
          "        square:\n"
          "          env_vars:\n"
          "            set:\n"
          "              OMP_NUM_THREADS: '{n_threads}'\n"
          "          variables:\n"
          "            n_ranks: '1'\n"
          "            processes_per_node: '1'\n"
          "          experiments:\n"
          "            gemm_scale_{n_threads}:\n"
          "              variables:\n"
          "                n: '256'\n"
          "                n_threads: ['1', '2', '4', '8']\n"
          "  spack:\n"
          "    packages:\n"
          "      gemm:\n"
          "        spack_spec: gemm@1.0 +openmp\n"
          "        compiler: default-compiler\n"
          "    environments:\n"
          "      gemm:\n"
          "        packages:\n"
          "        - gemm\n"));
  support::TempDir tmp("kernels-extrap");
  auto report =
      driver.run_workflow({"gemm", "scaling"}, "cts2", tmp.path() / "ws");
  ASSERT_EQ(report.results.size(), 4u);

  std::vector<benchpark::analysis::ExperimentRecord> records;
  for (const auto& result : report.results) {
    benchpark::analysis::ExperimentRecord record;
    record.benchmark = "gemm";
    record.system = "cts2";
    record.experiment = result.name;
    record.variables = result.variables;
    record.foms = result.foms;
    record.success = result.success;
    record.output = result.output;
    records.push_back(std::move(record));
  }
  benchpark::analysis::AnalysisRequest request;
  request.records = &records;
  request.detect = false;
  request.bisect = false;
  request.fit_scaling = true;
  request.scaling_variable = "n_threads";
  auto analysis = benchpark::analysis::run_analysis(request);

  bool fitted = false;
  for (const auto& fit : analysis.fits) {
    if (fit.fom != "gflops") continue;
    fitted = true;
    EXPECT_TRUE(fit.ok) << fit.error;
  }
  EXPECT_TRUE(fitted) << "no gflops scaling fit produced";
  EXPECT_GE(analysis.stats.fits, 1u);
}
