// Cross-module integration tests: the paper's full loops, asserted.
//   * Figure 6 loop: PR -> Hubcast -> pipeline -> real workflows ->
//     metrics DB -> statuses back on the PR
//   * continuous tracking: a nightly series catches an injected fabric
//     regression (Section 1's "tracking system performance over time")
//   * functional reproducibility across sites via lockfiles
//   * campaign -> dashboard composition
#include <gtest/gtest.h>

#include "src/analysis/dashboard.hpp"
#include "src/ci/git.hpp"
#include "src/ci/hubcast.hpp"
#include "src/ci/pipeline.hpp"
#include "src/core/campaign.hpp"
#include "src/core/driver.hpp"
#include "src/core/usage.hpp"
#include "src/env/environment.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/string_util.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/parser.hpp"

using namespace benchpark;

TEST(Integration, Figure6LoopEndToEnd) {
  // Hosting + canonical repo on both sides.
  ci::GitHost github("github");
  ci::GitHost gitlab("gitlab");
  github.create_repo("llnl", "benchpark")
      .commit("main", "olga", "init", {{"experiments/saxpy", "v1"}});
  gitlab.create_repo("llnl", "benchpark")
      .commit("main", "hubcast", "init", {{"m", "1"}});

  ci::SecurityPolicy policy;
  policy.admins = {"site-admin"};
  ci::Hubcast hubcast(&github, &gitlab, "llnl/benchpark", policy);

  // A fork PR from an external contributor.
  github.fork("llnl/benchpark", "student");
  github.repo("student/benchpark")
      .commit("tune", "student", "bigger problems",
              {{"experiments/saxpy", "v2"}});
  auto pr = github.open_pr("tune", "student", "student/benchpark", "tune",
                           "llnl/benchpark");

  // Blocked until a site admin approves.
  ASSERT_FALSE(hubcast.try_mirror_pr(pr).has_value());
  github.approve_pr(pr, "site-admin");
  auto branch = hubcast.try_mirror_pr(pr);
  ASSERT_TRUE(branch.has_value());

  // Pipeline with a runner that executes the real Benchpark workflow.
  ci::SiteAccounts accounts;
  accounts.add("site-admin", 1000);
  ci::PipelineEngine engine;
  engine.register_runner(
      {"llnl-cts1-01", {"cts1"},
       std::make_shared<ci::Jacamar>("llnl", accounts)});

  core::Driver driver;
  support::TempDir tmp("integration-ci");
  analysis::MetricsDb metrics;
  engine.set_action("bench", [&](const ci::JobContext& ctx) {
    auto report = driver.run_workflow({"saxpy", "openmp"}, "cts1",
                                      tmp.path() / "ws");
    for (const auto& result : report.results) {
      for (const auto& fom : result.foms) {
        if (!fom.numeric) continue;
        analysis::ResultRow row;
        row.benchmark = "saxpy";
        row.system = "cts1";
        row.experiment = result.name;
        row.fom_name = fom.name;
        row.value = fom.value;
        row.success = result.success;
        metrics.insert(row);
      }
    }
    return ci::JobOutcome{report.num_success() == report.results.size(),
                          "ran as " + ctx.identity.login};
  });
  auto pipeline = ci::PipelineDef::from_yaml(yaml::parse(
      "stages: [bench]\nbench:\n  stage: bench\n  tags: [cts1]\n"));
  auto result = engine.run(pipeline, "sha", "student", "site-admin");

  ASSERT_TRUE(result.success);
  // Jacamar downscoped the external author to the approver.
  EXPECT_EQ(result.job("bench")->ran_as, "site-admin");
  // Metrics landed (8 experiments x >= 2 numeric FOMs).
  EXPECT_GE(metrics.size(), 16u);

  // Status streamed back to the GitHub PR and the PR can merge.
  hubcast.report_status(pr, {"gitlab-ci/llnl/bench", ci::CheckState::success,
                             result.job("bench")->log});
  EXPECT_EQ(github.pr(pr).check("gitlab-ci/llnl/bench")->state,
            ci::CheckState::success);
  github.merge_pr(pr);
  EXPECT_EQ(github.repo("llnl/benchpark").file_at("main",
                                                  "experiments/saxpy"),
            "v2");
}

TEST(Integration, NightlySeriesCatchesFabricRegression) {
  analysis::MetricsDb db;
  auto cts1 = system::make_cts1();
  bool alerted_on_injection_day = false;

  for (int day = 1; day <= 18; ++day) {
    if (day == 12) cts1.interconnect.latency_us *= 2.0;  // the fault
    runtime::RunParams params;
    params.app = "osu-bcast";
    params.n = 1 << 16;
    params.n_nodes = 8;
    params.n_ranks = 256;
    params.repetition = static_cast<std::uint64_t>(day);
    auto outcome = runtime::run_simulated(cts1, params);

    analysis::ResultRow row;
    row.benchmark = "osu-bcast";
    row.system = "cts1";
    row.experiment = "nightly";
    row.fom_name = "elapsed";
    row.value = outcome.elapsed_seconds;
    row.success = outcome.success;
    db.insert(row);

    analysis::Dashboard dashboard(&db);
    auto regressions = dashboard.detect_regressions("elapsed", 3.0, true);
    if (day == 12) alerted_on_injection_day = !regressions.empty();
    if (day < 12) {
      EXPECT_TRUE(regressions.empty()) << "false positive on day " << day;
    }
  }
  EXPECT_TRUE(alerted_on_injection_day);
}

TEST(Integration, LockfileReproducesAcrossSites) {
  // Site A concretizes and locks; site B installs from the lockfile with
  // no concretizer at all — the "functional reproducibility" the paper
  // defines. Both sites agree on every DAG hash.
  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  concretizer::Concretizer cz(pkg::default_repo_stack(), cts1.config);
  env::Environment site_a;
  site_a.add("amg2023+caliper");
  site_a.add("saxpy+openmp");
  site_a.concretize(cz);
  auto lock_text = yaml::emit(site_a.lockfile());

  auto site_b = env::Environment::from_lockfile(yaml::parse(lock_text));
  ASSERT_EQ(site_b.concrete_specs().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(site_b.concrete_specs()[i].dag_hash(),
              site_a.concrete_specs()[i].dag_hash());
  }

  install::InstallTree site_b_tree("/site-b/install");
  install::Installer installer(pkg::default_repo_stack(), &site_b_tree,
                               nullptr);
  auto report = site_b.install_all(installer);
  EXPECT_GT(report.from_source, 0u);
  EXPECT_TRUE(site_b_tree.installed(site_b.concrete_specs()[0]));
}

TEST(Integration, CampaignFeedsDashboard) {
  core::Driver driver;
  support::TempDir tmp("integration-dash");
  core::Campaign campaign(&driver, {"saxpy", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.add_system("ats2");
  campaign.run();

  analysis::Dashboard dashboard(&campaign.metrics());
  auto grid = dashboard.grid("gflops").render();
  EXPECT_NE(grid.find("saxpy"), std::string::npos);
  EXPECT_NE(grid.find("cts1"), std::string::npos);
  EXPECT_NE(grid.find("ats2"), std::string::npos);
  // One clean pass: no regressions flaggable from a single campaign.
  EXPECT_TRUE(dashboard.detect_regressions("gflops").empty());
}

TEST(Integration, UsageMetricsAccumulateThroughDriver) {
  auto& usage = core::UsageMetrics::instance();
  usage.reset();
  core::Driver driver;
  support::TempDir tmp("integration-usage");
  (void)driver.run_workflow({"saxpy", "openmp"}, "cts1", tmp.path() / "a");
  (void)driver.run_workflow({"stream", "openmp"}, "cts1", tmp.path() / "b");
  (void)driver.run_workflow({"saxpy", "openmp"}, "ats2", tmp.path() / "c");

  auto ranking = usage.ranking();
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].benchmark, "saxpy");  // accessed most heavily
  EXPECT_EQ(usage.get("saxpy").setups, 2u);
  EXPECT_EQ(usage.get("saxpy").runs, 16u);  // 2 workflows x 8 experiments
  EXPECT_EQ(usage.get("stream").runs, 3u);
  usage.reset();
}

TEST(Integration, WorkflowOutputsSurviveOnDisk) {
  // The workspace is a self-contained directory (Section 3.2.1): a fresh
  // process could re-analyze from the files alone.
  core::Driver driver;
  support::TempDir tmp("integration-disk");
  ramble::Workspace ws =
      driver.setup({"saxpy", "openmp"}, "cts1", tmp.path() / "ws");
  ws.setup();
  ws.run();

  // Every experiment directory holds the script and the output; configs
  // hold the four per-system files plus ramble.yaml.
  for (const auto& exp : ws.prepared()) {
    EXPECT_TRUE(std::filesystem::exists(exp.run_dir / "execute_experiment"));
    EXPECT_TRUE(
        std::filesystem::exists(exp.run_dir / (exp.name + ".out")));
  }
  auto tree = support::render_tree(ws.root());
  for (const char* artifact :
       {"ramble.yaml", "variables.yaml", "packages.yaml", "compilers.yaml",
        "execute_experiment.tpl", "saxpy.lock.yaml"}) {
    EXPECT_NE(tree.find(artifact), std::string::npos) << artifact;
  }
}
