// Cross-module integration tests: the paper's full loops, asserted.
//   * Figure 6 loop: PR -> Hubcast -> pipeline -> real workflows ->
//     metrics DB -> statuses back on the PR
//   * continuous tracking: a nightly series catches an injected fabric
//     regression (Section 1's "tracking system performance over time")
//   * functional reproducibility across sites via lockfiles
//   * campaign -> dashboard composition
#include <gtest/gtest.h>

#include "src/analysis/analysis.hpp"
#include "src/ci/git.hpp"
#include "src/ci/hubcast.hpp"
#include "src/ci/pipeline.hpp"
#include "src/core/campaign.hpp"
#include "src/core/driver.hpp"
#include "src/core/usage.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/obs/trace.hpp"
#include "src/obs/trace_diff.hpp"
#include "src/pkg/repo.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/string_util.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/parser.hpp"

using namespace benchpark;
namespace cz = benchpark::concretizer;

TEST(Integration, Figure6LoopEndToEnd) {
  // Hosting + canonical repo on both sides.
  ci::GitHost github("github");
  ci::GitHost gitlab("gitlab");
  github.create_repo("llnl", "benchpark")
      .commit("main", "olga", "init", {{"experiments/saxpy", "v1"}});
  gitlab.create_repo("llnl", "benchpark")
      .commit("main", "hubcast", "init", {{"m", "1"}});

  ci::SecurityPolicy policy;
  policy.admins = {"site-admin"};
  ci::Hubcast hubcast(&github, &gitlab, "llnl/benchpark", policy);

  // A fork PR from an external contributor.
  github.fork("llnl/benchpark", "student");
  github.repo("student/benchpark")
      .commit("tune", "student", "bigger problems",
              {{"experiments/saxpy", "v2"}});
  auto pr = github.open_pr("tune", "student", "student/benchpark", "tune",
                           "llnl/benchpark");

  // Blocked until a site admin approves.
  ASSERT_FALSE(hubcast.try_mirror_pr(pr).has_value());
  github.approve_pr(pr, "site-admin");
  auto branch = hubcast.try_mirror_pr(pr);
  ASSERT_TRUE(branch.has_value());

  // Pipeline with a runner that executes the real Benchpark workflow.
  ci::SiteAccounts accounts;
  accounts.add("site-admin", 1000);
  ci::PipelineEngine engine;
  engine.register_runner(
      {"llnl-cts1-01", {"cts1"},
       std::make_shared<ci::Jacamar>("llnl", accounts)});

  core::Driver driver;
  support::TempDir tmp("integration-ci");
  analysis::MetricsDb metrics;
  engine.set_action("bench", [&](const ci::JobContext& ctx) {
    auto report = driver.run_workflow({"saxpy", "openmp"}, "cts1",
                                      tmp.path() / "ws");
    for (const auto& result : report.results) {
      for (const auto& fom : result.foms) {
        if (!fom.numeric) continue;
        analysis::ResultRow row;
        row.benchmark = "saxpy";
        row.system = "cts1";
        row.experiment = result.name;
        row.fom_name = fom.name;
        row.value = fom.value;
        row.success = result.success;
        metrics.insert(row);
      }
    }
    return ci::JobOutcome{report.num_success() == report.results.size(),
                          "ran as " + ctx.identity.login};
  });
  auto pipeline = ci::PipelineDef::from_yaml(yaml::parse(
      "stages: [bench]\nbench:\n  stage: bench\n  tags: [cts1]\n"));
  auto result = engine.run(pipeline, "sha", "student", "site-admin");

  ASSERT_TRUE(result.success);
  // Jacamar downscoped the external author to the approver.
  EXPECT_EQ(result.job("bench")->ran_as, "site-admin");
  // Metrics landed (8 experiments x >= 2 numeric FOMs).
  EXPECT_GE(metrics.size(), 16u);

  // Status streamed back to the GitHub PR and the PR can merge.
  hubcast.report_status(pr, {"gitlab-ci/llnl/bench", ci::CheckState::success,
                             result.job("bench")->log});
  EXPECT_EQ(github.pr(pr).check("gitlab-ci/llnl/bench")->state,
            ci::CheckState::success);
  github.merge_pr(pr);
  EXPECT_EQ(github.repo("llnl/benchpark").file_at("main",
                                                  "experiments/saxpy"),
            "v2");
}

TEST(Integration, NightlySeriesCatchesFabricRegression) {
  analysis::MetricsDb db;
  auto cts1 = system::make_cts1();
  bool alerted_on_injection_day = false;

  for (int day = 1; day <= 18; ++day) {
    if (day == 12) cts1.interconnect.latency_us *= 2.0;  // the fault
    runtime::RunParams params;
    params.app = "osu-bcast";
    params.n = 1 << 16;
    params.n_nodes = 8;
    params.n_ranks = 256;
    params.repetition = static_cast<std::uint64_t>(day);
    auto outcome = runtime::run_simulated(cts1, params);

    analysis::ResultRow row;
    row.benchmark = "osu-bcast";
    row.system = "cts1";
    row.experiment = "nightly";
    row.fom_name = "elapsed";
    row.value = outcome.elapsed_seconds;
    row.success = outcome.success;
    db.insert(row);

    analysis::AnalysisRequest scan;
    scan.metrics = &db;
    scan.foms = {"elapsed"};
    scan.detector.warmup = 4;
    scan.detector.threshold = 3.0;
    auto analyzed = analysis::run_analysis(scan);
    bool regressed = false;
    for (const auto& series : analyzed.series) {
      if (series.has_latest &&
          series.latest.verdict == analysis::Verdict::regression) {
        regressed = true;
      }
    }
    if (day == 12) alerted_on_injection_day = regressed;
    if (day < 12) {
      EXPECT_FALSE(regressed) << "false positive on day " << day;
    }
  }
  EXPECT_TRUE(alerted_on_injection_day);
}

TEST(Integration, LockfileReproducesAcrossSites) {
  // Site A concretizes and locks; site B installs from the lockfile with
  // no concretizer at all — the "functional reproducibility" the paper
  // defines. Both sites agree on every DAG hash.
  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  concretizer::Concretizer cz(pkg::default_repo_stack(), cts1.config);
  env::Environment site_a;
  site_a.add("amg2023+caliper");
  site_a.add("saxpy+openmp");
  site_a.concretize(cz);
  auto lock_text = yaml::emit(site_a.lockfile());

  auto site_b = env::Environment::from_lockfile(yaml::parse(lock_text));
  ASSERT_EQ(site_b.concrete_specs().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(site_b.concrete_specs()[i].dag_hash(),
              site_a.concrete_specs()[i].dag_hash());
  }

  install::InstallTree site_b_tree("/site-b/install");
  install::Installer installer(pkg::default_repo_stack(), &site_b_tree,
                               nullptr);
  auto report = site_b.install_all(installer);
  EXPECT_GT(report.from_source, 0u);
  EXPECT_TRUE(site_b_tree.installed(site_b.concrete_specs()[0]));
}

TEST(Integration, CampaignFeedsDashboard) {
  core::Driver driver;
  support::TempDir tmp("integration-dash");
  core::Campaign campaign(&driver, {"saxpy", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.add_system("ats2");
  campaign.run();

  analysis::AnalysisRequest req;
  req.metrics = &campaign.metrics();
  req.foms = {"gflops"};
  req.detector.higher_is_worse = false;  // gflops is a rate
  req.render_text = true;
  auto analyzed = analysis::run_analysis(req);
  EXPECT_NE(analyzed.text.find("saxpy"), std::string::npos);
  EXPECT_NE(analyzed.text.find("cts1"), std::string::npos);
  EXPECT_NE(analyzed.text.find("ats2"), std::string::npos);
  // One clean pass: no regressions flaggable from a single campaign.
  EXPECT_EQ(analyzed.regressed_series(), 0u);
}

TEST(Integration, UsageMetricsAccumulateThroughDriver) {
  auto& usage = core::UsageMetrics::instance();
  usage.reset();
  core::Driver driver;
  support::TempDir tmp("integration-usage");
  (void)driver.run_workflow({"saxpy", "openmp"}, "cts1", tmp.path() / "a");
  (void)driver.run_workflow({"stream", "openmp"}, "cts1", tmp.path() / "b");
  (void)driver.run_workflow({"saxpy", "openmp"}, "ats2", tmp.path() / "c");

  auto ranking = usage.ranking();
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].benchmark, "saxpy");  // accessed most heavily
  EXPECT_EQ(usage.get("saxpy").setups, 2u);
  EXPECT_EQ(usage.get("saxpy").runs, 16u);  // 2 workflows x 8 experiments
  EXPECT_EQ(usage.get("stream").runs, 3u);
  usage.reset();
}

TEST(Integration, WorkflowOutputsSurviveOnDisk) {
  // The workspace is a self-contained directory (Section 3.2.1): a fresh
  // process could re-analyze from the files alone.
  core::Driver driver;
  support::TempDir tmp("integration-disk");
  ramble::Workspace ws =
      driver.setup({"saxpy", "openmp"}, "cts1", tmp.path() / "ws");
  ws.setup();
  ws.run();

  // Every experiment directory holds the script and the output; configs
  // hold the four per-system files plus ramble.yaml.
  for (const auto& exp : ws.prepared()) {
    EXPECT_TRUE(std::filesystem::exists(exp.run_dir / "execute_experiment"));
    EXPECT_TRUE(
        std::filesystem::exists(exp.run_dir / (exp.name + ".out")));
  }
  auto tree = support::render_tree(ws.root());
  for (const char* artifact :
       {"ramble.yaml", "variables.yaml", "packages.yaml", "compilers.yaml",
        "execute_experiment.tpl", "saxpy.lock.yaml"}) {
    EXPECT_NE(tree.find(artifact), std::string::npos) << artifact;
  }
}

// ------------------------------------------------- traced span trees

namespace {

/// Enable the global trace collector for one test, restoring the
/// disabled empty state afterwards.
class ScopedTrace {
public:
  ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.reset();
    c.set_enabled(true);
  }
  ~ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.set_enabled(false);
    c.reset();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

/// Structural invariants every collected span tree must satisfy:
/// resolvable parents, temporal containment on the parent's thread, and
/// root wall-clock >= the summed self-times of its same-thread subtree
/// (modeled spans excluded — they represent simulated time).
void assert_span_tree_invariants(const obs::Trace& trace,
                                 const obs::TraceEvent& root) {
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : trace.events) {
    if (e.phase == obs::TraceEvent::Phase::span && e.id != 0) {
      by_id[e.id] = &e;
    }
  }
  // Every parent resolves (or is a thread root).
  for (const auto& [id, e] : by_id) {
    if (e->parent != 0) {
      EXPECT_TRUE(by_id.count(e->parent))
          << e->name << " has dangling parent " << e->parent;
    }
  }
  // Membership in root's subtree.
  auto in_subtree = [&](const obs::TraceEvent* e) {
    while (e != nullptr) {
      if (e->id == root.id) return true;
      auto it = by_id.find(e->parent);
      e = it == by_id.end() ? nullptr : it->second;
    }
    return false;
  };
  constexpr double kEpsUs = 500.0;  // clock-read ordering slack
  double same_tid_self_us = 0.0;
  for (const auto& [id, e] : by_id) {
    if (e->modeled || !in_subtree(e)) continue;
    // Containment: a child on the parent's own thread runs strictly
    // inside it (cross-thread children only overlap approximately).
    auto parent_it = by_id.find(e->parent);
    if (parent_it != by_id.end() && parent_it->second->tid == e->tid &&
        !parent_it->second->modeled) {
      EXPECT_GE(e->ts_us, parent_it->second->ts_us - kEpsUs) << e->name;
      EXPECT_LE(e->end_us(), parent_it->second->end_us() + kEpsUs)
          << e->name;
    }
    if (e->tid != root.tid) continue;
    // Self time on the root's thread: duration minus same-tid children.
    double child_us = 0.0;
    for (const auto& [cid, c] : by_id) {
      if (c->parent == e->id && c->tid == e->tid && !c->modeled) {
        child_us += c->dur_us;
      }
    }
    same_tid_self_us += std::max(0.0, e->dur_us - child_us) -
                        (e->id == root.id ? 0.0 : 0.0);
  }
  EXPECT_GE(root.dur_us + kEpsUs, same_tid_self_us)
      << "root '" << root.name << "' shorter than its own thread's work";
}

}  // namespace

TEST(Integration, TracedWorkflowMatrixSpanTreeInvariants) {
  struct Case {
    const char* benchmark;
    const char* variant;
    const char* system;
  };
  for (const auto& c : {Case{"saxpy", "openmp", "cts1"},
                        Case{"amg2023", "openmp", "cts1"},
                        Case{"stream", "openmp", "ats4"},
                        Case{"osu-bcast", "mpi", "ats2"}}) {
    SCOPED_TRACE(std::string(c.benchmark) + "/" + c.variant + " on " +
                 c.system);
    ScopedTrace guard;
    core::Driver driver;
    support::TempDir tmp("traced-matrix");
    auto report =
        driver.run_workflow({c.benchmark, c.variant}, c.system,
                            tmp.path() / "ws");
    ASSERT_GT(report.results.size(), 0u);

    auto trace = obs::TraceCollector::global().snapshot();
    const auto* root = trace.find_span("workflow");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent, 0u);
    EXPECT_EQ(trace.count_named("workflow"), 1u);
    // The driver's stages all nest under the workflow root.
    for (const char* stage :
         {"workflow.setup", "workflow.workspace_setup", "workflow.run",
          "workflow.analyze"}) {
      const auto* span = trace.find_span(stage);
      ASSERT_NE(span, nullptr) << stage;
      EXPECT_EQ(span->parent, root->id) << stage;
    }
    // Install activity nests somewhere under the workflow.
    EXPECT_GE(trace.count_named("install"), 1u);
    assert_span_tree_invariants(trace, *root);
    // Adiak-style run metadata rode along.
    EXPECT_EQ(trace.metadata.at("benchmark"), c.benchmark);
    EXPECT_EQ(trace.metadata.at("system"), c.system);
  }
}

TEST(Integration, ChaosInstallTraceExportedDiffedAndReloaded) {
  // The acceptance loop: a chaos install (BENCHPARK_FAULT_PLAN grammar)
  // run under tracing exports Chrome-trace JSON whose retry spans equal
  // the installer report's attempt counts, and a TraceDiff against the
  // clean run isolates the injected latency as modeled time.
  support::ScopedFaultPlan fault_guard;
  auto run_install = [](const char* plan_spec, double* retry_wait,
                        std::size_t* attempts) {
    ScopedTrace trace_guard;
    support::FaultPlan::global() = support::FaultPlan::parse(plan_spec);
    env::Environment e;
    e.add("amg2023+caliper");
    cz::Config config;
    config.add_compiler({"gcc", spec::Version("12.1.1"), "", ""});
    config.set_default_target("broadwell");
    config.package("mpi").preferred_providers = {"mvapich2"};
    cz::Concretizer concretizer(pkg::default_repo_stack(), config);
    e.concretize(concretizer);
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, nullptr);
    auto report = e.install_all(installer);
    *retry_wait = report.retry_wait_seconds;
    *attempts = report.total_attempts;
    return obs::TraceCollector::global().snapshot();
  };

  double clean_wait = 0, chaos_wait = 0;
  std::size_t clean_attempts = 0, chaos_attempts = 0;
  auto clean = run_install("seed=42", &clean_wait, &clean_attempts);
  auto chaos = run_install(
      "seed=42;install.build_step:nth=1,latency=0.75,kind=transient",
      &chaos_wait, &chaos_attempts);

  EXPECT_EQ(clean.count_named("attempt"), clean_attempts);
  EXPECT_EQ(chaos.count_named("attempt"), chaos_attempts);
  ASSERT_GT(chaos_attempts, clean_attempts);
  EXPECT_GT(chaos_wait, clean_wait);

  // Export chaos to disk as Chrome trace JSON and reload it — the file a
  // developer would drop into chrome://tracing or ui.perfetto.dev.
  support::TempDir tmp("chaos-trace");
  auto json_path = tmp.path() / "chaos.trace.json";
  support::write_file(json_path, chaos.to_chrome_json());
  auto reloaded = obs::Trace::from_chrome_json(
      std::string_view{support::read_file(json_path)});
  EXPECT_EQ(reloaded.count_named("attempt"), chaos_attempts);
  EXPECT_EQ(reloaded.events.size(), chaos.events.size());

  // The diff pins the damage on the attempt spans as modeled time.
  obs::TraceDiff diff(clean, reloaded);
  double modeled_delta = 0.0;
  for (const auto& row : diff.rows()) {
    if (row.path.size() >= 7 &&
        row.path.compare(row.path.size() - 7, 7, "attempt") == 0) {
      modeled_delta += row.modeled_delta_us();
    }
  }
  // At least the injected per-build latency (0.75 s each) shows up.
  EXPECT_GT(modeled_delta / 1e6, 0.5);
  auto regressions = diff.regressions(1.0);
  ASSERT_FALSE(regressions.empty());
}
