// Batch scheduler tests: script parsing (Figure 13's rendered output),
// FIFO and EASY-backfill policies, accounting, timeouts.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/sched/scheduler.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"

namespace sched = benchpark::sched;
namespace sys = benchpark::system;
using sched::BatchJob;
using sched::BatchScheduler;
using sched::JobState;
using sched::Policy;

namespace {

BatchJob quick_job(const std::string& name, int nodes, double runtime,
                   double limit = 3600) {
  BatchJob job;
  job.name = name;
  job.user = "olga";
  job.nodes = nodes;
  job.ranks = nodes * 8;
  job.time_limit_seconds = limit;
  job.work = [runtime] {
    return sched::JobResult{runtime, true, "Kernel done\n"};
  };
  return job;
}

}  // namespace

TEST(ScriptParse, SlurmDirectives) {
  std::string script =
      "#!/bin/bash\n"
      "#SBATCH -N 2\n"
      "#SBATCH -n 16\n"
      "#SBATCH -t 120:00\n"
      "cd /run/dir\n"
      "srun -N 2 -n 16 saxpy -n 1024\n";
  auto req = sched::parse_batch_script(script, sys::SchedulerKind::slurm);
  EXPECT_EQ(req.nodes, 2);
  EXPECT_EQ(req.ranks, 16);
  ASSERT_TRUE(req.time_limit_seconds.has_value());
  EXPECT_DOUBLE_EQ(*req.time_limit_seconds, 7200);
}

TEST(ScriptParse, SlurmLongFormAndHms) {
  std::string script = "#SBATCH --nodes 4\n#SBATCH --time=2:30:00\n";
  auto req = sched::parse_batch_script(script, sys::SchedulerKind::slurm);
  EXPECT_EQ(req.nodes, 4);
  EXPECT_DOUBLE_EQ(*req.time_limit_seconds, 9000);
}

TEST(ScriptParse, LsfDirectives) {
  std::string script = "#BSUB -nnodes 8\n#BSUB -n 32\n#BSUB -W 30\n";
  auto req = sched::parse_batch_script(script, sys::SchedulerKind::lsf);
  EXPECT_EQ(req.nodes, 8);
  EXPECT_EQ(req.ranks, 32);
  EXPECT_DOUBLE_EQ(*req.time_limit_seconds, 1800);
}

TEST(ScriptParse, FluxDirectives) {
  std::string script = "#flux: -N 2\n#flux: -n 8\n#flux: -t 45m\n";
  auto req = sched::parse_batch_script(script, sys::SchedulerKind::flux);
  EXPECT_EQ(req.nodes, 2);
  EXPECT_DOUBLE_EQ(*req.time_limit_seconds, 2700);
}

TEST(ScriptParse, IgnoresForeignDirectives) {
  std::string script = "#SBATCH -N 2\n#BSUB -nnodes 99\n";
  auto req = sched::parse_batch_script(script, sys::SchedulerKind::slurm);
  EXPECT_EQ(req.nodes, 2);
}

TEST(ScriptParse, MalformedValueThrows) {
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N lots\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
}

TEST(Scheduler, SingleJobRuns) {
  BatchScheduler s(16);
  auto id = s.submit(quick_job("saxpy", 2, 100));
  s.run_until_idle();
  const auto& r = s.record(id);
  EXPECT_EQ(r.state, JobState::completed);
  EXPECT_DOUBLE_EQ(r.start_time, 0);
  EXPECT_DOUBLE_EQ(r.end_time, 100);
  EXPECT_EQ(r.output, "Kernel done\n");
}

TEST(Scheduler, RejectsImpossibleJobs) {
  BatchScheduler s(4);
  EXPECT_THROW(s.submit(quick_job("too-big", 8, 10)),
               benchpark::SchedulerError);
  EXPECT_THROW(s.submit(quick_job("no-nodes", 0, 10)),
               benchpark::SchedulerError);
}

TEST(Scheduler, ParallelJobsShareNodes) {
  BatchScheduler s(4);
  auto a = s.submit(quick_job("a", 2, 100));
  auto b = s.submit(quick_job("b", 2, 50));
  s.run_until_idle();
  // Both fit: both start at t=0.
  EXPECT_DOUBLE_EQ(s.record(a).start_time, 0);
  EXPECT_DOUBLE_EQ(s.record(b).start_time, 0);
  EXPECT_DOUBLE_EQ(s.makespan(), 100);
}

TEST(Scheduler, FifoQueuesWhenFull) {
  BatchScheduler s(4, Policy::fifo);
  auto a = s.submit(quick_job("a", 4, 100));
  auto b = s.submit(quick_job("b", 2, 10));
  s.run_until_idle();
  EXPECT_DOUBLE_EQ(s.record(b).start_time, 100);
  EXPECT_DOUBLE_EQ(s.record(b).wait_time(), 100);
  EXPECT_DOUBLE_EQ(s.record(a).wait_time(), 0);
}

TEST(Scheduler, FifoHeadOfLineBlocking) {
  // FIFO: a small job behind a big queued job waits even if it would fit.
  BatchScheduler s(4, Policy::fifo);
  (void)s.submit(quick_job("running", 3, 100, 200));
  (void)s.submit(quick_job("head-needs-4", 4, 50, 100));
  auto little = s.submit(quick_job("little", 1, 10, 20));
  s.run_until_idle();
  EXPECT_GE(s.record(little).start_time, 100.0);
}

TEST(Scheduler, BackfillLetsSmallJobsThrough) {
  // Same workload with EASY backfill: the little job fits in the idle
  // node and finishes before the head job could start -> starts at 0.
  BatchScheduler s(4, Policy::backfill);
  (void)s.submit(quick_job("running", 3, 100, 200));
  auto head = s.submit(quick_job("head-needs-4", 4, 50, 100));
  auto little = s.submit(quick_job("little", 1, 10, 20));
  s.run_until_idle();
  EXPECT_DOUBLE_EQ(s.record(little).start_time, 0);
  // And the head job was not delayed by the backfill.
  EXPECT_DOUBLE_EQ(s.record(head).start_time, 100);
}

TEST(Scheduler, BackfillRefusesDelayingHead) {
  BatchScheduler s(4, Policy::backfill);
  (void)s.submit(quick_job("running", 3, 100, 200));
  (void)s.submit(quick_job("head-needs-4", 4, 50, 100));
  // This one's walltime limit (150) overruns the head's earliest start
  // (t=100), so backfill must refuse it.
  auto blocked = s.submit(quick_job("blocked", 1, 10, 150));
  s.run_until_idle();
  EXPECT_GE(s.record(blocked).start_time, 100.0);
}

TEST(Scheduler, BackfillImprovesMakespan) {
  // wide-1 leaves 2 idle nodes for 60s; the 2 small jobs fit into that
  // hole under backfill (one after the other, each within its 30s limit),
  // but under FIFO they queue behind wide-2 and trail the schedule.
  auto workload = [](Policy policy) {
    BatchScheduler s(8, policy);
    (void)s.submit(quick_job("wide-1", 6, 60, 100));
    (void)s.submit(quick_job("wide-2", 8, 60, 100));
    (void)s.submit(quick_job("small-1", 2, 30, 30));
    (void)s.submit(quick_job("small-2", 2, 30, 30));
    s.run_until_idle();
    return s.makespan();
  };
  double fifo = workload(Policy::fifo);
  double backfill = workload(Policy::backfill);
  EXPECT_DOUBLE_EQ(fifo, 150);      // smalls run after wide-2
  EXPECT_DOUBLE_EQ(backfill, 120);  // smalls hide inside wide-1's hole
  EXPECT_LT(backfill, fifo);
}

TEST(Scheduler, TimeoutCancelsJob) {
  BatchScheduler s(4);
  auto id = s.submit(quick_job("overrun", 1, 5000, /*limit=*/60));
  s.run_until_idle();
  const auto& r = s.record(id);
  EXPECT_EQ(r.state, JobState::timeout);
  EXPECT_DOUBLE_EQ(r.end_time, 60);
  EXPECT_NE(r.output.find("CANCELLED DUE TO TIME LIMIT"), std::string::npos);
}

TEST(Scheduler, FailedJobRecorded) {
  BatchScheduler s(4);
  BatchJob job = quick_job("crash", 1, 10);
  job.work = [] {
    return sched::JobResult{0.01, false, "Illegal instruction\n"};
  };
  auto id = s.submit(std::move(job));
  s.run_until_idle();
  EXPECT_EQ(s.record(id).state, JobState::failed);
}

TEST(Scheduler, AccountingListsAllJobs) {
  BatchScheduler s(8);
  for (int i = 0; i < 5; ++i) (void)s.submit(quick_job("j", 1, 10));
  s.run_until_idle();
  EXPECT_EQ(s.records().size(), 5u);
  EXPECT_THROW(s.record(999), benchpark::SchedulerError);
}

TEST(Scheduler, ThrowingJobReleasesItsNodes) {
  // A work callback that throws must not leak busy nodes: the job fails,
  // the nodes come back, and later jobs still run.
  BatchScheduler scheduler(4);
  BatchJob bomb = quick_job("bomb", 4, 10);
  bomb.work = []() -> sched::JobResult {
    throw std::runtime_error("node panic");
  };
  auto bomb_id = scheduler.submit(bomb);
  auto after_id = scheduler.submit(quick_job("after", 4, 5));
  scheduler.run_until_idle();

  const auto& failed = scheduler.record(bomb_id);
  EXPECT_EQ(failed.state, JobState::failed);
  EXPECT_NE(failed.output.find("job raised: node panic"), std::string::npos);
  EXPECT_EQ(scheduler.record(after_id).state, JobState::completed);
  EXPECT_EQ(scheduler.busy_nodes(), 0);
}

TEST(Scheduler, InjectedJobFaultFailsJobAndReleasesNodes) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse("sched.job:nth=1,key=flaky");

  BatchScheduler scheduler(2);
  auto flaky_id = scheduler.submit(quick_job("flaky", 1, 10));
  auto solid_id = scheduler.submit(quick_job("solid", 1, 10));
  scheduler.run_until_idle();

  EXPECT_EQ(scheduler.record(flaky_id).state, JobState::failed);
  EXPECT_NE(scheduler.record(flaky_id).output.find("injected transient"),
            std::string::npos);
  EXPECT_EQ(scheduler.record(solid_id).state, JobState::completed);
  EXPECT_EQ(scheduler.busy_nodes(), 0);
}

TEST(Scheduler, InjectedLatencyExtendsRuntime) {
  benchpark::support::ScopedFaultPlan scope;
  auto& plan = benchpark::support::FaultPlan::global();
  plan.clear();
  plan = benchpark::support::FaultPlan::parse("sched.job:latency=7.5");

  BatchScheduler scheduler(1);
  auto id = scheduler.submit(quick_job("slowed", 1, 10));
  scheduler.run_until_idle();
  const auto& record = scheduler.record(id);
  EXPECT_EQ(record.state, JobState::completed);
  EXPECT_DOUBLE_EQ(record.end_time - record.start_time, 17.5);
}

TEST(ScriptParse, NegativeTimeLimitRejected) {
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N 1\n#SBATCH -n 1\n"
                                         "#SBATCH -t -5:00\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N 1\n#SBATCH -n 1\n"
                                         "#SBATCH -t 0\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
  EXPECT_THROW(sched::parse_batch_script("#flux: -N 1\n#flux: -n 1\n"
                                         "#flux: -t -30m\n",
                                         sys::SchedulerKind::flux),
               benchpark::SchedulerError);
}

TEST(ScriptParse, NonPositiveResourceCountsRejected) {
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N -2\n#SBATCH -n 16\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
  EXPECT_THROW(sched::parse_batch_script("#SBATCH -N 2\n#SBATCH -n 0\n",
                                         sys::SchedulerKind::slurm),
               benchpark::SchedulerError);
}

// ------------------------------------------------- concurrency contract
// (regression tests for the service daemon's use: many dispatch workers
// submitting onto shared schedulers while one driver runs the clock)

TEST(SchedulerContention, ConcurrentSubmittersGetUniqueIdsAndAllRun) {
  BatchScheduler scheduler(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::vector<sched::JobId>> ids(kThreads);
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&scheduler, &ids, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ids[static_cast<std::size_t>(t)].push_back(scheduler.submit(
              quick_job("job-" + std::to_string(t) + "-" + std::to_string(i),
                        1 + (i % 4), 5.0)));
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  std::set<sched::JobId> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads * kPerThread));

  scheduler.run_until_idle();
  EXPECT_EQ(scheduler.busy_nodes(), 0);
  auto records = scheduler.records();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto* record : records) {
    EXPECT_EQ(record->state, JobState::completed) << record->name;
  }
}

TEST(SchedulerContention, SubmitRacesRunUntilIdle) {
  // A submitter thread keeps landing jobs while the driver thread runs
  // the clock; the driver loops until everything submitted has finished
  // (run_until_idle may observe a momentarily-empty queue mid-stream).
  BatchScheduler scheduler(16);
  constexpr int kJobs = 60;
  std::atomic<int> submitted{0};
  std::thread submitter([&scheduler, &submitted] {
    for (int i = 0; i < kJobs; ++i) {
      scheduler.submit(quick_job("raced-" + std::to_string(i), 1 + (i % 3),
                                 2.0));
      submitted.fetch_add(1, std::memory_order_release);
      if (i % 8 == 0) std::this_thread::yield();
    }
  });
  while (submitted.load(std::memory_order_acquire) < kJobs ||
         scheduler.records().size() <
             static_cast<std::size_t>(kJobs) ||
         scheduler.busy_nodes() != 0) {
    scheduler.run_until_idle();
    std::this_thread::yield();
  }
  submitter.join();
  scheduler.run_until_idle();

  auto records = scheduler.records();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kJobs));
  for (const auto* record : records) {
    EXPECT_EQ(record->state, JobState::completed) << record->name;
    EXPECT_LE(record->nodes, scheduler.total_nodes());
  }
  EXPECT_EQ(scheduler.busy_nodes(), 0);
}

TEST(SchedulerContention, CallbacksMaySubmitMoreWork) {
  // Jobs spawned from inside a running job's work callback (the lock is
  // released around callbacks) are picked up by the same run loop.
  BatchScheduler scheduler(8);
  std::atomic<int> spawned{0};
  for (int seed = 0; seed < 4; ++seed) {
    BatchJob job;
    job.name = "seed-" + std::to_string(seed);
    job.user = "olga";
    job.nodes = 1;
    job.time_limit_seconds = 3600;
    job.work = [&scheduler, &spawned, seed] {
      for (int child = 0; child < 5; ++child) {
        scheduler.submit(quick_job(
            "child-" + std::to_string(seed) + "-" + std::to_string(child), 1,
            1.0));
        spawned.fetch_add(1, std::memory_order_relaxed);
      }
      return sched::JobResult{3.0, true, "seeded\n"};
    };
    scheduler.submit(std::move(job));
  }
  scheduler.run_until_idle();
  EXPECT_EQ(spawned.load(), 20);
  auto records = scheduler.records();
  ASSERT_EQ(records.size(), 24u);
  for (const auto* record : records) {
    EXPECT_EQ(record->state, JobState::completed) << record->name;
  }
  EXPECT_EQ(scheduler.busy_nodes(), 0);
}
