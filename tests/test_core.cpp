// Core driver tests: Table 1 registry, the `benchpark <experiment>
// <system> <workspace>` entry point, the Figure 1c workflow, the Figure
// 1a repo tree, and multi-system campaigns.
#include <gtest/gtest.h>

#include "src/core/campaign.hpp"
#include "src/core/components.hpp"
#include "src/core/driver.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/yaml/parser.hpp"

namespace core = benchpark::core;
using core::Driver;
using core::ExperimentId;

TEST(Table1, HasSixComponentRows) {
  auto rows = core::table1_components();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].component, "Source code");
  EXPECT_EQ(rows[5].component, "CI testing");
  // The orthogonality claim: every row fills all three concern columns.
  for (const auto& row : rows) {
    EXPECT_FALSE(row.benchmark_specific.empty()) << row.component;
    EXPECT_FALSE(row.system_specific.empty()) << row.component;
    EXPECT_FALSE(row.experiment_specific.empty()) << row.component;
  }
}

TEST(Table1, RenderContainsPaperArtifacts) {
  auto text = core::render_table1().render();
  for (const char* artifact :
       {"package.py", "application.py", "variables.yaml", "ramble.yaml",
        ".gitlab-ci.yml", "archspec"}) {
    EXPECT_NE(text.find(artifact), std::string::npos) << artifact;
  }
}

TEST(Table1, RegistryValidates) {
  EXPECT_NO_THROW(core::validate_component_registry());
}

TEST(ExperimentIdParse, Valid) {
  auto id = ExperimentId::parse("amg2023/cuda");
  EXPECT_EQ(id.benchmark, "amg2023");
  EXPECT_EQ(id.variant, "cuda");
  EXPECT_EQ(id.str(), "amg2023/cuda");
}

TEST(ExperimentIdParse, Invalid) {
  EXPECT_THROW(ExperimentId::parse("saxpy"), benchpark::Error);
  EXPECT_THROW(ExperimentId::parse("/cuda"), benchpark::Error);
}

TEST(Driver, ListsPaperBenchmarksAndSystems) {
  Driver driver;
  auto benchmarks = driver.benchmarks();
  EXPECT_NE(std::find(benchmarks.begin(), benchmarks.end(), "saxpy"),
            benchmarks.end());
  EXPECT_NE(std::find(benchmarks.begin(), benchmarks.end(), "amg2023"),
            benchmarks.end());
  auto variants = driver.variants("saxpy");
  EXPECT_EQ(variants,
            (std::vector<std::string>{"openmp", "cuda", "rocm"}));
  auto systems = driver.systems();
  EXPECT_NE(std::find(systems.begin(), systems.end(), "cts1"),
            systems.end());
}

TEST(Driver, UnknownExperimentThrows) {
  Driver driver;
  EXPECT_THROW(driver.experiment_config({"hpl", "openmp"}),
               benchpark::Error);
}

TEST(Driver, RejectsGpuVariantOnCpuSystem) {
  Driver driver;
  benchpark::support::TempDir tmp;
  EXPECT_THROW(driver.setup({"saxpy", "cuda"}, "cts1", tmp.path() / "ws"),
               benchpark::Error);
  EXPECT_THROW(driver.setup({"saxpy", "rocm"}, "ats2", tmp.path() / "ws"),
               benchpark::Error);
}

TEST(Driver, AcceptsMatchingGpuVariant) {
  Driver driver;
  benchpark::support::TempDir tmp;
  EXPECT_NO_THROW(driver.setup({"saxpy", "cuda"}, "ats2", tmp.path() / "a"));
  EXPECT_NO_THROW(driver.setup({"saxpy", "rocm"}, "ats4", tmp.path() / "b"));
}

TEST(Driver, SetupBindsSystemAliases) {
  Driver driver;
  benchpark::support::TempDir tmp;
  auto ws = driver.setup({"saxpy", "openmp"}, "cts1", tmp.path() / "ws");
  const auto* compiler = ws.config().find_package("default-compiler");
  ASSERT_NE(compiler, nullptr);
  EXPECT_EQ(compiler->spack_spec, "gcc@12.1.1");  // Figure 9 line 3-4
  const auto* mpi = ws.config().find_package("default-mpi");
  ASSERT_NE(mpi, nullptr);
  EXPECT_NE(mpi->spack_spec.find("mvapich2"), std::string::npos);
}

TEST(Driver, Figure1cWorkflowEndToEnd) {
  Driver driver;
  benchpark::support::TempDir tmp;
  std::vector<int> steps;
  auto report = driver.run_workflow(
      {"saxpy", "openmp"}, "cts1", tmp.path() / "ws",
      [&](int step, const std::string&) { steps.push_back(step); });
  // All nine steps, in order.
  EXPECT_EQ(steps, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(report.results.size(), 8u);  // Figure 10 expansion
  EXPECT_EQ(report.num_success(), 8u);
}

TEST(Driver, WorkflowOnGpuSystem) {
  Driver driver;
  benchpark::support::TempDir tmp;
  auto report =
      driver.run_workflow({"saxpy", "cuda"}, "ats2", tmp.path() / "ws");
  EXPECT_GT(report.results.size(), 0u);
  EXPECT_EQ(report.num_success(), report.results.size());
}

TEST(Driver, RepoTreeMatchesFigure1aShape) {
  Driver driver;
  auto tree = driver.repo_tree();
  for (const char* expected :
       {"benchpark", "configs", "experiments", "repo", "cts1", "ats2",
        "compilers.yaml", "packages.yaml", "variables.yaml", "amg2023",
        "ramble.yaml", "application.py", "package.py", "repo.yaml"}) {
    EXPECT_NE(tree.find(expected), std::string::npos) << expected;
  }
}

TEST(Driver, AddCustomExperiment) {
  Driver driver;
  driver.add_experiment(
      {"stream", "big"},
      benchpark::yaml::parse(
          "ramble:\n"
          "  applications:\n"
          "    stream:\n"
          "      workloads:\n"
          "        bandwidth:\n"
          "          variables:\n"
          "            n_ranks: '1'\n"
          "            processes_per_node: '1'\n"
          "          experiments:\n"
          "            stream_big_{n}:\n"
          "              variables:\n"
          "                n: '50000000'\n"
          "                n_threads: '4'\n"
          "  spack:\n"
          "    packages:\n"
          "      stream:\n"
          "        spack_spec: stream@5.10 +openmp\n"
          "    environments:\n"
          "      stream:\n"
          "        packages:\n"
          "        - stream\n"));
  auto variants = driver.variants("stream");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "big"),
            variants.end());
  benchpark::support::TempDir tmp;
  auto report =
      driver.run_workflow({"stream", "big"}, "cts1", tmp.path() / "ws");
  EXPECT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.num_success(), 1u);
}

TEST(Campaign, RunsAcrossSystems) {
  Driver driver;
  benchpark::support::TempDir tmp;
  core::Campaign campaign(&driver, {"saxpy", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.add_system("ats2");
  campaign.run();

  ASSERT_EQ(campaign.summaries().size(), 2u);
  for (const auto& summary : campaign.summaries()) {
    EXPECT_EQ(summary.experiments, 8u) << summary.system;
    EXPECT_EQ(summary.succeeded, 8u) << summary.system;
  }
  EXPECT_EQ(campaign.metrics().distinct_systems(),
            (std::vector<std::string>{"ats2", "cts1"}));
  EXPECT_GT(campaign.metrics().size(), 0u);
}

TEST(Campaign, ComparisonTableShowsBothSystems) {
  Driver driver;
  benchpark::support::TempDir tmp;
  core::Campaign campaign(&driver, {"saxpy", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.add_system("ats2");
  campaign.run();
  auto text = campaign.comparison_table("elapsed").render();
  EXPECT_NE(text.find("cts1"), std::string::npos);
  EXPECT_NE(text.find("ats2"), std::string::npos);
  EXPECT_NE(text.find("saxpy_512"), std::string::npos);
}

TEST(Campaign, Section71CrashSurfacesInComparison) {
  // amg2023 runs on cts1 but crashes on the cloud twin; the campaign
  // must show exactly that (the paper's debugging story).
  Driver driver;
  benchpark::support::TempDir tmp;
  core::Campaign campaign(&driver, {"amg2023", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.add_system("cloud-cts");
  campaign.run();

  const auto& summaries = campaign.summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].succeeded, summaries[0].experiments);  // cts1
  EXPECT_EQ(summaries[1].succeeded, 0u);                        // cloud
  EXPECT_FALSE(summaries[1].first_failure.empty());

  auto text = campaign.comparison_table("solve_time").render();
  EXPECT_NE(text.find("CRASHED"), std::string::npos);
}

TEST(Campaign, ScalingModelFromStrongScaling) {
  Driver driver;
  benchpark::support::TempDir tmp;
  core::Campaign campaign(&driver, {"amg2023", "openmp"}, tmp.path());
  campaign.add_system("cts1");
  campaign.run();
  // Strong scaling over 16/32/64 ranks: solve time decreases with p.
  auto model = campaign.scaling_model("cts1", "solve_time");
  EXPECT_LT(model.evaluate(64), model.evaluate(16));
}

TEST(Campaign, IncompatibleSystemRecordedNotFatal) {
  Driver driver;
  benchpark::support::TempDir tmp;
  core::Campaign campaign(&driver, {"saxpy", "cuda"}, tmp.path());
  campaign.add_system("ats2");   // has CUDA
  campaign.add_system("cts1");   // CPU-only -> validation error captured
  campaign.run();
  ASSERT_EQ(campaign.summaries().size(), 2u);
  EXPECT_GT(campaign.summaries()[0].succeeded, 0u);
  EXPECT_EQ(campaign.summaries()[1].experiments, 0u);
  EXPECT_NE(campaign.summaries()[1].first_failure.find("CPU-only"),
            std::string::npos);
}
