// ConcretizationCache tests: canonical spec-text stability, the sharded
// memo table itself, cached==uncached property checks (including under a
// chaos fault plan on "concretizer.resolve"), warm-batch parallel stats,
// and capacity eviction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/concretizer/concretize_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/pkg/repo.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/yaml/parser.hpp"

namespace cz = benchpark::concretizer;
namespace pkg = benchpark::pkg;
namespace support = benchpark::support;
using benchpark::spec::Spec;
using benchpark::spec::Version;

namespace {

cz::Config scope_config(const std::string& target = "broadwell") {
  cz::Config config;
  config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  config.set_default_target(target);
  auto packages = benchpark::yaml::parse(
      "packages:\n"
      "  mpi:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  mvapich2:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n"
      "  blas:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/mkl\n"
      "    buildable: false\n"
      "  lapack:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/mkl\n"
      "    buildable: false\n"
      "  intel-oneapi-mkl:\n"
      "    externals:\n"
      "    - spec: intel-oneapi-mkl@2022.1.0\n"
      "      prefix: /path/to/mkl\n"
      "    buildable: false\n");
  config.load_packages_yaml(packages);
  return config;
}

/// RAII guard: every test starts from an empty, unbounded global cache
/// and leaves it that way (the cache is process-wide state).
struct CacheReset {
  CacheReset() {
    cz::ConcretizationCache::global().set_capacity(0);
    cz::ConcretizationCache::global().clear();
  }
  ~CacheReset() {
    cz::ConcretizationCache::global().set_capacity(0);
    cz::ConcretizationCache::global().clear();
  }
};

std::vector<Spec> parse_all(const std::vector<std::string>& texts) {
  std::vector<Spec> roots;
  roots.reserve(texts.size());
  for (const auto& t : texts) roots.push_back(Spec::parse(t));
  return roots;
}

}  // namespace

// ---------------------------------------------------------------------------
// Canonical spec text / hash.

TEST(CanonicalSpec, ConstraintOrderDoesNotMatter) {
  auto a = Spec::parse("amg2023 ^hypre ^mvapich2");
  auto b = Spec::parse("amg2023 ^mvapich2 ^hypre");
  EXPECT_EQ(cz::canonical_spec_text(a), cz::canonical_spec_text(b));
  EXPECT_EQ(cz::canonical_spec_hash(a), cz::canonical_spec_hash(b));
}

TEST(CanonicalSpec, VariantOrderDoesNotMatter) {
  auto a = Spec::parse("saxpy+cuda~openmp");
  auto b = Spec::parse("saxpy~openmp+cuda");
  EXPECT_EQ(cz::canonical_spec_text(a), cz::canonical_spec_text(b));
}

TEST(CanonicalSpec, SemanticDifferencesChangeText) {
  auto base = cz::canonical_spec_hash(Spec::parse("saxpy+openmp"));
  EXPECT_NE(base, cz::canonical_spec_hash(Spec::parse("saxpy~openmp")));
  EXPECT_NE(base, cz::canonical_spec_hash(Spec::parse("saxpy+openmp@1.0")));
  EXPECT_NE(base,
            cz::canonical_spec_hash(Spec::parse("saxpy+openmp ^zlib")));
  EXPECT_NE(base,
            cz::canonical_spec_hash(Spec::parse("saxpy+openmp%gcc@12")));
  EXPECT_NE(base, cz::canonical_spec_hash(
                      Spec::parse("saxpy+openmp target=zen3")));
}

TEST(CanonicalSpec, StableAcrossParses) {
  const std::string text = "amg2023+caliper%gcc@12.1.1 ^hypre@2.26: ^zlib";
  EXPECT_EQ(cz::canonical_spec_hash(Spec::parse(text)),
            cz::canonical_spec_hash(Spec::parse(text)));
}

// ---------------------------------------------------------------------------
// The memo table.

TEST(ConcretizationCache, InsertLookupInvalidate) {
  cz::ConcretizationCache cache;
  EXPECT_EQ(cache.lookup("k1"), nullptr);
  auto inserted = cache.insert("k1", Spec::parse("zlib@1.3"));
  ASSERT_NE(inserted, nullptr);
  auto found = cache.lookup("k1");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), inserted.get());  // shared, not copied
  EXPECT_EQ(found->name(), "zlib");
  EXPECT_EQ(cache.size(), 1u);

  EXPECT_TRUE(cache.invalidate("k1"));
  EXPECT_FALSE(cache.invalidate("k1"));
  EXPECT_EQ(cache.lookup("k1"), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.lookups(), 3u);
}

TEST(ConcretizationCache, CapacityEvictsOldestFirst) {
  cz::ConcretizationCache cache;
  cache.set_capacity(2);
  cache.insert("a", Spec::parse("zlib@1.2.13"));
  cache.insert("b", Spec::parse("zlib@1.3"));
  cache.insert("c", Spec::parse("cmake@3.26.3"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // "a" was oldest; "b" and "c" survive.
  EXPECT_EQ(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
}

TEST(ConcretizationCache, ClearEmptiesAllShards) {
  cz::ConcretizationCache cache;
  for (int i = 0; i < 64; ++i) {
    cache.insert("key-" + std::to_string(i), Spec::parse("zlib@1.3"));
  }
  EXPECT_EQ(cache.size(), 64u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(cache.lookup("key-" + std::to_string(i)), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Property: cached and uncached concretization agree, and a warm cache
// serves every repeated root without re-resolving.

TEST(ConcretizeCached, CachedEqualsUncached) {
  CacheReset reset;
  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  const std::vector<std::string> matrix = {
      "amg2023+caliper", "saxpy", "saxpy~openmp", "hypre",
      "zlib",            "osu-micro-benchmarks",  "openblas",     "stream",
  };

  cz::ConcretizeRequest uncached;
  uncached.roots = parse_all(matrix);
  uncached.unify = false;
  uncached.use_cache = false;

  cz::ConcretizeRequest cached = uncached;
  cached.use_cache = true;

  auto plain = c.concretize_all(uncached);
  auto cold = c.concretize_all(cached);
  auto warm = c.concretize_all(cached);

  ASSERT_EQ(plain.specs.size(), warm.specs.size());
  for (std::size_t i = 0; i < plain.specs.size(); ++i) {
    EXPECT_EQ(plain.specs[i].dag_hash(), cold.specs[i].dag_hash());
    EXPECT_EQ(plain.specs[i].dag_hash(), warm.specs[i].dag_hash());
  }
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, matrix.size());
  EXPECT_EQ(warm.cache_hits, matrix.size());
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST(ConcretizeCached, UnifyBatchesCacheByComponent) {
  CacheReset reset;
  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  cz::ConcretizeRequest request;
  request.roots = parse_all({"amg2023+caliper", "saxpy", "zlib"});
  request.unify = true;
  request.use_cache = true;

  auto cold = c.concretize_all(request);
  auto warm = c.concretize_all(request);
  ASSERT_EQ(cold.specs.size(), warm.specs.size());
  for (std::size_t i = 0; i < cold.specs.size(); ++i) {
    EXPECT_EQ(cold.specs[i].dag_hash(), warm.specs[i].dag_hash());
  }
  EXPECT_EQ(warm.cache_hits, request.roots.size());
  EXPECT_EQ(warm.cache_misses, 0u);

  // unify semantics survive the warm path: one mvapich2 for both users.
  EXPECT_EQ(warm.specs[0].dependency("mvapich2")->dag_hash(),
            warm.specs[1].dependency("mvapich2")->dag_hash());
}

TEST(ConcretizeCached, ScopeChangeMissesCache) {
  CacheReset reset;
  cz::Concretizer broadwell(pkg::default_repo_stack(), scope_config());
  cz::Concretizer zen3(pkg::default_repo_stack(), scope_config("zen3"));

  cz::ConcretizeRequest request;
  request.roots = parse_all({"saxpy"});
  request.unify = false;
  request.use_cache = true;

  (void)broadwell.concretize_all(request);
  auto other_scope = zen3.concretize_all(request);
  // Same abstract root, different config fingerprint: no cross-talk.
  EXPECT_EQ(other_scope.cache_hits, 0u);
  EXPECT_EQ(other_scope.specs[0].target(), "zen3");
}

TEST(ConcretizeCached, SeededContextDisablesCaching) {
  CacheReset reset;
  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  cz::Context ctx;
  cz::ConcretizeRequest first;
  first.roots = parse_all({"hypre~openmp"});
  first.unify = true;
  first.context = &ctx;
  first.use_cache = true;
  (void)c.concretize_all(first);

  // The context now pins hypre~openmp; a request resolving hypre through
  // it is not a pure function of the roots and must not be cached.
  cz::ConcretizeRequest second;
  second.roots = parse_all({"hypre"});
  second.unify = true;
  second.context = &ctx;
  second.use_cache = true;
  auto result = c.concretize_all(second);
  EXPECT_EQ(result.cache_hits + result.cache_misses, 0u);
  EXPECT_FALSE(result.specs[0].variant_enabled("openmp"));
}

TEST(ConcretizeCached, ParallelWarmBatchCountsExactly) {
  CacheReset reset;
  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  // A repeated-roots matrix: 4 unique roots x 8 repetitions.
  std::vector<Spec> roots;
  const std::vector<std::string> unique = {"saxpy", "hypre", "zlib",
                                           "amg2023+caliper"};
  for (int rep = 0; rep < 8; ++rep) {
    for (const auto& u : unique) roots.push_back(Spec::parse(u));
  }

  cz::ConcretizeRequest request;
  request.roots = roots;
  request.unify = false;
  request.use_cache = true;
  request.threads = 8;

  auto result = c.concretize_all(request);
  ASSERT_EQ(result.specs.size(), roots.size());
  // Every root resolved; hit/miss totals are exact (atomics), and at
  // least the 28 repeats beyond the first-round misses must hit (a racing
  // duplicate miss may re-resolve a root, so misses can exceed 4).
  EXPECT_EQ(result.cache_hits + result.cache_misses, roots.size());
  EXPECT_GE(result.cache_hits, roots.size() - 2 * unique.size());

  // All repetitions of a root agree.
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(result.specs[i].dag_hash(),
              result.specs[i % unique.size()].dag_hash());
  }

  auto warm = c.concretize_all(request);
  EXPECT_EQ(warm.cache_hits, roots.size());
  EXPECT_EQ(warm.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Chaos: the "concretizer.resolve" fault site.

TEST(ConcretizeChaos, TransientFaultInvalidatesAndRetries) {
  CacheReset reset;
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "concretizer.resolve";
  rule.nth = 1;  // first attempt on every key fails...
  rule.count = 1;
  plan.add_rule(rule);

  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  cz::ConcretizeRequest request;
  request.roots = parse_all({"saxpy", "hypre"});
  request.unify = false;
  request.use_cache = true;
  auto faulted = c.concretize_all(request);  // ...and the retry succeeds
  ASSERT_EQ(faulted.specs.size(), 2u);
  EXPECT_TRUE(faulted.specs[0].concrete());

  // The results under chaos match a clean, uncached resolution.
  plan.clear();
  cz::ConcretizeRequest clean = request;
  clean.use_cache = false;
  auto reference = c.concretize_all(clean);
  for (std::size_t i = 0; i < reference.specs.size(); ++i) {
    EXPECT_EQ(faulted.specs[i].dag_hash(), reference.specs[i].dag_hash());
  }
}

TEST(ConcretizeChaos, PermanentFaultPropagates) {
  CacheReset reset;
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "concretizer.resolve";
  rule.nth = 1;
  rule.count = 1;
  rule.kind = support::FaultKind::permanent;
  plan.add_rule(rule);

  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  cz::ConcretizeRequest request;
  request.roots = parse_all({"saxpy"});
  request.unify = false;
  request.use_cache = true;
  EXPECT_THROW((void)c.concretize_all(request), benchpark::PermanentError);
}

TEST(ConcretizeChaos, ExhaustedRetriesPropagateTransient) {
  CacheReset reset;
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "concretizer.resolve";
  rule.nth = 1;
  rule.count = 100;  // every attempt fails
  plan.add_rule(rule);

  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  cz::ConcretizeRequest request;
  request.roots = parse_all({"zlib"});
  request.unify = false;
  request.use_cache = true;
  EXPECT_THROW((void)c.concretize_all(request), benchpark::TransientError);
}

TEST(ConcretizeChaos, CachedEqualsUncachedUnderChaos) {
  // The headline property, under fire: a flaky resolver with cache
  // poisoning still converges to exactly the clean answer.
  CacheReset reset;
  cz::Concretizer c(pkg::default_repo_stack(), scope_config());
  const std::vector<std::string> matrix = {"amg2023+caliper", "saxpy",
                                           "hypre", "osu-micro-benchmarks"};

  cz::ConcretizeRequest clean;
  clean.roots = parse_all(matrix);
  clean.unify = true;
  clean.use_cache = false;
  auto reference = c.concretize_all(clean);

  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "concretizer.resolve";
  rule.nth = 1;  // every key's first attempt fails: warm entries get
  rule.count = 1;  // poisoned (invalidated) and must re-resolve cleanly
  plan.add_rule(rule);

  cz::ConcretizeRequest chaotic;
  chaotic.roots = clean.roots;
  chaotic.unify = true;
  chaotic.use_cache = true;
  for (int round = 0; round < 4; ++round) {
    auto result = c.concretize_all(chaotic);
    ASSERT_EQ(result.specs.size(), reference.specs.size());
    for (std::size_t i = 0; i < reference.specs.size(); ++i) {
      EXPECT_EQ(result.specs[i].dag_hash(), reference.specs[i].dag_hash())
          << "round " << round << " root " << matrix[i];
    }
  }
}
