// Tests for the Ramble modifier construct (Section 4.5): registry,
// environment injection, command wrapping, modifier FOMs, and the
// end-to-end caliper/hardware-counters flow on a workspace.
#include <gtest/gtest.h>

#include "src/ramble/modifier.hpp"
#include "src/ramble/workspace.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace ramble = benchpark::ramble;
namespace rt = benchpark::runtime;
namespace sys = benchpark::system;

TEST(ModifierRegistry, BuiltinsPresent) {
  auto names = ramble::ModifierRegistry::instance().names();
  for (const char* name : {"caliper", "hardware-counters", "time"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  EXPECT_THROW(ramble::ModifierRegistry::instance().get("vtune"),
               benchpark::ExperimentError);
}

TEST(ModifierRegistry, CaliperInjectsConfigAndFoms) {
  auto caliper = ramble::ModifierRegistry::instance().get("caliper");
  auto env = caliper->env_vars();
  ASSERT_TRUE(env.count("CALI_CONFIG"));
  EXPECT_GE(caliper->foms().size(), 2u);
  EXPECT_FALSE(caliper->success_criteria().empty());
}

TEST(ModifierRegistry, TimeWrapsCommand) {
  auto time_mod = ramble::ModifierRegistry::instance().get("time");
  EXPECT_EQ(time_mod->command_prefix(), "/usr/bin/time -v");
}

TEST(RuntimeAnnotations, CaliperEnvProducesRegionProfile) {
  const auto& cts1 = sys::SystemRegistry::instance().get("cts1");
  rt::RunParams params;
  params.app = "saxpy";
  params.n = 4096;
  params.n_ranks = 8;
  params.env["CALI_CONFIG"] = "spot";
  auto outcome = rt::run_simulated(cts1, params);
  EXPECT_NE(outcome.output.find("caliper: region profile"),
            std::string::npos);
  EXPECT_NE(outcome.output.find("main/kernel"), std::string::npos);
  EXPECT_NE(outcome.output.find("main/mpi"), std::string::npos);
}

TEST(RuntimeAnnotations, NoEnvNoProfile) {
  const auto& cts1 = sys::SystemRegistry::instance().get("cts1");
  rt::RunParams params;
  params.app = "saxpy";
  params.n = 4096;
  auto outcome = rt::run_simulated(cts1, params);
  EXPECT_EQ(outcome.output.find("caliper:"), std::string::npos);
  EXPECT_EQ(outcome.output.find("counter cycles"), std::string::npos);
}

TEST(RuntimeAnnotations, CountersScaleWithHardware) {
  const auto& cts1 = sys::SystemRegistry::instance().get("cts1");
  rt::RunParams params;
  params.app = "amg2023";
  params.n = 1 << 10;
  params.n_ranks = 16;
  params.n_threads = 2;
  params.env["BENCHPARK_PERF_COUNTERS"] = "1";
  auto outcome = rt::run_simulated(cts1, params);
  EXPECT_NE(outcome.output.find("counter cycles:"), std::string::npos);
  EXPECT_NE(outcome.output.find("counter instructions:"), std::string::npos);
  EXPECT_NE(outcome.output.find("counter ipc:"), std::string::npos);
}

namespace {

const char* kModifiedYaml =
    "ramble:\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "            processes_per_node: '8'\n"
    "          modifiers:\n"
    "          - caliper\n"
    "          - hardware-counters\n"
    "          - time\n"
    "          experiments:\n"
    "            saxpy_mod_{n}:\n"
    "              variables:\n"
    "                n: '4096'\n"
    "                n_threads: '2'\n"
    "  spack:\n"
    "    packages:\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - saxpy\n";

ramble::Workspace modified_workspace(const benchpark::support::TempDir& tmp) {
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  ws.configure(benchpark::yaml::parse(kModifiedYaml));
  return ws;
}

}  // namespace

TEST(WorkspaceModifiers, EnvAndPrefixInjected) {
  benchpark::support::TempDir tmp;
  auto ws = modified_workspace(tmp);
  ws.setup();
  ASSERT_EQ(ws.prepared().size(), 1u);
  const auto& exp = ws.prepared()[0];
  EXPECT_EQ(exp.modifiers.size(), 3u);
  EXPECT_TRUE(exp.env_vars.count("CALI_CONFIG"));
  EXPECT_TRUE(exp.env_vars.count("BENCHPARK_PERF_COUNTERS"));
  // Script contains both the exported env and the time wrapper.
  EXPECT_NE(exp.script.find("export CALI_CONFIG="), std::string::npos);
  EXPECT_NE(exp.script.find("/usr/bin/time -v"), std::string::npos);
  // The wrapper wraps the application command after the launcher.
  EXPECT_NE(exp.script.find("srun"), std::string::npos);
  EXPECT_LT(exp.script.find("/usr/bin/time -v"),
            exp.script.find("saxpy -n 4096"));
}

TEST(WorkspaceModifiers, AnalyzeExtractsModifierFoms) {
  benchpark::support::TempDir tmp;
  auto ws = modified_workspace(tmp);
  ws.setup();
  ws.run();
  auto report = ws.analyze();
  ASSERT_EQ(report.results.size(), 1u);
  const auto& result = report.results[0];
  // Caliper success criterion satisfied (profile present in output).
  EXPECT_TRUE(result.success);
  ASSERT_NE(result.fom("cali_main"), nullptr);
  EXPECT_TRUE(result.fom("cali_main")->numeric);
  ASSERT_NE(result.fom("cali_kernel"), nullptr);
  ASSERT_NE(result.fom("cycles"), nullptr);
  EXPECT_GT(result.fom("cycles")->value, 0);
  ASSERT_NE(result.fom("ipc"), nullptr);
  // Application FOMs still extracted alongside.
  ASSERT_NE(result.fom("elapsed"), nullptr);
}

TEST(WorkspaceModifiers, CaliperRegionsAreConsistent) {
  benchpark::support::TempDir tmp;
  auto ws = modified_workspace(tmp);
  ws.setup();
  ws.run();
  auto report = ws.analyze();
  const auto& result = report.results[0];
  double main_time = result.fom("cali_main")->value;
  double kernel = result.fom("cali_kernel")->value;
  EXPECT_GT(main_time, 0);
  EXPECT_LE(kernel, main_time);  // inclusive-time invariant
}

TEST(WorkspaceModifiers, UnknownModifierThrowsAtSetup) {
  benchpark::support::TempDir tmp;
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  ws.configure(benchpark::yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          variables:\n"
      "            n_ranks: '1'\n"
      "            processes_per_node: '1'\n"
      "          modifiers:\n"
      "          - vtune\n"
      "          experiments:\n"
      "            e:\n"
      "              variables:\n"
      "                n: '512'\n"
      "                n_threads: '1'\n"
      "  spack:\n"
      "    packages:\n"
      "      saxpy:\n"
      "        spack_spec: saxpy@1.0.0\n"
      "    environments:\n"
      "      saxpy:\n"
      "        packages:\n"
      "        - saxpy\n"));
  EXPECT_THROW(ws.setup(), benchpark::ExperimentError);
}

TEST(WorkspaceModifiers, WorkloadEnvWinsOverModifier) {
  // A workload that pins CALI_CONFIG keeps its value; the modifier only
  // fills gaps (emplace semantics).
  benchpark::support::TempDir tmp;
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "ws", system);
  ws.configure(benchpark::yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          env_vars:\n"
      "            set:\n"
      "              CALI_CONFIG: runtime-report\n"
      "          variables:\n"
      "            n_ranks: '1'\n"
      "            processes_per_node: '1'\n"
      "          modifiers:\n"
      "          - caliper\n"
      "          experiments:\n"
      "            e:\n"
      "              variables:\n"
      "                n: '512'\n"
      "                n_threads: '1'\n"
      "  spack:\n"
      "    packages:\n"
      "      saxpy:\n"
      "        spack_spec: saxpy@1.0.0\n"
      "    environments:\n"
      "      saxpy:\n"
      "        packages:\n"
      "        - saxpy\n"));
  ws.setup();
  EXPECT_EQ(ws.prepared()[0].env_vars.at("CALI_CONFIG"), "runtime-report");
}
