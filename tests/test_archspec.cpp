// Tests for the archspec substrate: database integrity, compatibility
// partial order, cpuinfo detection, compiler flag selection (the two uses
// Section 3.1.3 names).
#include <gtest/gtest.h>

#include "src/archspec/microarch.hpp"
#include "src/support/error.hpp"

namespace arch = benchpark::archspec;
using arch::MicroarchDatabase;
using benchpark::spec::Version;

TEST(Microarch, DatabaseHasExpectedEntries) {
  const auto& db = MicroarchDatabase::instance();
  for (const char* name :
       {"x86_64", "broadwell", "skylake_avx512", "zen3", "power9le",
        "a64fx", "x86_64_v3"}) {
    EXPECT_NE(db.find(name), nullptr) << name;
  }
  EXPECT_EQ(db.find("not-a-chip"), nullptr);
  EXPECT_THROW(db.get("not-a-chip"), benchpark::SystemError);
}

TEST(Microarch, FeaturesAreCumulative) {
  const auto& db = MicroarchDatabase::instance();
  // zen3 inherits avx2 through zen <- x86_64_v3.
  EXPECT_TRUE(db.get("zen3").has_feature("avx2"));
  EXPECT_TRUE(db.get("zen3").has_feature("sse2"));
  EXPECT_TRUE(db.get("skylake_avx512").has_feature("avx"));
  EXPECT_FALSE(db.get("broadwell").has_feature("avx512f"));
}

TEST(Microarch, AncestorsNearestFirst) {
  const auto& db = MicroarchDatabase::instance();
  auto anc = db.ancestors("zen2");
  ASSERT_GE(anc.size(), 3u);
  EXPECT_EQ(anc[0], "zen");
  EXPECT_EQ(anc.back(), "x86_64");
}

TEST(Microarch, CompatibilityIsReflexiveAndFollowsAncestry) {
  const auto& db = MicroarchDatabase::instance();
  EXPECT_TRUE(db.compatible("zen3", "zen3"));
  EXPECT_TRUE(db.compatible("zen3", "zen"));
  EXPECT_TRUE(db.compatible("zen3", "x86_64"));
  EXPECT_FALSE(db.compatible("zen", "zen3"));  // older can't run newer
}

TEST(Microarch, CrossFamilyIncompatible) {
  const auto& db = MicroarchDatabase::instance();
  EXPECT_FALSE(db.compatible("zen3", "power9le"));
  EXPECT_FALSE(db.compatible("power9le", "x86_64"));
}

TEST(Microarch, FeatureSupersetWithinFamily) {
  const auto& db = MicroarchDatabase::instance();
  // icelake has every zen feature? No — vendor features differ (clzero);
  // but skylake_avx512 covers x86_64_v4's feature list.
  EXPECT_TRUE(db.compatible("skylake_avx512", "x86_64_v4"));
  EXPECT_FALSE(db.compatible("broadwell", "x86_64_v4"));
}

TEST(Microarch, Family) {
  const auto& db = MicroarchDatabase::instance();
  EXPECT_EQ(db.family("cascadelake"), "x86_64");
  EXPECT_EQ(db.family("power9le"), "ppc64le");
  EXPECT_EQ(db.family("graviton3"), "aarch64");
}

TEST(Detect, IntelBroadwellFromFlags) {
  std::string cpuinfo =
      "processor : 0\n"
      "vendor_id : GenuineIntel\n"
      "flags : fpu sse2 sse4_2 avx avx2 adx rdseed\n";
  EXPECT_EQ(arch::detect_from_cpuinfo(cpuinfo), "broadwell");
}

TEST(Detect, IntelSkylakeAvx512) {
  std::string cpuinfo =
      "vendor_id : GenuineIntel\n"
      "flags : sse4_2 avx avx2 adx clflushopt avx512f avx512bw\n";
  EXPECT_EQ(arch::detect_from_cpuinfo(cpuinfo), "skylake_avx512");
}

TEST(Detect, AmdZen3) {
  std::string cpuinfo =
      "vendor_id : AuthenticAMD\n"
      "flags : sse4_2 avx avx2 clzero clwb vaes pku\n";
  EXPECT_EQ(arch::detect_from_cpuinfo(cpuinfo), "zen3");
}

TEST(Detect, Power9ViaCpuLine) {
  std::string cpuinfo =
      "processor : 0\n"
      "cpu : POWER9, altivec supported\n";
  EXPECT_EQ(arch::detect_from_cpuinfo(cpuinfo), "power9le");
}

TEST(Detect, GenericFallbackByLevel) {
  std::string cpuinfo =
      "vendor_id : SomethingElse\n"
      "flags : sse2 sse4_2 avx avx2\n";
  EXPECT_EQ(arch::detect_from_cpuinfo(cpuinfo), "x86_64_v3");
}

TEST(Detect, GarbageThrows) {
  EXPECT_THROW(arch::detect_from_cpuinfo("not cpuinfo at all"),
               benchpark::SystemError);
}

TEST(Detect, HostDetectionReturnsKnownName) {
  auto host = arch::detect_host();
  EXPECT_NE(MicroarchDatabase::instance().find(host), nullptr) << host;
}

TEST(Flags, GccTargetsAndVersionGates) {
  EXPECT_EQ(arch::optimization_flags("gcc", Version("12.1.1"), "zen3"),
            "-march=znver3");
  // Old GCC predates znver3: falls back to znver2.
  EXPECT_EQ(arch::optimization_flags("gcc", Version("9.4.0"), "zen3"),
            "-march=znver2");
  EXPECT_EQ(arch::optimization_flags("gcc", Version("12.1.1"), "broadwell"),
            "-march=broadwell");
  EXPECT_EQ(arch::optimization_flags("gcc", Version("12.1.1"), "power9le"),
            "-mcpu=power9");
  EXPECT_EQ(arch::optimization_flags("gcc", Version("12.1.1"), "x86_64_v3"),
            "-march=x86-64-v3");
  EXPECT_EQ(arch::optimization_flags("gcc", Version("8.5.0"), "x86_64_v3"),
            "-march=x86-64 -mtune=generic");
}

TEST(Flags, IntelCompiler) {
  EXPECT_EQ(arch::optimization_flags("intel", Version("2021.6.0"),
                                     "cascadelake"),
            "-xCORE-AVX512");
  EXPECT_EQ(arch::optimization_flags("intel", Version("2021.6.0"),
                                     "broadwell"),
            "-xCORE-AVX2");
  EXPECT_THROW(
      arch::optimization_flags("intel", Version("2021.6.0"), "power9le"),
      benchpark::SystemError);
}

TEST(Flags, IbmXl) {
  EXPECT_EQ(arch::optimization_flags("xl", Version("16.1.1"), "power9le"),
            "-qarch=pwr9");
  EXPECT_THROW(arch::optimization_flags("xl", Version("16.1.1"), "zen3"),
               benchpark::SystemError);
}

TEST(Flags, UnknownTargetThrows) {
  EXPECT_THROW(arch::optimization_flags("gcc", Version("12.1.1"), "mystery"),
               benchpark::SystemError);
}

TEST(Flags, UnknownCompilerConservative) {
  EXPECT_EQ(arch::optimization_flags("weirdcc", Version("1.0"), "zen3"),
            "-O2");
}
