// Tests for the real benchmark kernels: saxpy (Figure 7), STREAM, and the
// AMG multigrid proxy — correctness, convergence, and output formats the
// Ramble FOM extractors consume.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/benchmarks/multigrid.hpp"
#include "src/benchmarks/saxpy.hpp"
#include "src/benchmarks/stream.hpp"
#include "src/support/error.hpp"
#include "src/support/parallel.hpp"

namespace bm = benchpark::benchmarks;

TEST(ParallelFor, CoversWholeRangeOnce) {
  std::vector<int> hits(1000, 0);
  benchpark::support::parallel_for(
      hits.size(), 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, HandlesSmallAndEmptyRanges) {
  int calls = 0;
  benchpark::support::parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  benchpark::support::parallel_for(3, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(Saxpy, KernelMatchesFigure7Semantics) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30}, r(3);
  bm::saxpy_kernel(r.data(), x.data(), y.data(), 3, 2.0f);
  EXPECT_FLOAT_EQ(r[0], 12);
  EXPECT_FLOAT_EQ(r[1], 24);
  EXPECT_FLOAT_EQ(r[2], 36);
}

TEST(Saxpy, RunVerifies) {
  auto result = bm::run_saxpy(512, 1);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.n, 512u);
  EXPECT_GT(result.elapsed_seconds, 0);
}

TEST(Saxpy, ThreadedRunMatchesSerial) {
  auto serial = bm::run_saxpy(100000, 1);
  auto threaded = bm::run_saxpy(100000, 4);
  EXPECT_TRUE(threaded.verified);
  EXPECT_FLOAT_EQ(serial.checksum, threaded.checksum);
}

TEST(Saxpy, PaperProblemSizes) {
  // Figure 10 sweeps n over 512 and 1024.
  for (std::size_t n : {512u, 1024u}) {
    auto result = bm::run_saxpy(n, 2);
    EXPECT_TRUE(result.verified) << n;
  }
}

TEST(Saxpy, OutputContainsSuccessString) {
  // "Kernel done" is the Figure 8 success_criteria / FOM regex.
  auto out = bm::saxpy_output(bm::run_saxpy(1024, 2));
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
  EXPECT_NE(out.find("Kernel elapsed:"), std::string::npos);
}

TEST(Saxpy, CostModelScalesLinearly) {
  EXPECT_DOUBLE_EQ(bm::saxpy_flops(100), 200);
  EXPECT_DOUBLE_EQ(bm::saxpy_bytes(100), 1200);
}

TEST(Stream, BandwidthPositiveAndValidates) {
  auto result = bm::run_stream(1 << 16, 1, 2);
  EXPECT_TRUE(result.verified);
  for (double bw : result.bandwidth_gbs) EXPECT_GT(bw, 0);
}

TEST(Stream, OutputFormat) {
  auto out = bm::stream_output(bm::run_stream(1 << 14, 1, 1));
  EXPECT_NE(out.find("Triad:"), std::string::npos);
  EXPECT_NE(out.find("Solution Validates"), std::string::npos);
}

TEST(Multigrid, ConvergesOnSmallGrid) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.cycles, 15);
  EXPECT_GT(result.levels, 3);
  EXPECT_LT(result.final_residual, 1e-8 * result.initial_residual * 1.01);
}

TEST(Multigrid, SolutionMatchesManufactured) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  // Discretization error of the 5-point stencil is O(h^2) ~ 2e-4 at h=1/64.
  EXPECT_LT(result.solution_error, 1e-3);
  EXPECT_GT(result.solution_error, 0);
}

TEST(Multigrid, HIndependentConvergence) {
  // The multigrid property AMG benchmarks rely on: cycle count does not
  // grow with resolution.
  bm::MultigridOptions small;
  small.n = 31;
  bm::MultigridOptions large;
  large.n = 127;
  auto rs = bm::solve_poisson_multigrid(small);
  auto rl = bm::solve_poisson_multigrid(large);
  EXPECT_TRUE(rs.converged);
  EXPECT_TRUE(rl.converged);
  EXPECT_LE(std::abs(rl.cycles - rs.cycles), 2);
}

TEST(Multigrid, ErrorShrinksWithResolution) {
  bm::MultigridOptions c;
  c.n = 31;
  bm::MultigridOptions f;
  f.n = 63;
  auto coarse = bm::solve_poisson_multigrid(c);
  auto fine = bm::solve_poisson_multigrid(f);
  // O(h^2): quartering expected, allow slack.
  EXPECT_LT(fine.solution_error, coarse.solution_error / 2.5);
}

TEST(Multigrid, ThreadedSolveConverges) {
  bm::MultigridOptions options;
  options.n = 63;
  options.threads = 4;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.solution_error, 1e-3);
}

TEST(Multigrid, RejectsBadGridSizes) {
  bm::MultigridOptions options;
  options.n = 100;  // not 2^k - 1
  EXPECT_THROW(bm::solve_poisson_multigrid(options), benchpark::Error);
  options.n = 2;
  EXPECT_THROW(bm::solve_poisson_multigrid(options), benchpark::Error);
}

TEST(Multigrid, OutputCarriesFoms) {
  bm::MultigridOptions options;
  options.n = 31;
  auto out = bm::multigrid_output(bm::solve_poisson_multigrid(options));
  EXPECT_NE(out.find("Figure of Merit (FOM_Setup):"), std::string::npos);
  EXPECT_NE(out.find("Figure of Merit (FOM_Solve):"), std::string::npos);
  EXPECT_NE(out.find("AMG converged"), std::string::npos);
  EXPECT_NE(out.find("iterations:"), std::string::npos);
}

TEST(Multigrid, FomsArePositive) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_GT(result.setup_fom(), 0);
  EXPECT_GT(result.solve_fom(), 0);
}

// ------------------------------------------------- SIMD / scalar parity
// The vectorized kernels must match their vectorization-disabled scalar
// twins: bitwise for the elementwise ops (no reassociation happens), and
// to relative tolerance for the residual's reassociated reduction.

namespace {

std::vector<float> varied_floats(std::size_t n, float scale) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * static_cast<float>((i * 2654435761u) % 1000) / 1000.0f -
           scale / 2;
  }
  return v;
}

std::vector<double> varied_doubles(std::size_t n, double scale) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * static_cast<double>((i * 2654435761u) % 10000) / 10000.0 -
           scale / 2;
  }
  return v;
}

}  // namespace

TEST(SimdParity, SaxpyBitwise) {
  // Sizes straddle vector widths (remainder handling included).
  for (std::size_t n : {1UL, 3UL, 16UL, 17UL, 1023UL}) {
    auto x = varied_floats(n, 3.0f);
    auto y = varied_floats(n, 7.0f);
    std::vector<float> rv(n, 0.0f), rs(n, 0.0f);
    bm::saxpy_kernel(rv.data(), x.data(), y.data(), n, 2.5f);
    bm::saxpy_kernel_scalar(rs.data(), x.data(), y.data(), n, 2.5f);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(rv[i], rs[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdParity, StreamKernelsBitwise) {
  for (std::size_t n : {1UL, 4UL, 7UL, 256UL, 1001UL}) {
    auto a = varied_doubles(n, 5.0);
    auto b = varied_doubles(n, 2.0);
    const double s = 3.25;
    std::vector<double> ov(n, 0.0), os(n, 0.0);

    bm::stream_copy(ov.data(), a.data(), n);
    bm::stream_copy_scalar(os.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ov[i], os[i]);

    bm::stream_scale(ov.data(), a.data(), s, n);
    bm::stream_scale_scalar(os.data(), a.data(), s, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ov[i], os[i]);

    bm::stream_add(ov.data(), a.data(), b.data(), n);
    bm::stream_add_scalar(os.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ov[i], os[i]);

    bm::stream_triad(ov.data(), a.data(), b.data(), s, n);
    bm::stream_triad_scalar(os.data(), a.data(), b.data(), s, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ov[i], os[i]);
  }
}

TEST(SimdParity, MultigridSmoothRowBitwise) {
  // A 3-row slab (n+2 wide) so the row kernel sees real north/south
  // neighbors; elementwise update, so bitwise parity holds.
  for (std::size_t n : {1UL, 4UL, 5UL, 63UL}) {
    const std::size_t stride = n + 2;
    auto u = varied_doubles(3 * stride, 2.0);
    auto f = varied_doubles(3 * stride, 9.0);
    std::vector<double> nv(3 * stride, 0.0), ns(3 * stride, 0.0);
    const double h2 = 0.01, omega = 0.8;
    bm::multigrid_smooth_row(nv.data() + stride, u.data() + stride,
                             f.data() + stride, n, stride, h2, omega);
    bm::multigrid_smooth_row_scalar(ns.data() + stride, u.data() + stride,
                                    f.data() + stride, n, stride, h2, omega);
    for (std::size_t j = 1; j <= n; ++j) {
      EXPECT_EQ(nv[stride + j], ns[stride + j]) << "n=" << n << " j=" << j;
    }
  }
}

TEST(SimdParity, MultigridResidualRowStoresBitwiseSumToTolerance) {
  for (std::size_t n : {1UL, 4UL, 6UL, 63UL, 255UL}) {
    const std::size_t stride = n + 2;
    auto u = varied_doubles(3 * stride, 2.0);
    auto f = varied_doubles(3 * stride, 9.0);
    std::vector<double> rv(3 * stride, 0.0), rs(3 * stride, 0.0);
    const double inv_h2 = 1.0 / 0.01;
    double sum_v = bm::multigrid_residual_row(rv.data() + stride,
                                              u.data() + stride,
                                              f.data() + stride, n, stride,
                                              inv_h2);
    double sum_s = bm::multigrid_residual_row_scalar(
        rs.data() + stride, u.data() + stride, f.data() + stride, n, stride,
        inv_h2);
    // Stores are elementwise: bitwise-identical.
    for (std::size_t j = 1; j <= n; ++j) {
      EXPECT_EQ(rv[stride + j], rs[stride + j]) << "n=" << n << " j=" << j;
    }
    // The 4-lane partial sums reassociate the reduction: compare to
    // relative tolerance.
    EXPECT_NEAR(sum_v, sum_s, 1e-12 * std::max(1.0, std::fabs(sum_s)))
        << "n=" << n;
  }
}

TEST(SimdParity, MultigridSolveFomMatchesScalarPath) {
  // End-to-end FOM sanity: the vectorized solver must converge to the
  // same residual/error as before (the kernels are drop-in), so the FOM
  // inputs (cycles, convergence) are unchanged.
  bm::MultigridOptions options;
  options.n = 31;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.solution_error, 1e-2);
}
