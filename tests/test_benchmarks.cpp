// Tests for the real benchmark kernels: saxpy (Figure 7), STREAM, and the
// AMG multigrid proxy — correctness, convergence, and output formats the
// Ramble FOM extractors consume.
#include <gtest/gtest.h>

#include <cmath>

#include "src/benchmarks/multigrid.hpp"
#include "src/benchmarks/saxpy.hpp"
#include "src/benchmarks/stream.hpp"
#include "src/support/error.hpp"
#include "src/support/parallel.hpp"

namespace bm = benchpark::benchmarks;

TEST(ParallelFor, CoversWholeRangeOnce) {
  std::vector<int> hits(1000, 0);
  benchpark::support::parallel_for(
      hits.size(), 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, HandlesSmallAndEmptyRanges) {
  int calls = 0;
  benchpark::support::parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  benchpark::support::parallel_for(3, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(Saxpy, KernelMatchesFigure7Semantics) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30}, r(3);
  bm::saxpy_kernel(r.data(), x.data(), y.data(), 3, 2.0f);
  EXPECT_FLOAT_EQ(r[0], 12);
  EXPECT_FLOAT_EQ(r[1], 24);
  EXPECT_FLOAT_EQ(r[2], 36);
}

TEST(Saxpy, RunVerifies) {
  auto result = bm::run_saxpy(512, 1);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.n, 512u);
  EXPECT_GT(result.elapsed_seconds, 0);
}

TEST(Saxpy, ThreadedRunMatchesSerial) {
  auto serial = bm::run_saxpy(100000, 1);
  auto threaded = bm::run_saxpy(100000, 4);
  EXPECT_TRUE(threaded.verified);
  EXPECT_FLOAT_EQ(serial.checksum, threaded.checksum);
}

TEST(Saxpy, PaperProblemSizes) {
  // Figure 10 sweeps n over 512 and 1024.
  for (std::size_t n : {512u, 1024u}) {
    auto result = bm::run_saxpy(n, 2);
    EXPECT_TRUE(result.verified) << n;
  }
}

TEST(Saxpy, OutputContainsSuccessString) {
  // "Kernel done" is the Figure 8 success_criteria / FOM regex.
  auto out = bm::saxpy_output(bm::run_saxpy(1024, 2));
  EXPECT_NE(out.find("Kernel done"), std::string::npos);
  EXPECT_NE(out.find("Kernel elapsed:"), std::string::npos);
}

TEST(Saxpy, CostModelScalesLinearly) {
  EXPECT_DOUBLE_EQ(bm::saxpy_flops(100), 200);
  EXPECT_DOUBLE_EQ(bm::saxpy_bytes(100), 1200);
}

TEST(Stream, BandwidthPositiveAndValidates) {
  auto result = bm::run_stream(1 << 16, 1, 2);
  EXPECT_TRUE(result.verified);
  for (double bw : result.bandwidth_gbs) EXPECT_GT(bw, 0);
}

TEST(Stream, OutputFormat) {
  auto out = bm::stream_output(bm::run_stream(1 << 14, 1, 1));
  EXPECT_NE(out.find("Triad:"), std::string::npos);
  EXPECT_NE(out.find("Solution Validates"), std::string::npos);
}

TEST(Multigrid, ConvergesOnSmallGrid) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.cycles, 15);
  EXPECT_GT(result.levels, 3);
  EXPECT_LT(result.final_residual, 1e-8 * result.initial_residual * 1.01);
}

TEST(Multigrid, SolutionMatchesManufactured) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  // Discretization error of the 5-point stencil is O(h^2) ~ 2e-4 at h=1/64.
  EXPECT_LT(result.solution_error, 1e-3);
  EXPECT_GT(result.solution_error, 0);
}

TEST(Multigrid, HIndependentConvergence) {
  // The multigrid property AMG benchmarks rely on: cycle count does not
  // grow with resolution.
  bm::MultigridOptions small;
  small.n = 31;
  bm::MultigridOptions large;
  large.n = 127;
  auto rs = bm::solve_poisson_multigrid(small);
  auto rl = bm::solve_poisson_multigrid(large);
  EXPECT_TRUE(rs.converged);
  EXPECT_TRUE(rl.converged);
  EXPECT_LE(std::abs(rl.cycles - rs.cycles), 2);
}

TEST(Multigrid, ErrorShrinksWithResolution) {
  bm::MultigridOptions c;
  c.n = 31;
  bm::MultigridOptions f;
  f.n = 63;
  auto coarse = bm::solve_poisson_multigrid(c);
  auto fine = bm::solve_poisson_multigrid(f);
  // O(h^2): quartering expected, allow slack.
  EXPECT_LT(fine.solution_error, coarse.solution_error / 2.5);
}

TEST(Multigrid, ThreadedSolveConverges) {
  bm::MultigridOptions options;
  options.n = 63;
  options.threads = 4;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.solution_error, 1e-3);
}

TEST(Multigrid, RejectsBadGridSizes) {
  bm::MultigridOptions options;
  options.n = 100;  // not 2^k - 1
  EXPECT_THROW(bm::solve_poisson_multigrid(options), benchpark::Error);
  options.n = 2;
  EXPECT_THROW(bm::solve_poisson_multigrid(options), benchpark::Error);
}

TEST(Multigrid, OutputCarriesFoms) {
  bm::MultigridOptions options;
  options.n = 31;
  auto out = bm::multigrid_output(bm::solve_poisson_multigrid(options));
  EXPECT_NE(out.find("Figure of Merit (FOM_Setup):"), std::string::npos);
  EXPECT_NE(out.find("Figure of Merit (FOM_Solve):"), std::string::npos);
  EXPECT_NE(out.find("AMG converged"), std::string::npos);
  EXPECT_NE(out.find("iterations:"), std::string::npos);
}

TEST(Multigrid, FomsArePositive) {
  bm::MultigridOptions options;
  options.n = 63;
  auto result = bm::solve_poisson_multigrid(options);
  EXPECT_GT(result.setup_fom(), 0);
  EXPECT_GT(result.solve_fom(), 0);
}
