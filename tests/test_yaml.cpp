// Tests for the YAML subset parser/emitter against the exact config shapes
// the paper uses (Figures 3, 4, 9, 10, 12).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/support/error.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/node.hpp"
#include "src/yaml/parser.hpp"

namespace yaml = benchpark::yaml;

TEST(YamlParser, EmptyDocumentIsNull) {
  EXPECT_TRUE(yaml::parse("").is_null());
  EXPECT_TRUE(yaml::parse("   \n# only a comment\n").is_null());
}

TEST(YamlParser, ScalarDocument) {
  auto n = yaml::parse("hello");
  ASSERT_TRUE(n.is_scalar());
  EXPECT_EQ(n.as_string(), "hello");
}

TEST(YamlParser, SimpleMapping) {
  auto n = yaml::parse("key: value\nother: 2\n");
  ASSERT_TRUE(n.is_mapping());
  EXPECT_EQ(n.at("key").as_string(), "value");
  EXPECT_EQ(n.at("other").as_int(), 2);
}

TEST(YamlParser, NestedMapping) {
  auto n = yaml::parse(
      "spack:\n"
      "  concretizer:\n"
      "    unify: true\n"
      "  view: true\n");
  EXPECT_TRUE(n.path("spack.concretizer.unify").as_bool());
  EXPECT_TRUE(n.path("spack.view").as_bool());
}

TEST(YamlParser, BlockSequenceOfScalars) {
  auto n = yaml::parse("items:\n  - a\n  - b\n  - c\n");
  ASSERT_TRUE(n.at("items").is_sequence());
  EXPECT_EQ(n.at("items").as_string_list(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(YamlParser, SequenceAtSameIndentAsKey) {
  // Spack configs commonly write the dash at the key's own indent level.
  auto n = yaml::parse("specs:\n- amg2023+caliper\n- saxpy\n");
  EXPECT_EQ(n.at("specs").size(), 2u);
  EXPECT_EQ(n.at("specs").items()[0].as_string(), "amg2023+caliper");
}

TEST(YamlParser, FlowSequence) {
  auto n = yaml::parse("compilers: [gcc1211, intel202160classic]\n");
  EXPECT_EQ(n.at("compilers").as_string_list(),
            (std::vector<std::string>{"gcc1211", "intel202160classic"}));
}

TEST(YamlParser, FlowSequenceOfQuotedStrings) {
  auto n = yaml::parse("processes_per_node: ['8', '4']\n");
  EXPECT_EQ(n.at("processes_per_node").as_string_list(),
            (std::vector<std::string>{"8", "4"}));
}

TEST(YamlParser, EmptyFlowSequence) {
  auto n = yaml::parse("xs: []\n");
  ASSERT_TRUE(n.at("xs").is_sequence());
  EXPECT_EQ(n.at("xs").size(), 0u);
}

TEST(YamlParser, NestedFlowSequence) {
  auto n = yaml::parse("m: [[a, b], [c]]\n");
  ASSERT_EQ(n.at("m").size(), 2u);
  EXPECT_EQ(n.at("m").items()[0].as_string_list(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(YamlParser, SequenceOfMappings) {
  // The externals shape from Figure 4.
  auto n = yaml::parse(
      "packages:\n"
      "  mpi:\n"
      "    externals:\n"
      "    - spec: mvapich2@2.3.7-gcc12.1.1-magic\n"
      "      prefix: /path/to/mvapich2\n"
      "    buildable: false\n");
  const auto& externals = n.path("packages.mpi.externals");
  ASSERT_TRUE(externals.is_sequence());
  ASSERT_EQ(externals.size(), 1u);
  EXPECT_EQ(externals.items()[0].at("spec").as_string(),
            "mvapich2@2.3.7-gcc12.1.1-magic");
  EXPECT_EQ(externals.items()[0].at("prefix").as_string(),
            "/path/to/mvapich2");
  EXPECT_FALSE(n.path("packages.mpi.buildable").as_bool());
}

TEST(YamlParser, QuotedScalarsPreserveType) {
  auto n = yaml::parse("n_ranks: '8'\nbatch_time: \"120\"\n");
  EXPECT_EQ(n.at("n_ranks").as_string(), "8");
  EXPECT_EQ(n.at("batch_time").as_string(), "120");
}

TEST(YamlParser, SingleQuoteEscaping) {
  auto n = yaml::parse("msg: 'it''s fine'\n");
  EXPECT_EQ(n.at("msg").as_string(), "it's fine");
}

TEST(YamlParser, CommentsStripped) {
  auto n = yaml::parse(
      "# header comment\n"
      "key: value  # trailing\n"
      "url: http://example.com/#anchor\n");
  EXPECT_EQ(n.at("key").as_string(), "value");
  // '#' without preceding space is not a comment.
  EXPECT_EQ(n.at("url").as_string(), "http://example.com/#anchor");
}

TEST(YamlParser, ValueWithColonInside) {
  auto n = yaml::parse("mpi_command: 'srun -N {n_nodes} -n {n_ranks}'\n");
  EXPECT_EQ(n.at("mpi_command").as_string(), "srun -N {n_nodes} -n {n_ranks}");
}

TEST(YamlParser, EmptyValueIsNull) {
  auto n = yaml::parse("key:\nafter: 1\n");
  EXPECT_TRUE(n.at("key").is_null());
  EXPECT_EQ(n.at("after").as_int(), 1);
}

TEST(YamlParser, DuplicateKeyThrows) {
  EXPECT_THROW(yaml::parse("a: 1\na: 2\n"), benchpark::YamlError);
}

TEST(YamlParser, TabsRejected) {
  EXPECT_THROW(yaml::parse("a:\n\tb: 1\n"), benchpark::YamlError);
}

TEST(YamlParser, AnchorsRejected) {
  EXPECT_THROW(yaml::parse("a: 1\n&anchor\n"), benchpark::YamlError);
}

TEST(YamlParser, BlockScalarRejected) {
  EXPECT_THROW(yaml::parse("a: |\n  text\n"), benchpark::YamlError);
}

TEST(YamlParser, UnterminatedFlowThrows) {
  EXPECT_THROW(yaml::parse("a: [1, 2\n"), benchpark::YamlError);
}

TEST(YamlParser, ErrorsCarryLineNumbers) {
  try {
    yaml::parse("ok: 1\nbad: |\n");
    FAIL() << "expected YamlError";
  } catch (const benchpark::YamlError& e) {
    EXPECT_NE(std::string(e.what()).find("yaml:2"), std::string::npos);
  }
}

TEST(YamlParser, Figure3SpackYaml) {
  // Figure 3 from the paper, verbatim.
  auto n = yaml::parse(
      "spack:\n"
      "  specs: [amg2023+caliper]\n"
      "  concretizer:\n"
      "    unify: true\n"
      "  view: true\n");
  EXPECT_EQ(n.path("spack.specs").as_string_list(),
            (std::vector<std::string>{"amg2023+caliper"}));
  EXPECT_TRUE(n.path("spack.concretizer.unify").as_bool());
}

TEST(YamlParser, Figure10RambleYamlShape) {
  auto n = yaml::parse(
      "ramble:\n"
      "  include:\n"
      "  - ./configs/spack.yaml\n"
      "  - ./configs/variables.yaml\n"
      "  config:\n"
      "    deprecated: true\n"
      "    spack_flags:\n"
      "      install: '--add --keep-stage'\n"
      "      concretize: '-U -f'\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          env_vars:\n"
      "            set:\n"
      "              OMP_NUM_THREADS: '{n_threads}'\n"
      "          variables:\n"
      "            n_ranks: '8'\n"
      "          experiments:\n"
      "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
      "              variables:\n"
      "                processes_per_node: ['8', '4']\n"
      "                n_nodes: ['1', '2']\n"
      "                n_threads: ['2', '4']\n"
      "                n: ['512', '1024']\n"
      "              matrices:\n"
      "              - size_threads:\n"
      "                - n\n"
      "                - n_threads\n");
  EXPECT_EQ(n.path("ramble.include").size(), 2u);
  EXPECT_EQ(n.path("ramble.config.spack_flags.install").as_string(),
            "--add --keep-stage");
  const auto& exp = n.path(
      "ramble.applications.saxpy.workloads.problem.experiments");
  ASSERT_TRUE(exp.is_mapping());
  const auto& e = exp.at("saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}");
  EXPECT_EQ(e.path("variables.n").as_string_list(),
            (std::vector<std::string>{"512", "1024"}));
  const auto& matrices = e.at("matrices");
  ASSERT_EQ(matrices.size(), 1u);
  EXPECT_EQ(matrices.items()[0].at("size_threads").as_string_list(),
            (std::vector<std::string>{"n", "n_threads"}));
}

TEST(YamlEmitter, RoundTripScalarMap) {
  auto original = yaml::parse("a: x\nb: 'with: colon'\nc: [1, 2]\n");
  auto text = yaml::emit(original);
  auto reparsed = yaml::parse(text);
  EXPECT_TRUE(original == reparsed);
}

TEST(YamlEmitter, RoundTripSequenceOfMaps) {
  auto original = yaml::parse(
      "externals:\n"
      "- spec: mkl@2022.1.0\n"
      "  prefix: /opt/mkl\n"
      "- spec: mvapich2@2.3.7\n"
      "  prefix: /opt/mvapich2\n");
  auto reparsed = yaml::parse(yaml::emit(original));
  EXPECT_TRUE(original == reparsed);
}

TEST(YamlEmitter, RoundTripDeepNesting) {
  auto original = yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          variables:\n"
      "            n: ['512', '1024']\n");
  auto reparsed = yaml::parse(yaml::emit(original));
  EXPECT_TRUE(original == reparsed);
}

TEST(YamlEmitter, QuotesAmbiguousScalars) {
  yaml::Node n = yaml::Node::make_mapping();
  n["a"] = yaml::Node("true");   // would parse as bool keyword
  n["b"] = yaml::Node("x: y");   // embedded colon-space
  n["c"] = yaml::Node("");       // empty
  auto text = yaml::emit(n);
  auto reparsed = yaml::parse(text);
  EXPECT_EQ(reparsed.at("a").as_string(), "true");
  EXPECT_EQ(reparsed.at("b").as_string(), "x: y");
  EXPECT_EQ(reparsed.at("c").as_string(), "");
}

TEST(YamlEmitter, QuoteNumericOption) {
  yaml::Node n = yaml::Node::make_mapping();
  n["n_ranks"] = yaml::Node("8");
  yaml::EmitOptions opts;
  opts.quote_numeric_strings = true;
  EXPECT_NE(yaml::emit(n, opts).find("'8'"), std::string::npos);
}

TEST(YamlNode, PathLookupMissingReturnsNull) {
  auto n = yaml::parse("a:\n  b: 1\n");
  EXPECT_TRUE(n.path("a.c").is_null());
  EXPECT_TRUE(n.path("x.y.z").is_null());
  EXPECT_EQ(n.path("a.b").as_int(), 1);
}

TEST(YamlNode, AsStringListFromScalar) {
  yaml::Node n("single");
  EXPECT_EQ(n.as_string_list(), (std::vector<std::string>{"single"}));
}

TEST(YamlNode, TypeErrorsThrow) {
  auto n = yaml::parse("a: [1]\n");
  EXPECT_THROW((void)n.at("a").as_string(), benchpark::YamlError);
  EXPECT_THROW((void)n.as_string(), benchpark::YamlError);
  EXPECT_THROW((void)yaml::Node("x").as_bool(), benchpark::YamlError);
}

TEST(YamlNode, OrderPreserved) {
  auto n = yaml::parse("z: 1\na: 2\nm: 3\n");
  std::vector<std::string> keys;
  for (const auto& [k, v] : n.map()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(YamlNode, EmptyMappingFlowSyntax) {
  auto n = yaml::parse("build: {}\n");
  EXPECT_TRUE(n.at("build").is_mapping());
  EXPECT_EQ(n.at("build").size(), 0u);
}

// ----------------------------------------------- round-trip property test
//
// parse(emit(n)) == n over the full corpus of ambiguous scalars: values
// that look like numbers, booleans, null, or dates; strings carrying ':',
// '#', quotes, control characters, or indicator-leading characters; and
// strings with leading/trailing whitespace. The emitter must quote (or
// escape) exactly enough that the parser reads back the same string.

namespace {

const std::vector<std::string>& ambiguous_corpus() {
  static const std::vector<std::string> corpus = {
      // empty / whitespace
      std::string(""), " ", "  leading", "trailing  ", "\tindent", " x ",
      // numbers (string-typed scalars must stay strings byte-for-byte)
      "8", "-0", "3.14", "1e10", "0x1f", "007", "+42", ".5", "1_000",
      // boolean / null keywords in every casing the parser accepts
      "true", "false", "True", "FALSE", "yes", "no", "on", "off", "~",
      "null", "Null", "NULL",
      // dates (a typed reader would otherwise turn these into timestamps)
      "2023-01-01", "2023-01-01 12:00", "2023-01-01T00:00:00Z",
      "1999-12-31",
      // colon / comment traps
      "a: b", "a:b", ": start", "ends with colon:", "x #comment",
      "#leading", "a # trailing", "http://example.com/x", " # both",
      // flow / block indicators
      "- dash", "-", "---", "[", "]", "{", "}", "[1, 2]", "{a: b}",
      ", comma", "? question", "&anchor", "*alias", "!tag", "|block",
      ">fold", "%directive", "@at", "`tick",
      // quoting characters
      "'single'", "\"double\"", "it's", "say \"hi\"", "mix '\" both",
      "back\\slash", "\\n not a newline",
      // control characters (force the double-quoted escape style)
      std::string("line\nbreak"), std::string("tab\there"),
      std::string("\r carriage"), std::string(1, '\x01'),
      std::string(1, '\x7f'), std::string("bell\x07"),
      std::string("multi\nline\nvalue\n"),
  };
  return corpus;
}

}  // namespace

TEST(YamlEmitter, RoundTripAmbiguousValues) {
  for (const auto& s : ambiguous_corpus()) {
    yaml::Node n = yaml::Node::make_mapping();
    n["v"] = yaml::Node(s);
    auto text = yaml::emit(n);
    yaml::Node reparsed;
    ASSERT_NO_THROW(reparsed = yaml::parse(text))
        << "value: " << s << "\nemitted: " << text;
    ASSERT_TRUE(reparsed.is_mapping()) << "value: " << s;
    ASSERT_TRUE(reparsed.at("v").is_scalar())
        << "value: " << s << "\nemitted: " << text;
    EXPECT_EQ(reparsed.at("v").as_string(), s)
        << "emitted: " << text;
  }
}

TEST(YamlEmitter, RoundTripAmbiguousSequenceItems) {
  yaml::Node n = yaml::Node::make_sequence();
  for (const auto& s : ambiguous_corpus()) n.push_back(yaml::Node(s));
  auto reparsed = yaml::parse(yaml::emit(n));
  ASSERT_TRUE(reparsed.is_sequence());
  ASSERT_EQ(reparsed.size(), ambiguous_corpus().size());
  for (std::size_t i = 0; i < reparsed.size(); ++i) {
    EXPECT_EQ(reparsed.items()[i].as_string(), ambiguous_corpus()[i]) << i;
  }
}

TEST(YamlEmitter, RoundTripAmbiguousKeys) {
  for (const auto& s : ambiguous_corpus()) {
    yaml::Node n = yaml::Node::make_mapping();
    n[s] = yaml::Node("value");
    auto text = yaml::emit(n);
    yaml::Node reparsed;
    ASSERT_NO_THROW(reparsed = yaml::parse(text))
        << "key: " << s << "\nemitted: " << text;
    ASSERT_TRUE(reparsed.is_mapping()) << "key: " << s;
    ASSERT_TRUE(reparsed.has(s))
        << "key: " << s << "\nemitted: " << text;
    EXPECT_EQ(reparsed.at(s).as_string(), "value");
  }
}

TEST(YamlEmitter, RoundTripEmptyContainers) {
  auto original = yaml::parse(
      "empty_map: {}\n"
      "empty_seq: []\n"
      "seq_of_empties:\n"
      "- {}\n"
      "- []\n"
      "nested:\n"
      "  inner: {}\n");
  auto text = yaml::emit(original);
  auto reparsed = yaml::parse(text);
  EXPECT_TRUE(original == reparsed) << text;
  EXPECT_TRUE(reparsed.at("seq_of_empties").items()[0].is_mapping());
  EXPECT_TRUE(reparsed.at("seq_of_empties").items()[1].is_sequence());
}

TEST(YamlEmitter, RoundTripQuotedKeysWithEscapes) {
  // Keys containing the quote characters themselves exercise the
  // parser's escape-aware quoted-key scan.
  for (const std::string key :
       {"it's", "a 'quoted' part", "say \"hi\"", "both '\" quotes",
        "key: colon", "key\nnewline", "key\\backslash"}) {
    yaml::Node n = yaml::Node::make_mapping();
    n[key] = yaml::Node("v");
    auto text = yaml::emit(n);
    auto reparsed = yaml::parse(text);
    ASSERT_TRUE(reparsed.has(key)) << "emitted: " << text;
    EXPECT_EQ(reparsed.at(key).as_string(), "v");
  }
}

TEST(YamlEmitter, EmitIsIdempotent) {
  // emit(parse(emit(n))) == emit(n): the emitted form is a fixed point,
  // so persisted documents do not churn across rewrite cycles.
  yaml::Node n = yaml::Node::make_mapping();
  for (std::size_t i = 0; i < ambiguous_corpus().size(); ++i) {
    n["k" + std::to_string(i)] = yaml::Node(ambiguous_corpus()[i]);
  }
  auto once = yaml::emit(n);
  auto twice = yaml::emit(yaml::parse(once));
  EXPECT_EQ(once, twice);
}
