// Tests for package recipes and repositories, including the Figure 11
// saxpy recipe (variants -> cmake args) and the repo overlay mechanism
// (the `repo/` directory of Figure 1a).
#include <gtest/gtest.h>

#include <memory>

#include "src/pkg/repo.hpp"
#include "src/support/error.hpp"

namespace pkg = benchpark::pkg;
namespace spec = benchpark::spec;
using pkg::BuildSystem;
using pkg::PackageRecipe;
using spec::Spec;

TEST(PackageRecipe, BestVersionPicksHighestNonDeprecated) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.version("1.0").version("2.0").version("3.0", false, /*deprecated=*/true);
  auto v = p.best_version({});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "2.0");
}

TEST(PackageRecipe, PreferredVersionWinsOverHigher) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.version("1.0", /*preferred=*/true).version("2.0");
  EXPECT_EQ(p.best_version({})->str(), "1.0");
}

TEST(PackageRecipe, ConstraintOverridesPreference) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.version("1.0", /*preferred=*/true).version("2.0");
  auto v = p.best_version(spec::VersionConstraint::parse("2.0"));
  EXPECT_EQ(v->str(), "2.0");
}

TEST(PackageRecipe, DeprecatedReachableByExplicitRequest) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.version("1.0").version("0.9", false, /*deprecated=*/true);
  auto v = p.best_version(spec::VersionConstraint::parse("=0.9"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "0.9");
}

TEST(PackageRecipe, NoVersionMatches) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.version("1.0");
  EXPECT_FALSE(p.best_version(spec::VersionConstraint::parse("2:")).has_value());
}

TEST(PackageRecipe, ConditionalDependencies) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.variant("cuda", false, "CUDA");
  p.depends_on("zlib");
  p.depends_on("cuda", "+cuda");
  auto plain = Spec::parse("demo~cuda");
  auto with_cuda = Spec::parse("demo+cuda");
  EXPECT_EQ(p.active_dependencies(plain).size(), 1u);
  EXPECT_EQ(p.active_dependencies(with_cuda).size(), 2u);
}

TEST(PackageRecipe, ConflictDetection) {
  PackageRecipe p("demo", BuildSystem::cmake);
  p.variant("cuda", false, "").variant("rocm", false, "");
  p.conflicts("+cuda", "+rocm", "pick one");
  EXPECT_NO_THROW(p.check_conflicts(Spec::parse("demo+cuda~rocm")));
  EXPECT_THROW(p.check_conflicts(Spec::parse("demo+cuda+rocm")),
               benchpark::PackageError);
}

TEST(PackageRecipe, BadVariantDefaultThrows) {
  PackageRecipe p("demo", BuildSystem::cmake);
  EXPECT_THROW(p.variant("mode", "bad", {"a", "b"}, ""),
               benchpark::PackageError);
}

TEST(BuiltinRepo, Figure11SaxpyCmakeArgs) {
  auto repo = pkg::builtin_repo();
  const auto* saxpy = repo->find("saxpy");
  ASSERT_NE(saxpy, nullptr);
  EXPECT_EQ(saxpy->build_system(), BuildSystem::cmake);

  auto openmp = Spec::parse("saxpy+openmp~cuda~rocm");
  auto args = saxpy->build_args(openmp);
  EXPECT_EQ(args, (std::vector<std::string>{"-DUSE_OPENMP=ON"}));

  auto cuda = Spec::parse("saxpy~openmp+cuda~rocm");
  EXPECT_EQ(saxpy->build_args(cuda),
            (std::vector<std::string>{"-DUSE_CUDA=ON"}));

  auto rocm = Spec::parse("saxpy~openmp~cuda+rocm");
  EXPECT_EQ(saxpy->build_args(rocm),
            (std::vector<std::string>{"-DUSE_HIP=ON"}));
}

TEST(BuiltinRepo, SaxpyGpuBackendsConflict) {
  auto repo = pkg::builtin_repo();
  EXPECT_THROW(
      repo->find("saxpy")->check_conflicts(Spec::parse("saxpy+cuda+rocm")),
      benchpark::PackageError);
}

TEST(BuiltinRepo, MpiProviders) {
  auto repo = pkg::builtin_repo();
  auto providers = repo->providers_of("mpi");
  std::vector<std::string> names;
  for (const auto* p : providers) names.push_back(p->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "mvapich2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "spectrum-mpi"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cray-mpich"), names.end());
  EXPECT_TRUE(repo->is_virtual("mpi"));
  EXPECT_FALSE(repo->is_virtual("saxpy"));
}

TEST(BuiltinRepo, BlasProviders) {
  auto repo = pkg::builtin_repo();
  auto providers = repo->providers_of("blas");
  EXPECT_GE(providers.size(), 2u);
}

TEST(BuiltinRepo, Amg2023DependsOnHypreStack) {
  auto repo = pkg::builtin_repo();
  const auto* amg = repo->find("amg2023");
  ASSERT_NE(amg, nullptr);
  auto with_caliper = Spec::parse("amg2023+caliper~cuda~rocm+openmp");
  auto deps = amg->active_dependencies(with_caliper);
  std::vector<std::string> names;
  for (const auto* d : deps) names.push_back(d->dep.name());
  EXPECT_NE(std::find(names.begin(), names.end(), "hypre"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "caliper"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "adiak"), names.end());

  auto without = Spec::parse("amg2023~caliper~cuda~rocm+openmp");
  auto fewer = amg->active_dependencies(without);
  EXPECT_LT(fewer.size(), deps.size());
}

TEST(RepoStack, OverlayShadowsUpstream) {
  auto overlay = std::make_shared<pkg::Repo>("benchpark-repo");
  PackageRecipe patched("saxpy", BuildSystem::cmake);
  patched.version("9.9.9");
  overlay->add(std::move(patched));

  pkg::RepoStack stack;
  stack.push_back(pkg::builtin_repo());
  stack.push_front(overlay);

  EXPECT_EQ(stack.get("saxpy").best_version({})->str(), "9.9.9");
  // Upstream packages still visible through the overlay.
  EXPECT_TRUE(stack.has("amg2023"));
}

TEST(RepoStack, UnknownPackageThrows) {
  auto stack = pkg::default_repo_stack();
  EXPECT_THROW(stack.get("no-such-package"), benchpark::PackageError);
}

TEST(RepoStack, PackageNamesSortedUnique) {
  auto stack = pkg::default_repo_stack();
  auto names = stack.package_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_GE(names.size(), 20u);
}
