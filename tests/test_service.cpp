// BenchService tests: the multi-tenant daemon's whole contract.
//
//  - FairShareQueue properties: exact weighted shares (DRR quanta), the
//    no-starvation bound (a saturated tenant waits at most one rotation),
//    intra-tenant priority order, in-flight caps.
//  - Concurrency stress: 1056 campaigns from 16 tenants submitted from 16
//    threads, exactly-once execution per ticket, per-tenant in-flight
//    quotas never exceeded, results identical to a serial submission.
//  - Backpressure: bounded tenant/global queues reject with ServiceBusy
//    (retry-after hint), and a seeded "serve.admit" fault plan rejects
//    the same submissions on every run.
//  - Durability: drain/restart re-executes zero completed experiments
//    (the replayed campaign is all store hits, .out files byte-identical)
//    and a crash-stopped service's durable queued tickets replay.
//
// Carries the "threads" label: the TSAN job races submit/dispatch/drain
// for real.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/serve/admission.hpp"
#include "src/serve/service.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"

namespace fs = std::filesystem;
namespace obs = benchpark::obs;
namespace serve = benchpark::serve;
namespace support = benchpark::support;
using benchpark::Error;
using serve::BenchService;
using serve::CampaignRequest;
using serve::FairShareQueue;
using serve::ServiceBusy;
using serve::ServiceConfig;
using serve::TenantQuota;
using serve::TicketId;
using serve::TicketState;

namespace {

/// Shared accounting for synthetic campaign runners: exactly-once and
/// quota checks for the stress tests.
struct RunnerProbe {
  std::mutex mu;
  std::map<TicketId, int> executions;
  std::map<std::string, int> tenant_in_flight;
  std::map<std::string, int> tenant_in_flight_max;
  int in_flight = 0;
  int in_flight_max = 0;
};

/// A synthetic campaign: no Driver, no filesystem. The outcome is a pure
/// function of the request, so concurrent and serial runs must agree.
serve::CampaignRunner synthetic_runner(RunnerProbe& probe,
                                       int sleep_us = 0) {
  return [&probe, sleep_us](const CampaignRequest& req,
                            const serve::CampaignContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(probe.mu);
      ++probe.executions[ctx.ticket];
      int cur = ++probe.tenant_in_flight[req.tenant];
      probe.tenant_in_flight_max[req.tenant] =
          std::max(probe.tenant_in_flight_max[req.tenant], cur);
      probe.in_flight_max = std::max(probe.in_flight_max, ++probe.in_flight);
    }
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    serve::CampaignOutcome out;
    out.experiments = 1 + req.experiment.size() % 3;
    out.succeeded = out.experiments;
    {
      std::lock_guard<std::mutex> lock(probe.mu);
      --probe.tenant_in_flight[req.tenant];
      --probe.in_flight;
    }
    return out;
  };
}

/// Collect every .out file under a campaign workspace, keyed by path
/// relative to `root` (the byte-identical restart comparison).
std::map<std::string, std::string> out_files(const fs::path& root) {
  std::map<std::string, std::string> found;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".out") continue;
    found[fs::relative(entry.path(), root).string()] =
        support::read_file(entry.path());
  }
  return found;
}

}  // namespace

// ------------------------------------------------- fair-share properties

TEST(FairShare, WeightedSharesConvergeExactly) {
  FairShareQueue q;
  q.configure("a", {1.0, 1024, 4096});
  q.configure("b", {2.0, 1024, 4096});
  q.configure("c", {4.0, 1024, 4096});
  TicketId id = 1;
  for (int i = 0; i < 150; ++i) q.push("a", id++, 0);
  for (int i = 0; i < 250; ++i) q.push("b", id++, 0);
  for (int i = 0; i < 450; ++i) q.push("c", id++, 0);

  // 700 pops = 100 full DRR rotations of quanta 1 + 2 + 4. Releasing
  // after every pop keeps every tenant eligible throughout.
  std::map<std::string, int> served;
  std::map<TicketId, std::string> owner;
  id = 1;
  for (int i = 0; i < 150; ++i) owner[id++] = "a";
  for (int i = 0; i < 250; ++i) owner[id++] = "b";
  for (int i = 0; i < 450; ++i) owner[id++] = "c";
  for (int i = 0; i < 700; ++i) {
    auto picked = q.pop();
    ASSERT_TRUE(picked.has_value()) << "pop " << i;
    const std::string& tenant = owner.at(*picked);
    ++served[tenant];
    q.release(tenant);
  }
  // Weights 1:2:4 over 100 rotations: exact, not approximate.
  EXPECT_EQ(served["a"], 100);
  EXPECT_EQ(served["b"], 200);
  EXPECT_EQ(served["c"], 400);
}

TEST(FairShare, NoStarvationBoundedWait) {
  // 15 heavy tenants (weight 8) saturate the queue; the weight-1 tenant
  // must still be served at least once per rotation: its wait between
  // consecutive dispatches is bounded by the sum of normalized quanta,
  // 15 * 8 + 1 = 121, no matter how heavy the neighbors are.
  FairShareQueue q;
  std::map<TicketId, std::string> owner;
  TicketId id = 1;
  for (int t = 0; t < 15; ++t) {
    std::string name = "heavy" + std::to_string(t);
    q.configure(name, {8.0, 1024, 4096});
    for (int i = 0; i < 40; ++i) {
      owner[id] = name;
      q.push(name, id++, 0);
    }
  }
  q.configure("light", {1.0, 1024, 4096});
  for (int i = 0; i < 8; ++i) {
    owner[id] = "light";
    q.push("light", id++, 0);
  }

  constexpr int kRotation = 15 * 8 + 1;
  int last_light = 0;
  int light_served = 0;
  for (int i = 1; i <= 3 * kRotation; ++i) {
    auto picked = q.pop();
    ASSERT_TRUE(picked.has_value()) << "pop " << i;
    const std::string& tenant = owner.at(*picked);
    if (tenant == "light") {
      EXPECT_LE(i - last_light, kRotation) << "light starved at pop " << i;
      last_light = i;
      ++light_served;
    }
    q.release(tenant);
  }
  EXPECT_EQ(light_served, 3);
}

TEST(FairShare, PriorityOrdersWithinTenantFifoAmongEquals) {
  FairShareQueue q;
  q.configure("a", {1.0, 16, 64});
  q.push("a", 1, 0);
  q.push("a", 2, 5);
  q.push("a", 3, 5);
  q.push("a", 4, 9);
  std::vector<TicketId> order;
  while (auto picked = q.pop()) {
    order.push_back(*picked);
    q.release("a");
  }
  EXPECT_EQ(order, (std::vector<TicketId>{4, 2, 3, 1}));
}

TEST(FairShare, InFlightCapAndRelease) {
  FairShareQueue q;
  q.configure("a", {1.0, 2, 64});
  for (TicketId i = 1; i <= 5; ++i) q.push("a", i, 0);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_EQ(q.in_flight("a"), 2);
  // At the cap: the tenant is ineligible even with queued work.
  EXPECT_FALSE(q.pop().has_value());
  q.release("a");
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_EQ(q.depth("a"), 2u);
}

TEST(FairShare, TenantQueueBoundRefuses) {
  FairShareQueue q;
  q.configure("a", {1.0, 4, 2});
  EXPECT_EQ(q.push("a", 1, 0), FairShareQueue::Refusal::none);
  EXPECT_EQ(q.push("a", 2, 0), FairShareQueue::Refusal::none);
  EXPECT_EQ(q.push("a", 3, 0), FairShareQueue::Refusal::tenant_full);
  EXPECT_EQ(q.depth(), 2u);
}

// ------------------------------------------------------ service: stress

TEST(ServiceStress, ConcurrentTenantsExactlyOnceWithinQuota) {
  constexpr int kTenants = 16;
  constexpr int kPerTenant = 66;  // 1056 campaigns total
  RunnerProbe probe;

  ServiceConfig config;
  config.workers = 8;
  config.max_queued_total = 4096;
  config.default_quota = {1.0, 3, 4096};
  for (int t = 0; t < kTenants; ++t) {
    config.tenants["tenant" + std::to_string(t)] =
        TenantQuota{static_cast<double>(t % 4 + 1), 3, 4096};
  }
  config.runner = synthetic_runner(probe);
  BenchService service(std::move(config));

  std::vector<std::thread> submitters;
  std::atomic<int> accepted{0};
  submitters.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    submitters.emplace_back([&service, &accepted, t] {
      for (int i = 0; i < kPerTenant; ++i) {
        CampaignRequest req;
        req.tenant = "tenant" + std::to_string(t);
        req.experiment = "bench" + std::to_string(i % 7) + "/variant";
        req.system = "cts1";
        service.submit(req);
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& s : submitters) s.join();
  EXPECT_EQ(accepted.load(), kTenants * kPerTenant);

  auto statuses = service.wait_all();
  ASSERT_EQ(statuses.size(), static_cast<std::size_t>(kTenants * kPerTenant));

  // Exactly-once: every ticket executed once, none twice, none dropped.
  std::lock_guard<std::mutex> lock(probe.mu);
  EXPECT_EQ(probe.executions.size(),
            static_cast<std::size_t>(kTenants * kPerTenant));
  for (const auto& [ticket, runs] : probe.executions) {
    EXPECT_EQ(runs, 1) << "ticket " << ticket;
  }
  // Quotas: per-tenant in-flight never exceeded its cap, service-wide
  // concurrency never exceeded the worker pool.
  for (const auto& [tenant, peak] : probe.tenant_in_flight_max) {
    EXPECT_LE(peak, 3) << tenant;
  }
  EXPECT_LE(probe.in_flight_max, 8);

  // Every ticket completed, with a distinct admission sequence number.
  std::set<std::uint64_t> seqs;
  for (const auto& st : statuses) {
    EXPECT_EQ(st.state, TicketState::completed) << "ticket " << st.id;
    EXPECT_GE(st.admission_wait_seconds, 0.0);
    seqs.insert(st.admit_seq);
  }
  EXPECT_EQ(seqs.size(), statuses.size());

  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTenants *
                                                        kPerTenant));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(ServiceStress, ConcurrentResultsMatchSerialSubmission) {
  // The synthetic outcome is a pure function of the request, so the
  // (tenant, experiment, outcome) multiset from a 16-thread submission
  // must equal the one from submitting the same requests serially.
  using Row = std::tuple<std::string, std::string, std::size_t>;
  auto run = [](bool concurrent) {
    RunnerProbe probe;
    ServiceConfig config;
    config.workers = concurrent ? 6 : 1;
    config.max_queued_total = 4096;
    config.default_quota = {1.0, 2, 4096};
    config.runner = synthetic_runner(probe);
    BenchService service(std::move(config));

    constexpr int kTenants = 8;
    constexpr int kPerTenant = 32;
    auto submit_tenant = [&service](int t) {
      for (int i = 0; i < kPerTenant; ++i) {
        CampaignRequest req;
        req.tenant = "t" + std::to_string(t);
        req.experiment = "exp" + std::to_string((t * 7 + i) % 5) + "/v";
        req.system = "cts1";
        service.submit(req);
      }
    };
    if (concurrent) {
      std::vector<std::thread> threads;
      for (int t = 0; t < kTenants; ++t) {
        threads.emplace_back(submit_tenant, t);
      }
      for (auto& th : threads) th.join();
    } else {
      for (int t = 0; t < kTenants; ++t) submit_tenant(t);
    }
    std::vector<Row> rows;
    for (const auto& st : service.wait_all()) {
      EXPECT_EQ(st.state, TicketState::completed);
      rows.emplace_back(st.tenant, st.experiment, st.succeeded);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  EXPECT_EQ(run(/*concurrent=*/true), run(/*concurrent=*/false));
}

// ------------------------------------------------- service: backpressure

TEST(ServiceBackpressure, TenantAndGlobalBoundsRejectWithRetryAfter) {
  RunnerProbe probe;
  ServiceConfig config;
  config.workers = 1;
  config.start_paused = true;  // freeze dispatch: queue states are exact
  config.max_queued_total = 3;
  config.tenants["a"] = TenantQuota{1.0, 4, 2};
  config.runner = synthetic_runner(probe);
  BenchService service(std::move(config));

  auto req = [](const std::string& tenant) {
    CampaignRequest r;
    r.tenant = tenant;
    r.experiment = "exp/v";
    r.system = "cts1";
    return r;
  };
  service.submit(req("a"));
  service.submit(req("a"));
  try {
    service.submit(req("a"));  // tenant queue bound (2)
    FAIL() << "expected ServiceBusy";
  } catch (const ServiceBusy& e) {
    EXPECT_GT(e.retry_after_seconds, 0.0);
    EXPECT_NE(std::string(e.what()).find("tenant queue is full"),
              std::string::npos)
        << e.what();
  }
  service.submit(req("b"));  // depth now 3 == global bound
  try {
    service.submit(req("b"));
    FAIL() << "expected ServiceBusy";
  } catch (const ServiceBusy& e) {
    EXPECT_NE(std::string(e.what()).find("service queue is full"),
              std::string::npos)
        << e.what();
  }

  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.queue_depth, 3u);

  // wait_all resumes the paused dispatch and runs the accepted backlog.
  auto statuses = service.wait_all();
  ASSERT_EQ(statuses.size(), 3u);
  for (const auto& st : statuses) {
    EXPECT_EQ(st.state, TicketState::completed);
  }
}

TEST(ServiceBackpressure, SeededAdmitFaultsRejectDeterministically) {
  // The "serve.admit" fault key is the tenant's submission ordinal, so a
  // seeded probabilistic plan rejects the same submissions on every run.
  support::ScopedFaultPlan guard;
  auto run_once = [] {
    auto& plan = support::FaultPlan::global();
    plan.clear();
    plan.set_seed(42);
    support::FaultRule rule;
    rule.site = "serve.admit";
    rule.probability = 0.35;
    plan.add_rule(rule);

    RunnerProbe probe;
    ServiceConfig config;
    config.workers = 1;
    config.start_paused = true;
    config.max_queued_total = 4096;
    config.default_quota = {1.0, 4, 4096};
    config.runner = synthetic_runner(probe);
    BenchService service(std::move(config));

    std::vector<int> rejected;
    for (int i = 0; i < 100; ++i) {
      CampaignRequest req;
      req.tenant = "t" + std::to_string(i % 4);
      req.experiment = "exp/v";
      req.system = "cts1";
      try {
        service.submit(req);
      } catch (const ServiceBusy&) {
        rejected.push_back(i);
      }
    }
    support::FaultPlan::global().clear();
    service.wait_all();
    return rejected;
  };

  auto first = run_once();
  auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 100u);  // the plan rejects some, not all
}

TEST(ServicePriority, HigherPriorityDispatchesFirstWithinTenant) {
  RunnerProbe probe;
  ServiceConfig config;
  config.workers = 1;
  config.start_paused = true;
  config.runner = synthetic_runner(probe);
  BenchService service(std::move(config));

  CampaignRequest req;
  req.tenant = "a";
  req.experiment = "exp/v";
  req.system = "cts1";
  req.priority = 0;
  TicketId low1 = service.submit(req);
  req.priority = 5;
  TicketId high = service.submit(req);
  req.priority = 0;
  TicketId low2 = service.submit(req);

  service.wait_all();
  auto hi = service.status(high);
  auto lo1 = service.status(low1);
  auto lo2 = service.status(low2);
  EXPECT_LT(hi.admit_seq, lo1.admit_seq);
  EXPECT_LT(lo1.admit_seq, lo2.admit_seq);
}

// ----------------------------------------------- service: dispatch faults

TEST(ServiceFaults, TransientDispatchFaultRetriesThenCompletes) {
  support::ScopedFaultPlan guard;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "serve.dispatch";
  rule.key = "t1";
  rule.nth = 1;  // first attempt fails, second is clean
  plan.add_rule(rule);

  RunnerProbe probe;
  ServiceConfig config;
  config.runner = synthetic_runner(probe);
  BenchService service(std::move(config));
  TicketId id = service.submit({"a", "exp/v", "cts1"});
  auto st = service.wait(id);
  EXPECT_EQ(st.state, TicketState::completed);
  EXPECT_EQ(st.attempts, 2);
}

TEST(ServiceFaults, ExhaustedDispatchRetriesParkInterrupted) {
  support::ScopedFaultPlan guard;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "serve.dispatch";
  rule.key = "t1";
  rule.nth = 1;
  rule.count = 10;  // every attempt fails
  plan.add_rule(rule);

  RunnerProbe probe;
  ServiceConfig config;
  config.max_dispatch_retries = 2;
  config.runner = synthetic_runner(probe);
  BenchService service(std::move(config));
  TicketId id = service.submit({"a", "exp/v", "cts1"});
  auto st = service.wait(id);
  EXPECT_EQ(st.state, TicketState::interrupted);
  EXPECT_EQ(st.attempts, 3);  // 1 + max_dispatch_retries
  EXPECT_EQ(service.stats().interrupted, 1u);
  // The campaign never ran: the fault killed dispatch before the runner.
  std::lock_guard<std::mutex> lock(probe.mu);
  EXPECT_TRUE(probe.executions.empty());
}

// ------------------------------------------------------- service: drain

TEST(ServiceDrain, FinishesAcceptedWorkThenRefusesNew) {
  RunnerProbe probe;
  ServiceConfig config;
  config.workers = 2;
  config.default_quota = {1.0, 2, 256};
  config.runner = synthetic_runner(probe, /*sleep_us=*/200);
  BenchService service(std::move(config));

  for (int i = 0; i < 20; ++i) {
    CampaignRequest req;
    req.tenant = "t" + std::to_string(i % 4);
    req.experiment = "exp/v";
    req.system = "cts1";
    service.submit(req);
  }
  EXPECT_TRUE(service.accepting());
  service.drain();
  EXPECT_FALSE(service.accepting());

  // Every accepted ticket reached a terminal state.
  auto statuses = service.tickets();
  ASSERT_EQ(statuses.size(), 20u);
  for (const auto& st : statuses) {
    EXPECT_EQ(st.state, TicketState::completed) << "ticket " << st.id;
  }
  EXPECT_THROW(service.submit({"t0", "exp/v", "cts1"}), ServiceBusy);
  EXPECT_EQ(service.stats().completed, 20u);
}

// ------------------------------------------- service: real-driver runs

TEST(ServiceDriver, EndToEndCampaignWarmStartsTenantStore) {
  support::TempDir base;
  ServiceConfig config;
  config.base_dir = base.path();
  config.workers = 2;
  config.run.threads = 2;
  BenchService service(std::move(config));

  TicketId cold = service.submit({"llnl", "saxpy/openmp", "cts1"});
  auto cold_st = service.wait(cold);
  ASSERT_EQ(cold_st.state, TicketState::completed);
  EXPECT_EQ(cold_st.experiments, 8u);
  EXPECT_EQ(cold_st.succeeded, 8u);
  EXPECT_EQ(cold_st.store_hits, 0u);
  EXPECT_EQ(cold_st.store_misses, 8u);

  // Same tenant, same campaign: the per-tenant store makes it all hits.
  TicketId warm = service.submit({"llnl", "saxpy/openmp", "cts1"});
  auto warm_st = service.wait(warm);
  ASSERT_EQ(warm_st.state, TicketState::completed);
  EXPECT_EQ(warm_st.store_hits, 8u);
  EXPECT_EQ(warm_st.store_misses, 0u);

  EXPECT_TRUE(fs::exists(BenchService::tenant_root(base.path(), "llnl") /
                         "store"));
}

TEST(ServiceDriver, TenantsAreIsolated) {
  support::TempDir base;
  ServiceConfig config;
  config.base_dir = base.path();
  config.workers = 2;
  config.run.threads = 2;
  BenchService service(std::move(config));

  TicketId alice = service.submit({"alice", "saxpy/openmp", "cts1"});
  ASSERT_EQ(service.wait(alice).state, TicketState::completed);
  // Bob's first campaign sees a cold store: Alice's results never leak
  // across the tenant boundary.
  TicketId bob = service.submit({"bob", "saxpy/openmp", "cts1"});
  auto bob_st = service.wait(bob);
  ASSERT_EQ(bob_st.state, TicketState::completed);
  EXPECT_EQ(bob_st.store_hits, 0u);
  EXPECT_EQ(bob_st.store_misses, 8u);

  EXPECT_TRUE(fs::exists(base.path() / "tenants" / "alice" / "store"));
  EXPECT_TRUE(fs::exists(base.path() / "tenants" / "bob" / "store"));
  EXPECT_TRUE(fs::exists(base.path() / "tenants" / "alice" / "campaigns"));
  EXPECT_TRUE(fs::exists(base.path() / "tenants" / "bob" / "campaigns"));
}

TEST(ServiceDriver, InvalidRequestsRejectAtSubmitTime) {
  support::TempDir base;
  ServiceConfig config;
  config.base_dir = base.path();
  BenchService service(std::move(config));
  // Unknown experiment / system: plain Error, not ServiceBusy — the
  // request is wrong, not the service busy.
  EXPECT_THROW(service.submit({"llnl", "nope/nope", "cts1"}), Error);
  EXPECT_THROW(service.submit({"llnl", "saxpy/openmp", "atlantis"}), Error);
  EXPECT_THROW(service.submit({"../evil", "saxpy/openmp", "cts1"}), Error);
  EXPECT_EQ(service.stats().rejected, 0u);  // invalid != backpressure
}

// ------------------------------------- service: restart & crash recovery

TEST(ServiceRestart, ReplayedCampaignReExecutesNothing) {
  support::TempDir base;
  support::ScopedFaultPlan guard;
  TicketId killed = 0;
  {
    // A permanent "serve.dispatch" fault on ticket 2 models the worker
    // node dying with the campaign on it.
    auto& plan = support::FaultPlan::global();
    plan.clear();
    support::FaultRule rule;
    rule.site = "serve.dispatch";
    rule.key = "t2";
    rule.nth = 1;
    rule.count = 100;
    rule.kind = support::FaultKind::permanent;
    plan.add_rule(rule);

    ServiceConfig config;
    config.base_dir = base.path();
    config.workers = 1;
    config.run.threads = 2;
    BenchService first(std::move(config));
    TicketId ok = first.submit({"llnl", "saxpy/openmp", "cts1"});
    killed = first.submit({"llnl", "saxpy/openmp", "cts1"});
    EXPECT_EQ(first.wait(ok).state, TicketState::completed);
    EXPECT_EQ(first.wait(killed).state, TicketState::interrupted);
    first.drain();
  }
  support::FaultPlan::global().clear();

  ServiceConfig config;
  config.base_dir = base.path();
  config.workers = 1;
  config.run.threads = 2;
  BenchService second(std::move(config));
  EXPECT_EQ(second.stats().replayed, 1u);
  auto statuses = second.wait_all();
  ASSERT_EQ(statuses.size(), 1u);
  const auto& replayed = statuses.front();
  EXPECT_EQ(replayed.id, killed);
  EXPECT_TRUE(replayed.replayed);
  EXPECT_EQ(replayed.state, TicketState::completed);
  // Zero re-executed experiments: the pre-crash campaign's results are
  // all in the tenant store, so the replay is pure restore.
  EXPECT_EQ(replayed.store_hits, 8u);
  EXPECT_EQ(replayed.store_misses, 0u);

  // Byte-identical outputs between the pre-crash campaign and the
  // replayed one, from different workspace directories.
  auto campaigns = BenchService::tenant_root(base.path(), "llnl") /
                   "campaigns";
  auto original = out_files(campaigns / "t1");
  auto restored = out_files(campaigns / ("t" + std::to_string(killed)));
  ASSERT_FALSE(original.empty());
  EXPECT_EQ(original, restored);

  // A third incarnation finds a fully-settled journal.
  second.drain();
}

TEST(ServiceRestart, CrashStopReplaysDurableQueuedTickets) {
  support::TempDir base;
  RunnerProbe before;
  std::vector<TicketId> submitted;
  {
    ServiceConfig config;
    config.base_dir = base.path();
    config.workers = 2;
    config.start_paused = true;  // nothing dispatches before the crash
    config.durable_submits = true;
    config.runner = synthetic_runner(before);
    BenchService service(std::move(config));
    for (int i = 0; i < 10; ++i) {
      CampaignRequest req;
      req.tenant = (i % 2 == 0) ? "even" : "odd";
      req.experiment = "exp" + std::to_string(i) + "/v";
      req.system = "cts1";
      submitted.push_back(service.submit(req));
    }
    service.crash_stop();
    EXPECT_FALSE(service.accepting());
    EXPECT_THROW(service.submit({"even", "exp/v", "cts1"}), ServiceBusy);
  }
  {
    std::lock_guard<std::mutex> lock(before.mu);
    EXPECT_TRUE(before.executions.empty());
  }

  RunnerProbe after;
  ServiceConfig config;
  config.base_dir = base.path();
  config.workers = 2;
  config.runner = synthetic_runner(after);
  BenchService revived(std::move(config));
  EXPECT_EQ(revived.stats().replayed, 10u);
  auto statuses = revived.wait_all();
  ASSERT_EQ(statuses.size(), 10u);
  std::set<TicketId> seen;
  for (const auto& st : statuses) {
    EXPECT_TRUE(st.replayed);
    EXPECT_EQ(st.state, TicketState::completed) << "ticket " << st.id;
    seen.insert(st.id);
  }
  EXPECT_EQ(seen, std::set<TicketId>(submitted.begin(), submitted.end()));
  std::lock_guard<std::mutex> lock(after.mu);
  EXPECT_EQ(after.executions.size(), 10u);
  for (const auto& [ticket, runs] : after.executions) {
    EXPECT_EQ(runs, 1) << "ticket " << ticket;
  }
}

// -------------------------------------------------- service: observability

TEST(ServiceObs, CountersAndSpans) {
  auto& collector = obs::TraceCollector::global();
  collector.reset();
  collector.set_enabled(true);
  {
    RunnerProbe probe;
    ServiceConfig config;
    config.workers = 2;
    config.runner = synthetic_runner(probe);
    BenchService service(std::move(config));
    for (int i = 0; i < 5; ++i) {
      CampaignRequest req;
      req.tenant = "obs";
      req.experiment = "exp/v";
      req.system = "cts1";
      service.submit(req);
    }
    service.drain();
  }
  auto trace = collector.snapshot();
  collector.set_enabled(false);
  collector.reset();

  EXPECT_EQ(trace.counters.at("serve.submitted"), 5);
  EXPECT_EQ(trace.counters.at("serve.dispatched"), 5);
  EXPECT_EQ(trace.counters.at("serve.completed"), 5);
  EXPECT_EQ(trace.counters.at("serve.tenant.obs.completed"), 5);
  EXPECT_GE(trace.counters.at("serve.drains"), 1);  // dtor drains again
  EXPECT_TRUE(trace.counters.count("serve.admission_wait_us"));
  EXPECT_EQ(trace.count_named("serve.submit"), 5u);
  EXPECT_EQ(trace.count_named("serve.dispatch"), 5u);
  EXPECT_TRUE(trace.gauges.count("serve.queue_depth"));
}
