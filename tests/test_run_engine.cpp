// Parallel experiment-run engine tests: TemplateCache counter exactness
// under concurrent expansion, run_with_retry attempt accounting through
// the "experiment.exec" fault site, serial-vs-parallel byte parity of
// Workspace::run_all (clean and under a fault plan), and the parallel
// analysis/ingestion helpers. This suite carries the "threads" label so
// the TSAN CI job races the cache and the run engine for real.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/fom.hpp"
#include "src/analysis/ingest.hpp"
#include "src/ramble/expansion.hpp"
#include "src/ramble/workspace.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace analysis = benchpark::analysis;
namespace ramble = benchpark::ramble;
namespace runtime = benchpark::runtime;
namespace support = benchpark::support;
namespace sys = benchpark::system;
using ramble::VariableMap;

namespace {

/// Reset the process-wide template cache (stats and entries) and restore
/// the unlimited default capacity when the test ends.
class ScopedTemplateCache {
public:
  ScopedTemplateCache() { ramble::TemplateCache::global().clear(); }
  ~ScopedTemplateCache() {
    auto& cache = ramble::TemplateCache::global();
    cache.set_capacity(0);
    cache.clear();
  }
  ScopedTemplateCache(const ScopedTemplateCache&) = delete;
  ScopedTemplateCache& operator=(const ScopedTemplateCache&) = delete;
};

const char* kSaxpyRambleYaml =
    "ramble:\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          env_vars:\n"
    "            set:\n"
    "              OMP_NUM_THREADS: '{n_threads}'\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "            batch_time: '120'\n"
    "          experiments:\n"
    "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
    "              variables:\n"
    "                processes_per_node: ['8', '4']\n"
    "                n_nodes: ['1', '2']\n"
    "                n_threads: ['2', '4']\n"
    "                n: ['512', '1024']\n"
    "              matrices:\n"
    "              - size_threads:\n"
    "                - n\n"
    "                - n_threads\n"
    "  spack:\n"
    "    packages:\n"
    "      gcc1211:\n"
    "        spack_spec: gcc@12.1.1\n"
    "      default-mpi:\n"
    "        spack_spec: mvapich2@2.3.7\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "        compiler: gcc1211\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - default-mpi\n"
    "        - saxpy\n";

ramble::Workspace make_saxpy_workspace(const support::TempDir& tmp) {
  auto system = sys::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(tmp.path() / "workspace", system);
  ws.configure(benchpark::yaml::parse(kSaxpyRambleYaml));
  return ws;
}

std::filesystem::path out_path(const ramble::Workspace& ws,
                               const ramble::PreparedExperiment& exp) {
  return ws.root() / "experiments" / exp.app / exp.workload / exp.name /
         (exp.name + ".out");
}

void expect_reports_equal(const ramble::RunReport& a,
                          const ramble::RunReport& b) {
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.total_attempts, b.total_attempts);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_DOUBLE_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_DOUBLE_EQ(a.total_simulated_seconds, b.total_simulated_seconds);
  // The hit/miss split may shift under concurrent first lookups (two
  // threads can both miss the same fresh key), but every lookup counts
  // exactly once.
  EXPECT_EQ(a.template_cache_hits + a.template_cache_misses,
            b.template_cache_hits + b.template_cache_misses);
}

}  // namespace

// --------------------------------------------------------- TemplateCache

TEST(TemplateCache, CountersExactUnderConcurrentExpansion) {
  ScopedTemplateCache scope;
  auto& cache = ramble::TemplateCache::global();

  // 8 distinct templates over one shared variable value: every expand()
  // performs exactly 2 cache lookups (the template and the value "4").
  std::vector<std::string> templates;
  for (int i = 0; i < 8; ++i) {
    templates.push_back("t" + std::to_string(i) + " -n {n}");
  }
  const VariableMap vars{{"n", "4"}};

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto& text = templates[(t + round) % templates.size()];
        auto expanded = ramble::expand(text, vars);
        EXPECT_EQ(expanded, text.substr(0, 2) + " -n 4");
      }
    });
  }
  for (auto& w : workers) w.join();

  auto stats = cache.stats();
  // Lookup accounting is exact: one hit or miss per get(), nothing
  // double-counted even when 8 threads race the same shard.
  EXPECT_EQ(stats.lookups(),
            static_cast<std::size_t>(kThreads) * kRounds * 2);
  // 9 unique keys (8 templates + the value "4"). Concurrent first
  // lookups may each record a miss before either inserts.
  EXPECT_GE(stats.misses, 9u);
  EXPECT_LE(stats.misses, static_cast<std::size_t>(kThreads) * 9u);
  EXPECT_GE(stats.inserts, 9u);
  EXPECT_EQ(cache.size(), 9u);
  EXPECT_EQ(stats.evictions, 0u);

  // A warm serial pass over every template is all hits: 16 lookups, no
  // new misses.
  for (const auto& text : templates) (void)ramble::expand(text, vars);
  auto warm = cache.stats();
  EXPECT_EQ(warm.misses, stats.misses);
  EXPECT_EQ(warm.hits, stats.hits + 16u);
}

TEST(TemplateCache, EvictsOldestWhenOverCapacity) {
  ScopedTemplateCache scope;
  auto& cache = ramble::TemplateCache::global();
  cache.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    (void)cache.get("evict-" + std::to_string(i) + " {x" +
                    std::to_string(i) + "}");
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  // The oldest template rolled off: looking it up again is a fresh miss.
  auto before = cache.stats();
  (void)cache.get("evict-0 {x0}");
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(TemplateCache, ExpandUncachedBypassesTheCache) {
  ScopedTemplateCache scope;
  auto& cache = ramble::TemplateCache::global();
  const VariableMap vars{{"n", "{m}*2"}, {"m", "3"}};
  auto before = cache.stats();
  EXPECT_EQ(ramble::expand_uncached("a {n}", vars), "a 6");
  auto after = cache.stats();
  EXPECT_EQ(after.lookups(), before.lookups());
  EXPECT_EQ(cache.size(), 0u);
  // Cached and uncached paths agree on the result.
  EXPECT_EQ(ramble::expand("a {n}", vars), "a 6");
  EXPECT_GT(cache.stats().lookups(), after.lookups());
}

// --------------------------------------------------------- run_with_retry

TEST(RunWithRetry, TransientFaultRetriesWithDeterministicBackoff) {
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "experiment.exec";
  rule.nth = 1;  // first attempt of every experiment fails transiently
  plan.add_rule(rule);

  int calls = 0;
  auto run_once = [&] {
    ++calls;
    runtime::RunOutcome outcome;
    outcome.success = true;
    outcome.elapsed_seconds = 1.0;
    outcome.output = "ok\n";
    return outcome;
  };
  auto result = runtime::run_with_retry(run_once, "exp-a");
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(calls, 1);  // attempt 1 failed before reaching run_once
  EXPECT_TRUE(result.outcome.success);
  // Attempt 1's wait: base * 2^0 plus non-negative jitter.
  EXPECT_GE(result.retry_wait_seconds, 0.25);

  // The wait is a pure function of (seed, key, attempt): re-running
  // reproduces it bit for bit, and a different key changes it.
  auto again = runtime::run_with_retry(run_once, "exp-a");
  EXPECT_DOUBLE_EQ(again.retry_wait_seconds, result.retry_wait_seconds);
  auto other = runtime::run_with_retry(run_once, "exp-b");
  EXPECT_NE(other.retry_wait_seconds, result.retry_wait_seconds);
}

TEST(RunWithRetry, ExhaustedTransientBudgetSurfacesTempfail) {
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "experiment.exec";
  rule.nth = 1;
  rule.count = 99;
  plan.add_rule(rule);

  int calls = 0;
  auto result = runtime::run_with_retry(
      [&] {
        ++calls;
        return runtime::RunOutcome{};
      },
      "doomed");
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(result.attempts, 3);  // 1 + default max_retries
  EXPECT_FALSE(result.outcome.success);
  EXPECT_EQ(result.outcome.exit_code, 75);  // EX_TEMPFAIL
}

TEST(RunWithRetry, PermanentFaultFailsImmediately) {
  support::ScopedFaultPlan scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "experiment.exec";
  rule.nth = 1;
  rule.kind = support::FaultKind::permanent;
  plan.add_rule(rule);

  int calls = 0;
  auto result = runtime::run_with_retry(
      [&] {
        ++calls;
        return runtime::RunOutcome{};
      },
      "hard-fail");
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(result.outcome.success);
  EXPECT_EQ(result.outcome.exit_code, 70);  // EX_SOFTWARE
  EXPECT_DOUBLE_EQ(result.retry_wait_seconds, 0.0);
}

TEST(RunWithRetry, TransientOutcomeExitCodeIsRetried) {
  support::ScopedFaultPlan scope;
  support::FaultPlan::global().clear();

  // The job itself reports EX_TEMPFAIL once, then succeeds.
  int calls = 0;
  auto flaky = [&] {
    runtime::RunOutcome outcome;
    if (++calls == 1) {
      outcome.exit_code = 75;
      outcome.output = "node drained\n";
      return outcome;
    }
    outcome.success = true;
    outcome.output = "ok\n";
    return outcome;
  };
  auto result = runtime::run_with_retry(flaky, "flaky");
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(result.outcome.success);
  EXPECT_GT(result.retry_wait_seconds, 0.0);

  // A permanently tempfailing job exhausts the budget.
  auto always_tempfail = [] {
    runtime::RunOutcome outcome;
    outcome.exit_code = 75;
    return outcome;
  };
  auto exhausted = runtime::run_with_retry(always_tempfail, "flaky");
  EXPECT_EQ(exhausted.attempts, 3);
  EXPECT_EQ(exhausted.outcome.exit_code, 75);
}

// -------------------------------------------------- run_all byte parity

TEST(RunEngine, ParallelRunAllMatchesSerialByteForByte) {
  ScopedTemplateCache cache_scope;
  support::TempDir tmp_serial;
  support::TempDir tmp_parallel;
  auto ws_serial = make_saxpy_workspace(tmp_serial);
  auto ws_parallel = make_saxpy_workspace(tmp_parallel);
  ws_serial.setup();
  ws_parallel.setup();

  ramble::TemplateCache::global().clear();
  auto serial = ws_serial.run_all(ramble::RunRequest{.threads = 1});
  ramble::TemplateCache::global().clear();
  auto parallel = ws_parallel.run_all(ramble::RunRequest{.threads = 8});

  EXPECT_EQ(serial.experiments, 8u);
  EXPECT_EQ(serial.succeeded, 8u);
  EXPECT_EQ(serial.total_attempts, 8u);
  expect_reports_equal(serial, parallel);

  ASSERT_EQ(ws_serial.prepared().size(), ws_parallel.prepared().size());
  for (std::size_t i = 0; i < ws_serial.prepared().size(); ++i) {
    const auto& exp_s = ws_serial.prepared()[i];
    const auto& exp_p = ws_parallel.prepared()[i];
    EXPECT_EQ(exp_s.name, exp_p.name);
    EXPECT_EQ(support::read_file(out_path(ws_serial, exp_s)),
              support::read_file(out_path(ws_parallel, exp_p)))
        << exp_s.name;
  }

  // FOM tables render identically whichever width analyzed them.
  auto table_serial =
      ws_serial.analyze(ramble::RunRequest{.threads = 1}).to_table().render();
  auto table_parallel = ws_parallel.analyze(ramble::RunRequest{.threads = 8})
                            .to_table()
                            .render();
  EXPECT_EQ(table_serial, table_parallel);
  EXPECT_NE(table_serial.find("SUCCESS"), std::string::npos);
}

TEST(RunEngine, ParallelMatchesSerialUnderFaultPlan) {
  ScopedTemplateCache cache_scope;
  support::ScopedFaultPlan fault_scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "experiment.exec";
  rule.nth = 1;  // every experiment's first attempt fails transiently
  plan.add_rule(rule);

  support::TempDir tmp_serial;
  support::TempDir tmp_parallel;
  auto ws_serial = make_saxpy_workspace(tmp_serial);
  auto ws_parallel = make_saxpy_workspace(tmp_parallel);
  ws_serial.setup();
  ws_parallel.setup();

  auto serial = ws_serial.run_all(ramble::RunRequest{.threads = 1});
  auto parallel = ws_parallel.run_all(ramble::RunRequest{.threads = 8});

  EXPECT_EQ(serial.experiments, 8u);
  EXPECT_EQ(serial.retried, 8u);
  EXPECT_EQ(serial.total_attempts, 16u);
  EXPECT_EQ(serial.succeeded, 8u);
  EXPECT_GT(serial.retry_wait_seconds, 0.0);
  expect_reports_equal(serial, parallel);

  for (std::size_t i = 0; i < ws_serial.prepared().size(); ++i) {
    EXPECT_EQ(
        support::read_file(out_path(ws_serial, ws_serial.prepared()[i])),
        support::read_file(out_path(ws_parallel, ws_parallel.prepared()[i])));
  }
  EXPECT_EQ(
      ws_serial.analyze(ramble::RunRequest{.threads = 1}).to_table().render(),
      ws_parallel.analyze(ramble::RunRequest{.threads = 8})
          .to_table()
          .render());
}

TEST(RunEngine, PermanentFaultCrashesOneExperiment) {
  ScopedTemplateCache cache_scope;
  support::ScopedFaultPlan fault_scope;
  auto& plan = support::FaultPlan::global();
  plan.clear();
  support::FaultRule rule;
  rule.site = "experiment.exec";
  rule.key = "saxpy_512_1_8_2";  // exactly one of the eight experiments
  rule.nth = 1;
  rule.kind = support::FaultKind::permanent;
  plan.add_rule(rule);

  support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  ws.setup();
  auto report = ws.run_all(ramble::RunRequest{.threads = 4});
  EXPECT_EQ(report.experiments, 8u);
  EXPECT_EQ(report.succeeded, 7u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.retried, 0u);  // permanent faults are not retried
  EXPECT_EQ(report.total_attempts, 8u);

  auto analyzed = ws.analyze(ramble::RunRequest{.threads = 4});
  EXPECT_EQ(analyzed.num_success(), 7u);
  for (const auto& result : analyzed.results) {
    if (result.name == "saxpy_512_1_8_2") {
      EXPECT_FALSE(result.success);
      EXPECT_EQ(result.output.find("Kernel done"), std::string::npos);
    } else {
      EXPECT_TRUE(result.success) << result.name;
    }
  }
}

TEST(RunEngine, RunAllRequiresSetup) {
  support::TempDir tmp;
  auto ws = make_saxpy_workspace(tmp);
  EXPECT_THROW(ws.run_all(), benchpark::ExperimentError);
}

// ---------------------------------------------------- parallel analysis

TEST(Analysis, ExtractFomsBatchMatchesSerialAtAnyWidth) {
  std::vector<analysis::FomSpec> specs{
      {"elapsed", "elapsed ([0-9.]+)s", "", "s"},
      {"status", "Kernel (done)", "", ""}};
  std::vector<analysis::SuccessCriterion> criteria{{"pass", "Kernel done"}};

  std::vector<std::string> outputs;
  for (int i = 0; i < 7; ++i) {
    outputs.push_back("elapsed " + std::to_string(i) + ".5s\nKernel done\n");
  }
  outputs.push_back("crashed before printing anything\n");

  std::vector<analysis::FomExtractTask> tasks;
  for (const auto& output : outputs) {
    tasks.push_back({&specs, &criteria, &output});
  }
  tasks.push_back({&specs, &criteria, nullptr});  // never ran

  auto serial = analysis::extract_foms_batch(tasks, 1);
  auto parallel = analysis::extract_foms_batch(tasks, 8);
  ASSERT_EQ(serial.size(), tasks.size());
  ASSERT_EQ(parallel.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(serial[i].extracted, parallel[i].extracted) << i;
    EXPECT_EQ(serial[i].success, parallel[i].success) << i;
    ASSERT_EQ(serial[i].foms.size(), parallel[i].foms.size()) << i;
    for (std::size_t j = 0; j < serial[i].foms.size(); ++j) {
      EXPECT_EQ(serial[i].foms[j].name, parallel[i].foms[j].name);
      EXPECT_EQ(serial[i].foms[j].raw, parallel[i].foms[j].raw);
    }
  }
  EXPECT_TRUE(serial[0].extracted);
  EXPECT_TRUE(serial[0].success);
  ASSERT_EQ(serial[0].foms.size(), 2u);
  EXPECT_DOUBLE_EQ(serial[0].foms[0].value, 0.5);
  EXPECT_TRUE(serial[7].extracted);
  EXPECT_FALSE(serial[7].success);  // ran, but no "Kernel done"
  EXPECT_FALSE(serial.back().extracted);  // null output: never ran
}

// ------------------------------------------------------------- ingestion

namespace {

analysis::ExperimentRecord make_record(const std::string& system,
                                       const std::string& name,
                                       bool success) {
  analysis::ExperimentRecord record;
  record.benchmark = "saxpy";
  record.system = system;
  record.experiment = name;
  record.variables = {{"n", "512"}};
  record.declared_foms = {{"elapsed", "elapsed ([0-9.]+)s", "", "s"},
                          {"bw", "bw ([0-9.]+)", "", "GB/s"}};
  record.success = success;
  if (success) {
    record.foms = {{"elapsed", "1.5", 1.5, true, "s"},
                   {"status", "done", 0, false, ""}};
    record.output =
        "elapsed 1.5s\n"
        "caliper: region profile\n"
        "main 0.500000 s\n"
        "main/kernel 0.300000 s\n"
        "main/mpi 0.100000 s\n";
  }
  return record;
}

}  // namespace

TEST(Ingest, RowsFromRecordsKeepsCampaignSemantics) {
  std::vector<analysis::ExperimentRecord> records{
      make_record("cts1", "ok_1", true),
      make_record("cts1", "crashed_1", false),
      make_record("ats2", "ok_2", true)};

  auto rows = analysis::detail::rows_from_records(records, 1);
  // Success records contribute one row per *numeric* FOM (1 each);
  // the failed record one CRASHED row per *declared* FOM (2).
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].experiment, "ok_1");
  EXPECT_EQ(rows[0].fom_name, "elapsed");
  EXPECT_TRUE(rows[0].success);
  EXPECT_DOUBLE_EQ(rows[0].value, 1.5);
  EXPECT_EQ(rows[1].experiment, "crashed_1");
  EXPECT_EQ(rows[1].fom_name, "elapsed");
  EXPECT_FALSE(rows[1].success);
  EXPECT_EQ(rows[1].units, "s");
  EXPECT_EQ(rows[2].fom_name, "bw");
  EXPECT_FALSE(rows[2].success);
  EXPECT_EQ(rows[3].experiment, "ok_2");

  // Parallel build, identical rows; serial insertion numbers them in
  // record order.
  auto wide = analysis::detail::rows_from_records(records, 8);
  ASSERT_EQ(wide.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(wide[i].experiment, rows[i].experiment) << i;
    EXPECT_EQ(wide[i].fom_name, rows[i].fom_name) << i;
  }
  analysis::MetricsDb db;
  analysis::detail::insert_rows(db, rows);
  EXPECT_EQ(db.size(), rows.size());
}

TEST(Ingest, ProfileFromOutputParsesCaliperSection) {
  auto profile = analysis::detail::profile_from_output(
      "noise line\n"
      "caliper: region profile\n"
      "main 0.500000 s\n"
      "main/kernel 0.300000 s\n"
      "trailing non-profile line\n");
  ASSERT_TRUE(profile.has_value());
  ASSERT_EQ(profile->regions.size(), 2u);
  EXPECT_EQ(profile->regions[0].path, "main");
  EXPECT_DOUBLE_EQ(profile->regions[0].inclusive_seconds, 0.5);
  EXPECT_EQ(profile->regions[1].path, "main/kernel");

  EXPECT_FALSE(analysis::detail::profile_from_output("no marker here").has_value());
  EXPECT_FALSE(
      analysis::detail::profile_from_output("caliper: region profile\n").has_value());
}

TEST(Ingest, ThicketFromRecordsBuildsMetadataColumns) {
  std::vector<analysis::ExperimentRecord> records{
      make_record("cts1", "ok_1", true),
      make_record("cts1", "crashed_1", false),  // no output: no column
      make_record("ats2", "ok_2", true)};
  auto thicket = analysis::detail::thicket_from_records(records, 8);
  EXPECT_EQ(thicket.num_profiles(), 2u);
  auto names = thicket.column_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "cts1/ok_1");
  EXPECT_EQ(names[1], "ats2/ok_2");
  auto value = thicket.value("main/kernel", "cts1/ok_1");
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 0.3);
  // Metadata predicates select by system.
  auto cts1_only = thicket.filter(
      [](const std::map<std::string, std::string>& m) {
        auto it = m.find("system");
        return it != m.end() && it->second == "cts1";
      });
  EXPECT_EQ(cts1_only.num_profiles(), 1u);
}
