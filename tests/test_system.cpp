// Tests for the simulated system registry, performance models, and the
// per-system variables.yaml (Figure 12).
#include <gtest/gtest.h>

#include "src/support/error.hpp"
#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

namespace sys = benchpark::system;
using sys::Collective;
using sys::PerfModel;
using sys::SystemRegistry;

TEST(SystemRegistry, PaperSystemsPresent) {
  const auto& reg = SystemRegistry::instance();
  for (const char* name : {"cts1", "ats2", "ats4", "cloud-cts", "native"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_THROW((void)reg.get("summit"), benchpark::SystemError);
}

TEST(SystemRegistry, Cts1MatchesPaperDescription) {
  const auto& cts1 = SystemRegistry::instance().get("cts1");
  EXPECT_FALSE(cts1.has_gpu());
  EXPECT_EQ(cts1.cpu.microarch, "broadwell");
  EXPECT_EQ(cts1.scheduler, sys::SchedulerKind::slurm);
  EXPECT_EQ(cts1.mpi_launcher, "srun");
  // Figure 4: MKL and mvapich2 externals.
  ASSERT_NE(cts1.config.settings_for("blas"), nullptr);
  EXPECT_FALSE(cts1.config.settings_for("blas")->externals.empty());
  ASSERT_NE(cts1.config.settings_for("mpi"), nullptr);
  EXPECT_EQ(cts1.config.settings_for("mpi")->externals[0].spec.name(),
            "mvapich2");
}

TEST(SystemRegistry, Ats2IsPower9V100Lsf) {
  const auto& ats2 = SystemRegistry::instance().get("ats2");
  ASSERT_TRUE(ats2.has_gpu());
  EXPECT_EQ(ats2.gpu->runtime, "cuda");
  EXPECT_EQ(ats2.cpu.microarch, "power9le");
  EXPECT_EQ(ats2.scheduler, sys::SchedulerKind::lsf);
  EXPECT_EQ(ats2.mpi_launcher, "jsrun");
}

TEST(SystemRegistry, Ats4IsTrentoMi250xFlux) {
  const auto& ats4 = SystemRegistry::instance().get("ats4");
  ASSERT_TRUE(ats4.has_gpu());
  EXPECT_EQ(ats4.gpu->runtime, "rocm");
  EXPECT_EQ(ats4.cpu.microarch, "zen3");
  EXPECT_EQ(ats4.scheduler, sys::SchedulerKind::flux);
}

TEST(SystemRegistry, CloudTwinMissesHardwareFeature) {
  const auto& cloud = SystemRegistry::instance().get("cloud-cts");
  // Section 7.1: similar architecture, one missing feature.
  EXPECT_EQ(cloud.cpu.microarch, "broadwell");
  EXPECT_FALSE(cloud.disabled_features.empty());
  EXPECT_GT(cloud.interconnect.latency_us,
            SystemRegistry::instance().get("cts1").interconnect.latency_us);
}

TEST(SystemDescription, VariablesYamlSlurm) {
  auto vars = sys::make_cts1().variables_yaml();
  // Figure 12 verbatim.
  EXPECT_EQ(vars.path("variables.mpi_command").as_string(),
            "srun -N {n_nodes} -n {n_ranks}");
  EXPECT_EQ(vars.path("variables.batch_submit").as_string(),
            "sbatch {execute_experiment}");
  EXPECT_EQ(vars.path("variables.batch_nodes").as_string(),
            "#SBATCH -N {n_nodes}");
}

TEST(SystemDescription, VariablesYamlPerScheduler) {
  auto lsf = sys::make_ats2().variables_yaml();
  EXPECT_NE(lsf.path("variables.mpi_command").as_string().find("jsrun"),
            std::string::npos);
  EXPECT_NE(lsf.path("variables.batch_nodes").as_string().find("#BSUB"),
            std::string::npos);
  auto flux = sys::make_ats4_ea().variables_yaml();
  EXPECT_NE(flux.path("variables.batch_submit").as_string().find("flux batch"),
            std::string::npos);
}

TEST(PerfModel, RooflineMemoryVsComputeBound) {
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  // saxpy (0.17 flop/byte) is memory bound: doubling flops at fixed bytes
  // changes nothing; doubling bytes doubles time.
  double base = model.cpu_kernel_seconds(2e6, 12e6, 36, 1);
  EXPECT_NEAR(model.cpu_kernel_seconds(4e6, 12e6, 36, 1), base, base * 0.01);
  EXPECT_GT(model.cpu_kernel_seconds(2e6, 24e6, 36, 1), base * 1.8);
  // A compute-heavy kernel is flop-limited.
  double compute_bound = model.cpu_kernel_seconds(1e12, 1e6, 36, 1);
  EXPECT_GT(compute_bound, model.cpu_kernel_seconds(1e10, 1e6, 36, 1));
}

TEST(PerfModel, MoreCoresHelpUntilBandwidthSaturates) {
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  double one_core = model.cpu_kernel_seconds(1e9, 1e9, 1, 1);
  double nine_cores = model.cpu_kernel_seconds(1e9, 1e9, 1, 9);
  double all_cores = model.cpu_kernel_seconds(1e9, 1e9, 1, 36);
  EXPECT_GT(one_core, nine_cores);
  // Memory-bound region: 9 cores already saturate ~1/4 of the cores rule.
  EXPECT_NEAR(nine_cores, all_cores, nine_cores * 0.05);
}

TEST(PerfModel, GpuBeatsCpuOnLargeProblems) {
  auto ats2 = sys::make_ats2();
  PerfModel model(ats2);
  double big_flops = 1e11, big_bytes = 1e10;
  EXPECT_LT(model.gpu_kernel_seconds(big_flops, big_bytes, 4),
            model.cpu_kernel_seconds(big_flops, big_bytes, 4, 10));
}

TEST(PerfModel, GpuLaunchLatencyDominatesTinyKernels) {
  auto ats2 = sys::make_ats2();
  PerfModel model(ats2);
  // Tiny saxpy: CPU wins (the crossover the paper's GPU experiments show).
  double flops = 2.0 * 512, bytes = 12.0 * 512;
  EXPECT_LT(model.cpu_kernel_seconds(flops, bytes, 1, 1),
            model.gpu_kernel_seconds(flops, bytes, 1));
}

TEST(PerfModel, GpuOnCpuOnlySystemThrows) {
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  EXPECT_THROW((void)model.gpu_kernel_seconds(1e9, 1e9, 1),
               benchpark::SystemError);
}

TEST(PerfModel, CollectivesGrowWithRanksAndBytes) {
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  double small = model.collective_seconds(Collective::bcast, 64, 8);
  double more_ranks = model.collective_seconds(Collective::bcast, 1024, 8);
  double more_bytes =
      model.collective_seconds(Collective::bcast, 64, 1 << 20);
  EXPECT_GT(more_ranks, small);
  EXPECT_GT(more_bytes, small);
  EXPECT_LT(model.collective_seconds(Collective::bcast, 1, 8), 1e-6);
}

TEST(PerfModel, BcastHasLinearArrivalTerm) {
  // The term Figure 14's Extra-P fit discovers: at large p the per-rank
  // arrival overhead dominates the log tree.
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  double t1k = model.collective_seconds(Collective::bcast, 1000, 8);
  double t2k = model.collective_seconds(Collective::bcast, 2000, 8);
  double t4k = model.collective_seconds(Collective::bcast, 4000, 8);
  // Successive doublings approach a factor of 2 (linear behavior).
  EXPECT_GT(t2k / t1k, 1.7);
  EXPECT_GT(t4k / t2k, 1.8);
}

TEST(PerfModel, AllreduceCostsMoreThanBcast) {
  auto cts1 = sys::make_cts1();
  PerfModel model(cts1);
  EXPECT_GT(model.collective_seconds(Collective::allreduce, 256, 1024),
            model.collective_seconds(Collective::bcast, 256, 1024));
}

TEST(PerfModel, CloudFabricSlowerThanOmniPath) {
  auto cts1 = sys::make_cts1();
  auto cloud = sys::make_cloud_cts();
  PerfModel on_prem(cts1);
  PerfModel in_cloud(cloud);
  EXPECT_GT(in_cloud.collective_seconds(Collective::bcast, 256, 8),
            on_prem.collective_seconds(Collective::bcast, 256, 8));
}
