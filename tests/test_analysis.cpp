// Analysis-layer tests: FOM extraction (Figure 8 semantics), Extra-P
// model fitting (Figure 14), metrics database, Thicket composition, and
// the Caliper/Adiak substrate they consume.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/extrap.hpp"
#include "src/analysis/fom.hpp"
#include "src/analysis/metrics_db.hpp"
#include "src/analysis/thicket.hpp"
#include "src/perf/caliper.hpp"
#include "src/support/error.hpp"

namespace an = benchpark::analysis;
namespace perf = benchpark::perf;

// -------------------------------------------------------------------- FOM

TEST(Fom, Figure8SuccessRegex) {
  an::FomSpec spec{"success", R"((Kernel done))", "done", ""};
  auto v = an::extract_fom(spec, "stuff\nKernel done\nmore\n");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->raw, "Kernel done");
  EXPECT_FALSE(v->numeric);
}

TEST(Fom, NumericExtraction) {
  an::FomSpec spec{"elapsed", R"(Kernel elapsed: ([0-9.eE+-]+) s)", "t", "s"};
  auto v = an::extract_fom(spec, "Kernel elapsed: 0.00123 s\n");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->numeric);
  EXPECT_DOUBLE_EQ(v->value, 0.00123);
  EXPECT_EQ(v->units, "s");
}

TEST(Fom, MissingReturnsNullopt) {
  an::FomSpec spec{"x", "Nothing like this", "", ""};
  EXPECT_FALSE(an::extract_fom(spec, "output\n").has_value());
}

TEST(Fom, InvalidRegexThrows) {
  an::FomSpec spec{"bad", "([unclosed", "", ""};
  EXPECT_THROW(an::extract_fom(spec, "x"), benchpark::Error);
}

TEST(Fom, ExtractManySkipsMissing) {
  std::vector<an::FomSpec> specs{
      {"a", R"(a=(\d+))", "", ""},
      {"b", R"(b=(\d+))", "", ""},
  };
  auto values = an::extract_foms(specs, "a=5\n");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].name, "a");
  EXPECT_DOUBLE_EQ(values[0].value, 5);
}

TEST(Fom, SuccessCriteriaAllMustMatch) {
  std::vector<an::SuccessCriterion> criteria{{"pass", "Kernel done"},
                                             {"clean", "exit 0"}};
  EXPECT_TRUE(an::evaluate_success(criteria, "Kernel done\nexit 0\n"));
  EXPECT_FALSE(an::evaluate_success(criteria, "Kernel done\n"));
  EXPECT_TRUE(an::evaluate_success({}, "anything"));
}

// ----------------------------------------------------------------- Extra-P

TEST(ExtraP, RecoversLinearModel) {
  // Figure 14's shape: f(p) = -0.64 + 0.0466 p.
  std::vector<an::Measurement> data;
  for (double p : {16, 32, 64, 128, 256, 512, 1024, 2048, 3456}) {
    data.push_back({p, -0.64 + 0.0466 * p});
  }
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.exponent, 1.0, 1e-9);
  EXPECT_EQ(model.log_exponent, 0);
  EXPECT_NEAR(model.coefficient, 0.0466, 1e-6);
  EXPECT_NEAR(model.constant, -0.64, 1e-6);
  EXPECT_GT(model.r_squared, 0.999);
}

TEST(ExtraP, RecoversLogModel) {
  std::vector<an::Measurement> data;
  for (double p : {2, 4, 8, 16, 32, 64, 128, 256}) {
    data.push_back({p, 3.0 + 0.5 * std::log2(p)});
  }
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.exponent, 0.0, 1e-9);
  EXPECT_EQ(model.log_exponent, 1);
  EXPECT_NEAR(model.coefficient, 0.5, 1e-6);
}

TEST(ExtraP, RecoversSqrtModel) {
  std::vector<an::Measurement> data;
  for (double p : {4, 16, 64, 256, 1024}) {
    data.push_back({p, 1.0 + 2.0 * std::sqrt(p)});
  }
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.exponent, 0.5, 1e-9);
  EXPECT_EQ(model.log_exponent, 0);
}

TEST(ExtraP, RecoversPLogPModel) {
  std::vector<an::Measurement> data;
  for (double p : {2, 4, 8, 16, 32, 64, 128}) {
    data.push_back({p, 0.1 * p * std::log2(p)});
  }
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.exponent, 1.0, 1e-9);
  EXPECT_EQ(model.log_exponent, 1);
}

TEST(ExtraP, ConstantModel) {
  std::vector<an::Measurement> data{{1, 5}, {10, 5}, {100, 5}, {1000, 5}};
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.evaluate(50), 5.0, 1e-9);
  EXPECT_EQ(model.complexity(), "O(1)");
}

TEST(ExtraP, ToleratesNoise) {
  std::vector<an::Measurement> data;
  double sign = 1;
  for (double p : {16, 32, 64, 128, 256, 512, 1024, 2048}) {
    sign = -sign;
    data.push_back({p, 2.0 + 0.05 * p * (1.0 + sign * 0.03)});
  }
  auto model = an::fit_scaling_model(data);
  // With correlated noise the winning hypothesis may be a neighboring
  // exponent; what matters is predictive quality over the fit range.
  EXPECT_GE(model.exponent, 0.75);
  EXPECT_LE(model.exponent, 1.25);
  EXPECT_GT(model.r_squared, 0.98);
  for (double p : {100.0, 500.0, 1500.0}) {
    double truth = 2.0 + 0.05 * p;
    EXPECT_NEAR(model.evaluate(p), truth, 0.12 * truth) << p;
  }
}

TEST(ExtraP, MeanAggregationBeforeFit) {
  std::vector<an::Measurement> data{
      {8, 1.0}, {8, 3.0},    // mean 2.0
      {16, 3.0}, {16, 5.0},  // mean 4.0
      {32, 8.0},
  };
  auto agg = an::aggregate_mean(data);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_DOUBLE_EQ(agg[0].value, 2.0);
  EXPECT_DOUBLE_EQ(agg[1].value, 4.0);
}

TEST(ExtraP, TooFewPointsThrows) {
  std::vector<an::Measurement> data{{1, 1}, {2, 2}};
  EXPECT_THROW(an::fit_scaling_model(data), benchpark::Error);
}

TEST(ExtraP, PrintedFormMatchesExtrapStyle) {
  std::vector<an::Measurement> data;
  for (double p : {16, 64, 256, 1024}) data.push_back({p, 2 * p});
  auto model = an::fit_scaling_model(data);
  auto text = model.str();
  EXPECT_NE(text.find("* p^(1)"), std::string::npos) << text;
  EXPECT_EQ(model.complexity(), "O(p^1)");
}

// ------------------------------------------------------------- Caliper

namespace {
void nap_region(const char* name) {
  perf::ScopedRegion region(name);
  // Spin a tiny deterministic amount of work.
  volatile double x = 0;
  for (int i = 0; i < 1000; ++i) x = x + i;
}
}  // namespace

TEST(Caliper, RegionsNestIntoPaths) {
  perf::Caliper::reset();
  {
    perf::ScopedRegion main("main");
    nap_region("solve");
    nap_region("solve");
  }
  auto profile = perf::Caliper::snapshot();
  const auto* solve = profile.find("main/solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->count, 2u);
  const auto* main_region = profile.find("main");
  ASSERT_NE(main_region, nullptr);
  EXPECT_GE(main_region->inclusive_seconds, solve->inclusive_seconds);
}

TEST(Caliper, UnbalancedEndThrows) {
  perf::Caliper::reset();
  perf::Caliper::begin("a");
  EXPECT_THROW(perf::Caliper::end("b"), benchpark::Error);
  perf::Caliper::reset();
}

TEST(Caliper, RecordExternalTimes) {
  perf::Caliper::reset();
  perf::Caliper::record("mpi/MPI_Bcast", 1.5, 1000);
  auto profile = perf::Caliper::snapshot();
  const auto* bcast = profile.find("mpi/MPI_Bcast");
  ASSERT_NE(bcast, nullptr);
  EXPECT_EQ(bcast->count, 1000u);
  EXPECT_DOUBLE_EQ(bcast->inclusive_seconds, 1.5);
}

TEST(Caliper, ProfileYamlRoundTrip) {
  perf::Caliper::reset();
  perf::Adiak::reset();
  perf::Adiak::collect("system", "cts1");
  perf::Adiak::collect("ranks", 64LL);
  perf::Caliper::record("main", 2.0, 1);
  auto profile = perf::Caliper::snapshot();
  auto restored = perf::Profile::from_yaml(profile.to_yaml());
  ASSERT_NE(restored.find("main"), nullptr);
  EXPECT_DOUBLE_EQ(restored.find("main")->inclusive_seconds, 2.0);
  EXPECT_EQ(restored.metadata.at("system"), "cts1");
  EXPECT_EQ(restored.metadata.at("ranks"), "64");
  perf::Caliper::reset();
  perf::Adiak::reset();
}

// -------------------------------------------------------------- MetricsDb

namespace {
an::ResultRow row(const std::string& bench, const std::string& system,
                  const std::string& fom, double value, bool ok = true) {
  an::ResultRow r;
  r.benchmark = bench;
  r.system = system;
  r.experiment = bench + "_exp";
  r.fom_name = fom;
  r.value = value;
  r.success = ok;
  return r;
}
}  // namespace

TEST(MetricsDb, InsertAndQuery) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", "elapsed", 1.0));
  db.insert(row("saxpy", "ats2", "elapsed", 0.5));
  db.insert(row("amg2023", "cts1", "FOM_Solve", 3e6));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.query({.benchmark = "saxpy"}).size(), 2u);
  EXPECT_EQ(db.query({.benchmark = "saxpy", .system = "ats2"}).size(), 1u);
  EXPECT_EQ(db.query({}).size(), 3u);
}

TEST(MetricsDb, AggregateStatistics) {
  an::MetricsDb db;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    db.insert(row("saxpy", "cts1", "elapsed", v));
  }
  auto agg = db.aggregate({.benchmark = "saxpy"});
  EXPECT_EQ(agg.count, 4u);
  EXPECT_DOUBLE_EQ(agg.mean, 2.5);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 4.0);
  EXPECT_NEAR(agg.stddev, std::sqrt(1.25), 1e-12);
}

TEST(MetricsDb, SuccessFilter) {
  an::MetricsDb db;
  db.insert(row("amg2023", "cloud-cts", "elapsed", 0, /*ok=*/false));
  db.insert(row("amg2023", "cts1", "elapsed", 5.0));
  EXPECT_EQ(db.query({.success = false}).size(), 1u);
  EXPECT_EQ(db.query({.success = true}).size(), 1u);
}

TEST(MetricsDb, SeriesTracksInsertionOrder) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", "elapsed", 1.0));
  db.insert(row("saxpy", "cts1", "elapsed", 1.1));
  db.insert(row("saxpy", "cts1", "elapsed", 0.9));
  auto series = db.series({.benchmark = "saxpy"});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_LT(series[0].first, series[1].first);
  EXPECT_DOUBLE_EQ(series[2].second, 0.9);
}

TEST(MetricsDb, DistinctFacets) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", "t", 1));
  db.insert(row("saxpy", "ats2", "t", 1));
  db.insert(row("amg2023", "cts1", "t", 1));
  EXPECT_EQ(db.distinct_systems(),
            (std::vector<std::string>{"ats2", "cts1"}));
  EXPECT_EQ(db.distinct_benchmarks(),
            (std::vector<std::string>{"amg2023", "saxpy"}));
}

TEST(MetricsDb, TableRendering) {
  an::MetricsDb db;
  db.insert(row("saxpy", "cts1", "elapsed", 1.25));
  auto text = db.to_table({}).render();
  EXPECT_NE(text.find("saxpy"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
}

// ---------------------------------------------------------------- Thicket

namespace {
perf::Profile profile_with(const std::string& system, double solve_time) {
  perf::Profile p;
  p.regions.push_back({"main", 1, solve_time * 1.5});
  p.regions.push_back({"main/solve", 10, solve_time});
  p.metadata["system"] = system;
  return p;
}
}  // namespace

TEST(Thicket, ComposeAcrossSystems) {
  an::Thicket t;
  t.add_profile("cts1", profile_with("cts1", 4.0));
  t.add_profile("ats2", profile_with("ats2", 1.0));
  t.add_profile("ats4", profile_with("ats4", 0.5));
  EXPECT_EQ(t.num_profiles(), 3u);
  auto stats = t.stats_for("main/solve");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->present_in, 3u);
  EXPECT_DOUBLE_EQ(stats->min, 0.5);
  EXPECT_DOUBLE_EQ(stats->max, 4.0);
  EXPECT_NEAR(stats->mean, (4.0 + 1.0 + 0.5) / 3, 1e-12);
}

TEST(Thicket, HandlesMissingRegions) {
  an::Thicket t;
  t.add_profile("a", profile_with("cts1", 1.0));
  perf::Profile gpu;
  gpu.regions.push_back({"main/solve_gpu", 1, 0.2});
  gpu.metadata["system"] = "ats2";
  t.add_profile("b", std::move(gpu));
  EXPECT_FALSE(t.value("main/solve_gpu", "a").has_value());
  EXPECT_TRUE(t.value("main/solve_gpu", "b").has_value());
  auto stats = t.stats_for("main/solve_gpu");
  EXPECT_EQ(stats->present_in, 1u);
}

TEST(Thicket, FilterByMetadata) {
  an::Thicket t;
  t.add_profile("cts1", profile_with("cts1", 4.0));
  t.add_profile("ats2", profile_with("ats2", 1.0));
  auto gpu_only = t.filter([](const auto& meta) {
    return meta.at("system") == "ats2";
  });
  EXPECT_EQ(gpu_only.num_profiles(), 1u);
  EXPECT_EQ(gpu_only.column_names(), (std::vector<std::string>{"ats2"}));
}

TEST(Thicket, DuplicateColumnThrows) {
  an::Thicket t;
  t.add_profile("x", profile_with("cts1", 1.0));
  EXPECT_THROW(t.add_profile("x", profile_with("cts1", 2.0)),
               benchpark::Error);
}

TEST(Thicket, TableHasDashForMissing) {
  an::Thicket t;
  t.add_profile("a", profile_with("cts1", 1.0));
  perf::Profile other;
  other.regions.push_back({"other", 1, 0.1});
  t.add_profile("b", std::move(other));
  auto text = t.to_table().render();
  EXPECT_NE(text.find("-"), std::string::npos);
}

TEST(ThicketExtrap, ModelFromProfilesAcrossScales) {
  // The Figure 14 pipeline: profiles at several scales -> Thicket ->
  // Extra-P model of one region.
  an::Thicket t;
  std::vector<an::Measurement> data;
  for (double p : {64, 128, 256, 512, 1024}) {
    perf::Profile prof;
    double bcast_total = -0.6 + 0.047 * p;
    prof.regions.push_back({"mpi/MPI_Bcast", 1000, bcast_total});
    prof.metadata["nprocs"] = std::to_string(static_cast<int>(p));
    t.add_profile("p" + std::to_string(static_cast<int>(p)),
                  std::move(prof));
    data.push_back({p, bcast_total});
  }
  auto model = an::fit_scaling_model(data);
  EXPECT_NEAR(model.exponent, 1.0, 1e-9);
  EXPECT_NEAR(model.coefficient, 0.047, 1e-6);
}
