// Property-based and parameterized suites: invariants that must hold
// across the whole configuration space, not just the paper's examples.
//
//   * the full workflow runs for every compatible (experiment, system)
//     pair in the registries
//   * spec parse/print round-trips and constraint algebra laws
//   * version-constraint algebra (symmetry, subset => intersects)
//   * microarchitecture compatibility is a partial order
//   * scheduler safety (capacity, causality) under random workloads
//   * Extra-P recovers every hypothesis in its search space exactly
//   * YAML round-trips randomly generated documents
//   * collective models are monotone in ranks and bytes
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "src/analysis/extrap.hpp"
#include "src/archspec/microarch.hpp"
#include "src/core/driver.hpp"
#include "src/obs/trace.hpp"
#include "src/support/parallel.hpp"
#include "src/sched/scheduler.hpp"
#include "src/spec/spec.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/rng.hpp"
#include "src/support/string_util.hpp"
#include "src/system/perf_model.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/parser.hpp"

namespace spec = benchpark::spec;
namespace sys = benchpark::system;

// ------------------------------------------------- workflow matrix sweep

struct WorkflowCase {
  const char* benchmark;
  const char* variant;
  const char* system;
  bool expect_all_success;
};

class WorkflowMatrixTest : public ::testing::TestWithParam<WorkflowCase> {};

TEST_P(WorkflowMatrixTest, FullWorkflowBehavesAsExpected) {
  const auto& param = GetParam();
  benchpark::core::Driver driver;
  benchpark::support::TempDir tmp("wf-matrix");
  auto report = driver.run_workflow({param.benchmark, param.variant},
                                    param.system, tmp.path() / "ws");
  ASSERT_GT(report.results.size(), 0u);
  if (param.expect_all_success) {
    EXPECT_EQ(report.num_success(), report.results.size());
    for (const auto& result : report.results) {
      EXPECT_TRUE(result.ran) << result.name;
      EXPECT_FALSE(result.foms.empty()) << result.name;
    }
  } else {
    EXPECT_EQ(report.num_success(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompatiblePairs, WorkflowMatrixTest,
    ::testing::Values(
        WorkflowCase{"saxpy", "openmp", "cts1", true},
        WorkflowCase{"saxpy", "openmp", "ats2", true},
        WorkflowCase{"saxpy", "openmp", "ats4", true},
        WorkflowCase{"saxpy", "openmp", "cloud-cts", true},
        WorkflowCase{"saxpy", "cuda", "ats2", true},
        WorkflowCase{"saxpy", "rocm", "ats4", true},
        WorkflowCase{"amg2023", "openmp", "cts1", true},
        WorkflowCase{"amg2023", "cuda", "ats2", true},
        WorkflowCase{"amg2023", "rocm", "ats4", true},
        // Section 7.1: the math-library crash on the cloud twin.
        WorkflowCase{"amg2023", "openmp", "cloud-cts", false},
        WorkflowCase{"stream", "openmp", "cts1", true},
        WorkflowCase{"stream", "openmp", "ats4", true},
        WorkflowCase{"osu-bcast", "mpi", "cts1", true},
        WorkflowCase{"osu-bcast", "mpi", "ats2", true}),
    [](const ::testing::TestParamInfo<WorkflowCase>& info) {
      return benchpark::support::replace_all(
          std::string(info.param.benchmark) + "_" + info.param.variant +
              "_on_" + info.param.system,
          "-", "_");
    });

// ----------------------------------------------------- spec round trips

class SpecRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecRoundTripTest, ParsePrintParseIsIdentity) {
  auto first = spec::Spec::parse(GetParam());
  auto second = spec::Spec::parse(first.str());
  EXPECT_TRUE(first == second) << GetParam() << " -> " << first.str();
}

TEST_P(SpecRoundTripTest, ConstrainWithSelfIsIdempotent) {
  auto s = spec::Spec::parse(GetParam());
  auto merged = s;
  merged.constrain(s);
  EXPECT_TRUE(merged == s) << GetParam();
}

TEST_P(SpecRoundTripTest, SatisfiesSelfConstraints) {
  auto s = spec::Spec::parse(GetParam());
  EXPECT_TRUE(s.satisfies(s)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SpecRoundTripTest,
    ::testing::Values(
        "zlib", "amg2023+caliper", "saxpy@1.0.0+openmp~cuda",
        "hypre@2.24:2.28", "openblas threads=openmp",
        "amg2023@1.1+caliper%gcc@12.1.1",
        "saxpy@1.0.0+openmp%gcc@12.1.1 target=broadwell ^cmake@3.23.1:",
        "amg2023 ^hypre+cuda ^mvapich2@2.3.7",
        "mvapich2@2.3.7-gcc12.1.1-magic",
        "hdf5+mpi ^zlib@1.2:",
        "stream@5.10 target=zen3",
        "caliper~mpi+cuda%clang@14.0.5"));

// ------------------------------------------------- version algebra laws

class VersionPairTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
};

TEST_P(VersionPairTest, IntersectsIsSymmetric) {
  auto a = spec::VersionConstraint::parse(GetParam().first);
  auto b = spec::VersionConstraint::parse(GetParam().second);
  EXPECT_EQ(a.intersects(b), b.intersects(a))
      << GetParam().first << " vs " << GetParam().second;
}

TEST_P(VersionPairTest, SubsetImpliesIntersects) {
  auto a = spec::VersionConstraint::parse(GetParam().first);
  auto b = spec::VersionConstraint::parse(GetParam().second);
  if (a.subset_of(b)) {
    EXPECT_TRUE(a.intersects(b));
  }
  if (b.subset_of(a)) {
    EXPECT_TRUE(b.intersects(a));
  }
}

TEST_P(VersionPairTest, ConstrainProducesSubsetOrThrows) {
  auto a = spec::VersionConstraint::parse(GetParam().first);
  auto b = spec::VersionConstraint::parse(GetParam().second);
  try {
    auto merged = a;
    merged.constrain(b);
    // Whatever survives the merge must still admit something both sides
    // admit — checked via intersects with each input.
    EXPECT_TRUE(merged.intersects(a));
    EXPECT_TRUE(merged.intersects(b));
  } catch (const benchpark::SpecError&) {
    EXPECT_FALSE(a.intersects(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, VersionPairTest,
    ::testing::Values(std::pair{"1.2", "1.2.5"}, std::pair{"1.2", "1.3"},
                      std::pair{"1.2:1.8", "1.5:2.0"},
                      std::pair{"1.2:1.4", "2.0:"},
                      std::pair{":1.8", "1.2:"},
                      std::pair{"=1.2", "1.2"},
                      std::pair{"1.2,2.0:2.4", "2.2"},
                      std::pair{"3:", ":2"},
                      std::pair{"1.2.3", "1.2"},
                      std::pair{"2.3.7", "2.3.6:2.3.8"}));

// ------------------------------------- microarchitecture partial order

class MicroarchOrderTest : public ::testing::Test {
protected:
  const benchpark::archspec::MicroarchDatabase& db =
      benchpark::archspec::MicroarchDatabase::instance();
};

TEST_F(MicroarchOrderTest, Reflexive) {
  for (const auto& name : db.names()) {
    EXPECT_TRUE(db.compatible(name, name)) << name;
  }
}

TEST_F(MicroarchOrderTest, AntisymmetricUpToFeatureEquality) {
  for (const auto& a : db.names()) {
    for (const auto& b : db.names()) {
      if (a == b) continue;
      if (db.compatible(a, b) && db.compatible(b, a)) {
        EXPECT_EQ(db.get(a).features(), db.get(b).features())
            << a << " <-> " << b;
      }
    }
  }
}

TEST_F(MicroarchOrderTest, Transitive) {
  auto names = db.names();
  for (const auto& a : names) {
    for (const auto& b : names) {
      if (!db.compatible(a, b)) continue;
      for (const auto& c : names) {
        if (db.compatible(b, c)) {
          EXPECT_TRUE(db.compatible(a, c))
              << a << " >= " << b << " >= " << c;
        }
      }
    }
  }
}

TEST_F(MicroarchOrderTest, AncestorsAlwaysCompatible) {
  for (const auto& name : db.names()) {
    for (const auto& ancestor : db.ancestors(name)) {
      EXPECT_TRUE(db.compatible(name, ancestor)) << name << " -> " << ancestor;
      // Features only grow down the DAG.
      const auto& mine = db.get(name).features();
      for (const auto& f : db.get(ancestor).features()) {
        EXPECT_TRUE(mine.count(f)) << name << " missing " << f;
      }
    }
  }
}

// -------------------------------------------- scheduler safety properties

class SchedulerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerPropertyTest, RandomWorkloadSafety) {
  const int seed = GetParam();
  benchpark::support::Rng rng(static_cast<std::uint64_t>(seed));
  const int total_nodes = 32;
  auto policy = (seed % 2 == 0) ? benchpark::sched::Policy::fifo
                                : benchpark::sched::Policy::backfill;
  benchpark::sched::BatchScheduler scheduler(total_nodes, policy);

  const int num_jobs = 80;
  for (int i = 0; i < num_jobs; ++i) {
    benchpark::sched::BatchJob job;
    job.name = "j" + std::to_string(i);
    job.user = "prop";
    job.nodes = 1 + static_cast<int>(rng.below(total_nodes));
    job.ranks = job.nodes;
    double runtime = 1 + rng.uniform(0, 300);
    // ~15% of jobs exceed their limit (timeout injection).
    bool overruns = rng.next_double() < 0.15;
    job.time_limit_seconds = overruns ? runtime * 0.5 : runtime * 1.2;
    job.work = [runtime] {
      return benchpark::sched::JobResult{runtime, true, "done\n"};
    };
    (void)scheduler.submit(std::move(job));
  }
  scheduler.run_until_idle();

  auto records = scheduler.records();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(num_jobs));

  // Causality: every job started at/after submission and ended at/after
  // its start; terminal states only.
  for (const auto* r : records) {
    EXPECT_GE(r->start_time, r->submit_time) << r->name;
    EXPECT_GE(r->end_time, r->start_time) << r->name;
    EXPECT_TRUE(r->state == benchpark::sched::JobState::completed ||
                r->state == benchpark::sched::JobState::timeout)
        << r->name;
    if (r->state == benchpark::sched::JobState::timeout) {
      EXPECT_NEAR(r->end_time - r->start_time, r->time_limit_seconds, 1e-9);
    }
  }

  // Capacity: at every job-start instant, the set of running jobs fits.
  for (const auto* at : records) {
    int busy = 0;
    for (const auto* other : records) {
      if (other->start_time <= at->start_time &&
          other->end_time > at->start_time) {
        busy += other->nodes;
      }
    }
    EXPECT_LE(busy, total_nodes)
        << "capacity exceeded at t=" << at->start_time;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range(1, 13));

// --------------------------------------------- Extra-P exact recovery

struct Hypothesis {
  double exponent;
  int log_exponent;
};

class ExtrapRecoveryTest : public ::testing::TestWithParam<Hypothesis> {};

TEST_P(ExtrapRecoveryTest, RecoversExactHypothesis) {
  const auto& h = GetParam();
  std::vector<benchpark::analysis::Measurement> data;
  for (double p : {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}) {
    double basis = std::pow(p, h.exponent);
    if (h.log_exponent) basis *= std::pow(std::log2(p), h.log_exponent);
    data.push_back({p, 1.5 + 0.25 * basis});
  }
  auto model = benchpark::analysis::fit_scaling_model(data);
  // The fit must be essentially exact; the winning hypothesis is either
  // the generator or an equivalent-by-RSS alternative.
  for (const auto& m : data) {
    EXPECT_NEAR(model.evaluate(m.p), m.value,
                1e-6 * std::max(1.0, std::fabs(m.value)))
        << "p=" << m.p;
  }
  EXPECT_GT(model.r_squared, 0.999999);
}

INSTANTIATE_TEST_SUITE_P(
    HypothesisSpace, ExtrapRecoveryTest,
    ::testing::Values(Hypothesis{0, 1}, Hypothesis{0, 2},
                      Hypothesis{0.5, 0}, Hypothesis{0.5, 1},
                      Hypothesis{1, 0}, Hypothesis{1, 1},
                      Hypothesis{1, 2}, Hypothesis{2, 0},
                      Hypothesis{1.0 / 3, 0}, Hypothesis{0.75, 1},
                      Hypothesis{1.5, 0}, Hypothesis{3, 0}),
    [](const ::testing::TestParamInfo<Hypothesis>& info) {
      auto e = static_cast<int>(info.param.exponent * 100);
      return "p" + std::to_string(e) + "log" +
             std::to_string(info.param.log_exponent);
    });

// -------------------------------------------------- YAML fuzz round trip

namespace {

benchpark::yaml::Node random_node(benchpark::support::Rng& rng, int depth) {
  using benchpark::yaml::Node;
  auto pick = rng.below(depth >= 3 ? 2 : 4);
  switch (pick) {
    case 0:
      return Node("v" + std::to_string(rng.below(1000)));
    case 1: {
      // Tricky scalars the emitter must quote.
      const char* tricky[] = {"true",  "null",    "8",      "1.5",
                              "a: b",  "x #y",    "",       " lead",
                              "trail ", "[weird", "-dash",  "'q'"};
      return Node(tricky[rng.below(12)]);
    }
    case 2: {
      Node seq = Node::make_sequence();
      auto n = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        seq.push_back(random_node(rng, depth + 1));
      }
      return seq;
    }
    default: {
      Node map = Node::make_mapping();
      auto n = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        map["key" + std::to_string(i)] = random_node(rng, depth + 1);
      }
      return map;
    }
  }
}

}  // namespace

class YamlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(YamlFuzzTest, EmitParseRoundTrip) {
  benchpark::support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto original = random_node(rng, 0);
  if (original.is_scalar() || original.is_null()) return;  // document root
  auto text = benchpark::yaml::emit(original);
  benchpark::yaml::Node reparsed;
  ASSERT_NO_THROW(reparsed = benchpark::yaml::parse(text)) << text;
  EXPECT_TRUE(original == reparsed) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlFuzzTest, ::testing::Range(1, 33));

// ------------------------------------------- collective model monotonicity

struct CollectiveCase {
  const char* system;
  sys::Collective kind;
};

class CollectiveMonotoneTest
    : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveMonotoneTest, MonotoneInRanksAndBytes) {
  const auto& param = GetParam();
  const auto& system = sys::SystemRegistry::instance().get(param.system);
  sys::PerfModel model(system);
  double previous = 0;
  for (int p : {2, 4, 16, 64, 256, 1024, 4096}) {
    double t = model.collective_seconds(param.kind, p, 4096);
    EXPECT_GE(t, previous) << param.system << " p=" << p;
    previous = t;
  }
  previous = 0;
  for (std::uint64_t bytes : {8ull, 512ull, 65536ull, 1048576ull}) {
    double t = model.collective_seconds(param.kind, 128, bytes);
    EXPECT_GE(t, previous) << param.system << " bytes=" << bytes;
    previous = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SystemsAndKinds, CollectiveMonotoneTest,
    ::testing::Values(
        CollectiveCase{"cts1", sys::Collective::bcast},
        CollectiveCase{"cts1", sys::Collective::allreduce},
        CollectiveCase{"ats2", sys::Collective::bcast},
        CollectiveCase{"ats2", sys::Collective::barrier},
        CollectiveCase{"ats4", sys::Collective::allreduce},
        CollectiveCase{"ats4", sys::Collective::allgather},
        CollectiveCase{"cloud-cts", sys::Collective::bcast},
        CollectiveCase{"cloud-cts", sys::Collective::reduce}),
    [](const ::testing::TestParamInfo<CollectiveCase>& info) {
      return benchpark::support::replace_all(info.param.system, "-", "_") +
             "_" +
             benchpark::support::replace_all(
                 std::string(sys::collective_name(info.param.kind)), "_",
                 "");
    });

// ------------------------------------------------ tracing properties

namespace {

namespace obs = benchpark::obs;

/// Enable the global trace collector for one test, restoring the
/// disabled empty state afterwards.
class ScopedTrace {
public:
  ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.reset();
    c.set_enabled(true);
  }
  ~ScopedTrace() {
    auto& c = obs::TraceCollector::global();
    c.set_enabled(false);
    c.reset();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

}  // namespace

class TraceNestingPropertyTest : public ::testing::TestWithParam<int> {};

// Under arbitrary ThreadPool fan-out the span stream must stay
// well-nested per thread: any two wall-clock spans on one thread are
// either disjoint or one contains the other, every parent id resolves,
// and every pool chunk hangs off its batch's span.
TEST_P(TraceNestingPropertyTest, PoolWorkloadsProduceWellNestedSpans) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  benchpark::support::Rng rng(seed * 6271);
  ScopedTrace guard;
  auto& collector = obs::TraceCollector::global();

  const int rounds = 2 + static_cast<int>(rng.below(3));
  std::size_t pool_batches = 0;
  for (int round = 0; round < rounds; ++round) {
    obs::ScopedSpan round_span(collector,
                               "round" + std::to_string(round), "prop");
    const std::size_t n = 8 + rng.below(56);
    const int threads = 2 + static_cast<int>(rng.below(6));
    if (threads > 1 && n >= 2) ++pool_batches;
    benchpark::support::parallel_for(n, threads, [&](std::size_t lo,
                                                     std::size_t hi) {
      // Per-chunk depth derived from the range (the shared rng is not
      // thread-safe); every chunk nests a few spans and emits leaves.
      int depth = 1 + static_cast<int>(lo % 3);
      std::vector<std::unique_ptr<obs::ScopedSpan>> open;
      for (int d = 0; d < depth; ++d) {
        open.push_back(std::make_unique<obs::ScopedSpan>(
            collector, "depth" + std::to_string(d), "prop"));
      }
      if (lo % 2 == 0) {
        collector.emit_span("leaf.modeled", "prop",
                            static_cast<double>(hi - lo) * 1e-3);
      } else {
        collector.instant("leaf.instant", "prop");
      }
      while (!open.empty()) open.pop_back();  // LIFO unwind
    });
  }

  auto trace = collector.snapshot();
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  std::map<std::uint32_t, std::vector<const obs::TraceEvent*>> by_tid;
  for (const auto& e : trace.events) {
    if (e.phase != obs::TraceEvent::Phase::span) continue;
    by_id[e.id] = &e;
    if (!e.modeled) by_tid[e.tid].push_back(&e);
  }
  // Parents always resolve.
  for (const auto& [id, e] : by_id) {
    if (e->parent != 0) {
      EXPECT_TRUE(by_id.count(e->parent))
          << e->name << " dangling parent " << e->parent;
    }
  }
  // Per-thread well-nestedness: no partial interval overlap.
  for (const auto& [tid, spans] : by_tid) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const auto* a = spans[i];
        const auto* b = spans[j];
        bool partial = a->ts_us < b->ts_us && b->ts_us < a->end_us() &&
                       a->end_us() < b->end_us();
        bool partial_rev = b->ts_us < a->ts_us && a->ts_us < b->end_us() &&
                           b->end_us() < a->end_us();
        EXPECT_FALSE(partial || partial_rev)
            << a->name << " / " << b->name << " on tid " << tid;
      }
    }
  }
  // Every pool batch span exists and every chunk-root span ("depth0")
  // parents on a pool.batch span.
  EXPECT_EQ(trace.count_named("pool.batch"), pool_batches);
  for (const auto* chunk : trace.named("depth0")) {
    auto it = by_id.find(chunk->parent);
    ASSERT_NE(it, by_id.end());
    EXPECT_EQ(it->second->name, "pool.batch");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceNestingPropertyTest,
                         ::testing::Range(1, 9));

// Counters must be exact under concurrent increments — no lost updates,
// no double counts — and independent of thread interleaving.
TEST(TraceCounterProperty, ExactUnderConcurrentIncrements) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        collector.counter_add("prop.count");
        collector.counter_add("prop.sum", i % 5);
        collector.gauge_set("prop.tid" + std::to_string(t),
                            static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto trace = collector.snapshot();
  EXPECT_EQ(trace.counters.at("prop.count"),
            static_cast<long long>(kThreads) * kRounds);
  // Sum of i%5 over 2000 rounds = 400 * (0+1+2+3+4) = 4000 per thread.
  EXPECT_EQ(trace.counters.at("prop.sum"),
            static_cast<long long>(kThreads) * 4000);
  // Each thread's gauge holds its own final write.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(trace.gauges.at("prop.tid" + std::to_string(t)),
                     static_cast<double>(kRounds - 1));
  }
}

// Chrome-trace JSON round-trips arbitrary traces through the YAML/JSON
// parser: spans, instants, counters, gauges, metadata, tricky strings.
class TraceJsonFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceJsonFuzzTest, ChromeJsonRoundTrip) {
  benchpark::support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const char* tricky[] = {"plain",   "with space", "q\"uote",  "back\\slash",
                          "tab\there", "new\nline", "a: b",    "x #y",
                          "[weird",  "{brace}",    "comma,",   "\xce\xbcs"};
  auto pick_string = [&](const char* prefix) {
    return std::string(prefix) + tricky[rng.below(12)];
  };

  obs::Trace original;
  const auto num_events = 1 + rng.below(12);
  std::uint64_t next_id = 1;
  for (std::uint64_t i = 0; i < num_events; ++i) {
    obs::TraceEvent e;
    bool is_span = rng.below(4) != 0;
    e.phase = is_span ? obs::TraceEvent::Phase::span
                      : obs::TraceEvent::Phase::instant;
    e.name = pick_string("n");
    if (rng.below(2)) e.category = pick_string("c");
    e.tid = static_cast<std::uint32_t>(rng.below(4));
    // Multiples of 0.5 survive the %.3f fixed-point export exactly.
    e.ts_us = static_cast<double>(rng.below(100000)) * 0.5;
    if (is_span) {
      e.dur_us = static_cast<double>(rng.below(100000)) * 0.5;
      e.id = next_id++;
      if (e.id > 1 && rng.below(2)) e.parent = 1 + rng.below(e.id - 1);
      e.modeled = rng.below(3) == 0;
    }
    auto num_args = rng.below(3);
    for (std::uint64_t a = 0; a < num_args; ++a) {
      e.args.emplace_back("k" + std::to_string(a), pick_string("v"));
    }
    original.events.push_back(std::move(e));
  }
  auto num_counters = rng.below(4);
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    original.counters["ctr" + std::to_string(i)] =
        static_cast<long long>(rng.below(2000000)) - 1000000;
  }
  auto num_gauges = rng.below(3);
  for (std::uint64_t i = 0; i < num_gauges; ++i) {
    original.gauges["g" + std::to_string(i)] =
        static_cast<double>(rng.below(10000)) * 0.5;
  }
  auto num_meta = rng.below(4);
  for (std::uint64_t i = 0; i < num_meta; ++i) {
    original.metadata["m" + std::to_string(i)] = pick_string("meta");
  }

  std::string json = original.to_chrome_json();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must stay single-line";
  obs::Trace parsed;
  ASSERT_NO_THROW(parsed = obs::Trace::from_chrome_json(
                      std::string_view{json}))
      << json;

  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    const auto& a = original.events[i];
    const auto& b = parsed.events[i];
    EXPECT_EQ(a.name, b.name) << json;
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(static_cast<int>(a.phase), static_cast<int>(b.phase));
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_EQ(a.modeled, b.modeled);
    EXPECT_DOUBLE_EQ(a.ts_us, b.ts_us);
    EXPECT_DOUBLE_EQ(a.dur_us, b.dur_us);
    EXPECT_EQ(a.args, b.args) << a.name;
  }
  EXPECT_EQ(parsed.counters, original.counters);
  EXPECT_EQ(parsed.gauges, original.gauges);
  EXPECT_EQ(parsed.metadata, original.metadata);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceJsonFuzzTest, ::testing::Range(1, 25));
