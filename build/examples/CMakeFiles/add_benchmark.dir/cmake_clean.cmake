file(REMOVE_RECURSE
  "CMakeFiles/add_benchmark.dir/add_benchmark.cpp.o"
  "CMakeFiles/add_benchmark.dir/add_benchmark.cpp.o.d"
  "add_benchmark"
  "add_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/add_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
