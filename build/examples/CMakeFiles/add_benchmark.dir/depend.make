# Empty dependencies file for add_benchmark.
# This may be replaced when dependencies are built.
