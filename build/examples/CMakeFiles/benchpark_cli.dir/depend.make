# Empty dependencies file for benchpark_cli.
# This may be replaced when dependencies are built.
