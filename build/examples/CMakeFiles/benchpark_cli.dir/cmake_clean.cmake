file(REMOVE_RECURSE
  "CMakeFiles/benchpark_cli.dir/benchpark_cli.cpp.o"
  "CMakeFiles/benchpark_cli.dir/benchpark_cli.cpp.o.d"
  "benchpark_cli"
  "benchpark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchpark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
