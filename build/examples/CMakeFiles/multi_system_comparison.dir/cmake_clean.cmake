file(REMOVE_RECURSE
  "CMakeFiles/multi_system_comparison.dir/multi_system_comparison.cpp.o"
  "CMakeFiles/multi_system_comparison.dir/multi_system_comparison.cpp.o.d"
  "multi_system_comparison"
  "multi_system_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_system_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
