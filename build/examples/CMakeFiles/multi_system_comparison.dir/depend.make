# Empty dependencies file for multi_system_comparison.
# This may be replaced when dependencies are built.
