file(REMOVE_RECURSE
  "CMakeFiles/bench_amg.dir/bench_amg.cpp.o"
  "CMakeFiles/bench_amg.dir/bench_amg.cpp.o.d"
  "bench_amg"
  "bench_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
