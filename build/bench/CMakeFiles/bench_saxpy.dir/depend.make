# Empty dependencies file for bench_saxpy.
# This may be replaced when dependencies are built.
