file(REMOVE_RECURSE
  "CMakeFiles/bench_saxpy.dir/bench_saxpy.cpp.o"
  "CMakeFiles/bench_saxpy.dir/bench_saxpy.cpp.o.d"
  "bench_saxpy"
  "bench_saxpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_saxpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
