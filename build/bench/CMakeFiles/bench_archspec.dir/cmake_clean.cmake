file(REMOVE_RECURSE
  "CMakeFiles/bench_archspec.dir/bench_archspec.cpp.o"
  "CMakeFiles/bench_archspec.dir/bench_archspec.cpp.o.d"
  "bench_archspec"
  "bench_archspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_archspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
