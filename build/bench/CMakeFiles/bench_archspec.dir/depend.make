# Empty dependencies file for bench_archspec.
# This may be replaced when dependencies are built.
