file(REMOVE_RECURSE
  "CMakeFiles/bench_ci_pipeline.dir/bench_ci_pipeline.cpp.o"
  "CMakeFiles/bench_ci_pipeline.dir/bench_ci_pipeline.cpp.o.d"
  "bench_ci_pipeline"
  "bench_ci_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ci_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
