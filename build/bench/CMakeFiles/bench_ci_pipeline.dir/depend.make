# Empty dependencies file for bench_ci_pipeline.
# This may be replaced when dependencies are built.
