# Empty dependencies file for bench_concretizer.
# This may be replaced when dependencies are built.
