file(REMOVE_RECURSE
  "CMakeFiles/bench_concretizer.dir/bench_concretizer.cpp.o"
  "CMakeFiles/bench_concretizer.dir/bench_concretizer.cpp.o.d"
  "bench_concretizer"
  "bench_concretizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concretizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
