file(REMOVE_RECURSE
  "CMakeFiles/bench_caliper.dir/bench_caliper.cpp.o"
  "CMakeFiles/bench_caliper.dir/bench_caliper.cpp.o.d"
  "bench_caliper"
  "bench_caliper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_caliper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
