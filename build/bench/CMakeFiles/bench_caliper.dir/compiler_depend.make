# Empty compiler generated dependencies file for bench_caliper.
# This may be replaced when dependencies are built.
