# Empty dependencies file for bench_yaml.
# This may be replaced when dependencies are built.
