file(REMOVE_RECURSE
  "CMakeFiles/bench_yaml.dir/bench_yaml.cpp.o"
  "CMakeFiles/bench_yaml.dir/bench_yaml.cpp.o.d"
  "bench_yaml"
  "bench_yaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
