file(REMOVE_RECURSE
  "CMakeFiles/bench_fom.dir/bench_fom.cpp.o"
  "CMakeFiles/bench_fom.dir/bench_fom.cpp.o.d"
  "bench_fom"
  "bench_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
