# Empty dependencies file for bench_fom.
# This may be replaced when dependencies are built.
