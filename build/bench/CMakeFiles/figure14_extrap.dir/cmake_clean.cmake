file(REMOVE_RECURSE
  "CMakeFiles/figure14_extrap.dir/figure14_extrap.cpp.o"
  "CMakeFiles/figure14_extrap.dir/figure14_extrap.cpp.o.d"
  "figure14_extrap"
  "figure14_extrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure14_extrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
