# Empty dependencies file for figure14_extrap.
# This may be replaced when dependencies are built.
