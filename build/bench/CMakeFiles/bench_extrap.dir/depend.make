# Empty dependencies file for bench_extrap.
# This may be replaced when dependencies are built.
