file(REMOVE_RECURSE
  "CMakeFiles/bench_extrap.dir/bench_extrap.cpp.o"
  "CMakeFiles/bench_extrap.dir/bench_extrap.cpp.o.d"
  "bench_extrap"
  "bench_extrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
