file(REMOVE_RECURSE
  "CMakeFiles/bench_workspace.dir/bench_workspace.cpp.o"
  "CMakeFiles/bench_workspace.dir/bench_workspace.cpp.o.d"
  "bench_workspace"
  "bench_workspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
