file(REMOVE_RECURSE
  "CMakeFiles/bench_buildcache.dir/bench_buildcache.cpp.o"
  "CMakeFiles/bench_buildcache.dir/bench_buildcache.cpp.o.d"
  "bench_buildcache"
  "bench_buildcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buildcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
