# Empty compiler generated dependencies file for bench_buildcache.
# This may be replaced when dependencies are built.
