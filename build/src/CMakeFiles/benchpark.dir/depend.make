# Empty dependencies file for benchpark.
# This may be replaced when dependencies are built.
