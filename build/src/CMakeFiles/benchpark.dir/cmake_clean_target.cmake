file(REMOVE_RECURSE
  "libbenchpark.a"
)
