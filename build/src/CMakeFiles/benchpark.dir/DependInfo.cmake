
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dashboard.cpp" "src/CMakeFiles/benchpark.dir/analysis/dashboard.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/analysis/dashboard.cpp.o.d"
  "/root/repo/src/analysis/extrap.cpp" "src/CMakeFiles/benchpark.dir/analysis/extrap.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/analysis/extrap.cpp.o.d"
  "/root/repo/src/analysis/fom.cpp" "src/CMakeFiles/benchpark.dir/analysis/fom.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/analysis/fom.cpp.o.d"
  "/root/repo/src/analysis/metrics_db.cpp" "src/CMakeFiles/benchpark.dir/analysis/metrics_db.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/analysis/metrics_db.cpp.o.d"
  "/root/repo/src/analysis/thicket.cpp" "src/CMakeFiles/benchpark.dir/analysis/thicket.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/analysis/thicket.cpp.o.d"
  "/root/repo/src/archspec/microarch.cpp" "src/CMakeFiles/benchpark.dir/archspec/microarch.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/archspec/microarch.cpp.o.d"
  "/root/repo/src/benchmarks/multigrid.cpp" "src/CMakeFiles/benchpark.dir/benchmarks/multigrid.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/benchmarks/multigrid.cpp.o.d"
  "/root/repo/src/benchmarks/saxpy.cpp" "src/CMakeFiles/benchpark.dir/benchmarks/saxpy.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/benchmarks/saxpy.cpp.o.d"
  "/root/repo/src/benchmarks/stream.cpp" "src/CMakeFiles/benchpark.dir/benchmarks/stream.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/benchmarks/stream.cpp.o.d"
  "/root/repo/src/ci/git.cpp" "src/CMakeFiles/benchpark.dir/ci/git.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ci/git.cpp.o.d"
  "/root/repo/src/ci/hubcast.cpp" "src/CMakeFiles/benchpark.dir/ci/hubcast.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ci/hubcast.cpp.o.d"
  "/root/repo/src/ci/jacamar.cpp" "src/CMakeFiles/benchpark.dir/ci/jacamar.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ci/jacamar.cpp.o.d"
  "/root/repo/src/ci/pipeline.cpp" "src/CMakeFiles/benchpark.dir/ci/pipeline.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ci/pipeline.cpp.o.d"
  "/root/repo/src/concretizer/concretizer.cpp" "src/CMakeFiles/benchpark.dir/concretizer/concretizer.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/concretizer/concretizer.cpp.o.d"
  "/root/repo/src/concretizer/config.cpp" "src/CMakeFiles/benchpark.dir/concretizer/config.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/concretizer/config.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/benchpark.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/components.cpp" "src/CMakeFiles/benchpark.dir/core/components.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/core/components.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/CMakeFiles/benchpark.dir/core/driver.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/core/driver.cpp.o.d"
  "/root/repo/src/core/usage.cpp" "src/CMakeFiles/benchpark.dir/core/usage.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/core/usage.cpp.o.d"
  "/root/repo/src/env/environment.cpp" "src/CMakeFiles/benchpark.dir/env/environment.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/env/environment.cpp.o.d"
  "/root/repo/src/install/installer.cpp" "src/CMakeFiles/benchpark.dir/install/installer.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/install/installer.cpp.o.d"
  "/root/repo/src/perf/caliper.cpp" "src/CMakeFiles/benchpark.dir/perf/caliper.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/perf/caliper.cpp.o.d"
  "/root/repo/src/pkg/package.cpp" "src/CMakeFiles/benchpark.dir/pkg/package.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/pkg/package.cpp.o.d"
  "/root/repo/src/pkg/repo.cpp" "src/CMakeFiles/benchpark.dir/pkg/repo.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/pkg/repo.cpp.o.d"
  "/root/repo/src/pkg/yaml_repo.cpp" "src/CMakeFiles/benchpark.dir/pkg/yaml_repo.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/pkg/yaml_repo.cpp.o.d"
  "/root/repo/src/ramble/application.cpp" "src/CMakeFiles/benchpark.dir/ramble/application.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ramble/application.cpp.o.d"
  "/root/repo/src/ramble/expansion.cpp" "src/CMakeFiles/benchpark.dir/ramble/expansion.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ramble/expansion.cpp.o.d"
  "/root/repo/src/ramble/experiment.cpp" "src/CMakeFiles/benchpark.dir/ramble/experiment.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ramble/experiment.cpp.o.d"
  "/root/repo/src/ramble/modifier.cpp" "src/CMakeFiles/benchpark.dir/ramble/modifier.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ramble/modifier.cpp.o.d"
  "/root/repo/src/ramble/workspace.cpp" "src/CMakeFiles/benchpark.dir/ramble/workspace.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/ramble/workspace.cpp.o.d"
  "/root/repo/src/runtime/simexec.cpp" "src/CMakeFiles/benchpark.dir/runtime/simexec.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/runtime/simexec.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/benchpark.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/spec/spec.cpp" "src/CMakeFiles/benchpark.dir/spec/spec.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/spec/spec.cpp.o.d"
  "/root/repo/src/spec/variant.cpp" "src/CMakeFiles/benchpark.dir/spec/variant.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/spec/variant.cpp.o.d"
  "/root/repo/src/spec/version.cpp" "src/CMakeFiles/benchpark.dir/spec/version.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/spec/version.cpp.o.d"
  "/root/repo/src/support/fs_util.cpp" "src/CMakeFiles/benchpark.dir/support/fs_util.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/support/fs_util.cpp.o.d"
  "/root/repo/src/support/hash.cpp" "src/CMakeFiles/benchpark.dir/support/hash.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/support/hash.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/benchpark.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/support/log.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/benchpark.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/support/string_util.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/benchpark.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/support/table.cpp.o.d"
  "/root/repo/src/system/perf_model.cpp" "src/CMakeFiles/benchpark.dir/system/perf_model.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/system/perf_model.cpp.o.d"
  "/root/repo/src/system/system.cpp" "src/CMakeFiles/benchpark.dir/system/system.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/system/system.cpp.o.d"
  "/root/repo/src/yaml/emitter.cpp" "src/CMakeFiles/benchpark.dir/yaml/emitter.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/yaml/emitter.cpp.o.d"
  "/root/repo/src/yaml/node.cpp" "src/CMakeFiles/benchpark.dir/yaml/node.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/yaml/node.cpp.o.d"
  "/root/repo/src/yaml/parser.cpp" "src/CMakeFiles/benchpark.dir/yaml/parser.cpp.o" "gcc" "src/CMakeFiles/benchpark.dir/yaml/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
