# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_archspec[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_ci[1]_include.cmake")
include("/root/repo/build/tests/test_concretizer[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_dashboard[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_modifiers[1]_include.cmake")
include("/root/repo/build/tests/test_packages[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ramble[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_yaml[1]_include.cmake")
include("/root/repo/build/tests/test_yaml_repo[1]_include.cmake")
