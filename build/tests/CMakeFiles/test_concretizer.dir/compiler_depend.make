# Empty compiler generated dependencies file for test_concretizer.
# This may be replaced when dependencies are built.
