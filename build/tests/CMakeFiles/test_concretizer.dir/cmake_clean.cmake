file(REMOVE_RECURSE
  "CMakeFiles/test_concretizer.dir/test_concretizer.cpp.o"
  "CMakeFiles/test_concretizer.dir/test_concretizer.cpp.o.d"
  "test_concretizer"
  "test_concretizer.pdb"
  "test_concretizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concretizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
