file(REMOVE_RECURSE
  "CMakeFiles/test_yaml.dir/test_yaml.cpp.o"
  "CMakeFiles/test_yaml.dir/test_yaml.cpp.o.d"
  "test_yaml"
  "test_yaml.pdb"
  "test_yaml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
