file(REMOVE_RECURSE
  "CMakeFiles/test_ramble.dir/test_ramble.cpp.o"
  "CMakeFiles/test_ramble.dir/test_ramble.cpp.o.d"
  "test_ramble"
  "test_ramble.pdb"
  "test_ramble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
