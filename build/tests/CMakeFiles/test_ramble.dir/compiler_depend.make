# Empty compiler generated dependencies file for test_ramble.
# This may be replaced when dependencies are built.
