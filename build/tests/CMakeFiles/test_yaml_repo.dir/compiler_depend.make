# Empty compiler generated dependencies file for test_yaml_repo.
# This may be replaced when dependencies are built.
