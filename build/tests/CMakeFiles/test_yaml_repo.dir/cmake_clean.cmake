file(REMOVE_RECURSE
  "CMakeFiles/test_yaml_repo.dir/test_yaml_repo.cpp.o"
  "CMakeFiles/test_yaml_repo.dir/test_yaml_repo.cpp.o.d"
  "test_yaml_repo"
  "test_yaml_repo.pdb"
  "test_yaml_repo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yaml_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
