file(REMOVE_RECURSE
  "CMakeFiles/test_packages.dir/test_packages.cpp.o"
  "CMakeFiles/test_packages.dir/test_packages.cpp.o.d"
  "test_packages"
  "test_packages.pdb"
  "test_packages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
