# Empty dependencies file for test_dashboard.
# This may be replaced when dependencies are built.
