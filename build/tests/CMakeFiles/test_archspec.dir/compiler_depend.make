# Empty compiler generated dependencies file for test_archspec.
# This may be replaced when dependencies are built.
