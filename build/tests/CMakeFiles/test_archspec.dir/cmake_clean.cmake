file(REMOVE_RECURSE
  "CMakeFiles/test_archspec.dir/test_archspec.cpp.o"
  "CMakeFiles/test_archspec.dir/test_archspec.cpp.o.d"
  "test_archspec"
  "test_archspec.pdb"
  "test_archspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
