# Empty dependencies file for test_modifiers.
# This may be replaced when dependencies are built.
