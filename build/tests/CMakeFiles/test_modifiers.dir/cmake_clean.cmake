file(REMOVE_RECURSE
  "CMakeFiles/test_modifiers.dir/test_modifiers.cpp.o"
  "CMakeFiles/test_modifiers.dir/test_modifiers.cpp.o.d"
  "test_modifiers"
  "test_modifiers.pdb"
  "test_modifiers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
