#include "src/buildcache/binary_cache.hpp"

#include <algorithm>
#include <memory>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/hash.hpp"

namespace benchpark::buildcache {

BinaryCache::BinaryCache(double base_latency_seconds, double bytes_per_second)
    : base_latency_seconds_(base_latency_seconds),
      bytes_per_second_(bytes_per_second) {}

BinaryCache::Shard& BinaryCache::shard_for(std::string_view dag_hash) const {
  return shards_[support::fnv1a(dag_hash) % kShards];
}

std::optional<CacheEntry> BinaryCache::fetch(const spec::Spec& concrete) {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "fetch", "buildcache");
  auto hash = concrete.dag_hash();
  if (span.active()) span.annotate("hash", hash);
  // Fault gate before the counters: retried-then-resolved requests count
  // exactly one hit or miss, so cache statistics stay comparable whether
  // or not a chaos plan is active.
  double injected = 0.0;
  const int max_attempts = 1 + std::max(0, fetch_retries_);
  for (int attempt = 1;; ++attempt) {
    try {
      injected += support::fault_hit("buildcache.fetch", hash,
                                     static_cast<std::uint64_t>(attempt));
      break;
    } catch (const TransientError&) {
      if (attempt >= max_attempts) {
        span.annotate("outcome", "transient-exhausted");
        throw;
      }
      retries_.fetch_add(1, std::memory_order_release);
      collector.counter_add("buildcache.retries");
      injected += base_latency_seconds_;  // re-request round trip
    }
  }
  // Lock-free hit path: one atomic snapshot load, no shard mutex.
  auto map = shard_for(hash).snapshot.load();
  auto it = map->find(std::string_view(hash));
  if (it == map->end()) {
    misses_.fetch_add(1, std::memory_order_release);
    collector.counter_add("buildcache.misses");
    span.annotate("outcome", "miss");
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_release);
  collector.counter_add("buildcache.hits");
  span.annotate("outcome", "hit");
  CacheEntry entry = it->second;
  entry.injected_latency_seconds = injected;
  return entry;
}

void BinaryCache::push(const spec::Spec& concrete, std::uint64_t size_bytes) {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "push", "buildcache");
  auto hash = concrete.dag_hash();
  if (span.active()) {
    span.annotate("hash", hash);
    span.annotate("bytes", std::to_string(size_bytes));
  }
  support::fault_hit("buildcache.push", hash);
  CacheEntry entry;
  entry.dag_hash = hash;
  entry.short_spec = concrete.short_str();
  entry.size_bytes = size_bytes;
  entry.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  // Counted before the entry becomes visible: a concurrent evictor can
  // only evict a published entry, so evictions <= pushes always holds in
  // stats() snapshots.
  pushes_.fetch_add(1, std::memory_order_release);
  collector.counter_add("buildcache.pushes");
  Shard& shard = shard_for(hash);
  {
    // Copy-on-write publish: readers keep seeing the old snapshot until
    // the new one lands in one atomic store.
    std::lock_guard<std::mutex> lock(shard.mu);
    auto next = std::make_shared<Map>(*shard.snapshot.load());
    auto it = next->find(std::string_view(hash));
    // An overwrite only changes the total by the size delta.
    std::uint64_t old_bytes = it == next->end() ? 0 : it->second.size_bytes;
    total_bytes_.fetch_add(size_bytes, std::memory_order_relaxed);
    total_bytes_.fetch_sub(old_bytes, std::memory_order_relaxed);
    next->insert_or_assign(std::move(hash), std::move(entry));
    shard.snapshot.store(std::move(next));
  }
  evict_to_capacity();
}

void BinaryCache::set_capacity_bytes(std::uint64_t bytes) {
  capacity_bytes_.store(bytes, std::memory_order_relaxed);
  evict_to_capacity();
}

void BinaryCache::evict_to_capacity() {
  const std::uint64_t capacity =
      capacity_bytes_.load(std::memory_order_relaxed);
  if (capacity == 0) return;  // unbounded
  if (total_bytes_.load(std::memory_order_relaxed) <= capacity) return;
  auto& collector = obs::TraceCollector::global();
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  while (total_bytes_.load(std::memory_order_relaxed) > capacity) {
    // Find the globally oldest entry from the lock-free snapshots.
    Shard* oldest_shard = nullptr;
    std::string oldest_hash;
    std::uint64_t oldest_sequence = 0;
    for (auto& shard : shards_) {
      auto map = shard.snapshot.load();
      for (const auto& [hash, entry] : *map) {
        if (oldest_shard == nullptr || entry.sequence < oldest_sequence) {
          oldest_shard = &shard;
          oldest_hash = hash;
          oldest_sequence = entry.sequence;
        }
      }
    }
    if (oldest_shard == nullptr) return;  // raced to empty
    std::lock_guard<std::mutex> lock(oldest_shard->mu);
    auto next = std::make_shared<Map>(*oldest_shard->snapshot.load());
    auto it = next->find(std::string_view(oldest_hash));
    // A concurrent overwrite refreshed the entry: leave the new artifact
    // alone and rescan.
    if (it == next->end() || it->second.sequence != oldest_sequence) {
      continue;
    }
    total_bytes_.fetch_sub(it->second.size_bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_release);
    collector.counter_add("buildcache.evictions");
    if (collector.enabled()) {
      collector.instant("evict", "buildcache",
                        {{"hash", it->second.dag_hash},
                         {"bytes", std::to_string(it->second.size_bytes)}});
    }
    next->erase(it);
    oldest_shard->snapshot.store(std::move(next));
  }
}

bool BinaryCache::contains(const spec::Spec& concrete) const {
  auto hash = concrete.dag_hash();
  auto map = shard_for(hash).snapshot.load();
  return map->count(std::string_view(hash)) > 0;
}

std::size_t BinaryCache::size() const {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard.snapshot.load()->size();
  return total;
}

CacheStats BinaryCache::stats() const {
  // Torn-read-free snapshot: effect counters are read before their cause
  // counters (acquire loads pairing with the release increments), so the
  // returned struct always satisfies evictions <= pushes and retries <=
  // what the hit/miss totals imply — no impossible intermediate states.
  CacheStats s;
  s.evictions = evictions_.load(std::memory_order_acquire);
  s.retries = retries_.load(std::memory_order_acquire);
  s.pushes = pushes_.load(std::memory_order_acquire);
  s.misses = misses_.load(std::memory_order_acquire);
  s.hits = hits_.load(std::memory_order_acquire);
  return s;
}

std::vector<CacheEntry> BinaryCache::export_entries() const {
  std::vector<CacheEntry> out;
  for (auto& shard : shards_) {
    auto map = shard.snapshot.load();
    for (const auto& [hash, entry] : *map) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheEntry& a, const CacheEntry& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

void BinaryCache::restore(const std::vector<CacheEntry>& entries,
                          const CacheStats& stats) {
  {
    std::lock_guard<std::mutex> evict_lock(evict_mu_);
    std::array<Map, kShards> maps;
    std::uint64_t max_sequence = 0;
    for (CacheEntry entry : entries) {
      entry.injected_latency_seconds = 0.0;  // transient, never persisted
      max_sequence = std::max(max_sequence, entry.sequence);
      auto& map = maps[support::fnv1a(entry.dag_hash) % kShards];
      std::string hash = entry.dag_hash;
      map.insert_or_assign(std::move(hash), std::move(entry));
    }
    std::uint64_t bytes = 0;
    for (const auto& map : maps) {
      for (const auto& [hash, entry] : map) bytes += entry.size_bytes;
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      shards_[i].snapshot.store(std::make_shared<Map>(std::move(maps[i])));
    }
    total_bytes_.store(bytes, std::memory_order_relaxed);
    // The next push must sort after every restored entry, or eviction
    // order would interleave old and new artifacts.
    next_sequence_.store(max_sequence + 1, std::memory_order_relaxed);
    // Reverse of the stats() read order so a concurrent snapshot never
    // observes an impossible intermediate state (evictions > pushes).
    hits_.store(stats.hits, std::memory_order_release);
    misses_.store(stats.misses, std::memory_order_release);
    pushes_.store(stats.pushes, std::memory_order_release);
    retries_.store(stats.retries, std::memory_order_release);
    evictions_.store(stats.evictions, std::memory_order_release);
  }
  evict_to_capacity();
}

double BinaryCache::fetch_cost_seconds(std::uint64_t size_bytes) const {
  return base_latency_seconds_ +
         static_cast<double>(size_bytes) / bytes_per_second_;
}

}  // namespace benchpark::buildcache
