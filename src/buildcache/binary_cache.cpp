#include "src/buildcache/binary_cache.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/hash.hpp"

namespace benchpark::buildcache {

BinaryCache::BinaryCache(double base_latency_seconds, double bytes_per_second)
    : base_latency_seconds_(base_latency_seconds),
      bytes_per_second_(bytes_per_second) {}

BinaryCache::Shard& BinaryCache::shard_for(std::string_view dag_hash) const {
  return shards_[support::fnv1a(dag_hash) % kShards];
}

std::optional<CacheEntry> BinaryCache::fetch(const spec::Spec& concrete) {
  auto hash = concrete.dag_hash();
  // Fault gate before the counters: retried-then-resolved requests count
  // exactly one hit or miss, so cache statistics stay comparable whether
  // or not a chaos plan is active.
  double injected = 0.0;
  const int max_attempts = 1 + std::max(0, fetch_retries_);
  for (int attempt = 1;; ++attempt) {
    try {
      injected += support::fault_hit("buildcache.fetch", hash,
                                     static_cast<std::uint64_t>(attempt));
      break;
    } catch (const TransientError&) {
      if (attempt >= max_attempts) throw;
      retries_.fetch_add(1, std::memory_order_relaxed);
      injected += base_latency_seconds_;  // re-request round trip
    }
  }
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(hash);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  CacheEntry entry = it->second;
  entry.injected_latency_seconds = injected;
  return entry;
}

void BinaryCache::push(const spec::Spec& concrete, std::uint64_t size_bytes) {
  auto hash = concrete.dag_hash();
  support::fault_hit("buildcache.push", hash);
  CacheEntry entry;
  entry.dag_hash = hash;
  entry.short_spec = concrete.short_str();
  entry.size_bytes = size_bytes;
  Shard& shard = shard_for(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.insert_or_assign(std::move(hash), std::move(entry));
  }
  pushes_.fetch_add(1, std::memory_order_relaxed);
}

bool BinaryCache::contains(const spec::Spec& concrete) const {
  auto hash = concrete.dag_hash();
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(hash) > 0;
}

std::size_t BinaryCache::size() const {
  std::size_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

CacheStats BinaryCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.pushes = pushes_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  return s;
}

double BinaryCache::fetch_cost_seconds(std::uint64_t size_bytes) const {
  return base_latency_seconds_ +
         static_cast<double>(size_bytes) / bytes_per_second_;
}

}  // namespace benchpark::buildcache
