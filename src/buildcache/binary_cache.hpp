// The rolling binary cache (Spack component 5; Sections 3.1 and 7.2):
// "the Spack build pipeline and rolling binary cache makes packages
// available to all Spack users ... focusing the time to build
// applications on only the dependencies with special requirements."
//
// A thread-safe, hash-addressed build mirror. Entries are keyed by the
// concrete spec's DAG hash and sharded; each shard publishes an immutable
// RCU-style snapshot (support/snapshot.hpp), so the steady-state read
// path — fetch hits, contains, size — is a single atomic load with zero
// locks. Writers copy the shard map under the shard mutex and publish
// atomically; hit/miss/push counters are atomics (release increments,
// acquire snapshot reads — see stats()). Fetch latency is modeled (mirror
// round-trip plus size over sustained bandwidth) — the decision logic
// (what is mirrored, what is rebuilt) is fully real.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/spec/spec.hpp"
#include "src/support/hash.hpp"
#include "src/support/snapshot.hpp"

namespace benchpark::buildcache {

/// One mirrored build artifact, addressed by the spec's DAG hash.
struct CacheEntry {
  std::string dag_hash;
  std::string short_spec;  // human-readable "name@version" for logs
  std::uint64_t size_bytes = 0;
  /// Push order (process-wide, 1-based). The *rolling* cache evicts the
  /// oldest sequence first when over capacity; an overwrite refreshes it.
  std::uint64_t sequence = 0;
  /// Modeled extra seconds this fetch paid to injected faults (failed
  /// attempts re-request the mirror; latency rules add delay). Set on the
  /// copy fetch() returns, never stored.
  double injected_latency_seconds = 0.0;
};

/// Cumulative counters; snapshot via BinaryCache::stats(). Snapshots are
/// torn-read-free: within one struct, evictions <= pushes always holds,
/// and every counter is monotone across successive snapshots (release
/// increments read back in causal order with acquire loads).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t pushes = 0;
  /// Transient fetch attempts that were retried internally.
  std::size_t retries = 0;
  /// Artifacts dropped to stay under the configured capacity.
  std::size_t evictions = 0;

  [[nodiscard]] std::size_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

class BinaryCache {
public:
  /// Default transfer model: 20 ms mirror round-trip latency plus 1 GB/s
  /// sustained download bandwidth.
  BinaryCache() = default;
  BinaryCache(double base_latency_seconds, double bytes_per_second);

  BinaryCache(const BinaryCache&) = delete;
  BinaryCache& operator=(const BinaryCache&) = delete;

  /// Mirror lookup; counts a hit or a miss. The request passes through
  /// the "buildcache.fetch" fault site: transient faults are retried
  /// internally up to fetch_retries() times (each retry paying another
  /// modeled round-trip, accumulated into the returned entry's
  /// injected_latency_seconds); exhausted transients rethrow
  /// TransientError and permanent faults rethrow PermanentError — the
  /// installer falls back to a source build in both cases.
  [[nodiscard]] std::optional<CacheEntry> fetch(const spec::Spec& concrete);

  /// Transparent retries per fetch after the first attempt (default 2).
  void set_fetch_retries(int retries) { fetch_retries_ = retries; }
  [[nodiscard]] int fetch_retries() const { return fetch_retries_; }

  /// Publish a built artifact (every successful source build feeds the
  /// mirror — the paper's rolling cache). Overwrites any entry with the
  /// same DAG hash.
  void push(const spec::Spec& concrete, std::uint64_t size_bytes);

  /// Lookup that does not touch the hit/miss counters.
  [[nodiscard]] bool contains(const spec::Spec& concrete) const;

  /// Number of distinct mirrored artifacts.
  [[nodiscard]] std::size_t size() const;

  /// Rolling-cache capacity in bytes; 0 (the default) is unbounded.
  /// When a push takes the cache over capacity, oldest-pushed artifacts
  /// are evicted until it fits again — an artifact larger than the whole
  /// capacity is evicted immediately after its own push.
  void set_capacity_bytes(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return capacity_bytes_.load(std::memory_order_relaxed);
  }
  /// Bytes currently mirrored across all shards.
  [[nodiscard]] std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] CacheStats stats() const;

  /// Every mirrored entry, sorted by push sequence (oldest first) so
  /// persisted snapshots are deterministic. injected_latency_seconds is
  /// transient and always zero here.
  [[nodiscard]] std::vector<CacheEntry> export_entries() const;

  /// Replace contents and counters from a persisted snapshot. Entries
  /// keep their original sequences and are published through the normal
  /// copy-on-write snapshot path, so oldest-sequence-first eviction order
  /// survives a persist/reload cycle; stats() resumes from `stats`
  /// instead of resetting to zero.
  void restore(const std::vector<CacheEntry>& entries,
               const CacheStats& stats);

  /// Modeled seconds to download size_bytes from the mirror.
  [[nodiscard]] double fetch_cost_seconds(std::uint64_t size_bytes) const;

private:
  static constexpr std::size_t kShards = 16;

  using Map = std::unordered_map<std::string, CacheEntry,
                                 support::TransparentStringHash,
                                 std::equal_to<>>;
  /// Readers load `snapshot` lock-free; writers serialize on `mu`,
  /// copy the current map, mutate the copy, and publish it.
  struct Shard {
    std::mutex mu;
    support::SnapshotPtr<Map> snapshot;
  };

  [[nodiscard]] Shard& shard_for(std::string_view dag_hash) const;
  /// Evict oldest-sequence entries until total_bytes_ fits the capacity.
  void evict_to_capacity();

  double base_latency_seconds_ = 0.02;
  double bytes_per_second_ = 1.0e9;
  int fetch_retries_ = 2;
  mutable std::array<Shard, kShards> shards_;
  /// Serializes evictions (never held while a shard mutex is already
  /// held; lock order is evict_mu_ -> shard.mu).
  std::mutex evict_mu_;
  std::atomic<std::uint64_t> capacity_bytes_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> pushes_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace benchpark::buildcache
