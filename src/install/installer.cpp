#include "src/install/installer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/archspec/microarch.hpp"
#include "src/support/error.hpp"
#include "src/support/hash.hpp"
#include "src/support/parallel.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::install {

std::string_view install_source_name(InstallSource s) {
  switch (s) {
    case InstallSource::source_build: return "source";
    case InstallSource::binary_cache: return "cache";
    case InstallSource::external: return "external";
    case InstallSource::already: return "installed";
  }
  return "?";
}

// -------------------------------------------------------------- InstallTree

InstallTree::InstallTree(std::string root) : root_(std::move(root)) {}

InstallTree::InstallTree(InstallTree&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  root_ = std::move(other.root_);
  records_ = std::move(other.records_);
}

InstallTree& InstallTree::operator=(InstallTree&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    root_ = std::move(other.root_);
    records_ = std::move(other.records_);
  }
  return *this;
}

bool InstallTree::installed(const spec::Spec& concrete) const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.count(concrete.dag_hash()) > 0;
}

const InstallRecord* InstallTree::find(std::string_view dag_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(dag_hash));
  return it == records_.end() ? nullptr : &it->second;
}

std::optional<InstallRecord> InstallTree::lookup(
    std::string_view dag_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(dag_hash));
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::size_t InstallTree::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<const InstallRecord*> InstallTree::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const InstallRecord*> out;
  out.reserve(records_.size());
  for (const auto& [hash, record] : records_) out.push_back(&record);
  return out;
}

std::string InstallTree::prefix_for(const spec::Spec& concrete) const {
  return root_ + "/" + concrete.target() + "/" + concrete.name() + "-" +
         concrete.concrete_version().str() + "-" + concrete.dag_hash();
}

void InstallTree::add(InstallRecord record) {
  auto hash = record.spec.dag_hash();
  std::lock_guard<std::mutex> lock(mu_);
  records_.insert_or_assign(hash, std::move(record));
}

// ---------------------------------------------------------------- Installer

namespace {

/// RAII release of an in-flight DAG-hash claim.
struct FlightGuard {
  std::mutex& mu;
  std::condition_variable& cv;
  std::unordered_set<std::string>& in_flight;
  const std::string& hash;

  ~FlightGuard() {
    {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.erase(hash);
    }
    cv.notify_all();
  }
};

}  // namespace

Installer::Installer(pkg::RepoStack repos, InstallTree* tree,
                     buildcache::BinaryCache* cache)
    : repos_(std::move(repos)), tree_(tree), cache_(cache) {
  if (!tree_) throw Error("installer requires an install tree");
}

std::vector<const spec::Spec*> Installer::build_order(
    const spec::Spec& root) {
  std::vector<const spec::Spec*> order;
  std::vector<std::string> seen;
  // Post-order DFS: dependencies before dependents.
  auto visit = [&](auto&& self, const spec::Spec& s) -> void {
    auto hash = s.dag_hash();
    if (std::find(seen.begin(), seen.end(), hash) != seen.end()) return;
    seen.push_back(hash);
    for (const auto& dep : s.dependencies()) self(self, dep);
    order.push_back(&s);
  };
  visit(visit, root);
  return order;
}

InstallReport Installer::install(const spec::Spec& concrete,
                                 const InstallOptions& options) {
  if (!concrete.concrete()) {
    throw Error("installer requires a concrete spec; run the concretizer "
                "first: '" + concrete.str() + "'");
  }
  const auto order = build_order(concrete);
  const std::size_t count = order.size();

  // Resolve each node's dependency edges to closure indices once (hashes
  // are recomputed otherwise), then stratify into wavefronts: a node's
  // depth is one past its deepest dependency, so every node in a wave is
  // independent of every other and of later waves' members.
  std::vector<std::string> hashes(count);
  std::unordered_map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < count; ++i) {
    hashes[i] = order[i]->dag_hash();
    index.emplace(hashes[i], i);
  }
  std::vector<std::vector<std::size_t>> dep_indices(count);
  std::vector<std::size_t> depth(count, 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (const auto& dep : order[i]->dependencies()) {
      auto it = index.find(dep.dag_hash());
      if (it == index.end()) continue;  // defensive: closure is complete
      dep_indices[i].push_back(it->second);
      depth[i] = std::max(depth[i], depth[it->second] + 1);
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  std::vector<std::vector<std::size_t>> waves(max_depth + 1);
  for (std::size_t i = 0; i < count; ++i) waves[depth[i]].push_back(i);

  // Install each wavefront with its independent nodes spread across the
  // pool; per-node records and logs land in closure slots so the report
  // is assembled in deterministic topological order afterwards.
  const int threads = options.engine_threads > 0
                          ? options.engine_threads
                          : support::ThreadPool::default_threads();
  std::vector<InstallRecord> records(count);
  std::vector<std::string> logs(count);
  for (const auto& wave : waves) {
    support::parallel_for(
        wave.size(), threads, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t w = lo; w < hi; ++w) {
            std::size_t i = wave[w];
            records[i] = install_one(*order[i], options, logs[i]);
          }
        });
  }

  InstallReport report;
  std::vector<double> finish(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    double deps_done = 0.0;
    for (std::size_t d : dep_indices[i]) {
      deps_done = std::max(deps_done, finish[d]);
    }
    finish[i] = deps_done + records[i].simulated_seconds;
    report.critical_path_seconds =
        std::max(report.critical_path_seconds, finish[i]);
    report.total_simulated_seconds += records[i].simulated_seconds;
    switch (records[i].source) {
      case InstallSource::source_build: ++report.from_source; break;
      case InstallSource::binary_cache: ++report.from_cache; break;
      case InstallSource::external: ++report.externals; break;
      case InstallSource::already: ++report.already_installed; break;
    }
    report.build_log += logs[i];
    report.installed.push_back(std::move(records[i]));
  }
  return report;
}

InstallRecord Installer::install_one(const spec::Spec& concrete,
                                     const InstallOptions& options,
                                     std::string& log) {
  InstallRecord record;
  record.spec = concrete;
  const std::string hash = concrete.dag_hash();

  // Claim the hash: exactly one worker builds a given package even when
  // concurrent roots share a dependency; later arrivals block until the
  // builder finishes, then see it in the tree.
  {
    std::unique_lock<std::mutex> lock(flight_mu_);
    flight_cv_.wait(lock, [&] { return in_flight_.count(hash) == 0; });
    if (auto existing = tree_->lookup(hash)) {
      record = std::move(*existing);
      record.source = InstallSource::already;
      record.simulated_seconds = 0.0;
      log += "[+] " + concrete.short_str() + " already installed\n";
      return record;
    }
    in_flight_.insert(hash);
  }
  FlightGuard release{flight_mu_, flight_cv_, in_flight_, hash};

  if (concrete.is_external()) {
    record.prefix = concrete.external_prefix();
    record.source = InstallSource::external;
    record.simulated_seconds = 0.0;
    log += "[e] " + concrete.short_str() + " external at " + record.prefix +
           "\n";
    tree_->add(record);
    return record;
  }

  record.prefix = tree_->prefix_for(concrete);

  if (options.use_cache && cache_) {
    if (auto entry = cache_->fetch(concrete)) {
      record.source = InstallSource::binary_cache;
      record.simulated_seconds = cache_->fetch_cost_seconds(entry->size_bytes);
      log += "[c] " + concrete.short_str() + " fetched from binary cache (" +
             support::format_double(record.simulated_seconds, 3) + "s)\n";
      tree_->add(record);
      return record;
    }
  }

  const pkg::PackageRecipe& recipe = repos_.get(concrete.name());
  record.build_args = recipe.build_args(concrete);
  try {
    record.arch_flags = archspec::optimization_flags(
        concrete.compiler()->name,
        spec::Version(concrete.compiler()->versions.ranges()[0]
                          .exact_version()
                          ->str()),
        concrete.target());
  } catch (const SystemError&) {
    record.arch_flags = "-O2";  // unknown target/compiler pairing
  }
  record.source = InstallSource::source_build;
  // Amdahl-style parallel build: 30% serial (configure + link), the rest
  // scales with -j.
  double base = recipe.build_cost_seconds();
  double jobs = std::max(1, options.build_jobs);
  record.simulated_seconds = base * (0.3 + 0.7 / jobs);
  log += "[b] " + concrete.short_str() + " built from source with " +
         std::string(pkg::build_system_name(recipe.build_system())) + " (" +
         support::format_double(record.simulated_seconds, 4) + "s, " +
         record.arch_flags +
         (record.build_args.empty()
              ? std::string()
              : ", args: " + support::join(record.build_args, " ")) +
         ")\n";
  tree_->add(record);

  if (options.push_to_cache && cache_) {
    cache_->push(concrete, simulated_artifact_size(concrete));
  }
  return record;
}

std::uint64_t simulated_artifact_size(const spec::Spec& concrete) {
  // Deterministic pseudo-size in [1 MiB, 257 MiB) keyed by the hash.
  auto h = support::fnv1a(concrete.dag_hash());
  return (1u << 20) + (h % (256ull << 20));
}

}  // namespace benchpark::install
