#include "src/install/installer.hpp"

#include <algorithm>
#include <cmath>

#include "src/archspec/microarch.hpp"
#include "src/support/error.hpp"
#include "src/support/hash.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::install {

std::string_view install_source_name(InstallSource s) {
  switch (s) {
    case InstallSource::source_build: return "source";
    case InstallSource::binary_cache: return "cache";
    case InstallSource::external: return "external";
    case InstallSource::already: return "installed";
  }
  return "?";
}

// -------------------------------------------------------------- InstallTree

InstallTree::InstallTree(std::string root) : root_(std::move(root)) {}

bool InstallTree::installed(const spec::Spec& concrete) const {
  return records_.count(concrete.dag_hash()) > 0;
}

const InstallRecord* InstallTree::find(std::string_view dag_hash) const {
  auto it = records_.find(std::string(dag_hash));
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const InstallRecord*> InstallTree::all() const {
  std::vector<const InstallRecord*> out;
  out.reserve(records_.size());
  for (const auto& [hash, record] : records_) out.push_back(&record);
  return out;
}

std::string InstallTree::prefix_for(const spec::Spec& concrete) const {
  return root_ + "/" + concrete.target() + "/" + concrete.name() + "-" +
         concrete.concrete_version().str() + "-" + concrete.dag_hash();
}

void InstallTree::add(InstallRecord record) {
  auto hash = record.spec.dag_hash();
  records_.insert_or_assign(hash, std::move(record));
}

// ---------------------------------------------------------------- Installer

Installer::Installer(pkg::RepoStack repos, InstallTree* tree,
                     buildcache::BinaryCache* cache)
    : repos_(std::move(repos)), tree_(tree), cache_(cache) {
  if (!tree_) throw Error("installer requires an install tree");
}

std::vector<const spec::Spec*> Installer::build_order(
    const spec::Spec& root) {
  std::vector<const spec::Spec*> order;
  std::vector<std::string> seen;
  // Post-order DFS: dependencies before dependents.
  auto visit = [&](auto&& self, const spec::Spec& s) -> void {
    auto hash = s.dag_hash();
    if (std::find(seen.begin(), seen.end(), hash) != seen.end()) return;
    seen.push_back(hash);
    for (const auto& dep : s.dependencies()) self(self, dep);
    order.push_back(&s);
  };
  visit(visit, root);
  return order;
}

InstallReport Installer::install(const spec::Spec& concrete,
                                 const InstallOptions& options) {
  if (!concrete.concrete()) {
    throw Error("installer requires a concrete spec; run the concretizer "
                "first: '" + concrete.str() + "'");
  }
  InstallReport report;
  for (const auto* s : build_order(concrete)) {
    InstallRecord record = install_one(*s, options, report.build_log);
    report.total_simulated_seconds += record.simulated_seconds;
    switch (record.source) {
      case InstallSource::source_build: ++report.from_source; break;
      case InstallSource::binary_cache: ++report.from_cache; break;
      case InstallSource::external: ++report.externals; break;
      case InstallSource::already: ++report.already_installed; break;
    }
    report.installed.push_back(std::move(record));
  }
  return report;
}

InstallRecord Installer::install_one(const spec::Spec& concrete,
                                     const InstallOptions& options,
                                     std::string& log) {
  InstallRecord record;
  record.spec = concrete;

  if (const auto* existing = tree_->find(concrete.dag_hash())) {
    record = *existing;
    record.source = InstallSource::already;
    record.simulated_seconds = 0.0;
    log += "[+] " + concrete.short_str() + " already installed\n";
    return record;
  }

  if (concrete.is_external()) {
    record.prefix = concrete.external_prefix();
    record.source = InstallSource::external;
    record.simulated_seconds = 0.0;
    log += "[e] " + concrete.short_str() + " external at " + record.prefix +
           "\n";
    tree_->add(record);
    return record;
  }

  record.prefix = tree_->prefix_for(concrete);

  if (options.use_cache && cache_) {
    if (auto entry = cache_->fetch(concrete)) {
      record.source = InstallSource::binary_cache;
      record.simulated_seconds = cache_->fetch_cost_seconds(entry->size_bytes);
      log += "[c] " + concrete.short_str() + " fetched from binary cache (" +
             support::format_double(record.simulated_seconds, 3) + "s)\n";
      tree_->add(record);
      return record;
    }
  }

  const pkg::PackageRecipe& recipe = repos_.get(concrete.name());
  record.build_args = recipe.build_args(concrete);
  try {
    record.arch_flags = archspec::optimization_flags(
        concrete.compiler()->name,
        spec::Version(concrete.compiler()->versions.ranges()[0]
                          .exact_version()
                          ->str()),
        concrete.target());
  } catch (const SystemError&) {
    record.arch_flags = "-O2";  // unknown target/compiler pairing
  }
  record.source = InstallSource::source_build;
  // Amdahl-style parallel build: 30% serial (configure + link), the rest
  // scales with -j.
  double base = recipe.build_cost_seconds();
  double jobs = std::max(1, options.build_jobs);
  record.simulated_seconds = base * (0.3 + 0.7 / jobs);
  log += "[b] " + concrete.short_str() + " built from source with " +
         std::string(pkg::build_system_name(recipe.build_system())) + " (" +
         support::format_double(record.simulated_seconds, 4) + "s, " +
         record.arch_flags +
         (record.build_args.empty()
              ? std::string()
              : ", args: " + support::join(record.build_args, " ")) +
         ")\n";
  tree_->add(record);

  if (options.push_to_cache && cache_) {
    cache_->push(concrete, simulated_artifact_size(concrete));
  }
  return record;
}

std::uint64_t simulated_artifact_size(const spec::Spec& concrete) {
  // Deterministic pseudo-size in [1 MiB, 257 MiB) keyed by the hash.
  auto h = support::fnv1a(concrete.dag_hash());
  return (1u << 20) + (h % (256ull << 20));
}

}  // namespace benchpark::install
