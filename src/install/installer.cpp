#include "src/install/installer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "src/archspec/microarch.hpp"
#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/hash.hpp"
#include "src/support/parallel.hpp"
#include "src/support/rng.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::install {

std::string_view install_source_name(InstallSource s) {
  switch (s) {
    case InstallSource::source_build: return "source";
    case InstallSource::binary_cache: return "cache";
    case InstallSource::external: return "external";
    case InstallSource::already: return "installed";
  }
  return "?";
}

// -------------------------------------------------------------- InstallTree

InstallTree::InstallTree(std::string root) : root_(std::move(root)) {}

InstallTree::InstallTree(InstallTree&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  root_ = std::move(other.root_);
  records_ = std::move(other.records_);
}

InstallTree& InstallTree::operator=(InstallTree&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    root_ = std::move(other.root_);
    records_ = std::move(other.records_);
  }
  return *this;
}

bool InstallTree::installed(const spec::Spec& concrete) const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.count(concrete.dag_hash()) > 0;
}

const InstallRecord* InstallTree::find(std::string_view dag_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(dag_hash));
  return it == records_.end() ? nullptr : &it->second;
}

std::optional<InstallRecord> InstallTree::lookup(
    std::string_view dag_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(dag_hash));
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::size_t InstallTree::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<const InstallRecord*> InstallTree::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const InstallRecord*> out;
  out.reserve(records_.size());
  for (const auto& [hash, record] : records_) out.push_back(&record);
  return out;
}

std::string InstallTree::prefix_for(const spec::Spec& concrete) const {
  return root_ + "/" + concrete.target() + "/" + concrete.name() + "-" +
         concrete.concrete_version().str() + "-" + concrete.dag_hash();
}

void InstallTree::add(InstallRecord record) {
  auto hash = record.spec.dag_hash();
  std::lock_guard<std::mutex> lock(mu_);
  records_.insert_or_assign(hash, std::move(record));
}

// ---------------------------------------------------------------- Installer

namespace {

/// RAII release of an in-flight DAG-hash claim.
struct FlightGuard {
  std::mutex& mu;
  std::condition_variable& cv;
  std::unordered_set<std::string>& in_flight;
  const std::string& hash;

  ~FlightGuard() {
    {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.erase(hash);
    }
    cv.notify_all();
  }
};

/// Modeled wait before retry `attempt` (1-based): exponential backoff
/// with deterministic jitter keyed on (seed, hash, attempt) so the same
/// plan produces the same report bytes run after run.
double retry_backoff_seconds(const InstallOptions& options,
                             std::string_view hash, int attempt) {
  double base = std::max(0.0, options.backoff_base_seconds) *
                std::pow(2.0, attempt - 1);
  support::Rng rng(options.retry_seed ^ support::fnv1a(hash) ^
                   (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt)));
  return base * (1.0 + std::max(0.0, options.backoff_jitter) *
                           rng.next_double());
}

}  // namespace

// ------------------------------------------------------------- Coordination

Installer::Coordination::Coordination(const std::vector<spec::Spec>& roots) {
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (const spec::Spec* node : Installer::build_order(roots[i])) {
      owner_.try_emplace(node->dag_hash(), i);
    }
  }
}

std::optional<std::size_t> Installer::Coordination::owner(
    const std::string& dag_hash) const {
  auto it = owner_.find(dag_hash);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

Installer::Installer(pkg::RepoStack repos, InstallTree* tree,
                     buildcache::BinaryCache* cache)
    : repos_(std::move(repos)), tree_(tree), cache_(cache) {
  if (!tree_) throw Error("installer requires an install tree");
}

std::vector<const spec::Spec*> Installer::build_order(
    const spec::Spec& root) {
  std::vector<const spec::Spec*> order;
  std::vector<std::string> seen;
  // Post-order DFS: dependencies before dependents.
  auto visit = [&](auto&& self, const spec::Spec& s) -> void {
    auto hash = s.dag_hash();
    if (std::find(seen.begin(), seen.end(), hash) != seen.end()) return;
    seen.push_back(hash);
    for (const auto& dep : s.dependencies()) self(self, dep);
    order.push_back(&s);
  };
  visit(visit, root);
  return order;
}

InstallReport Installer::install(const spec::Spec& concrete,
                                 const InstallOptions& options) {
  return install(concrete, options, nullptr, 0);
}

InstallReport Installer::install(const spec::Spec& concrete,
                                 const InstallOptions& options,
                                 Coordination* coord,
                                 std::size_t root_index) {
  if (!concrete.concrete()) {
    throw Error("installer requires a concrete spec; run the concretizer "
                "first: '" + concrete.str() + "'");
  }
  obs::ScopedSpan install_span("install", "install");
  if (install_span.active()) {
    install_span.annotate("root", concrete.short_str());
  }
  const auto order = build_order(concrete);
  const std::size_t count = order.size();

  // Resolve each node's dependency edges to closure indices once (hashes
  // are recomputed otherwise), then stratify into wavefronts: a node's
  // depth is one past its deepest dependency, so every node in a wave is
  // independent of every other and of later waves' members.
  std::vector<std::string> hashes(count);
  std::unordered_map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < count; ++i) {
    hashes[i] = order[i]->dag_hash();
    index.emplace(hashes[i], i);
  }
  std::vector<std::vector<std::size_t>> dep_indices(count);
  std::vector<std::size_t> depth(count, 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (const auto& dep : order[i]->dependencies()) {
      auto it = index.find(dep.dag_hash());
      if (it == index.end()) continue;  // defensive: closure is complete
      dep_indices[i].push_back(it->second);
      depth[i] = std::max(depth[i], depth[it->second] + 1);
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  std::vector<std::vector<std::size_t>> waves(max_depth + 1);
  for (std::size_t i = 0; i < count; ++i) waves[depth[i]].push_back(i);

  // Install each wavefront with its independent nodes spread across the
  // pool; per-node records and logs land in closure slots so the report
  // is assembled in deterministic topological order afterwards.
  const int threads = options.engine_threads > 0
                          ? options.engine_threads
                          : support::ThreadPool::default_threads();
  std::vector<InstallRecord> records(count);
  std::vector<std::string> logs(count);
  // Per-node failure isolation: a failed node poisons only its dependents
  // (each element is written by exactly one worker). Failed owned hashes
  // are posted to the coordination board so other roots waiting on them
  // wake up instead of deadlocking.
  std::vector<char> failed(count, 0);
  std::vector<std::exception_ptr> errors(count);
  auto mark_failed = [&](const std::string& hash, const std::string& why) {
    if (!coord) return;
    // Only the owning root may post a hash as failed: a non-owner that
    // skips the node (because one of *its* deps failed) must not poison a
    // build the owner is completing successfully.
    auto it = coord->owner_.find(hash);
    if (it == coord->owner_.end() || it->second != root_index) return;
    {
      std::lock_guard<std::mutex> lock(coord->mu_);
      coord->failed_.try_emplace(hash, why);
    }
    coord->cv_.notify_all();
  };
  try {
    for (const auto& wave : waves) {
      support::parallel_for(
          wave.size(), threads, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t w = lo; w < hi; ++w) {
              std::size_t i = wave[w];
              std::size_t bad_dep = count;
              for (std::size_t d : dep_indices[i]) {
                if (failed[d]) { bad_dep = d; break; }
              }
              if (bad_dep != count) {
                failed[i] = 1;
                logs[i] = "[x] " + order[i]->short_str() +
                          " skipped: dependency '" +
                          order[bad_dep]->name() + "' failed\n";
                mark_failed(hashes[i], "dependency '" +
                                           order[bad_dep]->name() +
                                           "' failed");
                continue;
              }
              try {
                records[i] =
                    install_one(*order[i], options, logs[i], coord,
                                root_index);
              } catch (const std::exception& e) {
                failed[i] = 1;
                errors[i] = std::current_exception();
                logs[i] += "[x] " + order[i]->short_str() + " failed: " +
                           e.what() + "\n";
                mark_failed(hashes[i], e.what());
              }
            }
          });
    }
  } catch (...) {
    // Engine-level abort (not a per-node failure): make sure no other
    // root blocks forever on a hash this root owned but never resolved.
    if (coord) {
      for (std::size_t i = 0; i < count; ++i) {
        auto it = coord->owner_.find(hashes[i]);
        if (it != coord->owner_.end() && it->second == root_index &&
            !tree_->lookup(hashes[i])) {
          mark_failed(hashes[i], "owning install aborted");
        }
      }
    }
    throw;
  }

  InstallReport report;
  std::vector<double> finish(count, 0.0);
  std::size_t failures = 0;
  std::string first_failure;
  for (std::size_t i = 0; i < count; ++i) {
    report.build_log += logs[i];
    if (failed[i]) {
      ++failures;
      if (first_failure.empty() && errors[i]) {
        try {
          std::rethrow_exception(errors[i]);
        } catch (const std::exception& e) {
          first_failure = e.what();
        }
      }
      continue;
    }
    double deps_done = 0.0;
    for (std::size_t d : dep_indices[i]) {
      deps_done = std::max(deps_done, finish[d]);
    }
    finish[i] = deps_done + records[i].simulated_seconds;
    report.critical_path_seconds =
        std::max(report.critical_path_seconds, finish[i]);
    report.total_simulated_seconds += records[i].simulated_seconds;
    report.total_attempts += static_cast<std::size_t>(
        std::max(0, records[i].attempts));
    report.retry_wait_seconds += records[i].retry_wait_seconds;
    switch (records[i].source) {
      case InstallSource::source_build: ++report.from_source; break;
      case InstallSource::binary_cache: ++report.from_cache; break;
      case InstallSource::external: ++report.externals; break;
      case InstallSource::already: ++report.already_installed; break;
    }
    report.installed.push_back(std::move(records[i]));
  }
  if (failures > 0) {
    throw PermanentError(
        "install of '" + concrete.short_str() + "' failed: " +
        std::to_string(failures) + " of " + std::to_string(count) +
        " packages failed or were skipped" +
        (first_failure.empty() ? "" : ("; first failure: " + first_failure)));
  }
  return report;
}

InstallRecord Installer::await_foreign(const spec::Spec& concrete,
                                       std::string& log,
                                       Coordination& coord) const {
  const std::string hash = concrete.dag_hash();
  std::unique_lock<std::mutex> lock(coord.mu_);
  // Bounded wait: a coordination bug must surface as a loud error, never
  // as a wedged DAG. The owner posts every hash it resolves (install or
  // failure), so in a correct run this never times out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  bool resolved = coord.cv_.wait_until(lock, deadline, [&] {
    return coord.failed_.count(hash) > 0 || tree_->lookup(hash).has_value();
  });
  if (!resolved) {
    throw PermanentError("timed out waiting for '" + concrete.short_str() +
                         "' to be installed by its owning root (wedged "
                         "claim?)");
  }
  if (auto it = coord.failed_.find(hash); it != coord.failed_.end()) {
    throw PermanentError("dependency '" + concrete.short_str() +
                         "' failed in its owning install: " + it->second);
  }
  InstallRecord record = *tree_->lookup(hash);
  record.source = InstallSource::already;
  record.simulated_seconds = 0.0;
  record.attempts = 0;
  record.retry_wait_seconds = 0.0;
  log += "[+] " + concrete.short_str() + " already installed\n";
  return record;
}

InstallRecord Installer::install_one(const spec::Spec& concrete,
                                     const InstallOptions& options,
                                     std::string& log, Coordination* coord,
                                     std::size_t root_index) {
  InstallRecord record;
  record.spec = concrete;
  const std::string hash = concrete.dag_hash();
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan pkg_span(
      collector,
      collector.enabled() ? "pkg:" + concrete.name() : std::string(),
      "install");
  if (pkg_span.active()) pkg_span.annotate("hash", hash);

  // Coordinated installs defer hashes elected to another root: wait for
  // the owner to install (or fail) instead of racing it, which makes the
  // builder attribution — and so the whole report — deterministic.
  if (coord) {
    auto it = coord->owner_.find(hash);
    if (it != coord->owner_.end() && it->second != root_index) {
      pkg_span.annotate("outcome", "foreign");
      return await_foreign(concrete, log, *coord);
    }
  }
  // Publish to waiters in other roots once this node is in the tree.
  auto announce = [&] {
    if (!coord) return;
    { std::lock_guard<std::mutex> lock(coord->mu_); }
    coord->cv_.notify_all();
  };

  // Claim the hash: exactly one worker builds a given package even when
  // concurrent roots share a dependency; later arrivals block until the
  // builder finishes, then see it in the tree. A builder that fails
  // releases the claim (FlightGuard), so a blocked worker retries the
  // build itself rather than deadlocking.
  {
    std::unique_lock<std::mutex> lock(flight_mu_);
    flight_cv_.wait(lock, [&] { return in_flight_.count(hash) == 0; });
    if (auto existing = tree_->lookup(hash)) {
      record = std::move(*existing);
      record.source = InstallSource::already;
      record.simulated_seconds = 0.0;
      record.attempts = 0;
      record.retry_wait_seconds = 0.0;
      log += "[+] " + concrete.short_str() + " already installed\n";
      pkg_span.annotate("outcome", "already");
      return record;
    }
    in_flight_.insert(hash);
  }
  FlightGuard release{flight_mu_, flight_cv_, in_flight_, hash};

  if (concrete.is_external()) {
    record.prefix = concrete.external_prefix();
    record.source = InstallSource::external;
    record.simulated_seconds = 0.0;
    record.attempts = 0;
    pkg_span.annotate("outcome", "external");
    log += "[e] " + concrete.short_str() + " external at " + record.prefix +
           "\n";
    tree_->add(record);
    announce();
    return record;
  }

  record.prefix = tree_->prefix_for(concrete);

  if (options.use_cache && cache_) {
    try {
      if (auto entry = cache_->fetch(concrete)) {
        record.source = InstallSource::binary_cache;
        record.simulated_seconds =
            cache_->fetch_cost_seconds(entry->size_bytes) +
            entry->injected_latency_seconds;
        log += "[c] " + concrete.short_str() +
               " fetched from binary cache (" +
               support::format_double(record.simulated_seconds, 3) + "s)\n";
        if (pkg_span.active()) {
          pkg_span.annotate("outcome", "cache");
          // One attempt span per report attempt (a cache fetch counts 1).
          collector.emit_span("attempt", "install", record.simulated_seconds,
                              {{"package", concrete.name()},
                               {"attempt", "1"},
                               {"result", "cache"}});
        }
        tree_->add(record);
        announce();
        return record;
      }
    } catch (const Error& e) {
      // A mirror that keeps failing must not fail the install: fall back
      // to a source build, exactly like a cache miss.
      log += "[w] " + concrete.short_str() + " cache fetch failed (" +
             e.what() + "); building from source\n";
    }
  }

  const pkg::PackageRecipe& recipe = repos_.get(concrete.name());
  record.build_args = recipe.build_args(concrete);
  try {
    record.arch_flags = archspec::optimization_flags(
        concrete.compiler()->name,
        spec::Version(concrete.compiler()->versions.ranges()[0]
                          .exact_version()
                          ->str()),
        concrete.target());
  } catch (const SystemError&) {
    record.arch_flags = "-O2";  // unknown target/compiler pairing
  }
  record.source = InstallSource::source_build;
  // Amdahl-style parallel build: 30% serial (configure + link), the rest
  // scales with -j.
  double base = recipe.build_cost_seconds();
  double jobs = std::max(1, options.build_jobs);
  double step_seconds = base * (0.3 + 0.7 / jobs);

  // The build step itself, behind the fault gate: transient failures are
  // retried with exponential backoff (modeled, deterministic); a
  // permanent fault or exhausted retries fails the package.
  const int max_attempts = 1 + std::max(0, options.max_retries);
  double injected_latency = 0.0;
  for (int attempt = 1;; ++attempt) {
    record.attempts = attempt;
    try {
      injected_latency = support::fault_hit(
          "install.build_step", hash, static_cast<std::uint64_t>(attempt));
      break;
    } catch (const TransientError& e) {
      if (attempt >= max_attempts) {
        throw PermanentError("build of '" + concrete.short_str() +
                             "' failed after " + std::to_string(attempt) +
                             " attempts: " + e.what());
      }
      double wait = retry_backoff_seconds(options, hash, attempt);
      record.retry_wait_seconds += wait;
      log += "[r] " + concrete.short_str() + " build attempt " +
             std::to_string(attempt) + " failed (" + e.what() +
             "); retrying in " + support::format_double(wait, 3) + "s\n";
    }
  }
  record.simulated_seconds =
      step_seconds + record.retry_wait_seconds + injected_latency;
  if (pkg_span.active()) {
    pkg_span.annotate("outcome", "source");
    // Emit attempt spans only after the build succeeded, so the trace's
    // "attempt" count equals report.total_attempts exactly (failed
    // packages contribute no attempts to the report). Backoff waits are
    // deterministic, so pre-success attempts are reconstructed here.
    for (int a = 1; a <= record.attempts; ++a) {
      const bool final_attempt = a == record.attempts;
      double modeled = final_attempt
                           ? step_seconds + injected_latency
                           : retry_backoff_seconds(options, hash, a);
      collector.emit_span("attempt", "install", modeled,
                          {{"package", concrete.name()},
                           {"attempt", std::to_string(a)},
                           {"result", final_attempt ? "built" : "retried"}});
    }
  }
  log += "[b] " + concrete.short_str() + " built from source with " +
         std::string(pkg::build_system_name(recipe.build_system())) + " (" +
         support::format_double(record.simulated_seconds, 4) + "s, " +
         record.arch_flags +
         (record.build_args.empty()
              ? std::string()
              : ", args: " + support::join(record.build_args, " ")) +
         (record.attempts > 1
              ? ", attempts: " + std::to_string(record.attempts)
              : std::string()) +
         ")\n";
  tree_->add(record);
  announce();

  if (options.push_to_cache && cache_) {
    try {
      cache_->push(concrete, simulated_artifact_size(concrete));
    } catch (const Error& e) {
      // The rolling cache is best-effort: a failed publish never fails
      // the install, the next builder simply rebuilds from source.
      log += "[w] " + concrete.short_str() + " cache push failed (" +
             e.what() + ")\n";
    }
  }
  return record;
}

std::uint64_t simulated_artifact_size(const spec::Spec& concrete) {
  // Deterministic pseudo-size in [1 MiB, 257 MiB) keyed by the hash.
  auto h = support::fnv1a(concrete.dag_hash());
  return (1u << 20) + (h % (256ull << 20));
}

}  // namespace benchpark::install
