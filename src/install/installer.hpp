// The installation engine (Spack component 4): installs a concrete spec
// DAG from source or binary cache into an install tree.
//
// Builds are *simulated*: a package "build" costs its recipe's
// build_cost_seconds (scaled by make-level parallelism), a cache fetch
// costs the mirror transfer model, and externals are free. What is fully
// real is everything the paper's workflow depends on: topological
// ordering, per-hash install prefixes, skip-if-installed semantics, build
// logs, and the produced install-tree database.
//
// The engine schedules the closure as dependency wavefronts on the shared
// ThreadPool: all DAG nodes whose dependencies are satisfied build or
// fetch concurrently (engine_threads controls the width; 1 keeps the old
// serial walk). The InstallTree locks internally and an in-flight claim
// set guarantees a given DAG hash is built exactly once even when
// distinct roots race on a shared dependency.
//
// Failure handling: every build step passes through the
// "install.build_step" fault site and is retried per package with
// exponential backoff and deterministic jitter (InstallOptions
// max_retries / backoff_base_seconds / backoff_jitter); cache fetches
// that keep failing fall back to source builds; cache pushes are
// best-effort. A package that exhausts its retries throws PermanentError,
// its in-flight claim is released (so a concurrent worker may try again
// rather than deadlock), its dependents are skipped, and the install
// reports the aggregate failure. For concurrent multi-root installs a
// Coordination object deterministically elects one root as the builder of
// every shared hash, which is what makes same-seed install reports
// byte-identical run to run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"

namespace benchpark::install {

/// How an install was satisfied.
enum class InstallSource { source_build, binary_cache, external, already };

[[nodiscard]] std::string_view install_source_name(InstallSource s);

/// One installed package.
struct InstallRecord {
  spec::Spec spec;
  std::string prefix;          // install prefix (hash-addressed)
  InstallSource source = InstallSource::source_build;
  double simulated_seconds = 0.0;
  std::vector<std::string> build_args;  // Figure 11 cmake args used
  /// Target-tuned compiler flags from archspec (Section 3.1.3: "tailor
  /// build recipes to the target architecture").
  std::string arch_flags;
  /// Build/fetch attempts this record spent: 1 for a clean build or cache
  /// fetch, 1+k after k transient retries, 0 for externals and
  /// already-installed records.
  int attempts = 1;
  /// Modeled seconds spent waiting in retry backoff (included in
  /// simulated_seconds).
  double retry_wait_seconds = 0.0;
};

/// Result of installing one root spec (closure).
struct InstallReport {
  std::vector<InstallRecord> installed;  // topological order
  /// Serial sum of every node's simulated seconds (what one builder with
  /// no DAG parallelism would pay).
  double total_simulated_seconds = 0.0;
  /// Longest dependency-chain time through the closure: the modeled
  /// wall-clock of the wavefront engine with unbounded workers.
  double critical_path_seconds = 0.0;
  std::size_t from_cache = 0;
  std::size_t from_source = 0;
  std::size_t externals = 0;
  std::size_t already_installed = 0;
  /// Sum of per-record attempts (equals installed.size() minus externals
  /// and already-installed records when nothing was retried).
  std::size_t total_attempts = 0;
  /// Total modeled backoff across all retried packages.
  double retry_wait_seconds = 0.0;
  std::string build_log;
};

/// The install tree: database of installed specs keyed by DAG hash.
/// Internally locked; safe to share across concurrent install workers.
class InstallTree {
public:
  explicit InstallTree(std::string root = "/opt/benchpark/install");

  // Movable despite the internal mutex (the Workspace holds its tree by
  // value); moving while installers are running on it is undefined.
  InstallTree(InstallTree&& other) noexcept;
  InstallTree& operator=(InstallTree&& other) noexcept;

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] bool installed(const spec::Spec& concrete) const;
  /// Pointer into the database (records are never erased, so std::map
  /// node stability keeps it valid); prefer lookup() from concurrent code
  /// since the pointee may be re-assigned by a later add().
  [[nodiscard]] const InstallRecord* find(std::string_view dag_hash) const;
  /// Snapshot copy of the record for a hash, if installed.
  [[nodiscard]] std::optional<InstallRecord> lookup(
      std::string_view dag_hash) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<const InstallRecord*> all() const;

  /// Prefix layout: <root>/<target>/<name>-<version>-<hash>.
  [[nodiscard]] std::string prefix_for(const spec::Spec& concrete) const;

  void add(InstallRecord record);

private:
  std::string root_;
  mutable std::mutex mu_;
  std::map<std::string, InstallRecord> records_;  // by dag hash
};

struct InstallOptions {
  /// Make-level parallelism for source builds ("make -jN").
  int build_jobs = 8;
  /// Consult/populate the binary cache.
  bool use_cache = true;
  /// Push successful source builds back to the cache (the paper's rolling
  /// binary cache model).
  bool push_to_cache = true;
  /// DAG-level engine parallelism: how many independent nodes of one
  /// wavefront build/fetch concurrently. 0 means
  /// support::ThreadPool::default_threads() (BENCHPARK_NUM_THREADS).
  int engine_threads = 0;
  /// Per-package retries after the first failed build attempt. Transient
  /// failures (TransientError, e.g. injected via BENCHPARK_FAULT_PLAN)
  /// are retried; anything else fails the package immediately.
  int max_retries = 2;
  /// First backoff wait in modeled seconds; attempt k waits
  /// backoff_base_seconds * 2^(k-1), plus jitter.
  double backoff_base_seconds = 0.25;
  /// Uniform jitter fraction added to each wait (deterministic under
  /// retry_seed, keyed by package hash and attempt).
  double backoff_jitter = 0.25;
  /// Seed for the backoff jitter.
  std::uint64_t retry_seed = 0xb5eedULL;
};

class Installer {
public:
  Installer(pkg::RepoStack repos, InstallTree* tree,
            buildcache::BinaryCache* cache);

  /// Shared state for concurrent multi-root installs (one per
  /// Environment::install_all call): a deterministic builder election —
  /// every hash in the combined closure is built by the first root, in
  /// manifest order, whose closure contains it — plus a failure board so
  /// a root waiting on another root's package is woken (and fails loudly)
  /// instead of deadlocking when the owning build fails or aborts.
  class Coordination {
  public:
    /// Elect builders for the given roots (in order).
    explicit Coordination(const std::vector<spec::Spec>& roots);

    /// Owning root index for a hash, if any root's closure contains it.
    [[nodiscard]] std::optional<std::size_t> owner(
        const std::string& dag_hash) const;

  private:
    friend class Installer;
    std::unordered_map<std::string, std::size_t> owner_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, std::string> failed_;  // hash → reason
  };

  /// Install `concrete` and its full dependency closure. Throws
  /// PermanentError when any package in the closure fails for good (its
  /// dependents are skipped, everything independent still installs, and
  /// in-flight claims are released so a later call can retry).
  InstallReport install(const spec::Spec& concrete,
                        const InstallOptions& options = {});

  /// As above, for one root of a coordinated multi-root install: nodes
  /// owned by a different root are awaited rather than built.
  InstallReport install(const spec::Spec& concrete,
                        const InstallOptions& options, Coordination* coord,
                        std::size_t root_index);

  /// Topological (dependencies-first) ordering of the spec closure,
  /// deduplicated by DAG hash.
  [[nodiscard]] static std::vector<const spec::Spec*> build_order(
      const spec::Spec& root);

private:
  InstallRecord install_one(const spec::Spec& concrete,
                            const InstallOptions& options, std::string& log,
                            Coordination* coord, std::size_t root_index);
  InstallRecord await_foreign(const spec::Spec& concrete, std::string& log,
                              Coordination& coord) const;

  pkg::RepoStack repos_;
  InstallTree* tree_;                  // not owned
  buildcache::BinaryCache* cache_;     // not owned, may be null

  // In-flight claims: exactly one worker builds a given DAG hash; later
  // arrivals (concurrent roots sharing a dependency) wait, then record it
  // as already installed.
  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  std::unordered_set<std::string> in_flight_;
};

/// Deterministic simulated artifact size for a package (bytes).
std::uint64_t simulated_artifact_size(const spec::Spec& concrete);

}  // namespace benchpark::install
