#include "src/ramble/experiment.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/parallel.hpp"

namespace benchpark::ramble {

ExperimentTemplate ExperimentTemplate::from_yaml(
    const std::string& name_template, const yaml::Node& body) {
  ExperimentTemplate tmpl;
  tmpl.name_template = name_template;
  if (body.has("variables")) {
    for (const auto& [name, value] : body.at("variables").map()) {
      if (value.is_sequence()) {
        tmpl.vectors.emplace_back(name, value.as_string_list());
      } else if (value.is_scalar()) {
        tmpl.scalars[name] = value.as_string();
      } else {
        throw ExperimentError("experiment variable '" + name +
                              "' must be a scalar or a list");
      }
    }
  }
  if (body.has("matrices")) {
    for (const auto& entry : body.at("matrices").items()) {
      if (entry.is_mapping()) {
        // - size_threads:\n  - n\n  - n_threads
        for (const auto& [mname, vars] : entry.map()) {
          tmpl.matrices.emplace_back(mname, vars.as_string_list());
        }
      } else {
        // Anonymous matrix: - [n, n_threads]
        tmpl.matrices.emplace_back("matrix", entry.as_string_list());
      }
    }
  }
  return tmpl;
}

std::vector<Experiment> expand_experiments(const ExperimentTemplate& tmpl,
                                           const VariableMap& base,
                                           int threads) {
  // Which vector variables are consumed by matrices?
  std::vector<std::string> matrix_vars;
  for (const auto& [mname, vars] : tmpl.matrices) {
    for (const auto& v : vars) {
      if (std::find(matrix_vars.begin(), matrix_vars.end(), v) !=
          matrix_vars.end()) {
        throw ExperimentError("variable '" + v +
                              "' appears in more than one matrix");
      }
      matrix_vars.push_back(v);
    }
  }

  auto find_vector =
      [&](const std::string& name) -> const std::vector<std::string>* {
    for (const auto& [vname, values] : tmpl.vectors) {
      if (vname == name) return &values;
    }
    return nullptr;
  };

  // The cross-product dimensions: one per matrix variable, in matrix
  // declaration order.
  struct Dimension {
    std::vector<std::string> names;                // variables set together
    std::vector<std::vector<std::string>> tuples;  // value tuples
  };
  std::vector<Dimension> dimensions;
  for (const auto& name : matrix_vars) {
    const auto* values = find_vector(name);
    if (!values) {
      throw ExperimentError("matrix references '" + name +
                            "', which is not a vector variable");
    }
    Dimension dim;
    dim.names = {name};
    for (const auto& v : *values) dim.tuples.push_back({v});
    dimensions.push_back(std::move(dim));
  }

  // Zip the unconsumed vector variables into one dimension.
  Dimension zipped;
  for (const auto& [vname, values] : tmpl.vectors) {
    if (std::find(matrix_vars.begin(), matrix_vars.end(), vname) !=
        matrix_vars.end()) {
      continue;
    }
    if (zipped.names.empty()) {
      zipped.names.push_back(vname);
      for (const auto& v : values) zipped.tuples.push_back({v});
    } else {
      if (values.size() != zipped.tuples.size()) {
        throw ExperimentError(
            "zipped vector variables must have equal lengths: '" + vname +
            "' has " + std::to_string(values.size()) + ", expected " +
            std::to_string(zipped.tuples.size()));
      }
      zipped.names.push_back(vname);
      for (std::size_t i = 0; i < values.size(); ++i) {
        zipped.tuples[i].push_back(values[i]);
      }
    }
  }
  if (!zipped.names.empty()) dimensions.push_back(std::move(zipped));

  // Walk the cross product: experiment g takes index (g / stride_d) %
  // size_d from dimension d with dimension 0 varying fastest — the same
  // order the old serial odometer produced (it incremented index[0]
  // first). Each row is a pure function of g, so large products fill in
  // parallel row blocks and assemble by index; the returned vector is
  // identical at every thread width. A template with no dimensions
  // yields exactly one experiment (total == 1).
  std::size_t total = 1;
  for (const auto& dim : dimensions) total *= dim.tuples.size();

  std::vector<Experiment> experiments(total);
  auto fill_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      VariableMap vars = base;
      for (const auto& [k, v] : tmpl.scalars) vars[k] = v;
      std::size_t rem = g;
      for (const auto& dim : dimensions) {
        const auto& tuple = dim.tuples[rem % dim.tuples.size()];
        rem /= dim.tuples.size();
        for (std::size_t k = 0; k < dim.names.size(); ++k) {
          vars[dim.names[k]] = tuple[k];
        }
      }
      Experiment& exp = experiments[g];
      exp.name = expand(tmpl.name_template, vars);
      exp.variables = std::move(vars);
    }
  };

  int width = threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (total < kParallelExpandThreshold || width <= 1) {
    fill_rows(0, total);
  } else {
    support::parallel_for(total, width, fill_rows);
  }
  return experiments;
}

}  // namespace benchpark::ramble
