// Ramble workspaces (Section 3.2): "a self contained directory
// representing a set of experiments", configured by ramble.yaml and at
// least one template execution script.
//
// The five workflow verbs (Figure 5) map to:
//   ramble workspace create  -> Workspace::create
//   ramble workspace edit    -> Workspace::configure (apply ramble.yaml)
//   ramble workspace setup   -> Workspace::setup
//   ramble on                -> Workspace::run
//   ramble workspace analyze -> Workspace::analyze
//
// setup() does what Section 3.2.3 lists: ensures compilers are available,
// installs software with Spack (our env/install engines), creates an
// execution directory per experiment, and renders every template.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"
#include "src/buildcache/binary_cache.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/application.hpp"
#include "src/ramble/experiment.hpp"
#include "src/runtime/simexec.hpp"
#include "src/sched/scheduler.hpp"
#include "src/store/store.hpp"
#include "src/support/table.hpp"
#include "src/system/system.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::ramble {

/// The workspace-level model of ramble.yaml (Figure 10).
struct WorkspaceConfig {
  struct SpackPackageDef {
    std::string alias;       // "default-mpi", "saxpy"
    std::string spack_spec;  // "saxpy@1.0.0 +openmp ^cmake@3.23.1"
    std::string compiler;    // alias of a compiler package def ("" = default)
  };
  struct SpackEnvDef {
    std::string name;                     // environment (application) name
    std::vector<std::string> packages;    // aliases
  };
  struct WorkloadConfig {
    std::string name;
    VariableMap env_vars;    // workload env_vars: set: {...}
    VariableMap variables;   // workload-level variables
    std::vector<std::string> modifiers;  // Section 4.5 modifier names
    std::vector<ExperimentTemplate> experiments;
  };
  struct AppConfig {
    std::string app;
    std::vector<WorkloadConfig> workloads;
  };

  std::vector<std::string> includes;
  std::vector<AppConfig> applications;
  std::vector<SpackPackageDef> spack_packages;
  std::vector<SpackEnvDef> spack_environments;

  static WorkspaceConfig from_yaml(const yaml::Node& ramble_yaml);

  [[nodiscard]] const SpackPackageDef* find_package(
      std::string_view alias) const;
  [[nodiscard]] const SpackEnvDef* find_environment(
      std::string_view name) const;
};

/// A fully generated experiment, ready for submission.
/// Aggregate concretization traffic across every spack environment a
/// setup_software() pass resolved (warm-cache runs show hits > 0).
struct ConcretizeSummary {
  std::size_t roots = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct PreparedExperiment {
  std::string app;
  std::string workload;
  std::string name;
  VariableMap variables;
  VariableMap env_vars;
  std::vector<std::string> modifiers;  // active modifier names
  std::filesystem::path run_dir;
  std::string script;   // rendered execute_experiment
  bool use_gpu = false; // derived from the app's spack spec (+cuda/+rocm)
};

/// Result of one analyzed experiment.
struct ExperimentResult {
  std::string app;
  std::string workload;
  std::string name;
  bool ran = false;
  bool success = false;
  std::vector<analysis::FomValue> foms;
  VariableMap variables;
  /// Raw experiment stdout (what analysis extracted the FOMs from);
  /// downstream ingestion parses Caliper region profiles out of it.
  std::string output;

  [[nodiscard]] const analysis::FomValue* fom(std::string_view name) const;
};

/// Knobs for the parallel experiment-run engine (run_all / analyze).
struct RunRequest {
  /// Fan-out width: 0 = ThreadPool::default_threads(), 1 = serial.
  int threads = 0;
  /// Consult the process-wide TemplateCache for every expansion; false
  /// compiles each template on the fly (the cold path benchmarks
  /// measure the difference).
  bool use_cache = true;
  /// Retry/backoff for the "experiment.exec" fault site.
  runtime::ExecRetryOptions retry;
  /// Persistent result store consulted before executing each experiment
  /// (and written after). Overrides the workspace-level store for this
  /// run; null falls back to Workspace::set_store's handle, then to
  /// running everything.
  store::StoreHandle store;
};

/// What run_all did, aggregated in experiment (submission) order.
struct RunReport {
  std::size_t experiments = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t timeouts = 0;
  /// Execution attempts across all experiments (>= experiments).
  std::size_t total_attempts = 0;
  /// Experiments that needed more than one attempt.
  std::size_t retried = 0;
  /// Total modeled backoff wait across retries.
  double retry_wait_seconds = 0;
  /// Sum of modeled experiment runtimes (post time-limit clamping).
  double total_simulated_seconds = 0;
  /// TemplateCache traffic during this call (process-wide delta).
  std::size_t template_cache_hits = 0;
  std::size_t template_cache_misses = 0;
  /// Experiments restored from the persistent store without executing,
  /// and experiments that had to run because the store had no record.
  /// Both stay 0 when no store is configured.
  std::size_t store_hits = 0;
  std::size_t store_misses = 0;

  /// One completed experiment, in submission order (the deterministic
  /// axis historical analytics appends samples along).
  struct ExperimentOutcome {
    std::string name;
    std::string app;
    std::string workload;
    /// Content key of this run in the persistent store (the history
    /// layer's config hash); empty when no store was configured.
    std::string store_key;
    double runtime_seconds = 0;
    bool success = false;
    bool from_store = false;
    int attempts = 1;
  };
  std::vector<ExperimentOutcome> per_experiment;
};

struct AnalyzeReport {
  std::vector<ExperimentResult> results;
  [[nodiscard]] std::size_t num_success() const;
  [[nodiscard]] support::Table to_table() const;
};

class Workspace {
public:
  /// `ramble workspace create`: lay out the directory structure.
  static Workspace create(std::filesystem::path root,
                          const system::SystemDescription& system);

  /// `ramble workspace edit`: apply a ramble.yaml document.
  void configure(const yaml::Node& ramble_yaml);

  /// Override the execution template (default is Figure 13's).
  void set_execute_template(std::string template_text);

  /// Override the package repositories consulted during setup (the
  /// `repo/` overlay mechanism of Figure 1a: community recipes shadow
  /// the builtin repo). Default: pkg::default_repo_stack().
  void set_repo_stack(pkg::RepoStack repos);

  /// Attach a persistent store: setup() warm-loads the binary-cache
  /// index and install tree from it (so unchanged software re-installs
  /// nothing) and persists them back; run_all() skips experiments whose
  /// key is already recorded and saves fresh results.
  void set_store(store::StoreHandle store) { store_ = std::move(store); }
  [[nodiscard]] const store::StoreHandle& store() const { return store_; }

  /// `ramble workspace setup`.
  void setup();

  /// `ramble on`: execute every prepared experiment through the system's
  /// batch scheduler (simulated; "native" runs kernels for real).
  void run();

  /// `ramble on` at scale: schedule the prepared experiments concurrently
  /// on the shared ThreadPool (their run dirs are disjoint, so they are
  /// independent), with per-experiment "workflow.experiment" spans,
  /// workspace.experiments.* counters, and "experiment.exec" fault
  /// retry/backoff. Results — the .out files, their ordering, and the
  /// report — are byte-identical at every thread width: every retry and
  /// fault decision is a pure function of (seed, site, experiment name,
  /// attempt), outputs land indexed by submission order, and aggregation
  /// is serial in that order.
  RunReport run_all(const RunRequest& request = {});

  /// `ramble workspace analyze`.
  [[nodiscard]] AnalyzeReport analyze() const;

  /// analyze() with FOM extraction fanned out over completed experiments
  /// (pure per-experiment regex work). Same report, any thread width.
  [[nodiscard]] AnalyzeReport analyze(const RunRequest& request) const;

  // -- introspection ------------------------------------------------------
  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] const system::SystemDescription& target_system() const {
    return system_;
  }
  [[nodiscard]] const std::vector<PreparedExperiment>& prepared() const {
    return prepared_;
  }
  [[nodiscard]] const WorkspaceConfig& config() const { return config_; }
  [[nodiscard]] const install::InstallReport& install_report() const {
    return install_report_;
  }
  [[nodiscard]] const ConcretizeSummary& concretize_summary() const {
    return concretize_summary_;
  }
  [[nodiscard]] bool is_set_up() const { return set_up_; }
  [[nodiscard]] bool has_run() const { return ran_; }
  /// The environment built for an application (after setup()).
  [[nodiscard]] const env::Environment* environment_for(
      std::string_view app) const;

  /// The default Figure 13 template.
  static std::string default_execute_template();

private:
  Workspace(std::filesystem::path root, system::SystemDescription system);

  [[nodiscard]] VariableMap base_variables() const;
  void setup_software();
  void generate_experiments();
  [[nodiscard]] std::string render_script(
      const PreparedExperiment& exp) const;
  /// Content key for one experiment's stored result: covers the
  /// concretization scope (config + repo-stack fingerprints), system,
  /// the app environment's concrete DAG hashes, and the experiment's
  /// rendered script/variables/env (workspace root scrubbed, so the key
  /// is stable across workspace directories). Any input change produces
  /// a new key, which is what "re-run exactly the affected subset" means.
  [[nodiscard]] std::string experiment_store_key(
      const PreparedExperiment& exp) const;

  std::filesystem::path root_;
  system::SystemDescription system_;
  pkg::RepoStack repos_;
  WorkspaceConfig config_;
  std::string execute_template_;
  bool configured_ = false;
  bool set_up_ = false;
  bool ran_ = false;

  std::vector<std::pair<std::string, env::Environment>> environments_;
  install::InstallTree install_tree_;
  // unique_ptr: the cache holds a mutex, which would otherwise pin the
  // workspace in place (Workspace::create returns by value).
  std::unique_ptr<buildcache::BinaryCache> cache_;
  install::InstallReport install_report_;
  ConcretizeSummary concretize_summary_;
  std::vector<PreparedExperiment> prepared_;
  store::StoreHandle store_;
  /// "<config fingerprint>/<repo-stack fingerprint>" from the last
  /// setup_software() pass; part of every experiment store key.
  std::string scope_fingerprint_;
};

}  // namespace benchpark::ramble
