// Ramble workspaces (Section 3.2): "a self contained directory
// representing a set of experiments", configured by ramble.yaml and at
// least one template execution script.
//
// The five workflow verbs (Figure 5) map to:
//   ramble workspace create  -> Workspace::create
//   ramble workspace edit    -> Workspace::configure (apply ramble.yaml)
//   ramble workspace setup   -> Workspace::setup
//   ramble on                -> Workspace::run
//   ramble workspace analyze -> Workspace::analyze
//
// setup() does what Section 3.2.3 lists: ensures compilers are available,
// installs software with Spack (our env/install engines), creates an
// execution directory per experiment, and renders every template.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"
#include "src/buildcache/binary_cache.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/application.hpp"
#include "src/ramble/experiment.hpp"
#include "src/sched/scheduler.hpp"
#include "src/support/table.hpp"
#include "src/system/system.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::ramble {

/// The workspace-level model of ramble.yaml (Figure 10).
struct WorkspaceConfig {
  struct SpackPackageDef {
    std::string alias;       // "default-mpi", "saxpy"
    std::string spack_spec;  // "saxpy@1.0.0 +openmp ^cmake@3.23.1"
    std::string compiler;    // alias of a compiler package def ("" = default)
  };
  struct SpackEnvDef {
    std::string name;                     // environment (application) name
    std::vector<std::string> packages;    // aliases
  };
  struct WorkloadConfig {
    std::string name;
    VariableMap env_vars;    // workload env_vars: set: {...}
    VariableMap variables;   // workload-level variables
    std::vector<std::string> modifiers;  // Section 4.5 modifier names
    std::vector<ExperimentTemplate> experiments;
  };
  struct AppConfig {
    std::string app;
    std::vector<WorkloadConfig> workloads;
  };

  std::vector<std::string> includes;
  std::vector<AppConfig> applications;
  std::vector<SpackPackageDef> spack_packages;
  std::vector<SpackEnvDef> spack_environments;

  static WorkspaceConfig from_yaml(const yaml::Node& ramble_yaml);

  [[nodiscard]] const SpackPackageDef* find_package(
      std::string_view alias) const;
  [[nodiscard]] const SpackEnvDef* find_environment(
      std::string_view name) const;
};

/// A fully generated experiment, ready for submission.
/// Aggregate concretization traffic across every spack environment a
/// setup_software() pass resolved (warm-cache runs show hits > 0).
struct ConcretizeSummary {
  std::size_t roots = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct PreparedExperiment {
  std::string app;
  std::string workload;
  std::string name;
  VariableMap variables;
  VariableMap env_vars;
  std::vector<std::string> modifiers;  // active modifier names
  std::filesystem::path run_dir;
  std::string script;   // rendered execute_experiment
  bool use_gpu = false; // derived from the app's spack spec (+cuda/+rocm)
};

/// Result of one analyzed experiment.
struct ExperimentResult {
  std::string app;
  std::string workload;
  std::string name;
  bool ran = false;
  bool success = false;
  std::vector<analysis::FomValue> foms;
  VariableMap variables;

  [[nodiscard]] const analysis::FomValue* fom(std::string_view name) const;
};

struct AnalyzeReport {
  std::vector<ExperimentResult> results;
  [[nodiscard]] std::size_t num_success() const;
  [[nodiscard]] support::Table to_table() const;
};

class Workspace {
public:
  /// `ramble workspace create`: lay out the directory structure.
  static Workspace create(std::filesystem::path root,
                          const system::SystemDescription& system);

  /// `ramble workspace edit`: apply a ramble.yaml document.
  void configure(const yaml::Node& ramble_yaml);

  /// Override the execution template (default is Figure 13's).
  void set_execute_template(std::string template_text);

  /// Override the package repositories consulted during setup (the
  /// `repo/` overlay mechanism of Figure 1a: community recipes shadow
  /// the builtin repo). Default: pkg::default_repo_stack().
  void set_repo_stack(pkg::RepoStack repos);

  /// `ramble workspace setup`.
  void setup();

  /// `ramble on`: execute every prepared experiment through the system's
  /// batch scheduler (simulated; "native" runs kernels for real).
  void run();

  /// `ramble workspace analyze`.
  [[nodiscard]] AnalyzeReport analyze() const;

  // -- introspection ------------------------------------------------------
  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] const system::SystemDescription& target_system() const {
    return system_;
  }
  [[nodiscard]] const std::vector<PreparedExperiment>& prepared() const {
    return prepared_;
  }
  [[nodiscard]] const WorkspaceConfig& config() const { return config_; }
  [[nodiscard]] const install::InstallReport& install_report() const {
    return install_report_;
  }
  [[nodiscard]] const ConcretizeSummary& concretize_summary() const {
    return concretize_summary_;
  }
  [[nodiscard]] bool is_set_up() const { return set_up_; }
  [[nodiscard]] bool has_run() const { return ran_; }
  /// The environment built for an application (after setup()).
  [[nodiscard]] const env::Environment* environment_for(
      std::string_view app) const;

  /// The default Figure 13 template.
  static std::string default_execute_template();

private:
  Workspace(std::filesystem::path root, system::SystemDescription system);

  [[nodiscard]] VariableMap base_variables() const;
  void setup_software();
  void generate_experiments();
  [[nodiscard]] std::string render_script(
      const PreparedExperiment& exp) const;

  std::filesystem::path root_;
  system::SystemDescription system_;
  pkg::RepoStack repos_;
  WorkspaceConfig config_;
  std::string execute_template_;
  bool configured_ = false;
  bool set_up_ = false;
  bool ran_ = false;

  std::vector<std::pair<std::string, env::Environment>> environments_;
  install::InstallTree install_tree_;
  // unique_ptr: the cache holds a mutex, which would otherwise pin the
  // workspace in place (Workspace::create returns by value).
  std::unique_ptr<buildcache::BinaryCache> cache_;
  install::InstallReport install_report_;
  ConcretizeSummary concretize_summary_;
  std::vector<PreparedExperiment> prepared_;
};

}  // namespace benchpark::ramble
