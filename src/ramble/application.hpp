// Application definitions: the C++ equivalent of Ramble's application.py
// (Figure 8). Everything here is benchmark-specific and system-agnostic —
// exactly one definition per benchmark (Table 1, rows 3-5).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"

namespace benchpark::ramble {

/// executable('p', 'saxpy -n {n}', use_mpi=True)
struct ExecutableDef {
  std::string name;
  std::string command_template;  // expanded against experiment variables
  bool use_mpi = false;
};

/// workload_variable('n', default='1', description=..., workloads=[...])
struct WorkloadVariableDef {
  std::string name;
  std::string default_value;
  std::string description;
};

/// workload('problem', executables=['p'])
struct WorkloadDef {
  std::string name;
  std::vector<std::string> executables;
  std::vector<WorkloadVariableDef> variables;
};

/// One benchmark's full Ramble definition.
class ApplicationDefinition {
public:
  ApplicationDefinition() = default;
  explicit ApplicationDefinition(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The Spack package providing this application's binary. Defaults to
  /// the application name; differs when one package ships many benchmarks
  /// (osu-micro-benchmarks ships osu-bcast).
  [[nodiscard]] const std::string& package_name() const {
    return package_name_.empty() ? name_ : package_name_;
  }
  ApplicationDefinition& set_package_name(std::string package) {
    package_name_ = std::move(package);
    return *this;
  }

  // -- builder API mirroring application.py directives -------------------
  ApplicationDefinition& executable(const std::string& name,
                                    const std::string& command_template,
                                    bool use_mpi);
  ApplicationDefinition& workload(const std::string& name,
                                  std::vector<std::string> executables);
  ApplicationDefinition& workload_variable(
      const std::string& name, const std::string& default_value,
      const std::string& description,
      const std::vector<std::string>& workloads);
  ApplicationDefinition& figure_of_merit(const std::string& name,
                                         const std::string& fom_regex,
                                         const std::string& group_name,
                                         const std::string& units);
  ApplicationDefinition& success_criteria(const std::string& name,
                                          const std::string& match);

  // -- queries ----------------------------------------------------------
  [[nodiscard]] const std::vector<WorkloadDef>& workloads() const {
    return workloads_;
  }
  [[nodiscard]] const WorkloadDef* find_workload(std::string_view name) const;
  [[nodiscard]] const ExecutableDef* find_executable(
      std::string_view name) const;
  [[nodiscard]] const std::vector<analysis::FomSpec>& foms() const {
    return foms_;
  }
  [[nodiscard]] const std::vector<analysis::SuccessCriterion>&
  success_criteria_list() const {
    return criteria_;
  }

  /// Command lines for a workload, in declaration order (un-expanded).
  [[nodiscard]] std::vector<const ExecutableDef*> workload_executables(
      std::string_view workload_name) const;

private:
  std::string name_;
  std::string package_name_;
  std::vector<ExecutableDef> executables_;
  std::vector<WorkloadDef> workloads_;
  std::vector<analysis::FomSpec> foms_;
  std::vector<analysis::SuccessCriterion> criteria_;
};

/// Registry of builtin application definitions (saxpy per Figure 8,
/// amg2023, stream, osu-bcast).
class ApplicationRegistry {
public:
  static ApplicationRegistry& instance();

  void add(ApplicationDefinition app);
  [[nodiscard]] const ApplicationDefinition& get(std::string_view name) const;
  [[nodiscard]] const ApplicationDefinition* find(
      std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

private:
  ApplicationRegistry();
  std::map<std::string, ApplicationDefinition, std::less<>> apps_;
};

}  // namespace benchpark::ramble
