// Variable expansion: Ramble's `{var}` templating (Figures 8, 10, 12, 13).
//
// Expansion is recursive — values may reference other variables
// ("mpi_command: srun -N {n_nodes} -n {n_ranks}") — and supports the
// integer arithmetic Ramble allows in expansions ("{processes_per_node} *
// {n_nodes}"). Unknown variables and reference cycles raise
// ExperimentError with the offending name.
//
// Templates are compiled once into a segment list (CompiledTemplate) and
// memoized in a process-wide sharded TemplateCache keyed by the template
// text, so expanding the same template across a large experiment matrix
// is a segment walk with no re-tokenizing. `expand()` stays the thin
// wrapper everyone calls; `expand_uncached()` bypasses the cache (used by
// RunRequest{use_cache=false} and the cold-path benchmarks).
//
// Placeholders use balanced-brace matching, so `{ {n} * 2 }` nests (the
// inner template expands first, then the result is looked up / evaluated)
// and `{{`/`}}` stay Jinja-style literal-brace escapes everywhere,
// including inside placeholder bodies.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/support/snapshot.hpp"

namespace benchpark::support {
class Arena;
}

namespace benchpark::ramble {

/// Transparent comparator so expansion can look names up by string_view
/// without materializing a key (nested `{p{suffix}}` names are built in
/// arena scratch).
using VariableMap = std::map<std::string, std::string, std::less<>>;

/// A template tokenized once into literal / variable / arithmetic
/// segments. Immutable after construction; safe to share across threads
/// (expansion only reads). Construction throws ExperimentError for
/// unbalanced '{' — exactly the error `expand()` always raised.
class CompiledTemplate {
public:
  explicit CompiledTemplate(std::string_view text);

  /// Append the expansion of this template against `vars` to `out`.
  /// `use_cache` controls whether *value* templates (a variable's text,
  /// which is itself a template) go through the process-wide cache.
  /// Within one call, each variable's fully-expanded value is computed
  /// once and memoized, so a name referenced N times costs one recursive
  /// expansion plus N-1 local hits (an integer-id scan, names interned at
  /// compile time).
  void expand_into(std::string& out, const VariableMap& vars,
                   bool use_cache) const;

  /// Same, but with all per-expansion scratch (the memo table, value
  /// buffers, nested-name buffers) carved from `arena`. A warmed arena
  /// plus an `out` with sufficient capacity makes the whole call heap-
  /// allocation-free — the run engine threads one arena per worker and
  /// reset()s it between experiments. The arena must not be shared
  /// across threads; arena-backed memory dies at the caller's reset().
  void expand_into(std::string& out, const VariableMap& vars, bool use_cache,
                   support::Arena& arena) const;

  [[nodiscard]] std::string expand(const VariableMap& vars,
                                   bool use_cache = true) const;
  [[nodiscard]] std::string expand(const VariableMap& vars, bool use_cache,
                                   support::Arena& arena) const;

  [[nodiscard]] const std::string& source() const { return source_; }
  /// Placeholder segments ({...}); 0 means the template is pure literal.
  [[nodiscard]] std::size_t placeholder_count() const;
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

private:
  struct Segment {
    enum class Kind {
      kLiteral,   // raw bytes (escapes already folded: "{{" -> "{")
      kVariable,  // {name} — plain inner text, no nested braces
      kNested,    // {...} whose body is itself a template
    };
    Kind kind = Kind::kLiteral;
    /// kLiteral: the bytes; kVariable/kNested: the raw placeholder body
    /// (for lookups and error messages).
    std::string text;
    /// Process-wide interned id of `text` (kVariable only; 0 otherwise).
    /// Memo lookups compare this integer instead of hashing the name.
    std::uint32_t intern_id = 0;
    /// is_arithmetic(text) screen, precomputed (kVariable only).
    bool maybe_arith = false;
    /// Inline arithmetic pre-evaluated at compile time ({8 * 2} -> 16);
    /// only consulted after the variable lookup misses, so a literal
    /// "8 * 2" variable name still wins like it always did.
    std::optional<long long> folded;
    std::shared_ptr<const CompiledTemplate> inner;  // kNested body
  };

  /// Per-top-level-expansion memo: variable name -> fully expanded (and
  /// arithmetic-folded) value. A flat arena-backed vector keyed by
  /// interned id (with a name-bytes fallback for runtime-built nested
  /// names); values live in the arena. Defined in the .cpp.
  struct Memo;

  /// Recursion core, templated on the output buffer so the top level
  /// writes straight into the caller's std::string while inner scratch
  /// values build into arena-backed ArenaStrings (zero heap traffic on
  /// the warm path).
  template <typename Buf>
  void expand_impl(Buf& out, const VariableMap& vars, bool use_cache,
                   int depth, Memo& memo) const;
  /// Resolve one placeholder name against vars / arithmetic and append.
  template <typename Buf>
  void expand_name_impl(Buf& out, std::string_view name,
                        std::uint32_t name_id, const Segment& seg,
                        const VariableMap& vars, bool use_cache, int depth,
                        Memo& memo) const;

  std::string source_;
  std::vector<Segment> segments_;
  /// Set when the template has no placeholders: the fully-expanded value
  /// with the arithmetic-value fold already applied ("8 * 2" -> "16",
  /// "2023-01-01" kept literal). Lets a scalar variable's value append
  /// without re-screening on every experiment.
  std::optional<std::string> literal_value_;
};

/// Cumulative counters; snapshot by value via TemplateCache::stats()
/// (same shape as ConcretizeCacheStats / buildcache::CacheStats).
struct TemplateCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;  // dropped to stay under capacity

  [[nodiscard]] std::size_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

/// Process-wide sharded memo table: template text -> CompiledTemplate.
/// The key is the exact source text, so the compiled form is a pure
/// function of the key and entries never go stale. Thread-safe; the
/// steady-state hit path is lock-free (one atomic snapshot load per
/// shard); counters are exact under concurrent expansion (atomics,
/// mirrored into the trace collector's "ramble.template.*" counters when
/// tracing). stats() snapshots are torn-read-free: evictions <= inserts
/// within any returned struct.
class TemplateCache {
public:
  TemplateCache() = default;
  TemplateCache(const TemplateCache&) = delete;
  TemplateCache& operator=(const TemplateCache&) = delete;

  /// The process-wide instance `expand()` consults.
  static TemplateCache& global();

  /// Fetch-or-compile. Compile errors (unbalanced '{') propagate and
  /// nothing is cached, so a bad template throws on every call exactly
  /// like the uncompiled expander did.
  [[nodiscard]] std::shared_ptr<const CompiledTemplate> get(
      std::string_view text);

  /// Drop everything (counters are kept; tests use clear() for isolation).
  void clear();

  /// Capacity in entries; 0 (default) is unbounded. Over capacity the
  /// oldest-inserted entries are evicted first.
  void set_capacity(std::size_t max_entries);
  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] TemplateCacheStats stats() const;

  /// Every cached template as (source text, insert sequence), sorted by
  /// sequence (oldest first), for the persistent store's snapshot. The
  /// compiled form is a pure function of the text, so only the text is
  /// worth persisting.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  export_entries() const;

  /// Recompile and publish a persisted entry with its original insert
  /// sequence (warm start). Does not move the hit/miss/insert counters.
  /// Compile errors propagate — callers skip corrupt records.
  void restore_entry(std::string_view text, std::uint64_t sequence);

  /// Resume counters from a persisted snapshot instead of zero.
  void restore_stats(const TemplateCacheStats& stats);

private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    std::shared_ptr<const CompiledTemplate> tmpl;
    std::uint64_t sequence = 0;  // insert order, process-wide
  };
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      // Script-sized keys hash a bounded sample (head + tail + length)
      // so lookup cost doesn't scale with template size; the map's full
      // key equality still guards correctness. Generated scripts share
      // long common prefixes, so the tail carries the distinguishing
      // bytes (experiment names, sizes).
      constexpr std::size_t kSample = 64;
      std::hash<std::string_view> h;
      if (s.size() <= 2 * kSample) return h(s);
      std::size_t head = h(s.substr(0, kSample));
      std::size_t tail = h(s.substr(s.size() - kSample));
      return head ^ (tail + 0x9e3779b97f4a7c15ULL + (head << 6)) ^ s.size();
    }
  };
  using Map =
      std::unordered_map<std::string, Entry, StringHash, std::equal_to<>>;
  /// Readers load `snapshot` lock-free (one atomic load, heterogeneous
  /// string_view find); writers copy-on-write under `mu` and publish
  /// atomically (same RCU protocol as the binary / concretization caches).
  struct Shard {
    std::mutex mu;
    support::SnapshotPtr<Map> snapshot;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;
  /// Evict oldest-sequence entries until size() fits capacity(). Lock
  /// order is evict_mu_ -> shard.mu, never the reverse.
  void evict_to_capacity();

  mutable std::array<Shard, kShards> shards_;
  std::mutex evict_mu_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> inserts_{0};
  std::atomic<std::size_t> evictions_{0};
};

/// Expand every `{name}` in `text` against `vars`, recursively, then
/// evaluate arithmetic of the form `{expr}` where expr contains only
/// numbers and + - * / ( ). Compiles through the process-wide
/// TemplateCache.
std::string expand(std::string_view text, const VariableMap& vars);

/// Identical semantics to expand(), but never touches the template
/// cache (neither for `text` nor for variable values).
std::string expand_uncached(std::string_view text, const VariableMap& vars);

/// Expand and parse as integer (for n_ranks etc.). `use_cache` gates the
/// template cache exactly like expand()/expand_uncached().
long long expand_int(std::string_view text, const VariableMap& vars,
                     bool use_cache = true);

/// Evaluate a purely arithmetic expression ("8 * 2"); throws
/// ExperimentError when malformed. Exposed for tests.
long long evaluate_arithmetic(std::string_view expr);

}  // namespace benchpark::ramble
