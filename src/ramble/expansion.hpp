// Variable expansion: Ramble's `{var}` templating (Figures 8, 10, 12, 13).
//
// Expansion is recursive — values may reference other variables
// ("mpi_command: srun -N {n_nodes} -n {n_ranks}") — and supports the
// integer arithmetic Ramble allows in expansions ("{processes_per_node} *
// {n_nodes}"). Unknown variables and reference cycles raise
// ExperimentError with the offending name.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace benchpark::ramble {

using VariableMap = std::map<std::string, std::string>;

/// Expand every `{name}` in `text` against `vars`, recursively, then
/// evaluate arithmetic of the form `{expr}` where expr contains only
/// numbers and + - * / ( ).
std::string expand(std::string_view text, const VariableMap& vars);

/// Expand and parse as integer (for n_ranks etc.).
long long expand_int(std::string_view text, const VariableMap& vars);

/// Evaluate a purely arithmetic expression ("8 * 2"); throws
/// ExperimentError when malformed. Exposed for tests.
long long evaluate_arithmetic(std::string_view expr);

}  // namespace benchpark::ramble
