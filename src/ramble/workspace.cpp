#include "src/ramble/workspace.hpp"

#include <algorithm>

#include "src/concretizer/concretizer.hpp"
#include "src/obs/trace.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/modifier.hpp"
#include "src/runtime/simexec.hpp"
#include "src/store/persist.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/hash.hpp"
#include "src/support/parallel.hpp"
#include "src/support/string_util.hpp"
#include "src/yaml/emitter.hpp"

namespace benchpark::ramble {

namespace fs = std::filesystem;
using support::contains;

// ------------------------------------------------------------ WorkspaceConfig

WorkspaceConfig WorkspaceConfig::from_yaml(const yaml::Node& ramble_yaml) {
  WorkspaceConfig config;
  const yaml::Node& body = ramble_yaml.has("ramble")
                               ? ramble_yaml.at("ramble")
                               : ramble_yaml;
  if (body.has("include")) {
    config.includes = body.at("include").as_string_list();
  }
  if (body.has("applications")) {
    for (const auto& [app_name, app_body] : body.at("applications").map()) {
      AppConfig app;
      app.app = app_name;
      for (const auto& [wl_name, wl_body] :
           app_body.at("workloads").map()) {
        WorkloadConfig wl;
        wl.name = wl_name;
        const auto& env_set = wl_body.path("env_vars.set");
        if (env_set.is_mapping()) {
          for (const auto& [k, v] : env_set.map()) {
            wl.env_vars[k] = v.as_string();
          }
        }
        if (wl_body.has("variables")) {
          for (const auto& [k, v] : wl_body.at("variables").map()) {
            wl.variables[k] = v.as_string();
          }
        }
        if (wl_body.has("modifiers")) {
          wl.modifiers = wl_body.at("modifiers").as_string_list();
        }
        if (wl_body.has("experiments")) {
          for (const auto& [exp_name, exp_body] :
               wl_body.at("experiments").map()) {
            wl.experiments.push_back(
                ExperimentTemplate::from_yaml(exp_name, exp_body));
          }
        }
        app.workloads.push_back(std::move(wl));
      }
      config.applications.push_back(std::move(app));
    }
  }
  const yaml::Node& spack = body.at("spack");
  if (spack.has("packages")) {
    for (const auto& [alias, pkg_body] : spack.at("packages").map()) {
      SpackPackageDef def;
      def.alias = alias;
      def.spack_spec = pkg_body.at("spack_spec").as_string();
      def.compiler = pkg_body.at("compiler").as_string_or("");
      config.spack_packages.push_back(std::move(def));
    }
  }
  if (spack.has("environments")) {
    for (const auto& [env_name, env_body] : spack.at("environments").map()) {
      SpackEnvDef def;
      def.name = env_name;
      def.packages = env_body.at("packages").as_string_list();
      config.spack_environments.push_back(std::move(def));
    }
  }
  return config;
}

const WorkspaceConfig::SpackPackageDef* WorkspaceConfig::find_package(
    std::string_view alias) const {
  for (const auto& p : spack_packages) {
    if (p.alias == alias) return &p;
  }
  return nullptr;
}

const WorkspaceConfig::SpackEnvDef* WorkspaceConfig::find_environment(
    std::string_view name) const {
  for (const auto& e : spack_environments) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ------------------------------------------------------------------ results

const analysis::FomValue* ExperimentResult::fom(std::string_view name) const {
  for (const auto& f : foms) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::size_t AnalyzeReport::num_success() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [](const ExperimentResult& r) { return r.success; }));
}

support::Table AnalyzeReport::to_table() const {
  support::Table table({"experiment", "application", "status", "figures of merit"});
  for (const auto& r : results) {
    std::string foms;
    for (const auto& f : r.foms) {
      if (!foms.empty()) foms += ", ";
      foms += f.name + "=" + f.raw + (f.units.empty() ? "" : " " + f.units);
    }
    table.add_row({r.name, r.app,
                   r.ran ? (r.success ? "SUCCESS" : "FAILED") : "NOT RUN",
                   foms});
  }
  return table;
}

// ---------------------------------------------------------------- Workspace

Workspace::Workspace(fs::path root, system::SystemDescription system)
    : root_(std::move(root)),
      system_(std::move(system)),
      repos_(pkg::default_repo_stack()),
      execute_template_(default_execute_template()),
      install_tree_((root_ / "software" / "install").string()),
      cache_(std::make_unique<buildcache::BinaryCache>()) {}

Workspace Workspace::create(fs::path root,
                            const system::SystemDescription& system) {
  Workspace ws(std::move(root), system);
  // The self-contained directory structure of Section 3.2.1.
  for (const char* sub :
       {"configs", "experiments", "software", "inputs", "logs"}) {
    support::ensure_dir(ws.root_ / sub);
  }
  // System configuration lands in configs/ (Figure 1a lines 4-19).
  support::write_file(ws.root_ / "configs" / "variables.yaml",
                      yaml::emit(system.variables_yaml()));
  support::write_file(ws.root_ / "configs" / "packages.yaml",
                      yaml::emit(system.config.packages_yaml()));
  support::write_file(ws.root_ / "configs" / "compilers.yaml",
                      yaml::emit(system.config.compilers_yaml()));
  support::write_file(ws.root_ / "configs" / "execute_experiment.tpl",
                      ws.execute_template_);
  return ws;
}

void Workspace::configure(const yaml::Node& ramble_yaml) {
  config_ = WorkspaceConfig::from_yaml(ramble_yaml);
  support::write_file(root_ / "configs" / "ramble.yaml",
                      yaml::emit(ramble_yaml));
  configured_ = true;
  set_up_ = false;
  ran_ = false;
}

void Workspace::set_repo_stack(pkg::RepoStack repos) {
  repos_ = std::move(repos);
  set_up_ = false;
}

void Workspace::set_execute_template(std::string template_text) {
  execute_template_ = std::move(template_text);
  support::write_file(root_ / "configs" / "execute_experiment.tpl",
                      execute_template_);
}

std::string Workspace::default_execute_template() {
  // Figure 13, verbatim.
  return
      "#!/bin/bash\n"
      "{batch_nodes}\n"
      "{batch_ranks}\n"
      "{batch_timeout}\n"
      "cd {experiment_run_dir}\n"
      "{spack_setup}\n"
      "{command}\n";
}

VariableMap Workspace::base_variables() const {
  VariableMap vars;
  // System-level variables (Figure 12).
  auto system_vars = system_.variables_yaml();
  for (const auto& [k, v] : system_vars.at("variables").map()) {
    if (v.is_scalar()) vars[k] = v.as_string();
  }
  // Ramble builtins and derived defaults.
  vars["batch_time"] = "120";
  vars["n_nodes"] = "1";
  vars["n_threads"] = "1";
  vars["processes_per_node"] = std::to_string(system_.cpu.cores_per_node);
  vars["n_ranks"] = "{processes_per_node}*{n_nodes}";
  vars["workspace_root"] = root_.string();
  vars["spack_setup"] =
      ". " + (root_ / "software" / "spack" / "setup-env.sh").string();
  return vars;
}

void Workspace::setup_software() {
  concretizer::Concretizer concretizer(repos_, system_.config);
  scope_fingerprint_ = concretizer.scope_fingerprint();
  environments_.clear();
  install_report_ = {};
  concretize_summary_ = {};
  if (store_) {
    // Warm records make the installer's skip-if-installed path report
    // every unchanged package as already_installed: the "zero installs
    // on an unchanged re-run" half of incremental benchmarking.
    store::warm_binary_cache(store_, *cache_);
    store::warm_install_tree(store_, install_tree_);
  }
  install::Installer installer(repos_, &install_tree_, cache_.get());

  for (const auto& env_def : config_.spack_environments) {
    env::Environment environment;
    for (const auto& alias : env_def.packages) {
      const auto* pkg_def = config_.find_package(alias);
      if (!pkg_def) {
        throw ExperimentError("spack environment '" + env_def.name +
                              "' references unknown package alias '" +
                              alias + "'");
      }
      auto spec = spec::Spec::parse(pkg_def->spack_spec);
      // A compiler alias points at another package def whose spack_spec
      // names the compiler (Figure 10 line 35 -> Figure 9 line 3).
      if (!pkg_def->compiler.empty()) {
        const auto* comp_def = config_.find_package(pkg_def->compiler);
        if (!comp_def) {
          throw ExperimentError("package alias '" + alias +
                                "' references unknown compiler alias '" +
                                pkg_def->compiler + "'");
        }
        auto comp_spec = spec::Spec::parse(comp_def->spack_spec);
        spec.set_compiler(
            {comp_spec.name(), comp_spec.versions()});
      }
      environment.add(std::move(spec));
    }
    environment.concretize(concretizer);
    concretize_summary_.roots += environment.user_specs().size();
    concretize_summary_.cache_hits += environment.concretize_cache_hits();
    concretize_summary_.cache_misses +=
        environment.concretize_cache_misses();
    auto report = environment.install_all(installer);
    install_report_.total_simulated_seconds +=
        report.total_simulated_seconds;
    // Environments install one after another here, so their modeled
    // wall-clocks add (unlike roots inside one environment, which race).
    install_report_.critical_path_seconds += report.critical_path_seconds;
    install_report_.from_source += report.from_source;
    install_report_.from_cache += report.from_cache;
    install_report_.externals += report.externals;
    install_report_.already_installed += report.already_installed;
    install_report_.build_log += report.build_log;

    // Persist the lockfile: the reproducibility artifact of Section 5.
    support::write_file(
        root_ / "software" / (env_def.name + ".lock.yaml"),
        yaml::emit(environment.lockfile()));
    environments_.emplace_back(env_def.name, std::move(environment));
  }
  if (store_) {
    store::persist_binary_cache(store_, *cache_);
    store::persist_install_tree(store_, install_tree_);
    store_->flush();
  }
}

const env::Environment* Workspace::environment_for(
    std::string_view app) const {
  for (const auto& [name, environment] : environments_) {
    if (name == app) return &environment;
  }
  return nullptr;
}

void Workspace::generate_experiments() {
  prepared_.clear();
  const auto& registry = ApplicationRegistry::instance();
  for (const auto& app_config : config_.applications) {
    const auto& app_def = registry.get(app_config.app);

    // GPU experiments are identified by the spack spec's GPU variant.
    bool use_gpu = false;
    if (const auto* pkg_def = config_.find_package(app_config.app)) {
      use_gpu = contains(pkg_def->spack_spec, "+cuda") ||
                contains(pkg_def->spack_spec, "+rocm");
    }

    for (const auto& wl_config : app_config.workloads) {
      const auto* wl_def = app_def.find_workload(wl_config.name);
      if (!wl_def) {
        throw ExperimentError("application '" + app_config.app +
                              "' has no workload '" + wl_config.name + "'");
      }
      VariableMap base = base_variables();
      for (const auto& wv : wl_def->variables) {
        base[wv.name] = wv.default_value;
      }
      for (const auto& [k, v] : wl_config.variables) base[k] = v;

      for (const auto& tmpl : wl_config.experiments) {
        for (auto& exp : expand_experiments(tmpl, base)) {
          PreparedExperiment prepared;
          prepared.app = app_config.app;
          prepared.workload = wl_config.name;
          prepared.name = exp.name;
          prepared.variables = std::move(exp.variables);
          prepared.env_vars = wl_config.env_vars;
          prepared.modifiers = wl_config.modifiers;
          // Modifiers inject their environment (e.g. CALI_CONFIG) into
          // every experiment of the workload (Section 4.5).
          for (const auto& mod_name : prepared.modifiers) {
            auto modifier = ModifierRegistry::instance().get(mod_name);
            for (const auto& [k, v] : modifier->env_vars()) {
              prepared.env_vars.emplace(k, v);  // workload values win
            }
          }
          prepared.use_gpu = use_gpu;
          prepared.run_dir = root_ / "experiments" / prepared.app /
                             prepared.workload / prepared.name;
          prepared.variables["experiment_name"] = prepared.name;
          prepared.variables["experiment_run_dir"] =
              prepared.run_dir.string();
          prepared.script = render_script(prepared);

          support::ensure_dir(prepared.run_dir);
          support::write_file(prepared.run_dir / "execute_experiment",
                              prepared.script);
          prepared_.push_back(std::move(prepared));
        }
      }
    }
  }
}

std::string Workspace::render_script(const PreparedExperiment& exp) const {
  const auto& app_def = ApplicationRegistry::instance().get(exp.app);
  VariableMap vars = exp.variables;

  // Build {command}: every executable of the workload, MPI-launched when
  // the definition says so, with env_vars exported first.
  std::string command;
  for (const auto& [k, v] : exp.env_vars) {
    command += "export " + k + "=" + expand(v, vars) + "\n";
  }
  // Modifier wrappers prefix the launched command ("/usr/bin/time -v").
  std::string prefix;
  for (const auto& mod_name : exp.modifiers) {
    auto modifier = ModifierRegistry::instance().get(mod_name);
    if (!modifier->command_prefix().empty()) {
      prefix += modifier->command_prefix() + " ";
    }
  }
  for (const auto* exe : app_def.workload_executables(exp.workload)) {
    std::string line = prefix + exe->command_template;
    if (exe->use_mpi) line = "{mpi_command} " + line;
    command += expand(line, vars) + "\n";
  }
  if (!command.empty() && command.back() == '\n') command.pop_back();
  vars["command"] = command;
  return expand(execute_template_, vars);
}

std::string Workspace::experiment_store_key(
    const PreparedExperiment& exp) const {
  support::Hasher h;
  h.update("exp-v2");
  h.update(scope_fingerprint_);
  // A fault plan that perturbs execution changes what it would produce,
  // so it is part of the experiment's content: an injection run records
  // results under its own keys instead of replaying clean history from
  // the store. Rules against non-execution sites (service dispatch,
  // cache fetches, store I/O) are excluded — they alter delivery, not
  // the experiment's outcome, and must not retire warm-start keys.
  h.update(support::FaultPlan::global().fingerprint(
      {"experiment.", "runtime."}));
  h.update(system_.name);
  // The software actually underneath the experiment: any recipe,
  // dependency, or variant change shifts a DAG hash and retires the key.
  if (const auto* environment = environment_for(exp.app)) {
    for (const auto& spec : environment->concrete_specs()) {
      h.update(spec.dag_hash());
    }
  }
  h.update(exp.app);
  h.update(exp.workload);
  h.update(exp.name);
  // Scrub the workspace root out of rendered text so the key names the
  // experiment's content, not the directory this run happened to use.
  const std::string root = root_.string();
  auto scrubbed = [&root](const std::string& text) {
    return support::replace_all(text, root, "{workspace_root}");
  };
  h.update(scrubbed(exp.script));
  for (const auto& [k, v] : exp.variables) {
    h.update(k);
    h.update(scrubbed(v));
  }
  for (const auto& [k, v] : exp.env_vars) {
    h.update(k);
    h.update(scrubbed(v));
  }
  for (const auto& mod : exp.modifiers) h.update(mod);
  return h.base32();
}

void Workspace::setup() {
  if (!configured_) {
    throw ExperimentError("workspace has no ramble.yaml; call configure()");
  }
  setup_software();
  generate_experiments();
  set_up_ = true;
}

void Workspace::run() {
  if (!set_up_) throw ExperimentError("workspace is not set up");
  sched::BatchScheduler scheduler(system_.num_nodes);

  std::vector<sched::JobId> job_ids;
  job_ids.reserve(prepared_.size());
  for (const auto& exp : prepared_) {
    // The rendered script is the source of truth for the request —
    // exactly what sbatch would read (Figure 13).
    auto request = sched::parse_batch_script(exp.script, system_.scheduler);

    runtime::RunParams params;
    params.app = exp.app;
    auto size_var = exp.variables.find("n");
    if (size_var == exp.variables.end()) {
      size_var = exp.variables.find("nx");
    }
    if (size_var != exp.variables.end()) {
      params.n = static_cast<std::uint64_t>(
          expand_int(size_var->second, exp.variables));
    }
    params.n_nodes = request.nodes;
    params.n_ranks = request.ranks;
    params.n_threads = static_cast<int>(
        expand_int(exp.variables.at("n_threads"), exp.variables));
    params.use_gpu = exp.use_gpu;
    // The job environment (workload env_vars + modifier injections),
    // expanded against the experiment's variables.
    for (const auto& [k, v] : exp.env_vars) {
      params.env[k] = expand(v, exp.variables);
    }

    sched::BatchJob job;
    job.name = exp.name;
    job.user = "benchpark";
    job.nodes = request.nodes;
    job.ranks = request.ranks;
    job.time_limit_seconds = request.time_limit_seconds.value_or(7200);
    const auto& system = system_;
    job.work = [&system, params] {
      auto outcome = system.name == "native"
                         ? runtime::run_native(params)
                         : runtime::run_simulated(system, params);
      return sched::JobResult{outcome.elapsed_seconds, outcome.success,
                              outcome.output};
    };
    job_ids.push_back(scheduler.submit(std::move(job)));
  }
  scheduler.run_until_idle();

  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    const auto& record = scheduler.record(job_ids[i]);
    support::write_file(
        prepared_[i].run_dir / (prepared_[i].name + ".out"), record.output);
  }
  ran_ = true;
}

RunReport Workspace::run_all(const RunRequest& request) {
  if (!set_up_) throw ExperimentError("workspace is not set up");
  auto& collector = obs::TraceCollector::global();
  const auto cache_before = TemplateCache::global().stats();
  const store::StoreHandle store = request.store ? request.store : store_;

  struct ExperimentRun {
    bool success = false;
    bool timed_out = false;
    int attempts = 1;
    double retry_wait_seconds = 0;
    double runtime_seconds = 0;
    std::string output;
    bool from_store = false;
    std::string store_key;
  };
  std::vector<ExperimentRun> runs(prepared_.size());

  auto run_one = [&](std::size_t i) {
    const auto& exp = prepared_[i];
    obs::ScopedSpan span(
        collector,
        collector.enabled() ? "workflow.experiment" : std::string(),
        "ramble");
    if (span.active()) {
      span.annotate("experiment", exp.name);
      span.annotate("app", exp.app);
    }
    ExperimentRun& r = runs[i];

    // Stored-result short circuit: a prior run with the same software,
    // script, and variables already produced this experiment's outcome,
    // so restore it (including the .out bytes) and execute nothing.
    std::string store_key;
    if (store) {
      store_key = experiment_store_key(exp);
      r.store_key = store_key;
      if (auto record = store::load_experiment(store, store_key)) {
        r.success = record->success;
        r.timed_out = record->timed_out;
        r.attempts = record->attempts;
        r.retry_wait_seconds = record->retry_wait_seconds;
        r.runtime_seconds = record->runtime_seconds;
        r.output = std::move(record->output);
        r.from_store = true;
        if (span.active()) span.annotate("store", "hit");
        collector.counter_add("store.hits");
        support::write_file(exp.run_dir / (exp.name + ".out"), r.output);
        return;
      }
      collector.counter_add("store.misses");
    }

    // The rendered script is the source of truth for the request —
    // exactly what sbatch would read (Figure 13).
    auto batch = sched::parse_batch_script(exp.script, system_.scheduler);
    if (batch.nodes > system_.num_nodes) {
      throw SchedulerError("job requests " +
                                  std::to_string(batch.nodes) +
                                  " nodes; system has " +
                                  std::to_string(system_.num_nodes));
    }
    double time_limit = batch.time_limit_seconds.value_or(7200);

    runtime::RunParams params;
    params.app = exp.app;
    auto size_var = exp.variables.find("n");
    if (size_var == exp.variables.end()) {
      size_var = exp.variables.find("nx");
    }
    if (size_var != exp.variables.end()) {
      params.n = static_cast<std::uint64_t>(expand_int(
          size_var->second, exp.variables, request.use_cache));
    }
    params.n_nodes = batch.nodes;
    params.n_ranks = batch.ranks;
    params.n_threads = static_cast<int>(expand_int(
        exp.variables.at("n_threads"), exp.variables, request.use_cache));
    params.use_gpu = exp.use_gpu;
    // The job environment (workload env_vars + modifier injections),
    // expanded against the experiment's variables.
    for (const auto& [k, v] : exp.env_vars) {
      params.env[k] = request.use_cache
                          ? expand(v, exp.variables)
                          : expand_uncached(v, exp.variables);
    }

    const auto& system = system_;
    double runtime = 0;
    try {
      auto exec = runtime::run_with_retry(
          [&system, &params] {
            return system.name == "native"
                       ? runtime::run_native(params)
                       : runtime::run_simulated(system, params);
          },
          exp.name, request.retry);
      r.attempts = exec.attempts;
      r.retry_wait_seconds = exec.retry_wait_seconds;
      r.success = exec.outcome.success;
      r.output = std::move(exec.outcome.output);
      runtime = std::max(0.0, exec.outcome.elapsed_seconds);
    } catch (const std::exception& e) {
      // Same conversion the batch scheduler applies: user code threw, the
      // job failed, the engine keeps going.
      r.success = false;
      r.output = std::string("job raised: ") + e.what();
    }
    if (runtime > time_limit) {
      // Identical decoration (and job numbering: submission order) to
      // what the batch scheduler writes on a time-limit kill.
      r.timed_out = true;
      r.success = false;
      r.output += "\nslurmstepd: *** JOB " + std::to_string(i + 1) +
                  " CANCELLED DUE TO TIME LIMIT ***\n";
      runtime = time_limit;
    }
    r.runtime_seconds = runtime;
    if (span.active()) {
      span.annotate("attempts", std::to_string(r.attempts));
      span.annotate("success", r.success ? "1" : "0");
      // Modeled runtime, never wall-clock (TraceDiff separates them).
      collector.emit_span("experiment.runtime", "ramble", runtime,
                          {{"experiment", exp.name}});
    }
    collector.counter_add("workspace.experiments.run");
    if (!r.success) collector.counter_add("workspace.experiments.failed");
    if (r.attempts > 1) {
      collector.counter_add("workspace.experiments.retries",
                            r.attempts - 1);
    }
    if (store) {
      store::save_experiment(store, store_key,
                             {r.success, r.timed_out, r.attempts,
                              r.retry_wait_seconds, r.runtime_seconds,
                              r.output});
    }
    // Run dirs are disjoint, so the .out write is safe (and worth doing)
    // inside the parallel section; the bytes are the same either way.
    support::write_file(exp.run_dir / (exp.name + ".out"), r.output);
  };

  int width =
      request.threads == 0 ? support::ThreadPool::default_threads()
                           : request.threads;
  if (width <= 1 || prepared_.size() < 2) {
    for (std::size_t i = 0; i < prepared_.size(); ++i) run_one(i);
  } else {
    support::parallel_for(prepared_.size(), width,
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                              run_one(i);
                            }
                          });
  }

  // Serial aggregation in submission order: the counters and the report
  // never depend on completion interleaving.
  RunReport report;
  report.experiments = runs.size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ExperimentRun& r = runs[i];
    if (r.success) {
      ++report.succeeded;
    } else {
      ++report.failed;
    }
    if (r.timed_out) ++report.timeouts;
    report.total_attempts += static_cast<std::size_t>(r.attempts);
    if (r.attempts > 1) ++report.retried;
    report.retry_wait_seconds += r.retry_wait_seconds;
    report.total_simulated_seconds += r.runtime_seconds;
    if (r.from_store) ++report.store_hits;

    RunReport::ExperimentOutcome outcome;
    outcome.name = prepared_[i].name;
    outcome.app = prepared_[i].app;
    outcome.workload = prepared_[i].workload;
    outcome.store_key = r.store_key;
    outcome.runtime_seconds = r.runtime_seconds;
    outcome.success = r.success;
    outcome.from_store = r.from_store;
    outcome.attempts = r.attempts;
    report.per_experiment.push_back(std::move(outcome));
  }
  if (store) {
    report.store_misses = report.experiments - report.store_hits;
    store->flush();
  }
  const auto cache_after = TemplateCache::global().stats();
  report.template_cache_hits = cache_after.hits - cache_before.hits;
  report.template_cache_misses = cache_after.misses - cache_before.misses;
  ran_ = true;
  return report;
}

AnalyzeReport Workspace::analyze() const {
  AnalyzeReport report;
  const auto& registry = ApplicationRegistry::instance();
  for (const auto& exp : prepared_) {
    ExperimentResult result;
    result.app = exp.app;
    result.workload = exp.workload;
    result.name = exp.name;
    result.variables = exp.variables;

    auto out_file = exp.run_dir / (exp.name + ".out");
    if (fs::exists(out_file)) {
      result.ran = true;
      auto output = support::read_file(out_file);
      const auto& app_def = registry.get(exp.app);
      // Application FOMs plus every active modifier's FOMs and criteria
      // (Section 4.5's architecture-specific evaluation).
      auto fom_specs = app_def.foms();
      auto criteria = app_def.success_criteria_list();
      for (const auto& mod_name : exp.modifiers) {
        auto modifier = ModifierRegistry::instance().get(mod_name);
        auto extra_foms = modifier->foms();
        fom_specs.insert(fom_specs.end(), extra_foms.begin(),
                         extra_foms.end());
        auto extra_criteria = modifier->success_criteria();
        criteria.insert(criteria.end(), extra_criteria.begin(),
                        extra_criteria.end());
      }
      result.foms = analysis::extract_foms(fom_specs, output);
      result.success = analysis::evaluate_success(criteria, output);
      result.output = std::move(output);
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

AnalyzeReport Workspace::analyze(const RunRequest& request) const {
  const auto& registry = ApplicationRegistry::instance();

  // Serial prep: file reads and registry lookups; the regex-heavy
  // extraction below is the part worth fanning out.
  struct Prep {
    bool ran = false;
    std::string output;
    std::vector<analysis::FomSpec> fom_specs;
    std::vector<analysis::SuccessCriterion> criteria;
  };
  std::vector<Prep> preps(prepared_.size());
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    const auto& exp = prepared_[i];
    auto out_file = exp.run_dir / (exp.name + ".out");
    if (!fs::exists(out_file)) continue;
    Prep& prep = preps[i];
    prep.ran = true;
    prep.output = support::read_file(out_file);
    const auto& app_def = registry.get(exp.app);
    // Application FOMs plus every active modifier's FOMs and criteria
    // (Section 4.5's architecture-specific evaluation).
    prep.fom_specs = app_def.foms();
    prep.criteria = app_def.success_criteria_list();
    for (const auto& mod_name : exp.modifiers) {
      auto modifier = ModifierRegistry::instance().get(mod_name);
      auto extra_foms = modifier->foms();
      prep.fom_specs.insert(prep.fom_specs.end(), extra_foms.begin(),
                            extra_foms.end());
      auto extra_criteria = modifier->success_criteria();
      prep.criteria.insert(prep.criteria.end(), extra_criteria.begin(),
                           extra_criteria.end());
    }
  }

  std::vector<analysis::FomExtractTask> tasks(preps.size());
  for (std::size_t i = 0; i < preps.size(); ++i) {
    if (!preps[i].ran) continue;
    tasks[i].specs = &preps[i].fom_specs;
    tasks[i].criteria = &preps[i].criteria;
    tasks[i].output = &preps[i].output;
  }
  auto extracted = analysis::extract_foms_batch(tasks, request.threads);

  AnalyzeReport report;
  report.results.reserve(prepared_.size());
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    const auto& exp = prepared_[i];
    ExperimentResult result;
    result.app = exp.app;
    result.workload = exp.workload;
    result.name = exp.name;
    result.variables = exp.variables;
    if (preps[i].ran) {
      result.ran = true;
      result.foms = std::move(extracted[i].foms);
      result.success = extracted[i].success;
      result.output = std::move(preps[i].output);
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

}  // namespace benchpark::ramble
