// Ramble modifiers (Section 3.2: "abstract modifiers for changing the
// behavior of the experiments in repeatable ways"; Section 4.5: "Ramble
// also provides the modifier construct to capture architecture-specific
// FOMs (e.g., hardware counters); we are currently working on the
// implementation of these more advanced evaluation techniques").
//
// A modifier decorates every experiment of a workload without touching
// the benchmark or system specifications: it can inject environment
// variables (how Caliper's always-on profiling is switched on), prefix
// the command line (a `time -v` style wrapper), and contribute extra
// figures of merit + success criteria that `ramble workspace analyze`
// extracts alongside the application's own.
//
// Builtin modifiers:
//   caliper           — sets CALI_CONFIG=spot; annotated binaries then
//                       print a region profile; adds per-region FOMs
//                       (Section 5's Caliper plan)
//   hardware-counters — sets BENCHPARK_PERF_COUNTERS=1; the (simulated)
//                       runtime prints modeled counter totals; adds
//                       cycles/instructions/L3-miss FOMs (Table 1's
//                       "(optional) hardware counters, etc.")
//   time              — prefixes the command with /usr/bin/time -v and
//                       extracts the MaxRSS figure of merit
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"

namespace benchpark::ramble {

class Modifier {
public:
  explicit Modifier(std::string name) : name_(std::move(name)) {}
  virtual ~Modifier() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Environment variables to inject into every experiment.
  [[nodiscard]] virtual std::map<std::string, std::string> env_vars() const {
    return {};
  }
  /// Prefix prepended to the launched command ("" = none).
  [[nodiscard]] virtual std::string command_prefix() const { return ""; }
  /// Extra figures of merit to extract from the output.
  [[nodiscard]] virtual std::vector<analysis::FomSpec> foms() const {
    return {};
  }
  /// Extra success criteria (all must match).
  [[nodiscard]] virtual std::vector<analysis::SuccessCriterion>
  success_criteria() const {
    return {};
  }

private:
  std::string name_;
};

/// Registry of modifiers addressable from ramble.yaml
/// (`modifiers: [caliper]`).
class ModifierRegistry {
public:
  static ModifierRegistry& instance();

  void add(std::shared_ptr<const Modifier> modifier);
  [[nodiscard]] std::shared_ptr<const Modifier> get(
      std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

private:
  ModifierRegistry();
  std::vector<std::shared_ptr<const Modifier>> modifiers_;
};

}  // namespace benchpark::ramble
