#include "src/ramble/application.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace benchpark::ramble {

ApplicationDefinition& ApplicationDefinition::executable(
    const std::string& name, const std::string& command_template,
    bool use_mpi) {
  executables_.push_back({name, command_template, use_mpi});
  return *this;
}

ApplicationDefinition& ApplicationDefinition::workload(
    const std::string& name, std::vector<std::string> executables) {
  for (const auto& exe : executables) {
    if (!find_executable(exe)) {
      throw ExperimentError("workload '" + name + "' of " + name_ +
                            " references unknown executable '" + exe + "'");
    }
  }
  workloads_.push_back({name, std::move(executables), {}});
  return *this;
}

ApplicationDefinition& ApplicationDefinition::workload_variable(
    const std::string& name, const std::string& default_value,
    const std::string& description,
    const std::vector<std::string>& workloads) {
  bool applied = false;
  for (auto& wl : workloads_) {
    bool wanted = workloads.empty() ||
                  std::find(workloads.begin(), workloads.end(), wl.name) !=
                      workloads.end();
    if (wanted) {
      wl.variables.push_back({name, default_value, description});
      applied = true;
    }
  }
  if (!applied) {
    throw ExperimentError("workload_variable '" + name + "' of " + name_ +
                          " matches no workload");
  }
  return *this;
}

ApplicationDefinition& ApplicationDefinition::figure_of_merit(
    const std::string& name, const std::string& fom_regex,
    const std::string& group_name, const std::string& units) {
  foms_.push_back({name, fom_regex, group_name, units});
  return *this;
}

ApplicationDefinition& ApplicationDefinition::success_criteria(
    const std::string& name, const std::string& match) {
  criteria_.push_back({name, match});
  return *this;
}

const WorkloadDef* ApplicationDefinition::find_workload(
    std::string_view name) const {
  for (const auto& wl : workloads_) {
    if (wl.name == name) return &wl;
  }
  return nullptr;
}

const ExecutableDef* ApplicationDefinition::find_executable(
    std::string_view name) const {
  for (const auto& exe : executables_) {
    if (exe.name == name) return &exe;
  }
  return nullptr;
}

std::vector<const ExecutableDef*>
ApplicationDefinition::workload_executables(
    std::string_view workload_name) const {
  const auto* wl = find_workload(workload_name);
  if (!wl) {
    throw ExperimentError("application " + name_ + " has no workload '" +
                          std::string(workload_name) + "'");
  }
  std::vector<const ExecutableDef*> out;
  for (const auto& exe_name : wl->executables) {
    out.push_back(find_executable(exe_name));
  }
  return out;
}

// ----------------------------------------------------------------- registry

ApplicationRegistry& ApplicationRegistry::instance() {
  static ApplicationRegistry registry;
  return registry;
}

ApplicationRegistry::ApplicationRegistry() {
  // Figure 8, verbatim: the saxpy application definition.
  {
    ApplicationDefinition saxpy("saxpy");
    saxpy.executable("p", "saxpy -n {n}", /*use_mpi=*/true)
        .workload("problem", {"p"})
        .workload_variable("n", "1", "problem size", {"problem"})
        .figure_of_merit("success", R"((Kernel done))", "done", "")
        .figure_of_merit("elapsed", R"(Kernel elapsed: ([0-9.eE+-]+) s)",
                         "time", "s")
        .figure_of_merit("gflops", R"(Kernel GFLOP/s: ([0-9.eE+-]+))",
                         "rate", "GFLOP/s")
        .success_criteria("pass", "Kernel done");
    add(std::move(saxpy));
  }
  {
    ApplicationDefinition amg("amg2023");
    amg.executable("amg", "amg -P {px} {py} -n {nx} {ny}", /*use_mpi=*/true)
        .workload("problem1", {"amg"})
        .workload_variable("px", "2", "processor grid x", {"problem1"})
        .workload_variable("py", "2", "processor grid y", {"problem1"})
        .workload_variable("nx", "64", "local grid x", {"problem1"})
        .workload_variable("ny", "64", "local grid y", {"problem1"})
        .figure_of_merit("FOM_Setup",
                         R"(Figure of Merit \(FOM_Setup\): ([0-9.eE+-]+))",
                         "fom", "DOF/s")
        .figure_of_merit("FOM_Solve",
                         R"(Figure of Merit \(FOM_Solve\): ([0-9.eE+-]+))",
                         "fom", "DOF/s")
        .figure_of_merit("iterations", R"(iterations: (\d+))", "iters", "")
        .figure_of_merit("solve_time", R"(Solve time: ([0-9.eE+-]+) s)",
                         "time", "s")
        .success_criteria("converged", "AMG converged");
    add(std::move(amg));
  }
  {
    ApplicationDefinition stream("stream");
    stream.executable("s", "stream -n {n}", /*use_mpi=*/false)
        .workload("bandwidth", {"s"})
        .workload_variable("n", "10000000", "array elements", {"bandwidth"})
        .figure_of_merit("triad", R"(Triad: ([0-9.eE+-]+) GB/s)", "bw",
                         "GB/s")
        .figure_of_merit("copy", R"(Copy: ([0-9.eE+-]+) GB/s)", "bw", "GB/s")
        .success_criteria("validates", "Solution Validates");
    add(std::move(stream));
  }
  {
    ApplicationDefinition gemm("gemm");
    gemm.executable("g", "gemm -n {n}", /*use_mpi=*/true)
        .workload("square", {"g"})
        .workload_variable("n", "384", "matrix order", {"square"})
        .figure_of_merit("gflops", R"(GEMM GFLOP/s: ([0-9.eE+-]+))", "rate",
                         "GFLOP/s")
        .figure_of_merit("elapsed", R"(Kernel elapsed: ([0-9.eE+-]+) s)",
                         "time", "s")
        .success_criteria("pass", "Kernel done");
    add(std::move(gemm));
  }
  {
    ApplicationDefinition ptrans("ptrans");
    ptrans.executable("t", "ptrans -n {n}", /*use_mpi=*/true)
        .workload("transpose", {"t"})
        .workload_variable("n", "1024", "matrix order", {"transpose"})
        .figure_of_merit("bw", R"(PTRANS GB/s: ([0-9.eE+-]+))", "rate",
                         "GB/s")
        .figure_of_merit("elapsed", R"(Kernel elapsed: ([0-9.eE+-]+) s)",
                         "time", "s")
        .success_criteria("pass", "Kernel done");
    add(std::move(ptrans));
  }
  {
    ApplicationDefinition fft("fft");
    fft.executable("f", "fft -n {n}", /*use_mpi=*/true)
        .workload("batch", {"f"})
        .workload_variable("n", "4096", "transform length (power of two)",
                           {"batch"})
        .figure_of_merit("gflops", R"(FFT GFLOP/s: ([0-9.eE+-]+))", "rate",
                         "GFLOP/s")
        .figure_of_merit("roundtrip_err",
                         R"(Roundtrip max rel err: ([0-9.eE+-]+))", "err", "")
        .success_criteria("pass", "Kernel done");
    add(std::move(fft));
  }
  {
    ApplicationDefinition ra("randomaccess");
    ra.executable("r", "randomaccess -n {n}", /*use_mpi=*/true)
        .workload("gups", {"r"})
        .workload_variable("n", "65536", "table entries (power of two)",
                           {"gups"})
        .figure_of_merit("gups", R"(RandomAccess GUP/s: ([0-9.eE+-]+))",
                         "rate", "GUP/s")
        .figure_of_merit("elapsed", R"(Kernel elapsed: ([0-9.eE+-]+) s)",
                         "time", "s")
        .success_criteria("pass", "Kernel done");
    add(std::move(ra));
  }
  {
    ApplicationDefinition beff("beff");
    beff.set_package_name("b-eff");
    beff.executable("b", "b_eff -n {n}", /*use_mpi=*/true)
        .workload("sweep", {"b"})
        .workload_variable("n", "16777216", "max message bytes", {"sweep"})
        .figure_of_merit("beff", R"(b_eff MB/s: ([0-9.eE+-]+))", "rate",
                         "MB/s")
        .figure_of_merit("latency", R"(Effective latency us: ([0-9.eE+-]+))",
                         "lat", "us")
        .success_criteria("pass", "Kernel done");
    add(std::move(beff));
  }
  {
    ApplicationDefinition osu("osu-bcast");
    osu.set_package_name("osu-micro-benchmarks");
    osu.executable("b", "osu_bcast -m {n}", /*use_mpi=*/true)
        .workload("collective", {"b"})
        .workload_variable("n", "1048576", "max message size", {"collective"})
        .figure_of_merit("success", R"((Kernel done))", "done", "")
        .success_criteria("pass", "Kernel done");
    add(std::move(osu));
  }
}

void ApplicationRegistry::add(ApplicationDefinition app) {
  auto name = app.name();
  apps_.insert_or_assign(std::move(name), std::move(app));
}

const ApplicationDefinition& ApplicationRegistry::get(
    std::string_view name) const {
  const auto* found = find(name);
  if (!found) {
    throw ExperimentError("unknown application '" + std::string(name) + "'");
  }
  return *found;
}

const ApplicationDefinition* ApplicationRegistry::find(
    std::string_view name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second;
}

std::vector<std::string> ApplicationRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const auto& [name, app] : apps_) out.push_back(name);
  return out;
}

}  // namespace benchpark::ramble
