#include "src/ramble/modifier.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace benchpark::ramble {

namespace {

class CaliperModifier final : public Modifier {
public:
  CaliperModifier() : Modifier("caliper") {}

  [[nodiscard]] std::map<std::string, std::string> env_vars() const override {
    // Always-on profiling, the configuration Section 5 plans for.
    return {{"CALI_CONFIG", "spot(output={experiment_name}.cali)"}};
  }

  [[nodiscard]] std::vector<analysis::FomSpec> foms() const override {
    return {
        {"cali_main", R"(main\s+([0-9.eE+-]+) s)", "time", "s"},
        {"cali_kernel", R"(main/kernel\s+([0-9.eE+-]+) s)", "time", "s"},
        {"cali_mpi", R"(main/mpi\s+([0-9.eE+-]+) s)", "time", "s"},
    };
  }

  [[nodiscard]] std::vector<analysis::SuccessCriterion> success_criteria()
      const override {
    return {{"caliper-profile", "caliper: region profile"}};
  }
};

class HardwareCountersModifier final : public Modifier {
public:
  HardwareCountersModifier() : Modifier("hardware-counters") {}

  [[nodiscard]] std::map<std::string, std::string> env_vars() const override {
    return {{"BENCHPARK_PERF_COUNTERS", "1"}};
  }

  [[nodiscard]] std::vector<analysis::FomSpec> foms() const override {
    return {
        {"cycles", R"(counter cycles: (\d+))", "count", ""},
        {"instructions", R"(counter instructions: (\d+))", "count", ""},
        {"l3_misses", R"(counter l3_misses: (\d+))", "count", ""},
        {"ipc", R"(counter ipc: ([0-9.]+))", "ratio", ""},
    };
  }
};

class TimeModifier final : public Modifier {
public:
  TimeModifier() : Modifier("time") {}

  [[nodiscard]] std::string command_prefix() const override {
    return "/usr/bin/time -v";
  }

  [[nodiscard]] std::vector<analysis::FomSpec> foms() const override {
    return {{"max_rss_kb",
             R"(Maximum resident set size \(kbytes\): (\d+))", "mem",
             "KB"}};
  }
};

}  // namespace

ModifierRegistry& ModifierRegistry::instance() {
  static ModifierRegistry registry;
  return registry;
}

ModifierRegistry::ModifierRegistry() {
  modifiers_.push_back(std::make_shared<CaliperModifier>());
  modifiers_.push_back(std::make_shared<HardwareCountersModifier>());
  modifiers_.push_back(std::make_shared<TimeModifier>());
}

void ModifierRegistry::add(std::shared_ptr<const Modifier> modifier) {
  if (!modifier) throw ExperimentError("null modifier");
  // Replace same-named modifier (overlay semantics).
  for (auto& existing : modifiers_) {
    if (existing->name() == modifier->name()) {
      existing = std::move(modifier);
      return;
    }
  }
  modifiers_.push_back(std::move(modifier));
}

std::shared_ptr<const Modifier> ModifierRegistry::get(
    std::string_view name) const {
  for (const auto& m : modifiers_) {
    if (m->name() == name) return m;
  }
  throw ExperimentError("unknown modifier '" + std::string(name) +
                        "'; available: caliper, hardware-counters, time");
}

std::vector<std::string> ModifierRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(modifiers_.size());
  for (const auto& m : modifiers_) out.push_back(m->name());
  return out;
}

}  // namespace benchpark::ramble
