// Experiment generation: ramble.yaml's `experiments:` section (Figure 10).
//
// An experiment template has a name pattern
// ("saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}"), variables that may be
// scalars or vectors, and optional `matrices`. Ramble's semantics
// (https://googlecloudplatform.github.io/ramble -> variable matrices):
//
//   * every vector variable named in a matrix contributes a cross-product
//     dimension;
//   * vector variables NOT consumed by a matrix are zipped together (they
//     must all have the same length) into one more dimension;
//   * scalar variables broadcast to every generated experiment.
//
// Figure 10's template (matrix over n x n_threads = 4, zipped
// processes_per_node/n_nodes pairs = 2) therefore expands to 8 concrete
// experiments — pinned by tests/test_experiment.cpp.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/ramble/expansion.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::ramble {

/// An experiment template as parsed from ramble.yaml.
struct ExperimentTemplate {
  std::string name_template;
  /// Scalar variables ({"batch_time", "120"}).
  VariableMap scalars;
  /// Vector variables in declaration order.
  std::vector<std::pair<std::string, std::vector<std::string>>> vectors;
  /// Matrices: each is a named list of vector-variable names.
  std::vector<std::pair<std::string, std::vector<std::string>>> matrices;

  /// Parse the body of one `experiments: <name>:` entry.
  static ExperimentTemplate from_yaml(const std::string& name_template,
                                      const yaml::Node& body);
};

/// One concrete experiment: fully determined variable assignment.
struct Experiment {
  std::string name;       // expanded name template
  VariableMap variables;  // complete assignment (scalars + vector picks)
};

/// Matrices larger than this expand their cross-product rows in parallel
/// on the shared ThreadPool (row blocks; the result is index-assembled,
/// so ordering is unaffected). Exposed for tests and benchmarks.
inline constexpr std::size_t kParallelExpandThreshold = 64;

/// Expand a template into its concrete experiments. `base` supplies
/// variables visible to the name expansion (workload defaults, system
/// variables); experiment variables win on conflict.
///
/// Ordering is deterministic and platform-independent, pinned by
/// tests/test_experiment.cpp:
///   * cross-product dimensions are ordered by matrix declaration order,
///     then by variable order within each matrix (exactly the order the
///     names appear in ramble.yaml — never map-iteration order);
///   * vector variables not consumed by any matrix are zipped, in vector
///     declaration order, into one final dimension;
///   * the cross product is walked odometer-style with dimension 0
///     varying fastest (experiment g picks index (g / stride_d) % size_d
///     from dimension d, stride_0 = 1).
///
/// `threads` is the fan-out width for large products (>=
/// kParallelExpandThreshold rows): 0 = ThreadPool::default_threads(),
/// 1 = serial. The returned vector is byte-identical for every width.
std::vector<Experiment> expand_experiments(const ExperimentTemplate& tmpl,
                                           const VariableMap& base = {},
                                           int threads = 0);

}  // namespace benchpark::ramble
