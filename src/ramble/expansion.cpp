#include "src/ramble/expansion.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

#include "src/obs/trace.hpp"
#include "src/support/arena.hpp"
#include "src/support/error.hpp"
#include "src/support/intern.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::ramble {

namespace {

/// Tiny recursive-descent evaluator: expr := term (('+'|'-') term)*;
/// term := factor (('*'|'/') factor)*; factor := number | '(' expr ')' |
/// '-' factor.
class Arith {
public:
  explicit Arith(std::string_view text) : text_(text) {}

  long long parse() {
    long long v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  long long expr() {
    long long v = term();
    while (true) {
      char c = peek();
      if (c == '+') {
        ++pos_;
        v += term();
      } else if (c == '-') {
        ++pos_;
        v -= term();
      } else {
        return v;
      }
    }
  }

  long long term() {
    long long v = factor();
    while (true) {
      char c = peek();
      if (c == '*') {
        ++pos_;
        v *= factor();
      } else if (c == '/') {
        ++pos_;
        long long d = factor();
        if (d == 0) throw ExperimentError("division by zero in expansion");
        v /= d;
      } else {
        return v;
      }
    }
  }

  long long factor() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      long long v = expr();
      if (peek() != ')') {
        throw ExperimentError("unbalanced parentheses in '" +
                              std::string(text_) + "'");
      }
      ++pos_;
      return v;
    }
    if (c == '-') {
      ++pos_;
      return -factor();
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    std::size_t start = pos_;
    long long v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    // Zero-padded numbers are not arithmetic literals: "01" here almost
    // always means a date component ("2023-01-01"), which must stay a
    // string, not evaluate to 2021.
    if (pos_ - start > 1 && text_[start] == '0') {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_arithmetic(std::string_view expr) {
  if (expr.empty()) return false;
  bool has_digit = false;
  bool has_op = false;
  for (char c : expr) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c == '+' || c == '-' || c == '*' || c == '/' || c == '(' ||
               c == ')') {
      has_op = true;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return has_digit && has_op;  // a plain number needs no evaluation
}

/// Allocation-free integer append (the old path went through
/// std::to_string, one heap string per arithmetic evaluation). Works on
/// std::string and support::ArenaString alike.
template <typename Buf>
void append_int(Buf& out, long long v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

/// An escape pair ("{{" or "}}") at position i?
bool is_escape_pair(std::string_view text, std::size_t i) {
  return i + 1 < text.size() && text[i] == text[i + 1] &&
         (text[i] == '{' || text[i] == '}');
}

}  // namespace

// ------------------------------------------------------- CompiledTemplate

CompiledTemplate::CompiledTemplate(std::string_view text) : source_(text) {
  std::string literal;
  auto flush_literal = [&] {
    if (literal.empty()) return;
    Segment seg;
    seg.kind = Segment::Kind::kLiteral;
    seg.text = std::move(literal);
    segments_.push_back(std::move(seg));
    literal.clear();
  };

  std::size_t i = 0;
  bool pure_literal = true;
  while (i < text.size()) {
    // "{{" and "}}" escape literal braces (Jinja-style), so values can
    // contain JSON or shell syntax without tripping the expander.
    if (is_escape_pair(text, i)) {
      literal.push_back(text[i]);
      i += 2;
      continue;
    }
    if (text[i] != '{') {
      literal.push_back(text[i]);
      ++i;
      continue;
    }
    // Balanced-brace scan for the matching close. A '}' always closes
    // first — '{n}}}' reads as '{n}' + an escaped '}', exactly like the
    // old first-close scanner — while '{{' pairs are skipped so escapes
    // inside a body don't open a nesting level.
    std::size_t j = i + 1;
    int depth = 1;
    while (j < text.size()) {
      if (text[j] == '}') {
        if (--depth == 0) break;
        ++j;
        continue;
      }
      if (is_escape_pair(text, j)) {
        j += 2;
        continue;
      }
      if (text[j] == '{') ++depth;
      ++j;
    }
    if (j >= text.size()) {
      throw ExperimentError("unbalanced '{' in '" + source_ + "'");
    }
    flush_literal();
    pure_literal = false;

    std::string_view body = text.substr(i + 1, j - i - 1);
    Segment seg;
    seg.text = std::string(body);
    if (body.find('{') != std::string_view::npos ||
        body.find('}') != std::string_view::npos) {
      // The body is itself a template ("{p{suffix}}", "{ {n} * 2 }"):
      // expand it at runtime to produce the name being referenced.
      seg.kind = Segment::Kind::kNested;
      seg.inner = std::make_shared<const CompiledTemplate>(body);
    } else {
      seg.kind = Segment::Kind::kVariable;
      // Intern the name once at compile time: memo lookups during
      // expansion become integer-id compares instead of byte compares.
      seg.intern_id = support::intern(body);
      seg.maybe_arith = is_arithmetic(body);
      if (seg.maybe_arith) {
        // Pre-evaluate inline arithmetic ("{8 * 2}") at compile time.
        // Failures (zero-padded dates, division by zero) stay unfolded
        // and re-raise at expansion time, after the variable lookup has
        // had its chance — exactly the old evaluation order.
        try {
          seg.folded = Arith(body).parse();
        } catch (const ExperimentError&) {
        }
      }
    }
    segments_.push_back(std::move(seg));
    i = j + 1;
  }
  flush_literal();

  if (pure_literal) {
    // Precompute the form this template takes when used as a variable
    // *value*: fully expanded (trivially, it has no placeholders) with
    // the arithmetic-value screen applied once ("8 * 2" -> "16",
    // "2023-01-01" kept literal — zero-padded components don't parse).
    std::string value;
    for (const auto& seg : segments_) value += seg.text;
    if (is_arithmetic(value)) {
      try {
        long long v = Arith(value).parse();
        value.clear();
        append_int(value, v);
      } catch (const ExperimentError&) {
        // Not actually arithmetic (or not evaluable): keep the literal.
      }
    }
    literal_value_ = std::move(value);
  }
}

std::size_t CompiledTemplate::placeholder_count() const {
  std::size_t n = 0;
  for (const auto& seg : segments_) {
    if (seg.kind != Segment::Kind::kLiteral) ++n;
  }
  return n;
}

/// One top-level expansion's worth of resolved variables. A name that
/// appears N times in a template (experiment_name in a batch script,
/// say) is recursively expanded once; the other N-1 references append
/// the memoized bytes without touching the cache or the VariableMap.
///
/// Storage is a flat arena-backed vector scanned linearly: real templates
/// reference a handful of distinct names, so an integer-id scan beats a
/// hash table — and carving everything from the caller's arena keeps the
/// warm path heap-allocation-free. Entries whose name was interned at
/// template compile time match on id alone; runtime-built nested names
/// (id 0) fall back to a byte compare.
struct CompiledTemplate::Memo {
  struct Entry {
    std::uint32_t id = 0;    // interned name id; 0 = runtime-built name
    std::string_view name;   // stable bytes (VariableMap key storage)
    std::string_view value;  // arena bytes, live until the caller resets
  };

  explicit Memo(support::Arena& a) : arena(a), entries(a) {}

  support::Arena& arena;
  support::ArenaVector<Entry> entries;

  [[nodiscard]] const Entry* find(std::uint32_t id,
                                  std::string_view name) const {
    for (const Entry& e : entries) {
      if (id != 0 && e.id != 0) {
        if (e.id == id) return &e;  // ids are bijective with names
        continue;
      }
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

std::string CompiledTemplate::expand(const VariableMap& vars,
                                     bool use_cache) const {
  std::string out;
  out.reserve(source_.size());
  expand_into(out, vars, use_cache);
  return out;
}

std::string CompiledTemplate::expand(const VariableMap& vars, bool use_cache,
                                     support::Arena& arena) const {
  std::string out;
  out.reserve(source_.size());
  expand_into(out, vars, use_cache, arena);
  return out;
}

void CompiledTemplate::expand_into(std::string& out, const VariableMap& vars,
                                   bool use_cache) const {
  support::Arena arena;
  expand_into(out, vars, use_cache, arena);
}

void CompiledTemplate::expand_into(std::string& out, const VariableMap& vars,
                                   bool use_cache,
                                   support::Arena& arena) const {
  Memo memo(arena);
  expand_impl(out, vars, use_cache, 0, memo);
}

template <typename Buf>
void CompiledTemplate::expand_impl(Buf& out, const VariableMap& vars,
                                   bool use_cache, int depth,
                                   Memo& memo) const {
  if (depth > 32) {
    throw ExperimentError("expansion did not converge (cycle?) at '" +
                          source_ + "'");
  }
  for (const auto& seg : segments_) {
    switch (seg.kind) {
      case Segment::Kind::kLiteral:
        out.append(std::string_view(seg.text));
        break;
      case Segment::Kind::kVariable:
        expand_name_impl(out, seg.text, seg.intern_id, seg, vars, use_cache,
                         depth, memo);
        break;
      case Segment::Kind::kNested: {
        // The name itself is a template; build it in arena scratch.
        support::ArenaString name(memo.arena);
        seg.inner->expand_impl(name, vars, use_cache, depth + 1, memo);
        expand_name_impl(out, name.view(), /*name_id=*/0, seg, vars,
                         use_cache, depth, memo);
        break;
      }
    }
  }
}

template <typename Buf>
void CompiledTemplate::expand_name_impl(Buf& out, std::string_view name,
                                        std::uint32_t name_id,
                                        const Segment& seg,
                                        const VariableMap& vars,
                                        bool use_cache, int depth,
                                        Memo& memo) const {
  // The memo only ever holds names found in vars, so a hit here short-
  // circuits the std::map lookup too. Only successful expansions are
  // recorded, so cycles and undefined-variable errors inside a value
  // still raise every time.
  if (const Memo::Entry* hit = memo.find(name_id, name)) {
    out.append(hit->value);
    return;
  }
  auto it = vars.find(name);
  if (it != vars.end()) {
    // A variable's value may itself reference variables or be an
    // arithmetic expression (n_ranks = '{processes_per_node}*{n_nodes}').
    // is_arithmetic is only a screen; the value is evaluated only when
    // the whole string parses as arithmetic, so look-alikes such as
    // "2023-01-01" stay literal instead of becoming 2021.
    std::shared_ptr<const CompiledTemplate> cached;
    std::optional<CompiledTemplate> local;
    const CompiledTemplate* value_tmpl;
    if (use_cache) {
      cached = TemplateCache::global().get(it->second);
      value_tmpl = cached.get();
    } else {
      local.emplace(it->second);
      value_tmpl = &*local;
    }
    // The value is built in arena scratch (copied even for precomputed
    // literal values — the compiled template can be evicted from the
    // cache, so the memo must never alias its storage).
    support::ArenaString value(memo.arena);
    if (value_tmpl->literal_value_) {
      value.append(*value_tmpl->literal_value_);
    } else {
      value_tmpl->expand_impl(value, vars, use_cache, depth + 1, memo);
      if (is_arithmetic(value.view())) {
        try {
          long long v = Arith(value.view()).parse();
          value.clear();
          append_int(value, v);
        } catch (const ExperimentError&) {
          // Not actually arithmetic (or not evaluable): keep the literal.
        }
      }
    }
    out.append(value.view());
    Memo::Entry entry;
    entry.id = name_id;
    entry.name = it->first;  // the map's key storage outlives the call
    entry.value = value.view();
    memo.entries.push_back(entry);
    return;
  }
  if (seg.folded) {
    append_int(out, *seg.folded);
    return;
  }
  bool inline_arith = seg.kind == Segment::Kind::kNested
                          ? is_arithmetic(name)
                          : seg.maybe_arith;
  if (inline_arith) {
    append_int(out, Arith(name).parse());
    return;
  }
  throw ExperimentError("undefined variable '{" + std::string(name) +
                        "}' while expanding '" + source_ + "'");
}

// --------------------------------------------------------- TemplateCache

TemplateCache& TemplateCache::global() {
  static TemplateCache instance;
  return instance;
}

TemplateCache::Shard& TemplateCache::shard_for(std::string_view key) const {
  // Same hasher the shard maps use: one fast pass over the key instead
  // of an extra byte-at-a-time fnv1a walk (which dominated warm lookups
  // of script-sized templates).
  return shards_[StringHash{}(key) % kShards];
}

std::shared_ptr<const CompiledTemplate> TemplateCache::get(
    std::string_view text) {
  auto& collector = obs::TraceCollector::global();
  Shard& shard = shard_for(text);
  // Lock-free hit path: one atomic snapshot load, heterogeneous find.
  {
    auto map = shard.snapshot.load();
    auto it = map->find(text);
    if (it != map->end()) {
      hits_.fetch_add(1, std::memory_order_release);
      collector.counter_add("ramble.template.hits");
      return it->second.tmpl;
    }
  }
  misses_.fetch_add(1, std::memory_order_release);
  collector.counter_add("ramble.template.misses");
  // Compile outside the shard lock; errors propagate and nothing is
  // cached. Concurrent duplicate misses compile identical templates, so
  // the last-writer-wins overwrite below is benign.
  auto compiled = std::make_shared<const CompiledTemplate>(text);
  // Counted before the entry is published so a concurrent evictor can
  // never make evictions exceed inserts in a stats() snapshot.
  inserts_.fetch_add(1, std::memory_order_release);
  collector.counter_add("ramble.template.inserts");
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto next = std::make_shared<Map>(*shard.snapshot.load());
    Entry& entry = (*next)[std::string(text)];
    if (!entry.tmpl) size_.fetch_add(1, std::memory_order_relaxed);
    entry.tmpl = compiled;
    entry.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
    shard.snapshot.store(std::move(next));
  }
  if (capacity_.load(std::memory_order_relaxed) != 0) evict_to_capacity();
  return compiled;
}

void TemplateCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.snapshot.store(std::make_shared<const Map>());
  }
  size_.store(0, std::memory_order_relaxed);
}

void TemplateCache::set_capacity(std::size_t max_entries) {
  capacity_.store(max_entries, std::memory_order_relaxed);
  if (max_entries != 0) evict_to_capacity();
}

void TemplateCache::evict_to_capacity() {
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return;
  while (size_.load(std::memory_order_relaxed) > capacity) {
    // Find the globally oldest entry (smallest sequence) from the
    // lock-free snapshots.
    Shard* victim_shard = nullptr;
    std::string victim_key;
    std::uint64_t victim_seq = UINT64_MAX;
    for (auto& shard : shards_) {
      auto map = shard.snapshot.load();
      for (const auto& [key, entry] : *map) {
        if (entry.sequence < victim_seq) {
          victim_seq = entry.sequence;
          victim_key = key;
          victim_shard = &shard;
        }
      }
    }
    if (!victim_shard) return;
    std::lock_guard<std::mutex> lock(victim_shard->mu);
    auto next = std::make_shared<Map>(*victim_shard->snapshot.load());
    // Re-check: the entry may have been refreshed or dropped since the
    // scan; erase only the exact (key, sequence) pair we chose.
    auto it = next->find(std::string_view(victim_key));
    if (it == next->end() || it->second.sequence != victim_seq) {
      continue;
    }
    next->erase(it);
    victim_shard->snapshot.store(std::move(next));
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_release);
    obs::TraceCollector::global().counter_add("ramble.template.evictions");
  }
}

std::vector<std::pair<std::string, std::uint64_t>>
TemplateCache::export_entries() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (auto& shard : shards_) {
    auto map = shard.snapshot.load();
    for (const auto& [key, entry] : *map) {
      out.emplace_back(key, entry.sequence);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

void TemplateCache::restore_entry(std::string_view text,
                                  std::uint64_t sequence) {
  // Compile first: a corrupt persisted record must not publish anything.
  auto compiled = std::make_shared<const CompiledTemplate>(text);
  Shard& shard = shard_for(text);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto next = std::make_shared<Map>(*shard.snapshot.load());
    Entry& entry = (*next)[std::string(text)];
    if (!entry.tmpl) size_.fetch_add(1, std::memory_order_relaxed);
    entry.tmpl = std::move(compiled);
    entry.sequence = sequence;
    shard.snapshot.store(std::move(next));
  }
  // Keep future inserts sorting after every restored entry.
  std::uint64_t expected = next_sequence_.load(std::memory_order_relaxed);
  while (expected <= sequence &&
         !next_sequence_.compare_exchange_weak(expected, sequence + 1,
                                               std::memory_order_relaxed)) {
  }
  if (capacity_.load(std::memory_order_relaxed) != 0) evict_to_capacity();
}

void TemplateCache::restore_stats(const TemplateCacheStats& stats) {
  // Reverse of the stats() read order so concurrent snapshots never see
  // more evictions than inserts mid-restore.
  hits_.store(stats.hits, std::memory_order_release);
  misses_.store(stats.misses, std::memory_order_release);
  inserts_.store(stats.inserts, std::memory_order_release);
  evictions_.store(stats.evictions, std::memory_order_release);
}

TemplateCacheStats TemplateCache::stats() const {
  // Torn-read-free: evictions are read before their cause (inserts),
  // inserts before the miss that produced them, pairing acquire loads
  // with the release increments — a returned struct never shows more
  // evictions than inserts.
  TemplateCacheStats out;
  out.evictions = evictions_.load(std::memory_order_acquire);
  out.inserts = inserts_.load(std::memory_order_acquire);
  out.misses = misses_.load(std::memory_order_acquire);
  out.hits = hits_.load(std::memory_order_acquire);
  return out;
}

// -------------------------------------------------------------- wrappers

long long evaluate_arithmetic(std::string_view expr) {
  return Arith(expr).parse();
}

std::string expand(std::string_view text, const VariableMap& vars) {
  auto compiled = TemplateCache::global().get(text);
  std::string out;
  out.reserve(text.size());
  compiled->expand_into(out, vars, /*use_cache=*/true);
  return out;
}

std::string expand_uncached(std::string_view text, const VariableMap& vars) {
  CompiledTemplate compiled(text);
  std::string out;
  out.reserve(text.size());
  compiled.expand_into(out, vars, /*use_cache=*/false);
  return out;
}

long long expand_int(std::string_view text, const VariableMap& vars,
                     bool use_cache) {
  auto expanded =
      use_cache ? expand(text, vars) : expand_uncached(text, vars);
  try {
    return support::parse_int(expanded);
  } catch (const Error&) {
    if (is_arithmetic(expanded)) return evaluate_arithmetic(expanded);
    throw ExperimentError("'" + std::string(text) + "' expanded to '" +
                          expanded + "', not an integer");
  }
}

}  // namespace benchpark::ramble
