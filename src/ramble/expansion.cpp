#include "src/ramble/expansion.hpp"

#include <cctype>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::ramble {

namespace {

/// Tiny recursive-descent evaluator: expr := term (('+'|'-') term)*;
/// term := factor (('*'|'/') factor)*; factor := number | '(' expr ')' |
/// '-' factor.
class Arith {
public:
  explicit Arith(std::string_view text) : text_(text) {}

  long long parse() {
    long long v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  long long expr() {
    long long v = term();
    while (true) {
      char c = peek();
      if (c == '+') {
        ++pos_;
        v += term();
      } else if (c == '-') {
        ++pos_;
        v -= term();
      } else {
        return v;
      }
    }
  }

  long long term() {
    long long v = factor();
    while (true) {
      char c = peek();
      if (c == '*') {
        ++pos_;
        v *= factor();
      } else if (c == '/') {
        ++pos_;
        long long d = factor();
        if (d == 0) throw ExperimentError("division by zero in expansion");
        v /= d;
      } else {
        return v;
      }
    }
  }

  long long factor() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      long long v = expr();
      if (peek() != ')') {
        throw ExperimentError("unbalanced parentheses in '" +
                              std::string(text_) + "'");
      }
      ++pos_;
      return v;
    }
    if (c == '-') {
      ++pos_;
      return -factor();
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    std::size_t start = pos_;
    long long v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    // Zero-padded numbers are not arithmetic literals: "01" here almost
    // always means a date component ("2023-01-01"), which must stay a
    // string, not evaluate to 2021.
    if (pos_ - start > 1 && text_[start] == '0') {
      throw ExperimentError("bad arithmetic: '" + std::string(text_) + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_arithmetic(std::string_view expr) {
  if (expr.empty()) return false;
  bool has_digit = false;
  bool has_op = false;
  for (char c : expr) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c == '+' || c == '-' || c == '*' || c == '/' || c == '(' ||
               c == ')') {
      has_op = true;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return has_digit && has_op;  // a plain number needs no evaluation
}

std::string expand_rec(std::string_view text, const VariableMap& vars,
                       int depth) {
  if (depth > 32) {
    throw ExperimentError("expansion did not converge (cycle?) at '" +
                          std::string(text) + "'");
  }
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    // "{{" and "}}" escape literal braces (Jinja-style), so values can
    // contain JSON or shell syntax without tripping the expander.
    if (i + 1 < text.size() && text[i] == text[i + 1] &&
        (text[i] == '{' || text[i] == '}')) {
      out.push_back(text[i]);
      i += 2;
      continue;
    }
    if (text[i] != '{') {
      out.push_back(text[i]);
      ++i;
      continue;
    }
    auto close = text.find('}', i);
    if (close == std::string_view::npos) {
      throw ExperimentError("unbalanced '{' in '" + std::string(text) + "'");
    }
    std::string name(text.substr(i + 1, close - i - 1));
    auto it = vars.find(name);
    if (it != vars.end()) {
      // A variable's value may itself reference variables or be an
      // arithmetic expression (n_ranks = '{processes_per_node}*{n_nodes}').
      // is_arithmetic is only a screen; the value is evaluated only when
      // the whole string parses as arithmetic, so look-alikes such as
      // "2023-01-01" stay literal instead of becoming 2021.
      std::string value = expand_rec(it->second, vars, depth + 1);
      if (is_arithmetic(value)) {
        try {
          value = std::to_string(Arith(value).parse());
        } catch (const ExperimentError&) {
          // Not actually arithmetic (or not evaluable): keep the literal.
        }
      }
      out += value;
    } else if (is_arithmetic(name)) {
      out += std::to_string(Arith(name).parse());
    } else {
      throw ExperimentError("undefined variable '{" + name +
                            "}' while expanding '" + std::string(text) +
                            "'");
    }
    i = close + 1;
  }
  return out;
}

}  // namespace

long long evaluate_arithmetic(std::string_view expr) {
  return Arith(expr).parse();
}

std::string expand(std::string_view text, const VariableMap& vars) {
  return expand_rec(text, vars, 0);
}

long long expand_int(std::string_view text, const VariableMap& vars) {
  auto expanded = expand(text, vars);
  try {
    return support::parse_int(expanded);
  } catch (const Error&) {
    if (is_arithmetic(expanded)) return evaluate_arithmetic(expanded);
    throw ExperimentError("'" + std::string(text) + "' expanded to '" +
                          expanded + "', not an integer");
  }
}

}  // namespace benchpark::ramble
