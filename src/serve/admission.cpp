#include "src/serve/admission.hpp"

#include <algorithm>
#include <limits>

namespace benchpark::serve {

FairShareQueue::Tenant& FairShareQueue::state(const std::string& tenant) {
  auto it = by_name_.find(tenant);
  if (it != by_name_.end()) return *it->second;
  auto owned = std::make_unique<Tenant>();
  owned->name = tenant;
  owned->quota = default_quota_;
  Tenant* raw = owned.get();
  ring_.push_back(std::move(owned));
  by_name_.emplace(tenant, raw);
  return *raw;
}

void FairShareQueue::configure(const std::string& tenant, TenantQuota quota) {
  state(tenant).quota = quota;
}

const TenantQuota& FairShareQueue::quota(const std::string& tenant) const {
  auto it = by_name_.find(tenant);
  return it == by_name_.end() ? default_quota_ : it->second->quota;
}

FairShareQueue::Refusal FairShareQueue::push(const std::string& tenant,
                                             TicketId id, int priority) {
  Tenant& t = state(tenant);
  if (t.queue.size() >= t.quota.max_queued) return Refusal::tenant_full;
  // Insert before the first strictly-lower priority: higher priority
  // dispatches first, equal priorities keep submission (FIFO) order.
  auto it = std::find_if(t.queue.begin(), t.queue.end(),
                         [&](const auto& e) { return e.first < priority; });
  t.queue.insert(it, {priority, id});
  ++depth_;
  return Refusal::none;
}

void FairShareQueue::advance() {
  ring_[cursor_]->charged = false;
  cursor_ = (cursor_ + 1) % ring_.size();
}

std::optional<TicketId> FairShareQueue::pop() {
  if (ring_.empty() || depth_ == 0) return std::nullopt;
  // Normalize quanta against the least-weighted eligible tenant so every
  // eligible tenant earns >= 1 dispatch per rotation (bounded wait).
  double min_weight = std::numeric_limits<double>::infinity();
  bool any_eligible = false;
  for (const auto& t : ring_) {
    if (!eligible(*t)) continue;
    any_eligible = true;
    min_weight = std::min(min_weight, std::max(t->quota.weight, kMinWeight));
  }
  if (!any_eligible) return std::nullopt;

  // One extra lap covers a cursor parked mid-ring on an ineligible
  // tenant; an eligible tenant's first charge always reaches >= 1.
  for (std::size_t scanned = 0; scanned < 2 * ring_.size(); ++scanned) {
    Tenant& t = *ring_[cursor_];
    if (!eligible(t)) {
      // Empty or capped tenants bank nothing: credit accrues only while
      // work is actually waiting, so an idle tenant cannot burst later.
      t.deficit = 0.0;
      advance();
      continue;
    }
    if (!t.charged) {
      double quantum = std::max(t.quota.weight, kMinWeight) / min_weight;
      t.deficit = std::min(t.deficit + quantum, quantum + kMaxBankedDeficit);
      t.charged = true;
    }
    if (t.deficit < 1.0) {
      advance();
      continue;
    }
    t.deficit -= 1.0;
    TicketId id = t.queue.front().second;
    t.queue.pop_front();
    --depth_;
    ++t.in_flight;
    ++total_in_flight_;
    // Stay parked here while the tenant still has credit, queue, and
    // slots; otherwise move on so the next pop visits the next tenant.
    if (t.deficit < 1.0 || !eligible(t)) advance();
    return id;
  }
  return std::nullopt;  // unreachable: an eligible tenant always serves
}

void FairShareQueue::release(const std::string& tenant) {
  auto it = by_name_.find(tenant);
  if (it == by_name_.end()) return;
  Tenant& t = *it->second;
  if (t.in_flight > 0) {
    --t.in_flight;
    --total_in_flight_;
  }
}

std::size_t FairShareQueue::depth(const std::string& tenant) const {
  auto it = by_name_.find(tenant);
  return it == by_name_.end() ? 0 : it->second->queue.size();
}

int FairShareQueue::in_flight(const std::string& tenant) const {
  auto it = by_name_.find(tenant);
  return it == by_name_.end() ? 0 : it->second->in_flight;
}

std::vector<std::string> FairShareQueue::tenants() const {
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (const auto& t : ring_) out.push_back(t->name);
  return out;
}

}  // namespace benchpark::serve
