// BenchService: the long-lived multi-tenant benchmarking daemon.
//
// The paper's end state is always-on collaborative infrastructure — many
// users' PR-triggered pipelines landing on shared HPC capacity — not a
// single-process batch tool. BenchService is that promotion: it wraps
// Driver/Workspace behind a thread-safe submission API. submit() returns
// a ticket immediately; a weighted fair-share admission queue (deficit
// round-robin, src/serve/admission.hpp) decides dispatch order across
// tenants; a pool of dispatch workers runs each campaign in an isolated
// per-tenant workspace root against a per-tenant persistent store (the
// Jacamar user-tying model generalized: one identity, one directory
// subtree, one store, one quota).
//
// Backpressure is explicit: bounded per-tenant and global queues reject
// with ServiceBusy (carrying a retry-after hint) instead of queueing
// unboundedly when dispatch capacity saturates.
//
// Durability: every accepted ticket is journaled through the PR-7
// content-addressed store ("service.ticket" records). drain() stops
// admission, finishes accepted work, and flushes every store; a service
// reopened on the same base_dir replays tickets that never reached a
// terminal state (crash recovery), and because campaigns run against the
// same per-tenant store, experiments completed before the crash are
// store hits — nothing re-executes (exaCB's incremental model is what
// makes restart cheap).
//
// Instrumented end to end: "serve.submit"/"serve.dispatch" spans, exact
// serve.* counters (submitted/dispatched/completed/rejected, per-tenant
// throughput, admission-wait), a serve.queue_depth gauge, and the
// "serve.admit"/"serve.dispatch" fault sites so the chaos harness drives
// admission rejections and simulated mid-campaign worker kills.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/detect.hpp"
#include "src/core/driver.hpp"
#include "src/ramble/workspace.hpp"
#include "src/serve/admission.hpp"
#include "src/store/store.hpp"
#include "src/support/error.hpp"

namespace benchpark::serve {

/// Admission rejection (backpressure or an injected admission fault).
/// retry_after_seconds is the service's dispatch-rate-based estimate of
/// when capacity frees up — the HTTP-429 "Retry-After" analogue.
class ServiceBusy : public Error {
 public:
  ServiceBusy(const std::string& what, double retry_after)
      : Error(what), retry_after_seconds(retry_after) {}
  double retry_after_seconds;
};

/// One tenant's campaign submission: which experiment workflow to run on
/// which system, at what intra-tenant priority (higher dispatches first;
/// equal priorities keep submission order).
struct CampaignRequest {
  std::string tenant;
  std::string experiment;  // "<benchmark>/<variant>"
  std::string system;
  int priority = 0;
};

enum class TicketState { queued, running, completed, failed, interrupted };

[[nodiscard]] std::string_view ticket_state_name(TicketState s);

/// Snapshot of one ticket's lifecycle.
struct TicketStatus {
  TicketId id = 0;
  std::string tenant;
  std::string experiment;
  std::string system;
  int priority = 0;
  TicketState state = TicketState::queued;
  /// Global admission order (1-based at dispatch; 0 while queued). The
  /// fair-share property tests assert invariants on this sequence.
  std::uint64_t admit_seq = 0;
  /// Dispatch attempts consumed (serve.dispatch fault retries included).
  int attempts = 0;
  /// True when this ticket was re-admitted by crash recovery.
  bool replayed = false;
  /// Wall-clock seconds between submit() and dispatch.
  double admission_wait_seconds = 0.0;
  /// Campaign outcome (terminal states only).
  std::size_t experiments = 0;
  std::size_t succeeded = 0;
  std::size_t store_hits = 0;
  std::size_t store_misses = 0;
  /// Series in the tenant's FOM history whose most recent change point
  /// is an unresolved regression (post-campaign detection).
  std::size_t regressions = 0;
  std::string error;
};

/// Context handed to the campaign runner for one dispatch.
struct CampaignContext {
  TicketId ticket = 0;
  int attempt = 1;
  /// Isolated per-ticket workspace directory under the tenant's root
  /// (empty when the service has no base_dir).
  std::filesystem::path workspace_dir;
  /// The tenant's persistent store (null when the service has no
  /// base_dir): campaigns re-run only what the store has not seen.
  store::StoreHandle store;
};

/// What one campaign execution produced.
struct CampaignOutcome {
  bool success = true;
  std::size_t experiments = 0;
  std::size_t succeeded = 0;
  std::size_t store_hits = 0;
  std::size_t store_misses = 0;
  /// Currently-regressed series in the tenant's FOM history (the default
  /// runner's post-campaign analysis::run_analysis pass).
  std::size_t regressions = 0;
  std::string detail;
};

/// The pluggable campaign executor. The default runner drives
/// core::Driver::run_workflow; stress tests inject synthetic runners to
/// exercise admission/fairness at thousands-of-campaigns scale.
using CampaignRunner =
    std::function<CampaignOutcome(const CampaignRequest&,
                                  const CampaignContext&)>;

struct ServiceConfig {
  /// Root for the service journal, per-tenant stores, and per-ticket
  /// workspace dirs. Empty = fully in-memory (no journal, no stores) —
  /// the synthetic stress-test mode.
  std::filesystem::path base_dir;
  /// Dispatch workers (campaigns running concurrently, service-wide).
  int workers = 2;
  /// Global admission bound across every tenant queue (backpressure).
  std::size_t max_queued_total = 1024;
  /// Quota for tenants not listed in `tenants`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenants;
  /// Construct with dispatch paused; resume() starts it. Tests and
  /// benches use this to build deterministic queue states.
  bool start_paused = false;
  /// fsync the journal on every submit (durable tickets). Off trades
  /// crash-durability of not-yet-dispatched tickets for admission
  /// throughput; terminal states always flush.
  bool durable_submits = true;
  /// Transient "serve.dispatch" fault retries before a ticket is parked
  /// as interrupted (replayed on restart).
  int max_dispatch_retries = 2;
  /// Run-engine knobs forwarded to the default Driver runner (the store
  /// field is overridden per tenant).
  ramble::RunRequest run;
  /// Post-campaign regression detection over the tenant's FOM history
  /// (default runner, tenants with a store only).
  bool detect_regressions = true;
  analysis::DetectorConfig detector;
  /// Override the campaign executor (empty = Driver::run_workflow).
  CampaignRunner runner;
};

/// Aggregate service counters (exact, mutex-published).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;    // ServiceBusy (bounds or admit faults)
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t interrupted = 0;  // parked for replay-on-restart
  std::uint64_t replayed = 0;     // tickets re-admitted at construction
  std::size_t queue_depth = 0;
  int in_flight = 0;
  bool accepting = false;
};

class BenchService {
 public:
  /// Journal record kind for service tickets in the PR-7 store.
  static constexpr const char* kTicketKind = "service.ticket";

  /// Opens the journal (when base_dir is set), replays interrupted
  /// tickets from a previous incarnation, and starts the workers.
  explicit BenchService(ServiceConfig config);
  /// Drains (unless crash_stop() already ran) and joins the workers.
  ~BenchService();

  BenchService(const BenchService&) = delete;
  BenchService& operator=(const BenchService&) = delete;

  /// Thread-safe submission. Returns the ticket id; throws ServiceBusy
  /// on backpressure (tenant queue full, global bound hit, or an
  /// injected "serve.admit" fault) and Error on invalid requests.
  TicketId submit(const CampaignRequest& request);

  [[nodiscard]] TicketStatus status(TicketId id) const;
  /// Block until the ticket reaches a terminal state (or the service
  /// stops making progress: crash_stop/drain with the ticket skipped).
  TicketStatus wait(TicketId id);
  /// Block until every accepted ticket is terminal; returns all
  /// statuses in ticket-id order. Resumes dispatch if paused.
  std::vector<TicketStatus> wait_all();

  /// Start dispatch when constructed with start_paused.
  void resume();

  /// Graceful drain: stop admission, finish every accepted ticket,
  /// flush the journal and every tenant store. Idempotent; the service
  /// stays queryable afterwards but accepts nothing new.
  void drain();

  /// Test/bench hook simulating a process kill: stop admission, abandon
  /// queued tickets, join workers after their current campaign, and
  /// journal NOTHING further — a restart on the same base_dir must
  /// recover from the journal alone.
  void crash_stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] bool accepting() const;
  /// All ticket statuses, id order (benches derive wait percentiles).
  [[nodiscard]] std::vector<TicketStatus> tickets() const;

  /// The isolated root for one tenant under a service base dir.
  [[nodiscard]] static std::filesystem::path tenant_root(
      const std::filesystem::path& base_dir, const std::string& tenant);

  [[nodiscard]] const core::Driver& driver() const { return driver_; }

 private:
  struct Ticket {
    TicketStatus status;
    CampaignRequest request;
    std::chrono::steady_clock::time_point submitted_at;
  };
  /// execute_campaign's result, folded into the ticket under the lock.
  struct RunResult {
    TicketState state = TicketState::failed;
    CampaignOutcome outcome;
    int attempts = 1;
    std::string error;
    double duration_seconds = 0.0;
  };

  void worker_loop();
  [[nodiscard]] RunResult execute_campaign(const CampaignRequest& request,
                                           TicketId id);
  [[nodiscard]] store::StoreHandle tenant_store(const std::string& tenant);
  void journal_put(const Ticket& t, std::string_view state, bool flush);
  void replay_journal();
  [[nodiscard]] double retry_after_locked() const;
  void validate_request(const CampaignRequest& request) const;

  ServiceConfig config_;
  core::Driver driver_;
  CampaignRunner runner_;
  store::StoreHandle journal_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new work / state change
  std::condition_variable done_cv_;   // waiters: ticket terminal
  FairShareQueue queue_;
  std::map<TicketId, std::unique_ptr<Ticket>> tickets_;
  TicketId next_id_ = 1;
  std::uint64_t admit_seq_ = 0;
  std::map<std::string, std::uint64_t> tenant_submits_;  // admit fault keys
  /// EWMA of campaign wall seconds; drives the retry-after hint.
  double avg_campaign_seconds_ = 0.0;
  bool paused_ = false;
  bool draining_ = false;
  bool stopping_ = false;
  bool crashed_ = false;
  ServiceStats counts_;

  std::mutex stores_mu_;
  std::map<std::string, store::StoreHandle> tenant_stores_;

  std::vector<std::thread> workers_;
};

}  // namespace benchpark::serve
