// Weighted fair-share admission queue for the benchmarking service.
//
// The paper's collaborative model is many users triggering pipelines
// against shared HPC capacity (Jacamar ties each job to the submitting
// user); once those submissions funnel into one long-lived daemon, the
// daemon must decide *whose* campaign dispatches next. This module is
// that policy: deficit round-robin (DRR) over per-tenant FIFO queues.
//
// Each tenant owns a bounded queue (priority-ordered, FIFO among equal
// priorities) and a quota: a weight (its share of dispatch slots) and a
// max-in-flight cap (campaigns running at once). A rotating cursor
// visits tenants; on each stop an eligible tenant's deficit grows by a
// quantum proportional to its weight, and every whole unit of deficit
// buys one campaign dispatch. Quanta are normalized so the least-
// weighted eligible tenant earns at least one dispatch per full
// rotation — the no-starvation bound the service property tests assert:
// a saturated tenant waits at most one rotation (sum of normalized
// quanta) between dispatches, no matter how heavy its neighbors are.
//
// The queue is deliberately NOT thread-safe: BenchService serializes
// access under its own lock, and keeping the structure synchronous makes
// the DRR schedule a pure function of the push/pop call sequence, which
// is what lets the fairness property tests assert exact dispatch orders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace benchpark::serve {

/// A service ticket identifier (stable across restarts; journaled).
using TicketId = std::uint64_t;

/// Per-tenant admission quota: the generalized form of the paper's
/// per-user identity tying. Weight is the tenant's share of dispatch
/// slots under contention; max_in_flight caps concurrently running
/// campaigns; max_queued bounds the tenant's FIFO (backpressure).
struct TenantQuota {
  double weight = 1.0;
  int max_in_flight = 4;
  std::size_t max_queued = 1024;
};

class FairShareQueue {
 public:
  /// Why a push was refused (backpressure, surfaced as ServiceBusy).
  enum class Refusal { none, tenant_full };

  /// Quota applied to tenants with no explicit configure() call.
  void set_default_quota(TenantQuota quota) { default_quota_ = quota; }
  /// Pin a tenant's quota (also registers it in the rotation order).
  void configure(const std::string& tenant, TenantQuota quota);
  [[nodiscard]] const TenantQuota& quota(const std::string& tenant) const;

  /// Enqueue a ticket. Higher priority dispatches earlier within the
  /// tenant; equal priorities keep submission order.
  Refusal push(const std::string& tenant, TicketId id, int priority);

  /// DRR selection: the next ticket to dispatch, or nullopt when no
  /// tenant is eligible (everything empty or at its in-flight cap).
  /// Charges the picked tenant one in-flight slot.
  std::optional<TicketId> pop();

  /// Release the in-flight slot taken by pop() once the campaign
  /// reaches a terminal state.
  void release(const std::string& tenant);

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t depth(const std::string& tenant) const;
  [[nodiscard]] int in_flight(const std::string& tenant) const;
  [[nodiscard]] int total_in_flight() const { return total_in_flight_; }
  /// Tenants in rotation order (registration order).
  [[nodiscard]] std::vector<std::string> tenants() const;

 private:
  struct Tenant {
    std::string name;
    TenantQuota quota;
    /// (priority, ticket) — kept priority-sorted, stable within a level.
    std::deque<std::pair<int, TicketId>> queue;
    double deficit = 0.0;
    /// Quantum already added at the cursor's current stop on this tenant.
    bool charged = false;
    int in_flight = 0;
  };

  Tenant& state(const std::string& tenant);
  [[nodiscard]] static bool eligible(const Tenant& t) {
    return !t.queue.empty() && t.in_flight < t.quota.max_in_flight;
  }
  void advance();

  /// Deficit a long-idle tenant may bank beyond one quantum; keeps a
  /// tenant capped by max_in_flight from hoarding unbounded credit and
  /// then bursting past the configured share when slots free up.
  static constexpr double kMaxBankedDeficit = 8.0;
  /// Floor for weights so a zero/negative weight still progresses.
  static constexpr double kMinWeight = 1e-3;

  std::vector<std::unique_ptr<Tenant>> ring_;  // rotation (registration) order
  std::map<std::string, Tenant*, std::less<>> by_name_;
  TenantQuota default_quota_;
  std::size_t cursor_ = 0;
  std::size_t depth_ = 0;
  int total_in_flight_ = 0;
};

}  // namespace benchpark::serve
