#include "src/serve/service.hpp"

#include <algorithm>
#include <cctype>

#include "src/analysis/analysis.hpp"
#include "src/obs/trace.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::serve {

namespace {

constexpr char kFieldSep = '\x1f';

/// Journal key: fixed-width so for_each replays in ticket-id order.
std::string ticket_key(TicketId id) {
  std::string digits = std::to_string(id);
  std::string out = "t";
  out.append(digits.size() >= 10 ? 0 : 10 - digits.size(), '0');
  out += digits;
  return out;
}

std::string encode_ticket(std::string_view state, const CampaignRequest& r) {
  std::string out(state);
  out += kFieldSep;
  out += r.tenant;
  out += kFieldSep;
  out += r.experiment;
  out += kFieldSep;
  out += r.system;
  out += kFieldSep;
  out += std::to_string(r.priority);
  return out;
}

struct DecodedTicket {
  std::string state;
  CampaignRequest request;
};

std::optional<DecodedTicket> decode_ticket(const std::string& value) {
  auto fields = support::split(value, kFieldSep);
  if (fields.size() != 5) return std::nullopt;
  DecodedTicket out;
  out.state = fields[0];
  out.request.tenant = fields[1];
  out.request.experiment = fields[2];
  out.request.system = fields[3];
  try {
    out.request.priority = static_cast<int>(support::parse_int(fields[4]));
  } catch (const Error&) {
    return std::nullopt;
  }
  return out;
}

/// Tenant names become directory components and journal fields; keep
/// them to a safe identifier alphabet.
bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == '.' || c == '@')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view ticket_state_name(TicketState s) {
  switch (s) {
    case TicketState::queued: return "QUEUED";
    case TicketState::running: return "RUNNING";
    case TicketState::completed: return "COMPLETED";
    case TicketState::failed: return "FAILED";
    case TicketState::interrupted: return "INTERRUPTED";
  }
  return "?";
}

std::filesystem::path BenchService::tenant_root(
    const std::filesystem::path& base_dir, const std::string& tenant) {
  return base_dir / "tenants" / tenant;
}

BenchService::BenchService(ServiceConfig config)
    : config_(std::move(config)) {
  if (config_.workers < 1) throw Error("service needs >= 1 worker");
  queue_.set_default_quota(config_.default_quota);
  for (const auto& [tenant, quota] : config_.tenants) {
    if (!valid_tenant_name(tenant)) {
      throw Error("invalid tenant name '" + tenant + "'");
    }
    queue_.configure(tenant, quota);
  }
  runner_ = config_.runner;
  if (!runner_) {
    runner_ = [this](const CampaignRequest& req, const CampaignContext& ctx) {
      auto id = core::ExperimentId::parse(req.experiment);
      ramble::RunRequest run = config_.run;
      if (ctx.store) run.store = ctx.store;
      ramble::RunReport run_report;
      auto report = driver_.run_workflow(id, req.system, ctx.workspace_dir,
                                         {}, nullptr, run, &run_report);
      CampaignOutcome out;
      out.experiments = report.results.size();
      out.succeeded = report.num_success();
      out.store_hits = run_report.store_hits;
      out.store_misses = run_report.store_misses;
      out.success = !report.results.empty() &&
                    out.succeeded == out.experiments;
      if (!out.success) out.detail = "campaign had failing experiments";
      if (ctx.store && config_.detect_regressions) {
        // Post-campaign watchdog: scan the tenant's FOM history (which
        // run_workflow just extended) for unresolved regressions.
        try {
          analysis::AnalysisRequest scan;
          scan.store = ctx.store;
          scan.benchmark = id.benchmark;
          scan.system = req.system;
          scan.detector = config_.detector;
          auto analyzed = analysis::run_analysis(scan);
          out.regressions = analyzed.regressed_series();
          if (out.regressions > 0) {
            if (!out.detail.empty()) out.detail += "; ";
            out.detail += std::to_string(out.regressions) +
                          " series regressed";
          }
        } catch (const Error&) {
          // Detection is advisory; a history/analysis hiccup never fails
          // the campaign that produced valid results.
        }
      }
      return out;
    };
  }
  if (!config_.base_dir.empty()) {
    journal_ = store::Store::open(config_.base_dir / "journal");
    replay_journal();
  }
  paused_ = config_.start_paused;
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BenchService::~BenchService() {
  if (!crashed_) {
    try {
      drain();
    } catch (...) {
      // Destructors must not throw; drain failures leave the journal
      // with pending-class tickets, which a restart replays.
    }
  }
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void BenchService::validate_request(const CampaignRequest& request) const {
  // Synthetic runners accept arbitrary workflow names; only the default
  // Driver runner can (and must) validate at admission time, so a bad
  // request is rejected at submit instead of failing a dispatch slot.
  if (config_.runner) return;
  auto id = core::ExperimentId::parse(request.experiment);
  driver_.validate(id, request.system);
}

double BenchService::retry_after_locked() const {
  double per_campaign =
      avg_campaign_seconds_ > 0 ? avg_campaign_seconds_ : 0.25;
  auto workers = static_cast<double>(std::max(1, config_.workers));
  auto backlog = static_cast<double>(queue_.depth() +
                                     static_cast<std::size_t>(
                                         queue_.total_in_flight()));
  return std::max(0.25, per_campaign * (backlog / workers + 1.0));
}

void BenchService::journal_put(const Ticket& t, std::string_view state,
                               bool flush) {
  if (!journal_) return;
  journal_->put(kTicketKind, ticket_key(t.status.id),
                encode_ticket(state, t.request));
  if (flush) journal_->flush();
}

TicketId BenchService::submit(const CampaignRequest& request) {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "serve.submit", "serve");
  if (span.active()) span.annotate("tenant", request.tenant);
  if (!valid_tenant_name(request.tenant)) {
    throw Error("invalid tenant name '" + request.tenant + "'");
  }
  validate_request(request);

  TicketId id = 0;
  bool durable = config_.durable_submits && journal_ != nullptr;
  {
    std::lock_guard lock(mu_);
    ++counts_.submitted;
    collector.counter_add("serve.submitted");
    auto reject = [&](const std::string& why) {
      ++counts_.rejected;
      collector.counter_add("serve.rejected");
      throw ServiceBusy("tenant '" + request.tenant + "': " + why,
                        retry_after_locked());
    };
    if (draining_ || stopping_ || crashed_) {
      reject("service is draining; resubmit to the next incarnation");
    }
    // The "serve.admit" fault site models admission-path overload; the
    // key is the tenant's submission ordinal, so a seeded plan rejects
    // the same submissions on every run regardless of thread timing.
    std::uint64_t ordinal = ++tenant_submits_[request.tenant];
    try {
      support::fault_hit("serve.admit",
                         request.tenant + "#" + std::to_string(ordinal));
    } catch (const Error& e) {
      reject(std::string("admission fault: ") + e.what());
    }
    if (queue_.depth() >= config_.max_queued_total) {
      reject("service queue is full (" +
             std::to_string(config_.max_queued_total) + " campaigns)");
    }
    if (queue_.push(request.tenant, next_id_, request.priority) !=
        FairShareQueue::Refusal::none) {
      reject("tenant queue is full (" +
             std::to_string(queue_.quota(request.tenant).max_queued) +
             " campaigns)");
    }
    id = next_id_++;
    auto ticket = std::make_unique<Ticket>();
    ticket->status.id = id;
    ticket->status.tenant = request.tenant;
    ticket->status.experiment = request.experiment;
    ticket->status.system = request.system;
    ticket->status.priority = request.priority;
    ticket->request = request;
    ticket->submitted_at = std::chrono::steady_clock::now();
    journal_put(*ticket, "queued", /*flush=*/false);
    tickets_.emplace(id, std::move(ticket));
    if (collector.enabled()) {
      collector.gauge_set("serve.queue_depth",
                          static_cast<double>(queue_.depth()));
    }
  }
  if (durable) journal_->flush();
  work_cv_.notify_all();
  if (span.active()) span.annotate("ticket", std::to_string(id));
  return id;
}

store::StoreHandle BenchService::tenant_store(const std::string& tenant) {
  if (config_.base_dir.empty()) return nullptr;
  std::lock_guard lock(stores_mu_);
  auto it = tenant_stores_.find(tenant);
  if (it != tenant_stores_.end()) return it->second;
  auto handle =
      store::Store::open(tenant_root(config_.base_dir, tenant) / "store");
  tenant_stores_.emplace(tenant, handle);
  return handle;
}

BenchService::RunResult BenchService::execute_campaign(
    const CampaignRequest& request, TicketId id) {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "serve.dispatch", "serve");
  if (span.active()) {
    span.annotate("tenant", request.tenant);
    span.annotate("ticket", std::to_string(id));
    span.annotate("experiment", request.experiment);
  }
  RunResult result;
  std::string fault_key = "t" + std::to_string(id);
  auto start = std::chrono::steady_clock::now();
  int attempt = 1;
  for (;;) {
    try {
      double injected = support::fault_hit("serve.dispatch", fault_key,
                                           static_cast<std::uint64_t>(
                                               attempt));
      if (injected > 0 && collector.enabled()) {
        collector.emit_span("serve.dispatch.fault", "serve", injected,
                            {{"ticket", fault_key}});
      }
    } catch (const TransientError& e) {
      collector.counter_add("serve.dispatch.faults");
      if (attempt <= config_.max_dispatch_retries) {
        ++attempt;
        continue;
      }
      result.state = TicketState::interrupted;
      result.attempts = attempt;
      result.error = std::string("dispatch retries exhausted: ") + e.what();
      return result;
    } catch (const PermanentError& e) {
      // A permanent dispatch fault models the execution node dying with
      // the campaign on it: park the ticket; restart replays it.
      collector.counter_add("serve.dispatch.faults");
      result.state = TicketState::interrupted;
      result.attempts = attempt;
      result.error = std::string("dispatch worker killed: ") + e.what();
      return result;
    }
    break;
  }
  CampaignContext ctx;
  ctx.ticket = id;
  ctx.attempt = attempt;
  if (!config_.base_dir.empty()) {
    ctx.workspace_dir = tenant_root(config_.base_dir, request.tenant) /
                        "campaigns" / ("t" + std::to_string(id));
    ctx.store = tenant_store(request.tenant);
  }
  try {
    result.outcome = runner_(request, ctx);
    result.state = result.outcome.success ? TicketState::completed
                                          : TicketState::failed;
    result.error = result.outcome.detail;
  } catch (const std::exception& e) {
    result.state = TicketState::failed;
    result.error = e.what();
  }
  result.attempts = attempt;
  result.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void BenchService::worker_loop() {
  auto& collector = obs::TraceCollector::global();
  std::unique_lock lock(mu_);
  for (;;) {
    if (stopping_ || crashed_) return;
    std::optional<TicketId> pick;
    if (!paused_) pick = queue_.pop();
    if (!pick) {
      work_cv_.wait(lock);
      continue;
    }
    Ticket& ticket = *tickets_.at(*pick);
    ticket.status.state = TicketState::running;
    ticket.status.admit_seq = ++admit_seq_;
    ticket.status.admission_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ticket.submitted_at)
            .count();
    ++counts_.dispatched;
    collector.counter_add("serve.dispatched");
    collector.counter_add(
        "serve.admission_wait_us",
        static_cast<long long>(ticket.status.admission_wait_seconds * 1e6));
    if (collector.enabled()) {
      collector.gauge_set("serve.queue_depth",
                          static_cast<double>(queue_.depth()));
    }
    CampaignRequest request = ticket.request;
    TicketId id = *pick;

    lock.unlock();
    RunResult result = execute_campaign(request, id);
    lock.lock();

    Ticket& done = *tickets_.at(id);
    done.status.state = result.state;
    done.status.attempts = result.attempts;
    done.status.error = result.error;
    done.status.experiments = result.outcome.experiments;
    done.status.succeeded = result.outcome.succeeded;
    done.status.store_hits = result.outcome.store_hits;
    done.status.store_misses = result.outcome.store_misses;
    done.status.regressions = result.outcome.regressions;
    bool flush_journal = false;
    switch (result.state) {
      case TicketState::completed:
        ++counts_.completed;
        collector.counter_add("serve.completed");
        if (collector.enabled()) {
          collector.counter_add("serve.tenant." + request.tenant +
                                ".completed");
        }
        break;
      case TicketState::failed:
        ++counts_.failed;
        collector.counter_add("serve.failed");
        break;
      default:
        ++counts_.interrupted;
        collector.counter_add("serve.interrupted");
        break;
    }
    if (result.state == TicketState::completed ||
        result.state == TicketState::failed) {
      avg_campaign_seconds_ =
          avg_campaign_seconds_ == 0.0
              ? result.duration_seconds
              : 0.8 * avg_campaign_seconds_ + 0.2 * result.duration_seconds;
    }
    // A crash-stopped service journals nothing more: the simulated kill
    // must leave only what a real kill would have left on disk.
    if (!crashed_) {
      const char* state = result.state == TicketState::completed
                              ? "done-ok"
                              : result.state == TicketState::failed
                                    ? "done-fail"
                                    : "interrupted";
      journal_put(done, state, /*flush=*/false);
      flush_journal = journal_ != nullptr;
    }
    queue_.release(request.tenant);

    if (flush_journal) {
      lock.unlock();
      journal_->flush();
      lock.lock();
    }
    done_cv_.notify_all();
    work_cv_.notify_all();  // a freed in-flight slot may unblock a tenant
  }
}

void BenchService::replay_journal() {
  // Runs from the constructor, before workers exist: no locking needed.
  std::vector<std::pair<TicketId, DecodedTicket>> pending;
  journal_->for_each(kTicketKind, [&](const std::string& key,
                                      const std::string& value) {
    if (key.size() < 2 || key[0] != 't') return;
    TicketId id = 0;
    try {
      id = static_cast<TicketId>(support::parse_int(key.substr(1)));
    } catch (const Error&) {
      return;
    }
    next_id_ = std::max(next_id_, id + 1);
    auto decoded = decode_ticket(value);
    if (!decoded) return;
    if (decoded->state == "queued" || decoded->state == "running" ||
        decoded->state == "interrupted") {
      pending.emplace_back(id, std::move(*decoded));
    }
  });
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, decoded] : pending) {
    auto ticket = std::make_unique<Ticket>();
    ticket->status.id = id;
    ticket->status.tenant = decoded.request.tenant;
    ticket->status.experiment = decoded.request.experiment;
    ticket->status.system = decoded.request.system;
    ticket->status.priority = decoded.request.priority;
    ticket->status.replayed = true;
    ticket->request = decoded.request;
    ticket->submitted_at = std::chrono::steady_clock::now();
    try {
      validate_request(decoded.request);
    } catch (const Error& e) {
      ticket->status.state = TicketState::failed;
      ticket->status.error = std::string("replay validation: ") + e.what();
      ++counts_.failed;
      journal_put(*ticket, "done-fail", /*flush=*/false);
      tickets_.emplace(id, std::move(ticket));
      continue;
    }
    if (queue_.push(decoded.request.tenant, id, decoded.request.priority) !=
        FairShareQueue::Refusal::none) {
      ticket->status.state = TicketState::failed;
      ticket->status.error = "replay refused: tenant queue full";
      ++counts_.failed;
      journal_put(*ticket, "done-fail", /*flush=*/false);
      tickets_.emplace(id, std::move(ticket));
      continue;
    }
    ++counts_.replayed;
    obs::TraceCollector::global().counter_add("serve.replayed");
    tickets_.emplace(id, std::move(ticket));
  }
  if (journal_) journal_->flush();
}

TicketStatus BenchService::status(TicketId id) const {
  std::lock_guard lock(mu_);
  auto it = tickets_.find(id);
  if (it == tickets_.end()) {
    throw Error("unknown ticket " + std::to_string(id));
  }
  return it->second->status;
}

namespace {
bool terminal(TicketState s) {
  return s == TicketState::completed || s == TicketState::failed ||
         s == TicketState::interrupted;
}
}  // namespace

TicketStatus BenchService::wait(TicketId id) {
  std::unique_lock lock(mu_);
  auto it = tickets_.find(id);
  if (it == tickets_.end()) {
    throw Error("unknown ticket " + std::to_string(id));
  }
  Ticket* ticket = it->second.get();
  done_cv_.wait(lock, [&] {
    return terminal(ticket->status.state) || crashed_ || stopping_;
  });
  return ticket->status;
}

std::vector<TicketStatus> BenchService::wait_all() {
  std::unique_lock lock(mu_);
  if (paused_) {
    paused_ = false;
    work_cv_.notify_all();
  }
  done_cv_.wait(lock, [&] {
    return (queue_.depth() == 0 && queue_.total_in_flight() == 0) ||
           crashed_ || stopping_;
  });
  std::vector<TicketStatus> out;
  out.reserve(tickets_.size());
  for (const auto& [id, ticket] : tickets_) out.push_back(ticket->status);
  return out;
}

void BenchService::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void BenchService::drain() {
  {
    std::unique_lock lock(mu_);
    if (crashed_) return;
    draining_ = true;
    paused_ = false;  // drain implies dispatch runs the accepted backlog
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] {
      return (queue_.depth() == 0 && queue_.total_in_flight() == 0) ||
             crashed_;
    });
  }
  if (journal_) journal_->flush();
  std::vector<store::StoreHandle> stores;
  {
    std::lock_guard lock(stores_mu_);
    for (const auto& [tenant, handle] : tenant_stores_) {
      stores.push_back(handle);
    }
  }
  for (const auto& handle : stores) handle->flush();
  obs::TraceCollector::global().counter_add("serve.drains");
}

void BenchService::crash_stop() {
  {
    std::lock_guard lock(mu_);
    if (crashed_) return;
    crashed_ = true;
    paused_ = false;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Release the store handles so a restarted service can reopen the
  // same directories as the journal's sole writer. Nothing is flushed
  // here beyond what submit()/completions already made durable — a real
  // SIGKILL would not flush either.
  {
    std::lock_guard lock(stores_mu_);
    tenant_stores_.clear();
  }
  journal_.reset();
}

ServiceStats BenchService::stats() const {
  std::lock_guard lock(mu_);
  ServiceStats out = counts_;
  out.queue_depth = queue_.depth();
  out.in_flight = queue_.total_in_flight();
  out.accepting = !(draining_ || stopping_ || crashed_);
  return out;
}

bool BenchService::accepting() const {
  std::lock_guard lock(mu_);
  return !(draining_ || stopping_ || crashed_);
}

std::vector<TicketStatus> BenchService::tickets() const {
  std::lock_guard lock(mu_);
  std::vector<TicketStatus> out;
  out.reserve(tickets_.size());
  for (const auto& [id, ticket] : tickets_) out.push_back(ticket->status);
  return out;
}

}  // namespace benchpark::serve
