#include "src/concretizer/config.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"
#include "src/yaml/emitter.hpp"

namespace benchpark::concretizer {

void Config::load_packages_yaml(const yaml::Node& root) {
  // Accept either a top-level `packages:` key or the bare mapping.
  const yaml::Node& pkgs = root.has("packages") ? root.at("packages") : root;
  if (pkgs.is_null()) return;
  for (const auto& [name, body] : pkgs.map()) {
    PackageSettings& settings = packages_[name];
    if (body.has("externals")) {
      for (const auto& ext : body.at("externals").items()) {
        ExternalDef def;
        def.spec = spec::Spec::parse(ext.at("spec").as_string());
        def.prefix = ext.at("prefix").as_string_or("");
        settings.externals.push_back(std::move(def));
      }
    }
    if (body.has("buildable")) {
      settings.buildable = body.at("buildable").as_bool();
    }
    if (body.has("version")) {
      settings.preferred_versions = body.at("version").as_string_list();
    }
    if (body.has("providers")) {
      settings.preferred_providers = body.at("providers").as_string_list();
    }
    if (body.has("require")) {
      settings.require = spec::Spec::parse(body.at("require").as_string());
    }
  }
}

void Config::load_compilers_yaml(const yaml::Node& root) {
  const yaml::Node& list =
      root.has("compilers") ? root.at("compilers") : root;
  if (list.is_null()) return;
  for (const auto& item : list.items()) {
    // Shape: - compiler: { spec: gcc@12.1.1, paths: { cc: ..., cxx: ... } }
    const yaml::Node& c = item.has("compiler") ? item.at("compiler") : item;
    auto spec_text = c.at("spec").as_string();
    auto parsed = spec::Spec::parse(spec_text);
    CompilerEntry entry;
    entry.name = parsed.name();
    entry.version = parsed.concrete_version();
    entry.cc = c.path("paths.cc").as_string_or("");
    entry.cxx = c.path("paths.cxx").as_string_or("");
    compilers_.push_back(std::move(entry));
  }
}

void Config::merge_from(const Config& other) {
  for (const auto& [name, settings] : other.packages_) {
    packages_[name] = settings;  // other wins wholesale per package
  }
  for (const auto& c : other.compilers_) compilers_.push_back(c);
  if (!other.default_target_.empty()) default_target_ = other.default_target_;
  if (!other.default_compiler_name_.empty()) {
    default_compiler_name_ = other.default_compiler_name_;
  }
}

const PackageSettings* Config::settings_for(std::string_view package) const {
  auto it = packages_.find(std::string(package));
  return it == packages_.end() ? nullptr : &it->second;
}

const CompilerEntry* Config::find_compiler(
    const spec::CompilerSpec& constraint) const {
  const CompilerEntry* best = nullptr;
  for (const auto& c : compilers_) {
    if (!constraint.name.empty() && c.name != constraint.name) continue;
    if (!constraint.versions.satisfied_by(c.version)) continue;
    if (!best || c.version > best->version) best = &c;
  }
  return best;
}

const CompilerEntry& Config::default_compiler() const {
  if (compilers_.empty()) {
    throw ConcretizationError("configuration scope has no compilers");
  }
  if (!default_compiler_name_.empty()) {
    spec::CompilerSpec want{default_compiler_name_, {}};
    // Allow "gcc@12.1.1" style default names too.
    if (default_compiler_name_.find('@') != std::string::npos) {
      auto parsed = spec::Spec::parse(default_compiler_name_);
      want = {parsed.name(), parsed.versions()};
    }
    if (const auto* found = find_compiler(want)) return *found;
    throw ConcretizationError("default compiler '" + default_compiler_name_ +
                              "' is not in compilers.yaml");
  }
  return compilers_.front();
}

yaml::Node Config::packages_yaml() const {
  yaml::Node root = yaml::Node::make_mapping();
  yaml::Node& pkgs = root["packages"];
  pkgs = yaml::Node::make_mapping();
  for (const auto& [name, settings] : packages_) {
    yaml::Node& body = pkgs[name];
    body = yaml::Node::make_mapping();
    if (!settings.externals.empty()) {
      yaml::Node list = yaml::Node::make_sequence();
      for (const auto& ext : settings.externals) {
        yaml::Node entry = yaml::Node::make_mapping();
        entry["spec"] = yaml::Node(ext.spec.str());
        entry["prefix"] = yaml::Node(ext.prefix);
        list.push_back(std::move(entry));
      }
      body["externals"] = std::move(list);
    }
    if (!settings.buildable) body["buildable"] = yaml::Node(false);
    if (!settings.preferred_versions.empty()) {
      yaml::Node list = yaml::Node::make_sequence();
      for (const auto& v : settings.preferred_versions) {
        list.push_back(yaml::Node(v));
      }
      body["version"] = std::move(list);
    }
    if (!settings.preferred_providers.empty()) {
      yaml::Node list = yaml::Node::make_sequence();
      for (const auto& p : settings.preferred_providers) {
        list.push_back(yaml::Node(p));
      }
      body["providers"] = std::move(list);
    }
    if (settings.require) body["require"] = yaml::Node(settings.require->str());
  }
  return root;
}

yaml::Node Config::compilers_yaml() const {
  yaml::Node root = yaml::Node::make_mapping();
  yaml::Node list = yaml::Node::make_sequence();
  for (const auto& c : compilers_) {
    yaml::Node entry = yaml::Node::make_mapping();
    yaml::Node& body = entry["compiler"];
    body = yaml::Node::make_mapping();
    body["spec"] = yaml::Node(c.name + "@" + c.version.str());
    if (!c.cc.empty() || !c.cxx.empty()) {
      yaml::Node& paths = body["paths"];
      paths = yaml::Node::make_mapping();
      paths["cc"] = yaml::Node(c.cc);
      paths["cxx"] = yaml::Node(c.cxx);
    }
    list.push_back(std::move(entry));
  }
  root["compilers"] = std::move(list);
  return root;
}

std::uint64_t Config::fingerprint() const {
  // Hash the canonical YAML emission rather than walking the maps by
  // hand: anything load_packages_yaml round-trips is covered, and two
  // scopes that emit identical YAML (however they were built) share a
  // fingerprint.
  support::Hasher h;
  h.update(yaml::emit(packages_yaml()));
  h.update(yaml::emit(compilers_yaml()));
  h.update(default_target_);
  h.update(default_compiler_name_);
  return h.digest();
}

}  // namespace benchpark::concretizer
