#include "src/concretizer/concretize_cache.hpp"

#include <algorithm>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/support/hash.hpp"

namespace benchpark::concretizer {

// ---------------------------------------------------------- canonical text

namespace {

std::string canonical_no_deps(const spec::Spec& s) {
  // Mirrors Spec::str_no_deps() (variants iterate the name-sorted map),
  // plus the external prefix, which str_no_deps omits but which changes
  // what the spec resolves to.
  std::string out = s.name();
  if (!s.versions().is_any()) out += "@" + s.versions().str();
  for (const auto& [vname, vvalue] : s.variants()) {
    if (vvalue.kind() == spec::VariantValue::Kind::boolean) {
      out += (vvalue.as_bool() ? "+" : "~") + vname;
    } else {
      out += " " + vname + "=" + vvalue.value_str();
    }
  }
  if (s.compiler()) out += "%" + s.compiler()->str();
  if (!s.target().empty()) out += " target=" + s.target();
  if (s.is_external()) out += " external=" + s.external_prefix();
  return out;
}

}  // namespace

std::string canonical_spec_text(const spec::Spec& abstract) {
  std::string out = canonical_no_deps(abstract);
  std::vector<std::string> deps;
  deps.reserve(abstract.dependencies().size());
  for (const auto& d : abstract.dependencies()) {
    // Recursive: programmatically built constraints may nest deeper than
    // the one-level ^dep grammar the parser produces.
    deps.push_back(canonical_spec_text(d));
  }
  std::sort(deps.begin(), deps.end());
  for (const auto& d : deps) out += " ^{" + d + "}";
  return out;
}

std::string canonical_spec_hash(const spec::Spec& abstract) {
  return support::hash_base32(canonical_spec_text(abstract));
}

// ------------------------------------------------------------------- cache

ConcretizationCache& ConcretizationCache::global() {
  static ConcretizationCache instance;
  return instance;
}

ConcretizationCache::Shard& ConcretizationCache::shard_for(
    std::string_view key) const {
  return shards_[support::fnv1a(key) % kShards];
}

ConcretizationCache::SharedSpec ConcretizationCache::lookup(
    std::string_view key) {
  auto& collector = obs::TraceCollector::global();
  // Lock-free hit path: one atomic snapshot load, heterogeneous find.
  auto map = shard_for(key).snapshot.load();
  auto it = map->find(key);
  if (it != map->end()) {
    hits_.fetch_add(1, std::memory_order_release);
    collector.counter_add("concretizer.cache.hits");
    return it->second.spec;
  }
  misses_.fetch_add(1, std::memory_order_release);
  collector.counter_add("concretizer.cache.misses");
  return nullptr;
}

ConcretizationCache::SharedSpec ConcretizationCache::insert(
    const std::string& key, spec::Spec concrete) {
  auto shared = std::make_shared<const spec::Spec>(std::move(concrete));
  Shard& shard = shard_for(key);
  // Counted before the entry is published so a concurrent evictor or
  // invalidator can never make evictions/invalidations exceed inserts in
  // a stats() snapshot.
  inserts_.fetch_add(1, std::memory_order_release);
  obs::TraceCollector::global().counter_add("concretizer.cache.inserts");
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto next = std::make_shared<Map>(*shard.snapshot.load());
    Entry& entry = (*next)[key];
    if (!entry.spec) size_.fetch_add(1, std::memory_order_relaxed);
    entry.spec = shared;
    entry.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
    shard.snapshot.store(std::move(next));
  }
  if (capacity_.load(std::memory_order_relaxed) != 0) evict_to_capacity();
  return shared;
}

bool ConcretizationCache::invalidate(std::string_view key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto next = std::make_shared<Map>(*shard.snapshot.load());
  auto it = next->find(key);
  if (it == next->end()) return false;
  next->erase(it);
  shard.snapshot.store(std::move(next));
  size_.fetch_sub(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_release);
  obs::TraceCollector::global().counter_add(
      "concretizer.cache.invalidations");
  return true;
}

void ConcretizationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.snapshot.store(std::make_shared<const Map>());
  }
  size_.store(0, std::memory_order_relaxed);
}

void ConcretizationCache::set_capacity(std::size_t max_entries) {
  capacity_.store(max_entries, std::memory_order_relaxed);
  if (max_entries != 0) evict_to_capacity();
}

void ConcretizationCache::evict_to_capacity() {
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return;
  while (size_.load(std::memory_order_relaxed) > capacity) {
    // Find the globally oldest entry (smallest sequence) from the
    // lock-free snapshots.
    Shard* victim_shard = nullptr;
    std::string victim_key;
    std::uint64_t victim_seq = UINT64_MAX;
    for (auto& shard : shards_) {
      auto map = shard.snapshot.load();
      for (const auto& [key, entry] : *map) {
        if (entry.sequence < victim_seq) {
          victim_seq = entry.sequence;
          victim_key = key;
          victim_shard = &shard;
        }
      }
    }
    if (!victim_shard) return;
    std::lock_guard<std::mutex> lock(victim_shard->mu);
    auto next = std::make_shared<Map>(*victim_shard->snapshot.load());
    // Re-check: the entry may have been refreshed or dropped since the
    // scan; erase only the exact (key, sequence) pair we chose.
    auto it = next->find(std::string_view(victim_key));
    if (it == next->end() || it->second.sequence != victim_seq) {
      continue;
    }
    next->erase(it);
    victim_shard->snapshot.store(std::move(next));
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_release);
    obs::TraceCollector::global().counter_add("concretizer.cache.evictions");
  }
}

void ConcretizationCache::for_each_entry(
    const std::function<void(const std::string&, const spec::Spec&,
                             std::uint64_t)>& fn) const {
  struct Row {
    std::string key;
    SharedSpec spec;
    std::uint64_t sequence;
  };
  std::vector<Row> rows;
  for (auto& shard : shards_) {
    // One guard at a time (hazard slots are a small per-thread budget);
    // the shared spec pointers stay valid after the guard is released.
    auto map = shard.snapshot.load();
    for (const auto& [key, entry] : *map) {
      rows.push_back({key, entry.spec, entry.sequence});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sequence < b.sequence;
  });
  for (const auto& row : rows) fn(row.key, *row.spec, row.sequence);
}

void ConcretizationCache::restore_entry(const std::string& key,
                                        spec::Spec concrete,
                                        std::uint64_t sequence) {
  auto shared = std::make_shared<const spec::Spec>(std::move(concrete));
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto next = std::make_shared<Map>(*shard.snapshot.load());
    Entry& entry = (*next)[key];
    if (!entry.spec) size_.fetch_add(1, std::memory_order_relaxed);
    entry.spec = std::move(shared);
    entry.sequence = sequence;
    shard.snapshot.store(std::move(next));
  }
  // Keep future inserts sorting after every restored entry.
  std::uint64_t expected = next_sequence_.load(std::memory_order_relaxed);
  while (expected <= sequence &&
         !next_sequence_.compare_exchange_weak(expected, sequence + 1,
                                               std::memory_order_relaxed)) {
  }
  if (capacity_.load(std::memory_order_relaxed) != 0) evict_to_capacity();
}

void ConcretizationCache::restore_stats(const ConcretizeCacheStats& stats) {
  // Reverse of the stats() read order so concurrent snapshots never see
  // more evictions/invalidations than inserts mid-restore.
  hits_.store(stats.hits, std::memory_order_release);
  misses_.store(stats.misses, std::memory_order_release);
  inserts_.store(stats.inserts, std::memory_order_release);
  invalidations_.store(stats.invalidations, std::memory_order_release);
  evictions_.store(stats.evictions, std::memory_order_release);
}

ConcretizeCacheStats ConcretizationCache::stats() const {
  // Torn-read-free: effect counters (evictions, invalidations) are read
  // before their cause (inserts), and inserts before the miss/hit pair,
  // pairing acquire loads with the release increments — a returned struct
  // never shows more evictions or invalidations than inserts.
  ConcretizeCacheStats out;
  out.evictions = evictions_.load(std::memory_order_acquire);
  out.invalidations = invalidations_.load(std::memory_order_acquire);
  out.inserts = inserts_.load(std::memory_order_acquire);
  out.misses = misses_.load(std::memory_order_acquire);
  out.hits = hits_.load(std::memory_order_acquire);
  return out;
}

}  // namespace benchpark::concretizer
