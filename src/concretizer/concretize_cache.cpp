#include "src/concretizer/concretize_cache.hpp"

#include <algorithm>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/support/hash.hpp"

namespace benchpark::concretizer {

// ---------------------------------------------------------- canonical text

namespace {

std::string canonical_no_deps(const spec::Spec& s) {
  // Mirrors Spec::str_no_deps() (variants iterate the name-sorted map),
  // plus the external prefix, which str_no_deps omits but which changes
  // what the spec resolves to.
  std::string out = s.name();
  if (!s.versions().is_any()) out += "@" + s.versions().str();
  for (const auto& [vname, vvalue] : s.variants()) {
    if (vvalue.kind() == spec::VariantValue::Kind::boolean) {
      out += (vvalue.as_bool() ? "+" : "~") + vname;
    } else {
      out += " " + vname + "=" + vvalue.value_str();
    }
  }
  if (s.compiler()) out += "%" + s.compiler()->str();
  if (!s.target().empty()) out += " target=" + s.target();
  if (s.is_external()) out += " external=" + s.external_prefix();
  return out;
}

}  // namespace

std::string canonical_spec_text(const spec::Spec& abstract) {
  std::string out = canonical_no_deps(abstract);
  std::vector<std::string> deps;
  deps.reserve(abstract.dependencies().size());
  for (const auto& d : abstract.dependencies()) {
    // Recursive: programmatically built constraints may nest deeper than
    // the one-level ^dep grammar the parser produces.
    deps.push_back(canonical_spec_text(d));
  }
  std::sort(deps.begin(), deps.end());
  for (const auto& d : deps) out += " ^{" + d + "}";
  return out;
}

std::string canonical_spec_hash(const spec::Spec& abstract) {
  return support::hash_base32(canonical_spec_text(abstract));
}

// ------------------------------------------------------------------- cache

ConcretizationCache& ConcretizationCache::global() {
  static ConcretizationCache instance;
  return instance;
}

ConcretizationCache::Shard& ConcretizationCache::shard_for(
    std::string_view key) const {
  return shards_[support::fnv1a(key) % kShards];
}

ConcretizationCache::SharedSpec ConcretizationCache::lookup(
    std::string_view key) {
  auto& collector = obs::TraceCollector::global();
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(std::string(key));
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      collector.counter_add("concretizer.cache.hits");
      return it->second.spec;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  collector.counter_add("concretizer.cache.misses");
  return nullptr;
}

ConcretizationCache::SharedSpec ConcretizationCache::insert(
    const std::string& key, spec::Spec concrete) {
  auto shared = std::make_shared<const spec::Spec>(std::move(concrete));
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry& entry = shard.entries[key];
    if (!entry.spec) size_.fetch_add(1, std::memory_order_relaxed);
    entry.spec = shared;
    entry.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceCollector::global().counter_add("concretizer.cache.inserts");
  if (capacity_.load(std::memory_order_relaxed) != 0) evict_to_capacity();
  return shared;
}

bool ConcretizationCache::invalidate(std::string_view key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(std::string(key));
  if (it == shard.entries.end()) return false;
  shard.entries.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceCollector::global().counter_add(
      "concretizer.cache.invalidations");
  return true;
}

void ConcretizationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
  size_.store(0, std::memory_order_relaxed);
}

void ConcretizationCache::set_capacity(std::size_t max_entries) {
  capacity_.store(max_entries, std::memory_order_relaxed);
  if (max_entries != 0) evict_to_capacity();
}

void ConcretizationCache::evict_to_capacity() {
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return;
  while (size_.load(std::memory_order_relaxed) > capacity) {
    // Find the globally oldest entry (smallest sequence) across shards.
    Shard* victim_shard = nullptr;
    std::string victim_key;
    std::uint64_t victim_seq = UINT64_MAX;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, entry] : shard.entries) {
        if (entry.sequence < victim_seq) {
          victim_seq = entry.sequence;
          victim_key = key;
          victim_shard = &shard;
        }
      }
    }
    if (!victim_shard) return;
    std::lock_guard<std::mutex> lock(victim_shard->mu);
    // Re-check: the entry may have been refreshed or dropped since the
    // scan; erase only the exact (key, sequence) pair we chose.
    auto it = victim_shard->entries.find(victim_key);
    if (it == victim_shard->entries.end() ||
        it->second.sequence != victim_seq) {
      continue;
    }
    victim_shard->entries.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::TraceCollector::global().counter_add("concretizer.cache.evictions");
  }
}

ConcretizeCacheStats ConcretizationCache::stats() const {
  ConcretizeCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace benchpark::concretizer
