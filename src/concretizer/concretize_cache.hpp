// Process-wide memo table for concretization results.
//
// Concretization is the dominant cost of a large build farm: every
// experiment-matrix cell and every environment root re-resolves the same
// dependency closures. This cache makes repeated roots resolve exactly
// once per process. Entries are keyed by
//
//   (canonical abstract-spec hash, config fingerprint, repo-stack
//    fingerprint [, unify component])
//
// and hold *shared immutable* concrete specs (shared_ptr<const Spec>),
// so every consumer of a warm entry aliases one resolution. The key is
// built by Concretizer::concretize_all; this module owns the canonical
// spec rendering (constraint-order independent) and the sharded table
// with hit/miss/evict counters. Steady-state reads are lock-free: each
// shard publishes an immutable RCU-style snapshot (support/snapshot.hpp)
// that lookup() loads with one atomic operation; writers copy-on-write
// under the shard mutex and publish atomically.
//
// Invalidation: the config and repo-stack fingerprints in the key make
// stale entries unreachable after any scope or recipe change — there is
// nothing to flush, the old keys simply stop being asked for. Explicit
// invalidate()/clear() exist for the chaos path ("concretizer.resolve"
// fault site): a transient fault treats the entry as poisoned, drops it,
// and re-resolves.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/spec/spec.hpp"
#include "src/support/hash.hpp"
#include "src/support/snapshot.hpp"

namespace benchpark::concretizer {

/// Canonical rendering of an abstract spec: identical constraint sets
/// produce identical text regardless of the order constraints were
/// written ("amg2023 ^hypre ^mvapich2" == "amg2023 ^mvapich2 ^hypre");
/// any semantic difference changes it. Variants are name-sorted (map
/// order), dependencies are canonicalized recursively and sorted.
[[nodiscard]] std::string canonical_spec_text(const spec::Spec& abstract);

/// Stable base32 hash of canonical_spec_text (the cache-key component).
[[nodiscard]] std::string canonical_spec_hash(const spec::Spec& abstract);

/// Cumulative counters; snapshot by value via ConcretizationCache::stats()
/// (same pattern as buildcache::CacheStats / the trace collector).
/// Snapshots are torn-read-free: evictions <= inserts and
/// invalidations <= inserts hold within any one struct, and every counter
/// is monotone across successive snapshots.
struct ConcretizeCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;      // dropped to stay under capacity
  std::size_t invalidations = 0;  // dropped explicitly (chaos poisoning)

  [[nodiscard]] std::size_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

class ConcretizationCache {
public:
  using SharedSpec = std::shared_ptr<const spec::Spec>;

  ConcretizationCache() = default;
  ConcretizationCache(const ConcretizationCache&) = delete;
  ConcretizationCache& operator=(const ConcretizationCache&) = delete;

  /// The process-wide instance every cache-enabled Concretizer consults.
  static ConcretizationCache& global();

  /// Thread-safe lookup; counts a hit or a miss (and mirrors both into
  /// the trace collector's "concretizer.cache.*" counters when tracing).
  [[nodiscard]] SharedSpec lookup(std::string_view key);

  /// Publish a resolution. Overwrites any same-key entry (last writer
  /// wins — concurrent duplicate misses resolve identical specs, so the
  /// race is benign). Returns the shared entry.
  SharedSpec insert(const std::string& key, spec::Spec concrete);

  /// Drop one entry (chaos poisoning); false when absent.
  bool invalidate(std::string_view key);
  /// Drop everything (counters are kept; tests use clear() for isolation).
  void clear();

  /// Capacity in entries; 0 (default) is unbounded. Over capacity the
  /// oldest-inserted entries are evicted first (rolling, like the binary
  /// cache's oldest-sequence policy).
  void set_capacity(std::size_t max_entries);
  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ConcretizeCacheStats stats() const;

  /// Visit every entry as (key, concrete spec, insert sequence), in
  /// ascending sequence order, for the persistent store's snapshot.
  void for_each_entry(
      const std::function<void(const std::string&, const spec::Spec&,
                               std::uint64_t)>& fn) const;

  /// Re-publish a persisted entry with its original insert sequence
  /// (warm start). Does not count as cache traffic — only genuine inserts
  /// move the counters — but keeps next_sequence_ ahead of every restored
  /// sequence so eviction order stays oldest-first across reloads.
  void restore_entry(const std::string& key, spec::Spec concrete,
                     std::uint64_t sequence);

  /// Resume counters from a persisted snapshot instead of zero, so the
  /// eviction gates and concretizer.cache.* obs mirroring stay monotone
  /// across process restarts.
  void restore_stats(const ConcretizeCacheStats& stats);

private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    SharedSpec spec;
    std::uint64_t sequence = 0;  // insert order, process-wide
  };
  using Map = std::unordered_map<std::string, Entry,
                                 support::TransparentStringHash,
                                 std::equal_to<>>;
  /// Readers load `snapshot` lock-free (one atomic load, heterogeneous
  /// string_view find — no temporary key string); writers copy-on-write
  /// under `mu` and publish atomically.
  struct Shard {
    std::mutex mu;
    support::SnapshotPtr<Map> snapshot;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;
  /// Evict oldest-sequence entries until size() fits capacity(). Lock
  /// order is evict_mu_ -> shard.mu, never the reverse.
  void evict_to_capacity();

  mutable std::array<Shard, kShards> shards_;
  std::mutex evict_mu_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> inserts_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> invalidations_{0};
};

}  // namespace benchpark::concretizer
