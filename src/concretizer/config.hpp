// Concretizer configuration: the C++ model of Spack's per-system config
// scopes (Section 3.1.2). A scope bundles:
//   * packages.yaml — externals (Figure 4), buildability, version and
//     provider preferences, hard requirements
//   * compilers.yaml — compilers installed on the system
//   * the default target microarchitecture
//
// Benchpark keeps one scope per HPC system (`configs/<system>/`); scopes
// can be layered (site scope over system scope over defaults).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/spec/spec.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::concretizer {

/// One `externals:` entry from packages.yaml.
struct ExternalDef {
  spec::Spec spec;     // e.g. intel-oneapi-mkl@2022.1.0
  std::string prefix;  // installation prefix on the system
};

/// Per-package settings from packages.yaml.
struct PackageSettings {
  std::vector<ExternalDef> externals;
  bool buildable = true;
  /// Preferred concrete versions, best first (e.g. ["2.3.7"]).
  std::vector<std::string> preferred_versions;
  /// For virtual package names: providers to prefer, best first.
  std::vector<std::string> preferred_providers;
  /// Hard requirement merged into every occurrence of this package.
  std::optional<spec::Spec> require;
};

/// One compilers.yaml entry.
struct CompilerEntry {
  std::string name;        // gcc, clang, xl, ...
  spec::Version version;
  std::string cc;          // path to the C compiler (informational)
  std::string cxx;

  [[nodiscard]] spec::CompilerSpec as_spec() const {
    return {name, spec::VersionConstraint::exactly(version)};
  }
};

/// A full configuration scope.
class Config {
public:
  Config() = default;

  // -- building ---------------------------------------------------------
  PackageSettings& package(const std::string& name) {
    return packages_[name];
  }
  void add_compiler(CompilerEntry entry) {
    compilers_.push_back(std::move(entry));
  }
  void set_default_target(std::string target) {
    default_target_ = std::move(target);
  }
  void set_default_compiler(std::string name) {
    default_compiler_name_ = std::move(name);
  }

  /// Merge packages.yaml content (Figure 4 shape) into this scope.
  void load_packages_yaml(const yaml::Node& root);
  /// Merge compilers.yaml content into this scope.
  void load_compilers_yaml(const yaml::Node& root);

  /// Overlay `other` on top of this scope (other wins on conflicts).
  void merge_from(const Config& other);

  // -- queries ----------------------------------------------------------
  [[nodiscard]] const PackageSettings* settings_for(
      std::string_view package) const;
  [[nodiscard]] const std::vector<CompilerEntry>& compilers() const {
    return compilers_;
  }
  /// Best compiler matching the constraint (highest version), or null.
  [[nodiscard]] const CompilerEntry* find_compiler(
      const spec::CompilerSpec& constraint) const;
  /// The scope's default compiler; throws ConcretizationError when the
  /// scope has no compilers.
  [[nodiscard]] const CompilerEntry& default_compiler() const;
  [[nodiscard]] const std::string& default_target() const {
    return default_target_;
  }

  /// Emit this scope as packages.yaml / compilers.yaml trees.
  [[nodiscard]] yaml::Node packages_yaml() const;
  [[nodiscard]] yaml::Node compilers_yaml() const;

  /// Stable digest of everything that can influence concretization:
  /// the emitted packages.yaml / compilers.yaml trees plus the scope
  /// defaults. Part of the concretization cache key, so two Concretizers
  /// over equivalent scopes share entries and any scope edit misses.
  [[nodiscard]] std::uint64_t fingerprint() const;

private:
  std::map<std::string, PackageSettings> packages_;
  std::vector<CompilerEntry> compilers_;
  std::string default_target_;
  std::string default_compiler_name_;
};

}  // namespace benchpark::concretizer
