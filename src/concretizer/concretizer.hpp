// The concretizer: abstract specs in, concrete specs out (Section 3.1,
// component (2) of Spack).
//
// Concretization fills in every choice point the user left open:
//   * version      — highest version satisfying constraints, honoring
//                    packages.yaml preferences
//   * virtuals     — "mpi" resolves to a provider (mvapich2, spectrum-mpi,
//                    cray-mpich, ...) using provider preferences
//   * externals    — per-system pre-installed packages short-circuit the
//                    build (Figure 4)
//   * variants     — recipe defaults overlaid with user constraints
//   * compiler     — user's choice or scope default, pinned to an entry
//                    from compilers.yaml
//   * target       — user's choice or the scope's microarchitecture
//   * dependencies — recursive closure over the recipe's (conditional)
//                    dependency declarations
//
// Unification ("concretizer: unify: true" in Figure 3): within one
// Concretizer::Context, a package name resolves to exactly one concrete
// spec; conflicting requirements are an error, matching Spack.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/concretizer/config.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"

namespace benchpark::concretizer {

/// Statistics for introspection and benchmarking.
struct ConcretizeStats {
  std::size_t specs_resolved = 0;
  std::size_t externals_used = 0;
  std::size_t virtuals_resolved = 0;
};

class Concretizer {
public:
  Concretizer(pkg::RepoStack repos, Config config);

  /// A unification context: one concrete spec per package name. Reuse the
  /// same context across concretize() calls to get unify:true semantics.
  class Context {
  public:
    [[nodiscard]] const spec::Spec* find(std::string_view name) const;
    [[nodiscard]] std::size_t size() const { return resolved_.size(); }

  private:
    friend class Concretizer;
    std::map<std::string, spec::Spec, std::less<>> resolved_;
  };

  /// Concretize one abstract spec in a fresh context.
  [[nodiscard]] spec::Spec concretize(const spec::Spec& abstract) const;
  [[nodiscard]] spec::Spec concretize(const std::string& abstract_text) const;

  /// Concretize within a shared context (unify semantics).
  [[nodiscard]] spec::Spec concretize(const spec::Spec& abstract,
                                      Context& ctx) const;

  /// Concretize a list of roots with unify:true (shared context) or
  /// unify:false (independent contexts).
  [[nodiscard]] std::vector<spec::Spec> concretize_together(
      const std::vector<spec::Spec>& roots, bool unify = true) const;

  [[nodiscard]] const ConcretizeStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const pkg::RepoStack& repos() const { return repos_; }

private:
  spec::Spec resolve(const spec::Spec& abstract, Context& ctx,
                     std::vector<std::string>& stack) const;
  /// Rewrite a virtual constraint to a concrete provider constraint.
  spec::Spec resolve_virtual(const spec::Spec& virtual_spec,
                             Context& ctx) const;
  /// Try to satisfy `abstract` with a configured external.
  std::optional<spec::Spec> try_external(const spec::Spec& abstract) const;

  pkg::RepoStack repos_;
  Config config_;
  mutable ConcretizeStats stats_;
};

}  // namespace benchpark::concretizer
