// The concretizer: abstract specs in, concrete specs out (Section 3.1,
// component (2) of Spack).
//
// Concretization fills in every choice point the user left open:
//   * version      — highest version satisfying constraints, honoring
//                    packages.yaml preferences
//   * virtuals     — "mpi" resolves to a provider (mvapich2, spectrum-mpi,
//                    cray-mpich, ...) using provider preferences
//   * externals    — per-system pre-installed packages short-circuit the
//                    build (Figure 4)
//   * variants     — recipe defaults overlaid with user constraints
//   * compiler     — user's choice or scope default, pinned to an entry
//                    from compilers.yaml
//   * target       — user's choice or the scope's microarchitecture
//   * dependencies — recursive closure over the recipe's (conditional)
//                    dependency declarations
//
// Unification ("concretizer: unify: true" in Figure 3): within one
// Context, a package name resolves to exactly one concrete spec;
// conflicting requirements are a UnifyConflictError, matching Spack.
//
// The one public entry point is concretize_all(ConcretizeRequest):
// batched, optionally cached (process-wide ConcretizationCache), and
// parallel on the shared ThreadPool — unify:false roots are fully
// independent; unify:true roots are grouped into connected components of
// their static dependency closures (components cannot interact, so they
// run concurrently while each component resolves its roots in manifest
// order against one context). The component partition runs on interned
// package ids with per-request arena scratch, so partitioning a large
// manifest does not hash package names or touch the heap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/concretizer/config.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"
#include "src/support/arena.hpp"

namespace benchpark::concretizer {

/// Statistics for introspection and benchmarking. Snapshot by value via
/// Concretizer::stats(); the live counters are atomics so parallel
/// concretize_all reports exact totals.
struct ConcretizeStats {
  std::size_t specs_resolved = 0;
  std::size_t externals_used = 0;
  std::size_t virtuals_resolved = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// A unification context: one concrete spec per package name. Reuse the
/// same context across requests to extend unify:true semantics over
/// several calls. (Formerly Concretizer::Context; the alias remains.)
class Context {
public:
  [[nodiscard]] const spec::Spec* find(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return resolved_.size(); }

private:
  friend class Concretizer;
  std::map<std::string, spec::Spec, std::less<>> resolved_;
};

/// The unified request: every knob of a concretization batch in one
/// place. Aggregate-initializable: {.roots = ..., .unify = false}.
struct ConcretizeRequest {
  /// Abstract roots, in manifest order (result order matches).
  std::vector<spec::Spec> roots;
  /// unify:true — one spec per package name across all roots.
  bool unify = true;
  /// Optional shared context: pre-seeded resolutions constrain this
  /// request (unify only), and the closure of every resolved root is
  /// merged back in under a lock. Null for self-contained requests.
  Context* context = nullptr;
  /// Consult/populate the process-wide ConcretizationCache. Requests
  /// with a pre-seeded context are never cached (the entries would not
  /// be a pure function of the key).
  bool use_cache = true;
  /// Fan-out width: 0 = ThreadPool::default_threads(), 1 = serial.
  int threads = 0;
};

/// What a batch produced: concrete specs (index-aligned with
/// request.roots), a stats snapshot, and this call's cache traffic.
struct ConcretizeResult {
  std::vector<spec::Spec> specs;
  /// Snapshot of the concretizer's cumulative stats taken after the call.
  ConcretizeStats stats;
  /// Cache hits / misses attributable to this request alone.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

class Concretizer {
public:
  Concretizer(pkg::RepoStack repos, Config config);

  /// Legacy nested-name compatibility (Concretizer::Context).
  using Context = concretizer::Context;

  /// The unified entry point: resolve every root of the request, through
  /// the memo cache and the thread pool as requested. Throws the
  /// ConcretizationError taxonomy (UnsatisfiableVersionError,
  /// NoProviderError, UnifyConflictError, DependencyCycleError, ...).
  ConcretizeResult concretize_all(const ConcretizeRequest& request) const;

  /// By-value snapshot of the cumulative counters (thread-safe; the old
  /// const-reference accessor raced with concurrent concretize calls).
  [[nodiscard]] ConcretizeStats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const pkg::RepoStack& repos() const { return repos_; }

  /// The cache-key prefix binding entries to this concretizer's scope:
  /// "<config fingerprint>/<repo-stack fingerprint>" (hex). Exposed for
  /// tests and cache introspection.
  [[nodiscard]] const std::string& scope_fingerprint() const {
    return scope_fingerprint_;
  }

private:
  struct BatchCounters;  // per-request cache hit/miss tallies

  spec::Spec resolve(const spec::Spec& abstract, Context& ctx,
                     std::vector<std::string>& stack) const;
  /// Rewrite a virtual constraint to a concrete provider constraint.
  spec::Spec resolve_virtual(const spec::Spec& virtual_spec,
                             Context& ctx) const;
  /// Try to satisfy `abstract` with a configured external.
  std::optional<spec::Spec> try_external(const spec::Spec& abstract) const;

  /// Resolve one root in `ctx` through the "concretizer.resolve" fault
  /// site and (when `cache_key` is non-empty) the memo cache. When
  /// `merge_hits` is set, a cache hit's closure is merged into `ctx` so
  /// later roots in the same context unify against it; unify:false roots
  /// discard their context, so they skip the merge.
  spec::Spec resolve_root(const spec::Spec& root, Context& ctx,
                          const std::string& cache_key, bool merge_hits,
                          BatchCounters& batch) const;

  /// Package names statically reachable from `name` (over-approximate:
  /// all declared deps regardless of condition; a virtual reaches every
  /// provider), accumulated as interned ids into arena-backed scratch.
  /// Drives the unify:true component partition: membership is a linear
  /// integer scan (closures are small), no name hashing, no heap.
  void static_closure(std::string_view name,
                      support::ArenaVector<std::uint32_t>& visited) const;

  pkg::RepoStack repos_;
  Config config_;
  std::string scope_fingerprint_;

  struct AtomicStats {
    std::atomic<std::size_t> specs_resolved{0};
    std::atomic<std::size_t> externals_used{0};
    std::atomic<std::size_t> virtuals_resolved{0};
    std::atomic<std::size_t> cache_hits{0};
    std::atomic<std::size_t> cache_misses{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace benchpark::concretizer
