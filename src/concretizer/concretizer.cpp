#include "src/concretizer/concretizer.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::concretizer {

using spec::Spec;
using spec::VariantValue;
using spec::Version;
using spec::VersionConstraint;

Concretizer::Concretizer(pkg::RepoStack repos, Config config)
    : repos_(std::move(repos)), config_(std::move(config)) {}

const Spec* Concretizer::Context::find(std::string_view name) const {
  auto it = resolved_.find(name);
  return it == resolved_.end() ? nullptr : &it->second;
}

Spec Concretizer::concretize(const Spec& abstract) const {
  Context ctx;
  return concretize(abstract, ctx);
}

Spec Concretizer::concretize(const std::string& abstract_text) const {
  return concretize(Spec::parse(abstract_text));
}

Spec Concretizer::concretize(const Spec& abstract, Context& ctx) const {
  std::vector<std::string> stack;
  return resolve(abstract, ctx, stack);
}

std::vector<Spec> Concretizer::concretize_together(
    const std::vector<Spec>& roots, bool unify) const {
  std::vector<Spec> out;
  out.reserve(roots.size());
  Context shared;
  for (const auto& root : roots) {
    if (unify) {
      out.push_back(concretize(root, shared));
    } else {
      out.push_back(concretize(root));
    }
  }
  return out;
}

std::optional<Spec> Concretizer::try_external(const Spec& abstract) const {
  const auto* settings = config_.settings_for(abstract.name());
  if (!settings) return std::nullopt;
  for (const auto& ext : settings->externals) {
    if (!ext.spec.satisfies(abstract)) continue;
    Spec concrete = ext.spec;
    // Externals adopt the exact declared version; compiler/target are
    // nominal (the binary already exists).
    concrete.set_versions(
        VersionConstraint::exactly(ext.spec.concrete_version()));
    if (!concrete.compiler()) {
      const auto& comp = config_.default_compiler();
      concrete.set_compiler(
          {comp.name, VersionConstraint::exactly(comp.version)});
    }
    if (concrete.target().empty()) {
      concrete.set_target(config_.default_target().empty()
                              ? "x86_64"
                              : config_.default_target());
    }
    concrete.set_external_prefix(ext.prefix);
    concrete.mark_concrete();
    ++stats_.externals_used;
    return concrete;
  }
  return std::nullopt;
}

Spec Concretizer::resolve_virtual(const Spec& virtual_spec,
                                  Context& ctx) const {
  const std::string& vname = virtual_spec.name();
  ++stats_.virtuals_resolved;

  // A provider already chosen in this context wins (unify).
  auto providers = repos_.providers_of(vname);
  for (const auto* p : providers) {
    if (ctx.find(p->name())) {
      Spec rewritten = virtual_spec;
      rewritten.set_name(p->name());
      return rewritten;
    }
  }

  // Provider preferences for the virtual (packages.yaml `mpi: providers:`)
  // or an external declared under the virtual name.
  const auto* vsettings = config_.settings_for(vname);
  if (vsettings) {
    for (const auto& ext : vsettings->externals) {
      // Externals for virtuals name the provider in their spec.
      Spec rewritten = virtual_spec;
      rewritten.set_name(ext.spec.name());
      return rewritten;
    }
    for (const auto& preferred : vsettings->preferred_providers) {
      auto match = std::find_if(providers.begin(), providers.end(),
                                [&](const pkg::PackageRecipe* p) {
                                  return p->name() == preferred;
                                });
      if (match != providers.end()) {
        Spec rewritten = virtual_spec;
        rewritten.set_name((*match)->name());
        return rewritten;
      }
    }
  }

  // Otherwise the first buildable provider (alphabetical for determinism).
  std::vector<const pkg::PackageRecipe*> candidates;
  for (const auto* p : providers) {
    const auto* psettings = config_.settings_for(p->name());
    bool has_external = psettings && !psettings->externals.empty();
    bool buildable = !psettings || psettings->buildable;
    if (buildable || has_external) candidates.push_back(p);
  }
  if (candidates.empty()) {
    throw ConcretizationError("no usable provider for virtual '" + vname +
                              "'");
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const pkg::PackageRecipe* a, const pkg::PackageRecipe* b) {
              return a->name() < b->name();
            });
  // Prefer candidates with externals (they cost nothing to use).
  for (const auto* p : candidates) {
    const auto* psettings = config_.settings_for(p->name());
    if (psettings && !psettings->externals.empty()) {
      Spec rewritten = virtual_spec;
      rewritten.set_name(p->name());
      return rewritten;
    }
  }
  Spec rewritten = virtual_spec;
  rewritten.set_name(candidates.front()->name());
  return rewritten;
}

Spec Concretizer::resolve(const Spec& abstract, Context& ctx,
                          std::vector<std::string>& stack) const {
  Spec goal = abstract;

  // 1. Virtuals rewrite to a provider first.
  if (!goal.name().empty() && !repos_.has(goal.name()) &&
      repos_.is_virtual(goal.name())) {
    goal = resolve_virtual(goal, ctx);
  }
  if (goal.name().empty()) {
    throw ConcretizationError("cannot concretize anonymous spec '" +
                              abstract.str() + "'");
  }

  // 2. Hard requirements from packages.yaml.
  const auto* settings = config_.settings_for(goal.name());
  if (settings && settings->require) {
    Spec requirement = *settings->require;
    requirement.set_name(goal.name());
    goal.constrain(requirement);
  }

  // 3. Unification: an already-resolved package must satisfy the new
  //    constraints.
  if (const Spec* existing = ctx.find(goal.name())) {
    if (!existing->satisfies(goal)) {
      throw ConcretizationError(
          "unify conflict for '" + goal.name() + "': existing '" +
          existing->str() + "' does not satisfy '" + goal.str() + "'");
    }
    return *existing;
  }

  // 4. Cycle guard.
  if (std::find(stack.begin(), stack.end(), goal.name()) != stack.end()) {
    throw ConcretizationError("dependency cycle through '" + goal.name() +
                              "'");
  }
  stack.push_back(goal.name());
  struct PopGuard {
    std::vector<std::string>& s;
    ~PopGuard() { s.pop_back(); }
  } guard{stack};

  // 5. Externals short-circuit the whole subtree.
  if (auto external = try_external(goal)) {
    ctx.resolved_.insert_or_assign(goal.name(), *external);
    ++stats_.specs_resolved;
    return *external;
  }

  const pkg::PackageRecipe& recipe = repos_.get(goal.name());
  if (settings && !settings->buildable) {
    throw ConcretizationError("package '" + goal.name() +
                              "' is not buildable on this system and no "
                              "external satisfies '" +
                              goal.str() + "'");
  }

  Spec concrete(goal.name());

  // 6. Version: preferences first, then highest satisfying.
  VersionConstraint version_goal = goal.versions();
  std::optional<Version> chosen_version;
  if (settings) {
    for (const auto& pref : settings->preferred_versions) {
      auto pref_constraint = VersionConstraint::parse(pref);
      if (!version_goal.intersects(pref_constraint)) continue;
      auto merged = version_goal;
      merged.constrain(pref_constraint);
      if (auto v = recipe.best_version(merged)) {
        chosen_version = v;
        break;
      }
    }
  }
  if (!chosen_version) chosen_version = recipe.best_version(version_goal);
  if (!chosen_version) {
    throw ConcretizationError("no known version of '" + goal.name() +
                              "' satisfies '@" + version_goal.str() + "'");
  }
  concrete.set_versions(VersionConstraint::exactly(*chosen_version));

  // 7. Variants: recipe defaults overlaid with requested values.
  for (const auto& vdef : recipe.variants()) {
    concrete.set_variant(vdef.name, vdef.default_value);
  }
  for (const auto& [vname, vvalue] : goal.variants()) {
    const auto* vdef = recipe.find_variant(vname);
    if (!vdef) {
      throw ConcretizationError("package '" + goal.name() +
                                "' has no variant '" + vname + "'");
    }
    if (!vdef->allowed_values.empty() &&
        vvalue.kind() != VariantValue::Kind::boolean) {
      for (const auto& v : vvalue.as_multi()) {
        if (std::find(vdef->allowed_values.begin(), vdef->allowed_values.end(),
                      v) == vdef->allowed_values.end()) {
          throw ConcretizationError("value '" + v + "' not allowed for " +
                                    goal.name() + " variant '" + vname + "'");
        }
      }
    }
    concrete.set_variant(vname, vvalue);
  }

  // 8. Compiler.
  spec::CompilerSpec compiler_goal =
      goal.compiler() ? *goal.compiler() : spec::CompilerSpec{};
  const CompilerEntry* compiler = nullptr;
  if (compiler_goal.name.empty()) {
    compiler = &config_.default_compiler();
  } else {
    compiler = config_.find_compiler(compiler_goal);
    if (!compiler) {
      throw ConcretizationError("no compiler matching '%" +
                                compiler_goal.str() + "' in compilers.yaml");
    }
  }
  concrete.set_compiler(
      {compiler->name, VersionConstraint::exactly(compiler->version)});

  // 9. Target.
  if (!goal.target().empty()) {
    concrete.set_target(goal.target());
  } else if (!config_.default_target().empty()) {
    concrete.set_target(config_.default_target());
  } else {
    concrete.set_target("x86_64");
  }

  // 10. Conflicts check on the resolved (pre-deps) spec.
  recipe.check_conflicts(concrete);

  // 11. Dependencies: recipe declarations merged with the user's ^deps.
  //     User ^deps naming packages the recipe does not pull in become
  //     extra constraints only (Spack would error; we match that).
  // Coalesce multiple declarations of the same dependency (e.g. a plain
  // depends_on("hypre") plus a conditional depends_on("hypre+cuda",
  // when="+cuda")) into one merged constraint before resolving.
  std::vector<Spec> dep_goals;
  for (const auto* ddef : recipe.active_dependencies(concrete)) {
    auto existing = std::find_if(
        dep_goals.begin(), dep_goals.end(),
        [&](const Spec& s) { return s.name() == ddef->dep.name(); });
    if (existing != dep_goals.end()) {
      existing->constrain(ddef->dep);
    } else {
      dep_goals.push_back(ddef->dep);
    }
  }

  std::vector<std::string> resolved_dep_names;
  for (Spec& dep_goal : dep_goals) {
    std::string dep_name = dep_goal.name();
    const std::string declared_name = dep_name;
    // If the declared dependency is a virtual and the user named a concrete
    // provider of it (^mvapich2 for a "mpi" dependency), the user's choice
    // selects the provider.
    if (repos_.is_virtual(dep_name)) {
      for (const auto& user_dep : goal.dependencies()) {
        const auto* user_recipe = repos_.find(user_dep.name());
        if (!user_recipe) continue;
        const auto& virtuals = user_recipe->provided_virtuals();
        if (std::find(virtuals.begin(), virtuals.end(), dep_name) !=
            virtuals.end()) {
          dep_goal.set_name(user_dep.name());
          dep_name = user_dep.name();
          break;
        }
      }
    }
    // Merge user constraints targeting this dependency (by package name or
    // by the virtual name it came from).
    for (const auto& user_dep : goal.dependencies()) {
      if (user_dep.name() == dep_name) {
        dep_goal.constrain(user_dep);
      } else if (user_dep.name() == declared_name) {
        // Constraint written against the virtual name ("^mpi@3:") applies
        // to whichever provider was chosen.
        Spec renamed = user_dep;
        renamed.set_name(dep_name);
        dep_goal.constrain(renamed);
      }
    }
    // Dependencies inherit compiler and target unless they pin their own.
    if (!dep_goal.compiler()) {
      dep_goal.set_compiler(*concrete.compiler());
    }
    if (dep_goal.target().empty()) dep_goal.set_target(concrete.target());

    Spec dep_concrete = resolve(dep_goal, ctx, stack);
    // Avoid duplicate dependency edges (two decls resolving to one pkg).
    if (std::find(resolved_dep_names.begin(), resolved_dep_names.end(),
                  dep_concrete.name()) == resolved_dep_names.end()) {
      resolved_dep_names.push_back(dep_concrete.name());
      concrete.add_dependency(dep_concrete);
    }
    // User constraints on the virtual name also apply to the provider.
    for (const auto& user_dep : goal.dependencies()) {
      if (user_dep.name() != dep_name &&
          user_dep.name() == dep_concrete.name() &&
          !dep_concrete.satisfies(user_dep)) {
        throw ConcretizationError("dependency '" + dep_concrete.str() +
                                  "' does not satisfy requested '" +
                                  user_dep.str() + "'");
      }
    }
  }
  // User-supplied ^deps that no recipe declaration consumed.
  for (const auto& user_dep : goal.dependencies()) {
    std::string resolved_name = user_dep.name();
    if (repos_.is_virtual(resolved_name)) {
      // Find which provider it became, if any.
      continue;  // virtual constraints were merged above
    }
    bool used =
        std::find(resolved_dep_names.begin(), resolved_dep_names.end(),
                  resolved_name) != resolved_dep_names.end();
    if (!used) {
      throw ConcretizationError("'" + goal.name() + "' does not depend on '" +
                                user_dep.name() + "'");
    }
  }

  concrete.mark_concrete();
  ctx.resolved_.insert_or_assign(concrete.name(), concrete);
  ++stats_.specs_resolved;
  return concrete;
}

}  // namespace benchpark::concretizer
