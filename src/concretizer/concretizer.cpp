#include "src/concretizer/concretizer.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>

#include "src/concretizer/concretize_cache.hpp"
#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/hash.hpp"
#include "src/support/intern.hpp"
#include "src/support/parallel.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::concretizer {

using spec::Spec;
using spec::VariantValue;
using spec::Version;
using spec::VersionConstraint;

namespace {

/// Insert the full closure of a concrete spec into a context (first
/// entry wins — closures merged from cached roots are identical to what
/// a fresh resolution would have inserted, so collisions are benign).
void merge_closure(const Spec& s,
                   std::map<std::string, Spec, std::less<>>& resolved) {
  resolved.emplace(s.name(), s);
  for (const auto& d : s.dependencies()) merge_closure(d, resolved);
}

}  // namespace

Concretizer::Concretizer(pkg::RepoStack repos, Config config)
    : repos_(std::move(repos)), config_(std::move(config)) {
  support::Hasher cfg;
  cfg.update(config_.fingerprint());
  support::Hasher rep;
  rep.update(repos_.fingerprint());
  scope_fingerprint_ = cfg.hex() + "/" + rep.hex();
}

const Spec* Context::find(std::string_view name) const {
  auto it = resolved_.find(name);
  return it == resolved_.end() ? nullptr : &it->second;
}

ConcretizeStats Concretizer::stats() const {
  ConcretizeStats out;
  out.specs_resolved = stats_.specs_resolved.load(std::memory_order_relaxed);
  out.externals_used = stats_.externals_used.load(std::memory_order_relaxed);
  out.virtuals_resolved =
      stats_.virtuals_resolved.load(std::memory_order_relaxed);
  out.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
  return out;
}

// ------------------------------------------------------- batched entry

struct Concretizer::BatchCounters {
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
};

spec::Spec Concretizer::resolve_root(const Spec& root, Context& ctx,
                                     const std::string& cache_key,
                                     bool merge_hits,
                                     BatchCounters& batch) const {
  auto& collector = obs::TraceCollector::global();
  auto& cache = ConcretizationCache::global();
  constexpr int kMaxAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      // Chaos hook: a transient fault here models a poisoned cache line /
      // flaky resolver — the entry is invalidated and resolution retried;
      // a permanent fault propagates to the caller.
      double latency = support::fault_hit(
          "concretizer.resolve",
          cache_key.empty() ? root.name() : cache_key,
          static_cast<std::uint64_t>(attempt));
      if (latency > 0) {
        collector.emit_span("concretizer.fault_latency", "concretizer",
                            latency, {{"root", root.name()}});
      }

      obs::ScopedSpan span(collector, "resolve:" + root.name(),
                           "concretizer");
      if (!cache_key.empty()) {
        if (auto cached = cache.lookup(cache_key)) {
          batch.hits.fetch_add(1, std::memory_order_relaxed);
          if (span.active()) span.annotate("cache", "hit");
          if (merge_hits) merge_closure(*cached, ctx.resolved_);
          return *cached;
        }
        batch.misses.fetch_add(1, std::memory_order_relaxed);
        if (span.active()) span.annotate("cache", "miss");
      }
      std::vector<std::string> stack;
      Spec concrete = resolve(root, ctx, stack);
      if (!cache_key.empty()) cache.insert(cache_key, concrete);
      return concrete;
    } catch (const TransientError&) {
      if (attempt >= kMaxAttempts) throw;
      if (!cache_key.empty()) cache.invalidate(cache_key);
    }
  }
}

void Concretizer::static_closure(
    std::string_view name,
    support::ArenaVector<std::uint32_t>& visited) const {
  const std::uint32_t id = support::intern(name);
  if (visited.contains(id)) return;
  visited.push_back(id);
  if (const auto* recipe = repos_.find(name)) {
    for (const auto& d : recipe->dependencies()) {
      static_closure(d.dep.name(), visited);
    }
    return;
  }
  if (repos_.is_virtual(name)) {
    // Any provider could be chosen, so a virtual reaches all of them —
    // plus whatever packages.yaml might steer the choice toward.
    for (const auto* p : repos_.providers_of(name)) {
      static_closure(p->name(), visited);
    }
    if (const auto* vsettings = config_.settings_for(name)) {
      for (const auto& ext : vsettings->externals) {
        static_closure(ext.spec.name(), visited);
      }
      for (const auto& preferred : vsettings->preferred_providers) {
        static_closure(preferred, visited);
      }
    }
  }
  // Unknown names stay as themselves; resolution will surface the error.
}

ConcretizeResult Concretizer::concretize_all(
    const ConcretizeRequest& request) const {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "concretize_all", "concretizer");
  if (span.active()) {
    span.annotate("roots", std::to_string(request.roots.size()));
    span.annotate("unify", request.unify ? "true" : "false");
  }

  const std::size_t n = request.roots.size();
  ConcretizeResult result;
  result.specs.resize(n);
  BatchCounters batch;

  // A pre-seeded context makes results depend on state outside the cache
  // key, so such requests are never cached.
  const bool seeded = request.context && request.context->size() > 0;
  const bool cacheable = request.use_cache && !seeded;
  const int threads = request.threads > 0
                          ? request.threads
                          : support::ThreadPool::default_threads();

  if (n == 0) {
    result.stats = stats();
    return result;
  }

  if (!request.unify) {
    // unify:false — every root resolves in its own context; roots are
    // fully independent, so they fan straight out across the pool.
    std::mutex ctx_mu;
    support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        Context ctx;
        if (request.context) {
          std::lock_guard<std::mutex> lock(ctx_mu);
          ctx = *request.context;
        }
        std::string key;
        if (cacheable) {
          key = scope_fingerprint_ + "|u0|" +
                canonical_spec_hash(request.roots[i]);
        }
        result.specs[i] = resolve_root(request.roots[i], ctx, key,
                                       /*merge_hits=*/false, batch);
        if (request.context) {
          std::lock_guard<std::mutex> lock(ctx_mu);
          merge_closure(result.specs[i], request.context->resolved_);
        }
      }
    });
  } else {
    // unify:true — partition roots into connected components of their
    // static dependency closures (two roots that could ever resolve the
    // same package name land in one component, virtuals reaching every
    // provider). Components cannot interact, so they run concurrently;
    // within a component, roots resolve in manifest order against one
    // context, preserving exact sequential unify semantics. Each
    // component merges its closure into the shared request context under
    // a lock.
    std::vector<std::size_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    auto unite = [&](std::size_t a, std::size_t b) {
      parent[find(a)] = find(b);
    };
    {
      // Per-request arena scratch: closures are interned-id vectors, the
      // id -> first-owning-root table is a flat list scanned linearly —
      // package universes are small, so integer scans beat hashing names.
      support::Arena arena;
      support::ArenaVector<std::uint32_t> closure(arena);
      struct Owner {
        std::uint32_t id;
        std::size_t root;
      };
      support::ArenaVector<Owner> owner(arena);
      for (std::size_t i = 0; i < n; ++i) {
        closure.clear();  // keeps the arena slice; no per-root allocation
        static_closure(request.roots[i].name(), closure);
        for (const auto& dep : request.roots[i].dependencies()) {
          static_closure(dep.name(), closure);
        }
        for (const std::uint32_t id : closure) {
          bool seen = false;
          for (const Owner& o : owner) {
            if (o.id == id) {
              unite(i, o.root);
              seen = true;
              break;
            }
          }
          if (!seen) owner.push_back({id, i});
        }
      }
    }
    // Components in first-member order; members keep manifest order.
    std::vector<std::vector<std::size_t>> components;
    {
      std::map<std::size_t, std::size_t> component_of;  // repr -> index
      for (std::size_t i = 0; i < n; ++i) {
        auto [it, inserted] =
            component_of.emplace(find(i), components.size());
        if (inserted) components.emplace_back();
        components[it->second].push_back(i);
      }
    }

    std::mutex ctx_mu;
    support::parallel_for(
        components.size(), threads, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t c = lo; c < hi; ++c) {
            const auto& members = components[c];
            Context ctx;
            if (request.context) {
              std::lock_guard<std::mutex> lock(ctx_mu);
              ctx = *request.context;
            }
            // The component key binds each member's entry to the ordered
            // root list it unified with: the same roots in the same order
            // hit; any change to the component misses.
            std::string component_hash;
            if (cacheable) {
              support::Hasher h;
              for (std::size_t i : members) {
                h.update(canonical_spec_text(request.roots[i]));
              }
              component_hash = h.base32();
            }
            for (std::size_t pos = 0; pos < members.size(); ++pos) {
              const std::size_t i = members[pos];
              std::string key;
              if (cacheable) {
                key = scope_fingerprint_ + "|u1|" + component_hash + "#" +
                      std::to_string(pos);
              }
              result.specs[i] = resolve_root(request.roots[i], ctx, key,
                                             /*merge_hits=*/true, batch);
            }
            if (request.context) {
              std::lock_guard<std::mutex> lock(ctx_mu);
              for (std::size_t i : members) {
                merge_closure(result.specs[i], request.context->resolved_);
              }
            }
          }
        });
  }

  const std::size_t hits = batch.hits.load(std::memory_order_relaxed);
  const std::size_t misses = batch.misses.load(std::memory_order_relaxed);
  stats_.cache_hits.fetch_add(hits, std::memory_order_relaxed);
  stats_.cache_misses.fetch_add(misses, std::memory_order_relaxed);
  result.cache_hits = hits;
  result.cache_misses = misses;
  result.stats = stats();
  if (span.active()) {
    span.annotate("cache_hits", std::to_string(hits));
    span.annotate("cache_misses", std::to_string(misses));
  }
  return result;
}

// ----------------------------------------------------------- resolution

std::optional<Spec> Concretizer::try_external(const Spec& abstract) const {
  const auto* settings = config_.settings_for(abstract.name());
  if (!settings) return std::nullopt;
  for (const auto& ext : settings->externals) {
    if (!ext.spec.satisfies(abstract)) continue;
    Spec concrete = ext.spec;
    // Externals adopt the exact declared version; compiler/target are
    // nominal (the binary already exists).
    concrete.set_versions(
        VersionConstraint::exactly(ext.spec.concrete_version()));
    if (!concrete.compiler()) {
      const auto& comp = config_.default_compiler();
      concrete.set_compiler(
          {comp.name, VersionConstraint::exactly(comp.version)});
    }
    if (concrete.target().empty()) {
      concrete.set_target(config_.default_target().empty()
                              ? "x86_64"
                              : config_.default_target());
    }
    concrete.set_external_prefix(ext.prefix);
    concrete.mark_concrete();
    stats_.externals_used.fetch_add(1, std::memory_order_relaxed);
    return concrete;
  }
  return std::nullopt;
}

Spec Concretizer::resolve_virtual(const Spec& virtual_spec,
                                  Context& ctx) const {
  const std::string& vname = virtual_spec.name();
  stats_.virtuals_resolved.fetch_add(1, std::memory_order_relaxed);

  // A provider already chosen in this context wins (unify).
  auto providers = repos_.providers_of(vname);
  for (const auto* p : providers) {
    if (ctx.find(p->name())) {
      Spec rewritten = virtual_spec;
      rewritten.set_name(p->name());
      return rewritten;
    }
  }

  // Provider preferences for the virtual (packages.yaml `mpi: providers:`)
  // or an external declared under the virtual name.
  const auto* vsettings = config_.settings_for(vname);
  if (vsettings) {
    for (const auto& ext : vsettings->externals) {
      // Externals for virtuals name the provider in their spec.
      Spec rewritten = virtual_spec;
      rewritten.set_name(ext.spec.name());
      return rewritten;
    }
    for (const auto& preferred : vsettings->preferred_providers) {
      auto match = std::find_if(providers.begin(), providers.end(),
                                [&](const pkg::PackageRecipe* p) {
                                  return p->name() == preferred;
                                });
      if (match != providers.end()) {
        Spec rewritten = virtual_spec;
        rewritten.set_name((*match)->name());
        return rewritten;
      }
    }
  }

  // Otherwise the first buildable provider (alphabetical for determinism).
  std::vector<const pkg::PackageRecipe*> candidates;
  for (const auto* p : providers) {
    const auto* psettings = config_.settings_for(p->name());
    bool has_external = psettings && !psettings->externals.empty();
    bool buildable = !psettings || psettings->buildable;
    if (buildable || has_external) candidates.push_back(p);
  }
  if (candidates.empty()) {
    std::string considered;
    for (const auto* p : providers) {
      if (!considered.empty()) considered += ", ";
      considered += p->name();
    }
    throw NoProviderError(
        "no usable provider for virtual '" + vname + "'" +
        (considered.empty()
             ? " (no package provides it)"
             : " (providers " + considered +
                   " are all unbuildable with no external)"));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const pkg::PackageRecipe* a, const pkg::PackageRecipe* b) {
              return a->name() < b->name();
            });
  // Prefer candidates with externals (they cost nothing to use).
  for (const auto* p : candidates) {
    const auto* psettings = config_.settings_for(p->name());
    if (psettings && !psettings->externals.empty()) {
      Spec rewritten = virtual_spec;
      rewritten.set_name(p->name());
      return rewritten;
    }
  }
  Spec rewritten = virtual_spec;
  rewritten.set_name(candidates.front()->name());
  return rewritten;
}

Spec Concretizer::resolve(const Spec& abstract, Context& ctx,
                          std::vector<std::string>& stack) const {
  Spec goal = abstract;

  // 1. Virtuals rewrite to a provider first.
  if (!goal.name().empty() && !repos_.has(goal.name()) &&
      repos_.is_virtual(goal.name())) {
    goal = resolve_virtual(goal, ctx);
  }
  if (goal.name().empty()) {
    throw ConcretizationError("cannot concretize anonymous spec '" +
                              abstract.str() + "'");
  }

  // 2. Hard requirements from packages.yaml.
  const auto* settings = config_.settings_for(goal.name());
  if (settings && settings->require) {
    Spec requirement = *settings->require;
    requirement.set_name(goal.name());
    goal.constrain(requirement);
  }

  // 3. Unification: an already-resolved package must satisfy the new
  //    constraints.
  if (const Spec* existing = ctx.find(goal.name())) {
    if (!existing->satisfies(goal)) {
      throw UnifyConflictError(
          "unify conflict for '" + goal.name() + "': existing '" +
          existing->str() + "' does not satisfy '" + goal.str() + "'");
    }
    return *existing;
  }

  // 4. Cycle guard.
  if (std::find(stack.begin(), stack.end(), goal.name()) != stack.end()) {
    std::string chain;
    for (const auto& name : stack) chain += name + " -> ";
    throw DependencyCycleError("dependency cycle: " + chain + goal.name());
  }
  stack.push_back(goal.name());
  struct PopGuard {
    std::vector<std::string>& s;
    ~PopGuard() { s.pop_back(); }
  } guard{stack};

  // 5. Externals short-circuit the whole subtree.
  if (auto external = try_external(goal)) {
    ctx.resolved_.insert_or_assign(goal.name(), *external);
    stats_.specs_resolved.fetch_add(1, std::memory_order_relaxed);
    return *external;
  }

  const pkg::PackageRecipe& recipe = repos_.get(goal.name());
  if (settings && !settings->buildable) {
    throw ConcretizationError("package '" + goal.name() +
                              "' is not buildable on this system and no "
                              "external satisfies '" +
                              goal.str() + "'");
  }

  Spec concrete(goal.name());

  // 6. Version: preferences first, then highest satisfying.
  VersionConstraint version_goal = goal.versions();
  std::optional<Version> chosen_version;
  if (settings) {
    for (const auto& pref : settings->preferred_versions) {
      auto pref_constraint = VersionConstraint::parse(pref);
      if (!version_goal.intersects(pref_constraint)) continue;
      auto merged = version_goal;
      merged.constrain(pref_constraint);
      if (auto v = recipe.best_version(merged)) {
        chosen_version = v;
        break;
      }
    }
  }
  if (!chosen_version) chosen_version = recipe.best_version(version_goal);
  if (!chosen_version) {
    std::string known;
    for (const auto& v : recipe.versions()) {
      if (!known.empty()) known += ", ";
      known += v.version.str();
    }
    throw UnsatisfiableVersionError(
        "no known version of '" + goal.name() + "' satisfies '@" +
        version_goal.str() + "' (known versions: " + known + ")");
  }
  concrete.set_versions(VersionConstraint::exactly(*chosen_version));

  // 7. Variants: recipe defaults overlaid with requested values.
  for (const auto& vdef : recipe.variants()) {
    concrete.set_variant(vdef.name, vdef.default_value);
  }
  for (const auto& [vname, vvalue] : goal.variants()) {
    const auto* vdef = recipe.find_variant(vname);
    if (!vdef) {
      throw ConcretizationError("package '" + goal.name() +
                                "' has no variant '" + vname + "'");
    }
    if (!vdef->allowed_values.empty() &&
        vvalue.kind() != VariantValue::Kind::boolean) {
      for (const auto& v : vvalue.as_multi()) {
        if (std::find(vdef->allowed_values.begin(), vdef->allowed_values.end(),
                      v) == vdef->allowed_values.end()) {
          throw ConcretizationError("value '" + v + "' not allowed for " +
                                    goal.name() + " variant '" + vname + "'");
        }
      }
    }
    concrete.set_variant(vname, vvalue);
  }

  // 8. Compiler.
  spec::CompilerSpec compiler_goal =
      goal.compiler() ? *goal.compiler() : spec::CompilerSpec{};
  const CompilerEntry* compiler = nullptr;
  if (compiler_goal.name.empty()) {
    compiler = &config_.default_compiler();
  } else {
    compiler = config_.find_compiler(compiler_goal);
    if (!compiler) {
      throw ConcretizationError("no compiler matching '%" +
                                compiler_goal.str() + "' in compilers.yaml");
    }
  }
  concrete.set_compiler(
      {compiler->name, VersionConstraint::exactly(compiler->version)});

  // 9. Target.
  if (!goal.target().empty()) {
    concrete.set_target(goal.target());
  } else if (!config_.default_target().empty()) {
    concrete.set_target(config_.default_target());
  } else {
    concrete.set_target("x86_64");
  }

  // 10. Conflicts check on the resolved (pre-deps) spec.
  recipe.check_conflicts(concrete);

  // 11. Dependencies: recipe declarations merged with the user's ^deps.
  //     User ^deps naming packages the recipe does not pull in become
  //     extra constraints only (Spack would error; we match that).
  // Coalesce multiple declarations of the same dependency (e.g. a plain
  // depends_on("hypre") plus a conditional depends_on("hypre+cuda",
  // when="+cuda")) into one merged constraint before resolving.
  std::vector<Spec> dep_goals;
  for (const auto* ddef : recipe.active_dependencies(concrete)) {
    auto existing = std::find_if(
        dep_goals.begin(), dep_goals.end(),
        [&](const Spec& s) { return s.name() == ddef->dep.name(); });
    if (existing != dep_goals.end()) {
      existing->constrain(ddef->dep);
    } else {
      dep_goals.push_back(ddef->dep);
    }
  }

  std::vector<std::string> resolved_dep_names;
  for (Spec& dep_goal : dep_goals) {
    std::string dep_name = dep_goal.name();
    const std::string declared_name = dep_name;
    // If the declared dependency is a virtual and the user named a concrete
    // provider of it (^mvapich2 for a "mpi" dependency), the user's choice
    // selects the provider.
    if (repos_.is_virtual(dep_name)) {
      for (const auto& user_dep : goal.dependencies()) {
        const auto* user_recipe = repos_.find(user_dep.name());
        if (!user_recipe) continue;
        const auto& virtuals = user_recipe->provided_virtuals();
        if (std::find(virtuals.begin(), virtuals.end(), dep_name) !=
            virtuals.end()) {
          dep_goal.set_name(user_dep.name());
          dep_name = user_dep.name();
          break;
        }
      }
    }
    // Merge user constraints targeting this dependency (by package name or
    // by the virtual name it came from).
    for (const auto& user_dep : goal.dependencies()) {
      if (user_dep.name() == dep_name) {
        dep_goal.constrain(user_dep);
      } else if (user_dep.name() == declared_name) {
        // Constraint written against the virtual name ("^mpi@3:") applies
        // to whichever provider was chosen.
        Spec renamed = user_dep;
        renamed.set_name(dep_name);
        dep_goal.constrain(renamed);
      }
    }
    // Dependencies inherit compiler and target unless they pin their own.
    if (!dep_goal.compiler()) {
      dep_goal.set_compiler(*concrete.compiler());
    }
    if (dep_goal.target().empty()) dep_goal.set_target(concrete.target());

    Spec dep_concrete = resolve(dep_goal, ctx, stack);
    // Avoid duplicate dependency edges (two decls resolving to one pkg).
    if (std::find(resolved_dep_names.begin(), resolved_dep_names.end(),
                  dep_concrete.name()) == resolved_dep_names.end()) {
      resolved_dep_names.push_back(dep_concrete.name());
      concrete.add_dependency(dep_concrete);
    }
    // User constraints on the virtual name also apply to the provider.
    for (const auto& user_dep : goal.dependencies()) {
      if (user_dep.name() != dep_name &&
          user_dep.name() == dep_concrete.name() &&
          !dep_concrete.satisfies(user_dep)) {
        throw ConcretizationError("dependency '" + dep_concrete.str() +
                                  "' does not satisfy requested '" +
                                  user_dep.str() + "'");
      }
    }
  }
  // User-supplied ^deps that no recipe declaration consumed.
  for (const auto& user_dep : goal.dependencies()) {
    std::string resolved_name = user_dep.name();
    if (repos_.is_virtual(resolved_name)) {
      // Find which provider it became, if any.
      continue;  // virtual constraints were merged above
    }
    bool used =
        std::find(resolved_dep_names.begin(), resolved_dep_names.end(),
                  resolved_name) != resolved_dep_names.end();
    if (!used) {
      throw ConcretizationError("'" + goal.name() + "' does not depend on '" +
                                user_dep.name() + "'");
    }
  }

  concrete.mark_concrete();
  ctx.resolved_.insert_or_assign(concrete.name(), concrete);
  stats_.specs_resolved.fetch_add(1, std::memory_order_relaxed);
  return concrete;
}

}  // namespace benchpark::concretizer
