// The Spec type: Spack's "common language" for describing builds.
//
// Grammar (abstract specs, Section 3.1 of the paper):
//
//   spec      := name [@versions] [sigils...] [%compiler] [^dep ...]
//   sigils    := '+'variant | '~'variant | '-'variant
//              | variant'='value | 'target='arch | 'arch='arch
//   compiler  := name [@versions]
//   dep       := spec   (dependency constraint, no nested ^)
//
// e.g.  "amg2023@1.0 +caliper %gcc@12.1.1 ^mvapich2@2.3.7 target=zen3"
//
// An abstract spec leaves choice points open; the concretizer fills every
// one in and marks the result concrete. Concrete specs have exactly one
// version, a value for every variant, a compiler, a target, and fully
// concrete dependencies, and get a stable DAG hash.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/spec/variant.hpp"
#include "src/spec/version.hpp"
#include "src/support/intern.hpp"

namespace benchpark::spec {

/// Compiler selection: name plus version constraint.
struct CompilerSpec {
  std::string name;
  VersionConstraint versions;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool satisfies(const CompilerSpec& constraint) const;
  bool operator==(const CompilerSpec& other) const = default;
};

class Spec {
public:
  Spec() = default;
  explicit Spec(std::string name)
      : name_(std::move(name)), name_id_(support::intern(name_)) {}

  /// Parse a spec string; throws SpecError on bad syntax.
  static Spec parse(std::string_view text);

  // -- identity ----------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    name_id_ = support::intern(name_);
    dag_hash_.clear();
  }
  /// Process-wide interned id of name() (0 for anonymous specs). Two
  /// specs share a name iff they share an id — closure sets and visited
  /// maps compare/hash this integer instead of the bytes.
  [[nodiscard]] std::uint32_t name_id() const { return name_id_; }

  // -- versions ------------------------------------------------------------
  [[nodiscard]] const VersionConstraint& versions() const { return versions_; }
  void set_versions(VersionConstraint vc) {
    versions_ = std::move(vc);
    dag_hash_.clear();
  }
  /// Concrete version; throws if the spec does not pin exactly one.
  [[nodiscard]] Version concrete_version() const;

  // -- variants ------------------------------------------------------------
  [[nodiscard]] const std::map<std::string, VariantValue>& variants() const {
    return variants_;
  }
  void set_variant(const std::string& name, VariantValue value);
  [[nodiscard]] const VariantValue* variant(std::string_view name) const;
  /// Convenience: true iff boolean variant present and enabled.
  [[nodiscard]] bool variant_enabled(std::string_view name) const;

  // -- compiler / target ----------------------------------------------------
  [[nodiscard]] const std::optional<CompilerSpec>& compiler() const {
    return compiler_;
  }
  void set_compiler(CompilerSpec c) {
    compiler_ = std::move(c);
    dag_hash_.clear();
  }
  [[nodiscard]] const std::string& target() const { return target_; }
  void set_target(std::string target) {
    target_ = std::move(target);
    dag_hash_.clear();
  }

  // -- dependencies ----------------------------------------------------------
  [[nodiscard]] const std::vector<Spec>& dependencies() const {
    return dependencies_;
  }
  std::vector<Spec>& dependencies_mut() {
    dag_hash_.clear();  // caller may mutate the DAG under the hash
    return dependencies_;
  }
  void add_dependency(Spec dep);
  [[nodiscard]] const Spec* dependency(std::string_view name) const;
  Spec* dependency_mut(std::string_view name);

  // -- external --------------------------------------------------------------
  /// Externals (Figure 4) resolve to a pre-installed prefix, not a build.
  [[nodiscard]] const std::string& external_prefix() const {
    return external_prefix_;
  }
  void set_external_prefix(std::string prefix) {
    external_prefix_ = std::move(prefix);
    dag_hash_.clear();
  }
  [[nodiscard]] bool is_external() const { return !external_prefix_.empty(); }

  // -- concreteness ------------------------------------------------------------
  [[nodiscard]] bool concrete() const { return concrete_; }
  /// Validates and marks concrete (requires pinned version, compiler,
  /// target, and concrete deps).
  void mark_concrete();

  /// Stable DAG hash (concrete specs only), Spack-style base32. Computed
  /// once (eagerly at mark_concrete(), recomputed only after a mutating
  /// setter cleared the memo) — repeated calls on an unchanged concrete
  /// spec return the memoized 13-char string, which fits SSO, so the hot
  /// cache-lookup paths pay zero hashing and zero heap allocation.
  [[nodiscard]] std::string dag_hash() const;

  // -- constraint algebra ----------------------------------------------------
  /// Does this spec satisfy all constraints expressed by `constraint`?
  /// Anonymous constraints (empty name) match any name.
  [[nodiscard]] bool satisfies(const Spec& constraint) const;

  /// Merge `other`'s constraints into this spec; throws SpecError on
  /// conflict (mismatched names, disjoint versions, clashing variants).
  void constrain(const Spec& other);

  // -- printing --------------------------------------------------------------
  /// Canonical round-trippable rendering.
  [[nodiscard]] std::string str() const;
  /// Short form: name@version only (for logs and tables).
  [[nodiscard]] std::string short_str() const;

  bool operator==(const Spec& other) const;

private:
  [[nodiscard]] std::string str_no_deps() const;
  [[nodiscard]] std::string compute_dag_hash() const;

  std::string name_;
  std::uint32_t name_id_ = 0;  // interned name (0 = anonymous)
  VersionConstraint versions_;
  std::map<std::string, VariantValue> variants_;
  std::optional<CompilerSpec> compiler_;
  std::string target_;
  std::vector<Spec> dependencies_;
  std::string external_prefix_;
  bool concrete_ = false;
  /// Memoized dag_hash(); empty = not computed. Cleared by every setter
  /// that changes hashed state; filled by mark_concrete() / dag_hash().
  mutable std::string dag_hash_;
};

}  // namespace benchpark::spec
