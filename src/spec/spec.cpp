#include "src/spec/spec.hpp"

#include <algorithm>
#include <cctype>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::spec {

using support::contains;
using support::is_identifier;
using support::join;
using support::trim;

// ------------------------------------------------------------- CompilerSpec

std::string CompilerSpec::str() const {
  std::string out = name;
  if (!versions.is_any()) out += "@" + versions.str();
  return out;
}

bool CompilerSpec::satisfies(const CompilerSpec& constraint) const {
  if (!constraint.name.empty() && name != constraint.name) return false;
  return versions.subset_of(constraint.versions) ||
         versions.intersects(constraint.versions);
}

// -------------------------------------------------------------------- parse

namespace {

/// Tokenizer splitting a spec string into whitespace-separated tokens while
/// understanding that sigils may be glued to the name
/// ("amg2023+caliper%gcc@12").
struct SpecLexer {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
  }

  /// Read a run of identifier chars (plus '.' for versions/names).
  std::string read_word(bool allow_dot = true, bool allow_comma = false,
                        bool allow_colon = false, bool allow_eq = false) {
    std::size_t start = pos;
    while (!done()) {
      char c = peek();
      bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '-' || c == '/' ||
                (allow_dot && c == '.') || (allow_comma && c == ',') ||
                (allow_colon && c == ':') || (allow_eq && c == '=');
      if (!ok) break;
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }
};

}  // namespace

Spec Spec::parse(std::string_view text) {
  auto trimmed = trim(text);
  if (trimmed.empty()) throw SpecError("empty spec");

  SpecLexer lex{trimmed};
  Spec root;
  Spec* current = &root;
  bool saw_name = false;

  lex.skip_ws();
  while (!lex.done()) {
    char c = lex.peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      lex.skip_ws();
      continue;
    }
    switch (c) {
      case '@': {
        ++lex.pos;
        // '=' immediately after '@' means exact version.
        std::string vtext = lex.read_word(true, true, true, true);
        if (vtext.empty()) throw SpecError("missing version after '@' in '" +
                                           std::string(text) + "'");
        VersionConstraint vc = VersionConstraint::parse(vtext);
        auto merged = current->versions();
        merged.constrain(vc);
        current->set_versions(merged);
        break;
      }
      case '+': {
        ++lex.pos;
        std::string vname = lex.read_word(false);
        if (!is_identifier(vname)) {
          throw SpecError("bad variant name after '+' in '" +
                          std::string(text) + "'");
        }
        current->set_variant(vname, VariantValue::boolean(true));
        break;
      }
      case '~':
      case '-': {
        // '-' only a sigil at token start; inside words it is consumed by
        // read_word, so reaching here means disable-variant.
        ++lex.pos;
        std::string vname = lex.read_word(false);
        if (!is_identifier(vname)) {
          throw SpecError("bad variant name after '~' in '" +
                          std::string(text) + "'");
        }
        current->set_variant(vname, VariantValue::boolean(false));
        break;
      }
      case '%': {
        ++lex.pos;
        std::string cname = lex.read_word(false);
        if (cname.empty()) throw SpecError("missing compiler after '%'");
        CompilerSpec comp{cname, {}};
        if (!lex.done() && lex.peek() == '@') {
          ++lex.pos;
          std::string vtext = lex.read_word(true, true, true, true);
          comp.versions = VersionConstraint::parse(vtext);
        }
        current->set_compiler(std::move(comp));
        break;
      }
      case '^': {
        ++lex.pos;
        lex.skip_ws();
        std::string dname = lex.read_word(true);
        if (dname.empty()) throw SpecError("missing dependency after '^'");
        current = &root;  // deps attach to the root spec
        Spec dep(dname);
        root.add_dependency(std::move(dep));
        current = &root.dependencies_mut().back();
        saw_name = true;
        break;
      }
      default: {
        // A bare word: either the (first) package name or key=value.
        std::string word = lex.read_word(true);
        if (word.empty()) {
          throw SpecError("unexpected character '" + std::string(1, c) +
                          "' in spec '" + std::string(text) + "'");
        }
        if (!lex.done() && lex.peek() == '=') {
          ++lex.pos;
          std::string value = lex.read_word(true, true, true, false);
          if (value.empty()) {
            throw SpecError("missing value for '" + word + "=' in '" +
                            std::string(text) + "'");
          }
          if (word == "target" || word == "arch") {
            current->set_target(value);
          } else {
            current->set_variant(word, VariantValue::parse(value));
          }
        } else if (!saw_name) {
          if (!is_identifier(word) && !contains(word, ".")) {
            throw SpecError("bad package name '" + word + "'");
          }
          root.set_name(word);
          saw_name = true;
        } else {
          throw SpecError("unexpected token '" + word + "' in spec '" +
                          std::string(text) + "'");
        }
        break;
      }
    }
  }
  if (root.name().empty() && root.versions().is_any() &&
      root.variants().empty() && !root.compiler() && root.target().empty()) {
    throw SpecError("empty spec: '" + std::string(text) + "'");
  }
  return root;
}

// ------------------------------------------------------------------ accessors

Version Spec::concrete_version() const {
  if (versions_.ranges().size() == 1) {
    const auto& exact = versions_.ranges()[0].exact_version();
    if (exact) return *exact;
  }
  throw SpecError("spec '" + str() + "' has no concrete version");
}

void Spec::set_variant(const std::string& name, VariantValue value) {
  dag_hash_.clear();
  auto it = variants_.find(name);
  if (it != variants_.end() && !(it->second == value)) {
    // Overwrite is allowed pre-concretization only through constrain();
    // direct conflicting set is a programming error caught here.
    it->second = std::move(value);
    return;
  }
  variants_.insert_or_assign(name, std::move(value));
}

const VariantValue* Spec::variant(std::string_view name) const {
  auto it = variants_.find(std::string(name));
  return it == variants_.end() ? nullptr : &it->second;
}

bool Spec::variant_enabled(std::string_view name) const {
  const auto* v = variant(name);
  return v && v->kind() == VariantValue::Kind::boolean && v->as_bool();
}

void Spec::add_dependency(Spec dep) {
  dependencies_.push_back(std::move(dep));
  dag_hash_.clear();
}

const Spec* Spec::dependency(std::string_view name) const {
  for (const auto& d : dependencies_) {
    if (d.name() == name) return &d;
  }
  return nullptr;
}

Spec* Spec::dependency_mut(std::string_view name) {
  for (auto& d : dependencies_) {
    if (d.name() == name) {
      dag_hash_.clear();  // caller may mutate the dependency's hash state
      return &d;
    }
  }
  return nullptr;
}

void Spec::mark_concrete() {
  if (name_.empty()) throw SpecError("anonymous spec cannot be concrete");
  (void)concrete_version();  // throws when not pinned
  if (!compiler_) throw SpecError("spec '" + name_ + "' has no compiler");
  if (target_.empty()) throw SpecError("spec '" + name_ + "' has no target");
  for (auto& d : dependencies_) {
    if (!d.concrete()) {
      throw SpecError("dependency '" + d.name() + "' of '" + name_ +
                      "' is not concrete");
    }
  }
  concrete_ = true;
  // Hash eagerly while the DAG is hot in cache: every later dag_hash()
  // call (cache lookups, pushes, trace annotations) returns the memo.
  dag_hash_ = compute_dag_hash();
}

std::string Spec::dag_hash() const {
  if (!concrete_) throw SpecError("dag_hash() requires a concrete spec");
  if (dag_hash_.empty()) dag_hash_ = compute_dag_hash();
  return dag_hash_;
}

std::string Spec::compute_dag_hash() const {
  support::Hasher h;
  h.update(name_);
  h.update(versions_.str());
  for (const auto& [k, v] : variants_) {
    h.update(k);
    h.update(v.value_str());
  }
  h.update(compiler_ ? compiler_->str() : "");
  h.update(target_);
  h.update(external_prefix_);
  // Dependency hashes, order-independent (sorted by name).
  std::vector<std::string> dep_hashes;
  dep_hashes.reserve(dependencies_.size());
  for (const auto& d : dependencies_) {
    dep_hashes.push_back(d.name() + "/" + d.dag_hash());
  }
  std::sort(dep_hashes.begin(), dep_hashes.end());
  for (const auto& dh : dep_hashes) h.update(dh);
  return h.base32();
}

// -------------------------------------------------------------- satisfies

bool Spec::satisfies(const Spec& constraint) const {
  if (!constraint.name_.empty() && name_ != constraint.name_) return false;
  if (!constraint.versions_.is_any()) {
    if (concrete_) {
      if (!constraint.versions_.satisfied_by(concrete_version())) return false;
    } else if (!versions_.intersects(constraint.versions_)) {
      return false;
    }
  }
  for (const auto& [vname, vvalue] : constraint.variants_) {
    const auto* mine = variant(vname);
    if (!mine) {
      // Abstract specs may not mention the variant yet; a concrete spec
      // missing a required variant fails.
      if (concrete_) return false;
      continue;
    }
    if (!mine->satisfies(vvalue)) return false;
  }
  if (constraint.compiler_) {
    if (!compiler_) return concrete_ ? false : true;
    if (!compiler_->satisfies(*constraint.compiler_)) return false;
  }
  if (!constraint.target_.empty() && !target_.empty() &&
      target_ != constraint.target_) {
    return false;
  }
  if (constraint.target_.empty() == false && target_.empty() && concrete_) {
    return false;
  }
  for (const auto& cdep : constraint.dependencies_) {
    const Spec* mine = dependency(cdep.name());
    if (!mine) {
      if (concrete_) return false;
      continue;
    }
    if (!mine->satisfies(cdep)) return false;
  }
  return true;
}

void Spec::constrain(const Spec& other) {
  dag_hash_.clear();  // every branch below may change hashed state
  if (!other.name_.empty()) {
    if (name_.empty()) {
      name_ = other.name_;
      name_id_ = other.name_id_;
    } else if (name_ != other.name_) {
      throw SpecError("cannot constrain '" + name_ + "' with '" +
                      other.name_ + "'");
    }
  }
  versions_.constrain(other.versions_);
  for (const auto& [vname, vvalue] : other.variants_) {
    auto it = variants_.find(vname);
    if (it == variants_.end()) {
      variants_.emplace(vname, vvalue);
    } else if (!(it->second == vvalue)) {
      // Multi-valued variants merge; others conflict.
      if (it->second.kind() != VariantValue::Kind::boolean &&
          vvalue.kind() != VariantValue::Kind::boolean) {
        auto merged = it->second.as_multi();
        const auto& extra = vvalue.as_multi();
        merged.insert(merged.end(), extra.begin(), extra.end());
        it->second = VariantValue::multi(std::move(merged));
      } else {
        throw SpecError("conflicting values for variant '" + vname +
                        "' on '" + name_ + "'");
      }
    }
  }
  if (other.compiler_) {
    if (!compiler_) {
      compiler_ = other.compiler_;
    } else {
      if (compiler_->name != other.compiler_->name) {
        throw SpecError("conflicting compilers on '" + name_ + "': " +
                        compiler_->name + " vs " + other.compiler_->name);
      }
      compiler_->versions.constrain(other.compiler_->versions);
    }
  }
  if (!other.target_.empty()) {
    if (target_.empty()) {
      target_ = other.target_;
    } else if (target_ != other.target_) {
      throw SpecError("conflicting targets on '" + name_ + "': " + target_ +
                      " vs " + other.target_);
    }
  }
  if (!other.external_prefix_.empty()) {
    external_prefix_ = other.external_prefix_;
  }
  for (const auto& odep : other.dependencies_) {
    Spec* mine = dependency_mut(odep.name());
    if (mine) {
      mine->constrain(odep);
    } else {
      dependencies_.push_back(odep);
    }
  }
}

// -------------------------------------------------------------------- print

std::string Spec::str_no_deps() const {
  std::string out = name_;
  if (!versions_.is_any()) out += "@" + versions_.str();
  for (const auto& [vname, vvalue] : variants_) {
    if (vvalue.kind() == VariantValue::Kind::boolean) {
      out += (vvalue.as_bool() ? "+" : "~") + vname;
    } else {
      out += " " + vname + "=" + vvalue.value_str();
    }
  }
  if (compiler_) out += "%" + compiler_->str();
  if (!target_.empty()) out += " target=" + target_;
  return out;
}

std::string Spec::str() const {
  std::string out = str_no_deps();
  for (const auto& d : dependencies_) {
    out += " ^" + d.str_no_deps();
    // Nested dependency rendering flattens one level; concrete DAGs are
    // rendered by the environment lockfile instead.
  }
  return out;
}

std::string Spec::short_str() const {
  std::string out = name_;
  if (!versions_.is_any()) out += "@" + versions_.str();
  return out;
}

bool Spec::operator==(const Spec& other) const {
  return name_ == other.name_ && versions_ == other.versions_ &&
         variants_ == other.variants_ && compiler_ == other.compiler_ &&
         target_ == other.target_ && dependencies_ == other.dependencies_ &&
         external_prefix_ == other.external_prefix_ &&
         concrete_ == other.concrete_;
}

}  // namespace benchpark::spec
