// Version semantics for the spec language (Spack-compatible subset).
//
// A Version is a dot/dash separated mix of numeric and alphanumeric
// components ("2.3.7-gcc12.1.1-magic"). Ordering compares component-wise,
// numbers numerically, strings lexically, numbers > strings at the same
// position (so 1.2 > 1.2-rc1 is *not* modeled; we use the simpler rule
// that a shorter version is less than a longer one with equal prefix).
//
// Constraints:
//   @1.2        — "prefix" match: any version whose leading components
//                 equal 1.2 (1.2, 1.2.9, ...), Spack's @1.2 semantics
//   @=1.2       — exact match only
//   @1.2:1.8    — inclusive range (endpoints use prefix matching)
//   @1.2:  @:1.8 — half-open ranges
//   @1.2,2.0:   — union of constraints (comma list)
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace benchpark::spec {

/// A concrete version number.
class Version {
public:
  Version() = default;
  explicit Version(std::string_view text);

  [[nodiscard]] const std::string& str() const { return text_; }
  [[nodiscard]] bool empty() const { return text_.empty(); }

  /// Leading components equal to all of `prefix`'s components?
  [[nodiscard]] bool has_prefix(const Version& prefix) const;

  /// Component count ("1.2.3" -> 3).
  [[nodiscard]] std::size_t num_components() const {
    return components_.size();
  }

  [[nodiscard]] std::strong_ordering operator<=>(const Version& other) const;
  [[nodiscard]] bool operator==(const Version& other) const {
    return text_ == other.text_;
  }

private:
  struct Component {
    bool numeric = false;
    long long number = 0;
    std::string text;

    [[nodiscard]] std::strong_ordering operator<=>(const Component& o) const;
    [[nodiscard]] bool operator==(const Component& o) const = default;
  };

  std::string text_;
  std::vector<Component> components_;
};

/// One range in a constraint ("1.2:1.8", "=1.2", "1.2", ":1.8", "1.2:").
class VersionRange {
public:
  /// Parse one comma-free range token (no leading '@').
  static VersionRange parse(std::string_view text);

  /// Range matching any version.
  static VersionRange any();
  /// Exact single version.
  static VersionRange exact(const Version& v);

  [[nodiscard]] bool satisfied_by(const Version& v) const;

  /// Could `other` and this admit a common version? (conservative)
  [[nodiscard]] bool intersects(const VersionRange& other) const;

  /// Is every version admitted by this also admitted by `other`?
  [[nodiscard]] bool subset_of(const VersionRange& other) const;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool is_any() const { return !lo_ && !hi_ && !exact_; }
  [[nodiscard]] const std::optional<Version>& exact_version() const {
    return exact_;
  }

  bool operator==(const VersionRange& other) const = default;

private:
  std::optional<Version> lo_;     // inclusive lower bound (prefix semantics)
  std::optional<Version> hi_;     // inclusive upper bound (prefix semantics)
  std::optional<Version> exact_;  // "=1.2" or bare "1.2" (prefix)
  bool prefix_ = false;           // bare "1.2": prefix match, not exact
};

/// A full constraint: union of ranges ("1.2:1.8,2.0").
class VersionConstraint {
public:
  VersionConstraint() = default;  // matches anything
  static VersionConstraint parse(std::string_view text);
  static VersionConstraint exactly(const Version& v);

  [[nodiscard]] bool is_any() const { return ranges_.empty(); }
  [[nodiscard]] bool satisfied_by(const Version& v) const;
  [[nodiscard]] bool intersects(const VersionConstraint& other) const;
  /// True if satisfying `this` implies satisfying `other` (conservative).
  [[nodiscard]] bool subset_of(const VersionConstraint& other) const;

  /// Intersect with `other`; throws SpecError if provably empty.
  void constrain(const VersionConstraint& other);

  [[nodiscard]] std::string str() const;
  [[nodiscard]] const std::vector<VersionRange>& ranges() const {
    return ranges_;
  }

  bool operator==(const VersionConstraint& other) const = default;

private:
  std::vector<VersionRange> ranges_;  // empty = any
};

}  // namespace benchpark::spec
