#include "src/spec/variant.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::spec {

VariantValue VariantValue::boolean(bool enabled) {
  VariantValue v;
  v.kind_ = Kind::boolean;
  v.bool_value_ = enabled;
  return v;
}

VariantValue VariantValue::single(std::string value) {
  VariantValue v;
  v.kind_ = Kind::single;
  v.values_.push_back(std::move(value));
  return v;
}

VariantValue VariantValue::multi(std::vector<std::string> values) {
  VariantValue v;
  v.kind_ = Kind::multi;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  v.values_ = std::move(values);
  return v;
}

VariantValue VariantValue::parse(std::string_view value_text) {
  if (value_text.empty()) throw SpecError("empty variant value");
  auto lower = support::to_lower(value_text);
  if (lower == "true") return boolean(true);
  if (lower == "false") return boolean(false);
  if (support::contains(value_text, ",")) {
    std::vector<std::string> values;
    for (const auto& part : support::split(value_text, ',')) {
      auto trimmed = support::trim(part);
      if (trimmed.empty()) {
        throw SpecError("empty item in variant value '" +
                        std::string(value_text) + "'");
      }
      values.push_back(trimmed);
    }
    return multi(std::move(values));
  }
  return single(std::string(value_text));
}

bool VariantValue::as_bool() const {
  if (kind_ != Kind::boolean) throw SpecError("variant is not boolean");
  return bool_value_;
}

const std::string& VariantValue::as_single() const {
  if (kind_ == Kind::boolean) throw SpecError("variant is boolean");
  if (values_.size() != 1) throw SpecError("variant is multi-valued");
  return values_[0];
}

const std::vector<std::string>& VariantValue::as_multi() const {
  if (kind_ == Kind::boolean) throw SpecError("variant is boolean");
  return values_;
}

bool VariantValue::satisfies(const VariantValue& constraint) const {
  if (kind_ == Kind::boolean || constraint.kind_ == Kind::boolean) {
    return kind_ == constraint.kind_ && bool_value_ == constraint.bool_value_;
  }
  // String-valued: every required value must be present.
  return std::all_of(constraint.values_.begin(), constraint.values_.end(),
                     [&](const std::string& v) {
                       return std::find(values_.begin(), values_.end(), v) !=
                              values_.end();
                     });
}

std::string VariantValue::value_str() const {
  if (kind_ == Kind::boolean) return bool_value_ ? "true" : "false";
  return support::join(values_, ",");
}

}  // namespace benchpark::spec
