// Variant values for specs: +openmp, ~cuda, build_type=Release,
// targets=a,b (multi-valued).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace benchpark::spec {

/// A single variant setting on a spec.
class VariantValue {
public:
  enum class Kind { boolean, single, multi };

  static VariantValue boolean(bool enabled);
  static VariantValue single(std::string value);
  static VariantValue multi(std::vector<std::string> values);

  /// Parse the right-hand side of `name=value`; comma splits to multi.
  static VariantValue parse(std::string_view value_text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_single() const;
  [[nodiscard]] const std::vector<std::string>& as_multi() const;

  /// Does this value satisfy a required `constraint` value?
  /// bools must match exactly; single must be equal; multi must be a
  /// superset of the constraint's values.
  [[nodiscard]] bool satisfies(const VariantValue& constraint) const;

  /// Render as it appears after the variant name ("" for bools; the spec
  /// printer handles the +/~ sigil).
  [[nodiscard]] std::string value_str() const;

  bool operator==(const VariantValue& other) const = default;

private:
  Kind kind_ = Kind::boolean;
  bool bool_value_ = false;
  std::vector<std::string> values_;  // single uses values_[0]
};

}  // namespace benchpark::spec
