#include "src/spec/version.hpp"

#include <algorithm>
#include <cctype>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::spec {

// ------------------------------------------------------------------ Version

Version::Version(std::string_view text) : text_(text) {
  if (text.empty()) throw SpecError("empty version");
  // Tokenize into maximal digit runs and non-digit runs, treating '.', '-'
  // and '_' purely as separators.
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '.' || c == '-' || c == '_') {
      ++i;
      continue;
    }
    Component comp;
    std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      comp.numeric = true;
      comp.number = support::parse_int(text.substr(start, i - start));
    } else {
      while (i < text.size() &&
             !std::isdigit(static_cast<unsigned char>(text[i])) &&
             text[i] != '.' && text[i] != '-' && text[i] != '_') {
        ++i;
      }
      comp.text = std::string(text.substr(start, i - start));
    }
    components_.push_back(std::move(comp));
  }
  if (components_.empty()) throw SpecError("malformed version: '" + text_ + "'");
}

std::strong_ordering Version::Component::operator<=>(
    const Component& o) const {
  if (numeric != o.numeric) {
    // Numeric components order after string components at the same slot
    // ("1.2" > "1.beta"), matching common packaging conventions.
    return numeric ? std::strong_ordering::greater
                   : std::strong_ordering::less;
  }
  if (numeric) return number <=> o.number;
  return text <=> o.text;
}

bool Version::has_prefix(const Version& prefix) const {
  if (prefix.components_.size() > components_.size()) return false;
  return std::equal(prefix.components_.begin(), prefix.components_.end(),
                    components_.begin());
}

std::strong_ordering Version::operator<=>(const Version& other) const {
  std::size_t n = std::min(components_.size(), other.components_.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto cmp = components_[i] <=> other.components_[i];
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return components_.size() <=> other.components_.size();
}

// -------------------------------------------------------------- VersionRange

VersionRange VersionRange::parse(std::string_view text) {
  VersionRange range;
  if (text.empty()) throw SpecError("empty version range");
  if (text.front() == '=') {
    range.exact_ = Version(text.substr(1));
    return range;
  }
  auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    range.exact_ = Version(text);
    range.prefix_ = true;
    return range;
  }
  auto lo = text.substr(0, colon);
  auto hi = text.substr(colon + 1);
  if (!lo.empty()) range.lo_ = Version(lo);
  if (!hi.empty()) range.hi_ = Version(hi);
  return range;
}

VersionRange VersionRange::any() { return VersionRange{}; }

VersionRange VersionRange::exact(const Version& v) {
  VersionRange range;
  range.exact_ = v;
  return range;
}

bool VersionRange::satisfied_by(const Version& v) const {
  if (exact_) {
    return prefix_ ? v.has_prefix(*exact_) : v == *exact_;
  }
  // Range endpoints use prefix-inclusive semantics: "…:1.8" admits 1.8.2
  // (Spack behavior: the upper bound 1.8 includes everything in 1.8.*).
  if (lo_ && v < *lo_ && !v.has_prefix(*lo_)) return false;
  if (hi_ && v > *hi_ && !v.has_prefix(*hi_)) return false;
  return true;
}

bool VersionRange::intersects(const VersionRange& other) const {
  if (is_any() || other.is_any()) return true;
  if (exact_ && other.exact_) {
    if (prefix_ && other.prefix_) {
      return exact_->has_prefix(*other.exact_) ||
             other.exact_->has_prefix(*exact_);
    }
    if (!prefix_ && !other.prefix_) return *exact_ == *other.exact_;
    const auto& exact = prefix_ ? *other.exact_ : *exact_;
    const auto& prefix = prefix_ ? *exact_ : *other.exact_;
    return exact.has_prefix(prefix);
  }
  if (exact_) {
    // Exact (or prefix) version vs. a true range: the representative
    // version deciding membership; a prefix like "1.2" also intersects a
    // range whose bound falls inside 1.2.* (e.g. "1.2.5:").
    if (other.satisfied_by(*exact_)) return true;
    if (prefix_) {
      if (other.lo_ && other.lo_->has_prefix(*exact_)) return true;
      if (other.hi_ && other.hi_->has_prefix(*exact_)) return true;
    }
    return false;
  }
  if (other.exact_) return other.intersects(*this);
  // Two true ranges: [lo1, hi1] vs [lo2, hi2] with open ends.
  if (hi_ && other.lo_ && *hi_ < *other.lo_ && !other.lo_->has_prefix(*hi_)) {
    return false;
  }
  if (other.hi_ && lo_ && *other.hi_ < *lo_ && !lo_->has_prefix(*other.hi_)) {
    return false;
  }
  return true;
}

bool VersionRange::subset_of(const VersionRange& other) const {
  if (other.is_any()) return true;
  if (is_any()) return false;
  if (exact_ && !prefix_) return other.satisfied_by(*exact_);
  if (exact_ && prefix_) {
    if (other.exact_ && other.prefix_) return exact_->has_prefix(*other.exact_);
    // Prefix "1.2" as a range is [1.2, 1.2.<max>]; conservative check via
    // the representative version.
    return other.satisfied_by(*exact_);
  }
  // Range within range: check both endpoints (open ends only subset of
  // matching open ends).
  if (!other.exact_) {
    bool lo_ok = !other.lo_ ||
                 (lo_ && (*lo_ > *other.lo_ || *lo_ == *other.lo_ ||
                          lo_->has_prefix(*other.lo_)));
    bool hi_ok = !other.hi_ ||
                 (hi_ && (*hi_ < *other.hi_ || *hi_ == *other.hi_ ||
                          hi_->has_prefix(*other.hi_)));
    return lo_ok && hi_ok;
  }
  return false;
}

std::string VersionRange::str() const {
  if (exact_) return prefix_ ? exact_->str() : "=" + exact_->str();
  if (is_any()) return ":";
  std::string out;
  if (lo_) out += lo_->str();
  out += ":";
  if (hi_) out += hi_->str();
  return out;
}

// --------------------------------------------------------- VersionConstraint

VersionConstraint VersionConstraint::parse(std::string_view text) {
  VersionConstraint vc;
  for (const auto& token : support::split(text, ',')) {
    auto trimmed = support::trim(token);
    if (trimmed.empty()) throw SpecError("empty range in '" + std::string(text) + "'");
    vc.ranges_.push_back(VersionRange::parse(trimmed));
  }
  return vc;
}

VersionConstraint VersionConstraint::exactly(const Version& v) {
  VersionConstraint vc;
  vc.ranges_.push_back(VersionRange::exact(v));
  return vc;
}

bool VersionConstraint::satisfied_by(const Version& v) const {
  if (ranges_.empty()) return true;
  return std::any_of(ranges_.begin(), ranges_.end(),
                     [&](const VersionRange& r) { return r.satisfied_by(v); });
}

bool VersionConstraint::intersects(const VersionConstraint& other) const {
  if (is_any() || other.is_any()) return true;
  for (const auto& a : ranges_) {
    for (const auto& b : other.ranges_) {
      if (a.intersects(b)) return true;
    }
  }
  return false;
}

bool VersionConstraint::subset_of(const VersionConstraint& other) const {
  if (other.is_any()) return true;
  if (is_any()) return false;
  return std::all_of(ranges_.begin(), ranges_.end(), [&](const VersionRange& a) {
    return std::any_of(other.ranges_.begin(), other.ranges_.end(),
                       [&](const VersionRange& b) { return a.subset_of(b); });
  });
}

void VersionConstraint::constrain(const VersionConstraint& other) {
  if (other.is_any()) return;
  if (is_any()) {
    ranges_ = other.ranges_;
    return;
  }
  if (!intersects(other)) {
    throw SpecError("conflicting version constraints: '" + str() + "' vs '" +
                    other.str() + "'");
  }
  // Keep the more specific side: if one is a subset of the other, use it;
  // otherwise keep the pairwise-intersecting ranges of `this`.
  if (subset_of(other)) return;
  if (other.subset_of(*this)) {
    ranges_ = other.ranges_;
    return;
  }
  std::vector<VersionRange> kept;
  for (const auto& a : ranges_) {
    for (const auto& b : other.ranges_) {
      if (a.intersects(b)) {
        kept.push_back(a.subset_of(b) ? a : b);
      }
    }
  }
  if (kept.empty()) {
    throw SpecError("conflicting version constraints: '" + str() + "' vs '" +
                    other.str() + "'");
  }
  ranges_ = std::move(kept);
}

std::string VersionConstraint::str() const {
  if (ranges_.empty()) return ":";
  std::vector<std::string> parts;
  parts.reserve(ranges_.size());
  for (const auto& r : ranges_) parts.push_back(r.str());
  return support::join(parts, ",");
}

}  // namespace benchpark::spec
