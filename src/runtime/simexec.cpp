#include "src/runtime/simexec.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/benchmarks/fft.hpp"
#include "src/benchmarks/gemm.hpp"
#include "src/benchmarks/multigrid.hpp"
#include "src/benchmarks/ptrans.hpp"
#include "src/benchmarks/randomaccess.hpp"
#include "src/benchmarks/saxpy.hpp"
#include "src/benchmarks/stream.hpp"
#include "src/obs/trace.hpp"
#include "src/system/beff.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/hash.hpp"
#include "src/support/rng.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::runtime {

using support::format_double;
using system::Collective;
using system::PerfModel;
using system::SystemDescription;

RunParams normalized(RunParams params) {
  if (params.app.empty()) throw SystemError("run has no application");
  if (params.n == 0) params.n = 1024;
  if (params.n_nodes < 1) params.n_nodes = 1;
  if (params.n_ranks < 1) params.n_ranks = 1;
  if (params.n_threads < 1) params.n_threads = 1;
  if (params.app == "amg2023") params.uses_math_library = true;
  return params;
}

namespace {

support::Rng make_rng(const SystemDescription& system,
                      const RunParams& params) {
  support::Hasher h;
  h.update(system.name);
  h.update(params.app);
  h.update(params.n);
  h.update(static_cast<std::uint64_t>(params.n_ranks));
  h.update(static_cast<std::uint64_t>(params.n_threads));
  h.update(static_cast<std::uint64_t>(params.n_nodes));
  h.update(params.repetition);
  return support::Rng(system.seed ^ h.digest());
}

void validate_allocation(const SystemDescription& system,
                         const RunParams& params) {
  if (params.n_nodes > system.num_nodes) {
    throw SystemError("requested " + std::to_string(params.n_nodes) +
                      " nodes; " + system.name + " has " +
                      std::to_string(system.num_nodes));
  }
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  if (ranks_per_node * params.n_threads > system.cpu.cores_per_node) {
    throw SystemError(
        "oversubscribed node on " + system.name + ": " +
        std::to_string(ranks_per_node) + " ranks x " +
        std::to_string(params.n_threads) + " threads > " +
        std::to_string(system.cpu.cores_per_node) + " cores");
  }
  if (params.use_gpu && !system.has_gpu()) {
    throw SystemError("system '" + system.name + "' has no GPUs");
  }
}

/// The Section 7.1 failure: the math library probes CPU features at init
/// and takes a code path using an instruction this hardware lacks.
RunOutcome math_library_crash(const SystemDescription& system) {
  RunOutcome outcome;
  outcome.success = false;
  outcome.exit_code = 132;  // SIGILL
  outcome.elapsed_seconds = 0.01;
  outcome.output =
      "vendor-mathlib: optimized path selected: requires "
      "hardware feature '" +
      *system.disabled_features.begin() +
      "'\n"
      "Illegal instruction (core dumped)\n";
  return outcome;
}

RunOutcome simulate_saxpy(const SystemDescription& system,
                          const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  std::uint64_t per_rank =
      std::max<std::uint64_t>(1, params.n / static_cast<std::uint64_t>(
                                                params.n_ranks));
  double compute =
      params.use_gpu
          ? model.gpu_kernel_seconds(benchmarks::saxpy_flops(per_rank),
                                     benchmarks::saxpy_bytes(per_rank),
                                     ranks_per_node)
          : model.cpu_kernel_seconds(benchmarks::saxpy_flops(per_rank),
                                     benchmarks::saxpy_bytes(per_rank),
                                     ranks_per_node, params.n_threads);
  double comm = 0;
  if (params.n_ranks > 1) {
    comm += model.collective_seconds(Collective::bcast, params.n_ranks, 16);
    comm += model.collective_seconds(Collective::allreduce, params.n_ranks,
                                     8);
  }
  double elapsed = (compute + comm) * rng.noise_factor(system.noise_sigma);

  benchmarks::SaxpyResult r;
  r.n = params.n;
  r.threads = params.n_threads;
  r.elapsed_seconds = elapsed;
  r.gflops = 2.0 * static_cast<double>(params.n) / elapsed / 1e9;
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = elapsed;
  outcome.output = benchmarks::saxpy_output(r);
  return outcome;
}

RunOutcome simulate_amg(const SystemDescription& system,
                        const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  // 2-D domain decomposition: each rank owns (n/sqrt(p))^2 points.
  double p = params.n_ranks;
  double per_rank_n =
      static_cast<double>(params.n) / std::sqrt(std::max(1.0, p));
  auto local = static_cast<std::size_t>(std::max(4.0, per_rank_n));

  double cycle_compute =
      params.use_gpu
          ? model.gpu_kernel_seconds(benchmarks::multigrid_cycle_flops(local),
                                     benchmarks::multigrid_cycle_bytes(local),
                                     ranks_per_node)
          : model.cpu_kernel_seconds(
                benchmarks::multigrid_cycle_flops(local),
                benchmarks::multigrid_cycle_bytes(local), ranks_per_node,
                params.n_threads);
  double cycle_comm = 0;
  if (params.n_ranks > 1) {
    // Halo exchange with 4 neighbors on every level (factor 2 for depth)
    // plus the residual-norm allreduce.
    std::uint64_t halo_bytes =
        static_cast<std::uint64_t>(4 * per_rank_n * sizeof(double));
    cycle_comm += 2.0 * 4.0 * model.p2p_seconds(halo_bytes);
    cycle_comm +=
        model.collective_seconds(Collective::allreduce, params.n_ranks, 8);
  }

  // V(2,2) multigrid: ~0.1 residual reduction per cycle to 1e-8.
  int cycles = 9 + static_cast<int>(rng.below(3));
  double setup = 0.4 * cycle_compute * cycles / 9.0 +
                 (params.n_ranks > 1
                      ? model.collective_seconds(Collective::allgather,
                                                 params.n_ranks, 64)
                      : 0.0);
  double solve = (cycle_compute + cycle_comm) * cycles;
  setup *= rng.noise_factor(system.noise_sigma);
  solve *= rng.noise_factor(system.noise_sigma);

  benchmarks::MultigridResult r;
  r.n = params.n;
  r.levels = static_cast<int>(std::log2(std::max<std::uint64_t>(2, params.n)));
  r.cycles = cycles;
  r.converged = true;
  r.setup_seconds = setup;
  r.solve_seconds = solve;
  r.initial_residual = 1.0;
  r.final_residual = std::pow(0.1, cycles);

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = setup + solve;
  outcome.output = benchmarks::multigrid_output(r);
  return outcome;
}

RunOutcome simulate_stream(const SystemDescription& system,
                           const RunParams& params, support::Rng& rng) {
  // STREAM is per-node: report the node's effective bandwidth.
  double peak = system.cpu.mem_bw_gbs;
  int cores_used = std::min(params.n_threads, system.cpu.cores_per_node);
  double fraction = std::min(
      1.0, static_cast<double>(cores_used) /
               std::max(1, system.cpu.cores_per_node / 4));
  double bw = peak * fraction;

  benchmarks::StreamResult r;
  r.n = params.n;
  r.threads = params.n_threads;
  // Copy/scale slightly beat add/triad (2 vs 3 streams).
  r.bandwidth_gbs = {bw * 1.03 * rng.noise_factor(system.noise_sigma),
                     bw * 1.02 * rng.noise_factor(system.noise_sigma),
                     bw * 0.98 * rng.noise_factor(system.noise_sigma),
                     bw * rng.noise_factor(system.noise_sigma)};
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds =
      10.0 * benchmarks::stream_triad_bytes(params.n) / (bw * 1e9);
  outcome.output = benchmarks::stream_output(r);
  return outcome;
}

RunOutcome simulate_gemm(const SystemDescription& system,
                         const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  // 2-D block decomposition: each rank owns an (n/sqrt(p))^2 tile and
  // multiplies full k panels through it.
  double p = std::max(1.0, static_cast<double>(params.n_ranks));
  std::size_t local = static_cast<std::size_t>(std::max(
      8.0, static_cast<double>(params.n) / std::sqrt(p)));
  double flops = benchmarks::gemm_flops(local) * std::sqrt(p);
  double bytes = benchmarks::gemm_bytes(local) * std::sqrt(p);
  double compute =
      params.use_gpu
          ? model.gpu_kernel_seconds(flops, bytes, ranks_per_node)
          : model.cpu_kernel_seconds(flops, bytes, ranks_per_node,
                                     params.n_threads);
  double comm = 0;
  if (params.n_ranks > 1) {
    // SUMMA-style panel broadcasts along rows and columns.
    std::uint64_t panel_bytes = static_cast<std::uint64_t>(
        static_cast<double>(local) * benchmarks::kGemmKC * sizeof(double));
    comm += 2.0 * model.collective_seconds(Collective::bcast, params.n_ranks,
                                           panel_bytes);
  }
  double elapsed = (compute + comm) * rng.noise_factor(system.noise_sigma);

  benchmarks::GemmResult r;
  r.n = params.n;
  r.threads = params.n_threads;
  r.elapsed_seconds = elapsed;
  r.gflops = benchmarks::gemm_flops(params.n) / elapsed / 1e9;
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = elapsed;
  outcome.output = benchmarks::gemm_output(r);
  return outcome;
}

RunOutcome simulate_ptrans(const SystemDescription& system,
                           const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  double p = std::max(1.0, static_cast<double>(params.n_ranks));
  std::size_t local = static_cast<std::size_t>(std::max(
      8.0, static_cast<double>(params.n) / std::sqrt(p)));
  double compute = model.cpu_kernel_seconds(
      0.0, benchmarks::ptrans_bytes(local), ranks_per_node,
      params.n_threads);
  double comm = 0;
  if (params.n_ranks > 1) {
    // Distributed transpose is an all-to-all of the local tiles.
    std::uint64_t tile_bytes = static_cast<std::uint64_t>(
        benchmarks::ptrans_bytes(local) / (2.0 * p));
    comm += (p - 1.0) * model.p2p_seconds(tile_bytes);
  }
  double elapsed = (compute + comm) * rng.noise_factor(system.noise_sigma);

  benchmarks::PtransResult r;
  r.n = params.n;
  r.threads = params.n_threads;
  r.elapsed_seconds = elapsed;
  r.bandwidth_gbs = benchmarks::ptrans_bytes(params.n) / elapsed / 1e9;
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = elapsed;
  outcome.output = benchmarks::ptrans_output(r);
  return outcome;
}

RunOutcome simulate_fft(const SystemDescription& system,
                        const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  constexpr std::size_t kBatch = 8;
  std::uint64_t per_rank = std::max<std::uint64_t>(
      2, params.n / static_cast<std::uint64_t>(params.n_ranks));
  double flops = benchmarks::fft_flops(per_rank) * kBatch;
  double bytes = benchmarks::fft_bytes(per_rank) * kBatch;
  double compute =
      params.use_gpu
          ? model.gpu_kernel_seconds(flops, bytes, ranks_per_node)
          : model.cpu_kernel_seconds(flops, bytes, ranks_per_node,
                                     params.n_threads);
  double comm = 0;
  if (params.n_ranks > 1) {
    // Distributed FFT pays one transpose-style exchange per butterfly
    // group that crosses rank boundaries.
    std::uint64_t exch = static_cast<std::uint64_t>(
        2.0 * sizeof(double) * static_cast<double>(per_rank));
    comm += std::log2(static_cast<double>(params.n_ranks)) *
            model.p2p_seconds(exch);
  }
  double elapsed = (compute + comm) * rng.noise_factor(system.noise_sigma);

  benchmarks::FftResult r;
  r.n = params.n;
  r.batch = kBatch;
  r.threads = params.n_threads;
  r.elapsed_seconds = elapsed;
  r.gflops = benchmarks::fft_flops(params.n) * kBatch / elapsed / 1e9;
  r.max_roundtrip_error = 1e-15;
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = elapsed;
  outcome.output = benchmarks::fft_output(r);
  return outcome;
}

RunOutcome simulate_randomaccess(const SystemDescription& system,
                                 const RunParams& params,
                                 support::Rng& rng) {
  PerfModel model(system);
  int ranks_per_node =
      (params.n_ranks + params.n_nodes - 1) / params.n_nodes;
  std::uint64_t updates = 4 * params.n;
  // Random 8-byte RMWs touch a full line each way; the dependent-miss
  // pipeline reaches only a fraction of stream bandwidth.
  double effective_bytes = 8.0 * benchmarks::randomaccess_bytes(updates);
  double compute = model.cpu_kernel_seconds(0.0, effective_bytes,
                                            ranks_per_node, params.n_threads);
  double comm = 0;
  if (params.n_ranks > 1) {
    // Bucketed remote updates exchanged every 1024 locals.
    comm += static_cast<double>(updates / 1024) *
            model.p2p_seconds(1024 * sizeof(std::uint64_t)) /
            static_cast<double>(params.n_ranks);
  }
  double elapsed = (compute + comm) * rng.noise_factor(system.noise_sigma);

  benchmarks::RandomAccessResult r;
  r.table_size = params.n;
  r.updates = updates;
  r.threads = params.n_threads;
  r.elapsed_seconds = elapsed;
  r.gups = static_cast<double>(updates) / elapsed / 1e9;
  r.verified = true;

  RunOutcome outcome;
  outcome.success = true;
  outcome.elapsed_seconds = elapsed;
  outcome.output = benchmarks::randomaccess_output(r);
  return outcome;
}

RunOutcome simulate_beff(const SystemDescription& system,
                         const RunParams& params, support::Rng& rng) {
  using benchpark::system::beff_output;
  using benchpark::system::run_beff;
  benchpark::system::BeffResult r = run_beff(system, params.n_ranks);
  double noise = rng.noise_factor(system.noise_sigma);
  r.beff_mbs /= noise;
  r.latency_us *= noise;

  RunOutcome outcome;
  outcome.success = true;
  // The real harness repeats the sweep many times per pattern.
  outcome.elapsed_seconds = r.sweep_seconds * 100 * noise;
  outcome.output = beff_output(r);
  return outcome;
}

RunOutcome simulate_osu_bcast(const SystemDescription& system,
                              const RunParams& params, support::Rng& rng) {
  PerfModel model(system);
  RunOutcome outcome;
  outcome.output = "# OSU MPI Broadcast Latency Test\n# Size  Avg Latency(us)\n";
  double total = 0;
  for (std::uint64_t size = 8; size <= std::max<std::uint64_t>(8, params.n);
       size *= 4) {
    double t = model.collective_seconds(Collective::bcast, params.n_ranks,
                                        size) *
               rng.noise_factor(system.noise_sigma);
    total += t;
    outcome.output += support::pad_left(std::to_string(size), 10) + "  " +
                      format_double(t * 1e6, 5) + "\n";
  }
  outcome.success = true;
  outcome.elapsed_seconds = total * 1000;  // 1000 iterations per size
  outcome.output += "Kernel done\n";
  return outcome;
}

}  // namespace

namespace {

std::map<std::string, SimModel>& sim_models() {
  static std::map<std::string, SimModel> models;
  return models;
}

}  // namespace

void register_sim_model(const std::string& app, SimModel model) {
  sim_models()[app] = std::move(model);
}

bool has_sim_model(const std::string& app) {
  return sim_models().count(app) > 0;
}

namespace {

/// Annotation hooks: what a Caliper-annotated, counter-aware binary
/// appends to stdout when the corresponding environment variables are
/// set (the ramble modifiers' contract).
void append_annotations(const SystemDescription& system,
                        const RunParams& params, RunOutcome& outcome) {
  if (!outcome.success) return;
  double elapsed = outcome.elapsed_seconds;
  if (params.env.count("CALI_CONFIG")) {
    // A simple two-region split: kernel-dominant with an MPI tail that
    // grows with rank count (consistent with the collective model).
    double mpi_share =
        params.n_ranks > 1
            ? std::min(0.35, 0.02 * std::log2((double)params.n_ranks))
            : 0.0;
    double kernel = elapsed * (1.0 - mpi_share) * 0.92;
    double mpi = elapsed * mpi_share;
    outcome.output += "caliper: region profile\n";
    outcome.output += "main " + format_double(elapsed, 6) + " s\n";
    outcome.output += "main/kernel " + format_double(kernel, 6) + " s\n";
    if (mpi > 0) {
      outcome.output += "main/mpi " + format_double(mpi, 6) + " s\n";
    }
  }
  if (params.env.count("BENCHPARK_PERF_COUNTERS")) {
    // Modeled counters from the node hardware: busy cores x frequency,
    // an IPC drawn from the kernel's memory-boundedness, L3 misses from
    // the bytes the kernel streams.
    int ranks_per_node =
        (params.n_ranks + params.n_nodes - 1) / std::max(1, params.n_nodes);
    int cores = std::min(ranks_per_node * params.n_threads,
                         system.cpu.cores_per_node);
    double cycles = elapsed * system.cpu.ghz * 1e9 * std::max(1, cores);
    double ipc = params.app == "stream" ? 0.6 : 1.4;
    double instructions = cycles * ipc;
    double l3_misses =
        static_cast<double>(params.n) * (params.app == "saxpy" ? 12 : 48) /
        64.0;  // bytes / cache line
    outcome.output += "counter cycles: " +
                      std::to_string(static_cast<long long>(cycles)) + "\n";
    outcome.output += "counter instructions: " +
                      std::to_string(static_cast<long long>(instructions)) +
                      "\n";
    outcome.output += "counter l3_misses: " +
                      std::to_string(static_cast<long long>(l3_misses)) +
                      "\n";
    outcome.output += "counter ipc: " + format_double(ipc, 3) + "\n";
  }
}

}  // namespace

namespace {

RunOutcome run_simulated_impl(const SystemDescription& system,
                              const RunParams& raw_params) {
  RunParams params = normalized(raw_params);
  validate_allocation(system, params);

  // Fault gate for the launch itself (keyed by app, attempt = repetition,
  // so "fail repetition 1 only" plans model a flaky first run). Injected
  // failures surface through the outcome — BSD-style exit 75 (tempfail)
  // for transient, 70 (internal software error) for permanent — never as
  // exceptions, matching how a real scheduler sees a crashed binary.
  double injected_latency = 0.0;
  try {
    injected_latency =
        support::fault_hit("runtime.exec", params.app, params.repetition + 1);
  } catch (const TransientError& e) {
    RunOutcome outcome;
    outcome.success = false;
    outcome.exit_code = 75;
    outcome.output = std::string(e.what()) + "\n";
    return outcome;
  } catch (const PermanentError& e) {
    RunOutcome outcome;
    outcome.success = false;
    outcome.exit_code = 70;
    outcome.output = std::string(e.what()) + "\n";
    return outcome;
  }

  if (params.uses_math_library && !system.disabled_features.empty()) {
    return math_library_crash(system);
  }

  if (auto it = sim_models().find(params.app); it != sim_models().end()) {
    RunOutcome outcome = it->second(system, params);
    outcome.elapsed_seconds += injected_latency;
    append_annotations(system, params, outcome);
    return outcome;
  }

  auto rng = make_rng(system, params);
  RunOutcome outcome;
  if (params.app == "saxpy") {
    outcome = simulate_saxpy(system, params, rng);
  } else if (params.app == "amg2023") {
    outcome = simulate_amg(system, params, rng);
  } else if (params.app == "stream") {
    outcome = simulate_stream(system, params, rng);
  } else if (params.app == "osu-bcast") {
    outcome = simulate_osu_bcast(system, params, rng);
  } else if (params.app == "gemm") {
    outcome = simulate_gemm(system, params, rng);
  } else if (params.app == "ptrans") {
    outcome = simulate_ptrans(system, params, rng);
  } else if (params.app == "fft") {
    outcome = simulate_fft(system, params, rng);
  } else if (params.app == "randomaccess") {
    outcome = simulate_randomaccess(system, params, rng);
  } else if (params.app == "beff") {
    outcome = simulate_beff(system, params, rng);
  } else {
    throw SystemError("no simulation model for application '" + params.app +
                      "'");
  }
  outcome.elapsed_seconds += injected_latency;
  append_annotations(system, params, outcome);
  return outcome;
}

}  // namespace

namespace {

/// Modeled wait before retry `attempt` (1-based): exponential backoff
/// with deterministic jitter keyed on (seed, key, attempt) — the same
/// scheme the installer uses, so chaos runs reproduce identical waits.
double exec_backoff_seconds(const ExecRetryOptions& options,
                            std::string_view key, int attempt) {
  double base = std::max(0.0, options.backoff_base_seconds) *
                std::pow(2.0, attempt - 1);
  support::Rng rng(options.retry_seed ^ support::fnv1a(key) ^
                   (0x9e3779b97f4a7c15ULL *
                    static_cast<std::uint64_t>(attempt)));
  return base * (1.0 + std::max(0.0, options.backoff_jitter) *
                           rng.next_double());
}

}  // namespace

ExecResult run_with_retry(const std::function<RunOutcome()>& run_once,
                          const std::string& key,
                          const ExecRetryOptions& options) {
  const int max_attempts = 1 + std::max(0, options.max_retries);
  ExecResult result;
  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    double injected_latency = 0.0;
    try {
      injected_latency = support::fault_hit("experiment.exec", key, attempt);
    } catch (const TransientError& e) {
      if (attempt >= max_attempts) {
        result.outcome.success = false;
        result.outcome.exit_code = 75;  // EX_TEMPFAIL: retries exhausted
        result.outcome.output = std::string(e.what()) + "\n";
        return result;
      }
      result.retry_wait_seconds += exec_backoff_seconds(options, key, attempt);
      continue;
    } catch (const PermanentError& e) {
      result.outcome.success = false;
      result.outcome.exit_code = 70;  // EX_SOFTWARE: not worth retrying
      result.outcome.output = std::string(e.what()) + "\n";
      return result;
    }
    RunOutcome outcome = run_once();
    outcome.elapsed_seconds += injected_latency;
    if (!outcome.success && outcome.exit_code == 75 &&
        attempt < max_attempts) {
      // The run itself reported a transient failure (e.g. the
      // "runtime.exec" fault site) — retry it like a flaky node.
      result.retry_wait_seconds += exec_backoff_seconds(options, key, attempt);
      continue;
    }
    result.outcome = std::move(outcome);
    return result;
  }
}

RunOutcome run_simulated(const SystemDescription& system,
                         const RunParams& raw_params) {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(
      collector,
      collector.enabled() ? "exec:" + raw_params.app : std::string(),
      "runtime");
  RunOutcome outcome = run_simulated_impl(system, raw_params);
  if (span.active()) {
    span.annotate("success", outcome.success ? "1" : "0");
    span.annotate("exit_code", std::to_string(outcome.exit_code));
    // Elapsed time is simulated, so it lands as a modeled span: wall
    // clock never sees it, TraceDiff attributes it separately.
    collector.emit_span("exec.elapsed", "runtime", outcome.elapsed_seconds,
                        {{"app", raw_params.app}});
  }
  return outcome;
}

RunOutcome run_native(const RunParams& raw_params) {
  RunParams params = normalized(raw_params);
  RunOutcome outcome;
  if (params.app == "saxpy") {
    auto r = benchmarks::run_saxpy(params.n, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = r.elapsed_seconds;
    outcome.output = benchmarks::saxpy_output(r);
    return outcome;
  }
  if (params.app == "stream") {
    auto r = benchmarks::run_stream(params.n, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = 0;
    outcome.output = benchmarks::stream_output(r);
    return outcome;
  }
  if (params.app == "amg2023") {
    benchmarks::MultigridOptions options;
    options.n = params.n;
    options.threads = params.n_threads;
    auto r = benchmarks::solve_poisson_multigrid(options);
    outcome.success = r.converged;
    outcome.elapsed_seconds = r.setup_seconds + r.solve_seconds;
    outcome.output = benchmarks::multigrid_output(r);
    return outcome;
  }
  if (params.app == "gemm") {
    auto r = benchmarks::run_gemm(params.n, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = r.elapsed_seconds;
    outcome.output = benchmarks::gemm_output(r);
    return outcome;
  }
  if (params.app == "ptrans") {
    auto r = benchmarks::run_ptrans(params.n, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = r.elapsed_seconds;
    outcome.output = benchmarks::ptrans_output(r);
    return outcome;
  }
  if (params.app == "fft") {
    auto r = benchmarks::run_fft(params.n, 8, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = r.elapsed_seconds;
    outcome.output = benchmarks::fft_output(r);
    return outcome;
  }
  if (params.app == "randomaccess") {
    // params.n carries the table size; clamp to a sane power-of-two log.
    std::size_t log2_size = 10;
    while ((std::uint64_t{1} << (log2_size + 1)) <= params.n &&
           log2_size < 24) {
      ++log2_size;
    }
    auto r = benchmarks::run_randomaccess(log2_size, params.n_threads);
    outcome.success = r.verified;
    outcome.elapsed_seconds = r.elapsed_seconds;
    outcome.output = benchmarks::randomaccess_output(r);
    return outcome;
  }
  if (params.app == "beff") {
    // The sweep itself is a model; natively it runs against the host's
    // detected system description.
    auto r = system::run_beff(system::make_native(), params.n_ranks);
    outcome.success = true;
    outcome.elapsed_seconds = r.sweep_seconds;
    outcome.output = system::beff_output(r);
    return outcome;
  }
  throw SystemError("application '" + params.app +
                    "' has no native implementation");
}

}  // namespace benchpark::runtime
