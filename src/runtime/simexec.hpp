// Simulated (and native) benchmark execution.
//
// `run_simulated` models what a benchmark binary would print when launched
// on one of the registry systems with a given allocation: compute phases
// come from the system's roofline model, communication from the collective
// model, and run-to-run noise from the system's seeded RNG — so the same
// experiment on the same system reproduces identical output (functional
// reproducibility), while different systems produce the cross-system
// performance differences the paper's workflow exists to compare.
//
// `run_native` runs the real kernels in-process on the host machine.
//
// The Section 7.1 cloud story is modeled too: a benchmark that links the
// vendor math library dies with an illegal-instruction error on a system
// whose hardware lacks a feature the library probes for.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

namespace benchpark::runtime {

struct RunParams {
  std::string app;     // "saxpy", "amg2023", "stream", "osu-bcast"
  std::uint64_t n = 0; // problem size (elements or grid points/dim)
  int n_nodes = 1;
  int n_ranks = 1;
  int n_threads = 1;
  bool use_gpu = false;
  /// Links the system's vendor math library (BLAS); amg2023 does.
  bool uses_math_library = false;
  /// Extra salt so repeated experiments see fresh noise.
  std::uint64_t repetition = 0;
  /// Environment the job runs with. Annotation-aware binaries react to
  /// CALI_CONFIG (Caliper region profile on stdout) and
  /// BENCHPARK_PERF_COUNTERS (modeled hardware counters) — the hooks the
  /// ramble modifiers use.
  std::map<std::string, std::string> env;
};

struct RunOutcome {
  bool success = false;
  int exit_code = 0;
  double elapsed_seconds = 0;   // modeled (or real) wall time
  std::string output;           // what the job printed
};

/// Retry knobs for the "experiment.exec" fault site (same backoff
/// contract as install::InstallOptions: attempt k waits
/// backoff_base_seconds * 2^(k-1) plus deterministic jitter keyed on
/// (retry_seed, key, attempt), so parallel and serial runs report the
/// same waits byte for byte).
struct ExecRetryOptions {
  /// Transient failures retried this many times (attempts = 1 + retries).
  int max_retries = 2;
  double backoff_base_seconds = 0.25;
  double backoff_jitter = 0.25;
  std::uint64_t retry_seed = 0xb5eedULL;
};

/// What one retried execution produced.
struct ExecResult {
  RunOutcome outcome;
  int attempts = 1;
  /// Total modeled backoff wait (never wall-clock).
  double retry_wait_seconds = 0;
};

/// Run `run_once` through the "experiment.exec" fault site keyed by
/// `key` (the experiment name) with retry/backoff. Transient injected
/// faults and transient run outcomes (exit 75, EX_TEMPFAIL) are retried
/// up to the attempt budget, then surface as the final failed outcome;
/// permanent faults fail immediately with exit 70. Injected latency is
/// added to the outcome's modeled elapsed time. Every decision is a pure
/// function of (plan seed, key, attempt), so results are identical no
/// matter how many experiments run concurrently.
ExecResult run_with_retry(const std::function<RunOutcome()>& run_once,
                          const std::string& key,
                          const ExecRetryOptions& options = {});

/// Fill derived defaults (uses_math_library by app name) and validate.
RunParams normalized(RunParams params);

/// Model a run on `system`. Throws SystemError for impossible requests
/// (more ranks than cores, GPUs on a CPU-only machine).
RunOutcome run_simulated(const system::SystemDescription& system,
                         const RunParams& params);

/// Actually run the kernel on this machine (saxpy/stream/amg2023 only).
RunOutcome run_native(const RunParams& params);

/// A pluggable simulation model for an application. Registered models are
/// consulted before the builtins, so adding a benchmark to Benchpark
/// (Section 4) needs no changes to this module: supply the app
/// definition, the package recipe, and a model.
using SimModel = std::function<RunOutcome(
    const system::SystemDescription&, const RunParams&)>;

void register_sim_model(const std::string& app, SimModel model);
[[nodiscard]] bool has_sim_model(const std::string& app);

}  // namespace benchpark::runtime
