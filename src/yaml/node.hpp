// YAML document model.
//
// Benchpark configs (spack.yaml, ramble.yaml, variables.yaml,
// compilers.yaml, packages.yaml, .gitlab-ci.yml) use a small YAML subset:
// block maps, block sequences, flow sequences, scalars with optional
// quoting, and comments. This node type models exactly that. Maps preserve
// insertion order so emitted configs diff cleanly against their inputs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace benchpark::yaml {

class Node;

/// Ordered map preserving insertion order with O(log n) lookup.
class OrderedMap {
public:
  using value_type = std::pair<std::string, Node>;

  Node& operator[](const std::string& key);
  [[nodiscard]] const Node* find(std::string_view key) const;
  [[nodiscard]] Node* find(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  [[nodiscard]] auto begin() const { return items_.begin(); }
  [[nodiscard]] auto end() const { return items_.end(); }
  [[nodiscard]] auto begin() { return items_.begin(); }
  [[nodiscard]] auto end() { return items_.end(); }

  bool erase(std::string_view key);

private:
  std::vector<value_type> items_;
};

/// A YAML node: null, scalar (string-typed; callers convert), sequence,
/// or mapping.
class Node {
public:
  enum class Kind { null, scalar, sequence, mapping };

  Node() = default;
  /* implicit */ Node(std::string scalar);
  /* implicit */ Node(const char* scalar);
  /* implicit */ Node(long long value);
  /* implicit */ Node(int value);
  /* implicit */ Node(double value);
  /* implicit */ Node(bool value);

  static Node make_sequence();
  static Node make_mapping();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
  [[nodiscard]] bool is_scalar() const { return kind_ == Kind::scalar; }
  [[nodiscard]] bool is_sequence() const { return kind_ == Kind::sequence; }
  [[nodiscard]] bool is_mapping() const { return kind_ == Kind::mapping; }

  // -- scalar access ---------------------------------------------------
  /// Raw scalar string; throws YamlError if not a scalar.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] bool as_bool() const;

  /// Scalar with fallback when node is null/missing-typed.
  [[nodiscard]] std::string as_string_or(const std::string& fallback) const;
  [[nodiscard]] long long as_int_or(long long fallback) const;
  [[nodiscard]] bool as_bool_or(bool fallback) const;

  // -- sequence access -------------------------------------------------
  [[nodiscard]] const std::vector<Node>& items() const;
  std::vector<Node>& items_mut();
  void push_back(Node child);
  [[nodiscard]] std::size_t size() const;

  /// Sequence of scalars as strings; a scalar node yields a 1-vector.
  [[nodiscard]] std::vector<std::string> as_string_list() const;

  // -- mapping access --------------------------------------------------
  [[nodiscard]] const OrderedMap& map() const;
  OrderedMap& map_mut();

  /// Child by key; returns a shared null node if absent or not a mapping.
  [[nodiscard]] const Node& at(std::string_view key) const;
  /// Child by key, creating intermediate mapping as needed.
  Node& operator[](const std::string& key);
  [[nodiscard]] bool has(std::string_view key) const;

  /// Deep path lookup "a.b.c"; returns null node when any hop is missing.
  [[nodiscard]] const Node& path(std::string_view dotted) const;

  bool operator==(const Node& other) const;

private:
  Kind kind_ = Kind::null;
  std::string scalar_;
  std::vector<Node> sequence_;
  OrderedMap mapping_;
};

/// The canonical shared null node (kind() == null).
const Node& null_node();

}  // namespace benchpark::yaml
