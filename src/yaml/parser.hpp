// Parser for the YAML subset used by benchpark configuration files.
//
// Supported constructs (sufficient for every config in the paper):
//   * block mappings with arbitrary nesting
//   * block sequences (`- item`), including sequences of mappings
//   * flow sequences (`[a, b, c]`)
//   * single- and double-quoted scalars; plain scalars
//   * full-line and trailing `#` comments
//   * empty values (null nodes)
//
// Not supported (rejected with YamlError): anchors/aliases, multi-doc
// streams, block scalars (| and >), flow mappings, tabs for indentation.
#pragma once

#include <string>
#include <string_view>

#include "src/yaml/node.hpp"

namespace benchpark::yaml {

/// Parse a YAML document; the result is a mapping, sequence, or scalar.
/// Throws YamlError with a line number on malformed input.
Node parse(std::string_view text);

/// Parse the file at `path` (convenience wrapper).
Node parse_file(const std::string& path);

}  // namespace benchpark::yaml
