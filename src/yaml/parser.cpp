#include "src/yaml/parser.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::yaml {

namespace {

using support::trim;

struct Line {
  int number = 0;       // 1-based source line
  int indent = 0;       // leading spaces
  std::string content;  // text after indent, comments stripped
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw YamlError("yaml:" + std::to_string(line) + ": " + message);
}

/// Strip a trailing comment that is not inside quotes. A '#' only starts a
/// comment at line start or after whitespace (YAML rule).
std::string strip_comment(std::string_view s) {
  char quote = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (quote) {
      if (quote == '"' && c == '\\') {
        ++i;  // escaped char inside a double-quoted string
        continue;
      }
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return std::string(s.substr(0, i));
    }
  }
  return std::string(s);
}

std::vector<Line> logical_lines(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  for (const auto& raw : support::split(text, '\n')) {
    ++number;
    std::string no_comment = strip_comment(raw);
    std::size_t indent = 0;
    while (indent < no_comment.size() && no_comment[indent] == ' ') ++indent;
    if (indent < no_comment.size() && no_comment[indent] == '\t') {
      fail(number, "tabs are not allowed for indentation");
    }
    std::string content = trim(no_comment);
    if (content.empty()) continue;
    if (content == "---") continue;  // single-document marker, ignore
    if (content[0] == '&' || content[0] == '*') {
      fail(number, "anchors/aliases are not supported");
    }
    lines.push_back({number, static_cast<int>(indent), std::move(content)});
  }
  return lines;
}

class Parser {
public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Node parse_document() {
    if (lines_.empty()) return Node{};
    Node result = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) {
      fail(lines_[pos_].number, "unexpected content after document");
    }
    return result;
  }

private:
  [[nodiscard]] bool done() const { return pos_ >= lines_.size(); }
  [[nodiscard]] const Line& peek() const { return lines_[pos_]; }

  /// Parse the block starting at the current line, which must be indented
  /// exactly `indent`.
  Node parse_block(int indent) {
    const Line& first = peek();
    if (first.indent != indent) {
      fail(first.number, "unexpected indentation");
    }
    if (is_sequence_item(first.content)) return parse_sequence(indent);
    auto key_split = split_key(first.content);
    if (key_split) return parse_mapping(indent);
    // A plain scalar document/value.
    Node scalar(parse_scalar(first.content, first.number));
    ++pos_;
    return scalar;
  }

  static bool is_sequence_item(const std::string& content) {
    return content == "-" || support::starts_with(content, "- ");
  }

  /// Split "key: value" / "key:" respecting quoted keys. Returns
  /// {key, rest-after-colon} or nullopt if the line is not a mapping entry.
  static std::optional<std::pair<std::string, std::string>> split_key(
      const std::string& content) {
    std::size_t i = 0;
    if (!content.empty() && (content[0] == '\'' || content[0] == '"')) {
      const char quote = content[0];
      // Find the closing quote respecting the quote style's escapes (''
      // doubling in single quotes, backslash in double quotes) so quoted
      // keys containing quote characters survive.
      i = 1;
      while (i < content.size()) {
        char c = content[i];
        if (quote == '\'' && c == '\'') {
          if (i + 1 < content.size() && content[i + 1] == '\'') {
            i += 2;
            continue;
          }
          break;  // closing quote
        }
        if (quote == '"' && c == '"') break;
        if (quote == '"' && c == '\\') {
          i += 2;
          continue;
        }
        ++i;
      }
      if (i >= content.size()) return std::nullopt;  // unterminated quote
      if (i + 1 >= content.size() || content[i + 1] != ':') {
        return std::nullopt;
      }
      // Decode through parse_quoted so escapes in the key text ("\n",
      // '' doubling) become the characters they stand for.
      std::size_t j = 0;
      std::string key = parse_quoted(content.substr(0, i + 1), j, 0);
      std::string rest =
          i + 2 < content.size() ? trim(content.substr(i + 2)) : "";
      return {{key, rest}};
    }
    for (; i < content.size(); ++i) {
      char c = content[i];
      if (c == ':' &&
          (i + 1 == content.size() || content[i + 1] == ' ')) {
        std::string key = trim(content.substr(0, i));
        if (key.empty()) return std::nullopt;
        std::string rest =
            i + 1 < content.size() ? trim(content.substr(i + 1)) : "";
        return {{key, rest}};
      }
      // Keys never contain these; bail out so URLs ("http://x") and specs
      // are treated as scalars.
      if (c == ' ' || c == '\'' || c == '"' || c == '[') return std::nullopt;
      // A line opening with '{' is a flow mapping, not a key (but braces
      // may appear inside keys, e.g. ramble experiment templates).
      if (c == '{' && i == 0) return std::nullopt;
    }
    return std::nullopt;
  }

  Node parse_sequence(int indent) {
    Node seq = Node::make_sequence();
    while (!done() && peek().indent == indent &&
           is_sequence_item(peek().content)) {
      Line line = peek();
      std::string rest =
          line.content == "-" ? "" : trim(line.content.substr(2));
      // Indent of content inside this item ("- " is two columns wide).
      int item_indent = indent + 2;
      if (rest.empty()) {
        ++pos_;
        if (!done() && peek().indent > indent) {
          seq.push_back(parse_block(peek().indent));
        } else {
          seq.push_back(Node{});
        }
        continue;
      }
      auto key_split = split_key(rest);
      if (key_split) {
        // "- key: value" — a mapping starting inline; subsequent keys sit
        // at item_indent. Rewrite the current line and parse a mapping.
        lines_[pos_].indent = item_indent;
        lines_[pos_].content = rest;
        seq.push_back(parse_mapping(item_indent));
      } else {
        seq.push_back(parse_scalar(rest, line.number));
        ++pos_;
      }
    }
    return seq;
  }

  Node parse_mapping(int indent) {
    Node map = Node::make_mapping();
    while (!done() && peek().indent == indent &&
           !is_sequence_item(peek().content)) {
      Line line = peek();
      auto key_split = split_key(line.content);
      if (!key_split) fail(line.number, "expected 'key: value'");
      auto& [key, rest] = *key_split;
      if (map.has(key)) fail(line.number, "duplicate key '" + key + "'");
      if (!rest.empty()) {
        map[key] = parse_scalar(rest, line.number);
        ++pos_;
        continue;
      }
      ++pos_;
      if (!done() && peek().indent > indent) {
        map[key] = parse_block(peek().indent);
      } else if (!done() && peek().indent == indent &&
                 is_sequence_item(peek().content)) {
        // Sequences are commonly indented at the same level as their key.
        map[key] = parse_sequence(indent);
      } else {
        map[key] = Node{};
      }
    }
    return map;
  }

  /// Parse an inline value: quoted scalar, flow collection (sequences
  /// and mappings, so one-line JSON documents parse), or plain scalar.
  Node parse_scalar(const std::string& text, int line_number) {
    if (text.empty()) return Node{};
    if (text[0] == '[' || text[0] == '{') {
      std::size_t i = 0;
      Node node = parse_flow_value(text, i, line_number);
      skip_flow_ws(text, i);
      if (i != text.size()) {
        fail(line_number, "unexpected content after flow collection");
      }
      return node;
    }
    if (text[0] == '|' || text[0] == '>') {
      fail(line_number, "block scalars are not supported");
    }
    return Node(unquote(text, line_number));
  }

  static void skip_flow_ws(const std::string& text, std::size_t& i) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  }

  /// One value inside a flow context: nested collection, quoted scalar,
  /// or plain scalar running up to the next ','/']'/'}'.
  Node parse_flow_value(const std::string& text, std::size_t& i,
                        int line_number) {
    skip_flow_ws(text, i);
    if (i >= text.size()) fail(line_number, "unexpected end of flow value");
    char c = text[i];
    if (c == '[') return parse_flow_sequence(text, i, line_number);
    if (c == '{') return parse_flow_mapping(text, i, line_number);
    if (c == '\'' || c == '"') {
      return Node(parse_quoted(text, i, line_number));
    }
    std::size_t start = i;
    while (i < text.size() && text[i] != ',' && text[i] != ']' &&
           text[i] != '}') {
      ++i;
    }
    std::string scalar = trim(text.substr(start, i - start));
    if (scalar.empty()) fail(line_number, "empty flow scalar");
    return Node(std::move(scalar));
  }

  Node parse_flow_sequence(const std::string& text, std::size_t& i,
                           int line_number) {
    ++i;  // consume '['
    Node seq = Node::make_sequence();
    skip_flow_ws(text, i);
    if (i < text.size() && text[i] == ']') {
      ++i;
      return seq;
    }
    for (;;) {
      seq.push_back(parse_flow_value(text, i, line_number));
      skip_flow_ws(text, i);
      if (i >= text.size()) fail(line_number, "unterminated flow sequence");
      if (text[i] == ',') {
        ++i;
        continue;
      }
      if (text[i] == ']') {
        ++i;
        return seq;
      }
      fail(line_number, "expected ',' or ']' in flow sequence");
    }
  }

  Node parse_flow_mapping(const std::string& text, std::size_t& i,
                          int line_number) {
    ++i;  // consume '{'
    Node map = Node::make_mapping();
    skip_flow_ws(text, i);
    if (i < text.size() && text[i] == '}') {
      ++i;
      return map;
    }
    for (;;) {
      skip_flow_ws(text, i);
      if (i >= text.size()) fail(line_number, "unterminated flow mapping");
      std::string key;
      if (text[i] == '\'' || text[i] == '"') {
        key = parse_quoted(text, i, line_number);
      } else {
        std::size_t start = i;
        while (i < text.size() && text[i] != ':' && text[i] != ',' &&
               text[i] != '}') {
          ++i;
        }
        key = trim(text.substr(start, i - start));
      }
      skip_flow_ws(text, i);
      if (i >= text.size() || text[i] != ':') {
        fail(line_number, "expected ':' after flow mapping key");
      }
      ++i;  // consume ':'
      if (map.has(key)) {
        fail(line_number, "duplicate key '" + key + "'");
      }
      skip_flow_ws(text, i);
      if (i < text.size() && (text[i] == ',' || text[i] == '}')) {
        map[key] = Node{};  // empty value
      } else {
        map[key] = parse_flow_value(text, i, line_number);
      }
      skip_flow_ws(text, i);
      if (i >= text.size()) fail(line_number, "unterminated flow mapping");
      if (text[i] == ',') {
        ++i;
        continue;
      }
      if (text[i] == '}') {
        ++i;
        return map;
      }
      fail(line_number, "expected ',' or '}' in flow mapping");
    }
  }

  /// A quoted scalar starting at text[i]; advances i past the closing
  /// quote. Single quotes escape via ''; double quotes via backslash.
  static std::string parse_quoted(const std::string& text, std::size_t& i,
                                  int line_number) {
    const char quote = text[i++];
    std::string out;
    while (i < text.size()) {
      char c = text[i];
      if (quote == '\'') {
        if (c == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            out.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          return out;
        }
        out.push_back(c);
        ++i;
        continue;
      }
      if (c == '"') {
        ++i;
        return out;
      }
      if (c == '\\') {
        decode_escape(text, i, line_number, out);
        continue;
      }
      out.push_back(c);
      ++i;
    }
    fail(line_number, "unterminated quoted scalar");
  }

  /// Decode the backslash escape at text[i] (JSON / double-quoted YAML),
  /// appending to `out` and advancing i. Unknown escapes are preserved
  /// verbatim (backslash included) for backward compatibility.
  static void decode_escape(const std::string& text, std::size_t& i,
                            int line_number, std::string& out) {
    if (i + 1 >= text.size()) fail(line_number, "dangling escape");
    char e = text[i + 1];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        if (i + 6 > text.size()) fail(line_number, "truncated \\u escape");
        unsigned code = 0;
        for (int k = 2; k < 6; ++k) {
          char h = text[i + static_cast<std::size_t>(k)];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            fail(line_number, "bad \\u escape digit");
          }
        }
        // UTF-8 encode (BMP only; surrogate pairs unsupported).
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        i += 6;
        return;
      }
      default:
        out.push_back('\\');
        out.push_back(e);
    }
    i += 2;
  }

  static std::string unquote(const std::string& text, int line_number) {
    if (text.size() >= 2 &&
        (text.front() == '\'' || text.front() == '"') &&
        text.back() == text.front()) {
      std::size_t i = 0;
      std::string out = parse_quoted(text, i, line_number);
      if (i != text.size()) {
        fail(line_number, "unexpected content after quoted scalar");
      }
      return out;
    }
    if (!text.empty() && (text.front() == '\'' || text.front() == '"')) {
      fail(line_number, "unterminated quoted scalar");
    }
    return text;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Node parse(std::string_view text) {
  return Parser(logical_lines(text)).parse_document();
}

Node parse_file(const std::string& path) {
  return parse(support::read_file(path));
}

}  // namespace benchpark::yaml
