#include "src/yaml/node.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::yaml {

using support::format_double;
using support::to_lower;

// ---------------------------------------------------------------- OrderedMap

Node& OrderedMap::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Node{});
  return items_.back().second;
}

const Node* OrderedMap::find(std::string_view key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Node* OrderedMap::find(std::string_view key) {
  for (auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool OrderedMap::contains(std::string_view key) const {
  return find(key) != nullptr;
}

bool OrderedMap::erase(std::string_view key) {
  auto it = std::find_if(items_.begin(), items_.end(),
                         [&](const value_type& kv) { return kv.first == key; });
  if (it == items_.end()) return false;
  items_.erase(it);
  return true;
}

// ---------------------------------------------------------------------- Node

Node::Node(std::string scalar)
    : kind_(Kind::scalar), scalar_(std::move(scalar)) {}

Node::Node(const char* scalar) : kind_(Kind::scalar), scalar_(scalar) {}

Node::Node(long long value)
    : kind_(Kind::scalar), scalar_(std::to_string(value)) {}

Node::Node(int value) : kind_(Kind::scalar), scalar_(std::to_string(value)) {}

Node::Node(double value)
    : kind_(Kind::scalar), scalar_(format_double(value, 15)) {}

Node::Node(bool value) : kind_(Kind::scalar), scalar_(value ? "true" : "false") {}

Node Node::make_sequence() {
  Node n;
  n.kind_ = Kind::sequence;
  return n;
}

Node Node::make_mapping() {
  Node n;
  n.kind_ = Kind::mapping;
  return n;
}

const std::string& Node::as_string() const {
  if (kind_ != Kind::scalar) throw YamlError("node is not a scalar");
  return scalar_;
}

long long Node::as_int() const { return support::parse_int(as_string()); }

double Node::as_double() const { return support::parse_double(as_string()); }

bool Node::as_bool() const {
  auto s = to_lower(as_string());
  if (s == "true" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "no" || s == "off") return false;
  throw YamlError("not a boolean: '" + as_string() + "'");
}

std::string Node::as_string_or(const std::string& fallback) const {
  return is_scalar() ? scalar_ : fallback;
}

long long Node::as_int_or(long long fallback) const {
  return is_scalar() ? as_int() : fallback;
}

bool Node::as_bool_or(bool fallback) const {
  return is_scalar() ? as_bool() : fallback;
}

const std::vector<Node>& Node::items() const {
  if (kind_ != Kind::sequence) throw YamlError("node is not a sequence");
  return sequence_;
}

std::vector<Node>& Node::items_mut() {
  if (kind_ == Kind::null) kind_ = Kind::sequence;
  if (kind_ != Kind::sequence) throw YamlError("node is not a sequence");
  return sequence_;
}

void Node::push_back(Node child) { items_mut().push_back(std::move(child)); }

std::size_t Node::size() const {
  switch (kind_) {
    case Kind::sequence: return sequence_.size();
    case Kind::mapping: return mapping_.size();
    case Kind::null: return 0;
    case Kind::scalar: return 1;
  }
  return 0;
}

std::vector<std::string> Node::as_string_list() const {
  std::vector<std::string> out;
  if (is_scalar()) {
    out.push_back(scalar_);
    return out;
  }
  if (is_null()) return out;
  for (const auto& item : items()) out.push_back(item.as_string());
  return out;
}

const OrderedMap& Node::map() const {
  if (kind_ != Kind::mapping) throw YamlError("node is not a mapping");
  return mapping_;
}

OrderedMap& Node::map_mut() {
  if (kind_ == Kind::null) kind_ = Kind::mapping;
  if (kind_ != Kind::mapping) throw YamlError("node is not a mapping");
  return mapping_;
}

const Node& Node::at(std::string_view key) const {
  if (kind_ != Kind::mapping) return null_node();
  const Node* found = mapping_.find(key);
  return found ? *found : null_node();
}

Node& Node::operator[](const std::string& key) { return map_mut()[key]; }

bool Node::has(std::string_view key) const {
  return kind_ == Kind::mapping && mapping_.contains(key);
}

const Node& Node::path(std::string_view dotted) const {
  const Node* current = this;
  for (const auto& part : support::split(dotted, '.')) {
    current = &current->at(part);
    if (current->is_null()) return null_node();
  }
  return *current;
}

bool Node::operator==(const Node& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::null: return true;
    case Kind::scalar: return scalar_ == other.scalar_;
    case Kind::sequence: return sequence_ == other.sequence_;
    case Kind::mapping: {
      if (mapping_.size() != other.mapping_.size()) return false;
      auto it = other.mapping_.begin();
      for (const auto& [k, v] : mapping_) {
        if (k != it->first || !(v == it->second)) return false;
        ++it;
      }
      return true;
    }
  }
  return false;
}

const Node& null_node() {
  static const Node instance;
  return instance;
}

}  // namespace benchpark::yaml
