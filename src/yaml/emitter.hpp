// Emitter turning a Node tree back into YAML text.
//
// Output round-trips through the parser: parse(emit(n)) == n. Scalars that
// would be ambiguous (contain ':', '#' after whitespace, leading '[', look
// like booleans or dates, or look numeric when the intent is string) are
// single-quoted; scalars with control characters (newlines, tabs) use the
// double-quoted backslash-escape style, the only form that survives the
// line-oriented parser.
#pragma once

#include <string>

#include "src/yaml/node.hpp"

namespace benchpark::yaml {

struct EmitOptions {
  int indent_width = 2;
  /// Quote scalars that parse as numbers (Ramble configs quote '8').
  bool quote_numeric_strings = false;
};

std::string emit(const Node& node, const EmitOptions& options = {});

}  // namespace benchpark::yaml
