#include "src/yaml/emitter.hpp"

#include <cctype>
#include <cstdio>

#include "src/support/string_util.hpp"

namespace benchpark::yaml {

namespace {

using support::contains;
using support::repeat;

/// Control characters (newline, tab, ...) cannot survive a plain or
/// single-quoted emission: the parser splits on '\n' and trims tabs, so
/// these scalars must use the double-quoted backslash-escape style.
bool has_control_char(const std::string& s) {
  for (unsigned char c : s) {
    if (c < 0x20 || c == 0x7f) return true;
  }
  return false;
}

/// The parser starts a comment at any '#' preceded by a space OR a tab
/// (or at column 0); quoting must match that exactly, not just " #".
bool comment_would_truncate(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return true;
    }
  }
  return false;
}

/// YAML 1.1 timestamp shapes ("2023-01-01", optionally a time part after
/// ' ' or 'T'). Our parser keeps them as strings, but typed YAML readers
/// coerce them to dates, so persisted keys must quote them.
bool looks_like_date(const std::string& s) {
  auto digits = [&](std::size_t pos, std::size_t n) {
    if (pos + n > s.size()) return false;
    for (std::size_t k = 0; k < n; ++k) {
      if (!std::isdigit(static_cast<unsigned char>(s[pos + k]))) return false;
    }
    return true;
  };
  if (!digits(0, 4) || s.size() < 10) return false;
  if (s[4] != '-' || !digits(5, 2) || s[7] != '-' || !digits(8, 2)) {
    return false;
  }
  return s.size() == 10 || s[10] == ' ' || s[10] == 'T';
}

std::string double_quoted(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += "\"";
  return out;
}

std::string quoted(const std::string& s) {
  // Single-quoted with '' doubling when possible; control characters
  // force the double-quoted escape style (single quotes have no escapes).
  if (has_control_char(s)) return double_quoted(s);
  return "'" + support::replace_all(s, "'", "''") + "'";
}

bool needs_quoting(const std::string& s, const EmitOptions& options) {
  if (s.empty()) return true;
  if (has_control_char(s)) return true;
  if (options.quote_numeric_strings &&
      (support::looks_like_int(s) || support::looks_like_double(s))) {
    return true;
  }
  auto lower = support::to_lower(s);
  if (lower == "true" || lower == "false" || lower == "null" ||
      lower == "yes" || lower == "no" || lower == "on" || lower == "off" ||
      lower == "~") {
    return true;
  }
  if (looks_like_date(s)) return true;
  if (std::isspace(static_cast<unsigned char>(s.front())) ||
      std::isspace(static_cast<unsigned char>(s.back()))) {
    return true;
  }
  switch (s.front()) {
    case '[': case ']': case '{': case '}': case '#': case '&': case '*':
    case '!': case '|': case '>': case '\'': case '"': case '%': case '@':
    case '-':
      // '-' only ambiguous as "- "; negative numbers are fine.
      if (s.front() == '-' && s.size() > 1 && s[1] != ' ') break;
      if (s.front() == '@' || s.front() == '%') break;  // spec syntax is safe
      return true;
    default: break;
  }
  if (contains(s, ": ") || support::ends_with(s, ":")) return true;
  if (comment_would_truncate(s)) return true;
  return false;
}

std::string scalar_text(const std::string& s, const EmitOptions& options) {
  return needs_quoting(s, options) ? quoted(s) : s;
}

bool key_needs_quoting(const std::string& s) {
  if (s.empty()) return true;
  if (has_control_char(s)) return true;
  // "-" is a sequence item, "---" a document marker; either eats the line.
  if (s == "-" || s == "---") return true;
  // split_key bails out on these anywhere in a plain key, and '#' would
  // start a comment; ']'/'}' confuse flow detection at the front.
  if (contains(s, ":") || contains(s, " ") || contains(s, "#") ||
      contains(s, "'") || contains(s, "\"") || contains(s, "[")) {
    return true;
  }
  if (std::isspace(static_cast<unsigned char>(s.front())) ||
      std::isspace(static_cast<unsigned char>(s.back()))) {
    return true;
  }
  switch (s.front()) {
    // '{' opens a flow mapping at column 0; '&'/'*' are rejected as
    // anchors; the rest are YAML indicators a strict reader refuses.
    case '{': case '}': case ']': case '&': case '*': case '!': case '|':
    case '>': case '%': case '@': case ',': case '?':
      return true;
    default: break;
  }
  auto lower = support::to_lower(s);
  if (lower == "true" || lower == "false" || lower == "null" ||
      lower == "yes" || lower == "no" || lower == "on" || lower == "off") {
    return true;
  }
  if (looks_like_date(s)) return true;
  return false;
}

std::string key_text(const std::string& s) {
  return key_needs_quoting(s) ? quoted(s) : s;
}

void emit_node(const Node& node, int depth, const EmitOptions& options,
               std::string& out);

void emit_child(const Node& child, int depth, const EmitOptions& options,
                std::string& out) {
  // A nested container goes on following lines; scalars stay inline.
  if (child.is_scalar()) {
    out += " " + scalar_text(child.as_string(), options) + "\n";
  } else if (child.is_null()) {
    out += "\n";
  } else if (child.size() == 0) {
    out += child.is_mapping() ? " {}\n" : " []\n";
  } else {
    out += "\n";
    emit_node(child, depth + 1, options, out);
  }
}

void emit_node(const Node& node, int depth, const EmitOptions& options,
               std::string& out) {
  const std::string pad = repeat(" ", options.indent_width * depth);
  switch (node.kind()) {
    case Node::Kind::null:
      break;
    case Node::Kind::scalar:
      out += pad + scalar_text(node.as_string(), options) + "\n";
      break;
    case Node::Kind::sequence:
      for (const auto& item : node.items()) {
        if (item.is_scalar()) {
          out += pad + "- " + scalar_text(item.as_string(), options) + "\n";
        } else if (item.is_null()) {
          out += pad + "-\n";
        } else if (item.size() == 0) {
          // A bare "-" would re-parse as null, losing the container kind.
          out += pad + (item.is_mapping() ? "- {}\n" : "- []\n");
        } else if (item.is_mapping() && item.size() > 0) {
          // "- key: value" inline first pair, rest indented.
          bool first = true;
          for (const auto& [k, v] : item.map()) {
            if (first) {
              out += pad + "- " + key_text(k) + ":";
              emit_child(v, depth + 1, options, out);
              first = false;
            } else {
              out += pad + "  " + key_text(k) + ":";
              emit_child(v, depth + 1, options, out);
            }
          }
        } else {
          out += pad + "-\n";
          emit_node(item, depth + 1, options, out);
        }
      }
      break;
    case Node::Kind::mapping:
      for (const auto& [k, v] : node.map()) {
        out += pad + key_text(k) + ":";
        emit_child(v, depth, options, out);
      }
      break;
  }
}

}  // namespace

std::string emit(const Node& node, const EmitOptions& options) {
  std::string out;
  emit_node(node, 0, options, out);
  return out;
}

}  // namespace benchpark::yaml
