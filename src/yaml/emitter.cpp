#include "src/yaml/emitter.hpp"

#include <cctype>

#include "src/support/string_util.hpp"

namespace benchpark::yaml {

namespace {

using support::contains;
using support::repeat;

bool needs_quoting(const std::string& s, const EmitOptions& options) {
  if (s.empty()) return true;
  if (options.quote_numeric_strings &&
      (support::looks_like_int(s) || support::looks_like_double(s))) {
    return true;
  }
  auto lower = support::to_lower(s);
  if (lower == "true" || lower == "false" || lower == "null" ||
      lower == "yes" || lower == "no" || lower == "on" || lower == "off") {
    return true;
  }
  if (std::isspace(static_cast<unsigned char>(s.front())) ||
      std::isspace(static_cast<unsigned char>(s.back()))) {
    return true;
  }
  switch (s.front()) {
    case '[': case ']': case '{': case '}': case '#': case '&': case '*':
    case '!': case '|': case '>': case '\'': case '"': case '%': case '@':
    case '-':
      // '-' only ambiguous as "- "; negative numbers are fine.
      if (s.front() == '-' && s.size() > 1 && s[1] != ' ') break;
      if (s.front() == '@' || s.front() == '%') break;  // spec syntax is safe
      return true;
    default: break;
  }
  if (contains(s, ": ") || support::ends_with(s, ":")) return true;
  if (contains(s, " #")) return true;
  if (contains(s, "\n")) return true;
  return false;
}

std::string quoted(const std::string& s) {
  return "'" + support::replace_all(s, "'", "''") + "'";
}

std::string scalar_text(const std::string& s, const EmitOptions& options) {
  return needs_quoting(s, options) ? quoted(s) : s;
}

std::string key_text(const std::string& s) {
  if (s.empty() || contains(s, ":") || contains(s, " ") ||
      contains(s, "#")) {
    return quoted(s);
  }
  return s;
}

void emit_node(const Node& node, int depth, const EmitOptions& options,
               std::string& out);

void emit_child(const Node& child, int depth, const EmitOptions& options,
                std::string& out) {
  // A nested container goes on following lines; scalars stay inline.
  if (child.is_scalar()) {
    out += " " + scalar_text(child.as_string(), options) + "\n";
  } else if (child.is_null()) {
    out += "\n";
  } else if (child.size() == 0) {
    out += child.is_mapping() ? " {}\n" : " []\n";
  } else {
    out += "\n";
    emit_node(child, depth + 1, options, out);
  }
}

void emit_node(const Node& node, int depth, const EmitOptions& options,
               std::string& out) {
  const std::string pad = repeat(" ", options.indent_width * depth);
  switch (node.kind()) {
    case Node::Kind::null:
      break;
    case Node::Kind::scalar:
      out += pad + scalar_text(node.as_string(), options) + "\n";
      break;
    case Node::Kind::sequence:
      for (const auto& item : node.items()) {
        if (item.is_scalar()) {
          out += pad + "- " + scalar_text(item.as_string(), options) + "\n";
        } else if (item.is_null()) {
          out += pad + "-\n";
        } else if (item.is_mapping() && item.size() > 0) {
          // "- key: value" inline first pair, rest indented.
          bool first = true;
          for (const auto& [k, v] : item.map()) {
            if (first) {
              out += pad + "- " + key_text(k) + ":";
              emit_child(v, depth + 1, options, out);
              first = false;
            } else {
              out += pad + "  " + key_text(k) + ":";
              emit_child(v, depth + 1, options, out);
            }
          }
        } else {
          out += pad + "-\n";
          emit_node(item, depth + 1, options, out);
        }
      }
      break;
    case Node::Kind::mapping:
      for (const auto& [k, v] : node.map()) {
        out += pad + key_text(k) + ":";
        emit_child(v, depth, options, out);
      }
      break;
  }
}

}  // namespace

std::string emit(const Node& node, const EmitOptions& options) {
  std::string out;
  emit_node(node, 0, options, out);
  return out;
}

}  // namespace benchpark::yaml
