#include "src/perf/caliper.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::perf {

namespace {

using Clock = std::chrono::steady_clock;

struct OpenRegion {
  std::string name;
  Clock::time_point start;
  std::uint64_t span_id = 0;  // obs span, 0 when tracing is disabled
};

struct GlobalState {
  std::mutex mutex;
  std::map<std::string, RegionStat> regions;  // by path
  std::map<std::string, std::string> metadata;
};

GlobalState& global() {
  static GlobalState state;
  return state;
}

thread_local std::vector<OpenRegion> t_stack;

std::string current_path() {
  std::string path;
  for (const auto& r : t_stack) {
    if (!path.empty()) path += "/";
    path += r.name;
  }
  return path;
}

}  // namespace

const RegionStat* Profile::find(std::string_view path) const {
  for (const auto& r : regions) {
    if (r.path == path) return &r;
  }
  return nullptr;
}

yaml::Node Profile::to_yaml() const {
  yaml::Node root = yaml::Node::make_mapping();
  yaml::Node list = yaml::Node::make_sequence();
  for (const auto& r : regions) {
    yaml::Node entry = yaml::Node::make_mapping();
    entry["path"] = yaml::Node(r.path);
    entry["count"] = yaml::Node(static_cast<long long>(r.count));
    entry["time"] = yaml::Node(r.inclusive_seconds);
    list.push_back(std::move(entry));
  }
  root["regions"] = std::move(list);
  yaml::Node& meta = root["metadata"];
  meta = yaml::Node::make_mapping();
  for (const auto& [k, v] : metadata) meta[k] = yaml::Node(v);
  return root;
}

Profile Profile::from_yaml(const yaml::Node& node) {
  Profile p;
  if (node.has("regions")) {
    for (const auto& entry : node.at("regions").items()) {
      RegionStat r;
      r.path = entry.at("path").as_string();
      r.count = static_cast<std::uint64_t>(entry.at("count").as_int());
      r.inclusive_seconds = entry.at("time").as_double();
      p.regions.push_back(std::move(r));
    }
  }
  if (node.has("metadata")) {
    for (const auto& [k, v] : node.at("metadata").map()) {
      p.metadata[k] = v.as_string();
    }
  }
  return p;
}

void Caliper::begin(const std::string& name) {
  std::uint64_t span_id = 0;
  auto& collector = obs::TraceCollector::global();
  if (collector.enabled()) span_id = collector.begin_span(name, "caliper");
  t_stack.push_back({name, Clock::now(), span_id});
}

void Caliper::end(const std::string& name) {
  if (t_stack.empty() || t_stack.back().name != name) {
    throw Error("caliper: unbalanced end('" + name + "'); open region is '" +
                (t_stack.empty() ? "<none>" : t_stack.back().name) + "'");
  }
  auto elapsed =
      std::chrono::duration<double>(Clock::now() - t_stack.back().start)
          .count();
  std::string path = current_path();
  if (t_stack.back().span_id != 0) {
    obs::TraceCollector::global().end_span(t_stack.back().span_id);
  }
  t_stack.pop_back();

  auto& state = global();
  std::scoped_lock lock(state.mutex);
  auto& stat = state.regions[path];
  stat.path = path;
  ++stat.count;
  stat.inclusive_seconds += elapsed;
}

void Caliper::record(const std::string& path, double seconds,
                     std::uint64_t count) {
  auto& collector = obs::TraceCollector::global();
  if (collector.enabled()) {
    collector.emit_span(path, "caliper", seconds,
                        {{"count", std::to_string(count)}});
  }
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  auto& stat = state.regions[path];
  stat.path = path;
  stat.count += count;
  stat.inclusive_seconds += seconds;
}

Profile Caliper::snapshot() {
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  Profile p;
  p.regions.reserve(state.regions.size());
  for (const auto& [path, stat] : state.regions) p.regions.push_back(stat);
  p.metadata = state.metadata;
  return p;
}

void Caliper::reset() {
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  state.regions.clear();
  t_stack.clear();
}

void Adiak::collect(const std::string& key, const std::string& value) {
  auto& collector = obs::TraceCollector::global();
  if (collector.enabled()) collector.attach_metadata(key, value);
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  state.metadata[key] = value;
}

void Adiak::collect(const std::string& key, long long value) {
  collect(key, std::to_string(value));
}

void Adiak::collect(const std::string& key, double value) {
  collect(key, support::format_double(value, 12));
}

std::map<std::string, std::string> Adiak::all() {
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  return state.metadata;
}

void Adiak::reset() {
  auto& state = global();
  std::scoped_lock lock(state.mutex);
  state.metadata.clear();
}

}  // namespace benchpark::perf
