// Caliper-like performance annotation (Section 5: "we plan to annotate
// the benchmarks with Caliper, a portable performance profiling library").
//
// Regions nest ("main/solve/residual"); each unique path accumulates an
// inclusive time and a visit count. Collection is always-on (the paper's
// intended configuration) and thread-safe; each thread keeps its own
// region stack and flushes into the global profile on region end.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/yaml/node.hpp"

namespace benchpark::perf {

/// Flat profile entry for one region path.
struct RegionStat {
  std::string path;
  std::uint64_t count = 0;
  double inclusive_seconds = 0;
};

/// A collected profile: region stats plus Adiak-style metadata.
struct Profile {
  std::vector<RegionStat> regions;   // sorted by path
  std::map<std::string, std::string> metadata;

  [[nodiscard]] const RegionStat* find(std::string_view path) const;
  [[nodiscard]] yaml::Node to_yaml() const;
  static Profile from_yaml(const yaml::Node& node);
};

/// Process-global collector (the cali runtime).
class Caliper {
public:
  /// Begin/end a named region on the calling thread. Ends must match
  /// begins LIFO; a mismatched end throws benchpark::Error.
  static void begin(const std::string& name);
  static void end(const std::string& name);

  /// Record an externally measured duration for path (used by the
  /// simulated runtime, where no real time passes).
  static void record(const std::string& path, double seconds,
                     std::uint64_t count = 1);

  /// Snapshot the accumulated profile (with current Adiak metadata).
  [[nodiscard]] static Profile snapshot();
  static void reset();
};

/// RAII region marker: CALI_CXX_MARK_SCOPE equivalent.
class ScopedRegion {
public:
  explicit ScopedRegion(std::string name) : name_(std::move(name)) {
    Caliper::begin(name_);
  }
  ~ScopedRegion() { Caliper::end(name_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

private:
  std::string name_;
};

/// Adiak-like metadata collection (Section 5: "We will use Adiak to
/// collect metadata related to the build settings and execution
/// contexts, enabling filtering and sorting of collected profiles.")
class Adiak {
public:
  static void collect(const std::string& key, const std::string& value);
  static void collect(const std::string& key, long long value);
  static void collect(const std::string& key, double value);
  [[nodiscard]] static std::map<std::string, std::string> all();
  static void reset();
};

}  // namespace benchpark::perf
