#include "src/pkg/repo.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"

namespace benchpark::pkg {

PackageRecipe& Repo::add(PackageRecipe recipe) {
  auto name = recipe.name();
  auto [it, inserted] = packages_.insert_or_assign(name, std::move(recipe));
  (void)inserted;
  return it->second;
}

const PackageRecipe* Repo::find(std::string_view package) const {
  auto it = packages_.find(package);
  return it == packages_.end() ? nullptr : &it->second;
}

std::vector<std::string> Repo::package_names() const {
  std::vector<std::string> names;
  names.reserve(packages_.size());
  for (const auto& [name, recipe] : packages_) names.push_back(name);
  return names;
}

std::vector<const PackageRecipe*> Repo::providers_of(
    std::string_view virtual_name) const {
  std::vector<const PackageRecipe*> providers;
  for (const auto& [name, recipe] : packages_) {
    const auto& virtuals = recipe.provided_virtuals();
    if (std::find(virtuals.begin(), virtuals.end(), virtual_name) !=
        virtuals.end()) {
      providers.push_back(&recipe);
    }
  }
  return providers;
}

bool Repo::is_virtual(std::string_view name) const {
  return !has(name) && !providers_of(name).empty();
}

std::uint64_t Repo::fingerprint() const {
  support::Hasher h;
  h.update(name_);
  // packages_ is an ordered map, so iteration order — and hence the
  // digest — is stable across runs regardless of insertion order.
  for (const auto& [name, recipe] : packages_) recipe.fingerprint_into(h);
  return h.digest();
}

void RepoStack::push_front(std::shared_ptr<const Repo> repo) {
  repos_.insert(repos_.begin(), std::move(repo));
}

void RepoStack::push_back(std::shared_ptr<const Repo> repo) {
  repos_.push_back(std::move(repo));
}

const PackageRecipe& RepoStack::get(std::string_view package) const {
  const PackageRecipe* found = find(package);
  if (!found) {
    throw PackageError("unknown package '" + std::string(package) + "'");
  }
  return *found;
}

const PackageRecipe* RepoStack::find(std::string_view package) const {
  for (const auto& repo : repos_) {
    if (const auto* recipe = repo->find(package)) return recipe;
  }
  return nullptr;
}

bool RepoStack::has(std::string_view package) const {
  return find(package) != nullptr;
}

bool RepoStack::is_virtual(std::string_view name) const {
  return !has(name) && !providers_of(name).empty();
}

std::vector<const PackageRecipe*> RepoStack::providers_of(
    std::string_view virtual_name) const {
  std::vector<const PackageRecipe*> providers;
  for (const auto& repo : repos_) {
    for (const auto* p : repo->providers_of(virtual_name)) {
      // Shadowed names don't duplicate.
      bool shadowed = std::any_of(
          providers.begin(), providers.end(),
          [&](const PackageRecipe* q) { return q->name() == p->name(); });
      if (!shadowed) providers.push_back(p);
    }
  }
  return providers;
}

std::vector<std::string> RepoStack::package_names() const {
  std::vector<std::string> names;
  for (const auto& repo : repos_) {
    for (auto& name : repo->package_names()) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t RepoStack::fingerprint() const {
  support::Hasher h;
  for (const auto& repo : repos_) h.update(repo->fingerprint());
  return h.digest();
}

// ------------------------------------------------------------- builtin repo

namespace {

void add_build_tools(Repo& repo) {
  repo.add(PackageRecipe("cmake", BuildSystem::bundle))
      .describe("Cross-platform build system generator")
      .version("3.23.1")
      .version("3.24.2")
      .version("3.26.3", /*preferred=*/true)
      .build_cost(120.0);

  repo.add(PackageRecipe("gmake", BuildSystem::bundle))
      .describe("GNU make")
      .version("4.3")
      .version("4.4.1", /*preferred=*/true)
      .build_cost(30.0);

  repo.add(PackageRecipe("python", BuildSystem::autotools))
      .describe("CPython interpreter")
      .version("3.9.12")
      .version("3.10.8")
      .version("3.11.6", /*preferred=*/true)
      .depends_on("zlib")
      .build_cost(240.0);
}

void add_core_libs(Repo& repo) {
  repo.add(PackageRecipe("zlib", BuildSystem::autotools))
      .describe("Compression library")
      .version("1.2.13")
      .version("1.3", /*preferred=*/true)
      .build_cost(8.0);

  repo.add(PackageRecipe("hdf5", BuildSystem::cmake))
      .describe("Hierarchical Data Format library")
      .version("1.12.2")
      .version("1.14.1", /*preferred=*/true)
      .variant("mpi", true, "Enable parallel HDF5")
      .flag_when("mpi", "-DHDF5_ENABLE_PARALLEL=ON")
      .depends_on("zlib")
      .depends_on("mpi", "+mpi")
      .depends_on("cmake")
      .build_cost(90.0);
}

void add_mpi_providers(Repo& repo) {
  repo.add(PackageRecipe("mvapich2", BuildSystem::autotools))
      .describe("MVAPICH2 MPI implementation (InfiniBand/Omni-Path)")
      .version("2.3.6")
      .version("2.3.7", /*preferred=*/true)
      .provides("mpi")
      .build_cost(300.0);

  repo.add(PackageRecipe("openmpi", BuildSystem::autotools))
      .describe("Open MPI implementation")
      .version("4.1.4")
      .version("4.1.6", /*preferred=*/true)
      .version("5.0.0")
      .provides("mpi")
      .depends_on("zlib")
      .build_cost(360.0);

  repo.add(PackageRecipe("spectrum-mpi", BuildSystem::bundle))
      .describe("IBM Spectrum MPI (Power systems; vendor-installed)")
      .version("10.3.1")
      .provides("mpi")
      .build_cost(0.0);

  repo.add(PackageRecipe("cray-mpich", BuildSystem::bundle))
      .describe("HPE Cray MPICH (Slingshot systems; vendor-installed)")
      .version("8.1.25")
      .version("8.1.26", /*preferred=*/true)
      .provides("mpi")
      .build_cost(0.0);
}

void add_math_libs(Repo& repo) {
  repo.add(PackageRecipe("intel-oneapi-mkl", BuildSystem::bundle))
      .describe("Intel oneAPI Math Kernel Library")
      .version("2022.1.0", /*preferred=*/true)
      .version("2023.1.0")
      .provides("blas")
      .provides("lapack")
      .build_cost(0.0);

  repo.add(PackageRecipe("openblas", BuildSystem::makefile))
      .describe("Optimized BLAS/LAPACK")
      .version("0.3.21")
      .version("0.3.23", /*preferred=*/true)
      .variant("threads", "openmp", {"none", "openmp", "pthreads"},
               "Threading model")
      .provides("blas")
      .provides("lapack")
      .build_cost(200.0);

  repo.add(PackageRecipe("essl", BuildSystem::bundle))
      .describe("IBM Engineering and Scientific Subroutine Library")
      .version("6.3.0")
      .provides("blas")
      .build_cost(0.0);
}

void add_gpu_runtimes(Repo& repo) {
  repo.add(PackageRecipe("cuda", BuildSystem::bundle))
      .describe("NVIDIA CUDA toolkit")
      .version("11.2.0")
      .version("11.8.0", /*preferred=*/true)
      .version("12.2.0")
      .build_cost(0.0);

  repo.add(PackageRecipe("hip", BuildSystem::bundle))
      .describe("AMD HIP runtime (ROCm)")
      .version("5.2.1")
      .version("5.4.3", /*preferred=*/true)
      .build_cost(0.0);

  repo.add(PackageRecipe("rocblas", BuildSystem::cmake))
      .describe("ROCm BLAS")
      .version("5.4.3")
      .depends_on("hip")
      .depends_on("cmake")
      .build_cost(400.0);
}

void add_profiling(Repo& repo) {
  repo.add(PackageRecipe("adiak", BuildSystem::cmake))
      .describe("Metadata collection for HPC runs")
      .version("0.2.2")
      .version("0.4.0", /*preferred=*/true)
      .depends_on("cmake")
      .build_cost(15.0);

  repo.add(PackageRecipe("caliper", BuildSystem::cmake))
      .describe("Performance introspection library")
      .version("2.8.0")
      .version("2.9.1", /*preferred=*/true)
      .variant("mpi", true, "MPI-aware profiling")
      .variant("cuda", false, "CUDA activity profiling")
      .flag_when("cuda", "-DWITH_CUPTI=ON")
      .depends_on("adiak")
      .depends_on("mpi", "+mpi")
      .depends_on("cuda", "+cuda")
      .depends_on("cmake")
      .build_cost(60.0);
}

void add_solvers(Repo& repo) {
  repo.add(PackageRecipe("hypre", BuildSystem::autotools))
      .describe("Scalable linear solvers and multigrid methods")
      .version("2.24.0")
      .version("2.26.0")
      .version("2.28.0", /*preferred=*/true)
      .variant("cuda", false, "CUDA support")
      .variant("rocm", false, "ROCm support")
      .variant("openmp", true, "OpenMP threading")
      .conflicts("+cuda", "+rocm", "CUDA and ROCm are mutually exclusive")
      .depends_on("blas")
      .depends_on("lapack")
      .depends_on("mpi")
      .depends_on("cuda", "+cuda")
      .depends_on("hip", "+rocm")
      .build_cost(180.0);
}

void add_benchmarks(Repo& repo) {
  // Figure 11: class Saxpy(CMakePackage, CudaPackage, ROCmPackage).
  repo.add(PackageRecipe("saxpy", BuildSystem::cmake))
      .describe("Test saxpy problem.")
      .version("1.0.0")
      .variant("openmp", true, "OpenMP")
      .variant("cuda", false, "CUDA")
      .variant("rocm", false, "ROCm")
      .flag_when("openmp", "-DUSE_OPENMP=ON")
      .flag_when("cuda", "-DUSE_CUDA=ON")
      .flag_when("rocm", "-DUSE_HIP=ON")
      .conflicts("+cuda", "+rocm", "pick one GPU backend")
      .depends_on("cmake@3.23.1:")
      .depends_on("mpi")
      .depends_on("cuda", "+cuda")
      .depends_on("hip", "+rocm")
      .build_cost(5.0);

  repo.add(PackageRecipe("amg2023", BuildSystem::cmake))
      .describe("Algebraic multigrid benchmark (hypre proxy)")
      .version("1.0")
      .version("1.1", /*preferred=*/true)
      .variant("caliper", false, "Caliper performance annotations")
      .variant("openmp", true, "OpenMP")
      .variant("cuda", false, "CUDA")
      .variant("rocm", false, "ROCm")
      .flag_when("openmp", "-DAMG_OPENMP=ON")
      .flag_when("cuda", "-DAMG_CUDA=ON")
      .flag_when("rocm", "-DAMG_HIP=ON")
      .conflicts("+cuda", "+rocm", "pick one GPU backend")
      .depends_on("hypre")
      .depends_on("hypre+cuda", "+cuda")
      .depends_on("hypre+rocm", "+rocm")
      .depends_on("mpi")
      .depends_on("caliper", "+caliper")
      .depends_on("adiak", "+caliper")
      .depends_on("cmake")
      .build_cost(45.0);

  repo.add(PackageRecipe("stream", BuildSystem::makefile))
      .describe("STREAM memory bandwidth benchmark")
      .version("5.10", /*preferred=*/true)
      .variant("openmp", true, "OpenMP")
      .build_cost(2.0);

  repo.add(PackageRecipe("osu-micro-benchmarks", BuildSystem::autotools))
      .describe("OSU MPI micro-benchmarks (latency, bandwidth, collectives)")
      .version("6.2", /*preferred=*/true)
      .version("7.0")
      .variant("cuda", false, "CUDA-aware benchmarks")
      .depends_on("mpi")
      .depends_on("cuda", "+cuda")
      .build_cost(25.0);

  // HPCC-class kernel suite (ROADMAP item 3).
  repo.add(PackageRecipe("gemm", BuildSystem::cmake))
      .describe("Blocked/register-tiled SIMD DGEMM benchmark")
      .version("1.0", /*preferred=*/true)
      .variant("openmp", true, "OpenMP")
      .variant("cuda", false, "CUDA")
      .variant("rocm", false, "ROCm")
      .flag_when("openmp", "-DUSE_OPENMP=ON")
      .flag_when("cuda", "-DUSE_CUDA=ON")
      .flag_when("rocm", "-DUSE_HIP=ON")
      .conflicts("+cuda", "+rocm", "pick one GPU backend")
      .depends_on("cmake@3.23.1:")
      .depends_on("mpi")
      .depends_on("cuda", "+cuda")
      .depends_on("hip", "+rocm")
      .build_cost(6.0);

  repo.add(PackageRecipe("ptrans", BuildSystem::cmake))
      .describe("Tiled out-of-place matrix transpose (PTRANS) benchmark")
      .version("1.0", /*preferred=*/true)
      .variant("openmp", true, "OpenMP")
      .depends_on("cmake@3.23.1:")
      .depends_on("mpi")
      .build_cost(4.0);

  repo.add(PackageRecipe("fft", BuildSystem::cmake))
      .describe("Batched radix-2 Stockham FFT benchmark")
      .version("1.0", /*preferred=*/true)
      .variant("openmp", true, "OpenMP")
      .depends_on("cmake@3.23.1:")
      .depends_on("mpi")
      .build_cost(5.0);

  repo.add(PackageRecipe("randomaccess", BuildSystem::cmake))
      .describe("GUPS random-access benchmark with batched pipelining")
      .version("1.0", /*preferred=*/true)
      .variant("openmp", true, "OpenMP")
      .depends_on("cmake@3.23.1:")
      .depends_on("mpi")
      .build_cost(3.0);

  repo.add(PackageRecipe("b-eff", BuildSystem::makefile))
      .describe("Effective network bandwidth (b_eff) sweep")
      .version("3.6", /*preferred=*/true)
      .depends_on("mpi")
      .build_cost(2.0);
}

}  // namespace

std::shared_ptr<const Repo> builtin_repo() {
  static std::shared_ptr<const Repo> instance = [] {
    auto repo = std::make_shared<Repo>("builtin");
    add_build_tools(*repo);
    add_core_libs(*repo);
    add_mpi_providers(*repo);
    add_math_libs(*repo);
    add_gpu_runtimes(*repo);
    add_profiling(*repo);
    add_solvers(*repo);
    add_benchmarks(*repo);
    return std::shared_ptr<const Repo>(std::move(repo));
  }();
  return instance;
}

RepoStack default_repo_stack() {
  RepoStack stack;
  stack.push_back(builtin_repo());
  return stack;
}

}  // namespace benchpark::pkg
