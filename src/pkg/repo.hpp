// Package repositories.
//
// A Repo maps package names to recipes and virtuals to providers. The
// RepoStack layers repos: Benchpark's `repo/` directory overlays the
// upstream builtin repo (Figure 1a lines 41-48), so a benchmark-specific
// recipe can shadow or extend upstream without forking it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/pkg/package.hpp"

namespace benchpark::pkg {

class Repo {
public:
  explicit Repo(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Add a recipe (replacing any same-named one) and return a reference
  /// for further builder calls.
  PackageRecipe& add(PackageRecipe recipe);

  [[nodiscard]] const PackageRecipe* find(std::string_view package) const;
  [[nodiscard]] bool has(std::string_view package) const {
    return find(package) != nullptr;
  }
  [[nodiscard]] std::vector<std::string> package_names() const;

  /// Packages providing the given virtual (e.g. "mpi" -> mvapich2, ...).
  [[nodiscard]] std::vector<const PackageRecipe*> providers_of(
      std::string_view virtual_name) const;
  [[nodiscard]] bool is_virtual(std::string_view name) const;

  /// Stable digest of every recipe in this repo. Any declaration change
  /// (new version, flipped default, added dependency) changes it; the
  /// concretization cache keys on it so stale entries cannot survive a
  /// repo edit.
  [[nodiscard]] std::uint64_t fingerprint() const;

private:
  std::string name_;
  std::map<std::string, PackageRecipe, std::less<>> packages_;
};

/// Ordered overlay of repos; earlier repos shadow later ones.
class RepoStack {
public:
  void push_front(std::shared_ptr<const Repo> repo);
  void push_back(std::shared_ptr<const Repo> repo);

  /// First matching recipe in overlay order; throws PackageError if absent.
  [[nodiscard]] const PackageRecipe& get(std::string_view package) const;
  [[nodiscard]] const PackageRecipe* find(std::string_view package) const;
  [[nodiscard]] bool has(std::string_view package) const;
  [[nodiscard]] bool is_virtual(std::string_view name) const;
  [[nodiscard]] std::vector<const PackageRecipe*> providers_of(
      std::string_view virtual_name) const;
  [[nodiscard]] std::vector<std::string> package_names() const;
  [[nodiscard]] std::size_t num_repos() const { return repos_.size(); }

  /// Order-sensitive combination of the stacked repos' fingerprints
  /// (overlay order changes which recipe shadows which).
  [[nodiscard]] std::uint64_t fingerprint() const;

private:
  std::vector<std::shared_ptr<const Repo>> repos_;
};

/// The upstream builtin repo: every package the paper's demo needs
/// (saxpy, AMG2023 and its hypre stack, MPI implementations, math
/// libraries, profiling tools, GPU runtimes, build tools).
std::shared_ptr<const Repo> builtin_repo();

/// Default repo stack: just the builtin repo.
RepoStack default_repo_stack();

}  // namespace benchpark::pkg
