#include "src/pkg/package.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"

namespace benchpark::pkg {

std::string_view build_system_name(BuildSystem bs) {
  switch (bs) {
    case BuildSystem::cmake: return "cmake";
    case BuildSystem::makefile: return "makefile";
    case BuildSystem::autotools: return "autotools";
    case BuildSystem::bundle: return "bundle";
  }
  return "?";
}

PackageRecipe::PackageRecipe(std::string name, BuildSystem build_system)
    : name_(std::move(name)), build_system_(build_system) {
  if (name_.empty()) throw PackageError("package name cannot be empty");
}

PackageRecipe& PackageRecipe::describe(std::string description) {
  description_ = std::move(description);
  return *this;
}

PackageRecipe& PackageRecipe::version(const std::string& v, bool preferred,
                                      bool deprecated) {
  versions_.push_back({spec::Version(v), preferred, deprecated});
  return *this;
}

PackageRecipe& PackageRecipe::variant(const std::string& name,
                                      bool default_enabled,
                                      const std::string& description) {
  variants_.push_back(
      {name, spec::VariantValue::boolean(default_enabled), description, {}});
  return *this;
}

PackageRecipe& PackageRecipe::variant(const std::string& name,
                                      const std::string& default_value,
                                      std::vector<std::string> allowed,
                                      const std::string& description) {
  if (!allowed.empty() &&
      std::find(allowed.begin(), allowed.end(), default_value) ==
          allowed.end()) {
    throw PackageError("default '" + default_value + "' for variant '" +
                       name + "' of " + name_ + " not in allowed values");
  }
  variants_.push_back({name, spec::VariantValue::single(default_value),
                       description, std::move(allowed)});
  return *this;
}

PackageRecipe& PackageRecipe::depends_on(const std::string& dep_spec,
                                         const std::string& when) {
  DependencyDef def;
  def.dep = spec::Spec::parse(dep_spec);
  if (!when.empty()) def.when = spec::Spec::parse(when);
  dependencies_.push_back(std::move(def));
  return *this;
}

PackageRecipe& PackageRecipe::conflicts(const std::string& conflict_spec,
                                        const std::string& when,
                                        const std::string& message) {
  ConflictDef def;
  def.conflict = spec::Spec::parse(conflict_spec);
  if (!when.empty()) def.when = spec::Spec::parse(when);
  def.message = message;
  conflicts_.push_back(std::move(def));
  return *this;
}

PackageRecipe& PackageRecipe::provides(const std::string& virtual_name) {
  provides_.push_back(virtual_name);
  return *this;
}

PackageRecipe& PackageRecipe::flag_when(const std::string& variant_name,
                                        std::string flag) {
  variant_flags_.emplace_back(variant_name, std::move(flag));
  return *this;
}

PackageRecipe& PackageRecipe::build_cost(double seconds) {
  build_cost_ = seconds;
  return *this;
}

std::optional<spec::Version> PackageRecipe::best_version(
    const spec::VersionConstraint& constraint) const {
  const VersionDef* best = nullptr;
  // Two passes: preferred versions win over plain ones; within a class the
  // highest version wins. Deprecated versions only match exact requests.
  for (bool want_preferred : {true, false}) {
    for (const auto& vd : versions_) {
      if (vd.preferred != want_preferred) continue;
      if (vd.deprecated) continue;
      if (!constraint.satisfied_by(vd.version)) continue;
      if (!best || vd.version > best->version) best = &vd;
    }
    if (best) return best->version;
  }
  // Last resort: deprecated versions, when explicitly requested.
  if (!constraint.is_any()) {
    for (const auto& vd : versions_) {
      if (!vd.deprecated) continue;
      if (!constraint.satisfied_by(vd.version)) continue;
      if (!best || vd.version > best->version) best = &vd;
    }
    if (best) return best->version;
  }
  return std::nullopt;
}

const VariantDef* PackageRecipe::find_variant(std::string_view name) const {
  for (const auto& v : variants_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::vector<const DependencyDef*> PackageRecipe::active_dependencies(
    const spec::Spec& parent) const {
  std::vector<const DependencyDef*> active;
  for (const auto& d : dependencies_) {
    if (!d.when || parent.satisfies(*d.when)) active.push_back(&d);
  }
  return active;
}

void PackageRecipe::check_conflicts(const spec::Spec& s) const {
  for (const auto& c : conflicts_) {
    if (c.when && !s.satisfies(*c.when)) continue;
    if (s.satisfies(c.conflict)) {
      throw PackageError("conflict in " + name_ + ": '" + c.conflict.str() +
                         (c.when ? "' when '" + c.when->str() : std::string()) +
                         "'" + (c.message.empty() ? "" : ": " + c.message));
    }
  }
}

std::vector<std::string> PackageRecipe::build_args(
    const spec::Spec& s) const {
  std::vector<std::string> args;
  for (const auto& [variant_name, flag] : variant_flags_) {
    if (s.variant_enabled(variant_name)) args.push_back(flag);
  }
  return args;
}

void PackageRecipe::fingerprint_into(support::Hasher& h) const {
  h.update(name_);
  h.update(build_system_name(build_system_));
  for (const auto& v : versions_) {
    h.update(v.version.str());
    h.update(static_cast<std::uint64_t>((v.preferred ? 1u : 0u) |
                                        (v.deprecated ? 2u : 0u)));
  }
  for (const auto& v : variants_) {
    h.update(v.name);
    h.update(v.default_value.value_str());
    for (const auto& allowed : v.allowed_values) h.update(allowed);
  }
  for (const auto& d : dependencies_) {
    h.update(d.dep.str());
    h.update(d.when ? d.when->str() : "");
    for (auto t : d.types) h.update(static_cast<std::uint64_t>(t));
  }
  for (const auto& c : conflicts_) {
    h.update(c.conflict.str());
    h.update(c.when ? c.when->str() : "");
  }
  for (const auto& p : provides_) h.update(p);
  for (const auto& [variant_name, flag] : variant_flags_) {
    h.update(variant_name);
    h.update(flag);
  }
  h.update(std::to_string(build_cost_));
}

}  // namespace benchpark::pkg
