#include "src/pkg/yaml_repo.hpp"

#include <set>

#include "src/support/error.hpp"

namespace benchpark::pkg {

namespace {

BuildSystem parse_build_system(const std::string& text) {
  if (text == "cmake") return BuildSystem::cmake;
  if (text == "makefile") return BuildSystem::makefile;
  if (text == "autotools") return BuildSystem::autotools;
  if (text == "bundle") return BuildSystem::bundle;
  throw PackageError("unknown build_system '" + text + "'");
}

void load_versions(PackageRecipe& recipe, const yaml::Node& versions) {
  for (const auto& entry : versions.items()) {
    if (entry.is_scalar()) {
      recipe.version(entry.as_string());
    } else {
      recipe.version(entry.at("version").as_string(),
                     entry.at("preferred").as_bool_or(false),
                     entry.at("deprecated").as_bool_or(false));
    }
  }
}

void load_variants(PackageRecipe& recipe, const yaml::Node& variants) {
  for (const auto& [vname, body] : variants.map()) {
    const auto& default_node = body.at("default");
    std::string description = body.at("description").as_string_or("");
    if (body.has("values")) {
      recipe.variant(vname, default_node.as_string(),
                     body.at("values").as_string_list(), description);
    } else {
      bool enabled;
      try {
        enabled = default_node.as_bool();
      } catch (const Error&) {
        throw PackageError("variant '" + vname +
                           "' needs a boolean default or a 'values' list");
      }
      recipe.variant(vname, enabled, description);
    }
    if (body.has("flag")) {
      recipe.flag_when(vname, body.at("flag").as_string());
    }
  }
}

void load_dependencies(PackageRecipe& recipe, const yaml::Node& deps) {
  for (const auto& entry : deps.items()) {
    if (entry.is_scalar()) {
      recipe.depends_on(entry.as_string());
    } else {
      recipe.depends_on(entry.at("spec").as_string(),
                        entry.at("when").as_string_or(""));
    }
  }
}

void load_conflicts(PackageRecipe& recipe, const yaml::Node& conflicts) {
  for (const auto& entry : conflicts.items()) {
    recipe.conflicts(entry.at("spec").as_string(),
                     entry.at("when").as_string_or(""),
                     entry.at("msg").as_string_or(""));
  }
}

}  // namespace

PackageRecipe recipe_from_yaml(const std::string& name,
                               const yaml::Node& body) {
  static const std::set<std::string> kKnownKeys{
      "build_system", "description", "versions",  "variants",
      "depends_on",   "conflicts",   "provides",  "build_cost"};
  for (const auto& [key, value] : body.map()) {
    if (!kKnownKeys.count(key)) {
      throw PackageError("recipe '" + name + "': unknown key '" + key +
                         "'");
    }
  }

  PackageRecipe recipe(
      name,
      parse_build_system(body.at("build_system").as_string_or("cmake")));
  recipe.describe(body.at("description").as_string_or(""));

  if (!body.has("versions")) {
    throw PackageError("recipe '" + name + "' declares no versions");
  }
  load_versions(recipe, body.at("versions"));
  if (body.has("variants")) load_variants(recipe, body.at("variants"));
  if (body.has("depends_on")) load_dependencies(recipe, body.at("depends_on"));
  if (body.has("conflicts")) load_conflicts(recipe, body.at("conflicts"));
  if (body.has("provides")) {
    for (const auto& v : body.at("provides").as_string_list()) {
      recipe.provides(v);
    }
  }
  if (body.has("build_cost")) {
    recipe.build_cost(body.at("build_cost").as_double());
  }
  return recipe;
}

std::shared_ptr<Repo> repo_from_yaml(const std::string& repo_name,
                                     const yaml::Node& document) {
  auto repo = std::make_shared<Repo>(repo_name);
  const yaml::Node& packages =
      document.has("packages") ? document.at("packages") : document;
  if (!packages.is_mapping()) {
    throw PackageError("repo document needs a 'packages:' mapping");
  }
  for (const auto& [name, body] : packages.map()) {
    repo->add(recipe_from_yaml(name, body));
  }
  return repo;
}

}  // namespace benchpark::pkg
