// Data-driven package recipes: the `repo/` overlay as YAML.
//
// Figure 1a's repo/ directory carries "overlay information not contained
// in the upstream Spack or Ramble repositories". Community contributors
// should not need to write C++ to add a recipe, so overlays can be
// described in YAML:
//
//   packages:
//     pingpong:
//       build_system: cmake
//       description: MPI ping-pong latency benchmark
//       versions: ['2.1', {version: '2.0', deprecated: true}]
//       variants:
//         openmp: {default: false, description: threaded variant,
//                  flag: -DPINGPONG_OPENMP=ON}
//         backend: {default: verbs, values: [verbs, ucx]}
//       depends_on: [mpi, {spec: 'cmake@3.20:'}, {spec: cuda, when: +cuda}]
//       conflicts: [{spec: +cuda, when: +rocm, msg: pick one}]
//       provides: []
//       build_cost: 3.0
#pragma once

#include "src/pkg/repo.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::pkg {

/// Parse one recipe body (the mapping under the package name).
/// Throws PackageError on unknown keys or malformed entries.
PackageRecipe recipe_from_yaml(const std::string& name,
                               const yaml::Node& body);

/// Parse a whole repo document (`packages:` mapping) into a Repo named
/// `repo_name`.
std::shared_ptr<Repo> repo_from_yaml(const std::string& repo_name,
                                     const yaml::Node& document);

}  // namespace benchpark::pkg
