// Package recipes: the C++ equivalent of Spack's package.py files.
//
// A recipe declares the *build space* of a package: known versions,
// variants with defaults, (possibly conditional) dependencies, conflicts,
// provided virtuals, and how variant choices map to build-system arguments
// (Figure 11's cmake_args). Recipes carry no system-specific information —
// that is the whole point of the paper's orthogonalization.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/spec/spec.hpp"

namespace benchpark::support {
class Hasher;
}

namespace benchpark::pkg {

enum class BuildSystem { cmake, makefile, autotools, bundle };

[[nodiscard]] std::string_view build_system_name(BuildSystem bs);

/// A declared version of a package.
struct VersionDef {
  spec::Version version;
  bool preferred = false;
  bool deprecated = false;
};

/// A declared variant with its default.
struct VariantDef {
  std::string name;
  spec::VariantValue default_value;
  std::string description;
  /// Allowed values for string variants (empty = unrestricted).
  std::vector<std::string> allowed_values;
};

enum class DepType { build, link, run };

/// A (possibly conditional) dependency declaration:
///   depends_on("cuda", when="+cuda")
struct DependencyDef {
  spec::Spec dep;                   // constraint on the dependency
  std::optional<spec::Spec> when;   // condition on the parent spec
  std::vector<DepType> types{DepType::build, DepType::link};
};

/// conflicts("+cuda", when="+rocm", msg=...)
struct ConflictDef {
  spec::Spec conflict;
  std::optional<spec::Spec> when;
  std::string message;
};

/// A package recipe.
class PackageRecipe {
public:
  PackageRecipe() = default;
  PackageRecipe(std::string name, BuildSystem build_system);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] BuildSystem build_system() const { return build_system_; }

  PackageRecipe& describe(std::string description);
  [[nodiscard]] const std::string& description() const { return description_; }

  // -- declarations (builder-style API mirroring package.py directives) ----
  PackageRecipe& version(const std::string& v, bool preferred = false,
                         bool deprecated = false);
  PackageRecipe& variant(const std::string& name, bool default_enabled,
                         const std::string& description);
  PackageRecipe& variant(const std::string& name,
                         const std::string& default_value,
                         std::vector<std::string> allowed,
                         const std::string& description);
  PackageRecipe& depends_on(const std::string& dep_spec,
                            const std::string& when = "");
  PackageRecipe& conflicts(const std::string& conflict_spec,
                           const std::string& when = "",
                           const std::string& message = "");
  PackageRecipe& provides(const std::string& virtual_name);
  /// Map a boolean variant to a build flag emitted when enabled
  /// (Figure 11: '+openmp' -> '-DUSE_OPENMP=ON').
  PackageRecipe& flag_when(const std::string& variant_name, std::string flag);
  /// Simulated build cost in seconds at reference parallelism.
  PackageRecipe& build_cost(double seconds);

  // -- queries ---------------------------------------------------------------
  [[nodiscard]] const std::vector<VersionDef>& versions() const {
    return versions_;
  }
  /// Highest non-deprecated version satisfying `constraint`; prefers
  /// versions marked preferred. Nullopt when none match.
  [[nodiscard]] std::optional<spec::Version> best_version(
      const spec::VersionConstraint& constraint) const;

  [[nodiscard]] const std::vector<VariantDef>& variants() const {
    return variants_;
  }
  [[nodiscard]] const VariantDef* find_variant(std::string_view name) const;

  [[nodiscard]] const std::vector<DependencyDef>& dependencies() const {
    return dependencies_;
  }
  /// Dependencies active for a given (partially) concrete parent spec.
  [[nodiscard]] std::vector<const DependencyDef*> active_dependencies(
      const spec::Spec& parent) const;

  [[nodiscard]] const std::vector<ConflictDef>& conflict_list() const {
    return conflicts_;
  }
  /// Throws PackageError when `s` violates a declared conflict.
  void check_conflicts(const spec::Spec& s) const;

  [[nodiscard]] const std::vector<std::string>& provided_virtuals() const {
    return provides_;
  }

  /// Build-system arguments for a concrete spec (Figure 11 semantics).
  [[nodiscard]] std::vector<std::string> build_args(
      const spec::Spec& s) const;

  [[nodiscard]] double build_cost_seconds() const { return build_cost_; }

  /// Feed every build-space declaration (versions, variants, deps,
  /// conflicts, virtuals, flags) into `h`. Stable across runs; the
  /// concretization cache derives its repo-stack fingerprint from this,
  /// so any recipe change must perturb the digest.
  void fingerprint_into(support::Hasher& h) const;

private:
  std::string name_;
  BuildSystem build_system_ = BuildSystem::cmake;
  std::string description_;
  std::vector<VersionDef> versions_;
  std::vector<VariantDef> variants_;
  std::vector<DependencyDef> dependencies_;
  std::vector<ConflictDef> conflicts_;
  std::vector<std::string> provides_;
  std::vector<std::pair<std::string, std::string>> variant_flags_;
  double build_cost_ = 10.0;
};

}  // namespace benchpark::pkg
