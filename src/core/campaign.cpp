#include "src/core/campaign.hpp"

#include <algorithm>
#include <iterator>
#include <set>

#include "src/analysis/analysis.hpp"
#include "src/ramble/application.hpp"
#include "src/ramble/expansion.hpp"
#include "src/support/error.hpp"
#include "src/support/log.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::core {

Campaign::Campaign(const Driver* driver, ExperimentId experiment,
                   std::filesystem::path base_dir)
    : driver_(driver),
      experiment_(std::move(experiment)),
      base_dir_(std::move(base_dir)) {
  if (!driver_) throw Error("campaign needs a driver");
}

void Campaign::add_system(const std::string& name) {
  if (std::find(systems_.begin(), systems_.end(), name) == systems_.end()) {
    systems_.push_back(name);
  }
}

void Campaign::run() {
  summaries_.clear();
  thicket_ = analysis::Thicket{};  // rebuilt by each run()
  for (const auto& system : systems_) {
    SystemRunSummary summary;
    summary.system = system;
    try {
      auto report = driver_->run_workflow(experiment_, system,
                                          base_dir_ / system, {}, nullptr,
                                          request_);
      summary.experiments = report.results.size();
      summary.succeeded = report.num_success();
      std::vector<analysis::ExperimentRecord> records;
      records.reserve(report.results.size());
      for (auto& result : report.results) {
        if (!result.success && summary.first_failure.empty()) {
          summary.first_failure = "experiment '" + result.name + "' failed";
        }
        analysis::ExperimentRecord record;
        record.benchmark = experiment_.benchmark;
        record.system = system;
        record.experiment = result.name;
        record.variables = result.variables;
        record.declared_foms =
            ramble::ApplicationRegistry::instance().get(result.app).foms();
        record.foms = std::move(result.foms);
        record.success = result.success;
        record.output = std::move(result.output);
        records.push_back(std::move(record));
      }
      // One façade call per system: rows and thicket columns accumulate
      // into the campaign-owned sinks, serially in record order.
      analysis::AnalysisRequest ingest;
      ingest.records = &records;
      ingest.metrics_out = &db_;
      ingest.thicket_out = &thicket_;
      ingest.detect = false;
      ingest.threads = request_.threads;
      auto analyzed = analysis::run_analysis(ingest);
      rows_.insert(rows_.end(),
                   std::make_move_iterator(analyzed.ingested_rows.begin()),
                   std::make_move_iterator(analyzed.ingested_rows.end()));
    } catch (const Error& e) {
      summary.first_failure = e.what();
      support::Log::info(std::string("campaign: ") + e.what());
    }
    summaries_.push_back(std::move(summary));
  }
}

support::Table Campaign::comparison_table(const std::string& fom_name) const {
  // Rows: experiment names (union across systems); columns: systems.
  std::vector<std::string> experiment_names;
  for (const auto& row : rows_) {
    if (row.fom_name != fom_name) continue;
    if (std::find(experiment_names.begin(), experiment_names.end(),
                  row.experiment) == experiment_names.end()) {
      experiment_names.push_back(row.experiment);
    }
  }
  std::vector<std::string> header{"experiment"};
  for (const auto& system : systems_) header.push_back(system);
  support::Table table(header);
  for (const auto& name : experiment_names) {
    std::vector<std::string> cells{name};
    for (const auto& system : systems_) {
      std::string cell = "-";
      for (const auto& row : rows_) {
        if (row.fom_name == fom_name && row.experiment == name &&
            row.system == system) {
          cell = row.success ? support::format_double(row.value, 5)
                             : "CRASHED";
          break;
        }
      }
      cells.push_back(cell);
    }
    table.add_row(std::move(cells));
  }
  return table;
}

analysis::ScalingModel Campaign::scaling_model(
    const std::string& system, const std::string& fom_name) const {
  std::vector<analysis::Measurement> data;
  for (const auto& row : rows_) {
    if (row.system != system || row.fom_name != fom_name || !row.success) {
      continue;
    }
    auto it = row.variables.find("n_ranks");
    if (it == row.variables.end()) continue;
    double ranks = static_cast<double>(
        ramble::expand_int(it->second, row.variables));
    data.push_back({ranks, row.value});
  }
  return analysis::fit_scaling_model(data);
}

}  // namespace benchpark::core
