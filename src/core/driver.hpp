// The Benchpark driver: `/bin/benchpark $experiment $system $workspace`
// (Figure 1c, step 2).
//
// The driver owns the Benchpark repository content (Figure 1a):
//   configs/<system>/       — per-system Spack + Ramble configuration
//   experiments/<benchmark>/<variant>/ramble.yaml + execute_experiment.tpl
//   repo/                   — overlay package/application definitions
// and turns a (benchmark/variant, system) pair into a generated Ramble
// workspace, then walks the nine-step workflow of Figure 1c.
#pragma once

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "src/ramble/workspace.hpp"
#include "src/system/system.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::core {

/// An experiment identifier: "<benchmark>/<variant>", e.g. "saxpy/openmp",
/// "amg2023/cuda" (Figure 1a lines 20-40).
struct ExperimentId {
  std::string benchmark;
  std::string variant;

  static ExperimentId parse(std::string_view text);
  [[nodiscard]] std::string str() const { return benchmark + "/" + variant; }
};

class Driver {
public:
  Driver();

  /// Benchmarks with experiment templates ("saxpy", "amg2023", ...).
  [[nodiscard]] std::vector<std::string> benchmarks() const;
  /// Variants available for a benchmark ("openmp", "cuda", "rocm").
  [[nodiscard]] std::vector<std::string> variants(
      std::string_view benchmark) const;
  [[nodiscard]] std::vector<std::string> systems() const;

  /// The ramble.yaml template for an experiment (before system binding).
  [[nodiscard]] const yaml::Node& experiment_config(
      const ExperimentId& id) const;

  /// Register an out-of-tree experiment template (the `repo/` overlay
  /// mechanism for experiments; examples/add_benchmark.cpp uses this).
  void add_experiment(const ExperimentId& id, yaml::Node ramble_yaml);

  /// Validate an (experiment, system) pair without building anything:
  /// unknown experiments/systems and GPU-variant mismatches throw. The
  /// service daemon calls this at admission time so a bad request is
  /// rejected at submit() instead of wasting a dispatch slot.
  void validate(const ExperimentId& id, const std::string& system_name)
      const;

  /// `benchpark setup <experiment> <system> <workspace_dir>`: validate the
  /// pair, generate the workspace (steps 3-4 of Figure 1c: instantiate
  /// Spack+Ramble, write configs), ready for `ramble workspace setup`.
  [[nodiscard]] ramble::Workspace setup(const ExperimentId& id,
                                        const std::string& system_name,
                                        std::filesystem::path workspace_dir)
      const;

  /// Step logger for the full workflow (defaults to a no-op); receives
  /// "step N: <description>" lines matching Figure 1c.
  using StepLogger = std::function<void(int step, const std::string&)>;

  /// Run the complete Figure 1c workflow: setup -> ramble workspace
  /// setup -> ramble on -> ramble workspace analyze. Returns the analyze
  /// report; `workspace_out` (optional) receives the workspace.
  /// `request` tunes the run engine (thread width, template cache,
  /// retry budget); experiments execute via Workspace::run_all, so the
  /// results are identical at every width. `run_report_out` (optional)
  /// receives the run engine's report (attempt/retry/store-hit counts) —
  /// the service daemon surfaces those per ticket.
  ramble::AnalyzeReport run_workflow(const ExperimentId& id,
                                     const std::string& system_name,
                                     const std::filesystem::path& dir,
                                     const StepLogger& log = {},
                                     ramble::Workspace* workspace_out =
                                         nullptr,
                                     const ramble::RunRequest& request = {},
                                     ramble::RunReport* run_report_out =
                                         nullptr) const;

  /// Render the Figure 1a benchpark repository tree (as text) for the
  /// registered benchmarks and systems.
  [[nodiscard]] std::string repo_tree() const;

private:
  /// GPU/CPU compatibility and scheduler sanity checks.
  void validate_pair(const ExperimentId& id,
                     const system::SystemDescription& system) const;

  std::vector<std::pair<ExperimentId, yaml::Node>> experiments_;
};

}  // namespace benchpark::core
