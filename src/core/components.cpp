#include "src/core/components.hpp"

#include "src/pkg/repo.hpp"
#include "src/ramble/application.hpp"
#include "src/support/error.hpp"
#include "src/system/system.hpp"

namespace benchpark::core {

std::vector<ComponentRow> table1_components() {
  return {
      {"Source code", "package.py", "archspec (Sec. 3.1.3)",
       "ramble.yaml: spack"},
      {"Build instructions", "package.py",
       "Spack config. files, spack.yaml", "ramble.yaml: spack"},
      {"Benchmark input", "application.py, (optional) data",
       "variables.yaml", "ramble.yaml: experiments"},
      {"Run instructions", "application.py",
       "variables.yaml: scheduler, launcher", "ramble.yaml: experiments"},
      {"Experiment evaluation", "(optional) application.py",
       "(optional) hardware counters, etc.",
       "ramble.yaml: success_criteria"},
      {"CI testing", ".gitlab-ci.yml", "Hubcast@LLNL/RIKEN/AWS",
       "Benchpark executable"},
  };
}

support::Table render_table1() {
  support::Table table({"Component", "Benchmark-specific",
                        "HPC System-specific", "Experiment-specific"});
  for (const auto& row : table1_components()) {
    table.add_row({row.component, row.benchmark_specific,
                   row.system_specific, row.experiment_specific});
  }
  return table;
}

void validate_component_registry() {
  // Benchmark-specific: package.py == pkg recipes; application.py ==
  // ramble application definitions. Every registered benchmark must have
  // both (Section 4: "a full specification of the benchmark, its build,
  // and its run instructions ... is required").
  auto repos = pkg::default_repo_stack();
  const auto& apps = ramble::ApplicationRegistry::instance();
  for (const auto& name : apps.names()) {
    if (!repos.has(apps.get(name).package_name())) {
      throw Error("application '" + name +
                  "' has no package recipe (package.py half missing)");
    }
  }
  // System-specific: every registry system carries Spack config files and
  // a variables.yaml (scheduler/launcher).
  const auto& systems = system::SystemRegistry::instance();
  for (const auto& name : systems.names()) {
    const auto& s = systems.get(name);
    if (s.config.compilers().empty()) {
      throw Error("system '" + name + "' has no compilers.yaml entries");
    }
    auto vars = s.variables_yaml();
    if (!vars.path("variables.mpi_command").is_scalar()) {
      throw Error("system '" + name + "' variables.yaml lacks mpi_command");
    }
  }
}

}  // namespace benchpark::core
