#include "src/core/driver.hpp"

#include <algorithm>

#include "src/analysis/history.hpp"
#include "src/core/usage.hpp"
#include "src/obs/trace.hpp"
#include "src/store/persist.hpp"
#include "src/support/error.hpp"
#include "src/support/string_util.hpp"
#include "src/yaml/parser.hpp"

namespace benchpark::core {

using support::contains;
using system::SystemDescription;
using system::SystemRegistry;

ExperimentId ExperimentId::parse(std::string_view text) {
  auto [benchmark, variant] = support::split_first(text, '/');
  if (benchmark.empty() || variant.empty()) {
    throw Error("experiment id must be '<benchmark>/<variant>', got '" +
                std::string(text) + "'");
  }
  return {benchmark, variant};
}

namespace {

/// The Figure 10 ramble.yaml, parameterized by GPU/OpenMP variant.
yaml::Node saxpy_template(const std::string& variant) {
  std::string spec = "saxpy@1.0.0 +" + variant;
  if (variant != "openmp") spec += "~openmp";
  spec += " ^cmake@3.23.1:";
  return yaml::parse(
      "ramble:\n"
      "  include:\n"
      "  - ./configs/packages.yaml\n"
      "  - ./configs/variables.yaml\n"
      "  config:\n"
      "    deprecated: true\n"
      "    spack_flags:\n"
      "      install: '--add --keep-stage'\n"
      "      concretize: '-U -f'\n"
      "  applications:\n"
      "    saxpy:\n"
      "      workloads:\n"
      "        problem:\n"
      "          env_vars:\n"
      "            set:\n"
      "              OMP_NUM_THREADS: '{n_threads}'\n"
      "          variables:\n"
      "            n_ranks: '8'\n"
      "            batch_time: '120'\n"
      "          experiments:\n"
      "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
      "              variables:\n"
      "                processes_per_node: ['8', '4']\n"
      "                n_nodes: ['1', '2']\n"
      "                n_threads: ['2', '4']\n"
      "                n: ['512', '1024']\n"
      "              matrices:\n"
      "              - size_threads:\n"
      "                - n\n"
      "                - n_threads\n"
      "  spack:\n"
      "    packages:\n"
      "      saxpy:\n"
      "        spack_spec: " + spec + "\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      saxpy:\n"
      "        packages:\n"
      "        - default-mpi\n"
      "        - saxpy\n");
}

yaml::Node amg_template(const std::string& variant) {
  std::string spec = "amg2023@1.1 +caliper";
  if (variant == "cuda") spec += "+cuda~openmp";
  if (variant == "rocm") spec += "+rocm~openmp";
  if (variant == "openmp") spec += "+openmp";
  return yaml::parse(
      "ramble:\n"
      "  include:\n"
      "  - ./configs/packages.yaml\n"
      "  - ./configs/variables.yaml\n"
      "  applications:\n"
      "    amg2023:\n"
      "      workloads:\n"
      "        problem1:\n"
      "          env_vars:\n"
      "            set:\n"
      "              OMP_NUM_THREADS: '{n_threads}'\n"
      "          variables:\n"
      "            batch_time: '240'\n"
      "            nx: '1024'\n"
      "            ny: '1024'\n"
      "          experiments:\n"
      "            amg_strong_{nx}_{n_nodes}_{n_ranks}_{n_threads}:\n"
      "              variables:\n"
      "                processes_per_node: '16'\n"
      "                n_nodes: ['1', '2', '4']\n"
      "                n_threads: '2'\n"
      "                n_ranks: '{processes_per_node}*{n_nodes}'\n"
      "                px: '{n_ranks}'\n"
      "                py: '1'\n"
      "  spack:\n"
      "    packages:\n"
      "      amg2023:\n"
      "        spack_spec: " + spec + "\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      amg2023:\n"
      "        packages:\n"
      "        - default-mpi\n"
      "        - amg2023\n");
}

yaml::Node stream_template() {
  return yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    stream:\n"
      "      workloads:\n"
      "        bandwidth:\n"
      "          env_vars:\n"
      "            set:\n"
      "              OMP_NUM_THREADS: '{n_threads}'\n"
      "          variables:\n"
      "            n_ranks: '1'\n"
      "            processes_per_node: '1'\n"
      "          experiments:\n"
      "            stream_{n}_{n_threads}:\n"
      "              variables:\n"
      "                n: '10000000'\n"
      "                n_threads: ['1', '4', '8']\n"
      "  spack:\n"
      "    packages:\n"
      "      stream:\n"
      "        spack_spec: stream@5.10 +openmp\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      stream:\n"
      "        packages:\n"
      "        - stream\n");
}

yaml::Node osu_template() {
  return yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    osu-bcast:\n"
      "      workloads:\n"
      "        collective:\n"
      "          variables:\n"
      "            batch_time: '60'\n"
      "          experiments:\n"
      "            bcast_{n_nodes}_{n_ranks}:\n"
      "              variables:\n"
      "                processes_per_node: '32'\n"
      "                n_nodes: ['1', '2', '4', '8']\n"
      "                n_ranks: '{processes_per_node}*{n_nodes}'\n"
      "                n: '1048576'\n"
      "  spack:\n"
      "    packages:\n"
      "      osu-bcast:\n"
      "        spack_spec: osu-micro-benchmarks@6.2\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      osu-bcast:\n"
      "        packages:\n"
      "        - default-mpi\n"
      "        - osu-bcast\n");
}

/// HPCC-class kernels share one single-node scaling shape: a 2x2
/// n x n_threads matrix per workload, the Extra-P-ready 4-point grid.
yaml::Node kernel_template(const std::string& app, const std::string& workload,
                           const std::string& package,
                           const std::string& spack_spec,
                           const std::string& n_small,
                           const std::string& n_large) {
  return yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    " + app + ":\n"
      "      workloads:\n"
      "        " + workload + ":\n"
      "          env_vars:\n"
      "            set:\n"
      "              OMP_NUM_THREADS: '{n_threads}'\n"
      "          variables:\n"
      "            n_ranks: '1'\n"
      "            processes_per_node: '1'\n"
      "          experiments:\n"
      "            " + app + "_{n}_{n_threads}:\n"
      "              variables:\n"
      "                n: ['" + n_small + "', '" + n_large + "']\n"
      "                n_threads: ['1', '4']\n"
      "              matrices:\n"
      "              - size_threads:\n"
      "                - n\n"
      "                - n_threads\n"
      "  spack:\n"
      "    packages:\n"
      "      " + package + ":\n"
      "        spack_spec: " + spack_spec + "\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      " + app + ":\n"
      "        packages:\n"
      "        - " + package + "\n");
}

/// b_eff scales over ranks, not threads: an osu-style node sweep.
yaml::Node beff_template() {
  return yaml::parse(
      "ramble:\n"
      "  applications:\n"
      "    beff:\n"
      "      workloads:\n"
      "        sweep:\n"
      "          variables:\n"
      "            batch_time: '60'\n"
      "          experiments:\n"
      "            beff_{n_nodes}_{n_ranks}:\n"
      "              variables:\n"
      "                processes_per_node: '16'\n"
      "                n_nodes: ['1', '2', '4', '8']\n"
      "                n_ranks: '{processes_per_node}*{n_nodes}'\n"
      "                n: '16777216'\n"
      "  spack:\n"
      "    packages:\n"
      "      b-eff:\n"
      "        spack_spec: b-eff@3.6\n"
      "        compiler: default-compiler\n"
      "    environments:\n"
      "      beff:\n"
      "        packages:\n"
      "        - default-mpi\n"
      "        - b-eff\n");
}

}  // namespace

Driver::Driver() {
  for (const char* variant : {"openmp", "cuda", "rocm"}) {
    experiments_.emplace_back(ExperimentId{"saxpy", variant},
                              saxpy_template(variant));
    experiments_.emplace_back(ExperimentId{"amg2023", variant},
                              amg_template(variant));
  }
  experiments_.emplace_back(ExperimentId{"stream", "openmp"},
                            stream_template());
  experiments_.emplace_back(ExperimentId{"osu-bcast", "mpi"},
                            osu_template());
  experiments_.emplace_back(
      ExperimentId{"gemm", "openmp"},
      kernel_template("gemm", "square", "gemm", "gemm@1.0 +openmp",
                      "256", "384"));
  experiments_.emplace_back(
      ExperimentId{"ptrans", "openmp"},
      kernel_template("ptrans", "transpose", "ptrans",
                      "ptrans@1.0 +openmp", "512", "1024"));
  experiments_.emplace_back(
      ExperimentId{"fft", "openmp"},
      kernel_template("fft", "batch", "fft", "fft@1.0 +openmp", "2048",
                      "4096"));
  experiments_.emplace_back(
      ExperimentId{"randomaccess", "openmp"},
      kernel_template("randomaccess", "gups", "randomaccess",
                      "randomaccess@1.0 +openmp", "32768", "65536"));
  experiments_.emplace_back(ExperimentId{"beff", "mpi"}, beff_template());
}

std::vector<std::string> Driver::benchmarks() const {
  std::vector<std::string> out;
  for (const auto& [id, node] : experiments_) {
    if (std::find(out.begin(), out.end(), id.benchmark) == out.end()) {
      out.push_back(id.benchmark);
    }
  }
  return out;
}

std::vector<std::string> Driver::variants(std::string_view benchmark) const {
  std::vector<std::string> out;
  for (const auto& [id, node] : experiments_) {
    if (id.benchmark == benchmark) out.push_back(id.variant);
  }
  return out;
}

std::vector<std::string> Driver::systems() const {
  return SystemRegistry::instance().names();
}

const yaml::Node& Driver::experiment_config(const ExperimentId& id) const {
  for (const auto& [eid, node] : experiments_) {
    if (eid.benchmark == id.benchmark && eid.variant == id.variant) {
      return node;
    }
  }
  throw Error("unknown experiment '" + id.str() + "'; run `benchpark list`");
}

void Driver::add_experiment(const ExperimentId& id, yaml::Node ramble_yaml) {
  UsageMetrics::instance().record_contribution(id.benchmark);
  for (auto& [eid, node] : experiments_) {
    if (eid.benchmark == id.benchmark && eid.variant == id.variant) {
      node = std::move(ramble_yaml);
      return;
    }
  }
  experiments_.emplace_back(id, std::move(ramble_yaml));
}

void Driver::validate_pair(const ExperimentId& id,
                           const SystemDescription& system) const {
  if (id.variant == "cuda" || id.variant == "rocm") {
    if (!system.has_gpu()) {
      throw Error("experiment '" + id.str() + "' needs GPUs; system '" +
                  system.name + "' is CPU-only");
    }
    if (system.gpu->runtime != id.variant) {
      throw Error("experiment '" + id.str() + "' needs a " + id.variant +
                  " system; '" + system.name + "' provides " +
                  system.gpu->runtime);
    }
  }
}

void Driver::validate(const ExperimentId& id,
                      const std::string& system_name) const {
  const auto& system = SystemRegistry::instance().get(system_name);
  validate_pair(id, system);
  experiment_config(id);  // throws on unknown experiments
}

ramble::Workspace Driver::setup(const ExperimentId& id,
                                const std::string& system_name,
                                std::filesystem::path workspace_dir) const {
  const auto& system = SystemRegistry::instance().get(system_name);
  validate_pair(id, system);
  const yaml::Node& tmpl = experiment_config(id);

  // Bind the system-specific Ramble spack.yaml aliases (Figure 9):
  // default-compiler and default-mpi resolve from the system scope.
  yaml::Node bound = tmpl;
  yaml::Node& packages = bound["ramble"]["spack"]["packages"];
  const auto& compiler = system.config.default_compiler();
  yaml::Node comp_def = yaml::Node::make_mapping();
  comp_def["spack_spec"] =
      yaml::Node(compiler.name + "@" + compiler.version.str());
  packages["default-compiler"] = std::move(comp_def);

  std::string mpi_spec = "mpi";
  if (const auto* mpi = system.config.settings_for("mpi");
      mpi && !mpi->externals.empty()) {
    mpi_spec = mpi->externals.front().spec.str();
  }
  yaml::Node mpi_def = yaml::Node::make_mapping();
  mpi_def["spack_spec"] = yaml::Node(mpi_spec);
  packages["default-mpi"] = std::move(mpi_def);

  auto ws = ramble::Workspace::create(std::move(workspace_dir), system);
  ws.configure(bound);
  UsageMetrics::instance().record_setup(id.benchmark);
  return ws;
}

ramble::AnalyzeReport Driver::run_workflow(const ExperimentId& id,
                                           const std::string& system_name,
                                           const std::filesystem::path& dir,
                                           const StepLogger& log,
                                           ramble::Workspace* workspace_out,
                                           const ramble::RunRequest& request,
                                           ramble::RunReport* run_report_out)
    const {
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan workflow_span(collector, "workflow", "driver");
  if (workflow_span.active()) {
    workflow_span.annotate("experiment", id.str());
    workflow_span.annotate("system", system_name);
    collector.attach_metadata("benchmark", id.benchmark);
    collector.attach_metadata("system", system_name);
  }
  auto say = [&](int step, const std::string& text) {
    if (log) log(step, text);
  };
  // The persistent store, when configured (explicitly on the request or
  // via BENCHPARK_STORE_DIR), is what makes back-to-back workflows
  // incremental: warm caches, zero re-installs, skipped experiments.
  store::StoreHandle persistent =
      request.store ? request.store : store::Store::open_from_env();
  auto warm = store::warm_start_global_caches(persistent);
  if (workflow_span.active() && persistent) {
    workflow_span.annotate("store.dir", persistent->dir().string());
    if (warm.attempted) {
      workflow_span.annotate("store.warm.concretize",
                             std::to_string(warm.concretize_entries));
      workflow_span.annotate("store.warm.templates",
                             std::to_string(warm.template_entries));
    }
  }
  say(1, "user clones Benchpark repository (driver + configs + experiments)");
  say(2, "benchpark " + id.str() + " " + system_name + " " + dir.string());
  say(3, "Benchpark clones Spack and Ramble (engines instantiated)");
  auto ws = [&] {
    obs::ScopedSpan step_span(collector, "workflow.setup", "driver");
    return setup(id, system_name, dir);
  }();
  ws.set_store(persistent);
  say(4, "Benchpark generates workspace config under " +
             (dir / "configs").string());
  {
    obs::ScopedSpan step_span(collector, "workflow.workspace_setup",
                              "driver");
    ws.setup();
    const auto& cz = ws.concretize_summary();
    if (step_span.active()) {
      step_span.annotate("concretize.roots", std::to_string(cz.roots));
      step_span.annotate("concretize.cache_hits",
                         std::to_string(cz.cache_hits));
      step_span.annotate("concretize.cache_misses",
                         std::to_string(cz.cache_misses));
    }
  }
  say(5, "ramble workspace setup (concretized " +
             std::to_string(ws.concretize_summary().roots) +
             " roots, cache " +
             std::to_string(ws.concretize_summary().cache_hits) + " hits / " +
             std::to_string(ws.concretize_summary().cache_misses) +
             " misses)");
  say(6, "Ramble used Spack to build " + id.benchmark + " (" +
             std::to_string(ws.install_report().from_source) +
             " built from source, " +
             std::to_string(ws.install_report().externals) + " externals, " +
             std::to_string(ws.install_report().already_installed) +
             " already installed)");
  say(7, "Ramble rendered " + std::to_string(ws.prepared().size()) +
             " batch experiment scripts");
  auto run_report = [&] {
    obs::ScopedSpan step_span(collector, "workflow.run", "driver");
    auto r = ws.run_all(request);
    if (step_span.active()) {
      step_span.annotate("experiments", std::to_string(r.experiments));
      step_span.annotate("attempts", std::to_string(r.total_attempts));
      step_span.annotate("template_cache.hits",
                         std::to_string(r.template_cache_hits));
      step_span.annotate("template_cache.misses",
                         std::to_string(r.template_cache_misses));
      if (persistent) {
        step_span.annotate("store.hits", std::to_string(r.store_hits));
        step_span.annotate("store.misses", std::to_string(r.store_misses));
      }
    }
    return r;
  }();
  if (run_report_out) *run_report_out = run_report;
  std::string store_summary;
  if (persistent) {
    store_summary = ", store " + std::to_string(run_report.store_hits) +
                    " hits / " + std::to_string(run_report.store_misses) +
                    " misses";
  }
  say(8, "ramble on: " + std::to_string(run_report.experiments) +
             " experiments executed via " +
             std::string(
                 system::scheduler_name(ws.target_system().scheduler)) +
             " (" + std::to_string(run_report.retried) + " retried, " +
             "template cache " +
             std::to_string(run_report.template_cache_hits) + " hits / " +
             std::to_string(run_report.template_cache_misses) + " misses" +
             store_summary + ")");
  auto report = [&] {
    obs::ScopedSpan step_span(collector, "workflow.analyze", "driver");
    return ws.analyze(request);
  }();
  UsageMetrics::instance().record_runs(id.benchmark, report.results.size());
  say(9, "ramble workspace analyze: " +
             std::to_string(report.num_success()) + "/" +
             std::to_string(report.results.size()) +
             " experiments succeeded");
  if (persistent) {
    // Append this workflow's outcomes to the FOM history: one
    // runtime_seconds sample per experiment plus one sample per numeric
    // FOM, in submission order (per_experiment and the analyze report
    // are both index-aligned with the prepared experiments), keyed by
    // the experiment's store key so regressions bisect to a config.
    analysis::FomHistory history(persistent);
    std::size_t appended = 0;
    const auto& outcomes = run_report.per_experiment;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& outcome = outcomes[i];
      history.append(
          {id.benchmark, system_name, outcome.name, "runtime_seconds"},
          outcome.runtime_seconds, "s", outcome.store_key, outcome.success);
      ++appended;
      if (i >= report.results.size()) continue;
      for (const auto& fom : report.results[i].foms) {
        if (!fom.numeric) continue;
        history.append({id.benchmark, system_name, outcome.name, fom.name},
                       fom.value, fom.units, outcome.store_key, true);
        ++appended;
      }
    }
    say(10, "history: appended " + std::to_string(appended) +
                " sample(s) to " + std::to_string(history.keys().size()) +
                " series");
    // Snapshot the process-wide caches so the next process starts warm;
    // the workspace already persisted its binary cache + install tree.
    store::persist_global_caches(persistent);
    persistent->flush();
  }
  if (workspace_out) *workspace_out = std::move(ws);
  return report;
}

std::string Driver::repo_tree() const {
  // The Figure 1a repository layout, synthesized from the registries.
  std::string out;
  out += "benchpark/\n";
  out += "|-- benchpark          // The Benchpark driver\n";
  out += "|   `-- bin\n";
  out += "|       `-- benchpark\n";
  out += "|-- configs            // HPC System-specific\n";
  for (const auto& system_name : SystemRegistry::instance().names()) {
    out += "|   |-- " + system_name + "\n";
    out += "|   |   |-- compilers.yaml\n";
    out += "|   |   |-- packages.yaml\n";
    out += "|   |   |-- spack.yaml\n";
    out += "|   |   `-- variables.yaml\n";
  }
  out += "|-- experiments        // Experiment-specific\n";
  for (const auto& benchmark : benchmarks()) {
    out += "|   |-- " + benchmark + "\n";
    for (const auto& variant : variants(benchmark)) {
      out += "|   |   |-- " + variant + "\n";
      out += "|   |   |   |-- execute_experiment.tpl\n";
      out += "|   |   |   `-- ramble.yaml\n";
    }
  }
  out += "`-- repo               // Benchmark-specific overlays\n";
  for (const auto& benchmark : benchmarks()) {
    out += "    |-- " + benchmark + "\n";
    out += "    |   |-- application.py\n";
    out += "    |   `-- package.py\n";
  }
  out += "    `-- repo.yaml\n";
  return out;
}

}  // namespace benchpark::core
