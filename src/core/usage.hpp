// Benchmark usage metrics (Section 5: "we will look at collecting
// metrics on benchmark usage (which codes in Benchpark are accessed most
// heavily, which have been contributed to most recently, etc.) ...
// understanding which benchmarks are most relevant to the community can
// also improve procurement, vendor, and system monitoring productivity").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/table.hpp"

namespace benchpark::core {

struct UsageEntry {
  std::string benchmark;
  std::uint64_t setups = 0;       // workspace setups (builds)
  std::uint64_t runs = 0;         // executed experiments
  std::uint64_t contributions = 0;  // recipe/definition updates
  std::uint64_t last_event = 0;   // monotonic event counter (recency)
};

/// Process-global usage tracker. Thread-safe.
class UsageMetrics {
public:
  static UsageMetrics& instance();

  void record_setup(const std::string& benchmark);
  void record_runs(const std::string& benchmark, std::uint64_t count);
  void record_contribution(const std::string& benchmark);

  [[nodiscard]] UsageEntry get(const std::string& benchmark) const;
  /// Ranked by total activity (setups + runs), heaviest first.
  [[nodiscard]] std::vector<UsageEntry> ranking() const;
  [[nodiscard]] support::Table to_table() const;

  void reset();

private:
  UsageMetrics() = default;
  UsageEntry& touch(const std::string& benchmark);

  mutable std::mutex mutex_;
  std::map<std::string, UsageEntry> entries_;
  std::uint64_t clock_ = 0;
};

}  // namespace benchpark::core
