// Campaigns: one experiment run across many systems, results collected
// into the metrics database (Figure 6's right-hand side) and analyzed —
// cross-system comparison tables and Extra-P scaling models (Section 5:
// "enable performance analysis and modeling of our benchmarks across
// many systems").
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/extrap.hpp"
#include "src/analysis/ingest.hpp"
#include "src/analysis/metrics_db.hpp"
#include "src/analysis/thicket.hpp"
#include "src/core/driver.hpp"

namespace benchpark::core {

struct SystemRunSummary {
  std::string system;
  std::size_t experiments = 0;
  std::size_t succeeded = 0;
  /// First failure output snippet (the Section 7.1 diagnosis aid).
  std::string first_failure;
};

class Campaign {
public:
  Campaign(const Driver* driver, ExperimentId experiment,
           std::filesystem::path base_dir);

  void add_system(const std::string& name);

  /// Tune the parallel run engine used for every system's workflow (and
  /// for result ingestion). Default: pool-default width, cached
  /// templates, standard retry budget.
  void set_run_request(ramble::RunRequest request) {
    request_ = std::move(request);
  }

  /// Run the full workflow on every registered system; failures on one
  /// system (crashes, incompatible variants) are recorded, not fatal.
  /// Results are ingested through analysis::run_analysis (parallel row
  /// build, serial in-order insertion into the campaign's db/thicket).
  void run();

  [[nodiscard]] const analysis::MetricsDb& metrics() const { return db_; }
  /// One Thicket column per Caliper-annotated experiment output, named
  /// "<system>/<experiment>" (rebuilt by each run()).
  [[nodiscard]] const analysis::Thicket& thicket() const { return thicket_; }
  [[nodiscard]] const std::vector<SystemRunSummary>& summaries() const {
    return summaries_;
  }

  /// Cross-system comparison of one FOM: experiment rows, system columns.
  [[nodiscard]] support::Table comparison_table(
      const std::string& fom_name) const;

  /// Fit a scaling model of a FOM vs n_ranks on one system (requires >= 3
  /// distinct rank counts among successful experiments).
  [[nodiscard]] analysis::ScalingModel scaling_model(
      const std::string& system, const std::string& fom_name) const;

private:
  const Driver* driver_;  // not owned
  ExperimentId experiment_;
  std::filesystem::path base_dir_;
  std::vector<std::string> systems_;
  ramble::RunRequest request_;
  analysis::MetricsDb db_;
  analysis::Thicket thicket_;
  std::vector<SystemRunSummary> summaries_;
  // (system, experiment, fom) -> n_ranks for the scaling axis.
  std::vector<analysis::ResultRow> rows_;
};

}  // namespace benchpark::core
