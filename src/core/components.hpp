// The Table 1 component registry.
//
// Table 1 is the paper's central design statement: every Benchpark
// component is either benchmark-specific, system-specific, or
// experiment-specific, and the three concerns are maintained
// orthogonally. This module models that matrix *from the live system* —
// each row names the artifacts our implementation actually uses — and
// bench/table1_components.cpp regenerates the printed table.
#pragma once

#include <string>
#include <vector>

#include "src/support/table.hpp"

namespace benchpark::core {

struct ComponentRow {
  std::string component;             // "Source code", "Build instructions"…
  std::string benchmark_specific;    // column 2
  std::string system_specific;       // column 3
  std::string experiment_specific;   // column 4
};

/// The six rows of Table 1.
std::vector<ComponentRow> table1_components();

/// Render Table 1 as an ASCII table.
support::Table render_table1();

/// Sanity-check the matrix against the live registries: every artifact a
/// row names must exist in the implementation (used by tests to keep the
/// table honest).
void validate_component_registry();

}  // namespace benchpark::core
